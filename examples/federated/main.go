// Federated feeds behind an HTTP API: several ad feeds graft into one
// collection (each feed becomes a document partition), the engine serves
// it over HTTP, and a client fires typo-ridden queries at the JSON API —
// the full sponsored-search deployment in one program.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"xrefine"
	"xrefine/internal/core"
	"xrefine/internal/server"
)

var feeds = map[string]string{
	"sports": `<feed>
  <ad><product>running shoes</product><keywords>marathon lightweight</keywords></ad>
  <ad><product>tennis racket</product><keywords>carbon graphite</keywords></ad>
</feed>`,
	"outdoor": `<feed>
  <ad><product>hiking boots</product><keywords>waterproof mountain</keywords></ad>
  <ad><product>camping tent</product><keywords>two person waterproof</keywords></ad>
</feed>`,
	"cycling": `<feed>
  <ad><product>road bike</product><keywords>carbon racing bicycle</keywords></ad>
  <ad><product>bike helmet</product><keywords>ventilated lightweight</keywords></ad>
</feed>`,
}

func main() {
	// 1. Parse each feed and graft them into one collection.
	var docs []*xrefine.Document
	for name, src := range feeds {
		d, err := xrefine.ParseXML(strings.NewReader(src))
		if err != nil {
			log.Fatalf("feed %s: %v", name, err)
		}
		docs = append(docs, d)
	}
	col, err := xrefine.Collection("catalog", docs...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collection: %d feeds, %d nodes\n\n", len(col.Partitions()), col.NodeCount)

	// 2. Serve it. (core.NewFromDocument keeps the document, so the API
	// returns snippets and supports /narrow.)
	eng := core.NewFromDocument(col, &core.Config{TopK: 2, CacheSize: 128})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: server.New(eng)}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("serving on", base)

	// 3. A client stream of damaged queries.
	client := &http.Client{Timeout: 5 * time.Second}
	for _, q := range []string{
		"runing shoes",      // typo
		"water proof tent",  // mistaken split
		"carbon racingbike", // mistaken merge
		"road bike",         // clean
	} {
		resp, err := client.Get(base + "/search?q=" + strings.ReplaceAll(q, " ", "+"))
		if err != nil {
			log.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
		var parsed struct {
			NeedRefine bool `json:"need_refine"`
			Queries    []struct {
				Keywords []string `json:"keywords"`
				DSim     float64  `json:"dsim"`
				Steps    []string `json:"steps"`
				Results  []struct {
					Snippet string `json:"snippet"`
				} `json:"results"`
			} `json:"queries"`
		}
		if err := json.Unmarshal(body, &parsed); err != nil {
			log.Fatalf("bad response for %q: %v\n%s", q, err, body)
		}
		fmt.Printf("> %s\n", q)
		if len(parsed.Queries) == 0 {
			fmt.Println("  no ads")
			continue
		}
		best := parsed.Queries[0]
		tag := "refined to"
		if !parsed.NeedRefine {
			tag = "matched as"
		}
		fmt.Printf("  %s {%s} (%d ad(s))\n", tag, strings.Join(best.Keywords, " "), len(best.Results))
		for _, st := range best.Steps {
			fmt.Printf("    via %s\n", st)
		}
		for _, r := range best.Results {
			fmt.Printf("    %s\n", r.Snippet)
		}
	}
}
