// Narrowing: the other extreme the paper's conclusion points at — a query
// with far too many results. The engine mines discriminative co-occurring
// terms from the flood and proposes tightened queries that still have
// meaningful matches.
package main

import (
	"fmt"
	"log"
	"strings"

	"xrefine"
	"xrefine/internal/datagen"
)

func main() {
	doc, err := datagen.DBLPDocument(datagen.DBLPConfig{Authors: 600, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	eng := xrefine.NewFromDocument(doc, nil)

	for _, q := range []string{
		"database",            // floods: the most common title word
		"query processing",    // still broad
		"skyline computation", // already specific
	} {
		fmt.Printf("> %s\n", q)
		out, err := eng.Narrow(q, &xrefine.NarrowOptions{MaxResults: 40, TopK: 4, TargetResults: 12})
		if err != nil {
			log.Fatal(err)
		}
		if !out.TooBroad {
			fmt.Printf("  %d result(s) — specific enough\n\n", out.OriginalResults)
			continue
		}
		fmt.Printf("  %d results — too broad; try instead:\n", out.OriginalResults)
		for i, s := range out.Suggestions {
			fmt.Printf("  %d. {%s}  (%d results, +%s)\n",
				i+1, strings.Join(s.Keywords, " "), len(s.Results), strings.Join(s.Added, "+"))
		}
		fmt.Println()
	}
}
