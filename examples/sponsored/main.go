// Sponsored search: the application scenario the paper's introduction
// motivates — matching an enormous stream of free-form user queries
// against a much smaller corpus of XML-formatted advertising listings.
// Most queries miss the small corpus's vocabulary; automatic refinement
// rescues them instead of showing no ad at all.
package main

import (
	"fmt"
	"log"
	"strings"

	"xrefine"
)

// A compact advertising corpus: each listing is one entity.
const ads = `
<listings>
  <ad>
    <brand>acme</brand>
    <product>running shoes</product>
    <category>sports footwear</category>
    <price>89</price>
    <keywords>marathon trail lightweight running</keywords>
  </ad>
  <ad>
    <brand>northpeak</brand>
    <product>hiking boots</product>
    <category>outdoor footwear</category>
    <price>149</price>
    <keywords>waterproof mountain trekking boots</keywords>
  </ad>
  <ad>
    <brand>velocity</brand>
    <product>road bike</product>
    <category>cycling</category>
    <price>899</price>
    <keywords>carbon racing bicycle lightweight</keywords>
  </ad>
  <ad>
    <brand>aquafit</brand>
    <product>swimming goggles</product>
    <category>swim gear</category>
    <price>25</price>
    <keywords>pool training anti fog goggles</keywords>
  </ad>
  <ad>
    <brand>trailblaze</brand>
    <product>camping tent</product>
    <category>outdoor equipment</category>
    <price>219</price>
    <keywords>two person waterproof hiking camping</keywords>
  </ad>
</listings>`

func main() {
	// Sponsored search wants high recall on a tiny corpus, so allow
	// slightly more aggressive spelling correction and show more
	// refinement options.
	cfg := &xrefine.Config{TopK: 3}
	cfg.Rules.MaxEditDistance = 2
	cfg.Rules.MaxSpellingCandidates = 4
	eng, err := xrefine.NewFromXML(strings.NewReader(ads), cfg)
	if err != nil {
		log.Fatal(err)
	}
	doc, err := xrefine.ParseXML(strings.NewReader(ads))
	if err != nil {
		log.Fatal(err)
	}

	// The incoming query stream, realistically messy.
	stream := []string{
		"runing shoes",          // typo
		"water proof boots",     // mistaken split
		"racingbicycle",         // mistaken merge
		"swiming gogles",        // double typo
		"tent waterproof cheap", // "cheap" matches nothing
		"carbon road bike",      // clean
	}
	for _, q := range stream {
		fmt.Printf("> %s\n", q)
		resp, err := eng.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		if !resp.NeedRefine {
			show(doc, "direct match", resp.Queries[0])
			fmt.Println()
			continue
		}
		if len(resp.Queries) == 0 {
			fmt.Println("  no ad to show")
			fmt.Println()
			continue
		}
		for _, rq := range resp.Queries {
			show(doc, fmt.Sprintf("refined to {%s} (dSim %.1f)", strings.Join(rq.Keywords, " "), rq.DSim), rq)
		}
		fmt.Println()
	}
}

func show(doc *xrefine.Document, label string, q xrefine.RankedQuery) {
	fmt.Printf("  %s -> %d ad(s)\n", label, len(q.Results))
	for _, m := range q.Results {
		fmt.Printf("     %s\n", xrefine.Snippet(doc, m, 70))
	}
}
