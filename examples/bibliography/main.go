// Bibliography search: a realistic digital-library scenario. The program
// generates a DBLP-like corpus of a few hundred authors, builds a
// persistent index on disk, reopens it read-only, and runs a batch of
// damaged literature queries — demonstrating index persistence, the three
// refinement strategies side by side, and the search-for inference that
// keeps results at entity granularity.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"xrefine"
	"xrefine/internal/datagen"
)

func main() {
	dir, err := os.MkdirTemp("", "xrefine-bibliography")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Generate the corpus and build a persistent index.
	xmlPath := filepath.Join(dir, "dblp.xml")
	f, err := os.Create(xmlPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := datagen.DBLP(f, datagen.DBLPConfig{Authors: 400, Seed: 7}); err != nil {
		log.Fatal(err)
	}
	f.Close()

	in, err := os.Open(xmlPath)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := xrefine.NewFromXML(in, nil)
	in.Close()
	if err != nil {
		log.Fatal(err)
	}
	indexPath := filepath.Join(dir, "dblp.kv")
	store, err := xrefine.OpenStore(indexPath, false)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.SaveIndex(store); err != nil {
		log.Fatal(err)
	}
	st := store.StorageStats()
	if err := store.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed corpus: %d keys, %d bytes on disk\n\n", st.Keys, st.DiskBytes)

	// 2. Reopen the index read-only, as a query server would.
	ro, err := xrefine.OpenStore(indexPath, true)
	if err != nil {
		log.Fatal(err)
	}
	defer ro.Close()
	server, err := xrefine.OpenIndex(ro, &xrefine.Config{TopK: 3})
	if err != nil {
		log.Fatal(err)
	}

	// 3. A batch of queries a hurried researcher might type.
	queries := []string{
		"databse query optimizaton",  // two spelling errors
		"key word search",            // mistaken split
		"machinelearning",            // mistaken merge
		"xml publication 1999",       // vocabulary mismatch
		"skyline computation sigmod", // likely fine
	}
	for _, q := range queries {
		fmt.Printf("> %s\n", q)
		resp, err := server.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		if len(resp.SearchFor) > 0 {
			var tags []string
			for _, c := range resp.SearchFor {
				tags = append(tags, c.Type.Tag)
			}
			fmt.Printf("  inferred search target: %s\n", strings.Join(tags, ", "))
		}
		if !resp.NeedRefine {
			fmt.Printf("  OK as-is: %d results\n\n", len(resp.Queries[0].Results))
			continue
		}
		for i, rq := range resp.Queries {
			fmt.Printf("  %d. {%s} dSim=%.1f (%d results)\n",
				i+1, strings.Join(rq.Keywords, " "), rq.DSim, len(rq.Results))
		}
		fmt.Println()
	}

	// 4. Compare the three refinement strategies on one query.
	fmt.Println("strategy comparison for \"databse query optimizaton\":")
	for _, s := range []xrefine.Strategy{xrefine.StrategyPartition, xrefine.StrategySLE, xrefine.StrategyStack} {
		resp, err := server.QueryTerms(xrefine.Tokenize("databse query optimizaton"), s, 3)
		if err != nil {
			log.Fatal(err)
		}
		best := "(none)"
		if len(resp.Queries) > 0 {
			best = fmt.Sprintf("{%s} dSim=%.1f", strings.Join(resp.Queries[0].Keywords, " "), resp.Queries[0].DSim)
		}
		fmt.Printf("  %-12v -> %s\n", s, best)
	}
}
