// Baseball statistics search: queries over the second evaluation dataset's
// schema (season/league/division/team/players/player). Demonstrates
// search-for inference picking between team- and player-level targets, and
// domain synonyms/acronyms from the builtin lexicon (homers ~ homeruns,
// avg ~ average).
package main

import (
	"fmt"
	"log"
	"strings"

	"xrefine"
	"xrefine/internal/datagen"
)

func main() {
	var b strings.Builder
	if err := datagen.Baseball(&b, datagen.BaseballConfig{Teams: 30, Seed: 11}); err != nil {
		log.Fatal(err)
	}
	doc, err := xrefine.ParseXML(strings.NewReader(b.String()))
	if err != nil {
		log.Fatal(err)
	}
	eng := xrefine.NewFromDocument(doc, &xrefine.Config{TopK: 3})

	queries := []string{
		"boston pitcher",            // clean: players of one team
		"pitcher homers",            // synonym: data says "homeruns"
		"short stop chicago",        // mistaken split of "shortstop"
		"centerfield atlanta texas", // over-restrictive: two cities
		"catchr tigers",             // typo
	}
	for _, q := range queries {
		fmt.Printf("> %s\n", q)
		resp, err := eng.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		if len(resp.SearchFor) > 0 {
			var tags []string
			for _, c := range resp.SearchFor {
				tags = append(tags, c.Type.Tag)
			}
			fmt.Printf("  search target: %s\n", strings.Join(tags, ", "))
		}
		if !resp.NeedRefine {
			q0 := resp.Queries[0]
			fmt.Printf("  %d direct result(s)\n", len(q0.Results))
			preview(doc, q0, 3)
			fmt.Println()
			continue
		}
		for i, rq := range resp.Queries {
			fmt.Printf("  %d. {%s} dSim=%.1f (%d results)\n",
				i+1, strings.Join(rq.Keywords, " "), rq.DSim, len(rq.Results))
			if i == 0 {
				preview(doc, rq, 3)
			}
		}
		fmt.Println()
	}
}

func preview(doc *xrefine.Document, q xrefine.RankedQuery, max int) {
	for i, m := range q.Results {
		if i == max {
			fmt.Printf("     ... %d more\n", len(q.Results)-max)
			return
		}
		fmt.Printf("     %s\n", xrefine.Snippet(doc, m, 60))
	}
}
