// Quickstart: index a small bibliography and watch the engine repair a
// query with a typo, a mistaken split and a vocabulary mismatch — the
// smallest end-to-end tour of the public API.
package main

import (
	"fmt"
	"log"
	"strings"

	"xrefine"
)

const bibliography = `
<bib>
  <author>
    <name>John Ben</name>
    <publications>
      <inproceedings>
        <title>online database systems</title>
        <booktitle>sigmod</booktitle>
        <year>2003</year>
      </inproceedings>
      <inproceedings>
        <title>efficient keyword search in xml trees</title>
        <booktitle>vldb</booktitle>
        <year>2005</year>
      </inproceedings>
    </publications>
  </author>
  <author>
    <name>Mary Lee</name>
    <publications>
      <article>
        <title>matching twig patterns with skyline computation</title>
        <journal>tods</journal>
        <year>2006</year>
      </article>
    </publications>
    <hobby>swimming</hobby>
  </author>
</bib>`

func main() {
	eng, err := xrefine.NewFromXML(strings.NewReader(bibliography), nil)
	if err != nil {
		log.Fatal(err)
	}
	doc, err := xrefine.ParseXML(strings.NewReader(bibliography))
	if err != nil {
		log.Fatal(err)
	}

	for _, query := range []string{
		"online database",           // clean query: matches directly
		"online databse",            // spelling error
		"efficient key word search", // mistaken split
		"database publication",      // vocabulary mismatch (Example 1 of the paper)
		"xml john swimming 2003",    // over-restrictive
	} {
		fmt.Printf("\n> %s\n", query)
		resp, err := eng.Query(query)
		if err != nil {
			log.Fatal(err)
		}
		if !resp.NeedRefine {
			q := resp.Queries[0]
			fmt.Printf("  matches as-is: %d result(s)\n", len(q.Results))
			for _, m := range q.Results {
				fmt.Printf("    %s\n", xrefine.Snippet(doc, m, 70))
			}
			continue
		}
		fmt.Println("  no meaningful result; suggested refinements:")
		for i, rq := range resp.Queries {
			fmt.Printf("  %d. {%s}  dSim=%.1f rank=%.3f (%d results)\n",
				i+1, strings.Join(rq.Keywords, ", "), rq.DSim, rq.Score, len(rq.Results))
			for _, m := range rq.Results {
				fmt.Printf("     %s\n", xrefine.Snippet(doc, m, 70))
			}
		}
	}
}
