package xrefine_test

import (
	"strings"
	"testing"

	"xrefine"
)

const demo = `
<bib>
  <author>
    <name>John Ben</name>
    <publications>
      <inproceedings><title>online database systems</title><year>2003</year></inproceedings>
      <inproceedings><title>efficient keyword search</title><year>2005</year></inproceedings>
    </publications>
  </author>
</bib>`

func TestFacadeEndToEnd(t *testing.T) {
	eng, err := xrefine.NewFromXML(strings.NewReader(demo), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := eng.Query("online databse")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.NeedRefine || len(resp.Queries) == 0 {
		t.Fatalf("response = %+v", resp)
	}
	if got := strings.Join(resp.Queries[0].Keywords, " "); got != "database online" {
		t.Errorf("best refinement = %v", got)
	}
}

func TestFacadePersistence(t *testing.T) {
	eng, err := xrefine.NewFromXML(strings.NewReader(demo), nil)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/ix.kv"
	store, err := xrefine.OpenStore(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SaveIndex(store); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	ro, err := xrefine.OpenStore(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	eng2, err := xrefine.OpenIndex(ro, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := eng2.Query("efficient keyword")
	if err != nil {
		t.Fatal(err)
	}
	if resp.NeedRefine || len(resp.Queries[0].Results) == 0 {
		t.Fatalf("reloaded engine broken: %+v", resp)
	}
}

func TestFacadeSnippet(t *testing.T) {
	doc, err := xrefine.ParseXML(strings.NewReader(demo))
	if err != nil {
		t.Fatal(err)
	}
	eng := xrefine.NewFromDocument(doc, &xrefine.Config{
		Lexicon:  xrefine.BuiltinLexicon(),
		Rank:     xrefine.DefaultRankModel(),
		SLCA:     xrefine.ScanEager,
		Strategy: xrefine.StrategyPartition,
	})
	resp, err := eng.Query("online database")
	if err != nil {
		t.Fatal(err)
	}
	s := xrefine.Snippet(doc, resp.Queries[0].Results[0], 60)
	if !strings.Contains(s, "online database") {
		t.Errorf("snippet = %q", s)
	}
}
