# XRefine build targets. Everything is stdlib-only Go; the Makefile just
# names the common invocations.

GO ?= go

.PHONY: all build vet test race bench cover memgate fuzz experiments examples obs soak replicas coldstart wirediff clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem ./...

# Statement-coverage ratchet: fails if total coverage over ./internal/...
# drops below the floor in scripts/cover_floor.txt.
cover:
	./scripts/cover_gate.sh

# Posting-storage memory ratchet: fails if the block codec's resident
# bytes per posting rise above scripts/mem_floor.txt or its compression
# ratio over materialized postings falls below 3x.
memgate:
	./scripts/mem_gate.sh

# Short fuzz bursts on every fuzz target; lengthen with FUZZTIME=1m.
# Committed regression corpora live in each package's testdata/fuzz and
# replay under plain `go test` as well.
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/dewey -fuzz FuzzFromBytes -fuzztime $(FUZZTIME)
	$(GO) test ./internal/dewey -fuzz FuzzParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/xmltree -fuzz FuzzParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/kvstore -fuzz FuzzDecodeNode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/kvstore -fuzz FuzzDecodeMeta -fuzztime $(FUZZTIME)
	$(GO) test ./internal/logstore -fuzz FuzzLogRecord -fuzztime $(FUZZTIME)
	$(GO) test ./internal/logstore -fuzz FuzzHintFile -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -fuzz FuzzQueryPipeline -fuzztime $(FUZZTIME)
	$(GO) test ./internal/shard -fuzz FuzzShardMerge -fuzztime $(FUZZTIME)
	$(GO) test ./internal/index -fuzz FuzzBlockCodec -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wire -fuzz FuzzWireFrame -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wire -fuzz FuzzWireRequest -fuzztime $(FUZZTIME)

# Regenerate every table and figure of the paper (takes minutes at scale 1).
experiments:
	$(GO) run ./cmd/xbench -scale 1.0 -reps 3 -queries 50 all

# End-to-end observability smoke test: boots xserve on a generated
# corpus, validates the /metrics exposition with the in-tree parser
# (cmd/obscheck), runs an explain=1 query, and checks /debug/slowlog.
obs:
	./scripts/obs_smoke.sh

# Mixed read/write soak of the live-update subsystem: the in-tree
# concurrency and crash-recovery suites under -race, then a race-built
# live xserve with concurrent query loops against streamed POST /update
# batches, ending in a durability-across-restart check.
soak:
	./scripts/update_soak.sh

# Replica fault-matrix soak: the in-tree replica suites under -race
# (byte-identity, hedging, failover, epoch reconciliation), then a
# race-built replicated xserve (2 shards x 2 replicas, chaos armed)
# diffed request-by-request against a monolith — zero result divergence.
replicas:
	./scripts/replica_soak.sh

# Wire-protocol conformance soak: a race-built xserve serving HTTP and
# the binary protocol from the same backend, diffed request-by-request
# (plain engine, chaos-armed replicas, log storage backend) — every
# non-degraded wire payload must be byte-identical to the HTTP body —
# ending in a both-surfaces drain check.
wirediff:
	./scripts/wire_diff.sh

# Log-engine cold-start ratchet: opening a settled value-heavy store
# through hint files must be at least 10x faster than the hint-blind
# full-replay baseline, and on-disk amplification must stay under 2x.
coldstart:
	./scripts/coldstart_gate.sh

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/sponsored
	$(GO) run ./examples/baseball
	$(GO) run ./examples/narrowing
	$(GO) run ./examples/bibliography

clean:
	$(GO) clean ./...
