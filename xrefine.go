// Package xrefine is an automatic XML keyword query refinement engine — a
// from-scratch Go reproduction of "Automatic XML Keyword Query Refinement"
// (Bao, Lu, Ling, Meng; 2009), the XRefine system.
//
// XML keyword search is conjunctive: a result must contain every query
// keyword (the SLCA semantics). Real queries contain typos, mis-split or
// mis-merged terms, vocabulary mismatches and over-restrictive terms, so
// they frequently match nothing meaningful. XRefine detects this *during*
// query processing — without a wasted first retrieval — and returns a
// ranked list of refined queries, each guaranteed to have meaningful
// results, together with those results, in a single scan of the keyword
// inverted lists.
//
// # Quick start
//
//	eng, err := xrefine.NewFromXML(file, nil)
//	if err != nil { ... }
//	resp, err := eng.Query("online databse") // note the typo
//	if resp.NeedRefine {
//	    for _, rq := range resp.Queries {
//	        fmt.Println(rq.Keywords, rq.DSim, len(rq.Results))
//	    }
//	}
//
// The engine decides adaptively: a query with meaningful results comes
// back unrefined with its matches; a broken query comes back with top-K
// refinement suggestions and their matches.
//
// See the runnable programs under examples/ and the experiment harness in
// cmd/xbench for larger scenarios.
package xrefine

import (
	"context"
	"io"

	"xrefine/internal/core"
	"xrefine/internal/lexicon"
	"xrefine/internal/mutate"
	"xrefine/internal/narrow"
	"xrefine/internal/obs"
	"xrefine/internal/rank"
	"xrefine/internal/refine"
	"xrefine/internal/rules"
	"xrefine/internal/searchfor"
	"xrefine/internal/shard"
	"xrefine/internal/slca"
	"xrefine/internal/storage"
	"xrefine/internal/storage/backends"
	"xrefine/internal/tokenize"
	"xrefine/internal/xmltree"
)

// Engine answers keyword queries over one indexed XML document.
type Engine = core.Engine

// Config tunes an Engine; the zero value uses sensible defaults.
type Config = core.Config

// Response is the engine's answer to one query.
type Response = core.Response

// RankedQuery is one (possibly refined) query with its results.
type RankedQuery = core.RankedQuery

// Match is one meaningful SLCA result node.
type Match = refine.Match

// Step is one refinement operation in a suggestion's provenance.
type Step = refine.Step

// Strategy selects a refinement algorithm.
type Strategy = core.Strategy

// Refinement algorithm strategies (Section VI of the paper).
const (
	StrategyPartition = core.StrategyPartition
	StrategySLE       = core.StrategySLE
	StrategyStack     = core.StrategyStack
)

// SLCAAlgorithm selects the delegated SLCA computation.
type SLCAAlgorithm = slca.Algorithm

// SLCA algorithm choices.
const (
	ScanEager          = slca.AlgoScanEager
	IndexedLookupEager = slca.AlgoIndexedLookupEager
	StackSLCA          = slca.AlgoStack
	MultiwaySLCA       = slca.AlgoMultiway
)

// Document is a parsed XML document tree.
type Document = xmltree.Document

// Lexicon supplies synonym and acronym knowledge for substitution rules.
type Lexicon = lexicon.Lexicon

// RuleGenerator configures automatic refinement-rule derivation.
type RuleGenerator = rules.Generator

// RankModel holds the ranking-model weights (Formula 10).
type RankModel = rank.Model

// SearchForOptions tunes search-for node inference (Formula 1).
type SearchForOptions = searchfor.Options

// Store is the storage backend indexes persist into. Two engines
// implement it: the page-based B+tree (one file, the default) and the
// Bitcask-style log-structured engine (a segment directory with hint-file
// cold starts); see StorageBTree and StorageLog.
type Store = storage.Backend

// StorageKind names a storage engine for OpenStoreKind.
type StorageKind = storage.Kind

// The storage engines.
const (
	// StorageBTree is the page-based copy-on-write B+tree — one file,
	// CRC-trailed pages, ordered keys native.
	StorageBTree = storage.KindBTree
	// StorageLog is the Bitcask-style log-structured engine — append-only
	// CRC-framed segments, an in-memory keydir, background compaction and
	// hint files for millisecond cold starts.
	StorageLog = storage.KindLog
)

// ParseStorageKind validates a -backend flag value; the empty string
// means the default engine (btree).
func ParseStorageKind(s string) (StorageKind, error) { return storage.ParseKind(s) }

// StorageStats describes the physical state of a Store.
type StorageStats = storage.Stats

// NewFromXML parses and indexes an XML document from r.
func NewFromXML(r io.Reader, cfg *Config) (*Engine, error) {
	return core.NewFromXML(r, cfg)
}

// NewFromDocument indexes an already-parsed document.
func NewFromDocument(doc *Document, cfg *Config) *Engine {
	return core.NewFromDocument(doc, cfg)
}

// NewFromXMLStream indexes XML without materializing the document tree;
// memory stays proportional to the index. Snippets and narrowing are
// unavailable on the resulting engine.
func NewFromXMLStream(r io.Reader, cfg *Config) (*Engine, error) {
	return core.NewFromXMLStream(r, cfg)
}

// ParseXML parses an XML document into a tree.
func ParseXML(r io.Reader) (*Document, error) {
	return xmltree.Parse(r, nil)
}

// Collection grafts several parsed documents under one virtual root; each
// member becomes a document partition, so the refinement algorithms treat
// a set of feeds exactly like one large document.
func Collection(rootTag string, docs ...*Document) (*Document, error) {
	return xmltree.Collection(rootTag, docs...)
}

// OpenStore opens (or creates) an index store at path. An existing
// store's engine is detected from its layout — a file is a B+tree store,
// a directory a log store; a new store is created with the B+tree engine
// (or the XREFINE_BACKEND override). Use OpenStoreKind to pick explicitly.
func OpenStore(path string, readOnly bool) (Store, error) {
	return OpenStoreKind("", path, readOnly)
}

// OpenStoreKind is OpenStore with an explicit engine name ("btree" or
// "log"; empty auto-detects an existing store and uses the default engine
// for a new one).
func OpenStoreKind(backend string, path string, readOnly bool) (Store, error) {
	var kind storage.Kind
	if backend == "" {
		var err error
		if kind, err = backends.Detect(path); err != nil {
			kind = storage.DefaultKind() // new store: no layout to sniff
		}
	} else {
		var err error
		if kind, err = storage.ParseKind(backend); err != nil {
			return nil, err
		}
	}
	return backends.Open(kind, path, &storage.Options{ReadOnly: readOnly})
}

// OpenIndex loads an engine from a previously saved index store. Stores
// written with Engine.SaveIndexWithDocument restore the source document,
// keeping snippets and narrowing available.
func OpenIndex(store Store, cfg *Config) (*Engine, error) {
	return core.Open(store, cfg)
}

// UpdateBatch is an atomic group of insert-subtree / delete-subtree
// operations for Engine.Apply: all of it commits as one new epoch, or none
// of it does.
type UpdateBatch = mutate.Batch

// UpdateOp is one operation inside an UpdateBatch.
type UpdateOp = mutate.Op

// Update operation kinds.
const (
	UpdateInsert = mutate.OpInsert
	UpdateDelete = mutate.OpDelete
)

// ApplyResult reports one committed update batch.
type ApplyResult = core.ApplyResult

// UpdateStats is a snapshot of an engine's live-update state.
type UpdateStats = core.UpdateStats

// OpenLiveIndex is OpenIndex plus live-update support: Engine.Apply
// persists batches into the store, write-ahead logged at walPath, and any
// batch the log holds beyond the store's committed epoch is replayed (the
// crash-recovery path). The store must have been opened read-write and
// saved with Engine.SaveIndexWithDocument. The caller still owns closing
// the store; Engine.Close releases the log.
func OpenLiveIndex(store Store, walPath string, cfg *Config) (*Engine, error) {
	return core.OpenLive(store, walPath, cfg)
}

// ReadUpdateBatch parses a batch file: one operation per line in the JSON
// wire form ({"op":"insert","parent":"0","xml":"..."} /
// {"op":"delete","target":"0.2"}), blank lines and #-comments skipped.
// This is the format xgen -updates emits and xrefine apply consumes.
func ReadUpdateBatch(r io.Reader) (*UpdateBatch, error) {
	return mutate.ReadBatchFile(r)
}

// WriteUpdateBatch writes a batch in the one-op-per-line wire form.
func WriteUpdateBatch(w io.Writer, b *UpdateBatch) error {
	return mutate.WriteBatchFile(w, b)
}

// Tokenize normalizes a raw keyword query string into query terms, exactly
// as Engine.Query does internally.
func Tokenize(q string) []string { return tokenize.Query(q) }

// EngineStats is a snapshot of the engine's serving counters.
type EngineStats = core.EngineStats

// MetricsRegistry collects the engine's counters, gauges and histograms;
// retrieve an engine's with Engine.Metrics and expose it with its
// WritePrometheus method or via the HTTP server's /metrics route.
type MetricsRegistry = obs.Registry

// Span is one timed stage of a traced query; SpanData is its rendered
// snapshot as served by explain=1 and the slow-query log.
type Span = obs.Span

// SpanData is an immutable span-tree snapshot.
type SpanData = obs.SpanData

// NewTrace arms per-query tracing on a context: pass the returned context
// to Engine.QueryCtx or Engine.QueryTermsCtx and every pipeline stage
// records a span under the returned root. End the root after the query
// and snapshot it with Data; Release returns the tree to the span pool.
func NewTrace(ctx context.Context, name string) (context.Context, *Span) {
	return obs.NewTrace(ctx, name)
}

// WriteTrace pretty-prints a span tree for terminals.
func WriteTrace(w io.Writer, d *SpanData) { obs.WriteTree(w, d) }

// ShardRouter hosts the shards of a split corpus — one independent engine,
// store and WAL per shard — behind one scatter-gather query surface whose
// responses are byte-identical to a monolithic engine over the unsplit
// corpus. It satisfies the HTTP server's Backend, so xserve -shards mounts
// it directly.
type ShardRouter = shard.Router

// ShardOptions configures OpenShards.
type ShardOptions = shard.Options

// WriteShards splits a corpus document into n shard stores plus a manifest
// under dir (the layout xgen -shards emits); mode is "range" or "hash".
func WriteShards(doc *Document, dir string, n int, mode string) error {
	m, err := shard.ParseMode(mode)
	if err != nil {
		return err
	}
	_, err = shard.WriteStores(doc, dir, n, m)
	return err
}

// OpenShards opens a shard directory written by WriteShards / xgen -shards.
func OpenShards(dir string, opts *ShardOptions) (*ShardRouter, error) {
	return shard.Open(dir, opts)
}

// NarrowOptions tune Engine.Narrow, the too-many-results extension.
type NarrowOptions = narrow.Options

// NarrowOutcome reports a narrowing run.
type NarrowOutcome = narrow.Outcome

// NarrowSuggestion is one narrowing proposal.
type NarrowSuggestion = narrow.Suggestion

// ErrNeedsDocument is returned by Engine.Narrow on engines loaded from an
// index store (narrowing mines candidate terms from the source document).
var ErrNeedsDocument = narrow.ErrNeedsDocument

// BuiltinLexicon returns the embedded synonym/acronym dictionary.
func BuiltinLexicon() *Lexicon { return lexicon.Builtin() }

// DefaultRankModel returns the paper's default ranking weights
// (α = β = 1, decay 0.8).
func DefaultRankModel() RankModel { return rank.Default() }

// Snippet renders a short preview of a match against its document.
func Snippet(doc *Document, m Match, maxRunes int) string {
	return core.Snippet(doc, m, maxRunes)
}

// SnippetHighlight renders a preview with the given query terms wrapped in
// [brackets]. Falls back to the bare label when the document is nil.
func SnippetHighlight(doc *Document, m Match, maxRunes int, terms []string) string {
	if doc != nil {
		if n, ok := doc.NodeByID(m.ID); ok {
			return n.SnippetHighlight(maxRunes, terms)
		}
	}
	return core.Snippet(doc, m, maxRunes)
}
