// Benchmarks: one testing.B benchmark per table and figure of the paper's
// evaluation (Section VIII), on a reduced-scale corpus so `go test -bench`
// stays laptop-friendly. The full-scale numbers that EXPERIMENTS.md records
// come from `go run ./cmd/xbench all`; these benches expose the same
// measurements to the standard Go tooling (benchstat, -benchmem, CI
// regressions).
package xrefine_test

import (
	"fmt"
	"testing"

	"xrefine/internal/core"
	"xrefine/internal/datagen"
	"xrefine/internal/eval"
	"xrefine/internal/experiments"
	"xrefine/internal/index"
	"xrefine/internal/rank"
	"xrefine/internal/refine"
	"xrefine/internal/slca"
)

// benchScale keeps the bench corpus at a fifth of the full evaluation size.
const benchScale = 0.2

func benchCorpus(b *testing.B) *experiments.Corpus {
	b.Helper()
	c, err := experiments.DBLPCorpus(benchScale)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func benchSamples(b *testing.B, c *experiments.Corpus) []experiments.Sample {
	b.Helper()
	samples, err := experiments.SampleQueries(c)
	if err != nil {
		b.Fatal(err)
	}
	return samples
}

func listsFor(b *testing.B, c *experiments.Corpus, terms []string) []*index.List {
	b.Helper()
	out := make([]*index.List, len(terms))
	for i, t := range terms {
		l, err := c.Index.List(t)
		if err != nil {
			b.Fatal(err)
		}
		out[i] = l
	}
	return out
}

// BenchmarkFig4 reproduces Figure 4: Top-1 refinement over the sample
// queries, one sub-benchmark per approach (the three refinement algorithms
// plus the two plain-SLCA baselines on the original query).
func BenchmarkFig4(b *testing.B) {
	c := benchCorpus(b)
	samples := benchSamples(b, c)
	for _, st := range []struct {
		name string
		s    core.Strategy
	}{
		{"stack-refine", core.StrategyStack},
		{"sle", core.StrategySLE},
		{"partition", core.StrategyPartition},
	} {
		b.Run(st.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := samples[i%len(samples)]
				if _, err := c.Engine.QueryTerms(s.Terms, st.s, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, bl := range []struct {
		name string
		algo slca.Algorithm
	}{
		{"stack-slca", slca.AlgoStack},
		{"scan-slca", slca.AlgoScanEager},
	} {
		b.Run(bl.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := samples[i%len(samples)]
				slca.Compute(bl.algo, listsFor(b, c, s.Terms))
			}
		})
	}
}

// BenchmarkFig5 reproduces Figure 5: Top-K refinement time versus K for
// the partition-based and short-list eager algorithms.
func BenchmarkFig5(b *testing.B) {
	c := benchCorpus(b)
	batch, err := c.Workload(datagen.WorkloadConfig{Seed: 555, Queries: 10})
	if err != nil {
		b.Fatal(err)
	}
	for _, st := range []struct {
		name string
		s    core.Strategy
	}{
		{"partition", core.StrategyPartition},
		{"sle", core.StrategySLE},
	} {
		for _, k := range []int{1, 3, 6} {
			b.Run(fmt.Sprintf("%s/K=%d", st.name, k), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					cs := batch[i%len(batch)]
					if _, err := c.Engine.QueryTerms(cs.Corrupted, st.s, k); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig6 reproduces Figure 6: Top-3 refinement versus corpus size.
func BenchmarkFig6(b *testing.B) {
	for _, scale := range []float64{0.05, 0.1, 0.2} {
		c, err := experiments.DBLPCorpus(scale)
		if err != nil {
			b.Fatal(err)
		}
		batch, err := c.Workload(datagen.WorkloadConfig{Seed: 1234, Queries: 10})
		if err != nil {
			b.Fatal(err)
		}
		for _, st := range []struct {
			name string
			s    core.Strategy
		}{
			{"partition", core.StrategyPartition},
			{"sle", core.StrategySLE},
		} {
			b.Run(fmt.Sprintf("%s/scale=%d%%", st.name, int(scale*100)), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					cs := batch[i%len(batch)]
					if _, err := c.Engine.QueryTerms(cs.Corrupted, st.s, 3); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTables3to6 measures the per-operation suggestion pipeline (the
// work behind the Tables III-VI rows: rule generation, exploration and
// top-1 suggestion for each corruption kind).
func BenchmarkTables3to6(b *testing.B) {
	c := benchCorpus(b)
	for _, op := range datagen.AllCorruptions {
		cases, err := c.Workload(datagen.WorkloadConfig{Seed: 77, Queries: 5, Ops: []datagen.Corruption{op}})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(op.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cs := cases[i%len(cases)]
				if _, err := c.Engine.QueryTerms(cs.Corrupted, core.StrategyPartition, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable7 measures Top-4 exploration plus full-model ranking (the
// Table VII pipeline).
func BenchmarkTable7(b *testing.B) {
	c := benchCorpus(b)
	samples := benchSamples(b, c)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := samples[i%len(samples)]
		if _, err := c.Engine.QueryTerms(s.Terms, core.StrategyPartition, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable8 measures the query-pool classification behind Table VIII:
// run the engine once per workload query and decide need-refinement.
func BenchmarkTable8(b *testing.B) {
	c := benchCorpus(b)
	batch, err := c.Workload(datagen.WorkloadConfig{Seed: 2025, Queries: 10})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cs := batch[i%len(batch)]
		if _, err := c.Engine.QueryTerms(cs.Corrupted, core.StrategyPartition, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable9 measures one ranking-model evaluation step of Table IX:
// re-ranking an explored candidate set under the full model and scoring it
// with the CG machinery.
func BenchmarkTable9(b *testing.B) {
	c := benchCorpus(b)
	samples := benchSamples(b, c)
	type prepared struct {
		terms    []string
		rqs      [][]string
		dsims    []float64
		results  []map[string]bool
		intended map[string]bool
	}
	var pool []prepared
	for _, s := range samples {
		out, _, err := c.Engine.Explore(s.Terms, 4)
		if err != nil {
			b.Fatal(err)
		}
		if len(out.Candidates) == 0 {
			continue
		}
		p := prepared{terms: s.Terms, intended: map[string]bool{"x": true}}
		for _, it := range out.Candidates {
			p.rqs = append(p.rqs, it.RQ.Keywords)
			p.dsims = append(p.dsims, it.RQ.DSim)
			res := map[string]bool{}
			for _, m := range it.Results {
				res[m.ID.String()] = true
			}
			p.results = append(p.results, res)
		}
		pool = append(pool, p)
	}
	if len(pool) == 0 {
		b.Skip("no refinable samples")
	}
	judges := eval.NewJudges(6, 99, 0.15)
	model := rank.Default()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := pool[i%len(pool)]
		for j := range p.rqs {
			if _, err := model.Rank(c.Index, nil, p.terms, p.rqs[j], p.dsims[j]); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := eval.AverageCG(judges, p.intended, p.results, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable10 measures the (α,β) weighting sweep of Table X on one
// explored query.
func BenchmarkTable10(b *testing.B) {
	c := benchCorpus(b)
	samples := benchSamples(b, c)
	out, cands, err := c.Engine.Explore(samples[0].Terms, 4)
	if err != nil {
		b.Fatal(err)
	}
	if len(out.Candidates) == 0 {
		b.Skip("sample not refinable")
	}
	weights := []rank.Model{}
	for _, ab := range [][2]float64{{1, 1}, {1, 0}, {0, 1}, {2, 1}, {1, 2}} {
		m := rank.Default()
		m.Alpha, m.Beta = ab[0], ab[1]
		weights = append(weights, m)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := weights[i%len(weights)]
		for _, it := range out.Candidates {
			if _, err := m.Rank(c.Index, cands, samples[0].Terms, it.RQ.Keywords, it.RQ.DSim); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkParallelQueries drives the engine from all cores at once — the
// serving profile behind cmd/xserve. The engine is read-only after build,
// so throughput should scale with cores.
func BenchmarkParallelQueries(b *testing.B) {
	c := benchCorpus(b)
	batch, err := c.Workload(datagen.WorkloadConfig{Seed: 31, Queries: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			cs := batch[i%len(batch)]
			i++
			if _, err := c.Engine.QueryTerms(cs.Corrupted, core.StrategyPartition, 3); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPartitionTopKParallel measures the parallel partition pipeline
// against the sequential baseline (workers=1) on the batch Top-K workload.
// Inputs are prepared outside the timed loop so the measurement isolates
// the partition walk itself.
func BenchmarkPartitionTopKParallel(b *testing.B) {
	c := benchCorpus(b)
	batch, err := c.Workload(datagen.WorkloadConfig{Seed: 555, Queries: 10})
	if err != nil {
		b.Fatal(err)
	}
	ins := make([]refine.Input, 0, len(batch))
	for _, cs := range batch {
		in, _, err := c.Engine.Prepare(cs.Corrupted)
		if err != nil {
			b.Fatal(err)
		}
		ins = append(ins, in)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				in := ins[i%len(ins)]
				in.Parallelism = workers
				if _, err := refine.PartitionTopK(in, 3); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIndexBuild measures corpus indexing (Section VII construction).
func BenchmarkIndexBuild(b *testing.B) {
	doc, err := datagen.DBLPDocument(datagen.DBLPConfig{Authors: 200, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		index.Build(doc)
	}
}
