package searchfor

import (
	"math"
	"testing"

	"xrefine/internal/index"
	"xrefine/internal/xmltree"
)

const fig1 = `
<bib>
  <author>
    <name>John Ben</name>
    <publications>
      <inproceedings>
        <title>online DBLP in XML</title>
        <year>2001</year>
      </inproceedings>
      <inproceedings>
        <title>online database systems</title>
        <year>2003</year>
      </inproceedings>
      <article>
        <title>XML data mining</title>
        <year>2003</year>
      </article>
    </publications>
  </author>
  <author>
    <name>Mary Lee</name>
    <publications>
      <inproceedings>
        <title>XML keyword search</title>
        <year>2005</year>
      </inproceedings>
    </publications>
    <hobby>swimming</hobby>
  </author>
</bib>`

func buildIx(t testing.TB) *index.Index {
	t.Helper()
	doc, err := xmltree.ParseString(fig1, nil)
	if err != nil {
		t.Fatal(err)
	}
	return index.Build(doc)
}

// The paper's running example: for Q0 ~ {john, swimming}, "author is the
// only search for node candidate".
func TestInferPaperExample(t *testing.T) {
	ix := buildIx(t)
	cands := Infer(ix, []string{"john", "swimming"}, nil)
	if len(cands) != 1 {
		t.Fatalf("candidates = %v, want exactly author", cands)
	}
	if cands[0].Type.Path() != "bib/author" {
		t.Errorf("top candidate = %s", cands[0].Type.Path())
	}
}

func TestInferExcludesRoot(t *testing.T) {
	ix := buildIx(t)
	for _, c := range Infer(ix, []string{"xml", "2003", "john", "swimming"}, nil) {
		if c.Type.Parent == nil {
			t.Errorf("root type %s offered as search-for candidate", c.Type.Path())
		}
	}
}

func TestInferOrderingAndThreshold(t *testing.T) {
	ix := buildIx(t)
	cands := Infer(ix, []string{"xml", "2003"}, nil)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	if cands[0].Type.Tag != "author" {
		t.Errorf("top candidate = %s, want author", cands[0].Type.Path())
	}
	for i := 1; i < len(cands); i++ {
		if cands[i-1].Confidence < cands[i].Confidence {
			t.Error("candidates not sorted by confidence")
		}
	}
	// Tight threshold keeps only the best.
	tight := Infer(ix, []string{"xml", "2003"}, &Options{Threshold: 0.999})
	if len(tight) != 1 {
		t.Errorf("tight threshold gave %d candidates", len(tight))
	}
	// MaxCandidates caps.
	capped := Infer(ix, []string{"xml", "2003"}, &Options{Threshold: 0.01, MaxCandidates: 2})
	if len(capped) > 2 {
		t.Errorf("cap ignored: %d", len(capped))
	}
}

func TestInferUnknownTerms(t *testing.T) {
	ix := buildIx(t)
	if cands := Infer(ix, []string{"zzz", "qqq"}, nil); cands != nil {
		t.Errorf("unknown terms produced candidates: %v", cands)
	}
}

func TestConfidenceFormula(t *testing.T) {
	ix := buildIx(t)
	author, _ := ix.Types.ByPath("bib/author")
	// f_john^author = 1, f_swimming^author = 1 => ln(3) * 0.8^1
	got := Confidence(ix, []string{"john", "swimming"}, author, 0.8)
	want := math.Log(3) * 0.8
	if diff := got - want; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("confidence = %v, want %v", got, want)
	}
	if c := Confidence(ix, []string{"zzz"}, author, 0.8); c != 0 {
		t.Errorf("zero-df confidence = %v", c)
	}
}

func TestJudgeMeaningful(t *testing.T) {
	ix := buildIx(t)
	j := NewJudge(Infer(ix, []string{"john", "swimming"}, nil)) // {author}
	hobby, _ := ix.Types.ByPath("bib/author/hobby")
	author, _ := ix.Types.ByPath("bib/author")
	bib, _ := ix.Types.ByPath("bib")
	if !j.Meaningful(hobby) {
		t.Error("hobby (descendant of author) should be meaningful")
	}
	if !j.Meaningful(author) {
		t.Error("author itself should be meaningful")
	}
	if j.Meaningful(bib) {
		t.Error("root must not be meaningful (paper: typical meaningless SLCA)")
	}
	// memoized second call agrees
	if !j.Meaningful(hobby) || j.Meaningful(bib) {
		t.Error("memoization changed verdicts")
	}
}

func TestJudgeMeaningfulLCA(t *testing.T) {
	ix := buildIx(t)
	j := NewJudge(Infer(ix, []string{"john", "swimming"}, nil))
	title, _ := ix.Types.ByPath("bib/author/publications/inproceedings/title")
	// LCA at depth 1 of a title posting is an author node -> meaningful.
	if !j.MeaningfulLCA(title, 1) {
		t.Error("author-depth LCA should be meaningful")
	}
	// LCA at depth 0 is the root -> not meaningful.
	if j.MeaningfulLCA(title, 0) {
		t.Error("root LCA should not be meaningful")
	}
	// Depth beyond the posting's own depth is invalid -> false.
	if j.MeaningfulLCA(title, 99) {
		t.Error("invalid depth should be false")
	}
}

func TestEmptyJudge(t *testing.T) {
	ix := buildIx(t)
	j := NewJudge(nil)
	author, _ := ix.Types.ByPath("bib/author")
	if j.Meaningful(author) {
		t.Error("empty judge should call nothing meaningful")
	}
	if len(j.Candidates()) != 0 {
		t.Error("candidates leaked")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := (&Options{Reduction: -1, Threshold: 2, MaxCandidates: -5}).withDefaults()
	d := DefaultOptions()
	if o != d {
		t.Errorf("invalid options not replaced by defaults: %+v", o)
	}
	o2 := (&Options{Reduction: 0.5, Threshold: 0.5, MaxCandidates: 7}).withDefaults()
	if o2.Reduction != 0.5 || o2.Threshold != 0.5 || o2.MaxCandidates != 7 {
		t.Errorf("valid options overridden: %+v", o2)
	}
}
