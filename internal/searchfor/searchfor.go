// Package searchfor infers the node type(s) a keyword query intends to
// search for (Section III-A of the paper) and provides the meaningful-SLCA
// predicate built on them (Definition 3.3): a matching result only makes
// sense to a user when it sits at or below an entity the query plausibly
// targets — otherwise even a technically correct SLCA (typically the
// document root) is noise.
package searchfor

import (
	"math"
	"sort"
	"sync"

	"xrefine/internal/index"
	"xrefine/internal/xmltree"
)

// Options tune Formula 1 and candidate selection.
type Options struct {
	// Reduction is the depth reduction factor r in Formula 1, in (0,1).
	// Deeper node types are progressively less plausible search targets.
	Reduction float64
	// Threshold keeps every type whose confidence is within
	// Threshold*max of the best type, modeling the paper's "multiple
	// desired search-for nodes with comparable confidence" (Guideline 3).
	Threshold float64
	// MaxCandidates caps the candidate list.
	MaxCandidates int
}

// DefaultOptions returns the values used throughout the evaluation:
// r = 0.8 (the decay the paper recommends), θ = 0.8, at most 3 candidates.
func DefaultOptions() Options {
	return Options{Reduction: 0.8, Threshold: 0.8, MaxCandidates: 3}
}

func (o *Options) withDefaults() Options {
	out := DefaultOptions()
	if o != nil {
		if o.Reduction > 0 && o.Reduction < 1 {
			out.Reduction = o.Reduction
		}
		if o.Threshold > 0 && o.Threshold <= 1 {
			out.Threshold = o.Threshold
		}
		if o.MaxCandidates > 0 {
			out.MaxCandidates = o.MaxCandidates
		}
	}
	return out
}

// Candidate is a node type with its search-for confidence C_for(T,Q).
type Candidate struct {
	Type       *xmltree.Type
	Confidence float64
}

// Confidence computes Formula 1 for a single type:
//
//	C_for(T,Q) = ln(1 + Σ_{k∈Q} f_k^T) * r^depth(T)
//
// The sum (rather than product) of XML document frequencies tolerates
// keywords that do not occur in the document at all — exactly the queries
// this system exists for.
func Confidence(ix *index.Index, terms []string, t *xmltree.Type, reduction float64) float64 {
	sum := 0
	for _, k := range terms {
		sum += ix.DF(k, t)
	}
	if sum == 0 {
		return 0
	}
	return math.Log(1+float64(sum)) * math.Pow(reduction, float64(t.Depth))
}

// Infer scores every node type and returns the candidate list L of
// Definition 3.3: types with comparable top confidence, best first. The
// root type is excluded — the paper calls the document root "a typical
// meaningless SLCA", and admitting it as a search-for node would make
// every result trivially meaningful.
func Infer(ix *index.Index, terms []string, opts *Options) []Candidate {
	o := opts.withDefaults()
	var scored []Candidate
	for _, t := range ix.Types.Types() {
		if t.Parent == nil {
			continue // root type
		}
		c := Confidence(ix, terms, t, o.Reduction)
		if c > 0 {
			scored = append(scored, Candidate{Type: t, Confidence: c})
		}
	}
	if len(scored) == 0 {
		return nil
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].Confidence != scored[j].Confidence {
			return scored[i].Confidence > scored[j].Confidence
		}
		return scored[i].Type.Path() < scored[j].Type.Path()
	})
	cut := scored[0].Confidence * o.Threshold
	out := scored[:0]
	for _, c := range scored {
		if c.Confidence < cut || len(out) >= o.MaxCandidates {
			break
		}
		out = append(out, c)
	}
	return out
}

// Judge answers meaningfulness questions for one inferred candidate list.
// A Judge is safe for concurrent use: the parallel partition walk shares
// one judge across its workers.
type Judge struct {
	cands []Candidate
	// byID memoizes the per-type verdict: type IDs are dense and
	// queries probe the same few types over and over. The verdict for a
	// type never changes, so concurrent duplicate stores agree —
	// sync.Map's write-once read-many case.
	byID sync.Map
}

// NewJudge wraps a candidate list; an empty list yields a judge that calls
// nothing meaningful, which by Definition 3.4 forces refinement.
func NewJudge(cands []Candidate) *Judge {
	return &Judge{cands: cands}
}

// Candidates returns the wrapped candidate list, best first.
func (j *Judge) Candidates() []Candidate { return j.cands }

// Meaningful reports whether a node of type t is a self-or-descendant of a
// node of some candidate type — the type-level half of Definition 3.3. The
// caller pairs it with SLCA membership, which it already has.
func (j *Judge) Meaningful(t *xmltree.Type) bool {
	if v, ok := j.byID.Load(t.ID); ok {
		return v.(bool)
	}
	v := false
	for _, c := range j.cands {
		if t.HasPrefix(c.Type) {
			v = true
			break
		}
	}
	j.byID.Store(t.ID, v)
	return v
}

// MeaningfulLCA reports whether the LCA at the given Dewey depth of a node
// with posting type pt is meaningful. An LCA's type is the ancestor of any
// contained posting's type at the LCA's depth, so the verdict needs no
// access to the tree itself — only to the posting that witnessed the LCA.
func (j *Judge) MeaningfulLCA(pt *xmltree.Type, depth int) bool {
	t, err := pt.AncestorAt(depth)
	if err != nil {
		return false
	}
	return j.Meaningful(t)
}
