// Package experiments reproduces every table and figure of the paper's
// Section VIII on the synthetic substrate: one runner per experiment, each
// returning plain row structs that cmd/xbench renders and the benchmark
// harness times. DESIGN.md carries the experiment index mapping each
// runner back to the paper.
package experiments

import (
	"fmt"
	"sync"

	"xrefine/internal/core"
	"xrefine/internal/datagen"
	"xrefine/internal/index"
	"xrefine/internal/xmltree"
)

// FullDBLPAuthors is the author count of the 100% synthetic DBLP corpus;
// Figure 6 scales it down to 20%.
const FullDBLPAuthors = 2000

// Corpus is a generated dataset with its index and a default engine.
type Corpus struct {
	Name   string
	Doc    *xmltree.Document
	Index  *index.Index
	Engine *core.Engine
}

var (
	corpusMu    sync.Mutex
	corpusCache = map[string]*Corpus{}
)

// DBLPCorpus builds (and caches) the DBLP-like corpus at a fraction of the
// full size; scale 1.0 is the full corpus.
func DBLPCorpus(scale float64) (*Corpus, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("experiments: scale %v out of (0,1]", scale)
	}
	name := fmt.Sprintf("dblp-%.0f%%", scale*100)
	return cached(name, func() (*Corpus, error) {
		doc, err := datagen.DBLPDocument(datagen.DBLPConfig{
			Authors: int(float64(FullDBLPAuthors) * scale),
			Seed:    42,
		})
		if err != nil {
			return nil, err
		}
		return newCorpus(name, doc), nil
	})
}

// BaseballCorpus builds (and caches) the Baseball-like corpus.
func BaseballCorpus() (*Corpus, error) {
	return cached("baseball", func() (*Corpus, error) {
		doc, err := datagen.BaseballDocument(datagen.BaseballConfig{Teams: 30, Seed: 42})
		if err != nil {
			return nil, err
		}
		return newCorpus("baseball", doc), nil
	})
}

func cached(name string, build func() (*Corpus, error)) (*Corpus, error) {
	corpusMu.Lock()
	defer corpusMu.Unlock()
	if c, ok := corpusCache[name]; ok {
		return c, nil
	}
	c, err := build()
	if err != nil {
		return nil, err
	}
	corpusCache[name] = c
	return c, nil
}

func newCorpus(name string, doc *xmltree.Document) *Corpus {
	ix := index.Build(doc)
	return &Corpus{
		Name:   name,
		Doc:    doc,
		Index:  ix,
		Engine: core.NewFromIndex(ix, nil),
	}
}

// Workload samples a corruption workload over the corpus.
func (c *Corpus) Workload(cfg datagen.WorkloadConfig) ([]datagen.Case, error) {
	return datagen.Workload(c.Doc, cfg)
}
