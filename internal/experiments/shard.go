package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"xrefine/internal/core"
	"xrefine/internal/datagen"
	"xrefine/internal/kvstore"
	"xrefine/internal/shard"
)

// ShardRow is one line of the monolith-vs-sharded comparison: batch
// average Top-K query time at a shard count with full fan-out, its
// speedup over the monolithic engine, and whether every response was
// identical to the monolithic one (the byte-identity guarantee of the
// scatter-gather merge).
type ShardRow struct {
	Shards    int           `json:"shards"`
	Avg       time.Duration `json:"avg_ns"`
	AvgMS     float64       `json:"avg_ms"`
	Speedup   float64       `json:"speedup"`
	Identical bool          `json:"identical"`
}

// ShardCompare times a corruption batch against in-memory shard routers
// at each shard count, fanning out across all shards per query, and
// against a monolithic engine over the unsplit corpus. Every sharded
// response is checked against the monolithic signature — fan-out scaling
// is only worth reporting if the answers stay exact.
func ShardCompare(c *Corpus, batch []datagen.Case, shardCounts []int, k, reps int) ([]ShardRow, error) {
	mono := core.NewFromDocument(c.Doc, &core.Config{DisableMetrics: true})
	want := make([]string, len(batch))
	for i, cs := range batch {
		resp, err := mono.QueryTerms(cs.Corrupted, core.StrategyPartition, k)
		if err != nil {
			return nil, fmt.Errorf("shard compare monolith %v: %w", cs.Corrupted, err)
		}
		want[i] = shardSig(resp)
	}
	base, err := timeIt(reps, func() error {
		for _, cs := range batch {
			if _, err := mono.QueryTerms(cs.Corrupted, core.StrategyPartition, k); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := []ShardRow{{Shards: 1, Avg: base, AvgMS: msFloat(base), Speedup: 1, Identical: true}}
	ctx := context.Background()
	for _, n := range shardCounts {
		if n <= 1 {
			continue
		}
		r, cleanup, err := memRouter(c, n)
		if err != nil {
			return nil, err
		}
		row := ShardRow{Shards: n, Identical: true}
		for i, cs := range batch {
			resp, err := r.QueryTermsCtx(ctx, cs.Corrupted, core.StrategyPartition, k, 0)
			if err != nil {
				cleanup()
				return nil, err
			}
			if shardSig(resp) != want[i] {
				row.Identical = false
			}
		}
		row.Avg, err = timeIt(reps, func() error {
			for _, cs := range batch {
				if _, err := r.QueryTermsCtx(ctx, cs.Corrupted, core.StrategyPartition, k, 0); err != nil {
					return err
				}
			}
			return nil
		})
		cleanup()
		if err != nil {
			return nil, err
		}
		row.AvgMS = msFloat(row.Avg)
		if row.Avg > 0 {
			row.Speedup = float64(base) / float64(row.Avg)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// memRouter splits the corpus into n in-memory shard stores and opens a
// router over them — the serving topology without the disk. The returned
// cleanup closes the router and its stores.
func memRouter(c *Corpus, n int) (*shard.Router, func(), error) {
	subs, err := shard.SplitDocument(c.Doc, n, shard.ModeRange)
	if err != nil {
		return nil, nil, err
	}
	stores := make([]*kvstore.Store, n)
	closeStores := func() {
		for _, s := range stores {
			if s != nil {
				s.Close()
			}
		}
	}
	for i, sub := range subs {
		stores[i] = kvstore.NewMem()
		eng := core.NewFromDocument(sub, &core.Config{DisableMetrics: true})
		if err := eng.SaveIndexWithDocument(stores[i]); err != nil {
			closeStores()
			return nil, nil, err
		}
	}
	r, err := shard.NewFromStores(stores, nil, &shard.Options{Config: &core.Config{DisableMetrics: true}})
	if err != nil {
		closeStores()
		return nil, nil, err
	}
	return r, func() { r.Close(); closeStores() }, nil
}

// shardSig flattens a response to the fields the server serializes —
// equal signatures mean byte-identical /search bodies.
func shardSig(resp *core.Response) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v|%v|%s|", resp.NeedRefine, resp.Degraded, resp.DegradedReason)
	for _, q := range resp.Queries {
		fmt.Fprintf(&b, "%s|%v|%v|", strings.Join(q.Keywords, ","), q.DSim, q.Score)
		for _, m := range q.Results {
			fmt.Fprintf(&b, "%s:%s;", m.ID, m.Type.Path())
		}
	}
	return b.String()
}
