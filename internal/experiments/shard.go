package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"xrefine/internal/core"
	"xrefine/internal/datagen"
	"xrefine/internal/kvstore"
	"xrefine/internal/shard"
	"xrefine/internal/storage"
)

// ShardRow is one line of the monolith-vs-sharded comparison: batch
// average Top-K query time at a shard count with full fan-out, its
// speedup over the monolithic engine, and whether every response was
// identical to the monolithic one (the byte-identity guarantee of the
// scatter-gather merge).
type ShardRow struct {
	Shards    int           `json:"shards"`
	Avg       time.Duration `json:"avg_ns"`
	AvgMS     float64       `json:"avg_ms"`
	Speedup   float64       `json:"speedup"`
	Identical bool          `json:"identical"`
}

// ShardCompare times a corruption batch against in-memory shard routers
// at each shard count, fanning out across all shards per query, and
// against a monolithic engine over the unsplit corpus. Every sharded
// response is checked against the monolithic signature — fan-out scaling
// is only worth reporting if the answers stay exact.
func ShardCompare(c *Corpus, batch []datagen.Case, shardCounts []int, k, reps int) ([]ShardRow, error) {
	mono := core.NewFromDocument(c.Doc, &core.Config{DisableMetrics: true})
	want := make([]string, len(batch))
	for i, cs := range batch {
		resp, err := mono.QueryTerms(cs.Corrupted, core.StrategyPartition, k)
		if err != nil {
			return nil, fmt.Errorf("shard compare monolith %v: %w", cs.Corrupted, err)
		}
		want[i] = shardSig(resp)
	}
	base, err := timeIt(reps, func() error {
		for _, cs := range batch {
			if _, err := mono.QueryTerms(cs.Corrupted, core.StrategyPartition, k); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := []ShardRow{{Shards: 1, Avg: base, AvgMS: msFloat(base), Speedup: 1, Identical: true}}
	ctx := context.Background()
	for _, n := range shardCounts {
		if n <= 1 {
			continue
		}
		r, cleanup, err := memRouter(c, n)
		if err != nil {
			return nil, err
		}
		row := ShardRow{Shards: n, Identical: true}
		for i, cs := range batch {
			resp, err := r.QueryTermsCtx(ctx, cs.Corrupted, core.StrategyPartition, k, 0)
			if err != nil {
				cleanup()
				return nil, err
			}
			if shardSig(resp) != want[i] {
				row.Identical = false
			}
		}
		row.Avg, err = timeIt(reps, func() error {
			for _, cs := range batch {
				if _, err := r.QueryTermsCtx(ctx, cs.Corrupted, core.StrategyPartition, k, 0); err != nil {
					return err
				}
			}
			return nil
		})
		cleanup()
		if err != nil {
			return nil, err
		}
		row.AvgMS = msFloat(row.Avg)
		if row.Avg > 0 {
			row.Speedup = float64(base) / float64(row.Avg)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// memRouter splits the corpus into n in-memory shard stores and opens a
// router over them — the serving topology without the disk. The returned
// cleanup closes the router and its stores.
func memRouter(c *Corpus, n int) (*shard.Router, func(), error) {
	subs, err := shard.SplitDocument(c.Doc, n, shard.ModeRange)
	if err != nil {
		return nil, nil, err
	}
	stores := make([]storage.Backend, n)
	closeStores := func() {
		for _, s := range stores {
			if s != nil {
				s.Close()
			}
		}
	}
	for i, sub := range subs {
		stores[i] = kvstore.NewMem()
		eng := core.NewFromDocument(sub, &core.Config{DisableMetrics: true})
		if err := eng.SaveIndexWithDocument(stores[i]); err != nil {
			closeStores()
			return nil, nil, err
		}
	}
	r, err := shard.NewFromStores(stores, nil, &shard.Options{Config: &core.Config{DisableMetrics: true}})
	if err != nil {
		closeStores()
		return nil, nil, err
	}
	return r, func() { r.Close(); closeStores() }, nil
}

// TailRow is one line of the hedged-read tail-latency experiment:
// per-query latency percentiles over a replicated router with one slow
// replica per shard, hedging off vs on.
type TailRow struct {
	Mode      string  `json:"mode"`
	Samples   int     `json:"samples"`
	P50MS     float64 `json:"p50_ms"`
	P99MS     float64 `json:"p99_ms"`
	AvgMS     float64 `json:"avg_ms"`
	Hedges    uint64  `json:"hedges"`
	Identical bool    `json:"identical"`
}

// ShardTailLatency measures what read hedging buys: every shard gets two
// replicas, replica 0 slowed by a fixed per-page-read latency, and the
// same query batch runs with hedging off and then on. Before every query
// the replica health state is reset and the slow replica's page cache
// dropped, so each query faces a cold selector that picks the slow
// replica first — the queries hedging exists to protect (a warmed EWMA
// routes around a known-slow replica on its own). Responses are checked
// against the monolithic signature in both modes: a hedge winner must
// serve the same bytes as the loser it beat.
func ShardTailLatency(c *Corpus, batch []datagen.Case, shards, k, rounds int, slow, hedgeAfter time.Duration) ([]TailRow, error) {
	mono := core.NewFromDocument(c.Doc, &core.Config{DisableMetrics: true})
	want := make([]string, len(batch))
	for i, cs := range batch {
		resp, err := mono.QueryTerms(cs.Corrupted, core.StrategyPartition, k)
		if err != nil {
			return nil, err
		}
		want[i] = shardSig(resp)
	}
	ctx := context.Background()
	var rows []TailRow
	for _, mode := range []struct {
		name  string
		hedge time.Duration
	}{{"hedging off", 0}, {"hedging on", hedgeAfter}} {
		r, slowStores, cleanup, err := memReplicatedRouter(c, shards, slow, mode.hedge)
		if err != nil {
			return nil, err
		}
		row := TailRow{Mode: mode.name, Identical: true}
		var samples []time.Duration
		for rep := 0; rep < rounds; rep++ {
			for i, cs := range batch {
				r.ResetReplicaHealth()
				for _, s := range slowStores {
					s.DropCaches()
				}
				start := time.Now()
				resp, err := r.QueryTermsCtx(ctx, cs.Corrupted, core.StrategyPartition, k, 0)
				if err != nil {
					cleanup()
					return nil, err
				}
				samples = append(samples, time.Since(start))
				if shardSig(resp) != want[i] {
					row.Identical = false
				}
			}
		}
		row.Samples = len(samples)
		row.P50MS = msFloat(percentile(samples, 50))
		row.P99MS = msFloat(percentile(samples, 99))
		var sum time.Duration
		for _, d := range samples {
			sum += d
		}
		row.AvgMS = msFloat(sum / time.Duration(len(samples)))
		// The hedge counter lives on the router's registry; re-registering
		// the same family returns the live counter.
		row.Hedges = r.Metrics().Counter("xrefine_replica_hedges_total", "").Value()
		cleanup()
		rows = append(rows, row)
	}
	return rows, nil
}

// memReplicatedRouter builds a 2-replica in-memory router with replica 0
// of every shard behind a fixed per-page-read latency. It returns the
// slow stores so the caller can drop their caches between queries.
func memReplicatedRouter(c *Corpus, n int, slow, hedgeAfter time.Duration) (*shard.Router, []storage.Backend, func(), error) {
	subs, err := shard.SplitDocument(c.Doc, n, shard.ModeRange)
	if err != nil {
		return nil, nil, nil, err
	}
	stores := make([][]storage.Backend, n)
	var slowStores []storage.Backend
	faults := make([]*kvstore.Faults, n)
	closeStores := func() {
		for _, grp := range stores {
			for _, s := range grp {
				s.Close()
			}
		}
	}
	for i, sub := range subs {
		eng := core.NewFromDocument(sub, &core.Config{DisableMetrics: true})
		faults[i] = &kvstore.Faults{}
		for j := 0; j < 2; j++ {
			var f *kvstore.Faults
			if j == 0 {
				f = faults[i]
			}
			s := kvstore.NewMemWithFaults(f)
			if err := eng.SaveIndexWithDocument(s); err != nil {
				closeStores()
				return nil, nil, nil, err
			}
			stores[i] = append(stores[i], s)
			if j == 0 {
				slowStores = append(slowStores, s)
			}
		}
	}
	r, err := shard.NewReplicated(stores, nil, &shard.Options{HedgeAfter: hedgeAfter})
	if err != nil {
		closeStores()
		return nil, nil, nil, err
	}
	// Armed after construction so only query-time reads pay the latency.
	for _, f := range faults {
		f.ReadLatency = slow
	}
	return r, slowStores, func() { r.Close(); closeStores() }, nil
}

// percentile returns the p-th percentile (nearest-rank) of the samples.
func percentile(samples []time.Duration, p int) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := (len(sorted)*p + 99) / 100
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// shardSig flattens a response to the fields the server serializes —
// equal signatures mean byte-identical /search bodies.
func shardSig(resp *core.Response) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v|%v|%s|", resp.NeedRefine, resp.Degraded, resp.DegradedReason)
	for _, q := range resp.Queries {
		fmt.Fprintf(&b, "%s|%v|%v|", strings.Join(q.Keywords, ","), q.DSim, q.Score)
		for _, m := range q.Results {
			fmt.Fprintf(&b, "%s:%s;", m.ID, m.Type.Path())
		}
	}
	return b.String()
}
