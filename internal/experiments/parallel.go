package experiments

import (
	"fmt"
	"strings"
	"time"

	"xrefine/internal/datagen"
	"xrefine/internal/refine"
)

// ParallelRow is one line of the sequential-vs-parallel comparison: batch
// average Top-K partition-walk time at a worker count, its speedup over
// the sequential walk, and whether every outcome was identical to the
// sequential one (the determinism guarantee of partition_parallel.go).
type ParallelRow struct {
	Workers   int           `json:"workers"`
	Avg       time.Duration `json:"avg_ns"`
	AvgMS     float64       `json:"avg_ms"`
	Speedup   float64       `json:"speedup"`
	Identical bool          `json:"identical"`
	Engaged   int           `json:"engaged"` // queries that actually ran >1 worker
}

// ParallelCompare times the partition Top-K walk over a corruption batch
// at each worker count, bypassing the response cache: inputs are prepared
// once and refine.PartitionTopK is invoked directly, so the measurement
// isolates the walk the parallel layer accelerates. Every parallel outcome
// is checked against the sequential signature.
func ParallelCompare(c *Corpus, batch []datagen.Case, workerCounts []int, k, reps int) ([]ParallelRow, error) {
	ins := make([]refine.Input, 0, len(batch))
	for _, cs := range batch {
		in, _, err := c.Engine.Prepare(cs.Corrupted)
		if err != nil {
			return nil, fmt.Errorf("parallel compare prepare %v: %w", cs.Corrupted, err)
		}
		ins = append(ins, in)
	}
	// Sequential baseline: timing plus the reference signatures.
	want := make([]string, len(ins))
	for i := range ins {
		ins[i].Parallelism = 1
		out, err := refine.PartitionTopK(ins[i], k)
		if err != nil {
			return nil, err
		}
		want[i] = parallelSig(out)
	}
	base, err := timeIt(reps, func() error {
		for i := range ins {
			ins[i].Parallelism = 1
			if _, err := refine.PartitionTopK(ins[i], k); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := []ParallelRow{{Workers: 1, Avg: base, AvgMS: msFloat(base), Speedup: 1, Identical: true}}
	for _, w := range workerCounts {
		if w <= 1 {
			continue
		}
		row := ParallelRow{Workers: w, Identical: true}
		for i := range ins {
			out, err := refine.PartitionTopKParallel(ins[i], k, w)
			if err != nil {
				return nil, err
			}
			if out.Workers > 1 {
				row.Engaged++
			}
			if parallelSig(out) != want[i] {
				row.Identical = false
			}
		}
		row.Avg, err = timeIt(reps, func() error {
			for i := range ins {
				if _, err := refine.PartitionTopKParallel(ins[i], k, w); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		row.AvgMS = msFloat(row.Avg)
		if row.Avg > 0 {
			row.Speedup = float64(base) / float64(row.Avg)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func msFloat(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// parallelSig flattens an outcome to the fields the engine consumes, in
// order — equal signatures mean byte-identical downstream behavior.
func parallelSig(out *refine.TopKOutcome) string {
	var b strings.Builder
	for _, it := range out.Candidates {
		fmt.Fprintf(&b, "%s|%v|", strings.Join(it.RQ.Keywords, ","), it.RQ.DSim)
		for _, m := range it.Results {
			fmt.Fprintf(&b, "%s:%s;", m.ID, m.Type.Path())
		}
	}
	return b.String()
}
