package experiments

import (
	"fmt"
	"strings"

	"xrefine/internal/core"
	"xrefine/internal/datagen"
	"xrefine/internal/eval"
)

// Sample is one labeled sample query in the style of Tables III-VI: a
// corrupted query whose needed refinement operation is known. Note the
// inversion: a query needing term *merging* comes from a *split* corruption
// and vice versa.
type Sample struct {
	ID       string
	Op       string // needed refinement operation
	Terms    []string
	Intended []string
}

// opPlans maps the needed refinement operation to the corruption that
// produces queries needing it, mirroring the paper's four query sets.
var opPlans = []struct {
	op      string
	corrupt []datagen.Corruption
	prefix  string
}{
	{op: "deletion", corrupt: []datagen.Corruption{datagen.CorruptRestrict}, prefix: "QD"},
	{op: "merging", corrupt: []datagen.Corruption{datagen.CorruptSplit}, prefix: "QM"},
	{op: "split", corrupt: []datagen.Corruption{datagen.CorruptMerge}, prefix: "QS"},
	{op: "substitution", corrupt: []datagen.Corruption{datagen.CorruptTypo, datagen.CorruptMismatch}, prefix: "QT"},
}

// needsRefinement reports whether the engine finds no meaningful result
// for the query — the selection criterion the paper applies to its query
// log (219 of 1000 logged queries had empty results and formed the pool).
func needsRefinement(c *Corpus, terms []string) (bool, error) {
	resp, err := c.Engine.QueryTerms(terms, core.StrategyPartition, 1)
	if err != nil {
		return false, err
	}
	return resp.NeedRefine, nil
}

// selectCases oversamples a corruption workload and keeps the first `want`
// cases whose corrupted query actually needs refinement.
func selectCases(c *Corpus, cfg datagen.WorkloadConfig, want int) ([]datagen.Case, error) {
	cfg.Queries = want * 6
	cases, err := c.Workload(cfg)
	if err != nil {
		return nil, err
	}
	var out []datagen.Case
	for _, cs := range cases {
		need, err := needsRefinement(c, cs.Corrupted)
		if err != nil {
			return nil, err
		}
		if need {
			out = append(out, cs)
			if len(out) == want {
				break
			}
		}
	}
	if len(out) < want {
		return nil, fmt.Errorf("experiments: only %d of %d requested refinement-needing cases found", len(out), want)
	}
	return out, nil
}

// SampleQueries deterministically builds three sample queries per
// refinement operation plus four mixed-corruption queries (the paper's
// QX1-QX4). Every sample is verified to need refinement.
func SampleQueries(c *Corpus) ([]Sample, error) {
	var out []Sample
	for _, plan := range opPlans {
		cases, err := selectCases(c, datagen.WorkloadConfig{
			Seed: int64(len(plan.op)) * 101,
			Ops:  plan.corrupt,
		}, 3)
		if err != nil {
			return nil, err
		}
		for i, cs := range cases {
			out = append(out, Sample{
				ID:       fmt.Sprintf("%s%d", plan.prefix, i+1),
				Op:       plan.op,
				Terms:    cs.Corrupted,
				Intended: cs.Intended,
			})
		}
	}
	mixed, err := selectCases(c, datagen.WorkloadConfig{
		Seed:        777,
		OpsPerQuery: 2,
	}, 4)
	if err != nil {
		return nil, err
	}
	for i, cs := range mixed {
		out = append(out, Sample{
			ID:       fmt.Sprintf("QX%d", i+1),
			Op:       "mixed",
			Terms:    cs.Corrupted,
			Intended: cs.Intended,
		})
	}
	return out, nil
}

// TableRow is one row of the Tables III-VI reproduction: the corrupted
// query, the engine's suggested refinement, and the refinement's result
// size (the paper's 4th column).
type TableRow struct {
	ID         string
	Original   []string
	Suggested  []string
	DSim       float64
	ResultSize int
}

// Tables3to6 reproduces the per-operation sample query tables: for each
// refinement operation, `perOp` corrupted queries with the engine's top
// suggestion.
func Tables3to6(c *Corpus, perOp int) (map[string][]TableRow, error) {
	out := make(map[string][]TableRow, len(opPlans))
	for _, plan := range opPlans {
		cases, err := selectCases(c, datagen.WorkloadConfig{
			Seed: int64(len(plan.op)) * 211,
			Ops:  plan.corrupt,
		}, perOp)
		if err != nil {
			return nil, err
		}
		for i, cs := range cases {
			resp, err := c.Engine.QueryTerms(cs.Corrupted, core.StrategyPartition, 1)
			if err != nil {
				return nil, err
			}
			row := TableRow{
				ID:       fmt.Sprintf("%s%d", plan.prefix, i+1),
				Original: cs.Corrupted,
			}
			if len(resp.Queries) > 0 {
				q := resp.Queries[0]
				row.Suggested = q.Keywords
				row.DSim = q.DSim
				row.ResultSize = len(q.Results)
			}
			out[plan.op] = append(out[plan.op], row)
		}
	}
	return out, nil
}

// Table7Row is one row of Table VII: the Top-4 refined queries with their
// matching result counts under the full ranking model.
type Table7Row struct {
	ID    string
	Query []string
	RQs   []Table7RQ
	// Agreement is the fraction of simulated judges who rate the rank-1
	// refinement at least as relevant as every lower rank — the paper
	// reports full agreement from its 6 human judges.
	Agreement float64
}

// Table7RQ is one ranked refinement cell.
type Table7RQ struct {
	Keywords []string
	Results  int
	Score    float64
}

// Table7 reproduces Table VII on the mixed sample queries, including the
// judge-agreement column behind the paper's "all 6 judges agree on rank-1"
// observation.
func Table7(c *Corpus) ([]Table7Row, error) {
	samples, err := SampleQueries(c)
	if err != nil {
		return nil, err
	}
	judges := eval.NewJudges(6, 99, 0.15)
	var rows []Table7Row
	for _, s := range samples {
		resp, err := c.Engine.QueryTerms(s.Terms, core.StrategyPartition, 4)
		if err != nil {
			return nil, err
		}
		if resp == nil || !resp.NeedRefine {
			continue
		}
		row := Table7Row{ID: s.ID, Query: s.Terms}
		var ranked []map[string]bool
		for _, q := range resp.Queries {
			row.RQs = append(row.RQs, Table7RQ{Keywords: q.Keywords, Results: len(q.Results), Score: q.Score})
			set := map[string]bool{}
			for _, m := range q.Results {
				set[m.ID.String()] = true
			}
			ranked = append(ranked, set)
		}
		if len(row.RQs) == 0 {
			continue
		}
		intended, err := intendedResults(c, s.Intended)
		if err != nil {
			return nil, err
		}
		if len(intended) > 0 {
			row.Agreement = eval.Rank1Agreement(judges, intended, ranked)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table8 summarizes the query pool, standing in for the paper's query-log
// statistics (219 empty-result queries of average length 3.92 plus 100
// random satisfiable ones).
type Table8 struct {
	PoolSize     int
	AvgLen       float64
	NeedRefine   int
	Refinable    int
	ByCorruption map[string]int
}

// BuildTable8 generates the evaluation query pool and its statistics.
func BuildTable8(c *Corpus, poolSize int) (*Table8, []datagen.Case, error) {
	cases, err := c.Workload(datagen.WorkloadConfig{Seed: 2025, Queries: poolSize})
	if err != nil {
		return nil, nil, err
	}
	t := &Table8{PoolSize: len(cases), ByCorruption: map[string]int{}}
	totalLen := 0
	var pool []datagen.Case
	for _, cs := range cases {
		totalLen += len(cs.Corrupted)
		for _, op := range cs.Applied {
			t.ByCorruption[op.String()]++
		}
		resp, err := c.Engine.QueryTerms(cs.Corrupted, core.StrategyPartition, 4)
		if err != nil {
			return nil, nil, err
		}
		if resp.NeedRefine {
			t.NeedRefine++
			if len(resp.Queries) > 0 {
				t.Refinable++
				pool = append(pool, cs)
			}
		}
	}
	t.AvgLen = float64(totalLen) / float64(len(cases))
	return t, pool, nil
}

// Render helpers ------------------------------------------------------

// JoinTerms renders a keyword list the way the paper's tables do.
func JoinTerms(terms []string) string { return strings.Join(terms, ",") }
