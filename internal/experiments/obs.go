package experiments

import (
	"context"
	"fmt"
	"time"

	"xrefine/internal/datagen"
	"xrefine/internal/obs"
	"xrefine/internal/refine"
)

// ObsRow is one line of the tracing-overhead comparison: batch average
// Top-K partition-walk time with tracing disarmed (Input.Trace nil, the
// production default) versus armed (a fresh root span per query, ended
// and snapshotted like explain=1 does).
type ObsRow struct {
	Mode        string        `json:"mode"`
	Avg         time.Duration `json:"avg_ns"`
	AvgMS       float64       `json:"avg_ms"`
	OverheadPct float64       `json:"overhead_pct"`
	Spans       int           `json:"spans"` // spans produced per batch (traced mode only)
}

// ObsOverhead measures what per-query tracing costs on the refinement hot
// path. Inputs are prepared once and refine.PartitionTopK is invoked
// directly — the same isolation ParallelCompare uses — so the delta is
// purely the span bookkeeping: StartChild/End/attribute writes plus the
// Data snapshot and pool Release that the explain=1 and slowlog surfaces
// perform per query.
func ObsOverhead(c *Corpus, batch []datagen.Case, k, reps int) ([]ObsRow, error) {
	ins := make([]refine.Input, 0, len(batch))
	for _, cs := range batch {
		in, _, err := c.Engine.Prepare(cs.Corrupted)
		if err != nil {
			return nil, fmt.Errorf("obs overhead prepare %v: %w", cs.Corrupted, err)
		}
		in.Parallelism = 1
		ins = append(ins, in)
	}
	base, err := timeIt(reps, func() error {
		for i := range ins {
			ins[i].Trace = nil
			if _, err := refine.PartitionTopK(ins[i], k); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// One untimed traced pass counts the spans a batch produces.
	spans := 0
	tracedBatch := func(count bool) error {
		for i := range ins {
			_, root := obs.NewTrace(context.Background(), "query")
			ins[i].Trace = root
			_, err := refine.PartitionTopK(ins[i], k)
			root.End()
			d := root.Data()
			if count {
				spans += countSpans(d)
			}
			root.Release()
			ins[i].Trace = nil
			if err != nil {
				return err
			}
		}
		return nil
	}
	if err := tracedBatch(true); err != nil {
		return nil, err
	}
	traced, err := timeIt(reps, func() error { return tracedBatch(false) })
	if err != nil {
		return nil, err
	}
	rows := []ObsRow{
		{Mode: "tracing off", Avg: base, AvgMS: msFloat(base)},
		{Mode: "tracing on", Avg: traced, AvgMS: msFloat(traced), Spans: spans},
	}
	if base > 0 {
		rows[1].OverheadPct = (float64(traced) - float64(base)) / float64(base) * 100
	}
	return rows, nil
}

func countSpans(d *obs.SpanData) int {
	if d == nil {
		return 0
	}
	n := 1
	for i := range d.Children {
		n += countSpans(d.Children[i])
	}
	return n
}
