package experiments

import (
	"fmt"
	"sort"

	"xrefine/internal/core"
	"xrefine/internal/datagen"
	"xrefine/internal/eval"
	"xrefine/internal/rank"
	"xrefine/internal/refine"
	"xrefine/internal/searchfor"
)

// CGRow is one row of the effectiveness tables: a ranking-model variant
// with its averaged CG@1..CG@depth vector.
type CGRow struct {
	Model string
	CG    []float64
}

// rankingVariant pairs a variant name with its model.
type rankingVariant struct {
	Name  string
	Model rank.Model
}

// RS variants of Table IX: the full model and the four guideline ablations.
func rsVariants() []rankingVariant {
	base := rank.Default()
	rs1 := base
	rs1.NoG1 = true
	rs2 := base
	rs2.NoG2 = true
	rs3 := base
	rs3.NoG3 = true
	rs4 := base
	rs4.NoG4 = true
	return []rankingVariant{
		{"RS0", base}, {"RS1", rs1}, {"RS2", rs2}, {"RS3", rs3}, {"RS4", rs4},
	}
}

// (α, β) variants of Table X.
func weightVariants() []rankingVariant {
	mk := func(a, b float64) rank.Model {
		m := rank.Default()
		m.Alpha, m.Beta = a, b
		return m
	}
	return []rankingVariant{
		{"[1,1]", mk(1, 1)},
		{"[1,0]", mk(1, 0)},
		{"[0,1]", mk(0, 1)},
		{"[2,1]", mk(2, 1)},
		{"[1,2]", mk(1, 2)},
	}
}

// evalQuery is one effectiveness-pool entry: a corrupted query, its
// explored candidates, and the intended query's result identity set.
type evalQuery struct {
	cs       datagen.Case
	outcome  *refine.TopKOutcome
	cands    []searchfor.Candidate
	intended map[string]bool
}

// effectivenessPool selects workload queries that (a) need refinement and
// (b) have at least minCandidates refined-query candidates — the paper's
// "50 queries that have no meaningful results ... and have at least 4
// possible RQ candidates".
func effectivenessPool(c *Corpus, want, minCandidates int) ([]evalQuery, error) {
	cases, err := c.Workload(datagen.WorkloadConfig{Seed: 4321, Queries: want * 4})
	if err != nil {
		return nil, err
	}
	var pool []evalQuery
	for _, cs := range cases {
		if len(pool) >= want {
			break
		}
		out, cands, err := c.Engine.Explore(cs.Corrupted, 4)
		if err != nil {
			return nil, err
		}
		refinable := true
		for _, it := range out.Candidates {
			if it.RQ.DSim == 0 && it.RQ.SameKeywords(cs.Corrupted) {
				refinable = false // the engine would not refine this query
				break
			}
		}
		if !refinable || len(out.Candidates) < minCandidates {
			continue
		}
		intended, err := intendedResults(c, cs.Intended)
		if err != nil {
			return nil, err
		}
		if len(intended) == 0 {
			continue
		}
		pool = append(pool, evalQuery{cs: cs, outcome: out, cands: cands, intended: intended})
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("experiments: no refinable queries with >= %d candidates", minCandidates)
	}
	return pool, nil
}

// intendedResults runs the intended (clean) query and returns its result
// identity set — the ground truth the simulated judges score against.
func intendedResults(c *Corpus, terms []string) (map[string]bool, error) {
	resp, err := c.Engine.QueryTerms(terms, core.StrategyPartition, 1)
	if err != nil {
		return nil, err
	}
	out := map[string]bool{}
	for _, q := range resp.Queries {
		if !q.IsOriginal {
			continue
		}
		for _, m := range q.Results {
			out[m.ID.String()] = true
		}
	}
	return out, nil
}

// rankCandidates orders one exploration's candidates under a ranking model
// variant and returns the top-`depth` result identity sets.
func rankCandidates(c *Corpus, q evalQuery, m rank.Model, depth int) ([]map[string]bool, error) {
	type scored struct {
		score float64
		dsim  float64
		res   map[string]bool
	}
	var ss []scored
	for _, it := range q.outcome.Candidates {
		score, err := m.Rank(c.Index, q.cands, q.cs.Corrupted, it.RQ.Keywords, it.RQ.DSim)
		if err != nil {
			return nil, err
		}
		res := make(map[string]bool, len(it.Results))
		for _, match := range it.Results {
			res[match.ID.String()] = true
		}
		ss = append(ss, scored{score: score, dsim: it.RQ.DSim, res: res})
	}
	sort.SliceStable(ss, func(i, j int) bool {
		if ss[i].score != ss[j].score {
			return ss[i].score > ss[j].score
		}
		return ss[i].dsim < ss[j].dsim
	})
	if len(ss) > depth {
		ss = ss[:depth]
	}
	out := make([]map[string]bool, len(ss))
	for i, s := range ss {
		out[i] = s.res
	}
	return out, nil
}

// cgTable runs the CG evaluation for a set of ranking variants over the
// effectiveness pool — the shared machinery of Tables IX and X.
func cgTable(c *Corpus, variants []rankingVariant, numQueries, depth int) ([]CGRow, error) {
	pool, err := effectivenessPool(c, numQueries, 4)
	if err != nil {
		return nil, err
	}
	judges := eval.NewJudges(6, 99, 0.15)
	var rows []CGRow
	for _, v := range variants {
		var vectors [][]float64
		for _, q := range pool {
			ranked, err := rankCandidates(c, q, v.Model, depth)
			if err != nil {
				return nil, err
			}
			cg, err := eval.AverageCG(judges, q.intended, ranked, depth)
			if err != nil {
				return nil, err
			}
			vectors = append(vectors, cg)
		}
		rows = append(rows, CGRow{Model: v.Name, CG: eval.MeanVectors(vectors)})
	}
	return rows, nil
}

// Table9 reproduces Table IX: CG@1..4 for the full ranking model RS0
// against the four per-guideline ablations RS1..RS4.
func Table9(c *Corpus, numQueries int) ([]CGRow, error) {
	return cgTable(c, rsVariants(), numQueries, 4)
}

// Table10 reproduces Table X: CG@1..4 for different (α, β) weightings of
// the similarity and dependence scores.
func Table10(c *Corpus, numQueries int) ([]CGRow, error) {
	return cgTable(c, weightVariants(), numQueries, 4)
}
