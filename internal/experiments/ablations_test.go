package experiments

import (
	"testing"

	"xrefine/internal/slca"
)

func TestAblationDecay(t *testing.T) {
	c := testCorpus(t)
	rows, err := AblationDecay(c, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if len(r.CG) != 4 {
			t.Fatalf("%s: CG = %v", r.Model, r.CG)
		}
		for i := 1; i < 4; i++ {
			if r.CG[i] < r.CG[i-1]-1e-9 {
				t.Errorf("%s: CG decreasing", r.Model)
			}
		}
	}
	// At depth 4 all decays see the same candidate pool, so CG@4 must be
	// positive for every variant.
	for _, r := range rows {
		if r.CG[3] <= 0 {
			t.Errorf("%s: empty CG@4", r.Model)
		}
	}
}

func TestAblationSearchFor(t *testing.T) {
	c := testCorpus(t)
	rows, err := AblationSearchFor(c, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.AvgCandidates <= 0 {
			t.Errorf("theta %.2f: no candidates", r.Theta)
		}
		// Higher thresholds admit fewer (or equal) candidates.
		if i > 0 && rows[i-1].Theta < r.Theta && r.AvgCandidates > rows[i-1].AvgCandidates+1e-9 {
			t.Errorf("theta %.2f admits more candidates (%.2f) than %.2f (%.2f)",
				r.Theta, r.AvgCandidates, rows[i-1].Theta, rows[i-1].AvgCandidates)
		}
	}
}

func TestAblationSLCA(t *testing.T) {
	c := testCorpus(t)
	rows, err := AblationSLCA(c, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	seen := map[slca.Algorithm]bool{}
	for _, r := range rows {
		if r.Partition <= 0 {
			t.Errorf("%v: non-positive timing", r.Algo)
		}
		seen[r.Algo] = true
	}
	if len(seen) != 4 {
		t.Error("duplicate algorithms in ablation")
	}
}
