package experiments

import (
	"math/rand"

	"xrefine/internal/datagen"
	"xrefine/internal/index"
	"xrefine/internal/refine"
	"xrefine/internal/rules"
	"xrefine/internal/slca"
)

// This file holds experiments for the repository's extensions beyond the
// paper: the beam-width recall of the k-best dynamic program, and the
// SLCA-vs-ELCA result-semantics comparison.

// BeamRow reports candidate recall at one beam factor: of the true m
// cheapest distinct refinements (by exhaustive enumeration), what fraction
// did the beam-limited DP surface?
type BeamRow struct {
	BeamFactor int
	// Recall is averaged over instances; 1.0 means the beam never lost a
	// true top-m candidate.
	Recall float64
	// OptimalAlways reports whether the single cheapest refinement was
	// found in every instance (it must be — the DP is exact at rank 1).
	OptimalAlways bool
}

// AblationBeam quantifies the paper's "a ranked list of some (but not all)
// non-optimal RQ candidates": random rule sets and availability patterns,
// exhaustive ground truth, recall of the beam DP at several widths.
func AblationBeam(instances, m int, seed int64) ([]BeamRow, error) {
	r := rand.New(rand.NewSource(seed))
	vocab := []string{"a", "b", "c", "d", "x", "y", "z", "w"}
	type instance struct {
		q     []string
		rs    *rules.Set
		avail map[string]bool
		truth map[string]float64 // keyword-set key -> exact min cost
		topM  []string           // keys of the true m cheapest sets
	}
	var insts []instance
	for len(insts) < instances {
		q := make([]string, 2+r.Intn(3))
		for i := range q {
			q[i] = vocab[r.Intn(4)]
		}
		rs := rules.NewSet(2)
		for i := 0; i < 2+r.Intn(4); i++ {
			lhs := []string{vocab[r.Intn(4)]}
			if r.Intn(3) == 0 {
				lhs = append(lhs, vocab[r.Intn(4)])
			}
			rhs := []string{vocab[4+r.Intn(4)]}
			if r.Intn(3) == 0 {
				rhs = append(rhs, vocab[4+r.Intn(4)])
			}
			_ = rs.Add(rules.Rule{Op: rules.OpSubstitute, LHS: lhs, RHS: rhs, Score: float64(1 + r.Intn(2))})
		}
		avail := map[string]bool{}
		for _, v := range vocab {
			if r.Intn(2) == 0 {
				avail[v] = true
			}
		}
		truth := exhaustiveRQs(q, avail, rs)
		if len(truth) < m {
			continue // not enough distinct refinements to rank
		}
		insts = append(insts, instance{q: q, rs: rs, avail: avail, truth: truth, topM: cheapestKeys(truth, m)})
	}
	var rows []BeamRow
	for _, factor := range []int{1, 2, 4, 8} {
		row := BeamRow{BeamFactor: factor, OptimalAlways: true}
		totalRecall := 0.0
		for _, in := range insts {
			got := refine.TopRQsBeam(in.q, in.avail, in.rs, m, factor*m)
			gotKeys := map[string]bool{}
			for _, rq := range got {
				gotKeys[rq.Key()] = true
			}
			hits := 0
			for _, k := range in.topM {
				if gotKeys[k] {
					hits++
				}
			}
			totalRecall += float64(hits) / float64(len(in.topM))
			if len(got) == 0 || in.truth[got[0].Key()] != got[0].DSim || got[0].DSim != in.truth[in.topM[0]] {
				row.OptimalAlways = false
			}
		}
		row.Recall = totalRecall / float64(len(insts))
		rows = append(rows, row)
	}
	return rows, nil
}

// exhaustiveRQs enumerates every refinement sequence without pruning —
// exact ground truth for small instances.
func exhaustiveRQs(q []string, avail map[string]bool, rs *rules.Set) map[string]float64 {
	best := map[string]float64{}
	var rec func(i int, cost float64, keys []string)
	rec = func(i int, cost float64, keys []string) {
		if i == len(q) {
			if len(keys) == 0 {
				return
			}
			k := refine.NewRQ(keys, 0).Key()
			if old, ok := best[k]; !ok || cost < old {
				best[k] = cost
			}
			return
		}
		rec(i+1, cost+rs.DeleteCost, keys)
		if avail[q[i]] {
			rec(i+1, cost, append(append([]string(nil), keys...), q[i]))
		}
		for _, r := range rs.Rules() {
			n := len(r.LHS)
			if i+n > len(q) {
				continue
			}
			match := true
			for j := 0; j < n; j++ {
				if q[i+j] != r.LHS[j] {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			ok := true
			for _, k := range r.RHS {
				if !avail[k] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			rec(i+n, cost+r.Score, append(append([]string(nil), keys...), r.RHS...))
		}
	}
	rec(0, 0, nil)
	return best
}

// cheapestKeys returns the keys of the m cheapest entries, cost-then-key
// ordered for determinism.
func cheapestKeys(truth map[string]float64, m int) []string {
	type kv struct {
		k string
		c float64
	}
	all := make([]kv, 0, len(truth))
	for k, c := range truth {
		all = append(all, kv{k, c})
	}
	for i := 1; i < len(all); i++ { // insertion sort; tiny inputs
		for j := i; j > 0 && (all[j].c < all[j-1].c || (all[j].c == all[j-1].c && all[j].k < all[j-1].k)); j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	if len(all) > m {
		all = all[:m]
	}
	keys := make([]string, len(all))
	for i, e := range all {
		keys[i] = e.k
	}
	return keys
}

// ELCARow compares result counts under the two semantics for one query.
type ELCARow struct {
	Query []string
	SLCA  int
	ELCA  int
}

// CompareELCA runs satisfiable workload queries under both SLCA and ELCA
// and reports result counts — ELCA is always a superset (asserted by the
// slca package tests); this measures by how much on realistic data.
func CompareELCA(c *Corpus, queries int) ([]ELCARow, error) {
	cases, err := c.Workload(datagen.WorkloadConfig{Seed: 321, Queries: queries})
	if err != nil {
		return nil, err
	}
	var rows []ELCARow
	for _, cs := range cases {
		lists := make([]*index.List, len(cs.Intended))
		ok := true
		for i, k := range cs.Intended {
			l, err := c.Index.List(k)
			if err != nil {
				return nil, err
			}
			if l.Len() == 0 {
				ok = false
				break
			}
			lists[i] = l
		}
		if !ok {
			continue
		}
		rows = append(rows, ELCARow{
			Query: cs.Intended,
			SLCA:  len(slca.ScanEager(lists)),
			ELCA:  len(slca.ELCA(lists)),
		})
	}
	return rows, nil
}
