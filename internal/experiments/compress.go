package experiments

import (
	"fmt"
	"time"

	"xrefine/internal/datagen"
	"xrefine/internal/index"
	"xrefine/internal/refine"
)

// CompressRow is one mode of the posting-storage comparison: the resident
// footprint of every loaded list in that representation and the batch
// Top-K latency the engine pays for it. Mode "encoded" is the shipping
// block-compressed form; mode "legacy" pins every list, materializing the
// pre-codec []Posting backbone so both its bytes and its latency are
// measured on the same build.
type CompressRow struct {
	Mode            string        `json:"mode"`
	ResidentBytes   int           `json:"resident_bytes"`
	BytesPerPosting float64       `json:"bytes_per_posting"`
	Avg             time.Duration `json:"avg_ns"`
	AvgMS           float64       `json:"avg_ms"`
	Identical       bool          `json:"identical"`
}

// CompressReport aggregates the succinct-posting-list experiment: corpus
// shape, the compression ratio of encoded vs materialized storage, and
// the raw block-decode rate measured by full cursor sweeps.
type CompressReport struct {
	Terms              int           `json:"terms"`
	Postings           int           `json:"postings"`
	Blocks             int           `json:"blocks"`
	DecodeNsPerPosting float64       `json:"decode_ns_per_posting"`
	Ratio              float64       `json:"compression_ratio"` // legacy / encoded
	Rows               []CompressRow `json:"rows"`
}

// CompressCompare measures what the block codec buys and what it costs.
// It forces every vocabulary list resident, totals the encoded footprint
// against the modeled legacy footprint (List.LegacyBytes: 32 B of Posting
// header plus a size-class-rounded ID allocation per posting), times raw
// sequential decode with full cursor sweeps, and then runs the corruption
// batch through refine.PartitionTopK twice — once against the encoded
// lists and once with every list pinned to its materialized form — with
// the pinned outcome checked against the encoded signature.
func CompressCompare(c *Corpus, batch []datagen.Case, k, reps int) (*CompressReport, error) {
	terms := c.Index.Vocabulary()
	lists := make([]*index.List, 0, len(terms))
	rep := &CompressReport{Terms: len(terms)}
	var encBytes, legacyBytes int
	for _, t := range terms {
		l, err := c.Index.List(t)
		if err != nil {
			return nil, fmt.Errorf("compress: load %q: %w", t, err)
		}
		lists = append(lists, l)
		rep.Postings += l.Len()
		rep.Blocks += l.BlockCount()
		encBytes += l.MemoryBytes()
		legacyBytes += l.LegacyBytes()
	}
	if rep.Postings == 0 {
		return nil, fmt.Errorf("compress: empty corpus")
	}
	if encBytes > 0 {
		rep.Ratio = float64(legacyBytes) / float64(encBytes)
	}

	// Raw decode rate: sequential cursor sweeps touch every posting of
	// every list, so each rep decodes each block exactly once into pooled
	// scratch.
	sweep, err := timeIt(reps, func() error {
		for _, l := range lists {
			cur := l.NewCursor()
			for ; cur.Valid(); cur.Next() {
				_ = cur.Posting()
			}
			cur.Close()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep.DecodeNsPerPosting = float64(sweep.Nanoseconds()) / float64(rep.Postings)

	// End-to-end: the same prepared batch against both representations,
	// bypassing the response cache (mirrors ParallelCompare).
	ins := make([]refine.Input, 0, len(batch))
	for _, cs := range batch {
		in, _, err := c.Engine.Prepare(cs.Corrupted)
		if err != nil {
			return nil, fmt.Errorf("compress prepare %v: %w", cs.Corrupted, err)
		}
		in.Parallelism = 1
		ins = append(ins, in)
	}
	want := make([]string, len(ins))
	for i := range ins {
		out, err := refine.PartitionTopK(ins[i], k)
		if err != nil {
			return nil, err
		}
		want[i] = parallelSig(out)
	}
	runBatch := func() error {
		for i := range ins {
			if _, err := refine.PartitionTopK(ins[i], k); err != nil {
				return err
			}
		}
		return nil
	}
	encAvg, err := timeIt(reps, runBatch)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, CompressRow{
		Mode:            "encoded",
		ResidentBytes:   encBytes,
		BytesPerPosting: float64(encBytes) / float64(rep.Postings),
		Avg:             encAvg,
		AvgMS:           msFloat(encAvg),
		Identical:       true,
	})

	// Legacy mode: pinning materializes the full []Posting on each core,
	// which is exactly the pre-codec backbone; views and cursors serve
	// from it directly, so the timed walk exercises the old access path.
	for _, l := range lists {
		l.Pin()
	}
	defer func() {
		for _, l := range lists {
			l.Unpin()
		}
	}()
	identical := true
	for i := range ins {
		out, err := refine.PartitionTopK(ins[i], k)
		if err != nil {
			return nil, err
		}
		if parallelSig(out) != want[i] {
			identical = false
		}
	}
	pinAvg, err := timeIt(reps, runBatch)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, CompressRow{
		Mode:            "legacy",
		ResidentBytes:   legacyBytes,
		BytesPerPosting: float64(legacyBytes) / float64(rep.Postings),
		Avg:             pinAvg,
		AvgMS:           msFloat(pinAvg),
		Identical:       identical,
	})
	return rep, nil
}
