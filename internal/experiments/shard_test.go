package experiments

import (
	"testing"
	"time"

	"xrefine/internal/datagen"
)

func TestShardCompare(t *testing.T) {
	c := testCorpus(t)
	batch, err := c.Workload(datagen.WorkloadConfig{Seed: 8, Queries: 4})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := ShardCompare(c, batch, []int{2}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 (monolith + 2 shards)", len(rows))
	}
	for _, r := range rows {
		if !r.Identical {
			t.Errorf("shards=%d: output diverged from monolith", r.Shards)
		}
		if r.Avg <= 0 {
			t.Errorf("shards=%d: avg = %v", r.Shards, r.Avg)
		}
	}
	if rows[0].Shards != 1 || rows[0].Speedup != 1 {
		t.Errorf("baseline row malformed: %+v", rows[0])
	}
}

func TestShardTailLatency(t *testing.T) {
	c := testCorpus(t)
	batch, err := c.Workload(datagen.WorkloadConfig{Seed: 8, Queries: 3})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := ShardTailLatency(c, batch, 2, 3, 2, 200*time.Microsecond, 50*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 (hedging off + on)", len(rows))
	}
	for _, r := range rows {
		if !r.Identical {
			t.Errorf("%s: output diverged from monolith", r.Mode)
		}
		if r.Samples != len(batch)*2 {
			t.Errorf("%s: samples = %d, want %d", r.Mode, r.Samples, len(batch)*2)
		}
		if r.P50MS <= 0 || r.P99MS < r.P50MS {
			t.Errorf("%s: p50 %v / p99 %v malformed", r.Mode, r.P50MS, r.P99MS)
		}
	}
	if rows[0].Mode != "hedging off" || rows[0].Hedges != 0 {
		t.Errorf("hedging-off row fired %d hedges", rows[0].Hedges)
	}
	if rows[1].Mode != "hedging on" {
		t.Errorf("second row is %q", rows[1].Mode)
	}
}

func TestPercentile(t *testing.T) {
	samples := []time.Duration{5, 1, 4, 2, 3}
	if got := percentile(samples, 50); got != 3 {
		t.Errorf("p50 = %v, want 3", got)
	}
	if got := percentile(samples, 99); got != 5 {
		t.Errorf("p99 = %v, want 5", got)
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("empty p50 = %v", got)
	}
}
