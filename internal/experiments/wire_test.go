package experiments

import "testing"

// TestWireCompare smoke-runs the binary-vs-HTTP experiment on a small
// corpus and checks row shape: three surfaces per k, sane throughput and
// percentiles, and HTTP rows pinned to speedup 1.
func TestWireCompare(t *testing.T) {
	if testing.Short() {
		t.Skip("serving benchmark")
	}
	c, err := DBLPCorpus(0.05)
	if err != nil {
		t.Fatal(err)
	}
	ks := []int{1, 10}
	rows, err := WireCompare(c, ks, 40, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*len(ks) {
		t.Fatalf("rows = %d, want %d", len(rows), 3*len(ks))
	}
	for i, r := range rows {
		wantSurface := []string{"http", "wire", "wire-pipelined"}[i%3]
		if r.Surface != wantSurface {
			t.Errorf("row %d surface %q, want %q", i, r.Surface, wantSurface)
		}
		if r.K != ks[i/3] {
			t.Errorf("row %d k = %d, want %d", i, r.K, ks[i/3])
		}
		if r.QPS <= 0 || r.QPSCore <= 0 || r.QPSCore > r.QPS {
			t.Errorf("%s k=%d: QPS %v / per-core %v malformed", r.Surface, r.K, r.QPS, r.QPSCore)
		}
		if r.P50MS <= 0 || r.P99MS < r.P50MS {
			t.Errorf("%s k=%d: p50 %v / p99 %v malformed", r.Surface, r.K, r.P50MS, r.P99MS)
		}
		if r.Surface == "http" && r.Speedup != 1 {
			t.Errorf("http row speedup = %v, want 1", r.Speedup)
		}
		if r.Surface != "http" && r.Speedup <= 0 {
			t.Errorf("%s k=%d: speedup %v not computed", r.Surface, r.K, r.Speedup)
		}
	}
}
