package experiments

import "testing"

func TestAblationBeam(t *testing.T) {
	rows, err := AblationBeam(40, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if !r.OptimalAlways {
			t.Errorf("beam factor %d lost the exact optimum", r.BeamFactor)
		}
		if r.Recall <= 0 || r.Recall > 1 {
			t.Errorf("recall = %v", r.Recall)
		}
		// Wider beams never reduce recall.
		if i > 0 && r.Recall < rows[i-1].Recall-1e-9 {
			t.Errorf("recall dropped from beam %d to %d: %v -> %v",
				rows[i-1].BeamFactor, r.BeamFactor, rows[i-1].Recall, r.Recall)
		}
	}
	// The widest beam should be near-perfect on these small instances.
	if last := rows[len(rows)-1]; last.Recall < 0.9 {
		t.Errorf("beam factor %d recall only %v", last.BeamFactor, last.Recall)
	}
}

func TestCompareELCA(t *testing.T) {
	c := testCorpus(t)
	rows, err := CompareELCA(c, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no comparison rows")
	}
	for _, r := range rows {
		if r.ELCA < r.SLCA {
			t.Errorf("%v: ELCA %d < SLCA %d", r.Query, r.ELCA, r.SLCA)
		}
		if r.SLCA == 0 {
			t.Errorf("%v: intended query has no SLCA", r.Query)
		}
	}
}
