package experiments

import (
	"fmt"
	"time"

	"xrefine/internal/core"
	"xrefine/internal/datagen"
	"xrefine/internal/eval"
	"xrefine/internal/rank"
	"xrefine/internal/searchfor"
	"xrefine/internal/slca"
)

// This file holds ablations beyond the paper's own tables, probing the
// design choices DESIGN.md calls out: the dissimilarity decay constant
// (the paper asserts "ρ=0.8 is a good choice" without printing the sweep),
// the search-for confidence threshold θ behind Guideline 3, and the cost
// of each pluggable SLCA algorithm inside the partition framework
// (Lemma 3 guarantees identical *results*; this measures the *time*).

// AblationDecay sweeps the Guideline-4 decay base and reports CG@1..4 —
// the experiment behind the paper's "ρ=0.8" assertion.
func AblationDecay(c *Corpus, numQueries int) ([]CGRow, error) {
	var variants []rankingVariant
	for _, p := range []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95} {
		m := rank.Default()
		m.Decay = p
		variants = append(variants, rankingVariant{Name: fmt.Sprintf("p=%.2g", p), Model: m})
	}
	return cgTable(c, variants, numQueries, 4)
}

// SearchForRow is one point of the search-for threshold ablation.
type SearchForRow struct {
	Theta float64
	// AvgCandidates is the mean number of search-for candidates per
	// query at this threshold.
	AvgCandidates float64
	// CG is CG@1..4 of the full ranking model.
	CG []float64
}

// AblationSearchFor sweeps the candidate threshold θ of Formula 1's
// candidate selection (Guideline 3 admits types with "comparable"
// confidence; θ quantifies comparable).
func AblationSearchFor(c *Corpus, numQueries int) ([]SearchForRow, error) {
	cases, err := c.Workload(datagen.WorkloadConfig{Seed: 4321, Queries: numQueries * 3})
	if err != nil {
		return nil, err
	}
	judges := eval.NewJudges(6, 99, 0.15)
	var rows []SearchForRow
	for _, theta := range []float64{0.5, 0.7, 0.8, 0.9, 0.99} {
		cfg := &core.Config{SearchFor: searchfor.Options{Threshold: theta}}
		eng := core.NewFromIndex(c.Index, cfg)
		var vectors [][]float64
		candTotal, candQueries := 0, 0
		used := 0
		for _, cs := range cases {
			if used >= numQueries {
				break
			}
			resp, err := eng.QueryTerms(cs.Corrupted, core.StrategyPartition, 4)
			if err != nil {
				return nil, err
			}
			if !resp.NeedRefine || len(resp.Queries) == 0 {
				continue
			}
			used++
			candTotal += len(resp.SearchFor)
			candQueries++
			intended, err := intendedResults(c, cs.Intended)
			if err != nil {
				return nil, err
			}
			if len(intended) == 0 {
				continue
			}
			ranked := make([]map[string]bool, 0, len(resp.Queries))
			for _, q := range resp.Queries {
				set := map[string]bool{}
				for _, m := range q.Results {
					set[m.ID.String()] = true
				}
				ranked = append(ranked, set)
			}
			cg, err := eval.AverageCG(judges, intended, ranked, 4)
			if err != nil {
				return nil, err
			}
			vectors = append(vectors, cg)
		}
		row := SearchForRow{Theta: theta, CG: eval.MeanVectors(vectors)}
		if candQueries > 0 {
			row.AvgCandidates = float64(candTotal) / float64(candQueries)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// SLCARow is one point of the SLCA-plugin cost ablation.
type SLCARow struct {
	Algo      slca.Algorithm
	Partition time.Duration
}

// AblationSLCA times the partition-based Top-3 refinement with each
// pluggable SLCA algorithm over the same batch. Lemma 3 says the results
// are identical (a property test asserts it); this reports the price.
func AblationSLCA(c *Corpus, batchSize, reps int) ([]SLCARow, error) {
	batch, err := c.Workload(datagen.WorkloadConfig{Seed: 909, Queries: batchSize})
	if err != nil {
		return nil, err
	}
	var rows []SLCARow
	for _, algo := range []slca.Algorithm{
		slca.AlgoScanEager, slca.AlgoIndexedLookupEager, slca.AlgoStack, slca.AlgoMultiway,
	} {
		eng := core.NewFromIndex(c.Index, &core.Config{SLCA: algo})
		d, err := timeIt(reps, func() error {
			for _, cs := range batch {
				if _, err := eng.QueryTerms(cs.Corrupted, core.StrategyPartition, 3); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, SLCARow{Algo: algo, Partition: d})
	}
	return rows, nil
}
