package experiments

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"xrefine/internal/core"
	"xrefine/internal/storage"
	"xrefine/internal/storage/backends"
)

// StorageRow is one backend's line in the storage-engine shoot-out: the
// corpus index persisted through the engine, a synthetic write burst, a
// checkpoint, then cold-start and read measurements against the settled
// store.
type StorageRow struct {
	Backend string `json:"backend"`
	// ColdOpenMS is the time to open the settled store the normal way
	// (hint-file fast path on the log engine). ScanOpenMS is the log
	// engine's baseline with hints ignored — every data file replayed —
	// and equals ColdOpenMS on the B+tree, which has no such split.
	ColdOpenMS  float64 `json:"cold_open_ms"`
	ScanOpenMS  float64 `json:"scan_open_ms"`
	HintSpeedup float64 `json:"hint_speedup"`
	// WriteKOpsPerSec is committed synthetic puts per second (thousands);
	// ValueBytes is the per-record payload those puts carried (capped by
	// the engine's MaxKV), and WriteMBPerSec the resulting byte rate.
	WriteKOpsPerSec float64 `json:"write_kops_per_sec"`
	WriteMBPerSec   float64 `json:"write_mb_per_sec"`
	ValueBytes      int     `json:"value_bytes"`
	// PointReadUS is the mean Get latency over sampled live keys;
	// RangeScanMS walks every live key once.
	PointReadUS float64 `json:"point_read_us"`
	RangeScanMS float64 `json:"range_scan_ms"`
	Keys        int     `json:"keys"`
	DiskBytes   int64   `json:"disk_bytes"`
	// Amplification is disk bytes over live bytes after the checkpoint
	// (0 on the B+tree engine, which does not track live bytes).
	Amplification float64 `json:"amplification"`
	Segments      int     `json:"segments,omitempty"`
}

// StorageCompare persists the corpus through both storage engines and
// measures what each one pays: write throughput for a burst of `writes`
// synthetic records (batches of 64 per commit), point and range read
// latency, on-disk amplification after a checkpoint, and cold-start
// latency — where the log engine is opened twice, once through its hint
// files and once forced to replay every data file, to price what the
// hints buy. Every timing is the best of reps runs.
func StorageCompare(c *Corpus, writes, reps int) ([]StorageRow, error) {
	if reps < 1 {
		reps = 1
	}
	dir, err := os.MkdirTemp("", "xrefine-storagebench-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// A document-carrying engine, so both stores hold the full persisted
	// form (index + document stream) rather than the index alone.
	seed := core.NewFromDocument(c.Doc, nil)

	var rows []StorageRow
	for _, kind := range []storage.Kind{storage.KindBTree, storage.KindLog} {
		name := "ix.kv"
		if kind == storage.KindLog {
			name = "ix.logdb"
		}
		path := filepath.Join(dir, name)
		// Small segments so the settled store spans several sealed
		// segments — otherwise the hint path has nothing to prove.
		opts := &storage.Options{SegmentTarget: 1 << 20}
		st, err := backends.Open(kind, path, opts)
		if err != nil {
			return nil, err
		}
		if err := seed.SaveIndexWithDocument(st); err != nil {
			return nil, err
		}

		// Write burst: synthetic records under a reserved prefix, 64 puts
		// per committed batch, overwriting half the keys once so the log
		// engine accumulates dead records for compaction to claim back.
		key := func(i int) []byte {
			k := make([]byte, 12)
			copy(k, "zzb/")
			binary.BigEndian.PutUint64(k[4:], uint64(i))
			return k
		}
		// Posting-list-core-sized payloads, capped at what the engine
		// accepts per record (the B+tree chunks anything past ~1 KiB at a
		// higher layer; the log engine holds 4 KiB natively). The
		// cold-start split is only visible on value-heavy stores — a scan
		// reopen must read and CRC every value byte, a hint reopen only
		// the keys — so the burst has to dominate the store's byte volume.
		valSize := 4096
		if m := st.MaxKV() - 64; valSize > m {
			valSize = m
		}
		val := make([]byte, valSize)
		for i := range val {
			val[i] = byte(i)
		}
		start := time.Now()
		total := 0
		for i := 0; i < writes; i++ {
			target := i
			if i >= writes/2 {
				target = i - writes/2 // second half overwrites the first
			}
			if err := st.Put(key(target), val); err != nil {
				return nil, err
			}
			total++
			if total%64 == 0 {
				if err := st.Commit(); err != nil {
					return nil, err
				}
			}
		}
		if err := st.Commit(); err != nil {
			return nil, err
		}
		writeSecs := time.Since(start).Seconds()

		if err := st.Checkpoint(); err != nil {
			return nil, err
		}

		// Sample live keys for the point-read measurement.
		var keys [][]byte
		err = st.Range(nil, nil, func(k, _ []byte) bool {
			if len(keys) < 2000 {
				kk := make([]byte, len(k))
				copy(kk, k)
				keys = append(keys, kk)
			}
			return true
		})
		if err != nil {
			return nil, err
		}
		if len(keys) == 0 {
			return nil, fmt.Errorf("storage bench: %s store is empty", kind)
		}

		var pointRead, rangeScan time.Duration
		for r := 0; r < reps; r++ {
			st.DropCaches()
			t0 := time.Now()
			for _, k := range keys {
				if _, _, err := st.Get(k); err != nil {
					return nil, err
				}
			}
			if d := time.Since(t0); r == 0 || d < pointRead {
				pointRead = d
			}
			t0 = time.Now()
			n := 0
			err = st.Range(nil, nil, func(_, _ []byte) bool { n++; return true })
			if err != nil {
				return nil, err
			}
			if d := time.Since(t0); r == 0 || d < rangeScan {
				rangeScan = d
			}
		}
		stats := st.StorageStats()
		if err := st.Close(); err != nil {
			return nil, err
		}

		// Cold start: reopen the settled store. The log engine gets a
		// second, hint-blind series as the replay baseline.
		coldOpen, err := timeOpen(kind, path, &storage.Options{ReadOnly: true}, reps)
		if err != nil {
			return nil, err
		}
		scanOpen := coldOpen
		if kind == storage.KindLog {
			scanOpen, err = timeOpen(kind, path, &storage.Options{ReadOnly: true, IgnoreHints: true}, reps)
			if err != nil {
				return nil, err
			}
		}

		row := StorageRow{
			Backend:         string(kind),
			ColdOpenMS:      float64(coldOpen.Microseconds()) / 1000,
			ScanOpenMS:      float64(scanOpen.Microseconds()) / 1000,
			WriteKOpsPerSec: float64(total) / writeSecs / 1000,
			WriteMBPerSec:   float64(total) * float64(valSize) / writeSecs / (1 << 20),
			ValueBytes:      valSize,
			PointReadUS:     float64(pointRead.Microseconds()) / float64(len(keys)),
			RangeScanMS:     float64(rangeScan.Microseconds()) / 1000,
			Keys:            stats.Keys,
			DiskBytes:       stats.DiskBytes,
			Amplification:   stats.Amplification(),
			Segments:        stats.Segments,
		}
		if coldOpen > 0 {
			row.HintSpeedup = float64(scanOpen) / float64(coldOpen)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// timeOpen opens the store reps times and returns the best full
// open-to-ready latency (a read of one key forces lazy setup to settle).
func timeOpen(kind storage.Kind, path string, opts *storage.Options, reps int) (time.Duration, error) {
	var best time.Duration
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		st, err := backends.Open(kind, path, opts)
		if err != nil {
			return 0, err
		}
		if st.Len() < 0 {
			return 0, fmt.Errorf("storage bench: negative length")
		}
		d := time.Since(t0)
		if err := st.Close(); err != nil {
			return 0, err
		}
		if r == 0 || d < best {
			best = d
		}
	}
	return best, nil
}
