package experiments

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"runtime"
	"time"

	"xrefine/internal/core"
	"xrefine/internal/server"
	"xrefine/internal/tokenize"
	"xrefine/internal/wire"
)

// WireRow is one line of the binary-vs-HTTP serving comparison: one
// surface and mode at one k, its throughput (absolute and per core) and
// latency percentiles, and the speedup over the HTTP row at the same k.
type WireRow struct {
	Surface  string  `json:"surface"` // http | wire | wire-pipelined
	K        int     `json:"k"`
	Requests int     `json:"requests"`
	QPS      float64 `json:"qps"`
	QPSCore  float64 `json:"qps_per_core"`
	P50MS    float64 `json:"p50_ms"`
	P99MS    float64 `json:"p99_ms"`
	Speedup  float64 `json:"speedup_vs_http"`
}

// wireBenchQueries is the query mix both surfaces replay: corpus
// vocabulary plus misspellings that force refinement, so responses span
// the small-payload and large-payload shapes.
var wireBenchQueries = []string{
	"database query",
	"databse quary",
	"keyword serch xml",
	"twig matching pattern",
	"online",
	"system index",
}

// WireCompare drives the same query mix through the HTTP surface (one
// persistent keep-alive connection) and the wire surface (one persistent
// connection, first request-per-round-trip, then pipelined depth in
// flight), requests times per k, and reports throughput and latency.
// Each surface gets its own engine over the shared index so response
// caches cannot leak between them; both engines cache, so the
// measurement isolates transport and encode cost — the paths the binary
// protocol exists to shrink.
func WireCompare(c *Corpus, ks []int, requests, depth int) ([]WireRow, error) {
	if depth <= 0 {
		depth = 32
	}
	httpEng := core.NewFromIndex(c.Index, &core.Config{CacheSize: 64})
	wireEng := core.NewFromIndex(c.Index, &core.Config{CacheSize: 64})

	hl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hsrv := &http.Server{Handler: server.New(httpEng)}
	go hsrv.Serve(hl)
	defer hsrv.Close()

	wl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	wsrv := wire.NewServer(wireEng, wire.Options{})
	go wsrv.Serve(wl)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		wsrv.Shutdown(ctx)
	}()

	terms := make([][]string, len(wireBenchQueries))
	for i, q := range wireBenchQueries {
		terms[i] = tokenize.Query(q)
	}

	httpClient := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 1}}
	httpOnce := func(q string, k int) error {
		v := url.Values{"q": {q}, "k": {fmt.Sprint(k)}}
		resp, err := httpClient.Get("http://" + hl.Addr().String() + "/search?" + v.Encode())
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("http /search: %s", resp.Status)
		}
		return nil
	}

	wc, err := wire.Dial(wl.Addr().String(), 5*time.Second)
	if err != nil {
		return nil, err
	}
	defer wc.Close()

	cores := runtime.GOMAXPROCS(0)
	var rows []WireRow
	for _, k := range ks {
		// Warm both engines' caches on the mix at this k so the timed
		// loops compare transports, not first-touch index walks.
		for i, q := range wireBenchQueries {
			if err := httpOnce(q, k); err != nil {
				return nil, err
			}
			if resp, err := wc.Query(0, byte(core.StrategyPartition), k, 0, terms[i]); err != nil {
				return nil, err
			} else if resp.Status != wire.StatusOK {
				return nil, fmt.Errorf("wire warmup: status %d: %s", resp.Status, resp.Payload)
			}
		}

		httpRow := WireRow{Surface: "http", K: k, Requests: requests, Speedup: 1}
		lat := make([]time.Duration, 0, requests)
		start := time.Now()
		for i := 0; i < requests; i++ {
			t0 := time.Now()
			if err := httpOnce(wireBenchQueries[i%len(wireBenchQueries)], k); err != nil {
				return nil, err
			}
			lat = append(lat, time.Since(t0))
		}
		fillWireRow(&httpRow, time.Since(start), lat, cores)
		rows = append(rows, httpRow)

		wireRow := WireRow{Surface: "wire", K: k, Requests: requests}
		lat = lat[:0]
		start = time.Now()
		for i := 0; i < requests; i++ {
			t0 := time.Now()
			resp, err := wc.Query(0, byte(core.StrategyPartition), k, 0, terms[i%len(terms)])
			if err != nil {
				return nil, err
			}
			if resp.Status != wire.StatusOK {
				return nil, fmt.Errorf("wire: status %d: %s", resp.Status, resp.Payload)
			}
			lat = append(lat, time.Since(t0))
		}
		fillWireRow(&wireRow, time.Since(start), lat, cores)
		wireRow.Speedup = wireRow.QPS / httpRow.QPS
		rows = append(rows, wireRow)

		// Pipelined: keep depth requests in flight on the one connection.
		// Latency here includes local queueing — the honest per-request
		// wait a pipelining client observes.
		pipeRow := WireRow{Surface: "wire-pipelined", K: k, Requests: requests}
		lat = lat[:0]
		sendTimes := make([]time.Time, 0, requests)
		sent, received := 0, 0
		start = time.Now()
		for received < requests {
			for sent < requests && sent-received < depth {
				sendTimes = append(sendTimes, time.Now())
				wc.Send(0, byte(core.StrategyPartition), k, 0, terms[sent%len(terms)])
				sent++
			}
			resp, err := wc.Recv()
			if err != nil {
				return nil, err
			}
			if resp.Status != wire.StatusOK {
				return nil, fmt.Errorf("wire pipelined: status %d: %s", resp.Status, resp.Payload)
			}
			lat = append(lat, time.Since(sendTimes[received]))
			received++
		}
		fillWireRow(&pipeRow, time.Since(start), lat, cores)
		pipeRow.Speedup = pipeRow.QPS / httpRow.QPS
		rows = append(rows, pipeRow)
	}
	return rows, nil
}

func fillWireRow(r *WireRow, total time.Duration, lat []time.Duration, cores int) {
	if total > 0 {
		r.QPS = float64(r.Requests) / total.Seconds()
		r.QPSCore = r.QPS / float64(cores)
	}
	r.P50MS = msFloat(percentile(lat, 50))
	r.P99MS = msFloat(percentile(lat, 99))
}
