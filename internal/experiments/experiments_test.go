package experiments

import (
	"testing"

	"xrefine/internal/datagen"
)

// The test corpus is a tenth of the full evaluation corpus; the runners
// must behave identically, just faster.
func testCorpus(t testing.TB) *Corpus {
	t.Helper()
	c, err := DBLPCorpus(0.1)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCorpusCaching(t *testing.T) {
	a, err := DBLPCorpus(0.1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DBLPCorpus(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("corpus not cached")
	}
	if _, err := DBLPCorpus(0); err == nil {
		t.Error("invalid scale accepted")
	}
	bb, err := BaseballCorpus()
	if err != nil {
		t.Fatal(err)
	}
	if bb.Doc.Root.Tag != "season" {
		t.Error("baseball corpus malformed")
	}
}

func TestSampleQueries(t *testing.T) {
	c := testCorpus(t)
	samples, err := SampleQueries(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 16 { // 3 per operation + 4 mixed
		t.Fatalf("samples = %d, want 16", len(samples))
	}
	ops := map[string]int{}
	for _, s := range samples {
		ops[s.Op]++
		if len(s.Terms) == 0 || len(s.Intended) == 0 {
			t.Errorf("sample %s incomplete", s.ID)
		}
	}
	for _, op := range []string{"deletion", "merging", "split", "substitution"} {
		if ops[op] != 3 {
			t.Errorf("op %s has %d samples", op, ops[op])
		}
	}
	if ops["mixed"] != 4 {
		t.Errorf("mixed samples = %d", ops["mixed"])
	}
}

func TestTables3to6(t *testing.T) {
	c := testCorpus(t)
	tables, err := Tables3to6(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("tables = %d", len(tables))
	}
	suggested := 0
	for op, rows := range tables {
		if len(rows) != 3 {
			t.Errorf("%s rows = %d", op, len(rows))
		}
		for _, r := range rows {
			if len(r.Suggested) > 0 {
				suggested++
				if r.ResultSize == 0 {
					t.Errorf("%s %s: suggestion %v with zero results", op, r.ID, r.Suggested)
				}
			}
		}
	}
	// The vast majority of corrupted queries must receive a suggestion.
	if suggested < 9 {
		t.Errorf("only %d of 12 queries got suggestions", suggested)
	}
}

func TestFig4(t *testing.T) {
	c := testCorpus(t)
	rows, err := Fig4(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.StackRefine <= 0 || r.SLE <= 0 || r.Partition <= 0 || r.StackSLCA < 0 || r.ScanSLCA < 0 {
			t.Errorf("%s: non-positive timing %+v", r.ID, r)
		}
	}
}

func TestFig5(t *testing.T) {
	c := testCorpus(t)
	batch, err := c.Workload(datagen.WorkloadConfig{Seed: 8, Queries: 5})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Fig5(c, batch, []int{1, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].K != 1 || rows[1].K != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if r.Partition <= 0 || r.SLE <= 0 {
			t.Errorf("K=%d: non-positive timings", r.K)
		}
	}
}

func TestFig6(t *testing.T) {
	rows, err := Fig6([]float64{0.02, 0.04}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Nodes >= rows[1].Nodes {
		t.Error("scales not increasing in size")
	}
}

func TestTable7(t *testing.T) {
	c := testCorpus(t)
	rows, err := Table7(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no Table VII rows")
	}
	for _, r := range rows {
		if len(r.RQs) == 0 || len(r.RQs) > 4 {
			t.Errorf("%s: %d RQs", r.ID, len(r.RQs))
		}
		for i := 1; i < len(r.RQs); i++ {
			if r.RQs[i-1].Score < r.RQs[i].Score {
				t.Errorf("%s: RQs not rank-ordered", r.ID)
			}
		}
		for _, rq := range r.RQs {
			if rq.Results == 0 {
				t.Errorf("%s: RQ %v without results", r.ID, rq.Keywords)
			}
		}
	}
}

func TestTable8(t *testing.T) {
	c := testCorpus(t)
	t8, pool, err := BuildTable8(c, 30)
	if err != nil {
		t.Fatal(err)
	}
	if t8.PoolSize != 30 {
		t.Errorf("pool size = %d", t8.PoolSize)
	}
	if t8.AvgLen < 2 || t8.AvgLen > 6 {
		t.Errorf("avg len = %v", t8.AvgLen)
	}
	if t8.NeedRefine == 0 {
		t.Error("no queries needed refinement — the workload is broken")
	}
	if t8.Refinable > t8.NeedRefine || len(pool) != t8.Refinable {
		t.Errorf("refinable bookkeeping wrong: %+v pool=%d", t8, len(pool))
	}
	if len(t8.ByCorruption) == 0 {
		t.Error("corruption histogram empty")
	}
}

func TestTable9And10(t *testing.T) {
	c := testCorpus(t)
	rows, err := Table9(c, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 || rows[0].Model != "RS0" {
		t.Fatalf("table9 rows = %+v", rows)
	}
	for _, r := range rows {
		if len(r.CG) != 4 {
			t.Fatalf("%s: CG depth %d", r.Model, len(r.CG))
		}
		for i := 1; i < 4; i++ {
			if r.CG[i] < r.CG[i-1]-1e-9 {
				t.Errorf("%s: CG decreases: %v", r.Model, r.CG)
			}
		}
	}
	if rows[0].CG[3] <= 0 {
		t.Error("RS0 found nothing relevant at depth 4")
	}
	rows10, err := Table10(c, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows10) != 5 || rows10[0].Model != "[1,1]" {
		t.Fatalf("table10 rows = %+v", rows10)
	}
}

func TestFig4Verified(t *testing.T) {
	c := testCorpus(t)
	rows, err := Fig4(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.Verified {
			t.Errorf("%s: strategies disagree on minimum dissimilarity", r.ID)
		}
	}
}
