package narrow

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"xrefine/internal/index"
	"xrefine/internal/searchfor"
	"xrefine/internal/slca"
	"xrefine/internal/xmltree"
)

// broadCorpus: "database" floods (every paper), narrower terms split it.
func broadCorpus(tb testing.TB) (*xmltree.Document, *index.Index) {
	tb.Helper()
	r := rand.New(rand.NewSource(6))
	topics := []string{"indexing", "transactions", "replication", "streams"}
	years := []int{2001, 2002, 2003}
	var b strings.Builder
	b.WriteString("<bib>")
	for a := 0; a < 40; a++ {
		b.WriteString("<author><publications>")
		for p := 0; p < 4; p++ {
			topic := topics[r.Intn(len(topics))]
			year := years[r.Intn(len(years))]
			fmt.Fprintf(&b, "<paper><title>database %s systems</title><year>%d</year></paper>", topic, year)
		}
		b.WriteString("</publications></author>")
	}
	b.WriteString("</bib>")
	doc, err := xmltree.ParseString(b.String(), nil)
	if err != nil {
		tb.Fatal(err)
	}
	return doc, index.Build(doc)
}

func judgeFor(ix *index.Index, terms ...string) *searchfor.Judge {
	return searchfor.NewJudge(searchfor.Infer(ix, terms, nil))
}

func TestNarrowFloodingQuery(t *testing.T) {
	doc, ix := broadCorpus(t)
	out, err := Narrow(doc, ix, []string{"database"}, judgeFor(ix, "database"), slca.AlgoScanEager, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out.TooBroad {
		t.Fatalf("query with %d results not flagged as broad", out.OriginalResults)
	}
	if out.OriginalResults < 100 {
		t.Fatalf("corpus sanity: only %d results", out.OriginalResults)
	}
	if len(out.Suggestions) == 0 {
		t.Fatal("no narrowing suggestions")
	}
	for i, s := range out.Suggestions {
		if len(s.Added) != 1 {
			t.Errorf("suggestion %d adds %d terms", i, len(s.Added))
		}
		if len(s.Results) == 0 || len(s.Results) >= out.OriginalResults {
			t.Errorf("suggestion %v does not narrow: %d results (was %d)",
				s.Keywords, len(s.Results), out.OriginalResults)
		}
		// The original keywords must survive in every suggestion.
		found := false
		for _, k := range s.Keywords {
			if k == "database" {
				found = true
			}
		}
		if !found {
			t.Errorf("suggestion %v dropped the original keyword", s.Keywords)
		}
		if i > 0 && out.Suggestions[i-1].Score < s.Score {
			t.Error("suggestions not sorted by score")
		}
	}
}

func TestNarrowPreciseQueryUntouched(t *testing.T) {
	doc, ix := broadCorpus(t)
	out, err := Narrow(doc, ix, []string{"database", "replication", "2001"},
		judgeFor(ix, "database", "replication", "2001"), slca.AlgoScanEager, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.TooBroad || len(out.Suggestions) != 0 {
		t.Fatalf("precise query flagged: %+v", out)
	}
}

func TestNarrowThresholdOption(t *testing.T) {
	doc, ix := broadCorpus(t)
	// With a huge threshold even "database" is fine.
	out, err := Narrow(doc, ix, []string{"database"}, judgeFor(ix, "database"),
		slca.AlgoScanEager, &Options{MaxResults: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if out.TooBroad {
		t.Error("threshold ignored")
	}
	// With threshold 1 almost anything is broad.
	out2, err := Narrow(doc, ix, []string{"database"}, judgeFor(ix, "database"),
		slca.AlgoScanEager, &Options{MaxResults: 1, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !out2.TooBroad {
		t.Error("threshold 1 not applied")
	}
	if len(out2.Suggestions) > 2 {
		t.Errorf("TopK 2 returned %d suggestions", len(out2.Suggestions))
	}
}

func TestNarrowErrors(t *testing.T) {
	_, ix := broadCorpus(t)
	if _, err := Narrow(nil, ix, []string{"database"}, judgeFor(ix, "database"), slca.AlgoScanEager, nil); err != ErrNeedsDocument {
		t.Errorf("nil doc error = %v", err)
	}
	doc, _ := broadCorpus(t)
	if _, err := Narrow(doc, ix, nil, judgeFor(ix, "database"), slca.AlgoScanEager, nil); err == nil {
		t.Error("empty query accepted")
	}
}

func TestProximity(t *testing.T) {
	if proximity(10, 10) != 1 {
		t.Error("exact target should score 1")
	}
	if proximity(0, 10) != 0 {
		t.Error("zero results should score 0")
	}
	if proximity(5, 10) != proximity(20, 10) {
		t.Error("proximity should be symmetric in ratio")
	}
	if proximity(9, 10) <= proximity(100, 10) {
		t.Error("closer counts must score higher")
	}
}
