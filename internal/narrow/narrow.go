// Package narrow implements the extension the paper's conclusion names as
// future work: refining a query that has *too many* matching results. It
// is the mirror image of the repair pipeline — instead of relaxing or
// rewriting a failing query, it tightens a flooding one by adding
// discriminative keywords that co-occur with the query inside the
// search-for subtrees, so every suggestion is again guaranteed to have
// meaningful matching results (now fewer of them).
//
// Candidate terms are mined from the actual result subtrees, scored by
//
//	support(t) * Imp_t(Q,T)
//
// — how many result subtrees contain the term, times the same
// discriminativeness measure (Formula 3) the ranking model uses — and each
// surviving suggestion is verified by running the narrowed query.
package narrow

import (
	"errors"
	"sort"

	"xrefine/internal/index"
	"xrefine/internal/rank"
	"xrefine/internal/refine"
	"xrefine/internal/searchfor"
	"xrefine/internal/slca"
	"xrefine/internal/xmltree"
)

// Options tune narrowing.
type Options struct {
	// MaxResults is the threshold above which a query counts as too
	// broad; 0 means 50.
	MaxResults int
	// TopK bounds the number of suggestions; 0 means 3.
	TopK int
	// TargetResults biases scoring toward suggestions whose result
	// count lands near this; 0 means 10.
	TargetResults int
	// SampleResults caps how many result subtrees are mined for
	// candidate terms; 0 means 200.
	SampleResults int
	// MaxCandidates caps the number of candidate terms that get
	// verified with a real query; 0 means 12.
	MaxCandidates int
}

func (o *Options) withDefaults() Options {
	out := Options{MaxResults: 50, TopK: 3, TargetResults: 10, SampleResults: 200, MaxCandidates: 12}
	if o != nil {
		if o.MaxResults > 0 {
			out.MaxResults = o.MaxResults
		}
		if o.TopK > 0 {
			out.TopK = o.TopK
		}
		if o.TargetResults > 0 {
			out.TargetResults = o.TargetResults
		}
		if o.SampleResults > 0 {
			out.SampleResults = o.SampleResults
		}
		if o.MaxCandidates > 0 {
			out.MaxCandidates = o.MaxCandidates
		}
	}
	return out
}

// Suggestion is one narrowing proposal: the original query plus added
// keywords, with its (verified) meaningful results.
type Suggestion struct {
	// Keywords is the full narrowed query, sorted.
	Keywords []string
	// Added lists the appended keywords.
	Added []string
	// Results are the narrowed query's meaningful SLCAs.
	Results []refine.Match
	// Score orders suggestions: higher is better.
	Score float64
}

// Outcome reports a narrowing run.
type Outcome struct {
	// TooBroad is false when the original query's result count is
	// already within MaxResults; Suggestions is then empty.
	TooBroad bool
	// OriginalResults is the original query's meaningful result count.
	OriginalResults int
	// Suggestions holds narrowing proposals, best first.
	Suggestions []Suggestion
}

// ErrNeedsDocument is returned when narrowing is invoked without the
// source document: candidate mining walks result subtrees, which the
// inverted index alone cannot enumerate.
var ErrNeedsDocument = errors.New("narrow: narrowing requires the source document")

// Narrow analyses query terms over the document and proposes narrowed
// queries when the original floods.
func Narrow(doc *xmltree.Document, ix *index.Index, terms []string, judge *searchfor.Judge, algo slca.Algorithm, opts *Options) (*Outcome, error) {
	if doc == nil {
		return nil, ErrNeedsDocument
	}
	if len(terms) == 0 {
		return nil, errors.New("narrow: empty query")
	}
	o := opts.withDefaults()
	in := refine.Input{Index: ix, Query: terms, Judge: judge, SLCA: algo}
	base, err := originalMatches(in)
	if err != nil {
		return nil, err
	}
	out := &Outcome{OriginalResults: len(base)}
	if len(base) <= o.MaxResults {
		return out, nil
	}
	out.TooBroad = true

	// Mine candidate terms from a sample of result subtrees.
	inQuery := make(map[string]bool, len(terms))
	for _, t := range terms {
		inQuery[t] = true
	}
	support := map[string]int{}
	sample := base
	if len(sample) > o.SampleResults {
		sample = sample[:o.SampleResults]
	}
	for _, m := range sample {
		n, ok := doc.NodeByID(m.ID)
		if !ok {
			continue
		}
		seen := map[string]bool{}
		var rec func(x *xmltree.Node)
		rec = func(x *xmltree.Node) {
			for _, w := range x.Terms() {
				if !inQuery[w] && !seen[w] {
					seen[w] = true
					support[w]++
				}
			}
			for _, ch := range x.Children {
				rec(ch)
			}
		}
		rec(n)
	}
	// Score candidates: frequent across results (so the narrowed query
	// still matches plenty) yet discriminative in the data (so it
	// actually narrows). Terms present in every result cannot narrow.
	cands := judge.Candidates()
	type scored struct {
		term  string
		score float64
	}
	var ranked []scored
	for term, sup := range support {
		if sup >= len(sample) {
			continue
		}
		imp := 0.0
		for _, c := range cands {
			imp += c.Confidence * rank.ImpK(ix, term, c.Type)
		}
		if imp == 0 {
			continue
		}
		ranked = append(ranked, scored{term: term, score: float64(sup) * imp})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].term < ranked[j].term
	})
	if len(ranked) > o.MaxCandidates {
		ranked = ranked[:o.MaxCandidates]
	}

	// Verify each candidate by running the narrowed query for real.
	for _, c := range ranked {
		narrowed := append(append([]string(nil), terms...), c.term)
		nin := in
		nin.Query = narrowed
		res, err := originalMatches(nin)
		if err != nil {
			return nil, err
		}
		if len(res) == 0 || len(res) >= len(base) {
			continue
		}
		out.Suggestions = append(out.Suggestions, Suggestion{
			Keywords: refine.NewRQ(narrowed, 0).Keywords,
			Added:    []string{c.term},
			Results:  res,
			Score:    c.score * proximity(len(res), o.TargetResults),
		})
	}
	sort.SliceStable(out.Suggestions, func(i, j int) bool {
		return out.Suggestions[i].Score > out.Suggestions[j].Score
	})
	if len(out.Suggestions) > o.TopK {
		out.Suggestions = out.Suggestions[:o.TopK]
	}
	return out, nil
}

// originalMatches returns the meaningful SLCAs of in.Query.
func originalMatches(in refine.Input) ([]refine.Match, error) {
	return refine.Original(in)
}

// proximity maps a result count onto (0,1], peaking at the target count:
// a suggestion that narrows 500 results to 8 beats one that narrows to 1
// or to 400.
func proximity(got, target int) float64 {
	if got <= 0 {
		return 0
	}
	ratio := float64(got) / float64(target)
	if ratio > 1 {
		ratio = 1 / ratio
	}
	return ratio
}
