package slca

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"xrefine/internal/dewey"
	"xrefine/internal/index"
	"xrefine/internal/xmltree"
)

const fig1 = `
<bib>
  <author>
    <name>John Ben</name>
    <publications>
      <inproceedings>
        <title>online DBLP in XML</title>
        <year>2001</year>
      </inproceedings>
      <inproceedings>
        <title>online database systems</title>
        <year>2003</year>
      </inproceedings>
      <article>
        <title>XML data mining</title>
        <year>2003</year>
      </article>
    </publications>
  </author>
  <author>
    <name>Mary Lee</name>
    <publications>
      <inproceedings>
        <title>XML keyword search</title>
        <year>2005</year>
      </inproceedings>
    </publications>
    <hobby>swimming</hobby>
  </author>
</bib>`

func lists(t testing.TB, ix *index.Index, terms ...string) []*index.List {
	t.Helper()
	out := make([]*index.List, len(terms))
	for i, term := range terms {
		l, err := ix.List(term)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = l
	}
	return out
}

func buildIx(t testing.TB, src string) *index.Index {
	t.Helper()
	doc, err := xmltree.ParseString(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	return index.Build(doc)
}

func idsToStrings(ids []dewey.ID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = id.String()
	}
	return out
}

var allAlgos = []Algorithm{AlgoScanEager, AlgoIndexedLookupEager, AlgoStack, AlgoMultiway}

func runAll(t *testing.T, ls []*index.List, want []string) {
	t.Helper()
	for _, algo := range allAlgos {
		got := idsToStrings(Compute(algo, ls))
		if strings.Join(got, " ") != strings.Join(want, " ") {
			t.Errorf("%s = %v, want %v", algo, got, want)
		}
	}
	// and the reference agrees
	if got := idsToStrings(Naive(ls)); strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("naive = %v, want %v", got, want)
	}
}

func TestKnownQueries(t *testing.T) {
	ix := buildIx(t, fig1)
	// {xml, 2003}: author 0.0's subtree has both, smallest are the two
	// publication entries that each contain... inproceedings 0.0.1.1 has
	// "2003" but not xml? it has title "online database systems" — no
	// xml. article 0.0.1.2 has both xml and 2003.
	runAll(t, lists(t, ix, "xml", "2003"), []string{"0.0.1.2"})
	// {online, database}: one inproceedings title contains both terms.
	runAll(t, lists(t, ix, "online", "database"), []string{"0.0.1.1.0"})
	// {john, swimming}: different authors -> only the root covers both.
	runAll(t, lists(t, ix, "john", "swimming"), []string{"0"})
	// {xml}: single keyword -> every matching node, none is ancestor of
	// another here.
	runAll(t, lists(t, ix, "xml"), []string{"0.0.1.0.0", "0.0.1.2.0", "0.1.1.0.0"})
	// missing keyword -> empty
	runAll(t, lists(t, ix, "xml", "nosuch"), nil)
}

func TestSingleKeywordAncestorFiltering(t *testing.T) {
	// "a" matches both a node and its descendant: only the descendant is
	// an SLCA.
	ix := buildIx(t, `<r><a>deep a here</a><b>other</b></r>`)
	// "a" appears as tag of 0.0 and inside its text ("a" term from text
	// "deep a here" belongs to node 0.0 itself) — same node. Build a
	// sharper case:
	ix2 := buildIx(t, `<r><x><y>target</y></x></r>`)
	_ = ix
	// "x" tag at 0.0, "target" at 0.0.0: query {x} -> 0.0 alone.
	runAll(t, lists(t, ix2, "x"), []string{"0.0"})
	// query {x, target} -> 0.0 (contains both; no smaller node does).
	runAll(t, lists(t, ix2, "x", "target"), []string{"0.0"})
}

func TestDuplicateListsAndSharedNodes(t *testing.T) {
	ix := buildIx(t, fig1)
	// The same list twice: SLCA = single-keyword semantics.
	l, _ := ix.List("swimming")
	runAll(t, []*index.List{l, l}, []string{"0.1.2"})
}

func TestEmptyInput(t *testing.T) {
	if got := Compute(AlgoScanEager, nil); got != nil {
		t.Errorf("no lists = %v", got)
	}
}

func TestAlgorithmString(t *testing.T) {
	names := map[Algorithm]string{
		AlgoScanEager:          "scan-eager",
		AlgoIndexedLookupEager: "indexed-lookup-eager",
		AlgoStack:              "stack",
		AlgoMultiway:           "multiway",
		Algorithm(99):          "unknown",
	}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%d.String() = %q", a, a.String())
		}
	}
}

// randomDoc builds a random tree with terms drawn from a tiny vocabulary so
// keyword co-occurrence is frequent.
func randomDoc(r *rand.Rand) string {
	vocab := []string{"t0", "t1", "t2", "t3"}
	var b strings.Builder
	var rec func(depth int)
	rec = func(depth int) {
		kids := r.Intn(4)
		if depth >= 4 {
			kids = 0
		}
		b.WriteString("<n>")
		if r.Intn(2) == 0 {
			b.WriteString(vocab[r.Intn(len(vocab))])
		}
		for i := 0; i < kids; i++ {
			rec(depth + 1)
		}
		b.WriteString("</n>")
	}
	b.WriteString("<root>")
	n := 1 + r.Intn(4)
	for i := 0; i < n; i++ {
		rec(0)
	}
	b.WriteString("</root>")
	return b.String()
}

// referenceSLCA computes SLCAs straight from the tree definition: nodes
// whose subtree contains all terms and none of whose children's subtrees
// do.
func referenceSLCA(doc *xmltree.Document, terms []string) []string {
	var out []string
	var containsAll func(n *xmltree.Node) map[string]bool
	memo := map[*xmltree.Node]map[string]bool{}
	containsAll = func(n *xmltree.Node) map[string]bool {
		if m, ok := memo[n]; ok {
			return m
		}
		m := map[string]bool{}
		for _, w := range n.Terms() {
			m[w] = true
		}
		for _, c := range n.Children {
			for w := range containsAll(c) {
				m[w] = true
			}
		}
		memo[n] = m
		return m
	}
	hasAll := func(n *xmltree.Node) bool {
		m := containsAll(n)
		for _, t := range terms {
			if !m[t] {
				return false
			}
		}
		return true
	}
	doc.Walk(func(n *xmltree.Node) bool {
		if !hasAll(n) {
			return false // no descendant can have all either
		}
		childHas := false
		for _, c := range n.Children {
			if hasAll(c) {
				childHas = true
				break
			}
		}
		if !childHas {
			out = append(out, n.ID.String())
			return false
		}
		return true
	})
	return out
}

// Property: all four algorithms agree with the tree-definition reference on
// random documents and random queries.
func TestPropertyAllAlgorithmsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		src := randomDoc(r)
		doc, err := xmltree.ParseString(src, nil)
		if err != nil {
			t.Fatal(err)
		}
		ix := index.Build(doc)
		nTerms := 1 + r.Intn(3)
		terms := make([]string, nTerms)
		for i := range terms {
			terms[i] = fmt.Sprintf("t%d", r.Intn(4))
		}
		ls := lists(t, ix, terms...)
		want := referenceSLCA(doc, terms)
		allEmpty := false
		for _, l := range ls {
			if l.Len() == 0 {
				allEmpty = true
			}
		}
		if allEmpty {
			want = nil
		}
		for _, algo := range allAlgos {
			got := idsToStrings(Compute(algo, ls))
			if strings.Join(got, " ") != strings.Join(want, " ") {
				t.Fatalf("trial %d: %s(%v) = %v, want %v\ndoc: %s", trial, algo, terms, got, want, src)
			}
		}
		if got := idsToStrings(Naive(ls)); strings.Join(got, " ") != strings.Join(want, " ") {
			t.Fatalf("trial %d: naive(%v) = %v, want %v\ndoc: %s", trial, terms, got, want, src)
		}
	}
}

// Property: SLCA results never contain one another and each subtree really
// contains every keyword.
func TestPropertySLCAInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	for trial := 0; trial < 100; trial++ {
		src := randomDoc(r)
		ix := buildIx(t, src)
		terms := []string{"t0", "t1"}
		ls := lists(t, ix, terms...)
		res := ScanEager(ls)
		for i := range res {
			for j := range res {
				if i != j && dewey.IsAncestorOrSelf(res[i], res[j]) {
					t.Fatalf("results overlap: %s contains %s", res[i], res[j])
				}
			}
			for k, l := range ls {
				if !l.HasInSubtree(res[i]) {
					t.Fatalf("result %s misses keyword %s", res[i], terms[k])
				}
			}
		}
	}
}

func benchmarkDoc(n int) string {
	r := rand.New(rand.NewSource(9))
	var b strings.Builder
	b.WriteString("<root>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "<paper><title>alpha w%d</title><year>%d</year></paper>", r.Intn(50), 2000+r.Intn(8))
	}
	b.WriteString("</root>")
	return b.String()
}

func benchLists(b *testing.B) []*index.List {
	doc, err := xmltree.ParseString(benchmarkDoc(5000), nil)
	if err != nil {
		b.Fatal(err)
	}
	ix := index.Build(doc)
	out := make([]*index.List, 0, 2)
	for _, term := range []string{"alpha", "2003"} {
		l, err := ix.List(term)
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, l)
	}
	return out
}

func BenchmarkScanEager(b *testing.B) {
	ls := benchLists(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ScanEager(ls)
	}
}

func BenchmarkIndexedLookupEager(b *testing.B) {
	ls := benchLists(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		IndexedLookupEager(ls)
	}
}

func BenchmarkStack(b *testing.B) {
	ls := benchLists(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Stack(ls)
	}
}

func BenchmarkMultiway(b *testing.B) {
	ls := benchLists(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Multiway(ls)
	}
}
