package slca

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func TestELCAKnownCase(t *testing.T) {
	// c1 (0.0) holds both keywords; the root additionally holds its own
	// independent witnesses (0.1 has "a", 0.2 has "b"), so both c1 and
	// the root are ELCAs — but only c1 is an SLCA.
	ix := buildIx(t, `<r><c><x>a b</x></c><y>a</y><z>b</z></r>`)
	ls := lists(t, ix, "a", "b")
	elca := idsToStrings(ELCA(ls))
	if strings.Join(elca, " ") != "0 0.0.0" {
		t.Fatalf("ELCA = %v, want [0 0.0.0]", elca)
	}
	sl := idsToStrings(ScanEager(ls))
	if strings.Join(sl, " ") != "0.0.0" {
		t.Fatalf("SLCA = %v", sl)
	}
}

func TestELCAExclusionThroughIncompleteMiddle(t *testing.T) {
	// d (0.0.0) is complete; its parent m (0.0) has one extra "a" but no
	// independent "b", so m's witnesses are partly absorbed: m is not an
	// ELCA, and neither is the root (its only "b" witnesses sit inside
	// the complete subtree d... through m).
	ix := buildIx(t, `<r><m><d>a b</d><w>a</w></m><v>a</v></r>`)
	ls := lists(t, ix, "a", "b")
	elca := idsToStrings(ELCA(ls))
	if strings.Join(elca, " ") != "0.0.0" {
		t.Fatalf("ELCA = %v, want [0.0.0]", elca)
	}
}

func TestELCASupersetOfSLCA(t *testing.T) {
	r := rand.New(rand.NewSource(404))
	for trial := 0; trial < 150; trial++ {
		src := randomDoc(r)
		ix := buildIx(t, src)
		terms := []string{"t0", "t1"}
		if r.Intn(2) == 0 {
			terms = append(terms, "t2")
		}
		ls := lists(t, ix, terms...)
		slcaSet := map[string]bool{}
		for _, id := range ScanEager(ls) {
			slcaSet[id.String()] = true
		}
		elcaSet := map[string]bool{}
		for _, id := range ELCA(ls) {
			elcaSet[id.String()] = true
		}
		for s := range slcaSet {
			if !elcaSet[s] {
				t.Fatalf("trial %d: SLCA %s missing from ELCA\ndoc: %s", trial, s, src)
			}
		}
	}
}

func TestPropertyELCAMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(505))
	for trial := 0; trial < 200; trial++ {
		src := randomDoc(r)
		ix := buildIx(t, src)
		nTerms := 1 + r.Intn(3)
		terms := make([]string, nTerms)
		for i := range terms {
			terms[i] = fmt.Sprintf("t%d", r.Intn(4))
		}
		ls := lists(t, ix, terms...)
		want := idsToStrings(NaiveELCA(ls))
		got := idsToStrings(ELCA(ls))
		if strings.Join(got, " ") != strings.Join(want, " ") {
			t.Fatalf("trial %d: ELCA(%v) = %v, want %v\ndoc: %s", trial, terms, got, want, src)
		}
	}
}

func TestELCAEmptyInputs(t *testing.T) {
	if got := ELCA(nil); got != nil {
		t.Errorf("ELCA(nil) = %v", got)
	}
	ix := buildIx(t, `<r><a>x</a></r>`)
	if got := ELCA(lists(t, ix, "x", "missing")); got != nil {
		t.Errorf("ELCA with empty list = %v", got)
	}
}

func BenchmarkELCA(b *testing.B) {
	ls := benchLists(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ELCA(ls)
	}
}
