package slca

import (
	"strings"
	"sync"
	"testing"

	"xrefine/internal/dewey"
)

// TestAlgorithmsPureOverSharedLists runs every algorithm from many
// goroutines over the same shared lists and checks each result against the
// single-threaded answer. Under -race this asserts the package-doc purity
// contract: no algorithm writes to its input lists or to hidden shared
// state.
func TestAlgorithmsPureOverSharedLists(t *testing.T) {
	ix := buildIx(t, fig1)
	shared := lists(t, ix, "xml", "online")
	algos := []Algorithm{AlgoScanEager, AlgoIndexedLookupEager, AlgoStack, AlgoMultiway}
	want := make(map[Algorithm]string)
	for _, a := range algos {
		want[a] = idsString(Compute(a, shared))
	}
	const goroutines = 8
	const rounds = 50
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				a := algos[(g+r)%len(algos)]
				if got := idsString(Compute(a, shared)); got != want[a] {
					errs <- a.String() + ": got " + got + " want " + want[a]
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

func idsString(ids []dewey.ID) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = id.String()
	}
	return strings.Join(parts, " ")
}
