package slca

import (
	"sort"

	"xrefine/internal/dewey"
	"xrefine/internal/index"
)

// ELCA computes Exclusive LCAs — the result semantics of XRank, the other
// major LCA variant in the paper's related work. A node v is an ELCA when
// its subtree contains every keyword *witnessed outside* any descendant
// whose subtree already contains all keywords: v must justify its
// membership with its own evidence, not evidence swallowed by a complete
// descendant. Every SLCA is an ELCA; ELCA additionally surfaces ancestors
// with independent witnesses.
//
// Implementation: the same document-ordered merge and path stack as Stack,
// but each entry carries two keyword masks —
//
//	all:  every keyword occurring below the entry,
//	own:  keywords witnessed below the entry but outside complete
//	      (all-keyword) descendants.
//
// On pop, an entry with a full own-mask is an ELCA. Its parent inherits
// the all-mask unconditionally, but inherits the own-mask only when the
// child's subtree was not itself complete — a complete subtree absorbs all
// its witnesses, which is exactly the exclusion in the definition.
func ELCA(lists []*index.List) []dewey.ID {
	if !nonEmpty(lists) {
		return nil
	}
	full := uint64(1)<<len(lists) - 1
	merge := newMergeScan(lists)
	defer merge.close()

	type entry struct {
		all uint64
		own uint64
	}
	var stack []entry
	var path dewey.ID
	var out []dewey.ID

	pop := func() {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if e.own == full {
			out = append(out, path.Clone())
		}
		path = path[:len(path)-1]
		if len(stack) > 0 {
			top := &stack[len(stack)-1]
			top.all |= e.all
			if e.all != full {
				top.own |= e.own
			}
		}
	}

	for {
		id, mask, ok := merge.next()
		if !ok {
			break
		}
		keep := dewey.LCALen(path, id)
		for len(stack) > keep {
			pop()
		}
		for len(path) < len(id) {
			path = append(path, id[len(path)])
			stack = append(stack, entry{})
		}
		stack[len(stack)-1].all |= mask
		stack[len(stack)-1].own |= mask
	}
	for len(stack) > 0 {
		pop()
	}
	sort.Slice(out, func(i, j int) bool { return dewey.Compare(out[i], out[j]) < 0 })
	return out
}

// NaiveELCA is the brute-force reference for tests: for every node that
// contains all keywords, check the definition directly — some witness per
// keyword not inside any complete proper descendant.
func NaiveELCA(lists []*index.List) []dewey.ID {
	if !nonEmpty(lists) {
		return nil
	}
	// Gather, per ancestor node, the set of keywords below it.
	type info struct {
		id   dewey.ID
		mask uint64
	}
	nodes := map[string]*info{}
	keyOf := func(d dewey.ID) string { return string(d.Bytes()) }
	for i, l := range lists {
		for _, p := range l.Postings() {
			for n := 1; n <= len(p.ID); n++ {
				anc := p.ID[:n]
				k := keyOf(anc)
				if nodes[k] == nil {
					nodes[k] = &info{id: anc.Clone()}
				}
				nodes[k].mask |= 1 << i
			}
		}
	}
	full := uint64(1)<<len(lists) - 1
	var complete []dewey.ID
	for _, inf := range nodes {
		if inf.mask == full {
			complete = append(complete, inf.id)
		}
	}
	var out []dewey.ID
	for _, v := range complete {
		// Witness check per keyword: some posting under v that is not
		// under any complete strict descendant of v.
		isELCA := true
		for _, l := range lists {
			found := false
			s, e := l.InSubtree(v)
			for i := s; i < e && !found; i++ {
				p := l.At(i)
				covered := false
				for _, c := range complete {
					if dewey.IsAncestor(v, c) && dewey.IsAncestorOrSelf(c, p.ID) {
						covered = true
						break
					}
				}
				if !covered {
					found = true
				}
			}
			if !found {
				isELCA = false
				break
			}
		}
		if isELCA {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return dewey.Compare(out[i], out[j]) < 0 })
	return out
}
