// Package slca computes Smallest Lowest Common Ancestors, the conjunctive
// matching semantics XML keyword search is built on: a node is an SLCA of a
// query when its subtree contains every query keyword and no descendant's
// subtree does too.
//
// The package provides the algorithm family the paper evaluates against and
// composes with (Section II and VIII):
//
//   - Stack: the stack-based merge algorithm of XKSearch [3], extended by
//     the paper's Algorithm 1,
//   - IndexedLookupEager: XKSearch's index-lookup algorithm driven by the
//     shortest list with binary-searched match probes,
//   - ScanEager: XKSearch's variant that advances cursors instead of
//     binary-searching, preferable when list lengths are comparable,
//   - Multiway: Multiway-SLCA [8], which maximizes anchor skipping,
//   - Naive: a brute-force reference used by tests and sanity checks.
//
// All functions take keyword inverted lists in document order and return
// SLCAs in document order. Every algorithm returns identical results; they
// differ only in cost model, which is the point of the paper's Figure 4.
//
// Every algorithm is pure over its input lists: it reads postings through
// the immutable List API, keeps all intermediate state in locals, and
// returns freshly allocated IDs. Callers may therefore run any number of
// computations concurrently over shared lists — the property the parallel
// partition pipeline in internal/refine relies on. purity_test.go asserts
// it under the race detector.
package slca

import (
	"context"
	"sort"

	"xrefine/internal/dewey"
	"xrefine/internal/index"
)

// Algorithm selects an SLCA computation strategy by name; it is the
// pluggable hook the refinement algorithms are orthogonal to (Lemma 3).
type Algorithm int

const (
	// AlgoScanEager is the default used by the paper's Partition and SLE
	// refinement algorithms.
	AlgoScanEager Algorithm = iota
	// AlgoIndexedLookupEager binary-searches the longer lists.
	AlgoIndexedLookupEager
	// AlgoStack merges all lists through a path stack.
	AlgoStack
	// AlgoMultiway maximizes skipping of redundant LCA computations.
	AlgoMultiway
)

// String names the algorithm as in the paper's figures.
func (a Algorithm) String() string {
	switch a {
	case AlgoScanEager:
		return "scan-eager"
	case AlgoIndexedLookupEager:
		return "indexed-lookup-eager"
	case AlgoStack:
		return "stack"
	case AlgoMultiway:
		return "multiway"
	}
	return "unknown"
}

// Compute runs the selected algorithm.
func Compute(algo Algorithm, lists []*index.List) []dewey.ID {
	ids, _ := ComputeCtx(context.Background(), algo, lists)
	return ids
}

// ComputeCtx runs the selected algorithm under a context: every algorithm
// checks for cancellation periodically inside its main loop and returns
// the context error the moment it observes one, so a canceled query never
// has to wait out a full-list computation. With an un-canceled context the
// output is identical to Compute.
func ComputeCtx(ctx context.Context, algo Algorithm, lists []*index.List) ([]dewey.ID, error) {
	c := newCanceler(ctx)
	// Lists arrive with whatever block cache the caller's window carries:
	// the refinement paths hand in Sub-windows of per-query views, so
	// successive SLCA calls over one query reuse each other's decoded
	// blocks. Callers fanning a shared resident list across goroutines
	// should View-wrap once per goroutine, not per call.
	var ids []dewey.ID
	switch algo {
	case AlgoIndexedLookupEager:
		ids = indexedLookupEager(c, lists)
	case AlgoStack:
		ids = stack(c, lists)
	case AlgoMultiway:
		ids = multiway(c, lists)
	default:
		ids = scanEager(c, lists)
	}
	if err := c.err(); err != nil {
		return nil, err
	}
	return ids, nil
}

// canceler samples a context's cancellation state once every checkStride
// loop iterations — frequent enough for promptness, cheap enough for the
// per-posting hot loops. A nil canceler (background context) never stops.
type canceler struct {
	ctx     context.Context
	n       int
	stopped bool
}

const checkStride = 256

func newCanceler(ctx context.Context) *canceler {
	if ctx == nil || ctx == context.Background() {
		return nil
	}
	return &canceler{ctx: ctx}
}

// stop reports whether the computation should abandon its loop.
func (c *canceler) stop() bool {
	if c == nil {
		return false
	}
	if c.stopped {
		return true
	}
	c.n++
	if c.n%checkStride != 0 {
		return false
	}
	c.stopped = c.ctx.Err() != nil
	return c.stopped
}

func (c *canceler) err() error {
	if c == nil || !c.stopped {
		return nil
	}
	return c.ctx.Err()
}

// Cost returns the posting mass of a computation's input — the sum of
// list lengths. It is the unit the engine's SLCA metrics account in:
// every algorithm's work is bounded by a small function of this mass, so
// it is the algorithm-independent observable.
func Cost(lists []*index.List) int {
	n := 0
	for _, l := range lists {
		n += l.Len()
	}
	return n
}

// nonEmpty reports whether every list has at least one posting; SLCA of a
// query with an unmatched keyword is empty by the conjunctive semantics.
func nonEmpty(lists []*index.List) bool {
	if len(lists) == 0 {
		return false
	}
	for _, l := range lists {
		if l.Len() == 0 {
			return false
		}
	}
	return true
}

// shortestFirst returns the lists reordered so the shortest is first; the
// anchor-driven algorithms iterate over it.
func shortestFirst(lists []*index.List) []*index.List {
	out := append([]*index.List(nil), lists...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Len() < out[j].Len() })
	return out
}

// filterSLCA reduces LCA candidates to SLCAs: sort into document order,
// dedup, then drop every candidate with a candidate descendant. In document
// order an ancestor immediately precedes a contiguous run of its subtree,
// so one linear pass suffices.
func filterSLCA(cands []dewey.ID) []dewey.ID {
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool { return dewey.Compare(cands[i], cands[j]) < 0 })
	uniq := cands[:1]
	for _, c := range cands[1:] {
		if !dewey.Equal(uniq[len(uniq)-1], c) {
			uniq = append(uniq, c)
		}
	}
	var out []dewey.ID
	for i, c := range uniq {
		if i+1 < len(uniq) && dewey.IsAncestor(c, uniq[i+1]) {
			continue
		}
		out = append(out, c)
	}
	return out
}

// anchorCandidate computes the smallest node containing anchor v and at
// least one match from every other list — XKSearch's slca(v) construction:
// fold over the other lists, each step picking whichever of the left match
// lm(x, S) and right match rm(x, S) yields the deeper LCA with the current
// subtree root x.
func anchorCandidate(v dewey.ID, others []*index.List) dewey.ID {
	x := v
	for _, s := range others {
		var best dewey.ID
		if l, ok := s.LM(x); ok {
			best = dewey.LCA(x, l.ID)
		}
		if r, ok := s.RM(x); ok {
			cand := dewey.LCA(x, r.ID)
			if best == nil || len(cand) > len(best) {
				best = cand
			}
		}
		x = best // never nil: nonEmpty guarantees a match on some side
	}
	return x
}

// IndexedLookupEager implements XKSearch's Indexed Lookup Eager: iterate
// anchors from the shortest list and probe the other lists with binary
// searches. Cost O(|S1| * m * d * log|S|max).
func IndexedLookupEager(lists []*index.List) []dewey.ID {
	return indexedLookupEager(nil, lists)
}

func indexedLookupEager(c *canceler, lists []*index.List) []dewey.ID {
	if !nonEmpty(lists) {
		return nil
	}
	ordered := shortestFirst(lists)
	anchors, others := ordered[0], ordered[1:]
	cands := make([]dewey.ID, 0, anchors.Len())
	for i := 0; i < anchors.Len(); i++ {
		if c.stop() {
			return nil
		}
		cands = append(cands, anchorCandidate(anchors.At(i).ID, others))
	}
	return filterSLCA(cands)
}

// Multiway implements the anchor-skipping idea of Multiway-SLCA [8]: each
// iteration anchors on the document-order maximum of the lists' current
// heads instead of walking every node of the smallest list, then advances
// every cursor past the anchor. One candidate LCA computation can thereby
// consume many postings from each list.
func Multiway(lists []*index.List) []dewey.ID {
	return multiway(nil, lists)
}

func multiway(c *canceler, lists []*index.List) []dewey.ID {
	if !nonEmpty(lists) {
		return nil
	}
	cursors := make([]int, len(lists))
	var cands []dewey.ID
	for {
		if c.stop() {
			return nil
		}
		// Anchor u: the max of the current heads. Any list exhausted
		// ends the computation — no further node can cover it beyond
		// matches already considered via LM probes.
		var u dewey.ID
		for i, l := range lists {
			if cursors[i] >= l.Len() {
				return filterSLCA(cands)
			}
			if head := l.At(cursors[i]).ID; u == nil || dewey.Compare(head, u) > 0 {
				u = head
			}
		}
		// Candidate anchored at u, matched against every other list.
		// Probes use the full lists (binary search), so matches before
		// consumed cursors stay visible.
		x := u
		for _, s := range lists {
			var best dewey.ID
			if l, ok := s.LM(x); ok {
				best = dewey.LCA(x, l.ID)
			}
			if r, ok := s.RM(x); ok {
				cand := dewey.LCA(x, r.ID)
				if best == nil || len(cand) > len(best) {
					best = cand
				}
			}
			x = best
		}
		cands = append(cands, x)
		// Skip: every posting <= u in every list is covered.
		for i, l := range lists {
			cursors[i] = l.SeekGT(u)
		}
	}
}

// ScanEager implements XKSearch's Scan Eager: like IndexedLookupEager, but
// the other lists keep forward cursors instead of binary searching, which
// wins when list sizes are comparable. Anchors arrive in increasing order,
// so each cursor only ever moves forward — the whole computation is a
// single coordinated scan.
func ScanEager(lists []*index.List) []dewey.ID {
	return scanEager(nil, lists)
}

func scanEager(c *canceler, lists []*index.List) []dewey.ID {
	if !nonEmpty(lists) {
		return nil
	}
	ordered := shortestFirst(lists)
	anchors, others := ordered[0], ordered[1:]
	cursors := make([]int, len(others))
	cands := make([]dewey.ID, 0, anchors.Len())
	for i := 0; i < anchors.Len(); i++ {
		if c.stop() {
			return nil
		}
		x := anchors.At(i).ID
		for j, s := range others {
			// Position the cursor so that postings[cursor-1] <= x <
			// postings[cursor]: the two sides are exactly lm(x) and
			// rm(x). Anchors increase monotonically, but the folded x
			// can jump back toward the root (an ancestor sorts before
			// its descendants), so the cursor may also need to step
			// back; the forward scan dominates the cost in practice.
			for cursors[j] < s.Len() && dewey.Compare(s.At(cursors[j]).ID, x) <= 0 {
				cursors[j]++
			}
			for cursors[j] > 0 && dewey.Compare(s.At(cursors[j]-1).ID, x) > 0 {
				cursors[j]--
			}
			var best dewey.ID
			if cursors[j] > 0 {
				best = dewey.LCA(x, s.At(cursors[j]-1).ID)
			}
			if cursors[j] < s.Len() {
				cand := dewey.LCA(x, s.At(cursors[j]).ID)
				if best == nil || len(cand) > len(best) {
					best = cand
				}
			}
			x = best
		}
		cands = append(cands, x)
	}
	return filterSLCA(cands)
}

// Stack implements the stack-based merge algorithm: all lists merge into
// one document-ordered stream; a stack mirrors the current root-to-node
// path, each entry accumulating which keywords its subtree has produced.
// An entry popped with every keyword present and no SLCA already reported
// below it is an SLCA.
func Stack(lists []*index.List) []dewey.ID {
	return stack(nil, lists)
}

func stack(c *canceler, lists []*index.List) []dewey.ID {
	if !nonEmpty(lists) {
		return nil
	}
	full := uint64(1)<<len(lists) - 1
	merge := newMergeScan(lists)
	defer merge.close()

	type entry struct {
		component uint32
		mask      uint64
		below     bool // an SLCA was reported in a strict descendant
	}
	var stack []entry
	var path dewey.ID // dewey of the node the whole stack denotes
	var out []dewey.ID

	// pop removes the deepest entry, reporting it when it qualifies, and
	// propagates mask and below-flag to its parent.
	pop := func() {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		reported := false
		if e.mask == full && !e.below {
			out = append(out, path.Clone())
			reported = true
		}
		path = path[:len(path)-1]
		if len(stack) > 0 {
			stack[len(stack)-1].mask |= e.mask
			stack[len(stack)-1].below = stack[len(stack)-1].below || e.below || reported
		}
	}

	for {
		if c.stop() {
			return nil
		}
		id, mask, ok := merge.next()
		if !ok {
			break
		}
		keep := dewey.LCALen(path, id)
		for len(stack) > keep {
			pop()
		}
		for len(path) < len(id) {
			c := id[len(path)]
			path = append(path, c)
			stack = append(stack, entry{component: c})
		}
		stack[len(stack)-1].mask |= mask
	}
	for len(stack) > 0 {
		pop()
	}
	// The stream is document-ordered but pops emit an ancestor after all
	// its descendants yet possibly between siblings, so order the output.
	sort.Slice(out, func(i, j int) bool { return dewey.Compare(out[i], out[j]) < 0 })
	return out
}

// mergeScan yields (dewey, keywordMask) pairs in document order, combining
// the masks of lists that contain the same node. Each list is read
// through a pooled block cursor; the yielded ID is owned by the scan and
// valid only until the next call, and close() must run when the merge
// ends to recycle the cursors' decode buffers.
type mergeScan struct {
	curs []*index.Cursor
	cur  dewey.ID // owned copy of the yielded minimum (reused per call)
}

func newMergeScan(lists []*index.List) *mergeScan {
	m := &mergeScan{curs: make([]*index.Cursor, len(lists))}
	for i, l := range lists {
		m.curs[i] = l.NewCursor()
	}
	return m
}

func (m *mergeScan) close() {
	for _, c := range m.curs {
		c.Close()
	}
}

func (m *mergeScan) next() (dewey.ID, uint64, bool) {
	// The minimum is copied into m.cur before any cursor advances: the
	// heads alias per-cursor decode buffers that later reads recycle.
	found := false
	for _, c := range m.curs {
		if !c.Valid() {
			continue
		}
		if id := c.ID(); !found || dewey.Compare(id, m.cur) < 0 {
			m.cur = append(m.cur[:0], id...)
			found = true
		}
	}
	if !found {
		return nil, 0, false
	}
	var mask uint64
	for i, c := range m.curs {
		if c.Valid() && dewey.Equal(c.ID(), m.cur) {
			mask |= 1 << i
			c.Next()
		}
	}
	return m.cur, mask, true
}

// Naive is the brute-force reference: materialize every node that contains
// all keywords (the union of posting ancestors), then keep the minimal
// ones. Quadratic-ish and only for tests and tiny inputs.
func Naive(lists []*index.List) []dewey.ID {
	if !nonEmpty(lists) {
		return nil
	}
	// count, for every ancestor node, which keywords its subtree has
	contains := make(map[string]uint64)
	keyOf := func(d dewey.ID) string { return string(d.Bytes()) }
	ids := make(map[string]dewey.ID)
	for i, l := range lists {
		for _, p := range l.Postings() {
			for n := 1; n <= len(p.ID); n++ {
				anc := p.ID[:n]
				k := keyOf(anc)
				contains[k] |= 1 << i
				if _, ok := ids[k]; !ok {
					ids[k] = anc.Clone()
				}
			}
		}
	}
	full := uint64(1)<<len(lists) - 1
	var cands []dewey.ID
	for k, mask := range contains {
		if mask == full {
			cands = append(cands, ids[k])
		}
	}
	return filterSLCA(cands)
}
