package rank

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"xrefine/internal/index"
	"xrefine/internal/searchfor"
	"xrefine/internal/xmltree"
)

// randomIndex builds a random small corpus for ranking properties.
func randomIndex(t *testing.T, r *rand.Rand) *index.Index {
	t.Helper()
	words := []string{"w0", "w1", "w2", "w3", "w4"}
	var b strings.Builder
	b.WriteString("<lib>")
	for i := 0; i < 3+r.Intn(4); i++ {
		b.WriteString("<item><entry>")
		for j := 0; j < 1+r.Intn(5); j++ {
			b.WriteString(words[r.Intn(len(words))] + " ")
		}
		b.WriteString("</entry></item>")
	}
	b.WriteString("</lib>")
	doc, err := xmltree.ParseString(b.String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return index.Build(doc)
}

// Property: Similarity is strictly monotone decreasing in dissimilarity
// whenever the underlying rho is positive (Guideline 4).
func TestPropertySimilarityMonotoneInDSim(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	m := Default()
	for trial := 0; trial < 60; trial++ {
		ix := randomIndex(t, r)
		cands := searchfor.Infer(ix, []string{"w0", "w1"}, nil)
		if len(cands) == 0 {
			continue
		}
		q := []string{"w0", "w9"}
		rq := []string{"w0", "w1"}
		prev := m.Similarity(ix, cands, q, rq, 0)
		if prev <= 0 {
			continue
		}
		for d := 1.0; d <= 6; d++ {
			cur := m.Similarity(ix, cands, q, rq, d)
			if cur >= prev {
				t.Fatalf("trial %d: similarity not decreasing at dSim %v: %v >= %v", trial, d, cur, prev)
			}
			prev = cur
		}
	}
}

// Property: Rank is linear in alpha and beta.
func TestPropertyRankLinearInWeights(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for trial := 0; trial < 40; trial++ {
		ix := randomIndex(t, r)
		cands := searchfor.Infer(ix, []string{"w0", "w1"}, nil)
		if len(cands) == 0 {
			continue
		}
		q := []string{"w0", "w9"}
		rq := []string{"w0", "w1"}
		mA := Default()
		mA.Beta = 0
		simOnly, err := mA.Rank(ix, cands, q, rq, 1)
		if err != nil {
			t.Fatal(err)
		}
		mB := Default()
		mB.Alpha = 0
		depOnly, err := mB.Rank(ix, cands, q, rq, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, ab := range [][2]float64{{1, 1}, {2, 1}, {1, 2}, {0.5, 3}} {
			m := Default()
			m.Alpha, m.Beta = ab[0], ab[1]
			got, err := m.Rank(ix, cands, q, rq, 1)
			if err != nil {
				t.Fatal(err)
			}
			want := ab[0]*simOnly + ab[1]*depOnly
			if diff := got - want; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("trial %d: rank(%v) = %v, want %v", trial, ab, got, want)
			}
		}
	}
}

// Property: scores are always finite and non-negative under the default
// model for arbitrary keyword combinations.
func TestPropertyRankFiniteNonNegative(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	m := Default()
	for trial := 0; trial < 60; trial++ {
		ix := randomIndex(t, r)
		cands := searchfor.Infer(ix, []string{"w0"}, nil)
		q := make([]string, 1+r.Intn(3))
		rq := make([]string, 1+r.Intn(3))
		for i := range q {
			q[i] = fmt.Sprintf("w%d", r.Intn(8))
		}
		for i := range rq {
			rq[i] = fmt.Sprintf("w%d", r.Intn(8))
		}
		got, err := m.Rank(ix, cands, q, rq, float64(r.Intn(6)))
		if err != nil {
			t.Fatal(err)
		}
		if got < 0 || got != got /* NaN */ || got > 1e12 {
			t.Fatalf("trial %d: rank(%v->%v) = %v", trial, q, rq, got)
		}
	}
}
