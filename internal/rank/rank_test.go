package rank

import (
	"math"
	"testing"

	"xrefine/internal/index"
	"xrefine/internal/searchfor"
	"xrefine/internal/xmltree"
)

const fig1 = `
<bib>
  <author>
    <name>John Ben</name>
    <publications>
      <inproceedings>
        <title>online DBLP in XML</title>
        <year>2001</year>
      </inproceedings>
      <inproceedings>
        <title>online database systems</title>
        <year>2003</year>
      </inproceedings>
      <article>
        <title>XML data mining</title>
        <year>2003</year>
      </article>
    </publications>
  </author>
  <author>
    <name>Mary Lee</name>
    <publications>
      <inproceedings>
        <title>XML keyword search</title>
        <year>2005</year>
      </inproceedings>
    </publications>
    <hobby>swimming</hobby>
  </author>
</bib>`

func buildIx(t testing.TB) *index.Index {
	t.Helper()
	doc, err := xmltree.ParseString(fig1, nil)
	if err != nil {
		t.Fatal(err)
	}
	return index.Build(doc)
}

func ty(t testing.TB, ix *index.Index, path string) *xmltree.Type {
	t.Helper()
	typ, ok := ix.Types.ByPath(path)
	if !ok {
		t.Fatalf("type %s missing", path)
	}
	return typ
}

func almost(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

func TestImpFormula2(t *testing.T) {
	ix := buildIx(t)
	author := ty(t, ix, "bib/author")
	// tf(xml,author)=3, tf(2003,author)=2, G_author = GT.
	g := float64(ix.GT(author))
	almost(t, "Imp", Imp(ix, []string{"xml", "2003"}, author), (3+2)/g)
	// Unknown keyword contributes zero.
	almost(t, "Imp-unknown", Imp(ix, []string{"zzz"}, author), 0)
}

func TestImpKFormula3(t *testing.T) {
	ix := buildIx(t)
	author := ty(t, ix, "bib/author")
	// N_author = 2, f_swimming^author = 1 -> ln(2/2) = 0
	almost(t, "ImpK(swimming)", ImpK(ix, "swimming", author), 0)
	// f_zzz^author = 0 -> ln(2/1) = ln 2
	almost(t, "ImpK(zzz)", ImpK(ix, "zzz", author), math.Log(2))
	// clamped at zero: f = N -> ln(N/(N+1)) < 0 -> 0
	inproc := ty(t, ix, "bib/author/publications/inproceedings")
	// f_title^inproceedings = 3 = N_inproceedings -> clamp
	almost(t, "ImpK(title)", ImpK(ix, "title", inproc), 0)
}

func TestDelta(t *testing.T) {
	got := Delta([]string{"on", "line", "data", "base"}, []string{"online", "data", "base"})
	want := map[string]bool{"on": true, "line": true, "online": true}
	if len(got) != len(want) {
		t.Fatalf("Delta = %v", got)
	}
	for _, k := range got {
		if !want[k] {
			t.Errorf("unexpected delta member %q", k)
		}
	}
	if d := Delta([]string{"a"}, []string{"a"}); len(d) != 0 {
		t.Errorf("Delta of identical = %v", d)
	}
}

func TestConfFormula7(t *testing.T) {
	ix := buildIx(t)
	inproc := ty(t, ix, "bib/author/publications/inproceedings")
	// f_online^inproc = 2; both online inproceedings, one contains
	// database -> C(online => database) = 1/2.
	c, err := Conf(ix, "online", "database", inproc)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "C(online=>database)", c, 0.5)
	// C(database => online) = 1/1 = 1.
	c2, err := Conf(ix, "database", "online", inproc)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "C(database=>online)", c2, 1)
	// Absent antecedent -> 0.
	c3, err := Conf(ix, "zzz", "online", inproc)
	if err != nil || c3 != 0 {
		t.Errorf("C(zzz=>online) = %v, %v", c3, err)
	}
}

func TestDependenceAtFormula8(t *testing.T) {
	ix := buildIx(t)
	inproc := ty(t, ix, "bib/author/publications/inproceedings")
	// RQ = {online, database}: (C(d=>o) + C(o=>d)) / 2 = (1 + 0.5)/2
	d, err := DependenceAt(ix, []string{"online", "database"}, inproc)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "DependenceAt", d, 0.75)
	// Single-keyword RQ has no pairwise dependence.
	d1, err := DependenceAt(ix, []string{"online"}, inproc)
	if err != nil || d1 != 0 {
		t.Errorf("singleton dependence = %v, %v", d1, err)
	}
}

func cands(t *testing.T, ix *index.Index, terms ...string) []searchfor.Candidate {
	t.Helper()
	c := searchfor.Infer(ix, terms, nil)
	if len(c) == 0 {
		t.Fatal("no search-for candidates")
	}
	return c
}

func TestSimilarityDecayGuideline4(t *testing.T) {
	ix := buildIx(t)
	m := Default()
	cs := cands(t, ix, "online", "database")
	q := []string{"on", "line", "data", "base"}
	rq := []string{"online", "database"}
	s2 := m.Similarity(ix, cs, q, rq, 2)
	s4 := m.Similarity(ix, cs, q, rq, 4)
	if s2 <= 0 {
		t.Fatalf("similarity at dSim 2 = %v, want > 0", s2)
	}
	// The same RQ at larger dissimilarity ranks strictly lower, with
	// exactly the 0.8^Δ ratio.
	almost(t, "decay ratio", s4/s2, math.Pow(0.8, 2))
	// Ablating G4 removes the decay entirely.
	m4 := Default()
	m4.NoG4 = true
	if m4.Similarity(ix, cs, q, rq, 2) != m4.Similarity(ix, cs, q, rq, 4) {
		t.Error("RS4 must ignore dissimilarity")
	}
}

func TestAblationSwitches(t *testing.T) {
	ix := buildIx(t)
	cs := cands(t, ix, "online", "database")
	q := []string{"on", "line", "data", "base"}
	rq := []string{"online", "database"}
	base := Default()
	r0 := base.Rho(ix, cs, q, rq)
	m1 := Default()
	m1.NoG1 = true
	m2 := Default()
	m2.NoG2 = true
	m3 := Default()
	m3.NoG3 = true
	if m1.Rho(ix, cs, q, rq) == r0 {
		t.Error("RS1 changed nothing")
	}
	if m2.Rho(ix, cs, q, rq) == r0 {
		t.Error("RS2 changed nothing")
	}
	if len(cs) > 1 && m3.Rho(ix, cs, q, rq) == r0 {
		t.Error("RS3 changed nothing with multiple candidates")
	}
	// RS3 with one candidate drops only the confidence weight.
	one := cs[:1]
	almost(t, "RS3 single candidate", m3.Rho(ix, one, q, rq), base.Rho(ix, one, q, rq)/one[0].Confidence)
}

func TestRankFormula10(t *testing.T) {
	ix := buildIx(t)
	cs := cands(t, ix, "online", "database")
	q := []string{"on", "line", "data", "base"}
	rq := []string{"online", "database"}
	m := Default()
	r, err := m.Rank(ix, cs, q, rq, 2)
	if err != nil {
		t.Fatal(err)
	}
	sim := m.Similarity(ix, cs, q, rq, 2)
	dep, err := m.Dependence(ix, cs, rq)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "Rank = sim + dep", r, sim+dep)
	// α=1, β=0 drops the dependence term.
	mA := Default()
	mA.Beta = 0
	rA, err := mA.Rank(ix, cs, q, rq, 2)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "alpha-only rank", rA, sim)
	// α=0, β=1 keeps only dependence.
	mB := Default()
	mB.Alpha = 0
	rB, err := mB.Rank(ix, cs, q, rq, 2)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "beta-only rank", rB, dep)
}

func TestRankEmptyCandidates(t *testing.T) {
	ix := buildIx(t)
	m := Default()
	r, err := m.Rank(ix, nil, []string{"a"}, []string{"b"}, 1)
	if err != nil || r != 0 {
		t.Errorf("rank with no candidates = %v, %v", r, err)
	}
}

// A query refined toward terms that strongly co-occur must outrank one
// refined toward unrelated terms at equal dissimilarity — the paper's
// motivation for the dependence score (Guideline 5).
func TestDependenceDiscriminates(t *testing.T) {
	ix := buildIx(t)
	cs := cands(t, ix, "online", "database")
	m := Default()
	co, err := m.Dependence(ix, cs, []string{"online", "database"})
	if err != nil {
		t.Fatal(err)
	}
	un, err := m.Dependence(ix, cs, []string{"online", "swimming"})
	if err != nil {
		t.Fatal(err)
	}
	if co <= un {
		t.Errorf("co-occurring pair dep %v <= unrelated pair dep %v", co, un)
	}
}
