package index

import (
	"fmt"
	"sort"

	"xrefine/internal/dewey"
	"xrefine/internal/tokenize"
	"xrefine/internal/xmltree"
)

// Merge combines the indexes of shard sub-documents into one logical
// corpus index whose every statistic — df/tf rows, N_T, G_T, list lengths,
// partition roots, CoDF (computed lazily from the merged lists) — is
// exactly what Build would produce over the concatenated corpus. The
// sharded query path depends on that exactness: rule generation, search-for
// inference and Formula-10 ranking all run against this index, so any
// deviation would silently change scores relative to a monolithic engine.
//
// The contract (guaranteed by xmltree.Document.Subset and enforced by
// shard.WriteStores): every part is a sub-document of one corpus, holding a
// copy of the same bare container root (its tag token is its only term)
// plus a disjoint set of partitions that keep their global Dewey labels,
// and all parts share one type registry. Disjointness makes every per-type
// and per-term statistic additive; the replicated root is the single node
// counted once per shard, so its contributions are collapsed back to one:
// the root type's N_T clamps to 1, every term's df at the root type clamps
// to 1 (one corpus root subtree contains it), and the root tag term sheds
// the duplicate root postings from its list length and root-type tf.
//
// Posting lists materialize lazily as k-way merges of the shard lists with
// the replicated root posting deduplicated, so CoDF and the whole-list
// strategies (SLE, stack) see exactly the monolithic lists.
func Merge(parts []*Index) (*Index, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("index: merge of zero shards")
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	reg := parts[0].Types
	for _, p := range parts[1:] {
		if p.Types != reg {
			return nil, fmt.Errorf("index: merge: shards do not share a type registry")
		}
	}
	ix := &Index{
		Types:   reg,
		Root:    dewey.Root(),
		terms:   make(map[string]*kwEntry),
		coCache: make(map[coKey]int),
		stat:    &opStat{},
	}
	dup := uint32(len(parts) - 1)
	for _, p := range parts {
		ix.NodeCount += p.NodeCount
	}
	ix.NodeCount -= int(dup)

	// N_T: partitions are disjoint below the root, so per-type node counts
	// add; the replicated root collapses back to a single node.
	ix.nt = make([]uint32, reg.Len())
	for _, p := range parts {
		for i, v := range p.nt {
			ix.nt[i] += v
		}
	}
	var rootType *xmltree.Type
	for _, t := range reg.Types() {
		if t.Depth != 0 || t.ID >= len(ix.nt) || ix.nt[t.ID] == 0 {
			continue
		}
		if rootType != nil {
			return nil, fmt.Errorf("index: merge: shards disagree on the corpus root type (%s vs %s)", rootType.Tag, t.Tag)
		}
		rootType = t
		ix.nt[t.ID] = 1
	}
	if rootType == nil {
		return nil, fmt.Errorf("index: merge: no corpus root type")
	}
	rootTerm := tokenize.Tag(rootType.Tag)

	for _, p := range parts {
		for term, e := range p.terms {
			m := ix.terms[term]
			if m == nil {
				m = &kwEntry{stats: make(map[int]typeStat, len(e.stats))}
				ix.terms[term] = m
			}
			m.listLen += e.listLen
			for tid, st := range e.stats {
				row := m.stats[tid]
				row.df += st.df
				row.tf += st.tf
				m.stats[tid] = row
			}
		}
	}
	for term, m := range ix.terms {
		row, ok := m.stats[rootType.ID]
		if !ok {
			continue
		}
		if row.df > 1 {
			row.df = 1
		}
		if term == rootTerm && rootTerm != "" {
			row.tf -= dup
			m.listLen -= dup
		}
		m.stats[rootType.ID] = row
	}

	// G_T from the merged rows, exactly as Build derives it.
	ix.gt = make([]uint32, reg.Len())
	for _, e := range ix.terms {
		for tid := range e.stats {
			ix.gt[tid]++
		}
	}

	for _, p := range parts {
		ix.partRoot = append(ix.partRoot, p.partRoot...)
	}
	sort.Slice(ix.partRoot, func(i, j int) bool {
		return dewey.Compare(ix.partRoot[i], ix.partRoot[j]) < 0
	})

	ix.loader = func(term string) (*List, error) { return mergeLists(term, parts) }
	return ix, nil
}

// mergeLists builds the corpus-wide posting list of term as a k-way merge
// of the shard lists, streamed through cursors straight into a block
// encoder — the merged list is never materialized as []Posting. Shard
// partitions are disjoint, so the only IDs appearing in more than one
// list are the replicated root postings of the root tag term; equal IDs
// deduplicate to one (the encoder's strict-order input comes from
// skipping them, plus the shards' own document order).
func mergeLists(term string, parts []*Index) (*List, error) {
	var lists []*List
	for _, p := range parts {
		if !p.HasTerm(term) {
			continue
		}
		l, err := p.List(term)
		if err != nil {
			return nil, err
		}
		if l.Len() > 0 {
			lists = append(lists, l)
		}
	}
	curs := make([]*Cursor, len(lists))
	for i, l := range lists {
		curs[i] = l.NewCursor()
	}
	defer func() {
		for _, c := range curs {
			c.Close()
		}
	}()
	w := newBlockWriter(term, false)
	var last dewey.ID // owned copy of the last appended ID, for dedup
	haveLast := false
	for {
		best := -1
		var bestID dewey.ID
		for i, c := range curs {
			if !c.Valid() {
				continue
			}
			// id aliases cursor i's scratch; it is only read before any
			// cursor advances, so no decode can recycle it underneath us.
			id := c.ID()
			if best < 0 || dewey.Compare(id, bestID) < 0 {
				best, bestID = i, id
			}
		}
		if best < 0 {
			break
		}
		if !haveLast || !dewey.Equal(last, bestID) {
			p := curs[best].Posting()
			if err := w.Append(p.ID, p.Type); err != nil {
				return nil, err
			}
			last = append(last[:0], bestID...)
			haveLast = true
		}
		curs[best].Next()
	}
	return newListFromCore(term, w.Finish()), nil
}
