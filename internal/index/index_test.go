package index

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"xrefine/internal/dewey"
	"xrefine/internal/kvstore"
	"xrefine/internal/xmltree"
)

// figure1 mirrors the paper's Figure 1 closely enough to check the worked
// statistics examples: two authors, publications with inproceedings and
// article entries, a hobby.
const figure1 = `
<bib>
  <author>
    <name>John Ben</name>
    <publications>
      <inproceedings>
        <title>online DBLP in XML</title>
        <year>2001</year>
      </inproceedings>
      <inproceedings>
        <title>online database systems</title>
        <year>2003</year>
      </inproceedings>
      <article>
        <title>XML data mining</title>
        <year>2003</year>
      </article>
    </publications>
  </author>
  <author>
    <name>Mary Lee</name>
    <publications>
      <inproceedings>
        <title>XML keyword search</title>
        <year>2005</year>
      </inproceedings>
    </publications>
    <hobby>swimming</hobby>
  </author>
</bib>`

func buildFig1(t testing.TB) (*xmltree.Document, *Index) {
	t.Helper()
	doc, err := xmltree.ParseString(figure1, nil)
	if err != nil {
		t.Fatal(err)
	}
	return doc, Build(doc)
}

func typeOf(t testing.TB, ix *Index, path string) *xmltree.Type {
	t.Helper()
	ty, ok := ix.Types.ByPath(path)
	if !ok {
		t.Fatalf("type %q missing", path)
	}
	return ty
}

func TestListContentsAndOrder(t *testing.T) {
	_, ix := buildFig1(t)
	l, err := ix.List("xml")
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 3 {
		t.Fatalf("xml list len = %d, want 3", l.Len())
	}
	for i := 1; i < l.Len(); i++ {
		if dewey.Compare(l.At(i-1).ID, l.At(i).ID) >= 0 {
			t.Fatal("list out of document order")
		}
	}
	// tag-name keywords are indexed too
	l2, err := ix.List("inproceedings")
	if err != nil {
		t.Fatal(err)
	}
	if l2.Len() != 3 {
		t.Fatalf("inproceedings list len = %d, want 3", l2.Len())
	}
	// absent keyword: empty non-nil list
	l3, err := ix.List("nosuchterm")
	if err != nil || l3.Len() != 0 {
		t.Fatalf("absent term: %v %d", err, l3.Len())
	}
	if ix.HasTerm("nosuchterm") {
		t.Error("HasTerm(nosuchterm) = true")
	}
	if !ix.HasTerm("swimming") {
		t.Error("HasTerm(swimming) = false")
	}
}

// The paper's Definition 3.2 example: f_xml^inproceedings = 2 on Figure 1
// (two inproceedings whose subtrees contain "XML").
func TestDFMatchesPaperExample(t *testing.T) {
	_, ix := buildFig1(t)
	inproc := typeOf(t, ix, "bib/author/publications/inproceedings")
	if got := ix.DF("xml", inproc); got != 2 {
		t.Errorf("f_xml^inproceedings = %d, want 2", got)
	}
	author := typeOf(t, ix, "bib/author")
	if got := ix.DF("xml", author); got != 2 {
		t.Errorf("f_xml^author = %d, want 2 (both authors have xml)", got)
	}
	bib := typeOf(t, ix, "bib")
	if got := ix.DF("xml", bib); got != 1 {
		t.Errorf("f_xml^bib = %d, want 1", got)
	}
	if got := ix.DF("swimming", inproc); got != 0 {
		t.Errorf("f_swimming^inproceedings = %d, want 0", got)
	}
	// A keyword matching a tag counts at the node itself.
	if got := ix.DF("hobby", typeOf(t, ix, "bib/author/hobby")); got != 1 {
		t.Errorf("f_hobby^hobby = %d, want 1", got)
	}
}

// tf(k,T) from Section IV: occurrences of k within T-typed subtrees. The
// paper's example tf("XML","author") = 3 matches Figure 1's three XML
// occurrences under authors.
func TestTF(t *testing.T) {
	_, ix := buildFig1(t)
	author := typeOf(t, ix, "bib/author")
	if got := ix.TF("xml", author); got != 3 {
		t.Errorf("tf(xml, author) = %d, want 3", got)
	}
	if got := ix.TF("online", author); got != 2 {
		t.Errorf("tf(online, author) = %d, want 2", got)
	}
	// "2003" occurs twice under author 0 only.
	if got := ix.TF("2003", author); got != 2 {
		t.Errorf("tf(2003, author) = %d, want 2", got)
	}
}

func TestNTAndGT(t *testing.T) {
	_, ix := buildFig1(t)
	author := typeOf(t, ix, "bib/author")
	if got := ix.NT(author); got != 2 {
		t.Errorf("N_author = %d, want 2", got)
	}
	inproc := typeOf(t, ix, "bib/author/publications/inproceedings")
	if got := ix.NT(inproc); got != 3 {
		t.Errorf("N_inproceedings = %d, want 3", got)
	}
	// G_T counts distinct keywords under T; spot check with a manual
	// count for hobby subtrees: {hobby, swimming}.
	hobby := typeOf(t, ix, "bib/author/hobby")
	if got := ix.GT(hobby); got != 2 {
		t.Errorf("G_hobby = %d, want 2", got)
	}
	// and G_root covers the whole vocabulary.
	bib := typeOf(t, ix, "bib")
	if got := ix.GT(bib); got != len(ix.Vocabulary()) {
		t.Errorf("G_bib = %d, want %d", got, len(ix.Vocabulary()))
	}
}

func TestCoDF(t *testing.T) {
	_, ix := buildFig1(t)
	inproc := typeOf(t, ix, "bib/author/publications/inproceedings")
	// "online" and "database" co-occur in exactly one inproceedings.
	got, err := ix.CoDF("online", "database", inproc)
	if err != nil || got != 1 {
		t.Errorf("f_{online,database}^inproceedings = %d (%v), want 1", got, err)
	}
	// order must not matter and the memo must return the same value
	got2, err := ix.CoDF("database", "online", inproc)
	if err != nil || got2 != got {
		t.Errorf("CoDF not symmetric: %d vs %d", got, got2)
	}
	author := typeOf(t, ix, "bib/author")
	// "xml" and "swimming" co-occur under one author (Mary).
	got3, err := ix.CoDF("xml", "swimming", author)
	if err != nil || got3 != 1 {
		t.Errorf("f_{xml,swimming}^author = %d (%v), want 1", got3, err)
	}
	// no co-occurrence at inproceedings level
	got4, err := ix.CoDF("xml", "swimming", inproc)
	if err != nil || got4 != 0 {
		t.Errorf("f_{xml,swimming}^inproceedings = %d (%v), want 0", got4, err)
	}
}

func TestSeekAndSubtreeOps(t *testing.T) {
	_, ix := buildFig1(t)
	l, _ := ix.List("xml")
	first := l.At(0).ID
	if got := l.SeekGE(first); got != 0 {
		t.Errorf("SeekGE(first) = %d", got)
	}
	if got := l.SeekGT(first); got != 1 {
		t.Errorf("SeekGT(first) = %d", got)
	}
	// Subtree of author 0.1 holds exactly one xml posting.
	s, e := l.InSubtree(dewey.MustParse("0.1"))
	if e-s != 1 {
		t.Errorf("InSubtree(0.1) = [%d,%d)", s, e)
	}
	if !l.HasInSubtree(dewey.MustParse("0.0")) {
		t.Error("HasInSubtree(0.0) = false")
	}
	if l.HasInSubtree(dewey.MustParse("0.5")) {
		t.Error("HasInSubtree(0.5) = true")
	}
	// LM / RM match functions
	if p, ok := l.LM(dewey.MustParse("0.1")); !ok || dewey.Compare(p.ID, dewey.MustParse("0.1")) > 0 {
		t.Errorf("LM = %v %v", p.ID, ok)
	}
	if _, ok := l.LM(dewey.MustParse("0")); ok {
		t.Error("LM before first should be false")
	}
	if p, ok := l.RM(dewey.MustParse("0.1")); !ok || dewey.Compare(p.ID, dewey.MustParse("0.1")) < 0 {
		t.Errorf("RM = %v %v", p.ID, ok)
	}
	if _, ok := l.RM(dewey.MustParse("0.9")); ok {
		t.Error("RM after last should be false")
	}
}

func TestPartitionRoots(t *testing.T) {
	_, ix := buildFig1(t)
	roots := ix.PartitionRoots()
	if len(roots) != 2 || roots[0].String() != "0.0" || roots[1].String() != "0.1" {
		t.Errorf("partition roots = %v", roots)
	}
}

func TestNewListPanicsOnDisorder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-order postings")
		}
	}()
	reg := xmltree.NewRegistry()
	ty := reg.Intern(nil, "x")
	NewList("t", []Posting{
		{ID: dewey.MustParse("0.2"), Type: ty},
		{ID: dewey.MustParse("0.1"), Type: ty},
	})
}

func TestSaveLoadRoundtrip(t *testing.T) {
	doc, ix := buildFig1(t)
	path := filepath.Join(t.TempDir(), "ix.kv")
	s, err := kvstore.Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(s); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := kvstore.Open(path, &kvstore.Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ix2, err := Load(s2)
	if err != nil {
		t.Fatal(err)
	}
	if ix2.NodeCount != doc.NodeCount {
		t.Errorf("NodeCount = %d, want %d", ix2.NodeCount, doc.NodeCount)
	}
	// Every statistic and list must match the in-memory index.
	vocab := ix.Vocabulary()
	if got := ix2.Vocabulary(); strings.Join(got, ",") != strings.Join(vocab, ",") {
		t.Fatalf("vocab mismatch: %v vs %v", got, vocab)
	}
	for _, term := range vocab {
		if ix.ListLen(term) != ix2.ListLen(term) {
			t.Errorf("ListLen(%q): %d vs %d", term, ix.ListLen(term), ix2.ListLen(term))
		}
		l1, _ := ix.List(term)
		l2, err := ix2.List(term)
		if err != nil {
			t.Fatalf("load list %q: %v", term, err)
		}
		if l1.Len() != l2.Len() {
			t.Fatalf("list %q len %d vs %d", term, l1.Len(), l2.Len())
		}
		for i := 0; i < l1.Len(); i++ {
			p1, p2 := l1.At(i), l2.At(i)
			if !dewey.Equal(p1.ID, p2.ID) || p1.Type.Path() != p2.Type.Path() {
				t.Fatalf("list %q posting %d: %v/%s vs %v/%s", term, i, p1.ID, p1.Type, p2.ID, p2.Type)
			}
		}
		for _, ty := range ix.Types.Types() {
			ty2, _ := ix2.Types.ByPath(ty.Path())
			if ix.DF(term, ty) != ix2.DF(term, ty2) || ix.TF(term, ty) != ix2.TF(term, ty2) {
				t.Fatalf("stats mismatch for %q/%s", term, ty.Path())
			}
		}
	}
	for _, ty := range ix.Types.Types() {
		ty2, _ := ix2.Types.ByPath(ty.Path())
		if ix.NT(ty) != ix2.NT(ty2) || ix.GT(ty) != ix2.GT(ty2) {
			t.Fatalf("NT/GT mismatch for %s", ty.Path())
		}
	}
	if len(ix2.PartitionRoots()) != len(ix.PartitionRoots()) {
		t.Error("partition roots lost")
	}
	// CoDF on the loaded index must agree too.
	inproc := typeOf(t, ix, "bib/author/publications/inproceedings")
	inproc2 := typeOf(t, ix2, "bib/author/publications/inproceedings")
	v1, _ := ix.CoDF("online", "database", inproc)
	v2, err := ix2.CoDF("online", "database", inproc2)
	if err != nil || v1 != v2 {
		t.Errorf("CoDF after load: %d vs %d (%v)", v1, v2, err)
	}
}

func TestLoadErrors(t *testing.T) {
	s := kvstore.NewMem()
	defer s.Close()
	if _, err := Load(s); err == nil {
		t.Error("Load on empty store should fail")
	}
	// registry present but doc meta missing
	if err := s.Put([]byte(metaTypesKey), []byte("bib\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(s); err == nil {
		t.Error("Load without doc meta should fail")
	}
}

// Property test: on a random document, DF/TF/CoDF computed via the
// incremental build must equal a brute-force recount from the tree.
func TestPropertyStatsAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	words := []string{"xml", "db", "search", "join", "tree", "query"}
	for trial := 0; trial < 25; trial++ {
		var b strings.Builder
		b.WriteString("<root>")
		nAuthors := 1 + r.Intn(4)
		for a := 0; a < nAuthors; a++ {
			b.WriteString("<item>")
			nPapers := r.Intn(4)
			for p := 0; p < nPapers; p++ {
				b.WriteString("<paper><title>")
				nWords := 1 + r.Intn(4)
				for w := 0; w < nWords; w++ {
					b.WriteString(words[r.Intn(len(words))] + " ")
				}
				b.WriteString("</title></paper>")
			}
			b.WriteString("</item>")
		}
		b.WriteString("</root>")
		doc, err := xmltree.ParseString(b.String(), nil)
		if err != nil {
			t.Fatal(err)
		}
		ix := Build(doc)
		// Brute force: for every (term, type) recount df and tf.
		for _, term := range []string{"xml", "join", "paper", "title"} {
			for _, ty := range doc.Types.Types() {
				wantDF, wantTF := bruteDFTF(doc, term, ty)
				if got := ix.DF(term, ty); got != wantDF {
					t.Fatalf("trial %d: DF(%q,%s) = %d, want %d\ndoc: %s", trial, term, ty, got, wantDF, b.String())
				}
				if got := ix.TF(term, ty); got != wantTF {
					t.Fatalf("trial %d: TF(%q,%s) = %d, want %d", trial, term, ty, got, wantTF)
				}
			}
		}
		// CoDF brute force on one pair.
		for _, ty := range doc.Types.Types() {
			want := bruteCoDF(doc, "xml", "db", ty)
			got, err := ix.CoDF("xml", "db", ty)
			if err != nil || got != want {
				t.Fatalf("trial %d: CoDF(xml,db,%s) = %d (%v), want %d", trial, ty, got, err, want)
			}
		}
	}
}

func bruteDFTF(doc *xmltree.Document, term string, ty *xmltree.Type) (df, tf int) {
	doc.Walk(func(n *xmltree.Node) bool {
		if n.Type != ty {
			return true
		}
		contains := false
		count := 0
		var rec func(m *xmltree.Node)
		rec = func(m *xmltree.Node) {
			for _, w := range m.Terms() {
				if w == term {
					contains = true
					count++
				}
			}
			for _, c := range m.Children {
				rec(c)
			}
		}
		rec(n)
		if contains {
			df++
		}
		tf += count
		return true
	})
	return df, tf
}

func bruteCoDF(doc *xmltree.Document, a, b string, ty *xmltree.Type) int {
	count := 0
	doc.Walk(func(n *xmltree.Node) bool {
		if n.Type != ty {
			return true
		}
		hasA, hasB := false, false
		var rec func(m *xmltree.Node)
		rec = func(m *xmltree.Node) {
			for _, w := range m.Terms() {
				if w == a {
					hasA = true
				}
				if w == b {
					hasB = true
				}
			}
			for _, c := range m.Children {
				rec(c)
			}
		}
		rec(n)
		if hasA && hasB {
			count++
		}
		return true
	})
	return count
}

func TestLargeListChunking(t *testing.T) {
	// Build a document whose "hit" list spans many chunks, then check the
	// save/load roundtrip preserves it exactly.
	var b strings.Builder
	b.WriteString("<root>")
	const n = 3000
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "<e><v>hit token%d</v></e>", i)
	}
	b.WriteString("</root>")
	doc, err := xmltree.ParseString(b.String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ix := Build(doc)
	s := kvstore.NewMem()
	defer s.Close()
	if err := ix.Save(s); err != nil {
		t.Fatal(err)
	}
	ix2, err := Load(s)
	if err != nil {
		t.Fatal(err)
	}
	l1, _ := ix.List("hit")
	l2, err := ix2.List("hit")
	if err != nil {
		t.Fatal(err)
	}
	if l1.Len() != n || l2.Len() != n {
		t.Fatalf("lens %d %d, want %d", l1.Len(), l2.Len(), n)
	}
	for i := 0; i < n; i++ {
		if !dewey.Equal(l1.At(i).ID, l2.At(i).ID) {
			t.Fatalf("posting %d: %s vs %s", i, l1.At(i).ID, l2.At(i).ID)
		}
	}
}

func BenchmarkBuild(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<root>")
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&sb, "<e><t>alpha beta gamma %d</t></e>", i)
	}
	sb.WriteString("</root>")
	src := sb.String()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		doc, err := xmltree.ParseString(src, nil)
		if err != nil {
			b.Fatal(err)
		}
		Build(doc)
	}
}

func TestCompleteByPrefix(t *testing.T) {
	_, ix := buildFig1(t)
	got := ix.CompleteByPrefix("s", 10)
	if len(got) == 0 {
		t.Fatal("no completions for 's'")
	}
	for i := 1; i < len(got); i++ {
		if ix.ListLen(got[i-1]) < ix.ListLen(got[i]) {
			t.Errorf("completions not frequency-ordered: %v", got)
		}
	}
	for _, term := range got {
		if !strings.HasPrefix(term, "s") {
			t.Errorf("completion %q lacks prefix", term)
		}
	}
	if got := ix.CompleteByPrefix("", 5); got != nil {
		t.Error("empty prefix completed")
	}
	if got := ix.CompleteByPrefix("xml", 0); got != nil {
		t.Error("k=0 completed")
	}
	if got := ix.CompleteByPrefix("zzz", 5); got != nil {
		t.Error("unmatched prefix completed")
	}
	if got := ix.CompleteByPrefix("xml", 1); len(got) != 1 {
		t.Errorf("cap ignored: %v", got)
	}
}
