package index

import (
	"fmt"
	"sort"

	"xrefine/internal/dewey"
	"xrefine/internal/storage"
	"xrefine/internal/xmltree"
)

// Mutator derives a new index epoch from an existing one by applying
// subtree insertions and deletions, keeping every statistic exactly what a
// from-scratch Build over the mutated document would produce (the
// rebuild-equivalence guarantee — the differential tests assert it).
//
// The derivation is copy-on-write at keyword granularity: the new index
// shares the kwEntry of every untouched term with its source, and the
// first mutation of a term clones its entry. The source index keeps
// serving concurrent readers untouched throughout. Cloning a term first
// forces its posting list resident through the *shared* entry — after the
// batch commits, the chunks that term's lazy loader would have read are
// rewritten, so the previous epoch must never page it in again.
//
// Statistic maintenance mirrors Build exactly:
//
//   - N_T: ±1 per node of the subtree.
//   - tf(k,T): ±1 per occurrence, for every ancestor-or-self type.
//   - f_k^T (df) inside the subtree: distinct containing roots at depths
//     >= the subtree root, replayed with Build's consecutive-LCA trick
//     seeded at the subtree root's depth.
//   - f_k^T at strict-ancestor depths: ±1 only when the subtree adds the
//     first (or removes the last) occurrence under that ancestor, probed
//     against the unmodified list.
//   - G_T: row-existence count, adjusted when a (k,T) row appears or its
//     tf drains to zero.
type Mutator struct {
	ix      *Index
	cloned  map[string]bool
	changed map[string]bool
	removed map[string]bool
}

// NewMutator starts a derivation from src. src is not modified (beyond
// lazily materializing posting lists it shares with the derived index).
func NewMutator(src *Index) *Mutator {
	ix := &Index{
		Types:     src.Types,
		Root:      src.Root,
		NodeCount: src.NodeCount,
		terms:     make(map[string]*kwEntry, len(src.terms)),
		loader:    src.loader,
		nt:        append([]uint32(nil), src.nt...),
		gt:        append([]uint32(nil), src.gt...),
		coCache:   make(map[coKey]int),
		partRoot:  append([]dewey.ID(nil), src.partRoot...),
		stat:      src.stat,
	}
	for t, e := range src.terms {
		ix.terms[t] = e
	}
	return &Mutator{
		ix:      ix,
		cloned:  make(map[string]bool),
		changed: make(map[string]bool),
		removed: make(map[string]bool),
	}
}

// Index returns the derived index. It is safe to publish once the caller
// is done mutating.
func (m *Mutator) Index() *Index { return m.ix }

// Changed returns the terms whose rows/lists differ from the source, in
// lexicographic order. Removed terms are not included.
func (m *Mutator) Changed() []string { return sortedTermSet(m.changed) }

// Removed returns the terms deleted entirely, in lexicographic order.
func (m *Mutator) Removed() []string { return sortedTermSet(m.removed) }

func sortedTermSet(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// touch returns the mutator-private clone of term's entry, creating the
// term when it is new to the index.
func (m *Mutator) touch(term string) (*kwEntry, error) {
	e, ok := m.ix.terms[term]
	if ok && m.cloned[term] {
		return e, nil
	}
	m.cloned[term] = true
	m.changed[term] = true
	delete(m.removed, term)
	if !ok {
		ne := &kwEntry{stats: make(map[int]typeStat)}
		ne.list.Store(NewListUnchecked(term, nil))
		m.ix.terms[term] = ne
		return ne, nil
	}
	// Load through the still-shared entry so the previous epoch keeps a
	// resident copy of its list (epoch isolation, see type comment).
	l, err := m.ix.ListCtx(nil, term)
	if err != nil {
		return nil, err
	}
	ne := &kwEntry{listLen: e.listLen, stats: make(map[int]typeStat, len(e.stats))}
	for id, row := range e.stats {
		ne.stats[id] = row
	}
	ne.list.Store(l)
	m.ix.terms[term] = ne
	return ne, nil
}

// growType extends the per-type stat arrays to cover type ID id.
func (m *Mutator) growType(id int) {
	for id >= len(m.ix.nt) {
		m.ix.nt = append(m.ix.nt, 0)
	}
	for id >= len(m.ix.gt) {
		m.ix.gt = append(m.ix.gt, 0)
	}
}

// termDelta accumulates one term's contribution of a single subtree walk:
// the postings rooted in the subtree (deduplicated per node, in document
// order), tf occurrence counts per type, and the in-subtree df counts per
// type (distinct containing roots at depths >= the subtree root).
type termDelta struct {
	postings []Posting
	lastIn   dewey.ID
	tf       map[int]uint32
	df       map[int]uint32
}

// walkSubtree replays Build's single-pass statistics over just the
// subtree rooted at sub, whose root sits at depth d = len(sub.ID)-1. The
// returned map is keyed by term; order lists terms by first occurrence;
// nt counts the subtree's nodes per type ID.
func walkSubtree(sub *xmltree.Node) (deltas map[string]*termDelta, order []string, nt map[int]uint32) {
	rootDepth := sub.Type.Depth
	deltas = make(map[string]*termDelta)
	nt = make(map[int]uint32)
	var rec func(n *xmltree.Node)
	rec = func(n *xmltree.Node) {
		nt[n.Type.ID]++
		terms := n.Terms()
		if len(terms) > 0 {
			ancestors := make([]*xmltree.Type, 0, n.Type.Depth+1)
			for t := n.Type; t != nil; t = t.Parent {
				ancestors = append(ancestors, t)
			}
			seen := make(map[string]bool, len(terms))
			for _, term := range terms {
				td := deltas[term]
				if td == nil {
					td = &termDelta{tf: make(map[int]uint32), df: make(map[int]uint32)}
					deltas[term] = td
					order = append(order, term)
				}
				for _, t := range ancestors {
					td.tf[t.ID]++
				}
				if seen[term] {
					continue
				}
				seen[term] = true
				shared := rootDepth
				if td.lastIn != nil {
					shared = dewey.LCALen(td.lastIn, n.ID)
				}
				for depth := shared; depth <= n.Type.Depth; depth++ {
					td.df[ancestors[len(ancestors)-1-depth].ID]++
				}
				td.lastIn = n.ID
				td.postings = append(td.postings, Posting{ID: n.ID, Type: n.Type})
			}
		}
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(sub)
	return deltas, order, nt
}

// subChain returns sub's ancestor-or-self types indexed by depth
// (subChain[d] is the depth-d ancestor type).
func subChain(sub *xmltree.Node) []*xmltree.Type {
	chain := make([]*xmltree.Type, sub.Type.Depth+1)
	for t := sub.Type; t != nil; t = t.Parent {
		chain[t.Depth] = t
	}
	return chain
}

// InsertSubtree folds a freshly grafted subtree into the derived index.
// sub must already be attached to the (new epoch's) document — its Dewey
// labels and interned types are read as-is.
func (m *Mutator) InsertSubtree(sub *xmltree.Node) error {
	ix := m.ix
	deltas, order, nt := walkSubtree(sub)
	for id, n := range nt {
		m.growType(id)
		ix.nt[id] += n
	}
	chain := subChain(sub)
	rootDepth := sub.Type.Depth
	for _, term := range order {
		td := deltas[term]
		e, err := m.touch(term)
		if err != nil {
			return err
		}
		old := e.list.Load()
		// tf first: it creates any missing rows (every df row below is
		// on some posting's ancestor-or-self chain, so tf covers it).
		for id, dtf := range td.tf {
			row, had := e.stats[id]
			if !had {
				m.growType(id)
				ix.gt[id]++
			}
			row.tf += dtf
			e.stats[id] = row
		}
		for id, ddf := range td.df {
			row := e.stats[id]
			row.df += ddf
			e.stats[id] = row
		}
		// Strict ancestors of the subtree root: a new containing root
		// only when the term did not occur under it before.
		for d := 0; d < rootDepth; d++ {
			if !old.HasInSubtree(sub.ID[:d+1]) {
				row := e.stats[chain[d].ID]
				row.df++
				e.stats[chain[d].ID] = row
			}
		}
		at := old.SeekGE(sub.ID)
		merged := make([]Posting, 0, old.Len()+len(td.postings))
		merged = append(merged, old.Slice(0, at)...)
		merged = append(merged, td.postings...)
		merged = append(merged, old.Slice(at, old.Len())...)
		// Checked constructor: document order is the invariant every
		// downstream algorithm relies on; fail the batch, not the query.
		e.list.Store(NewList(term, merged))
		e.listLen = uint32(len(merged))
	}
	if len(sub.ID) == 2 {
		ix.partRoot = append(ix.partRoot, sub.ID)
	}
	ix.NodeCount += xmltree.SubtreeSize(sub)
	return nil
}

// DeleteSubtree removes a subtree's contribution from the derived index.
// Call it while sub is still attached (or just detached with its labels
// intact) — the walk needs the subtree's structure and terms.
func (m *Mutator) DeleteSubtree(sub *xmltree.Node) error {
	ix := m.ix
	deltas, order, nt := walkSubtree(sub)
	for id, n := range nt {
		m.growType(id)
		if ix.nt[id] < n {
			return fmt.Errorf("index: delete of %s: N_T underflow for type %d", sub.ID, id)
		}
		ix.nt[id] -= n
	}
	chain := subChain(sub)
	rootDepth := sub.Type.Depth
	for _, term := range order {
		td := deltas[term]
		e, err := m.touch(term)
		if err != nil {
			return err
		}
		old := e.list.Load()
		lo, hi := old.InSubtree(sub.ID)
		if hi-lo != len(td.postings) {
			return fmt.Errorf("index: delete of %s: list for %q holds %d postings in subtree, document has %d",
				sub.ID, term, hi-lo, len(td.postings))
		}
		// All df adjustments happen before tf so a drained row reads
		// df==0 when its tf reaches zero.
		for id, ddf := range td.df {
			row, had := e.stats[id]
			if !had || row.df < ddf {
				return fmt.Errorf("index: delete of %s: df underflow for %q type %d", sub.ID, term, id)
			}
			row.df -= ddf
			e.stats[id] = row
		}
		for d := 0; d < rootDepth; d++ {
			alo, ahi := old.InSubtree(sub.ID[:d+1])
			if (ahi-alo)-(hi-lo) == 0 {
				row := e.stats[chain[d].ID]
				if row.df == 0 {
					return fmt.Errorf("index: delete of %s: ancestor df underflow for %q type %d", sub.ID, term, chain[d].ID)
				}
				row.df--
				e.stats[chain[d].ID] = row
			}
		}
		for id, dtf := range td.tf {
			row, had := e.stats[id]
			if !had || row.tf < dtf {
				return fmt.Errorf("index: delete of %s: tf underflow for %q type %d", sub.ID, term, id)
			}
			row.tf -= dtf
			if row.tf == 0 {
				if row.df != 0 {
					return fmt.Errorf("index: delete of %s: row (%q, type %d) drained tf with df=%d", sub.ID, term, id, row.df)
				}
				delete(e.stats, id)
				if ix.gt[id] == 0 {
					return fmt.Errorf("index: delete of %s: G_T underflow for type %d", sub.ID, id)
				}
				ix.gt[id]--
				continue
			}
			e.stats[id] = row
		}
		merged := make([]Posting, 0, old.Len()-(hi-lo))
		merged = append(merged, old.Slice(0, lo)...)
		merged = append(merged, old.Slice(hi, old.Len())...)
		if len(merged) == 0 {
			if len(e.stats) != 0 {
				return fmt.Errorf("index: delete of %s: %q lost its last posting but keeps %d stat rows", sub.ID, term, len(e.stats))
			}
			delete(ix.terms, term)
			delete(m.changed, term)
			delete(m.cloned, term)
			m.removed[term] = true
			continue
		}
		e.list.Store(NewList(term, merged))
		e.listLen = uint32(len(merged))
	}
	if len(sub.ID) == 2 {
		for i, p := range ix.partRoot {
			if dewey.Equal(p, sub.ID) {
				ix.partRoot = append(append([]dewey.ID(nil), ix.partRoot[:i]...), ix.partRoot[i+1:]...)
				break
			}
		}
	}
	ix.NodeCount -= xmltree.SubtreeSize(sub)
	return nil
}

// SaveDelta writes the derivation into the store: document-level metadata
// always (node counts and stats changed), removed terms' rows and chunks
// deleted, changed terms' rows and chunks rewritten. It does not commit —
// the caller batches it with the document rewrite and the epoch bump into
// one atomic commit.
func (m *Mutator) SaveDelta(s storage.Backend) error {
	ix := m.ix
	if n := ix.Types.Len(); n > 0 {
		m.growType(n - 1)
	}
	if err := s.Put([]byte(metaTypesKey), ix.Types.Marshal()); err != nil {
		return err
	}
	if err := putDocMeta(s, ix.encodeDocMeta()); err != nil {
		return err
	}
	for _, term := range m.Removed() {
		if _, err := s.Delete(freqKey(term)); err != nil {
			return err
		}
		if err := deleteChunks(s, term); err != nil {
			return err
		}
	}
	for _, term := range m.Changed() {
		e := ix.terms[term]
		l := e.list.Load()
		if err := deleteChunks(s, term); err != nil {
			return err
		}
		if err := s.Put(freqKey(term), encodeFreqRow(uint32(l.Len()), e.stats)); err != nil {
			return fmt.Errorf("index: save freq %q: %w", term, err)
		}
		if err := saveChunks(s, term, l); err != nil {
			return err
		}
	}
	return nil
}

// deleteChunks removes every persisted posting-list chunk of term.
func deleteChunks(s storage.Backend, term string) error {
	prefix := append([]byte(listPrefix), term...)
	prefix = append(prefix, 0)
	end := append(append([]byte(nil), prefix...), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF)
	_, err := s.DeleteRange(prefix, end)
	return err
}
