package index

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"xrefine/internal/dewey"
	"xrefine/internal/xmltree"
)

// assertIndexesEqual compares every observable of two indexes built over
// the same document.
func assertIndexesEqual(t *testing.T, a, b *Index, label string) {
	t.Helper()
	if a.NodeCount != b.NodeCount {
		t.Fatalf("%s: NodeCount %d vs %d", label, a.NodeCount, b.NodeCount)
	}
	va, vb := a.Vocabulary(), b.Vocabulary()
	if strings.Join(va, ",") != strings.Join(vb, ",") {
		t.Fatalf("%s: vocab %v vs %v", label, va, vb)
	}
	if a.Types.Len() != b.Types.Len() {
		t.Fatalf("%s: type count %d vs %d", label, a.Types.Len(), b.Types.Len())
	}
	for _, term := range va {
		la, err := a.List(term)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := b.List(term)
		if err != nil {
			t.Fatal(err)
		}
		if la.Len() != lb.Len() {
			t.Fatalf("%s: list %q len %d vs %d", label, term, la.Len(), lb.Len())
		}
		for i := 0; i < la.Len(); i++ {
			pa, pb := la.At(i), lb.At(i)
			if !dewey.Equal(pa.ID, pb.ID) || pa.Type.Path() != pb.Type.Path() {
				t.Fatalf("%s: list %q posting %d: %s/%s vs %s/%s",
					label, term, i, pa.ID, pa.Type, pb.ID, pb.Type)
			}
		}
		for _, ta := range a.Types.Types() {
			tb, ok := b.Types.ByPath(ta.Path())
			if !ok {
				t.Fatalf("%s: type %s missing", label, ta.Path())
			}
			if a.DF(term, ta) != b.DF(term, tb) {
				t.Fatalf("%s: DF(%q,%s) %d vs %d", label, term, ta.Path(), a.DF(term, ta), b.DF(term, tb))
			}
			if a.TF(term, ta) != b.TF(term, tb) {
				t.Fatalf("%s: TF(%q,%s) %d vs %d", label, term, ta.Path(), a.TF(term, ta), b.TF(term, tb))
			}
		}
	}
	for _, ta := range a.Types.Types() {
		tb, _ := b.Types.ByPath(ta.Path())
		if a.NT(ta) != b.NT(tb) || a.GT(ta) != b.GT(tb) {
			t.Fatalf("%s: NT/GT mismatch at %s", label, ta.Path())
		}
	}
	if len(a.PartitionRoots()) != len(b.PartitionRoots()) {
		t.Fatalf("%s: partitions %d vs %d", label, len(a.PartitionRoots()), len(b.PartitionRoots()))
	}
}

func TestBuildStreamEquivalentToBuild(t *testing.T) {
	docs := []string{
		`<bib><author><name>John Ben</name><paper year="2003"><title>xml database search</title></paper></author></bib>`,
		`<r>text before <a>inner a</a> text between <b>inner b</b> text after</r>`,
		`<r><a>shared shared</a><b>shared</b></r>`,
		`<title>title words in a title tag</title>`, // tag term also in text
		`<r><p><p><p>deep nesting terms</p></p></p></r>`,
	}
	for i, src := range docs {
		doc, err := xmltree.ParseString(src, nil)
		if err != nil {
			t.Fatal(err)
		}
		fromTree := Build(doc)
		fromStream, err := BuildStream(strings.NewReader(src), nil)
		if err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
		assertIndexesEqual(t, fromTree, fromStream, fmt.Sprintf("doc %d", i))
	}
}

func TestBuildStreamPropertyEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(808))
	words := []string{"xml", "db", "search", "tree", "query"}
	for trial := 0; trial < 30; trial++ {
		var b strings.Builder
		b.WriteString("<root>")
		for a := 0; a < 1+r.Intn(4); a++ {
			b.WriteString("<item>")
			for p := 0; p < r.Intn(4); p++ {
				fmt.Fprintf(&b, `<paper year="%d"><title>`, 2000+r.Intn(5))
				for w := 0; w < 1+r.Intn(4); w++ {
					b.WriteString(words[r.Intn(len(words))] + " ")
				}
				b.WriteString("</title></paper>")
			}
			b.WriteString("</item>")
		}
		b.WriteString("</root>")
		src := b.String()
		doc, err := xmltree.ParseString(src, nil)
		if err != nil {
			t.Fatal(err)
		}
		fromTree := Build(doc)
		fromStream, err := BuildStream(strings.NewReader(src), nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		assertIndexesEqual(t, fromTree, fromStream, fmt.Sprintf("trial %d", trial))
	}
}

func TestBuildStreamErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"<a><b></a>",
		"<a></a><b></b>",
		"plain text",
	} {
		if _, err := BuildStream(strings.NewReader(src), nil); err == nil {
			t.Errorf("BuildStream(%q) succeeded", src)
		}
	}
	deep := strings.Repeat("<a>", 30) + strings.Repeat("</a>", 30)
	if _, err := BuildStream(strings.NewReader(deep), &xmltree.Options{MaxDepth: 10}); err == nil {
		t.Error("depth guard ignored")
	}
}

func TestBuildStreamAttributesOption(t *testing.T) {
	src := `<r><p year="2003">text</p></r>`
	withAttrs, err := BuildStream(strings.NewReader(src), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !withAttrs.HasTerm("2003") {
		t.Error("attribute value not indexed by default")
	}
	without, err := BuildStream(strings.NewReader(src), &xmltree.Options{AttributesAsNodes: false})
	if err != nil {
		t.Fatal(err)
	}
	if without.HasTerm("2003") {
		t.Error("attribute indexed despite option off")
	}
}

func BenchmarkBuildStream(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<root>")
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&sb, "<e><t>alpha beta gamma %d</t></e>", i)
	}
	sb.WriteString("</root>")
	src := sb.String()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BuildStream(strings.NewReader(src), nil); err != nil {
			b.Fatal(err)
		}
	}
}
