package index

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"xrefine/internal/dewey"
	"xrefine/internal/xmltree"
)

// This file is the succinct posting-list codec: postings are grouped into
// fixed-size blocks whose Dewey IDs are stored as shared-prefix-length +
// varint-delta components and whose node types are interned per-list
// ordinals, with a skip entry (first ID, byte offset, count) per block so
// seeks binary-search the skip table and decode only the blocks they
// touch. The encoded form is also the persisted form (persist.go writes
// the byte stream straight into kvstore chunks), so disk and RAM shrink
// together. Consecutive Dewey labels in a document-ordered list share
// long prefixes, which is where the compression comes from — the idea of
// running the paper's algorithms directly over a compressed structure
// follows Böttcher et al.'s DAG-compression line of work.
//
// Layout of one encoded list (listCore.enc):
//
//	block*     where block := [uvarint count][uvarint payloadLen][payload]
//	payload    := posting*
//	posting    := [uvarint shared][uvarint extra][extra × uvarint comp][uvarint typeOrd]
//
// The first posting of every block has shared == 0 (a full ID), making
// blocks self-contained; within a block, shared is the common-prefix
// length with the previous posting. typeOrd indexes the list's private
// type table (listCore.types) — interning keeps the ordinal a one-byte
// varint for virtually every list.
const blockMaxPostings = 128

// blockRef is one skip-table entry: enough to find a block, know what it
// covers, and binary-search over blocks without decoding any of them.
type blockRef struct {
	first dewey.ID // first posting's full ID (owned copy)
	off   uint32   // byte offset of the block header in enc
	start uint32   // global index of the block's first posting
	n     uint32   // postings in the block
}

// listCore is the shared, immutable backbone of a List and all its
// Sub/View windows: the encoded bytes, the skip table, and the per-list
// type table. It carries no decode state — caching and scratch live on
// the views and cursors that read it — so it is trivially safe for any
// number of concurrent readers.
type listCore struct {
	enc   []byte
	skip  []blockRef
	n     int
	types []*xmltree.Type // type ordinal -> interned node type

	// pinned, when set, holds the fully-materialized postings. It exists
	// for the xbench compress experiment's "legacy" mode (measure the
	// pre-codec representation) and for tests; production lists never
	// pin.
	pinned atomic.Pointer[[]Posting]
}

// decodedBlock is one lazily-decoded block published through a view's
// one-slot cache. It is immutable after construction, so a stale pointer
// held by a caller (e.g. a Posting.ID returned by At) stays valid
// forever — the GC, not the cache, owns its lifetime.
type decodedBlock struct {
	start, end int // global posting index range [start, end)
	posts      []Posting
}

// Package-level codec counters, bridged into the metrics registry by the
// serving layer (internal/core) as the xrefine_index_block_* families.
// They are package-global rather than per-index so the codec stays free
// of plumbing; per-index residency is exposed via Index.ResidentBytes.
var (
	blockDecodes         atomic.Uint64
	blockDecodedPostings atomic.Uint64
	cursorScratchGets    atomic.Uint64
	cursorScratchNews    atomic.Uint64
)

// BlockOpStats is a snapshot of the package-level codec counters.
type BlockOpStats struct {
	// Decodes counts block decode operations (cache/scratch misses).
	Decodes uint64
	// DecodedPostings counts postings materialized by those decodes.
	DecodedPostings uint64
	// CursorScratchGets counts cursor scratch-buffer acquisitions.
	CursorScratchGets uint64
	// CursorScratchNews counts pool misses that allocated fresh scratch.
	CursorScratchNews uint64
}

// BlockStats returns the current codec counter snapshot.
func BlockStats() BlockOpStats {
	return BlockOpStats{
		Decodes:           blockDecodes.Load(),
		DecodedPostings:   blockDecodedPostings.Load(),
		CursorScratchGets: cursorScratchGets.Load(),
		CursorScratchNews: cursorScratchNews.Load(),
	}
}

// blockWriter encodes postings appended in document order into a
// listCore. It is the single encoder behind NewList, the lazy chunk
// loader, the shard k-way merge and the mutator's copy-on-write clones.
type blockWriter struct {
	term       string
	checkOrder bool

	enc   []byte
	skip  []blockRef
	types []*xmltree.Type
	ord   map[*xmltree.Type]int
	n     int

	prev       dewey.ID // last appended ID (reused buffer)
	blockBuf   []byte   // staged payload of the open block
	blockN     int
	blockFirst dewey.ID // first ID of the open block (reused buffer)
}

func newBlockWriter(term string, checkOrder bool) *blockWriter {
	return &blockWriter{term: term, checkOrder: checkOrder}
}

// Append encodes one posting. IDs must arrive in strictly increasing
// document order when order checking is on; the bytes of id are copied,
// so callers may reuse the backing array (cursor scratch included).
func (w *blockWriter) Append(id dewey.ID, t *xmltree.Type) error {
	if len(id) == 0 {
		return fmt.Errorf("index: encode %q: empty dewey ID", w.term)
	}
	if t == nil {
		return fmt.Errorf("index: encode %q: posting without a type", w.term)
	}
	shared := 0
	if w.n > 0 {
		shared = dewey.LCALen(w.prev, id)
		if w.checkOrder {
			// prev < id iff prev is a strict prefix, or they diverge
			// with prev's component smaller.
			if shared == len(id) || (shared < len(w.prev) && w.prev[shared] > id[shared]) {
				return fmt.Errorf("index: postings out of document order for %s", w.term)
			}
		}
	}
	if w.blockN == blockMaxPostings {
		w.flushBlock()
	}
	if w.blockN == 0 {
		shared = 0
		w.blockFirst = append(w.blockFirst[:0], id...)
	}
	w.blockBuf = binary.AppendUvarint(w.blockBuf, uint64(shared))
	w.blockBuf = binary.AppendUvarint(w.blockBuf, uint64(len(id)-shared))
	for _, c := range id[shared:] {
		w.blockBuf = binary.AppendUvarint(w.blockBuf, uint64(c))
	}
	ord, ok := w.ord[t]
	if !ok {
		if w.ord == nil {
			w.ord = make(map[*xmltree.Type]int, 8)
		}
		ord = len(w.types)
		w.types = append(w.types, t)
		w.ord[t] = ord
	}
	w.blockBuf = binary.AppendUvarint(w.blockBuf, uint64(ord))
	w.prev = append(w.prev[:0], id...)
	w.blockN++
	w.n++
	return nil
}

func (w *blockWriter) flushBlock() {
	if w.blockN == 0 {
		return
	}
	w.skip = append(w.skip, blockRef{
		first: w.blockFirst.Clone(),
		off:   uint32(len(w.enc)),
		start: uint32(w.n - w.blockN),
		n:     uint32(w.blockN),
	})
	w.enc = binary.AppendUvarint(w.enc, uint64(w.blockN))
	w.enc = binary.AppendUvarint(w.enc, uint64(len(w.blockBuf)))
	w.enc = append(w.enc, w.blockBuf...)
	w.blockBuf = w.blockBuf[:0]
	w.blockN = 0
}

// Finish seals the open block and returns the completed core.
func (w *blockWriter) Finish() *listCore {
	w.flushBlock()
	return &listCore{enc: w.enc, skip: w.skip, n: w.n, types: w.types}
}

// findBlock returns the index of the block containing global posting g.
func (c *listCore) findBlock(g int) int {
	return sort.Search(len(c.skip), func(b int) bool {
		return int(c.skip[b].start) > g
	}) - 1
}

// decodeBlockInto decodes block b, reusing posts/comps as scratch, and
// returns the filled slices (reallocated when too small). Every
// posts[i].ID points into the returned comps arena — valid only until
// the scratch is reused.
func (c *listCore) decodeBlockInto(b int, posts []Posting, comps []uint32) ([]Posting, []uint32, error) {
	ref := c.skip[b]
	buf := c.enc[ref.off:]
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return posts, comps, fmt.Errorf("index: block %d: bad count header", b)
	}
	buf = buf[sz:]
	payloadLen, sz := binary.Uvarint(buf)
	if sz <= 0 || int(payloadLen) > len(buf[sz:]) {
		return posts, comps, fmt.Errorf("index: block %d: bad length header", b)
	}
	buf = buf[sz : sz+int(payloadLen)]
	posts = posts[:0]
	comps = comps[:0]
	// spans[i] is the comps offset where posting i's ID starts; IDs are
	// fixed up after the parse because comps may reallocate while
	// growing.
	var spanArr [blockMaxPostings + 1]uint32
	spans := spanArr[:0]
	prevStart, prevLen := 0, 0
	for i := 0; i < int(n); i++ {
		shared, extra, rest, err := readPostingHeader(buf)
		if err != nil {
			return posts, comps, fmt.Errorf("index: block %d posting %d: %w", b, i, err)
		}
		buf = rest
		if shared > prevLen {
			return posts, comps, fmt.Errorf("index: block %d posting %d: shared %d > prev %d", b, i, shared, prevLen)
		}
		base := len(comps)
		comps = append(comps, comps[prevStart:prevStart+shared]...)
		for j := 0; j < extra; j++ {
			v, sz := binary.Uvarint(buf)
			if sz <= 0 {
				return posts, comps, fmt.Errorf("index: block %d posting %d: truncated component", b, i)
			}
			buf = buf[sz:]
			comps = append(comps, uint32(v))
		}
		ord, sz := binary.Uvarint(buf)
		if sz <= 0 {
			return posts, comps, fmt.Errorf("index: block %d posting %d: truncated type", b, i)
		}
		buf = buf[sz:]
		if int(ord) >= len(c.types) {
			return posts, comps, fmt.Errorf("index: block %d posting %d: type ordinal %d out of range", b, i, ord)
		}
		if i < len(spanArr) {
			spans = append(spans, uint32(base))
		}
		posts = append(posts, Posting{Type: c.types[ord]})
		prevStart, prevLen = base, shared+extra
	}
	spans = append(spans, uint32(len(comps)))
	if len(posts)+1 != len(spans) {
		return posts, comps, fmt.Errorf("index: block %d: count %d exceeds block capacity", b, n)
	}
	for i := range posts {
		posts[i].ID = dewey.ID(comps[spans[i]:spans[i+1]:spans[i+1]])
	}
	blockDecodes.Add(1)
	blockDecodedPostings.Add(uint64(n))
	return posts, comps, nil
}

func readPostingHeader(buf []byte) (shared, extra int, rest []byte, err error) {
	s, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return 0, 0, buf, fmt.Errorf("truncated shared length")
	}
	buf = buf[sz:]
	e, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return 0, 0, buf, fmt.Errorf("truncated extra length")
	}
	return int(s), int(e), buf[sz:], nil
}

// decodeBlock decodes block b into a freshly allocated immutable
// decodedBlock, suitable for publishing through a view cache. Decode
// errors panic: the encoder produced these bytes in-process (the load
// path validates block framing before accepting a store's bytes), so a
// failure here is a programming bug, not bad input.
func (c *listCore) decodeBlock(b int) *decodedBlock {
	posts, _, err := c.decodeBlockInto(b, nil, nil)
	if err != nil {
		panic(err)
	}
	start := int(c.skip[b].start)
	return &decodedBlock{start: start, end: start + len(posts), posts: posts}
}

// memoryBytes is the resident cost of the core: encoded payload, skip
// table (entry struct plus its first-ID copy), and the type table.
func (c *listCore) memoryBytes() int {
	if c == nil {
		return 0
	}
	n := len(c.enc)
	for _, ref := range c.skip {
		n += 48 + 4*len(ref.first) // struct + slice header + components
	}
	n += 8 * len(c.types)
	return n
}

// legacyBytes estimates what the pre-codec representation of the same
// list costs resident: a []Posting backing array (32 bytes per entry:
// 24-byte ID slice header + 8-byte type pointer) plus one size-class
// rounded heap allocation per Dewey ID. It is the "before" column of the
// xbench compress experiment and the xstat -blocks report.
func (c *listCore) legacyBytes() int {
	if c == nil {
		return 0
	}
	total := 32 * c.n
	for b := range c.skip {
		ref := c.skip[b]
		buf := c.enc[ref.off:]
		_, sz := binary.Uvarint(buf)
		buf = buf[sz:]
		_, sz = binary.Uvarint(buf)
		buf = buf[sz:]
		prevLen := 0
		for i := 0; i < int(ref.n); i++ {
			shared, extra, rest, err := readPostingHeader(buf)
			if err != nil {
				return total
			}
			buf = rest
			for j := 0; j < extra; j++ {
				_, sz := binary.Uvarint(buf)
				buf = buf[sz:]
			}
			_, sz := binary.Uvarint(buf) // type ordinal
			buf = buf[sz:]
			prevLen = shared + extra
			total += mallocSize(4 * prevLen)
		}
	}
	return total
}

// mallocSize rounds a byte count up to the Go allocator's size class —
// close enough for the small allocations Dewey IDs make.
func mallocSize(n int) int {
	switch {
	case n == 0:
		return 0
	case n <= 8:
		return 8
	case n <= 16:
		return 16
	case n <= 32:
		return ((n + 7) / 8) * 8
	case n <= 128:
		return ((n + 15) / 16) * 16
	case n <= 512:
		return ((n + 63) / 64) * 64
	default:
		return ((n + 511) / 512) * 512
	}
}

// parseCore rebuilds a listCore from an encoded byte stream and its type
// table — the kvstore load path. It walks the block headers to rebuild
// the skip table, validating framing (counts, lengths, self-contained and
// strictly increasing block firsts) without decoding payloads; payload
// integrity is already covered by the store's CRC page framing, so a
// decode failure past this point is a programming bug, not bad input.
func parseCore(enc []byte, types []*xmltree.Type) (*listCore, error) {
	core := &listCore{enc: enc, types: types}
	off := 0
	var prevFirst dewey.ID
	for off < len(enc) {
		buf := enc[off:]
		n, sz := binary.Uvarint(buf)
		if sz <= 0 || n == 0 || n > blockMaxPostings {
			return nil, fmt.Errorf("index: parse block %d: bad posting count", len(core.skip))
		}
		hdr := sz
		payloadLen, sz := binary.Uvarint(buf[hdr:])
		if sz <= 0 {
			return nil, fmt.Errorf("index: parse block %d: bad payload length", len(core.skip))
		}
		hdr += sz
		if int(payloadLen) > len(buf)-hdr {
			return nil, fmt.Errorf("index: parse block %d: truncated payload", len(core.skip))
		}
		payload := buf[hdr : hdr+int(payloadLen)]
		shared, extra, rest, err := readPostingHeader(payload)
		if err != nil {
			return nil, fmt.Errorf("index: parse block %d: %w", len(core.skip), err)
		}
		if shared != 0 || extra == 0 {
			return nil, fmt.Errorf("index: parse block %d: first posting not self-contained", len(core.skip))
		}
		first := make(dewey.ID, 0, extra)
		for j := 0; j < extra; j++ {
			v, sz := binary.Uvarint(rest)
			if sz <= 0 {
				return nil, fmt.Errorf("index: parse block %d: truncated first ID", len(core.skip))
			}
			rest = rest[sz:]
			first = append(first, uint32(v))
		}
		if prevFirst != nil && dewey.Compare(prevFirst, first) >= 0 {
			return nil, fmt.Errorf("index: parse block %d: block firsts out of document order", len(core.skip))
		}
		core.skip = append(core.skip, blockRef{
			first: first,
			off:   uint32(off),
			start: uint32(core.n),
			n:     uint32(n),
		})
		core.n += int(n)
		prevFirst = first
		off += hdr + int(payloadLen)
	}
	return core, nil
}

// blockScratch is the reusable decode buffer behind a Cursor: the
// materialized postings of one block and the component arena their IDs
// point into. Buffers are pooled; a scratch must never be read after its
// cursor is closed (the -race aliasing stress test enforces the
// discipline).
type blockScratch struct {
	posts []Posting
	comps []uint32
}

var scratchPool = sync.Pool{New: func() any {
	cursorScratchNews.Add(1)
	return &blockScratch{
		posts: make([]Posting, 0, blockMaxPostings),
		comps: make([]uint32, 0, 1024),
	}
}}

// Cursor iterates a List (or window) in document order, decoding one
// block at a time into a pooled scratch buffer. It is the zero-garbage
// access path for the scan loops (the partition walker, the SLCA merge
// scans, the shard list merge).
//
// Sharing contract: a Cursor is single-goroutine. A Posting (and its ID)
// returned by the cursor is valid only until the cursor moves to a
// different block or is closed — callers that retain an ID across those
// events must Clone it. Reads through List.At are unaffected (they go
// through immutable cached blocks).
type Cursor struct {
	l       *List
	scratch *blockScratch
	blk     int // decoded block index, -1 when none
	bStart  int // global range of the decoded block
	bEnd    int
	g       int // current global position; l.hi when exhausted
}

// NewCursor returns a cursor positioned at the first posting of l. Close
// it when done to recycle its decode buffer.
func (l *List) NewCursor() *Cursor {
	cursorScratchGets.Add(1)
	return &Cursor{
		l:       l,
		scratch: scratchPool.Get().(*blockScratch),
		blk:     -1,
		g:       l.winLo(),
	}
}

// Close recycles the cursor's scratch buffer. The cursor (and any
// posting it returned) must not be used afterwards.
func (c *Cursor) Close() {
	if c.scratch != nil {
		scratchPool.Put(c.scratch)
		c.scratch = nil
	}
	c.blk = -1
	c.bStart, c.bEnd = 0, 0
}

// Pos returns the cursor's position as a window-relative index.
func (c *Cursor) Pos() int { return c.g - c.l.winLo() }

// Valid reports whether the cursor is on a posting (not exhausted).
func (c *Cursor) Valid() bool { return c.g < c.l.winHi() }

// Next advances to the following posting.
func (c *Cursor) Next() { c.g++ }

// Seek positions the cursor at window-relative index i.
func (c *Cursor) Seek(i int) { c.g = c.l.winLo() + i }

// Posting returns the posting under the cursor, decoding its block into
// the cursor's scratch if needed. See the sharing contract on Cursor.
func (c *Cursor) Posting() Posting {
	core := c.l.core
	if p := core.pinned.Load(); p != nil {
		return (*p)[c.g]
	}
	if c.g < c.bStart || c.g >= c.bEnd {
		c.decode(core.findBlock(c.g))
	}
	return c.scratch.posts[c.g-c.bStart]
}

// ID returns the Dewey ID under the cursor (same contract as Posting).
func (c *Cursor) ID() dewey.ID { return c.Posting().ID }

func (c *Cursor) decode(b int) {
	core := c.l.core
	posts, comps, err := core.decodeBlockInto(b, c.scratch.posts, c.scratch.comps)
	c.scratch.posts, c.scratch.comps = posts, comps
	if err != nil {
		panic(err)
	}
	c.blk = b
	c.bStart = int(core.skip[b].start)
	c.bEnd = c.bStart + len(posts)
}

// SeekGE advances the cursor to the first posting with ID >= d at or
// after its current position and returns the new window-relative
// position (Len() when exhausted). Backward targets leave the cursor
// where it is — the partition walk only ever moves forward.
func (c *Cursor) SeekGE(d dewey.ID) int {
	core := c.l.core
	if core == nil {
		// Empty list (unindexed term): nothing to seek over.
		return c.Pos()
	}
	hi := c.l.winHi()
	if p := core.pinned.Load(); p != nil {
		s := *p
		c.g += sort.Search(hi-c.g, func(i int) bool {
			return dewey.Compare(s[c.g+i].ID, d) >= 0
		})
		return c.Pos()
	}
	// Fast path: the target lies inside the already-decoded block.
	if c.g >= c.bStart && c.g < c.bEnd {
		posts := c.scratch.posts
		rel := c.g - c.bStart
		if last := posts[len(posts)-1].ID; dewey.Compare(last, d) >= 0 {
			k := rel + sort.Search(len(posts)-rel, func(i int) bool {
				return dewey.Compare(posts[rel+i].ID, d) >= 0
			})
			c.g = c.bStart + k
			if c.g > hi {
				c.g = hi
			}
			return c.Pos()
		}
		// Target is past this block; fall through to the skip search.
		c.g = c.bEnd
	}
	if c.g >= hi {
		c.g = hi
		return c.Pos()
	}
	// Skip-table search over the blocks at or after the cursor.
	b0 := core.findBlock(c.g)
	j := b0 + sort.Search(len(core.skip)-b0, func(b int) bool {
		return dewey.Compare(core.skip[b0+b].first, d) >= 0
	})
	if j > b0 {
		b := j - 1
		c.decode(b)
		posts := c.scratch.posts
		rel := 0
		if c.g > c.bStart {
			rel = c.g - c.bStart
		}
		k := rel + sort.Search(len(posts)-rel, func(i int) bool {
			return dewey.Compare(posts[rel+i].ID, d) >= 0
		})
		c.g = c.bStart + k
	}
	// j == b0 means block b0's first ID is already >= d, so the posting
	// under the cursor (>= that first ID) satisfies too: stay put.
	if c.g > hi {
		c.g = hi
	}
	return c.Pos()
}
