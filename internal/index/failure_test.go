package index

import (
	"strings"
	"testing"

	"xrefine/internal/kvstore"
	"xrefine/internal/xmltree"
)

// Failure injection: every class of on-disk corruption must surface as an
// error from Load or from the first lazy List call — never a panic, never
// silent bad data.

func savedStore(t *testing.T) (*kvstore.Store, *Index) {
	t.Helper()
	doc, err := xmltree.ParseString(`
<bib>
  <author><name>john</name><paper><title>xml database search</title></paper></author>
  <author><name>mary</name><paper><title>keyword query</title></paper></author>
</bib>`, nil)
	if err != nil {
		t.Fatal(err)
	}
	ix := Build(doc)
	s := kvstore.NewMem()
	if err := ix.Save(s); err != nil {
		t.Fatal(err)
	}
	return s, ix
}

func TestLoadCorruptRegistry(t *testing.T) {
	s, _ := savedStore(t)
	defer s.Close()
	// Orphan child path: parent listed after child.
	if err := s.Put([]byte(metaTypesKey), []byte("a/b\na\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(s); err == nil {
		t.Error("corrupt registry loaded without error")
	}
}

func TestLoadCorruptDocMeta(t *testing.T) {
	s, _ := savedStore(t)
	defer s.Close()
	if err := s.Put([]byte(metaDocKey), []byte{0xFF}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(s); err == nil {
		t.Error("corrupt doc meta loaded without error")
	}
	// Type-count mismatch is also rejected.
	if err := s.Put([]byte(metaDocKey), []byte{10, 99}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(s); err == nil {
		t.Error("type-count mismatch loaded without error")
	}
}

func TestLoadCorruptFreqRow(t *testing.T) {
	s, _ := savedStore(t)
	defer s.Close()
	if err := s.Put(freqKey("xml"), []byte{0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(s); err == nil {
		t.Error("corrupt frequency row loaded without error")
	}
}

func TestLazyListCorruptChunk(t *testing.T) {
	s, _ := savedStore(t)
	defer s.Close()
	// Chunk with an impossible shared-prefix length.
	if err := s.Put(listChunkKey("xml", 0), []byte{50, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	ix, err := Load(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.List("xml"); err == nil {
		t.Error("corrupt chunk decoded without error")
	}
	// Unknown type ID in a chunk.
	if err := s.Put(listChunkKey("database", 0), []byte{0, 1, 0, 200}); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.List("database"); err == nil {
		t.Error("unknown type ID decoded without error")
	}
	// Truncated varint stream.
	if err := s.Put(listChunkKey("search", 0), []byte{0x80}); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.List("search"); err == nil {
		t.Error("truncated chunk decoded without error")
	}
	// Other terms stay readable.
	if l, err := ix.List("keyword"); err != nil || l.Len() == 0 {
		t.Errorf("healthy term affected: %v %d", err, l.Len())
	}
}

func TestLazyListOutOfOrderChunk(t *testing.T) {
	s, _ := savedStore(t)
	defer s.Close()
	ix, err := Load(s)
	if err != nil {
		t.Fatal(err)
	}
	// A chunk whose second posting repeats the first (shared = full
	// length, zero new components): out of document order, must error.
	chunk := []byte{
		0, 2, 1, 2, 0, // posting 1.2, type 0
		2, 0, 0, // shared=2, extra=0 -> identical id, type 0
	}
	if err := s.Put(listChunkKey("query", 0), chunk); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.List("query"); err == nil {
		t.Error("out-of-order chunk decoded without error")
	}
}

func TestSaveIntoReadOnlyStore(t *testing.T) {
	_, ix := savedStore(t)
	dir := t.TempDir()
	path := dir + "/ro.kv"
	w, err := kvstore.Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Put([]byte("x"), []byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	ro, err := kvstore.Open(path, &kvstore.Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if err := ix.Save(ro); err == nil {
		t.Error("Save into read-only store succeeded")
	}
}

func TestLoadFromEmptyAndForeignStores(t *testing.T) {
	empty := kvstore.NewMem()
	defer empty.Close()
	if _, err := Load(empty); err == nil || !strings.Contains(err.Error(), "registry") {
		t.Errorf("empty store: %v", err)
	}
	foreign := kvstore.NewMem()
	defer foreign.Close()
	if err := foreign.Put([]byte("unrelated"), []byte("data")); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(foreign); err == nil {
		t.Error("foreign store loaded as index")
	}
}
