package index

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"xrefine/internal/dewey"
	"xrefine/internal/storage"
	"xrefine/internal/xmltree"
)

// On-disk layout inside the kvstore (all keys are byte strings; '\x00'
// separates components so terms cannot collide with structure):
//
//	M\x00types                  node-type registry
//	M\x00doc                    document-level stats (N_T, G_T, partitions)
//	F\x00<term>                 frequent-table row: list length + per-type df/tf
//	L\x00<term>\x00<chunk BE32> posting-list chunk (see below)
//
// A term's chunks, concatenated in key order (which is chunk order), form
// one byte stream: [uvarint typeCount][typeCount × uvarint global type ID]
// followed by the list's block-encoded payload exactly as it lives in RAM
// (block.go) — the encoded form IS the persisted form, so loading a list
// is a concatenation plus a skip-table walk, never a re-encode, and disk
// shrinks with memory. Chunk boundaries are arbitrary byte splits sized to
// the store's quarter-page cell bound; blocks need not align with chunks.
//
// Stores written before the block codec used one delta-encoded posting
// per cell with each chunk self-contained, so their first payload byte is
// always 0x00 (first cell's shared-prefix length). The new stream starts
// with the type count, a uvarint >= 1 for any non-empty list, so the
// first byte distinguishes the formats per term: legacy terms load via
// the decode-and-re-encode fallback and upgrade in place the next time a
// mutation batch rewrites them (SaveDelta always writes the new format).
// FormatVersion names the current on-disk posting format: "2" is the
// block-encoded stream described above; stores written before the block
// codec (one delta-encoded posting per cell) are format "1" and are read
// through the per-term fallback. Exported so the serving layer can label
// xrefine_build_info with the format it writes.
const FormatVersion = "2"

const (
	metaTypesKey = "M\x00types"
	metaDocKey   = "M\x00doc"
	// metaDocExtPrefix keys continuation chunks of the doc metadata when
	// it outgrows a single cell (many types, or a fragmented partition
	// set after live updates). Legacy stores have no continuation keys.
	metaDocExtPrefix = "M\x00doc\x00"
	freqPrefix       = "F\x00"
	listPrefix       = "L\x00"
)

// chunkBudget caps encoded chunk payloads comfortably under the B+tree backend's
// quarter-page cell limit for the default page size.
const chunkBudget = 768

// Save writes the whole index into the store and commits. Posting lists of
// a lazily-loaded index are forced resident first.
func (ix *Index) Save(s storage.Backend) error {
	if err := s.Put([]byte(metaTypesKey), ix.Types.Marshal()); err != nil {
		return err
	}
	if err := putDocMeta(s, ix.encodeDocMeta()); err != nil {
		return err
	}
	for _, term := range ix.Vocabulary() {
		l, err := ix.List(term)
		if err != nil {
			return err
		}
		e := ix.terms[term]
		row := encodeFreqRow(uint32(l.Len()), e.stats)
		if err := s.Put(freqKey(term), row); err != nil {
			return fmt.Errorf("index: save freq %q: %w", term, err)
		}
		if err := saveChunks(s, term, l); err != nil {
			return err
		}
	}
	return s.Commit()
}

func freqKey(term string) []byte { return append([]byte(freqPrefix), term...) }

func listChunkKey(term string, chunk uint32) []byte {
	k := append([]byte(listPrefix), term...)
	k = append(k, 0)
	var be [4]byte
	binary.BigEndian.PutUint32(be[:], chunk)
	return append(k, be[:]...)
}

func (ix *Index) encodeDocMeta() []byte {
	var b []byte
	b = binary.AppendUvarint(b, uint64(ix.NodeCount))
	b = binary.AppendUvarint(b, uint64(len(ix.nt)))
	for _, v := range ix.nt {
		b = binary.AppendUvarint(b, uint64(v))
	}
	for _, v := range ix.gt {
		b = binary.AppendUvarint(b, uint64(v))
	}
	// Partition roots carry explicit ordinals: live updates delete and
	// append partitions without relabeling, so the roots are no longer
	// guaranteed to be the contiguous 0.0 .. 0.(F-1). Ordinals ascend in
	// document order, so they run-length encode well — a never-mutated
	// document is a single (0, F) run.
	b = binary.AppendUvarint(b, uint64(len(ix.partRoot)))
	type run struct{ start, n uint32 }
	var runs []run
	for _, p := range ix.partRoot {
		ord := p[len(p)-1]
		if len(runs) > 0 && runs[len(runs)-1].start+runs[len(runs)-1].n == ord {
			runs[len(runs)-1].n++
			continue
		}
		runs = append(runs, run{start: ord, n: 1})
	}
	b = binary.AppendUvarint(b, uint64(len(runs)))
	for _, r := range runs {
		b = binary.AppendUvarint(b, uint64(r.start))
		b = binary.AppendUvarint(b, uint64(r.n))
	}
	return b
}

// decodeDocMeta fills the document-level statistics from their encoded
// form. idMap, when non-nil, translates the store's persisted type IDs
// into the IDs of a shared registry (see LoadInto); nil means the registry
// is the store's own and IDs match positionally.
func decodeDocMeta(ix *Index, b []byte, idMap []*xmltree.Type) error {
	r := bytes.NewReader(b)
	nodeCount, err := binary.ReadUvarint(r)
	if err != nil {
		return fmt.Errorf("index: doc meta: %w", err)
	}
	ix.NodeCount = int(nodeCount)
	nTypes, err := binary.ReadUvarint(r)
	if err != nil {
		return err
	}
	if idMap == nil {
		if int(nTypes) != ix.Types.Len() {
			return fmt.Errorf("index: doc meta lists %d types, registry has %d", nTypes, ix.Types.Len())
		}
	} else if int(nTypes) != len(idMap) {
		return fmt.Errorf("index: doc meta lists %d types, store registry has %d", nTypes, len(idMap))
	}
	remap := func(i int) int {
		if idMap == nil {
			return i
		}
		return idMap[i].ID
	}
	ix.nt = make([]uint32, ix.Types.Len())
	ix.gt = make([]uint32, ix.Types.Len())
	for i := 0; i < int(nTypes); i++ {
		v, err := binary.ReadUvarint(r)
		if err != nil {
			return err
		}
		ix.nt[remap(i)] = uint32(v)
	}
	for i := 0; i < int(nTypes); i++ {
		v, err := binary.ReadUvarint(r)
		if err != nil {
			return err
		}
		ix.gt[remap(i)] = uint32(v)
	}
	nParts, err := binary.ReadUvarint(r)
	if err != nil {
		return err
	}
	if r.Len() == 0 {
		// Legacy stream: no explicit ordinals, partitions are 0.0..0.(F-1).
		for i := uint64(0); i < nParts; i++ {
			ix.partRoot = append(ix.partRoot, dewey.Root().Child(uint32(i)))
		}
		return nil
	}
	nRuns, err := binary.ReadUvarint(r)
	if err != nil {
		return err
	}
	for i := uint64(0); i < nRuns; i++ {
		start, err := binary.ReadUvarint(r)
		if err != nil {
			return err
		}
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return err
		}
		for j := uint64(0); j < n; j++ {
			ix.partRoot = append(ix.partRoot, dewey.Root().Child(uint32(start+j)))
		}
	}
	if uint64(len(ix.partRoot)) != nParts {
		return fmt.Errorf("index: doc meta runs cover %d partitions, header says %d", len(ix.partRoot), nParts)
	}
	return nil
}

// putDocMeta writes the doc metadata, spilling into continuation chunks
// when it exceeds a single cell. Stale continuation chunks are cleared
// first (the metadata shrinks when partition runs re-coalesce).
func putDocMeta(s storage.Backend, b []byte) error {
	lo := []byte(metaDocExtPrefix)
	hi := append(append([]byte(nil), lo...), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF)
	if _, err := s.DeleteRange(lo, hi); err != nil {
		return err
	}
	budget := s.MaxKV() - 16
	end := len(b)
	if end > budget {
		end = budget
	}
	if err := s.Put([]byte(metaDocKey), b[:end]); err != nil {
		return err
	}
	seq := uint32(0)
	for off := end; off < len(b); {
		end := off + budget
		if end > len(b) {
			end = len(b)
		}
		if err := s.Put(docMetaExtKey(seq), b[off:end]); err != nil {
			return err
		}
		off = end
		seq++
	}
	return nil
}

func docMetaExtKey(seq uint32) []byte {
	k := []byte(metaDocExtPrefix)
	var be [4]byte
	binary.BigEndian.PutUint32(be[:], seq)
	return append(k, be[:]...)
}

// getDocMeta reads the doc metadata, concatenating continuation chunks.
func getDocMeta(s storage.Backend) ([]byte, bool, error) {
	b, ok, err := s.Get([]byte(metaDocKey))
	if err != nil || !ok {
		return nil, ok, err
	}
	lo := []byte(metaDocExtPrefix)
	hi := append(append([]byte(nil), lo...), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF)
	if err := s.Range(lo, hi, func(k, v []byte) bool {
		b = append(b, v...)
		return true
	}); err != nil {
		return nil, false, err
	}
	return b, true, nil
}

func encodeFreqRow(listLen uint32, stats map[int]typeStat) []byte {
	var b []byte
	b = binary.AppendUvarint(b, uint64(listLen))
	b = binary.AppendUvarint(b, uint64(len(stats)))
	// Deterministic order: ascending type ID.
	ids := make([]int, 0, len(stats))
	for id := range stats {
		ids = append(ids, id)
	}
	sortInts(ids)
	for _, id := range ids {
		st := stats[id]
		b = binary.AppendUvarint(b, uint64(id))
		b = binary.AppendUvarint(b, uint64(st.df))
		b = binary.AppendUvarint(b, uint64(st.tf))
	}
	return b
}

func decodeFreqRow(b []byte) (uint32, map[int]typeStat, error) {
	r := bytes.NewReader(b)
	listLen, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, nil, err
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, nil, err
	}
	stats := make(map[int]typeStat, n)
	for i := 0; i < int(n); i++ {
		id, err := binary.ReadUvarint(r)
		if err != nil {
			return 0, nil, err
		}
		df, err := binary.ReadUvarint(r)
		if err != nil {
			return 0, nil, err
		}
		tf, err := binary.ReadUvarint(r)
		if err != nil {
			return 0, nil, err
		}
		stats[int(id)] = typeStat{df: uint32(df), tf: uint32(tf)}
	}
	return uint32(listLen), stats, nil
}

// saveChunks writes a posting list as its block-encoded stream — type
// table header plus the core's payload bytes verbatim — split into
// cell-sized chunks.
func saveChunks(s storage.Backend, term string, l *List) error {
	if l == nil || l.core == nil || l.core.n == 0 {
		return nil
	}
	core := l.core
	stream := make([]byte, 0, 16+2*len(core.types)+len(core.enc))
	stream = binary.AppendUvarint(stream, uint64(len(core.types)))
	for _, t := range core.types {
		stream = binary.AppendUvarint(stream, uint64(t.ID))
	}
	stream = append(stream, core.enc...)
	for chunk, off := uint32(0), 0; off < len(stream); chunk++ {
		end := off + chunkBudget
		if end > len(stream) {
			end = len(stream)
		}
		if err := s.Put(listChunkKey(term, chunk), stream[off:end]); err != nil {
			return fmt.Errorf("index: save chunk %d of %q: %w", chunk, term, err)
		}
		off = end
	}
	return nil
}

// loadChunks reads and concatenates every chunk of a term's posting list
// into the resident encoded core (or, for a legacy-format term, decodes
// the old per-cell stream and re-encodes). resolve maps the store's
// persisted type IDs to interned types — the registry's own ByID for
// plain loads, an idMap lookup for shared-registry loads.
func loadChunks(s storage.Backend, resolve func(int) (*xmltree.Type, bool), term string) (*List, error) {
	prefix := append([]byte(listPrefix), term...)
	prefix = append(prefix, 0)
	end := append(append([]byte(nil), prefix...), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF)
	var stream []byte
	legacy := false
	var legacyPostings []Posting
	var decodeErr error
	first := true
	err := s.Range(prefix, end, func(k, v []byte) bool {
		if first {
			first = false
			// Legacy chunks open with a self-contained cell (shared == 0);
			// the block stream opens with its type count (>= 1).
			legacy = len(v) > 0 && v[0] == 0
		}
		if legacy {
			legacyPostings, decodeErr = decodeLegacyChunk(v, term, resolve, legacyPostings)
			return decodeErr == nil
		}
		stream = append(stream, v...)
		return true
	})
	if err != nil {
		return nil, err
	}
	if decodeErr != nil {
		return nil, decodeErr
	}
	if legacy {
		return NewList(term, legacyPostings), nil
	}
	if len(stream) == 0 {
		return &List{Term: term}, nil
	}
	r := bytes.NewReader(stream)
	nTypes, err := binary.ReadUvarint(r)
	if err != nil || nTypes == 0 {
		return nil, fmt.Errorf("index: chunks of %q: bad type table header", term)
	}
	types := make([]*xmltree.Type, nTypes)
	for i := range types {
		tid, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("index: chunks of %q: truncated type table", term)
		}
		t, ok := resolve(int(tid))
		if !ok {
			return nil, fmt.Errorf("index: chunks of %q name unknown type %d", term, tid)
		}
		types[i] = t
	}
	core, err := parseCore(stream[len(stream)-r.Len():], types)
	if err != nil {
		return nil, fmt.Errorf("index: chunks of %q: %w", term, err)
	}
	return newListFromCore(term, core), nil
}

// decodeLegacyChunk decodes one pre-codec chunk (one delta-coded posting
// per cell, chunk self-contained) and appends its postings.
func decodeLegacyChunk(v []byte, term string, resolve func(int) (*xmltree.Type, bool), postings []Posting) ([]Posting, error) {
	var prev dewey.ID
	r := bytes.NewReader(v)
	for r.Len() > 0 {
		shared, err := binary.ReadUvarint(r)
		if err != nil {
			return postings, err
		}
		extra, err := binary.ReadUvarint(r)
		if err != nil {
			return postings, err
		}
		if int(shared) > len(prev) {
			return postings, fmt.Errorf("index: chunk of %q: shared %d > prev %d", term, shared, len(prev))
		}
		id := make(dewey.ID, 0, int(shared)+int(extra))
		id = append(id, prev[:shared]...)
		for i := 0; i < int(extra); i++ {
			c, err := binary.ReadUvarint(r)
			if err != nil {
				return postings, err
			}
			id = append(id, uint32(c))
		}
		tid, err := binary.ReadUvarint(r)
		if err != nil {
			return postings, err
		}
		t, ok := resolve(int(tid))
		if !ok {
			return postings, fmt.Errorf("index: chunk of %q names unknown type %d", term, tid)
		}
		if len(postings) > 0 && dewey.Compare(postings[len(postings)-1].ID, id) >= 0 {
			return postings, fmt.Errorf("index: chunk of %q out of document order", term)
		}
		postings = append(postings, Posting{ID: id, Type: t})
		prev = id
	}
	return postings, nil
}

// Load opens an index previously written with Save. Statistics load
// eagerly (they are small and every query ranking touches them); posting
// lists load lazily per keyword on first List call.
func Load(s storage.Backend) (*Index, error) { return load(s, nil) }

// LoadInto is Load against a shared type registry: the store's persisted
// type paths are interned into reg (in persisted order, parents first) and
// every statistic and posting is remapped onto the shared IDs. Several
// stores loaded into one registry therefore agree on type *pointer*
// identity — the property the sharded merge relies on — even when their
// persisted registries diverged at the tail under independent live
// updates.
func LoadInto(s storage.Backend, reg *xmltree.Registry) (*Index, error) {
	if reg == nil {
		return nil, fmt.Errorf("index: LoadInto needs a registry")
	}
	return load(s, reg)
}

func load(s storage.Backend, reg *xmltree.Registry) (*Index, error) {
	raw, ok, err := s.Get([]byte(metaTypesKey))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("index: store has no type registry (not an index?)")
	}
	local, err := xmltree.UnmarshalRegistry(raw)
	if err != nil {
		return nil, err
	}
	types := local
	var idMap []*xmltree.Type // persisted local type ID -> shared type
	if reg != nil {
		// Persisted order is interning order, parents before children, so
		// every parent resolves before its children re-intern.
		locals := local.Types()
		idMap = make([]*xmltree.Type, len(locals))
		for i, t := range locals {
			var parent *xmltree.Type
			if t.Parent != nil {
				parent = idMap[t.Parent.ID]
			}
			idMap[i] = reg.Intern(parent, t.Tag)
		}
		types = reg
	}
	ix := &Index{
		Types:   types,
		Root:    dewey.Root(),
		terms:   make(map[string]*kwEntry),
		coCache: make(map[coKey]int),
		stat:    &opStat{},
	}
	docRaw, ok, err := getDocMeta(s)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("index: store has no document metadata")
	}
	if err := decodeDocMeta(ix, docRaw, idMap); err != nil {
		return nil, err
	}
	// Frequent table: one row per term.
	fEnd := []byte{freqPrefix[0], 1} // '\x01' > '\x00' separator
	var rowErr error
	err = s.Range([]byte(freqPrefix), fEnd, func(k, v []byte) bool {
		term := string(k[len(freqPrefix):])
		listLen, stats, err := decodeFreqRow(v)
		if err != nil {
			rowErr = fmt.Errorf("index: freq row %q: %w", term, err)
			return false
		}
		if idMap != nil {
			mapped := make(map[int]typeStat, len(stats))
			for id, st := range stats {
				if id >= len(idMap) {
					rowErr = fmt.Errorf("index: freq row %q names unknown type %d", term, id)
					return false
				}
				mapped[idMap[id].ID] = st
			}
			stats = mapped
		}
		ix.terms[term] = &kwEntry{listLen: listLen, stats: stats}
		return true
	})
	if err != nil {
		return nil, err
	}
	if rowErr != nil {
		return nil, rowErr
	}
	resolve := local.ByID
	if idMap != nil {
		resolve = func(id int) (*xmltree.Type, bool) {
			if id < 0 || id >= len(idMap) {
				return nil, false
			}
			return idMap[id], true
		}
	}
	ix.loader = func(term string) (*List, error) { return loadChunks(s, resolve, term) }
	return ix, nil
}

func sortInts(a []int) { sort.Ints(a) }
