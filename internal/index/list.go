// Package index builds and serves the access structures of Section VII of
// the paper: keyword inverted lists (document-ordered <DeweyID, prefixPath>
// postings), the frequent table (XML document frequency f_k^T and term
// frequency tf(k,T) per keyword and node type, plus N_T and G_T), and the
// co-occurrence frequency table f_{ki,kj}^T. Indexes build in memory from a
// parsed document and persist into the embedded kvstore (the repository's
// Berkeley DB substitute), from which posting lists load lazily per keyword
// so query processing touches only the lists it scans.
package index

import (
	"sort"

	"xrefine/internal/dewey"
	"xrefine/internal/xmltree"
)

// Posting is one inverted-list entry: a node containing the keyword in its
// tag or value, with its interned node type (the paper's prefixPath).
type Posting struct {
	ID   dewey.ID
	Type *xmltree.Type
}

// List is a keyword's inverted list in document order. Lists are immutable
// after construction and safe for concurrent use.
type List struct {
	Term     string
	postings []Posting
}

// NewList builds a list from postings that must already be in document
// order; it panics if they are not, because every algorithm downstream
// silently corrupts otherwise.
func NewList(term string, postings []Posting) *List {
	for i := 1; i < len(postings); i++ {
		if dewey.Compare(postings[i-1].ID, postings[i].ID) >= 0 {
			panic("index: postings out of document order for " + term)
		}
	}
	return &List{Term: term, postings: postings}
}

// NewListUnchecked builds a list without the document-order validation of
// NewList. It exists for callers that slice postings out of an
// already-validated list — re-proving order there is an O(n) scan per call
// on the query hot path. Index build keeps the checked constructor.
func NewListUnchecked(term string, postings []Posting) *List {
	return &List{Term: term, postings: postings}
}

// Sub returns the sublist covering postings [start, end) as a view sharing
// l's backing array. Order needs no re-validation: a contiguous slice of a
// document-ordered list is document-ordered.
func (l *List) Sub(start, end int) *List {
	return &List{Term: l.Term, postings: l.postings[start:end]}
}

// Len returns the number of postings.
func (l *List) Len() int {
	if l == nil {
		return 0
	}
	return len(l.postings)
}

// At returns the i-th posting in document order.
func (l *List) At(i int) Posting { return l.postings[i] }

// SeekGE returns the index of the first posting with ID >= d, or Len().
func (l *List) SeekGE(d dewey.ID) int {
	if l == nil {
		return 0
	}
	return sort.Search(len(l.postings), func(i int) bool {
		return dewey.Compare(l.postings[i].ID, d) >= 0
	})
}

// SeekGT returns the index of the first posting with ID > d, or Len().
func (l *List) SeekGT(d dewey.ID) int {
	if l == nil {
		return 0
	}
	return sort.Search(len(l.postings), func(i int) bool {
		return dewey.Compare(l.postings[i].ID, d) > 0
	})
}

// Range returns the half-open index interval [start, end) of postings whose
// IDs fall in the Dewey interval [lo, hi).
func (l *List) Range(lo, hi dewey.ID) (int, int) {
	return l.SeekGE(lo), l.SeekGE(hi)
}

// InSubtree returns the index interval of postings inside the subtree
// rooted at root (self included).
func (l *List) InSubtree(root dewey.ID) (int, int) {
	return l.Range(root, root.Next())
}

// HasInSubtree reports whether any posting lies in root's subtree; this is
// the random-access probe of the short-list eager algorithm (Algorithm 3).
func (l *List) HasInSubtree(root dewey.ID) bool {
	s, e := l.InSubtree(root)
	return s < e
}

// Slice returns a view of the postings in [start, end). The backing array
// is shared; callers must not mutate postings.
func (l *List) Slice(start, end int) []Posting { return l.postings[start:end] }

// Postings returns the whole list under the same sharing contract as Slice.
func (l *List) Postings() []Posting { return l.postings }

// LM returns the rightmost posting with ID <= d (the paper's lm(v,S) match
// function from XKSearch) and false when no posting precedes d.
func (l *List) LM(d dewey.ID) (Posting, bool) {
	i := l.SeekGT(d)
	if i == 0 {
		return Posting{}, false
	}
	return l.postings[i-1], true
}

// RM returns the leftmost posting with ID >= d (the rm(v,S) match function)
// and false when no posting follows d.
func (l *List) RM(d dewey.ID) (Posting, bool) {
	i := l.SeekGE(d)
	if i == len(l.postings) {
		return Posting{}, false
	}
	return l.postings[i], true
}
