// Package index builds and serves the access structures of Section VII of
// the paper: keyword inverted lists (document-ordered <DeweyID, prefixPath>
// postings), the frequent table (XML document frequency f_k^T and term
// frequency tf(k,T) per keyword and node type, plus N_T and G_T), and the
// co-occurrence frequency table f_{ki,kj}^T. Indexes build in memory from a
// parsed document and persist into the embedded kvstore (the repository's
// Berkeley DB substitute), from which posting lists load lazily per keyword
// so query processing touches only the lists it scans.
package index

import (
	"sort"
	"sync/atomic"

	"xrefine/internal/dewey"
	"xrefine/internal/xmltree"
)

// Posting is one inverted-list entry: a node containing the keyword in its
// tag or value, with its interned node type (the paper's prefixPath).
type Posting struct {
	ID   dewey.ID
	Type *xmltree.Type
}

// List is a keyword's inverted list in document order, stored
// block-compressed (see block.go): the resident form is the encoded byte
// stream plus a skip table, and postings materialize lazily one block at a
// time. Lists are immutable after construction and safe for concurrent
// use.
//
// A List value is a *window* over a shared immutable core: Sub and View
// return new windows without copying or re-encoding anything. View gives
// the window a private decoded-block cache, so concurrent computations
// that fan out over the same term (the PR-1 worker pool, the PR-5 shard
// gather) never thrash each other's block locality; Sub shares its
// parent's cache, because sub-windows (per-partition slices of one
// query's lists) are visited in document order and want the warm blocks
// their siblings just paid to decode. Random access (At, LM, RM) reads
// through that cache; scan loops should prefer NewCursor, which reuses a
// pooled decode buffer and produces no garbage.
type List struct {
	Term string

	core   *listCore // nil for the empty list of an unindexed term
	lo, hi int       // window as global posting indexes [lo, hi)

	cache *blockCache
}

// blockCache holds decoded blocks by block-index parity: block b lives
// only in slot b&1, so two adjacent blocks never evict each other. That
// matters for straddling access patterns — the eager SLCA scan holds a
// frontier postings[c-1] <= x < postings[c] whose two sides can sit in
// neighboring blocks, and a single-slot cache would re-decode both on
// every step. A published decodedBlock is immutable, so postings returned
// by At stay valid after the slot moves on — the GC owns their lifetime.
type blockCache struct {
	slots [2]atomic.Pointer[decodedBlock]
}

// NewList builds a list from postings that must already be in document
// order; it panics if they are not, because every algorithm downstream
// silently corrupts otherwise. The postings are encoded into block form;
// the input slice is not retained.
func NewList(term string, postings []Posting) *List {
	return buildList(term, postings, true)
}

// NewListUnchecked builds a list without the document-order validation of
// NewList. It exists for callers that already hold validated,
// document-ordered postings (mutator re-encodes, merge output) — the
// encoder's prefix-delta math assumes order, so truly unordered input is
// still corrupt, just undiagnosed.
func NewListUnchecked(term string, postings []Posting) *List {
	return buildList(term, postings, false)
}

func buildList(term string, postings []Posting, check bool) *List {
	w := newBlockWriter(term, check)
	for _, p := range postings {
		if err := w.Append(p.ID, p.Type); err != nil {
			panic(err.Error())
		}
	}
	return newListFromCore(term, w.Finish())
}

// newListFromCore wraps a completed core in a full-window List.
func newListFromCore(term string, core *listCore) *List {
	if core == nil || core.n == 0 {
		return &List{Term: term}
	}
	return &List{Term: term, core: core, lo: 0, hi: core.n, cache: &blockCache{}}
}

// Sub returns the sublist covering postings [start, end) as a window
// sharing l's encoded core AND l's block cache: consecutive sub-windows
// of one computation walk the document in order, so the block a sibling
// just decoded is very often the block the next sublist needs. Order
// needs no re-validation: a contiguous window of a document-ordered list
// is document-ordered.
func (l *List) Sub(start, end int) *List {
	if l == nil || l.core == nil {
		return &List{Term: l.term()}
	}
	return &List{Term: l.Term, core: l.core, lo: l.lo + start, hi: l.lo + end, cache: l.cache}
}

// View returns a same-window copy of l with a private block cache. Wrap
// shared lists in View before handing them to an independent computation
// (a query, a worker) so its block locality is not disturbed by — and does
// not disturb — anyone else's.
func (l *List) View() *List {
	if l == nil || l.core == nil {
		return &List{Term: l.term()}
	}
	return &List{Term: l.Term, core: l.core, lo: l.lo, hi: l.hi, cache: &blockCache{}}
}

func (l *List) term() string {
	if l == nil {
		return ""
	}
	return l.Term
}

// winLo and winHi expose the global window bounds to the cursor.
func (l *List) winLo() int { return l.lo }
func (l *List) winHi() int { return l.hi }

// Len returns the number of postings.
func (l *List) Len() int {
	if l == nil {
		return 0
	}
	return l.hi - l.lo
}

// block returns decoded block b through the window's parity cache.
func (l *List) block(b int) *decodedBlock {
	start := int(l.core.skip[b].start)
	slot := &l.cache.slots[b&1]
	if db := slot.Load(); db != nil && db.start == start {
		return db
	}
	db := l.core.decodeBlock(b)
	slot.Store(db)
	return db
}

// At returns the i-th posting in document order. The posting's ID is
// immutable and remains valid indefinitely (it aliases a cached decoded
// block that the GC keeps alive as long as the ID is referenced).
func (l *List) At(i int) Posting {
	g := l.lo + i
	if p := l.core.pinned.Load(); p != nil {
		return (*p)[g]
	}
	for s := range l.cache.slots {
		if db := l.cache.slots[s].Load(); db != nil && g >= db.start && g < db.end {
			return db.posts[g-db.start]
		}
	}
	db := l.block(l.core.findBlock(g))
	return db.posts[g-db.start]
}

// seek returns the window-relative index of the first posting with
// ID >= d (strict=false) or ID > d (strict=true), or Len(). It binary
// searches the skip table and decodes at most one block.
func (l *List) seek(d dewey.ID, strict bool) int {
	if l == nil || l.core == nil || l.lo >= l.hi {
		return 0
	}
	core := l.core
	sat := func(id dewey.ID) bool {
		c := dewey.Compare(id, d)
		if strict {
			return c > 0
		}
		return c >= 0
	}
	var g int
	if p := core.pinned.Load(); p != nil {
		s := *p
		g = sort.Search(core.n, func(i int) bool { return sat(s[i].ID) })
	} else {
		// First block whose first posting satisfies; the answer lives in
		// the block before it (or is that block's first posting).
		j := sort.Search(len(core.skip), func(b int) bool { return sat(core.skip[b].first) })
		if j == 0 {
			g = 0
		} else {
			db := l.block(j - 1)
			k := sort.Search(len(db.posts), func(i int) bool { return sat(db.posts[i].ID) })
			g = db.start + k
		}
	}
	if g < l.lo {
		return 0
	}
	if g > l.hi {
		return l.Len()
	}
	return g - l.lo
}

// SeekGE returns the index of the first posting with ID >= d, or Len().
func (l *List) SeekGE(d dewey.ID) int { return l.seek(d, false) }

// SeekGT returns the index of the first posting with ID > d, or Len().
func (l *List) SeekGT(d dewey.ID) int { return l.seek(d, true) }

// Range returns the half-open index interval [start, end) of postings whose
// IDs fall in the Dewey interval [lo, hi).
func (l *List) Range(lo, hi dewey.ID) (int, int) {
	return l.SeekGE(lo), l.SeekGE(hi)
}

// InSubtree returns the index interval of postings inside the subtree
// rooted at root (self included).
func (l *List) InSubtree(root dewey.ID) (int, int) {
	return l.Range(root, root.Next())
}

// HasInSubtree reports whether any posting lies in root's subtree; this is
// the random-access probe of the short-list eager algorithm (Algorithm 3).
func (l *List) HasInSubtree(root dewey.ID) bool {
	s, e := l.InSubtree(root)
	return s < e
}

// Slice materializes the postings in [start, end) into a fresh slice with
// owned IDs. It decodes every covered block, so it belongs on mutation and
// test paths, not query hot paths — scans should use NewCursor.
func (l *List) Slice(start, end int) []Posting {
	if l == nil || l.core == nil || start >= end {
		return nil
	}
	if p := l.core.pinned.Load(); p != nil {
		return (*p)[l.lo+start : l.lo+end]
	}
	out := make([]Posting, 0, end-start)
	c := l.NewCursor()
	defer c.Close()
	c.Seek(start)
	for c.Pos() < end {
		p := c.Posting()
		out = append(out, Posting{ID: p.ID.Clone(), Type: p.Type})
		c.Next()
	}
	return out
}

// Postings materializes the whole list under the same contract as Slice.
func (l *List) Postings() []Posting { return l.Slice(0, l.Len()) }

// LM returns the rightmost posting with ID <= d (the paper's lm(v,S) match
// function from XKSearch) and false when no posting precedes d.
func (l *List) LM(d dewey.ID) (Posting, bool) {
	i := l.SeekGT(d)
	if i == 0 {
		return Posting{}, false
	}
	return l.At(i - 1), true
}

// RM returns the leftmost posting with ID >= d (the rm(v,S) match function)
// and false when no posting follows d.
func (l *List) RM(d dewey.ID) (Posting, bool) {
	i := l.SeekGE(d)
	if i == l.Len() {
		return Posting{}, false
	}
	return l.At(i), true
}

// Pin fully materializes the core's postings and keeps them resident,
// making every read bypass block decode. This restores the pre-codec
// representation — the xbench compress experiment uses it as the "legacy"
// baseline, and byte-identity tests use it to diff the two read paths.
// Production code never pins. Pinning is core-wide: all windows over the
// same core see it.
func (l *List) Pin() {
	if l == nil || l.core == nil || l.core.pinned.Load() != nil {
		return
	}
	core := l.core
	posts := make([]Posting, 0, core.n)
	for b := range core.skip {
		db := core.decodeBlock(b)
		posts = append(posts, db.posts...)
	}
	core.pinned.Store(&posts)
}

// Unpin drops the pinned materialization, returning reads to block decode.
func (l *List) Unpin() {
	if l != nil && l.core != nil {
		l.core.pinned.Store(nil)
	}
}

// MemoryBytes reports the resident cost of the list's encoded core:
// compressed payload, skip table, and type table. Windows share one core;
// the figure is for the whole core, not the window.
func (l *List) MemoryBytes() int {
	if l == nil {
		return 0
	}
	return l.core.memoryBytes()
}

// LegacyBytes estimates what the same core cost resident before the block
// codec: a materialized []Posting plus one heap allocation per Dewey ID.
func (l *List) LegacyBytes() int {
	if l == nil {
		return 0
	}
	return l.core.legacyBytes()
}

// BlockCount returns the number of encoded blocks in the core.
func (l *List) BlockCount() int {
	if l == nil || l.core == nil {
		return 0
	}
	return len(l.core.skip)
}

// EncodedBytes returns the size of the core's encoded payload alone.
func (l *List) EncodedBytes() int {
	if l == nil || l.core == nil {
		return 0
	}
	return len(l.core.enc)
}
