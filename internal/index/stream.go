package index

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"

	"xrefine/internal/dewey"
	"xrefine/internal/tokenize"
	"xrefine/internal/xmltree"
)

// BuildStream constructs the index directly from an XML byte stream,
// without materializing the document tree. Memory stays proportional to
// the index (postings + statistics), not to the document: the paper's
// DBLP corpus is 420 MB of XML whose tree would dwarf its inverted lists.
// The produced index is equivalent to Build(xmltree.Parse(r)) — a property
// the tests assert — but engines built this way have no Document, so
// snippets and narrowing are unavailable.
//
// Options mirror xmltree.Options (attribute materialization, depth guard).
func BuildStream(r io.Reader, opts *xmltree.Options) (*Index, error) {
	var o xmltree.Options
	if opts != nil {
		o = *opts
	} else {
		o = xmltree.Options{AttributesAsNodes: true}
	}
	maxDepth := o.MaxDepth
	if maxDepth == 0 {
		maxDepth = 512
	}

	reg := xmltree.NewRegistry()
	ix := &Index{
		Types:   reg,
		Root:    dewey.Root(),
		terms:   make(map[string]*kwEntry),
		coCache: make(map[coKey]int),
		stat:    &opStat{},
	}
	var nt []uint32

	type frame struct {
		typ      *xmltree.Type
		id       dewey.ID
		children uint32
		text     strings.Builder
	}
	var stack []*frame
	states := make(map[string]*streamState)
	rootSeen := false
	partitions := 0

	// indexTerms registers term occurrences of a node. A node's terms
	// arrive in two waves — the tag at StartElement, text terms at
	// EndElement, i.e. *after* the node's descendants — so postings are
	// collected raw here and sorted, deduplicated and df-replayed at
	// finalize. Term frequency is order-independent and counted here.
	indexTerms := func(f *frame, terms []string) {
		if len(terms) == 0 {
			return
		}
		ancestors := make([]*xmltree.Type, 0, f.typ.Depth+1)
		for t := f.typ; t != nil; t = t.Parent {
			ancestors = append(ancestors, t)
		}
		for _, term := range terms {
			st := states[term]
			if st == nil {
				st = &streamState{kwEntry: &kwEntry{stats: make(map[int]typeStat)}}
				states[term] = st
			}
			for _, t := range ancestors {
				row := st.stats[t.ID]
				row.tf++
				st.stats[t.ID] = row
			}
			st.postings = append(st.postings, Posting{ID: f.id, Type: f.typ})
		}
	}

	openNode := func(tag string, parent *frame) (*frame, error) {
		var f *frame
		if parent == nil {
			if rootSeen {
				return nil, fmt.Errorf("index: multiple root elements")
			}
			rootSeen = true
			f = &frame{typ: reg.Intern(nil, tag), id: dewey.Root()}
		} else {
			f = &frame{
				typ: reg.Intern(parent.typ, tag),
				id:  parent.id.Child(parent.children),
			}
			parent.children++
			if len(parent.id) == 1 {
				partitions++
			}
		}
		for int(f.typ.ID) >= len(nt) {
			nt = append(nt, 0)
		}
		nt[f.typ.ID]++
		ix.NodeCount++
		return f, nil
	}

	dec := xml.NewDecoder(r)
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("index: stream parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if len(stack) >= maxDepth {
				return nil, fmt.Errorf("index: document deeper than %d", maxDepth)
			}
			tag := tokenize.Tag(t.Name.Local)
			if tag == "" {
				tag = "x"
			}
			var parent *frame
			if len(stack) > 0 {
				parent = stack[len(stack)-1]
			}
			f, err := openNode(tag, parent)
			if err != nil {
				return nil, err
			}
			indexTerms(f, []string{tag})
			stack = append(stack, f)
			if o.AttributesAsNodes {
				for _, a := range t.Attr {
					atag := tokenize.Tag(a.Name.Local)
					if atag == "" || a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
						continue
					}
					af, err := openNode(atag, f)
					if err != nil {
						return nil, err
					}
					terms := append([]string{atag}, tokenize.Text(a.Value)...)
					indexTerms(af, terms)
				}
			}
		case xml.CharData:
			if len(stack) > 0 {
				stack[len(stack)-1].text.Write(t)
			}
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("index: unbalanced end element")
			}
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			indexTerms(f, tokenize.Text(f.text.String()))
		}
	}
	if !rootSeen {
		return nil, fmt.Errorf("index: no root element")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("index: unclosed elements at EOF")
	}

	for term, st := range states {
		// Restore document order, drop per-node duplicates (a term can
		// occur in both a node's tag and its text), then replay the
		// df computation the tree builder does incrementally.
		sort.Slice(st.postings, func(i, j int) bool {
			return dewey.Compare(st.postings[i].ID, st.postings[j].ID) < 0
		})
		uniq := st.postings[:0]
		for i, p := range st.postings {
			if i == 0 || !dewey.Equal(st.postings[i-1].ID, p.ID) {
				uniq = append(uniq, p)
			}
		}
		var last dewey.ID
		for _, p := range uniq {
			shared := 0
			if last != nil {
				shared = dewey.LCALen(last, p.ID)
			}
			t := p.Type
			for t != nil && t.Depth >= shared {
				row := st.stats[t.ID]
				row.df++
				st.stats[t.ID] = row
				t = t.Parent
			}
			last = p.ID
		}
		st.kwEntry.list.Store(NewList(term, uniq))
		st.kwEntry.listLen = uint32(len(uniq))
		ix.terms[term] = st.kwEntry
	}
	ix.nt = make([]uint32, reg.Len())
	copy(ix.nt, nt)
	ix.gt = make([]uint32, reg.Len())
	for _, e := range ix.terms {
		for tid := range e.stats {
			ix.gt[tid]++
		}
	}
	for i := 0; i < partitions; i++ {
		ix.partRoot = append(ix.partRoot, dewey.Root().Child(uint32(i)))
	}
	return ix, nil
}

type streamState struct {
	*kwEntry
	postings []Posting
}
