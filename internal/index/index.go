package index

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"xrefine/internal/dewey"
	"xrefine/internal/xmltree"
)

// typeStat accumulates the frequent-table row of one (keyword, type) pair.
type typeStat struct {
	df uint32 // f_k^T: T-typed nodes whose subtree contains k
	tf uint32 // tf(k,T): occurrences of k within T-typed subtrees
}

// kwEntry is everything the index knows about one keyword. The list pointer
// is atomic so readers never block on the map while another goroutine is
// paging a different term in from the kvstore; loadMu makes the lazy load
// itself a per-term singleflight (concurrent requests for the same term do
// one disk read, requests for different terms do not serialize).
type kwEntry struct {
	list    atomic.Pointer[List]
	listLen uint32           // posting count, known without loading the list
	stats   map[int]typeStat // keyed by type ID
	loadMu  sync.Mutex       // serializes the lazy load of this term only
}

// Index is the complete access structure for one document: inverted lists
// plus the statistics tables of Section VII. The terms map and every
// statistic are immutable after Build or Load; posting lists of disk-backed
// indexes materialize lazily behind per-term locks. The whole structure is
// safe for concurrent readers.
type Index struct {
	// Types is the node-type registry of the indexed document.
	Types *xmltree.Registry
	// Root is the Dewey label of the document root (always dewey.Root()).
	Root dewey.ID
	// NodeCount is the total number of indexed nodes.
	NodeCount int

	mu       sync.Mutex // guards coCache only
	terms    map[string]*kwEntry
	loader   func(term string) (*List, error) // nil for fully-resident indexes
	nt       []uint32                         // N_T per type ID
	gt       []uint32                         // G_T per type ID
	coCache  map[coKey]int
	partRoot []dewey.ID // document partition roots in order

	// stat holds the list-access counters, snapshot by OpStats. The struct
	// is shared by pointer across epoch derivations (NewMutator), so
	// metrics keep accumulating across live updates instead of resetting
	// at every epoch swap.
	stat *opStat
}

// opStat carries the list-access counters. Plain atomics so the index
// stays free of observability dependencies; the serving layer bridges them
// into its metrics registry.
type opStat struct {
	resident       atomic.Uint64
	loaded         atomic.Uint64
	postingsLoaded atomic.Uint64
}

// OpStats is a snapshot of the index's list-access counters.
type OpStats struct {
	// ListsResident counts list lookups served from memory.
	ListsResident uint64
	// ListsLoaded counts list lookups that had to page the posting list
	// in from the backing store (lazy loads).
	ListsLoaded uint64
	// PostingsLoaded counts postings materialized by those lazy loads.
	PostingsLoaded uint64
}

// OpStats returns the current list-access counter snapshot.
func (ix *Index) OpStats() OpStats {
	return OpStats{
		ListsResident:  ix.stat.resident.Load(),
		ListsLoaded:    ix.stat.loaded.Load(),
		PostingsLoaded: ix.stat.postingsLoaded.Load(),
	}
}

// ResidentBytes reports the resident memory cost of every posting-list
// core currently loaded (encoded payload + skip table + type table, see
// List.MemoryBytes). Lazily-loadable lists that have not been paged in
// contribute nothing — this is actual footprint, not potential.
func (ix *Index) ResidentBytes() int {
	total := 0
	for _, e := range ix.terms {
		if l := e.list.Load(); l != nil {
			total += l.MemoryBytes()
		}
	}
	return total
}

type coKey struct {
	a, b   string
	typeID int
}

// Build constructs the index from a parsed document with a single
// document-order walk (the "multiple traversal" of the paper collapses to
// one pass because every statistic here is prefix-incremental).
func Build(doc *xmltree.Document) *Index {
	ix := &Index{
		Types:     doc.Types,
		Root:      dewey.Root(),
		NodeCount: doc.NodeCount,
		terms:     make(map[string]*kwEntry),
		coCache:   make(map[coKey]int),
		stat:      &opStat{},
	}
	ix.nt = make([]uint32, doc.Types.Len())
	type buildState struct {
		*kwEntry
		postings []Posting
		lastID   dewey.ID // previous posting, for new-subtree-root detection
	}
	states := make(map[string]*buildState)
	doc.Walk(func(n *xmltree.Node) bool {
		ix.nt[n.Type.ID]++
		terms := n.Terms()
		if len(terms) == 0 {
			return true
		}
		// tf: every occurrence counts once per ancestor-or-self type.
		ancestors := make([]*xmltree.Type, 0, n.Type.Depth+1)
		for t := n.Type; t != nil; t = t.Parent {
			ancestors = append(ancestors, t)
		}
		seen := make(map[string]bool, len(terms))
		for _, term := range terms {
			st := states[term]
			if st == nil {
				st = &buildState{kwEntry: &kwEntry{stats: make(map[int]typeStat)}}
				states[term] = st
			}
			for _, t := range ancestors {
				row := st.stats[t.ID]
				row.tf++
				st.stats[t.ID] = row
			}
			if seen[term] {
				continue
			}
			seen[term] = true
			// df: ancestor roots not shared with the previous posting
			// of this term are newly-containing subtrees.
			shared := 0
			if st.lastID != nil {
				shared = dewey.LCALen(st.lastID, n.ID)
			}
			for depth := shared; depth <= n.Type.Depth; depth++ {
				t := ancestors[len(ancestors)-1-depth] // ancestors is self..root
				row := st.stats[t.ID]
				row.df++
				st.stats[t.ID] = row
			}
			st.lastID = n.ID
			st.postings = append(st.postings, Posting{ID: n.ID, Type: n.Type})
		}
		return true
	})
	for term, st := range states {
		st.kwEntry.list.Store(NewList(term, st.postings))
		st.kwEntry.listLen = uint32(len(st.postings))
		ix.terms[term] = st.kwEntry
	}
	ix.gt = make([]uint32, doc.Types.Len())
	for _, e := range ix.terms {
		for tid := range e.stats {
			ix.gt[tid]++
		}
	}
	for _, p := range doc.Partitions() {
		ix.partRoot = append(ix.partRoot, p.ID)
	}
	return ix
}

// HasTerm reports whether the keyword occurs anywhere in the document.
func (ix *Index) HasTerm(term string) bool {
	_, ok := ix.terms[term]
	return ok
}

// List returns the inverted list of term, or an empty list when the term
// does not occur. Lists load lazily on disk-backed indexes; concurrent
// callers of the same term share one load, callers of different terms load
// independently (no global lock is held across kvstore I/O).
func (ix *Index) List(term string) (*List, error) { return ix.ListCtx(nil, term) }

// ListCtx is List with cancellation: a canceled context stops before the
// lazy kvstore load (the expensive part) and, for loads already queued
// behind another caller's singleflight, before returning the shared
// result. Resident lists return regardless — there is nothing to save.
func (ix *Index) ListCtx(ctx context.Context, term string) (*List, error) {
	l, _, err := ix.ListCtxInfo(ctx, term)
	return l, err
}

// ListCtxInfo is ListCtx plus a residency report: loaded is true when
// this call paged the list in from the backing store (a cache miss in
// observability terms) and false when the list was already in memory.
// Per-query traces use the report to attribute load cost to the query
// that paid it.
func (ix *Index) ListCtxInfo(ctx context.Context, term string) (l *List, loaded bool, err error) {
	e, ok := ix.terms[term]
	if !ok {
		return &List{Term: term}, false, nil
	}
	if l := e.list.Load(); l != nil {
		ix.stat.resident.Add(1)
		return l, false, nil
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
	}
	e.loadMu.Lock()
	defer e.loadMu.Unlock()
	if l := e.list.Load(); l != nil {
		// Another caller's singleflight finished the load while we
		// queued; it is resident from this call's perspective.
		ix.stat.resident.Add(1)
		return l, false, nil
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
	}
	if ix.loader == nil {
		return nil, false, fmt.Errorf("index: list for %q missing and no loader", term)
	}
	l, err = ix.loader(term)
	if err != nil {
		return nil, false, fmt.Errorf("index: load list %q: %w", term, err)
	}
	e.list.Store(l)
	ix.stat.loaded.Add(1)
	ix.stat.postingsLoaded.Add(uint64(l.Len()))
	return l, true, nil
}

// ListLen returns the posting count of term without forcing a lazy list
// load (the frequent table carries the length).
func (ix *Index) ListLen(term string) int {
	e, ok := ix.terms[term]
	if !ok {
		return 0
	}
	if l := e.list.Load(); l != nil {
		return l.Len()
	}
	return int(e.listLen)
}

// Vocabulary returns every indexed term in lexicographic order.
func (ix *Index) Vocabulary() []string {
	out := make([]string, 0, len(ix.terms))
	for t := range ix.terms {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// DF returns the XML document frequency f_k^T (Definition 3.2).
func (ix *Index) DF(term string, t *xmltree.Type) int {
	if e, ok := ix.terms[term]; ok {
		return int(e.stats[t.ID].df)
	}
	return 0
}

// TF returns tf(k,T): the number of occurrences of term within subtrees
// rooted at T-typed nodes.
func (ix *Index) TF(term string, t *xmltree.Type) int {
	if e, ok := ix.terms[term]; ok {
		return int(e.stats[t.ID].tf)
	}
	return 0
}

// NT returns N_T, the number of T-typed nodes. Types minted by a later
// epoch (the registry is shared across epochs) read as zero here.
func (ix *Index) NT(t *xmltree.Type) int {
	if t.ID >= len(ix.nt) {
		return 0
	}
	return int(ix.nt[t.ID])
}

// GT returns G_T, the number of distinct keywords within T-typed subtrees.
func (ix *Index) GT(t *xmltree.Type) int {
	if t.ID >= len(ix.gt) {
		return 0
	}
	return int(ix.gt[t.ID])
}

// PartitionRoots returns the Dewey labels of the document partitions
// (Definition 6.1) in document order.
func (ix *Index) PartitionRoots() []dewey.ID { return ix.partRoot }

// CoDF returns the co-occurrence frequency f_{a,b}^T: the number of T-typed
// nodes whose subtree contains both keywords. The paper materializes an
// O(K^2 * T) table at parse time; this implementation computes entries on
// demand from the two inverted lists (a sorted merge over subtree roots)
// and memoizes them, which is the same table realized lazily.
func (ix *Index) CoDF(a, b string, t *xmltree.Type) (int, error) {
	if a > b {
		a, b = b, a
	}
	key := coKey{a: a, b: b, typeID: t.ID}
	ix.mu.Lock()
	if v, ok := ix.coCache[key]; ok {
		ix.mu.Unlock()
		return v, nil
	}
	ix.mu.Unlock()
	la, err := ix.List(a)
	if err != nil {
		return 0, err
	}
	lb, err := ix.List(b)
	if err != nil {
		return 0, err
	}
	v := coOccurringRoots(la, lb, t)
	ix.mu.Lock()
	ix.coCache[key] = v
	ix.mu.Unlock()
	return v, nil
}

// coOccurringRoots counts distinct T-typed subtree roots containing
// postings from both lists. Both lists are in document order, so the
// T-typed ancestor roots of each list are non-decreasing and the count is a
// single sorted merge with on-the-fly dedup.
func coOccurringRoots(la, lb *List, t *xmltree.Type) int {
	rootsA := typedRoots(la, t)
	rootsB := typedRoots(lb, t)
	i, j, count := 0, 0, 0
	for i < len(rootsA) && j < len(rootsB) {
		switch dewey.Compare(rootsA[i], rootsB[j]) {
		case -1:
			i++
		case 1:
			j++
		default:
			count++
			i++
			j++
		}
	}
	return count
}

// typedRoots maps each posting to its T-typed ancestor root (when its path
// passes through type t) and dedups consecutive repeats. It scans through
// a cursor, so the list is decoded one pooled block at a time instead of
// being materialized.
func typedRoots(l *List, t *xmltree.Type) []dewey.ID {
	var roots []dewey.ID
	depth := t.Depth
	c := l.NewCursor()
	defer c.Close()
	for ; c.Valid(); c.Next() {
		p := c.Posting()
		if p.Type.Depth < depth {
			continue
		}
		at, err := p.Type.AncestorAt(depth)
		if err != nil || at != t {
			continue
		}
		root := p.ID[:depth+1] // aliases cursor scratch until the Clone below
		if len(roots) > 0 && dewey.Equal(roots[len(roots)-1], root) {
			continue
		}
		roots = append(roots, root.Clone())
	}
	return roots
}

// CompleteByPrefix returns up to k indexed terms starting with prefix,
// most frequent first — the datasource behind search-as-you-type
// completion. The vocabulary is consulted in sorted order, so the prefix
// range is two binary searches plus a scan of the matching block.
func (ix *Index) CompleteByPrefix(prefix string, k int) []string {
	if prefix == "" || k < 1 {
		return nil
	}
	vocab := ix.Vocabulary()
	lo := sort.SearchStrings(vocab, prefix)
	type tf struct {
		term string
		n    int
	}
	var hits []tf
	for i := lo; i < len(vocab) && strings.HasPrefix(vocab[i], prefix); i++ {
		hits = append(hits, tf{term: vocab[i], n: ix.ListLen(vocab[i])})
	}
	sort.SliceStable(hits, func(a, b int) bool {
		if hits[a].n != hits[b].n {
			return hits[a].n > hits[b].n
		}
		return hits[a].term < hits[b].term
	})
	if len(hits) == 0 {
		return nil
	}
	if len(hits) > k {
		hits = hits[:k]
	}
	out := make([]string, len(hits))
	for i, h := range hits {
		out[i] = h.term
	}
	return out
}
