package index

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"xrefine/internal/dewey"
	"xrefine/internal/xmltree"
)

// testTypes interns a small type forest for generated lists: a chain and
// a sibling branch, so decoded postings exercise several distinct
// ordinals per list.
func testTypes() []*xmltree.Type {
	reg := xmltree.NewRegistry()
	root := reg.Intern(nil, "dblp")
	a := reg.Intern(root, "article")
	return []*xmltree.Type{
		root,
		a,
		reg.Intern(a, "title"),
		reg.Intern(a, "author"),
		reg.Intern(root, "inproceedings"),
	}
}

// genPostings produces n document-ordered postings by walking a virtual
// tree: each step descends to a child, advances to a following sibling,
// or pops toward the root and advances. Every move lands strictly after
// the previous node in document order, so the result is valid list input
// by construction. maxDepth and fanout shape the list — deep/narrow
// stresses long shared prefixes, wide/shallow stresses big deltas.
func genPostings(rng *rand.Rand, types []*xmltree.Type, n, maxDepth, fanout int) []Posting {
	cur := dewey.ID{0}
	out := make([]Posting, 0, n)
	for len(out) < n {
		op := rng.Intn(3)
		if len(cur) <= 1 && op != 0 {
			op = 0 // never advance past the document root
		}
		switch op {
		case 0: // descend
			if len(cur) >= maxDepth {
				cur = cur.Clone()
				cur[len(cur)-1] += uint32(1 + rng.Intn(fanout))
			} else {
				cur = append(cur.Clone(), uint32(rng.Intn(fanout)))
			}
		case 1: // following sibling
			cur = cur.Clone()
			cur[len(cur)-1] += uint32(1 + rng.Intn(fanout))
		case 2: // pop toward the root, then advance
			cur = cur[:2+rng.Intn(len(cur)-1)].Clone()
			cur[len(cur)-1] += uint32(1 + rng.Intn(fanout))
		}
		out = append(out, Posting{ID: cur.Clone(), Type: types[rng.Intn(len(types))]})
	}
	return out
}

// verifyList checks every read path of l against the reference postings:
// random access, cursor scan, materialization, and the seek primitives
// against a brute-force search over the reference.
func verifyList(t *testing.T, l *List, want []Posting) {
	t.Helper()
	if l.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", l.Len(), len(want))
	}
	got := l.Postings()
	for i := range want {
		if !dewey.Equal(got[i].ID, want[i].ID) || got[i].Type != want[i].Type {
			t.Fatalf("Postings()[%d] = %v/%v, want %v/%v", i, got[i].ID, got[i].Type, want[i].ID, want[i].Type)
		}
	}
	for i := range want {
		p := l.At(i)
		if !dewey.Equal(p.ID, want[i].ID) || p.Type != want[i].Type {
			t.Fatalf("At(%d) = %v/%v, want %v/%v", i, p.ID, p.Type, want[i].ID, want[i].Type)
		}
	}
	c := l.NewCursor()
	defer c.Close()
	for i := 0; c.Valid(); c.Next() {
		p := c.Posting()
		if !dewey.Equal(p.ID, want[i].ID) || p.Type != want[i].Type {
			t.Fatalf("cursor at %d = %v/%v, want %v/%v", i, p.ID, p.Type, want[i].ID, want[i].Type)
		}
		i++
	}
	// Seek primitives against brute force, probing around every distinct
	// ID plus synthetic neighbors.
	refGE := func(d dewey.ID) int {
		return sort.Search(len(want), func(i int) bool { return dewey.Compare(want[i].ID, d) >= 0 })
	}
	refGT := func(d dewey.ID) int {
		return sort.Search(len(want), func(i int) bool { return dewey.Compare(want[i].ID, d) > 0 })
	}
	probe := func(d dewey.ID) {
		if g, w := l.SeekGE(d), refGE(d); g != w {
			t.Fatalf("SeekGE(%v) = %d, want %d", d, g, w)
		}
		if g, w := l.SeekGT(d), refGT(d); g != w {
			t.Fatalf("SeekGT(%v) = %d, want %d", d, g, w)
		}
	}
	for i := 0; i < len(want); i += 1 + len(want)/64 {
		id := want[i].ID
		probe(id)
		probe(id.Next())
		probe(append(id.Clone(), 0))
		if parent, ok := id.Parent(); ok {
			probe(parent)
		}
	}
	probe(dewey.ID{0})
	probe(dewey.ID{1 << 30})
}

// TestBlockCodecRoundTripProperty is the encode→decode identity property
// over randomized document-ordered lists of several shapes, each checked
// through every read path and re-parsed from its encoded bytes as the
// persistence layer would.
func TestBlockCodecRoundTripProperty(t *testing.T) {
	types := testTypes()
	shapes := []struct {
		name             string
		n, depth, fanout int
	}{
		{"deep-narrow", 700, 14, 2},
		{"wide-shallow", 700, 4, 1 << 16},
		{"dense-siblings", 900, 6, 3},
		{"single-block", 100, 8, 4},
		{"tiny", 1, 3, 2},
	}
	for _, sh := range shapes {
		t.Run(sh.name, func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				rng := rand.New(rand.NewSource(seed))
				want := genPostings(rng, types, sh.n, sh.depth, sh.fanout)
				l := NewList("prop", want)
				verifyList(t, l, want)
				// Persistence-shaped round trip: re-parse the encoded
				// payload exactly as loadChunks does.
				core, err := parseCore(append([]byte(nil), l.core.enc...), l.core.types)
				if err != nil {
					t.Fatalf("parseCore: %v", err)
				}
				verifyList(t, newListFromCore("prop", core), want)
				// Pinned reads must agree with decoded reads.
				l.Pin()
				verifyList(t, l, want)
				l.Unpin()
			}
		})
	}
}

// postingsFromBytes derives a document-ordered list from fuzz input: each
// byte is one tree move (two low bits) with an ordinal argument (six high
// bits). The fuzzer explores list shapes, never raw codec bytes — decode
// is only ever handed encoder output, and the load path's parseCore
// validation is exercised by the round trip below.
func postingsFromBytes(data []byte, types []*xmltree.Type) []Posting {
	cur := dewey.ID{0}
	out := make([]Posting, 0, len(data))
	for _, b := range data {
		op, arg := int(b&3), uint32(b>>2)
		if len(cur) <= 1 && op != 0 {
			op = 0
		}
		switch op {
		case 0:
			if len(cur) >= 12 {
				cur = cur.Clone()
				cur[len(cur)-1] += arg + 1
			} else {
				cur = append(cur.Clone(), arg)
			}
		case 1:
			cur = cur.Clone()
			cur[len(cur)-1] += arg + 1
		case 2:
			cur = cur[:2+int(arg)%(len(cur)-1)].Clone()
			cur[len(cur)-1]++
		case 3:
			cur = cur.Clone()
			cur[len(cur)-1] += uint32(1) << (arg % 30)
		}
		out = append(out, Posting{ID: cur.Clone(), Type: types[int(b)%len(types)]})
	}
	return out
}

// FuzzBlockCodec fuzzes the encode→decode identity: the input drives a
// generated document-ordered list, which must survive encoding, every
// read path, and a persistence-shaped re-parse byte-identically. The seed
// corpus under testdata/fuzz covers block-boundary counts and wide
// deltas; `go test -fuzz FuzzBlockCodec ./internal/index` explores from
// there.
func FuzzBlockCodec(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{0x00, 0x05, 0x41, 0xFF, 0x03})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 4096 {
			return
		}
		types := testTypes()
		want := postingsFromBytes(data, types)
		l := NewList("fuzz", want)
		verifyList(t, l, want)
		core, err := parseCore(append([]byte(nil), l.core.enc...), l.core.types)
		if err != nil {
			t.Fatalf("parseCore rejected encoder output: %v", err)
		}
		verifyList(t, newListFromCore("fuzz", core), want)
	})
}

// TestCursorScratchRaceStress drives many goroutines over one shared
// list, each churning pooled cursors — sweeps, backward seeks, early
// closes — while checking every posting against an owned reference. Under
// -race this proves a cursor never reads a scratch buffer another
// goroutine recycled: any use of a block buffer after its cursor's Close
// would be a write/read race on the pooled arrays.
func TestCursorScratchRaceStress(t *testing.T) {
	types := testTypes()
	want := genPostings(rand.New(rand.NewSource(7)), types, 1500, 10, 4)
	l := NewList("race", want)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for rep := 0; rep < 15; rep++ {
				c := l.NewCursor()
				// A few random jumps, then a verifying sweep from wherever
				// we landed; retained IDs are cloned before the cursor can
				// decode over them.
				var retained []dewey.ID
				var retainedAt []int
				for j := 0; j < 4; j++ {
					i := rng.Intn(l.Len())
					c.Seek(i)
					p := c.Posting()
					retained = append(retained, p.ID.Clone())
					retainedAt = append(retainedAt, i)
				}
				start := rng.Intn(l.Len())
				c.Seek(start)
				for i := start; c.Valid() && i < start+400; i++ {
					p := c.Posting()
					if !dewey.Equal(p.ID, want[i].ID) || p.Type != want[i].Type {
						t.Errorf("cursor read at %d = %v/%v, want %v/%v", i, p.ID, p.Type, want[i].ID, want[i].Type)
						break
					}
					c.Next()
				}
				c.Close()
				// Clones must outlive the recycled scratch untouched.
				for j, id := range retained {
					if !dewey.Equal(id, want[retainedAt[j]].ID) {
						t.Errorf("retained clone at %d = %v, want %v", retainedAt[j], id, want[retainedAt[j]].ID)
					}
				}
			}
		}(int64(g + 1))
	}
	wg.Wait()
}
