package index

import (
	"fmt"
	"strings"
	"testing"

	"xrefine/internal/dewey"
	"xrefine/internal/kvstore"
	"xrefine/internal/xmltree"
)

const deltaBaseXML = `<root>
  <paper><title>xml keyword search</title><author>smith</author><year>2003</year></paper>
  <paper><title>query refinement engine</title><author>jones</author></paper>
  <paper><title>unique sentinel</title><author>solo</author></paper>
</root>`

// assertIndexEquivalent checks every observable statistic and list of got
// against want (the from-scratch rebuild).
func assertIndexEquivalent(t *testing.T, got, want *Index) {
	t.Helper()
	if got.NodeCount != want.NodeCount {
		t.Errorf("NodeCount = %d, want %d", got.NodeCount, want.NodeCount)
	}
	gv, wv := got.Vocabulary(), want.Vocabulary()
	if fmt.Sprint(gv) != fmt.Sprint(wv) {
		t.Fatalf("vocabulary = %v, want %v", gv, wv)
	}
	// got may carry its own registry (e.g. a Load roundtrip), so types are
	// matched by prefix path, never by pointer.
	gotType := func(w *xmltree.Type) *xmltree.Type {
		g, ok := got.Types.ByPath(w.Path())
		if !ok {
			t.Fatalf("type %s missing from got registry", w.Path())
		}
		return g
	}
	for _, typ := range want.Types.Types() {
		if g, w := got.NT(gotType(typ)), want.NT(typ); g != w {
			t.Errorf("NT(%s) = %d, want %d", typ.Path(), g, w)
		}
		if g, w := got.GT(gotType(typ)), want.GT(typ); g != w {
			t.Errorf("GT(%s) = %d, want %d", typ.Path(), g, w)
		}
	}
	for _, term := range wv {
		gl, err := got.List(term)
		if err != nil {
			t.Fatal(err)
		}
		wl, err := want.List(term)
		if err != nil {
			t.Fatal(err)
		}
		if gl.Len() != wl.Len() {
			t.Fatalf("list %q len = %d, want %d", term, gl.Len(), wl.Len())
		}
		for i := 0; i < wl.Len(); i++ {
			if !dewey.Equal(gl.At(i).ID, wl.At(i).ID) || gl.At(i).Type.Path() != wl.At(i).Type.Path() {
				t.Fatalf("list %q posting %d = %s (%s), want %s (%s)",
					term, i, gl.At(i).ID, gl.At(i).Type.Path(), wl.At(i).ID, wl.At(i).Type.Path())
			}
		}
		if g, w := got.ListLen(term), want.ListLen(term); g != w {
			t.Errorf("ListLen(%q) = %d, want %d", term, g, w)
		}
		for _, typ := range want.Types.Types() {
			if g, w := got.DF(term, gotType(typ)), want.DF(term, typ); g != w {
				t.Errorf("DF(%q, %s) = %d, want %d", term, typ.Path(), g, w)
			}
			if g, w := got.TF(term, gotType(typ)), want.TF(term, typ); g != w {
				t.Errorf("TF(%q, %s) = %d, want %d", term, typ.Path(), g, w)
			}
		}
	}
	if fmt.Sprint(got.PartitionRoots()) != fmt.Sprint(want.PartitionRoots()) {
		t.Errorf("PartitionRoots = %v, want %v", got.PartitionRoots(), want.PartitionRoots())
	}
}

// mutateOnce clones doc, applies fn to the clone through a Mutator, and
// returns the new document, index and mutator.
func mutateOnce(t *testing.T, doc *xmltree.Document, ix *Index, fn func(d *xmltree.Document, m *Mutator)) (*xmltree.Document, *Index, *Mutator) {
	t.Helper()
	nd := doc.Clone()
	m := NewMutator(ix)
	fn(nd, m)
	return nd, m.Index(), m
}

func graft(t *testing.T, d *xmltree.Document, parentID dewey.ID, frag string) *xmltree.Node {
	t.Helper()
	p, ok := d.NodeByID(parentID)
	if !ok {
		t.Fatalf("no node %s", parentID)
	}
	fd, err := xmltree.ParseString(frag, nil)
	if err != nil {
		t.Fatal(err)
	}
	n, err := d.Graft(p, fd)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestMutatorInsertMatchesRebuild(t *testing.T) {
	doc, err := xmltree.ParseString(deltaBaseXML, nil)
	if err != nil {
		t.Fatal(err)
	}
	ix := Build(doc)
	nd, nix, _ := mutateOnce(t, doc, ix, func(d *xmltree.Document, m *Mutator) {
		// New partition with repeated terms (tf counts occurrences, the
		// list dedups per node) and a brand-new tag type.
		sub := graft(t, d, dewey.Root(), `<paper><title>xml xml refinement</title><venue>sigmod</venue></paper>`)
		if err := m.InsertSubtree(sub); err != nil {
			t.Fatal(err)
		}
		// Deep insert below an existing paper.
		sub2 := graft(t, d, dewey.ID{0, 0}, `<note>keyword sentinel</note>`)
		if err := m.InsertSubtree(sub2); err != nil {
			t.Fatal(err)
		}
	})
	assertIndexEquivalent(t, nix, Build(nd))
	// The source index must be untouched by the derivation.
	assertIndexEquivalent(t, ix, Build(doc))
}

func TestMutatorDeleteMatchesRebuild(t *testing.T) {
	doc, err := xmltree.ParseString(deltaBaseXML, nil)
	if err != nil {
		t.Fatal(err)
	}
	ix := Build(doc)
	nd, nix, m := mutateOnce(t, doc, ix, func(d *xmltree.Document, m *Mutator) {
		// Deleting partition 0.2 removes the only occurrences of
		// "unique", "sentinel" and "solo" — whole terms must vanish.
		n, ok := d.NodeByID(dewey.ID{0, 2})
		if !ok {
			t.Fatal("no node 0.2")
		}
		if err := m.DeleteSubtree(n); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Detach(n); err != nil {
			t.Fatal(err)
		}
	})
	assertIndexEquivalent(t, nix, Build(nd))
	for _, term := range []string{"unique", "sentinel", "solo"} {
		if nix.HasTerm(term) {
			t.Errorf("term %q survives deletion of its only subtree", term)
		}
	}
	removed := m.Removed()
	if len(removed) == 0 {
		t.Error("Removed() is empty after deleting exclusive terms")
	}
	assertIndexEquivalent(t, ix, Build(doc))
}

func TestMutatorMixedBatchMatchesRebuild(t *testing.T) {
	doc, err := xmltree.ParseString(deltaBaseXML, nil)
	if err != nil {
		t.Fatal(err)
	}
	ix := Build(doc)
	nd, nix, _ := mutateOnce(t, doc, ix, func(d *xmltree.Document, m *Mutator) {
		// Delete a partition, insert a replacement (ordinal continues past
		// the gap), then delete a deep node from a surviving partition.
		n, _ := d.NodeByID(dewey.ID{0, 1})
		if err := m.DeleteSubtree(n); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Detach(n); err != nil {
			t.Fatal(err)
		}
		sub := graft(t, d, dewey.Root(), `<paper><title>fresh query terms</title><author>smith</author></paper>`)
		if err := m.InsertSubtree(sub); err != nil {
			t.Fatal(err)
		}
		year, ok := d.NodeByID(dewey.ID{0, 0, 2})
		if !ok {
			t.Fatal("no node 0.0.2")
		}
		if year.Tag != "year" {
			t.Fatalf("node 0.0.2 is %q, want year", year.Tag)
		}
		if err := m.DeleteSubtree(year); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Detach(year); err != nil {
			t.Fatal(err)
		}
	})
	rebuilt := Build(nd)
	assertIndexEquivalent(t, nix, rebuilt)
	// Labels must show the gap: partitions are 0.0 and 0.3, not 0.0/0.1.
	roots := nix.PartitionRoots()
	if len(roots) != 3 || !dewey.Equal(roots[2], dewey.ID{0, 3}) {
		t.Fatalf("partition roots = %v, want [0.0 0.2 0.3]", roots)
	}
}

func TestMutatorSaveDeltaRoundtrip(t *testing.T) {
	doc, err := xmltree.ParseString(deltaBaseXML, nil)
	if err != nil {
		t.Fatal(err)
	}
	ix := Build(doc)
	s := kvstore.NewMem()
	defer s.Close()
	if err := ix.Save(s); err != nil {
		t.Fatal(err)
	}
	base, err := Load(s)
	if err != nil {
		t.Fatal(err)
	}
	nd, nix, m := mutateOnce(t, doc, base, func(d *xmltree.Document, m *Mutator) {
		n, _ := d.NodeByID(dewey.ID{0, 2})
		if err := m.DeleteSubtree(n); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Detach(n); err != nil {
			t.Fatal(err)
		}
		sub := graft(t, d, dewey.Root(), `<paper><title>incremental index</title></paper>`)
		if err := m.InsertSubtree(sub); err != nil {
			t.Fatal(err)
		}
	})
	if err := m.SaveDelta(s); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	reloaded, err := Load(s)
	if err != nil {
		t.Fatal(err)
	}
	assertIndexEquivalent(t, reloaded, Build(nd))
	assertIndexEquivalent(t, nix, Build(nd))
	// Removed terms must leave no residue in the store.
	for _, term := range m.Removed() {
		if reloaded.HasTerm(term) {
			t.Errorf("removed term %q still loadable", term)
		}
	}
}

func TestMutatorLargeChurnMatchesRebuild(t *testing.T) {
	var b strings.Builder
	b.WriteString("<root>")
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&b, "<e><v>shared token%d</v></e>", i)
	}
	b.WriteString("</root>")
	doc, err := xmltree.ParseString(b.String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ix := Build(doc)
	nd := doc.Clone()
	cur := ix
	// Several sequential epochs: each deletes one partition and inserts
	// one, exercising ordinal gaps and repeated term churn.
	for round := 0; round < 5; round++ {
		m := NewMutator(cur)
		victim := nd.Partitions()[round*3]
		if err := m.DeleteSubtree(victim); err != nil {
			t.Fatal(err)
		}
		if _, err := nd.Detach(victim); err != nil {
			t.Fatal(err)
		}
		sub := graft(t, nd, dewey.Root(), fmt.Sprintf(`<e><v>shared fresh%d</v></e>`, round))
		if err := m.InsertSubtree(sub); err != nil {
			t.Fatal(err)
		}
		cur = m.Index()
	}
	assertIndexEquivalent(t, cur, Build(nd))
}
