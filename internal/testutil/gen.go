package testutil

import (
	"math/rand"
	"strings"
)

// The generators below produce small random corpora and queries for
// property-based differential tests: documents with a bare container root
// (the shape the index, sharding and SLCA layers all assume for a
// collection) and queries mixing in-vocabulary terms with misspellings
// that force refinement.

// genTags label the generated element tree; the root tag is fixed so the
// container stays a pure structural node.
var genTags = []string{"item", "entry", "section", "info", "meta", "detail"}

// genVocab is the text vocabulary. It deliberately overlaps the builtin
// lexicon's domain (database/query/xml/...) so synonym, acronym and stem
// rules have material to fire on.
var genVocab = []string{
	"database", "query", "xml", "keyword", "search", "index",
	"author", "paper", "title", "system", "web", "data",
	"pattern", "tree", "node", "rank", "join", "cache",
}

// genTypos are never written into documents, so a query containing one
// cannot be satisfied as-is — the refinement trigger.
var genTypos = []string{"databse", "quary", "serch", "keywrod", "indx"}

// GenXML builds a random collection document: a bare <db> container root
// with 2..6 partitions, each a random tree a few levels deep, a few dozen
// nodes in total. Deterministic in r.
func GenXML(r *rand.Rand) string {
	var sb strings.Builder
	sb.WriteString("<db>")
	parts := 2 + r.Intn(5)
	for p := 0; p < parts; p++ {
		genSubtree(r, &sb, 0)
	}
	sb.WriteString("</db>")
	return sb.String()
}

func genSubtree(r *rand.Rand, sb *strings.Builder, depth int) {
	tag := genTags[r.Intn(len(genTags))]
	sb.WriteString("<" + tag + ">")
	if depth >= 3 || r.Intn(3) == 0 {
		// Leaf: one to three vocabulary terms as text.
		n := 1 + r.Intn(3)
		words := make([]string, n)
		for i := range words {
			words[i] = genVocab[r.Intn(len(genVocab))]
		}
		sb.WriteString(strings.Join(words, " "))
	} else {
		kids := 1 + r.Intn(3)
		for k := 0; k < kids; k++ {
			genSubtree(r, sb, depth+1)
		}
	}
	sb.WriteString("</" + tag + ">")
}

// GenTerms builds a random keyword query of 2..4 terms. Roughly a third
// of queries get one term swapped for a misspelling, and occasionally a
// term no generated document contains — both failure modes refinement
// exists for.
func GenTerms(r *rand.Rand) []string {
	n := 2 + r.Intn(3)
	terms := make([]string, n)
	for i := range terms {
		terms[i] = genVocab[r.Intn(len(genVocab))]
	}
	if r.Intn(3) == 0 {
		terms[r.Intn(n)] = genTypos[r.Intn(len(genTypos))]
	}
	return terms
}
