// Package testutil holds helpers shared by test files across packages:
// polling-with-deadline primitives that replace sleep-based timing
// assumptions, and seeded random document/query generators for
// property-based differential tests.
package testutil

import (
	"testing"
	"time"
)

// Eventually polls cond until it returns true or timeout elapses, then
// fails the test. Use it instead of a bare time.Sleep before an
// assertion: it converges as fast as the condition allows on fast
// machines and keeps waiting on slow ones.
func Eventually(t testing.TB, timeout time.Duration, cond func() bool, format string, args ...any) {
	t.Helper()
	if !WaitFor(timeout, cond) {
		t.Fatalf("condition not met within "+timeout.String()+": "+format, args...)
	}
}

// WaitFor is Eventually without the test dependency: it reports whether
// cond became true within timeout, polling with a short backoff.
func WaitFor(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	interval := 100 * time.Microsecond
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			// One final check: cond may have turned true while we slept
			// across the deadline.
			return cond()
		}
		time.Sleep(interval)
		if interval < 5*time.Millisecond {
			interval *= 2
		}
	}
}
