// Package stem implements the Porter stemming algorithm (M.F. Porter, "An
// algorithm for suffix stripping", 1980). XRefine uses stem equivalence to
// derive word-stemming substitution rules (Section III-B of the paper, rule
// class "word stemming", e.g. match ↔ matching), so the stemmer must agree
// with itself between index construction and query refinement — which it
// does trivially, since both call this one function.
package stem

// Stem returns the Porter stem of word. The input is expected to be a
// lowercase term (see tokenize.Normalize); words shorter than 3 letters or
// containing non-ASCII-letter runes are returned unchanged.
func Stem(word string) string {
	if len(word) < 3 {
		return word
	}
	for i := 0; i < len(word); i++ {
		c := word[i]
		if c < 'a' || c > 'z' {
			return word
		}
	}
	w := &stemmer{b: []byte(word)}
	w.step1ab()
	w.step1c()
	w.step2()
	w.step3()
	w.step4()
	w.step5()
	return string(w.b)
}

// stemmer holds the working buffer. All methods operate on b[0:len(b)].
type stemmer struct {
	b []byte
	j int // general offset used by the condition helpers
}

// cons reports whether b[i] is a consonant per Porter's definition: not a
// vowel, with 'y' a consonant when preceded by a vowel position.
func (s *stemmer) cons(i int) bool {
	switch s.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !s.cons(i - 1)
	}
	return true
}

// m measures the number of consonant-vowel sequences in b[0:j+1]:
// [C](VC)^m[V] has measure m.
func (s *stemmer) m() int {
	n, i := 0, 0
	for {
		if i > s.j {
			return n
		}
		if !s.cons(i) {
			break
		}
		i++
	}
	i++
	for {
		for {
			if i > s.j {
				return n
			}
			if s.cons(i) {
				break
			}
			i++
		}
		i++
		n++
		for {
			if i > s.j {
				return n
			}
			if !s.cons(i) {
				break
			}
			i++
		}
		i++
	}
}

// vowelInStem reports whether b[0:j+1] contains a vowel.
func (s *stemmer) vowelInStem() bool {
	for i := 0; i <= s.j; i++ {
		if !s.cons(i) {
			return true
		}
	}
	return false
}

// doubleC reports whether b[i-1:i+1] is a double consonant.
func (s *stemmer) doubleC(i int) bool {
	if i < 1 {
		return false
	}
	return s.b[i] == s.b[i-1] && s.cons(i)
}

// cvc reports whether b[i-2:i+1] is consonant-vowel-consonant with the
// final consonant not w, x or y; used to restore a trailing 'e'.
func (s *stemmer) cvc(i int) bool {
	if i < 2 || !s.cons(i) || s.cons(i-1) || !s.cons(i-2) {
		return false
	}
	switch s.b[i] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

// ends reports whether the buffer ends with suffix and, if so, sets j to
// the position just before it.
func (s *stemmer) ends(suffix string) bool {
	n := len(s.b)
	l := len(suffix)
	if l > n {
		return false
	}
	if string(s.b[n-l:]) != suffix {
		return false
	}
	s.j = n - l - 1
	return true
}

// setTo replaces the suffix located by a previous ends() with rep when the
// measure condition already checked by the caller holds.
func (s *stemmer) setTo(rep string) {
	s.b = append(s.b[:s.j+1], rep...)
}

// r replaces the matched suffix with rep when m() > 0.
func (s *stemmer) r(rep string) {
	if s.m() > 0 {
		s.setTo(rep)
	}
}

// step1ab removes plurals and -ed or -ing.
func (s *stemmer) step1ab() {
	if s.b[len(s.b)-1] == 's' {
		switch {
		case s.ends("sses"):
			s.b = s.b[:len(s.b)-2]
		case s.ends("ies"):
			s.setTo("i")
		case len(s.b) >= 2 && s.b[len(s.b)-2] != 's':
			s.b = s.b[:len(s.b)-1]
		}
	}
	if s.ends("eed") {
		if s.m() > 0 {
			s.b = s.b[:len(s.b)-1]
		}
		return
	}
	if (s.ends("ed") || s.ends("ing")) && s.vowelInStem() {
		s.b = s.b[:s.j+1]
		switch {
		case s.ends("at"):
			s.setTo("ate")
		case s.ends("bl"):
			s.setTo("ble")
		case s.ends("iz"):
			s.setTo("ize")
		case s.doubleC(len(s.b) - 1):
			switch s.b[len(s.b)-1] {
			case 'l', 's', 'z':
			default:
				s.b = s.b[:len(s.b)-1]
			}
		default:
			s.j = len(s.b) - 1
			if s.m() == 1 && s.cvc(len(s.b)-1) {
				s.b = append(s.b, 'e')
			}
		}
	}
}

// step1c turns terminal y to i when there is another vowel in the stem.
func (s *stemmer) step1c() {
	if s.ends("y") && s.vowelInStem() {
		s.b[len(s.b)-1] = 'i'
	}
}

// step2 maps double suffixes to single ones, e.g. -ization to -ize.
func (s *stemmer) step2() {
	if len(s.b) < 3 {
		return
	}
	switch s.b[len(s.b)-2] {
	case 'a':
		if s.ends("ational") {
			s.r("ate")
		} else if s.ends("tional") {
			s.r("tion")
		}
	case 'c':
		if s.ends("enci") {
			s.r("ence")
		} else if s.ends("anci") {
			s.r("ance")
		}
	case 'e':
		if s.ends("izer") {
			s.r("ize")
		}
	case 'l':
		if s.ends("bli") {
			s.r("ble")
		} else if s.ends("alli") {
			s.r("al")
		} else if s.ends("entli") {
			s.r("ent")
		} else if s.ends("eli") {
			s.r("e")
		} else if s.ends("ousli") {
			s.r("ous")
		}
	case 'o':
		if s.ends("ization") {
			s.r("ize")
		} else if s.ends("ation") {
			s.r("ate")
		} else if s.ends("ator") {
			s.r("ate")
		}
	case 's':
		if s.ends("alism") {
			s.r("al")
		} else if s.ends("iveness") {
			s.r("ive")
		} else if s.ends("fulness") {
			s.r("ful")
		} else if s.ends("ousness") {
			s.r("ous")
		}
	case 't':
		if s.ends("aliti") {
			s.r("al")
		} else if s.ends("iviti") {
			s.r("ive")
		} else if s.ends("biliti") {
			s.r("ble")
		}
	case 'g':
		if s.ends("logi") {
			s.r("log")
		}
	}
}

// step3 deals with -ic-, -full, -ness etc.
func (s *stemmer) step3() {
	switch s.b[len(s.b)-1] {
	case 'e':
		if s.ends("icate") {
			s.r("ic")
		} else if s.ends("ative") {
			s.r("")
		} else if s.ends("alize") {
			s.r("al")
		}
	case 'i':
		if s.ends("iciti") {
			s.r("ic")
		}
	case 'l':
		if s.ends("ical") {
			s.r("ic")
		} else if s.ends("ful") {
			s.r("")
		}
	case 's':
		if s.ends("ness") {
			s.r("")
		}
	}
}

// step4 takes off -ant, -ence etc. in context <c>vcvc<v>.
func (s *stemmer) step4() {
	if len(s.b) < 2 {
		return
	}
	switch s.b[len(s.b)-2] {
	case 'a':
		if !s.ends("al") {
			return
		}
	case 'c':
		if !s.ends("ance") && !s.ends("ence") {
			return
		}
	case 'e':
		if !s.ends("er") {
			return
		}
	case 'i':
		if !s.ends("ic") {
			return
		}
	case 'l':
		if !s.ends("able") && !s.ends("ible") {
			return
		}
	case 'n':
		if !s.ends("ant") && !s.ends("ement") && !s.ends("ment") && !s.ends("ent") {
			return
		}
	case 'o':
		if s.ends("ion") {
			if s.j < 0 || (s.b[s.j] != 's' && s.b[s.j] != 't') {
				return
			}
		} else if !s.ends("ou") {
			return
		}
	case 's':
		if !s.ends("ism") {
			return
		}
	case 't':
		if !s.ends("ate") && !s.ends("iti") {
			return
		}
	case 'u':
		if !s.ends("ous") {
			return
		}
	case 'v':
		if !s.ends("ive") {
			return
		}
	case 'z':
		if !s.ends("ize") {
			return
		}
	default:
		return
	}
	if s.m() > 1 {
		s.b = s.b[:s.j+1]
	}
}

// step5 removes a final -e and reduces -ll in long words.
func (s *stemmer) step5() {
	s.j = len(s.b) - 1
	if s.b[len(s.b)-1] == 'e' {
		s.j = len(s.b) - 2
		a := s.m()
		if a > 1 || (a == 1 && !s.cvc(len(s.b)-2)) {
			s.b = s.b[:len(s.b)-1]
		}
	}
	s.j = len(s.b) - 1
	if s.b[len(s.b)-1] == 'l' && s.doubleC(len(s.b)-1) && s.m() > 1 {
		s.b = s.b[:len(s.b)-1]
	}
}

// Equivalent reports whether two words share a Porter stem — the predicate
// behind stemming substitution rules.
func Equivalent(a, b string) bool {
	return a == b || Stem(a) == Stem(b)
}
