package stem

import (
	"testing"
	"testing/quick"
)

// Known outputs of the reference Porter (1980) implementation.
func TestStemKnown(t *testing.T) {
	cases := map[string]string{
		"caresses":       "caress",
		"ponies":         "poni",
		"ties":           "ti",
		"caress":         "caress",
		"cats":           "cat",
		"feed":           "feed",
		"agreed":         "agre",
		"plastered":      "plaster",
		"bled":           "bled",
		"motoring":       "motor",
		"sing":           "sing",
		"conflated":      "conflat",
		"troubled":       "troubl",
		"sized":          "size",
		"hopping":        "hop",
		"tanned":         "tan",
		"falling":        "fall",
		"hissing":        "hiss",
		"fizzed":         "fizz",
		"failing":        "fail",
		"filing":         "file",
		"happy":          "happi",
		"sky":            "sky",
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		"triplicate":     "triplic",
		"formative":      "form",
		"formalize":      "formal",
		"electriciti":    "electr",
		"electrical":     "electr",
		"hopeful":        "hope",
		"goodness":       "good",
		"revival":        "reviv",
		"allowance":      "allow",
		"inference":      "infer",
		"airliner":       "airlin",
		"gyroscopic":     "gyroscop",
		"adjustable":     "adjust",
		"defensible":     "defens",
		"irritant":       "irrit",
		"replacement":    "replac",
		"adjustment":     "adjust",
		"dependent":      "depend",
		"adoption":       "adopt",
		"homologou":      "homolog",
		"communism":      "commun",
		"activate":       "activ",
		"angulariti":     "angular",
		"homologous":     "homolog",
		"effective":      "effect",
		"bowdlerize":     "bowdler",
		"probate":        "probat",
		"rate":           "rate",
		"cease":          "ceas",
		"controll":       "control",
		"roll":           "roll",
		// domain words used throughout this repository
		"matching":    "match",
		"learning":    "learn",
		"databases":   "databas",
		"computation": "comput",
		"queries":     "queri",
		"keywords":    "keyword",
		"proceedings": "proceed",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortAndNonASCII(t *testing.T) {
	for _, w := range []string{"", "a", "it", "号号号", "naïve", "c3po!"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
	if got := Stem("2003"); got != "2003" {
		t.Errorf("digits must pass through, got %q", got)
	}
}

func TestEquivalent(t *testing.T) {
	pairs := [][2]string{
		{"match", "matching"},
		{"learn", "learning"},
		{"query", "queries"},
		{"compute", "computing"},
	}
	for _, p := range pairs {
		if !Equivalent(p[0], p[1]) {
			t.Errorf("Equivalent(%q,%q) = false", p[0], p[1])
		}
	}
	if Equivalent("database", "keyword") {
		t.Error("unrelated words reported equivalent")
	}
	if !Equivalent("x", "x") {
		t.Error("identity should be equivalent")
	}
}

// Property: stemming is idempotent on its own output for plain ASCII words,
// never lengthens a word, and never panics.
func TestPropertyStem(t *testing.T) {
	f := func(raw []byte) bool {
		w := make([]byte, 0, len(raw))
		for _, b := range raw {
			w = append(w, 'a'+b%26)
		}
		word := string(w)
		s := Stem(word)
		if len(s) > len(word) {
			return false
		}
		// Applying the stemmer twice may differ from once in rare Porter
		// edge cases, but must still terminate and not lengthen.
		return len(Stem(s)) <= len(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStem(b *testing.B) {
	words := []string{"relational", "matching", "computation", "proceedings", "effectiveness"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Stem(words[i%len(words)])
	}
}
