package tokenize

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTerm(t *testing.T) {
	for _, s := range []string{"xml", "a1", "2003", "database"} {
		if !Term(s) {
			t.Errorf("Term(%q) = false", s)
		}
	}
	for _, s := range []string{"", "XML", "data base", "on-line", "a.b"} {
		if Term(s) {
			t.Errorf("Term(%q) = true", s)
		}
	}
}

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"XML":       "xml",
		"On-Line":   "online",
		"  data  ":  "data",
		"!!!":       "",
		"C++":       "c",
		"Näive":     "näive",
		"2003":      "2003",
		"DataBase!": "database",
	}
	for in, want := range cases {
		if got := Normalize(in); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestText(t *testing.T) {
	got := Text("Efficient LCA Computation, for XML-Trees (2003)")
	want := []string{"efficient", "lca", "computation", "for", "xml", "trees", "2003"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Text = %v, want %v", got, want)
	}
	if got := Text("   "); len(got) != 0 {
		t.Errorf("Text(blank) = %v", got)
	}
}

func TestQuery(t *testing.T) {
	got := Query("on, line  Data\tBASE")
	want := []string{"on", "line", "data", "base"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Query = %v, want %v", got, want)
	}
	if got := Query(",,,"); len(got) != 0 {
		t.Errorf("Query(commas) = %v", got)
	}
}

func TestTag(t *testing.T) {
	if got := Tag("InProceedings"); got != "inproceedings" {
		t.Errorf("Tag = %q", got)
	}
}

// Property: Normalize is idempotent and its output always satisfies Term
// (or is empty).
func TestPropertyNormalizeIdempotent(t *testing.T) {
	f := func(s string) bool {
		n := Normalize(s)
		if n == "" {
			return true
		}
		return Term(n) && Normalize(n) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: every term produced by Text is a valid Term, and Text of a
// valid term is that term alone.
func TestPropertyTextTerms(t *testing.T) {
	f := func(s string) bool {
		for _, term := range Text(s) {
			if !Term(term) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	if got := Text("database"); len(got) != 1 || got[0] != "database" {
		t.Errorf("Text(term) = %v", got)
	}
}
