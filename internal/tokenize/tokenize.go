// Package tokenize extracts keywords from XML tag names and text values.
//
// Keyword matching in XRefine is case-insensitive and term-based: both the
// tag name of an element and every term inside its text value are keywords
// of that node. Tokenization is deliberately simple (Unicode
// letters/digits, lowercased) so that the same function governs index
// construction, query parsing and refinement-rule generation — any mismatch
// between those three would silently break keyword lookup.
package tokenize

import (
	"strings"
	"unicode"
)

// termRune reports whether r may appear in a canonical term: a digit, or a
// letter that is its own lowercase form (covers cased lowercase letters and
// caseless scripts such as CJK alike).
func termRune(r rune) bool {
	return unicode.IsDigit(r) || (unicode.IsLetter(r) && unicode.ToLower(r) == r)
}

// Term reports whether s is a single well-formed term: non-empty and made
// only of canonical term runes.
func Term(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !termRune(r) {
			return false
		}
	}
	return true
}

// Normalize lowercases s and strips everything but letters and digits,
// producing the canonical form of a single term. Letters with no canonical
// lowercase form (rare typographic variants) are dropped. It returns ""
// when nothing survives.
func Normalize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
			continue
		}
		if l := unicode.ToLower(r); termRune(l) {
			b.WriteRune(l)
		}
	}
	return b.String()
}

// Text splits free text into normalized terms. Runs of letters and digits
// form terms; everything else separates them.
func Text(s string) []string {
	var terms []string
	start := -1
	flush := func(end int) {
		if start >= 0 {
			if t := Normalize(s[start:end]); t != "" {
				terms = append(terms, t)
			}
			start = -1
		}
	}
	for i, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
		} else {
			flush(i)
		}
	}
	flush(len(s))
	return terms
}

// Query splits a user keyword query into normalized terms. Queries separate
// keywords with whitespace and commas; a keyword that normalizes to nothing
// is dropped.
func Query(s string) []string {
	fields := strings.FieldsFunc(s, func(r rune) bool {
		return unicode.IsSpace(r) || r == ','
	})
	terms := make([]string, 0, len(fields))
	for _, f := range fields {
		if t := Normalize(f); t != "" {
			terms = append(terms, t)
		}
	}
	return terms
}

// Tag normalizes an XML tag name into a keyword term.
func Tag(s string) string { return Normalize(s) }
