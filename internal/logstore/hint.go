package logstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// A hint file is the serialized net keydir contribution of one data file:
// one entry per key the segment still decides (last write wins inside the
// segment), so cold start replaces a full record scan with a single
// sequential read of a far smaller file.
//
//	[magic "XLH1"]
//	[count uvarint]
//	count × entry:
//	    put:    [kindPut]    [klen uvarint] [off uvarint] [size uvarint] [key]
//	    delete: [kindDelete] [klen uvarint] [key]
//	[dataSize uvarint] [txid uvarint] [epoch uvarint]
//	[crc32 uint32 LE over everything above]
//
// off/size locate the full record frame inside the data file, so a Get
// served off a hint-loaded keydir still CRC-verifies the record it reads.
// The dataSize footer field is the validity gate: a hint is trusted only
// when it equals the data file's current size, so a hint that predates a
// truncation or a tail append is ignored and the segment falls back to
// the scan path. Hints are written to a temp file and renamed into place;
// a torn hint write therefore leaves either no hint or a file whose
// trailing CRC fails — both of which mean "scan instead", never silent
// keydir corruption.

// hintMagic heads every hint file.
var hintMagic = [4]byte{'X', 'L', 'H', '1'}

// hintEntry is one keydir contribution in a hint file.
type hintEntry struct {
	kind byte // kindPut or kindDelete
	key  []byte
	off  int64  // put only: frame offset in the data file
	size uint32 // put only: full frame length
}

// hintFooter carries the data-file size the hint describes and the last
// committed txid/epoch at write time.
type hintFooter struct {
	dataSize int64
	txid     uint64
	epoch    uint64
}

// encodeHint serializes a complete hint file image.
func encodeHint(entries []hintEntry, ft hintFooter) []byte {
	buf := append([]byte(nil), hintMagic[:]...)
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	for _, e := range entries {
		buf = append(buf, e.kind)
		buf = binary.AppendUvarint(buf, uint64(len(e.key)))
		if e.kind == kindPut {
			buf = binary.AppendUvarint(buf, uint64(e.off))
			buf = binary.AppendUvarint(buf, uint64(e.size))
		}
		buf = append(buf, e.key...)
	}
	buf = binary.AppendUvarint(buf, uint64(ft.dataSize))
	buf = binary.AppendUvarint(buf, ft.txid)
	buf = binary.AppendUvarint(buf, ft.epoch)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf))
	return append(buf, crc[:]...)
}

// decodeHint parses and validates a complete hint file image. Any
// malformed input — short file, bad magic, bad trailing CRC, lengths that
// disagree with the payload — returns an error wrapping ErrCorrupt.
// Returned entry keys alias b.
func decodeHint(b []byte) ([]hintEntry, hintFooter, error) {
	if len(b) < len(hintMagic)+4 {
		return nil, hintFooter{}, fmt.Errorf("%w: hint file too short", ErrCorrupt)
	}
	payload, tail := b[:len(b)-4], b[len(b)-4:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(tail) {
		return nil, hintFooter{}, fmt.Errorf("%w: hint checksum mismatch", ErrCorrupt)
	}
	if [4]byte(payload[:4]) != hintMagic {
		return nil, hintFooter{}, fmt.Errorf("%w: bad hint magic", ErrCorrupt)
	}
	rest := payload[4:]
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, hintFooter{}, fmt.Errorf("%w: bad hint entry count", ErrCorrupt)
	}
	rest = rest[n:]
	// An entry costs at least 3 bytes; reject counts the payload cannot
	// hold before allocating for them.
	if count > uint64(len(rest)/3)+1 {
		return nil, hintFooter{}, fmt.Errorf("%w: hint entry count %d exceeds payload", ErrCorrupt, count)
	}
	entries := make([]hintEntry, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(rest) == 0 {
			return nil, hintFooter{}, fmt.Errorf("%w: hint truncated at entry %d", ErrCorrupt, i)
		}
		e := hintEntry{kind: rest[0]}
		rest = rest[1:]
		klen, n := binary.Uvarint(rest)
		if n <= 0 || klen > uint64(maxBodySize) {
			return nil, hintFooter{}, fmt.Errorf("%w: bad hint key length", ErrCorrupt)
		}
		rest = rest[n:]
		switch e.kind {
		case kindPut:
			off, n := binary.Uvarint(rest)
			if n <= 0 {
				return nil, hintFooter{}, fmt.Errorf("%w: bad hint offset", ErrCorrupt)
			}
			rest = rest[n:]
			size, n := binary.Uvarint(rest)
			if n <= 0 || size > maxBodySize+frameHeaderSize {
				return nil, hintFooter{}, fmt.Errorf("%w: bad hint record size", ErrCorrupt)
			}
			rest = rest[n:]
			e.off, e.size = int64(off), uint32(size)
		case kindDelete:
		default:
			return nil, hintFooter{}, fmt.Errorf("%w: unknown hint entry kind %d", ErrCorrupt, e.kind)
		}
		if klen > uint64(len(rest)) {
			return nil, hintFooter{}, fmt.Errorf("%w: hint key exceeds payload", ErrCorrupt)
		}
		e.key = rest[:klen]
		rest = rest[klen:]
		entries = append(entries, e)
	}
	var ft hintFooter
	ds, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, hintFooter{}, fmt.Errorf("%w: bad hint data size", ErrCorrupt)
	}
	rest = rest[n:]
	ft.dataSize = int64(ds)
	if ft.txid, n = binary.Uvarint(rest); n <= 0 {
		return nil, hintFooter{}, fmt.Errorf("%w: bad hint txid", ErrCorrupt)
	}
	rest = rest[n:]
	if ft.epoch, n = binary.Uvarint(rest); n <= 0 {
		return nil, hintFooter{}, fmt.Errorf("%w: bad hint epoch", ErrCorrupt)
	}
	if len(rest[n:]) != 0 {
		return nil, hintFooter{}, fmt.Errorf("%w: hint file has trailing bytes", ErrCorrupt)
	}
	return entries, ft, nil
}
