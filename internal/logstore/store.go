// Package logstore is the Bitcask-style log-structured storage engine: a
// directory of append-only segment data files holding CRC-framed records,
// an in-memory keydir mapping every key to its newest record's location,
// background compaction that rewrites live records into a fresh segment
// and deletes the dead ones, and hint files written at seal/compaction
// time so a cold start loads the keydir in milliseconds instead of
// replaying every record.
//
// The engine implements storage.Backend with the same transactional
// semantics as the B+tree kvstore: Put/Delete stage records in the active
// segment immediately (read-your-writes via the keydir), Commit appends a
// commit record and fsyncs, Rollback truncates the staged suffix and
// rewinds the keydir, and recovery discards everything after the last
// durable commit record. The index layers above are backend-agnostic and
// produce byte-identical query responses over either engine.
package logstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"xrefine/internal/storage"
)

// Typed state errors, mirroring the kvstore set.
var (
	ErrClosed   = errors.New("logstore: store is closed")
	ErrReadOnly = errors.New("logstore: store is read-only")
	ErrTooLarge = errors.New("logstore: key+value too large")
)

const (
	// DefaultSegmentTarget is the active-segment rotation threshold.
	DefaultSegmentTarget = 4 << 20
	// maxKV bounds a key+value payload; far above any index chunk (the
	// persistence layers budget chunks well below this) and safely under
	// the codec's maxBodySize.
	maxKV = 1 << 24
	// manifestName is the segment-list file in the store directory. It is
	// the source of truth for which data files exist and in what replay
	// order; files not listed are leftovers of an interrupted rotation or
	// compaction and are deleted at open.
	manifestName = "MANIFEST"
	// kdEntryOverhead approximates the per-entry bookkeeping bytes of the
	// keydir (map header share + entry struct + string header), used for
	// the resident-bytes stat.
	kdEntryOverhead = 64
	// minCompactDead is the floor of reclaimable sealed bytes below which
	// auto-compaction never triggers — merging a near-empty store churns
	// files for no visible gain.
	minCompactDead = 64 << 10
)

// Options configure Open.
type Options struct {
	// ReadOnly opens without write access: no truncation of torn tails,
	// no compaction, mutating calls return ErrReadOnly.
	ReadOnly bool
	// Faults interposes the fault-injection harness on record appends,
	// record reads, and hint-file writes.
	Faults *storage.Faults
	// SegmentTarget rotates the active segment once it exceeds this many
	// bytes (0 = DefaultSegmentTarget).
	SegmentTarget int64
	// NoAutoCompact disables the post-commit compaction trigger; Compact
	// and Checkpoint still merge when called.
	NoAutoCompact bool
	// IgnoreHints forces full data-file replay on open even when valid
	// hint files exist — the cold-start benchmark baseline.
	IgnoreHints bool
}

// kdEntry locates a key's newest record: segment, frame offset, and full
// frame length.
type kdEntry struct {
	seg  uint32
	off  int64
	size uint32
}

// segment is one open data file.
type segment struct {
	id   uint32
	name string
	f    *os.File
	size int64 // logical size: committed + staged bytes
	live int64 // bytes of frames the keydir still references
	recs int64 // frames written (approximate after a hint load)
}

// manifest is the on-disk segment list, written atomically via rename.
type manifest struct {
	Version  int      `json:"version"`
	Next     uint32   `json:"next"`
	Segments []string `json:"segments"`
}

// undoEntry records how to rewind one staged keydir change.
type undoEntry struct {
	key string
	had bool
	old kdEntry
}

// Store is a log-structured key-value store over one directory.
type Store struct {
	dir       string
	readOnly  bool
	faults    *storage.Faults
	segTarget int64
	noAuto    bool

	mu         sync.RWMutex
	closed     bool
	keydir     map[string]kdEntry
	sortedKeys []string
	sorted     bool
	segs       []*segment // replay order; the last one is active
	nextID     uint32
	keyBytes   int64

	txid     uint64
	epoch    uint64
	committed bool
	txnStart int64  // active-segment size at batch start
	txnEpoch uint64 // committed epoch, restored on Rollback
	pending  uint64 // staged records in the open batch
	undo     []undoEntry

	hintLoads int
	scanLoads int

	compactMu     sync.Mutex  // serializes merge passes
	compacting    atomic.Bool // an auto-compaction goroutine is in flight
	wg            sync.WaitGroup
	compactions   atomic.Int64
	compactErrors atomic.Int64
	rotateErrors  atomic.Int64
}

var _ storage.Backend = (*Store)(nil)

func segDataName(id uint32) string { return fmt.Sprintf("seg-%08d.data", id) }

func segHintName(name string) string {
	return strings.TrimSuffix(name, ".data") + ".hint"
}

// Open opens (or, when writable, creates) a log store directory.
func Open(dir string, opts *Options) (*Store, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	if o.SegmentTarget <= 0 {
		o.SegmentTarget = DefaultSegmentTarget
	}
	s := &Store{
		dir:       dir,
		readOnly:  o.ReadOnly,
		faults:    o.Faults,
		segTarget: o.SegmentTarget,
		noAuto:    o.NoAutoCompact,
		keydir:    make(map[string]kdEntry),
		committed: true,
	}
	if !s.readOnly {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	names, next, haveManifest, err := s.readManifest()
	if err != nil {
		return nil, err
	}
	s.nextID = next
	if !s.readOnly {
		s.cleanStray(names)
	}
	for _, name := range names {
		seg, err := s.openSegment(name)
		if err != nil {
			s.closeSegs()
			return nil, err
		}
		s.segs = append(s.segs, seg)
		if seg.id >= s.nextID {
			s.nextID = seg.id + 1
		}
	}
	for i, seg := range s.segs {
		last := i == len(s.segs)-1
		if !o.IgnoreHints && s.loadHint(seg) {
			continue
		}
		if err := s.scanSegment(seg, last); err != nil {
			s.closeSegs()
			return nil, err
		}
	}
	if len(s.segs) == 0 {
		if s.readOnly {
			return nil, fmt.Errorf("logstore: %s: empty or missing store opened read-only", dir)
		}
		if err := s.addSegmentLocked(); err != nil {
			return nil, err
		}
	} else if !haveManifest && !s.readOnly {
		// Adopted from a bare listing: record what we found.
		if err := s.writeManifestLocked(); err != nil {
			s.closeSegs()
			return nil, err
		}
	}
	s.txnStart = s.activeLocked().size
	s.txnEpoch = s.epoch
	return s, nil
}

// readManifest returns the segment names in replay order, the next free
// segment id, and whether a manifest file was present. With no manifest
// the directory listing (ascending name = ascending id) is adopted.
func (s *Store) readManifest() ([]string, uint32, bool, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, manifestName))
	if err == nil {
		var m manifest
		if jerr := json.Unmarshal(data, &m); jerr != nil {
			return nil, 0, false, fmt.Errorf("%w: manifest: %v", ErrCorrupt, jerr)
		}
		if m.Version != 1 {
			return nil, 0, false, fmt.Errorf("%w: manifest version %d", ErrCorrupt, m.Version)
		}
		return m.Segments, m.Next, true, nil
	}
	if !errors.Is(err, fs.ErrNotExist) {
		return nil, 0, false, err
	}
	ents, derr := os.ReadDir(s.dir)
	if derr != nil {
		if errors.Is(derr, fs.ErrNotExist) && s.readOnly {
			return nil, 0, false, derr
		}
		if errors.Is(derr, fs.ErrNotExist) {
			return nil, 1, false, nil
		}
		return nil, 0, false, derr
	}
	var names []string
	for _, ent := range ents {
		if n := ent.Name(); strings.HasPrefix(n, "seg-") && strings.HasSuffix(n, ".data") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, 1, false, nil
}

// cleanStray removes temp files and data/hint files the manifest does not
// know about — the debris of a rotation or compaction that did not reach
// its manifest write.
func (s *Store) cleanStray(names []string) {
	keep := make(map[string]bool, 2*len(names)+1)
	keep[manifestName] = true
	for _, n := range names {
		keep[n] = true
		keep[segHintName(n)] = true
	}
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, ent := range ents {
		if !keep[ent.Name()] {
			os.Remove(filepath.Join(s.dir, ent.Name()))
		}
	}
}

func (s *Store) openSegment(name string) (*segment, error) {
	flags := os.O_RDWR
	if s.readOnly {
		flags = os.O_RDONLY
	}
	f, err := os.OpenFile(filepath.Join(s.dir, name), flags, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	id := uint32(0)
	fmt.Sscanf(name, "seg-%08d.data", &id)
	return &segment{id: id, name: name, f: f, size: st.Size()}, nil
}

// loadHint tries the hint fast path for one segment and reports success.
// A missing, corrupt, or stale hint (its recorded data size disagrees
// with the file) simply sends the segment down the scan path.
func (s *Store) loadHint(seg *segment) bool {
	data, err := os.ReadFile(filepath.Join(s.dir, segHintName(seg.name)))
	if err != nil {
		return false
	}
	entries, ft, err := decodeHint(data)
	if err != nil || ft.dataSize != seg.size {
		return false
	}
	for _, e := range entries {
		switch e.kind {
		case kindPut:
			s.kdSet(string(e.key), kdEntry{seg: seg.id, off: e.off, size: e.size})
		case kindDelete:
			s.kdDel(string(e.key))
		}
	}
	seg.recs = int64(len(entries))
	s.txid, s.epoch = ft.txid, ft.epoch
	s.hintLoads++
	return true
}

// scanSegment replays one data file into the keydir. Keydir changes apply
// only at commit records; the suffix after the last commit — an
// uncommitted batch or a torn tail — is truncated away on the writable
// last segment, ignored on a read-only one, and a typed corruption error
// on any sealed segment (sealed files always end at a commit record).
func (s *Store) scanSegment(seg *segment, last bool) error {
	data, err := os.ReadFile(filepath.Join(s.dir, seg.name))
	if err != nil {
		return err
	}
	type stagedOp struct {
		key  string
		del  bool
		off  int64
		size uint32
	}
	var (
		batch         []stagedOp
		off           int64
		lastCommitEnd int64
		recs          int64
		commitRecs    int64 // frames up to and including the last commit
	)
	for int(off) < len(data) {
		body, n, ferr := decodeFrame(data[off:])
		if ferr != nil {
			err = ferr
			break
		}
		rec, perr := parseRecord(body)
		if perr != nil {
			err = perr
			break
		}
		switch rec.kind {
		case kindPut:
			batch = append(batch, stagedOp{key: string(rec.key), off: off, size: uint32(n)})
		case kindDelete:
			batch = append(batch, stagedOp{key: string(rec.key), del: true})
		case kindCommit:
			for _, op := range batch {
				if op.del {
					s.kdDel(op.key)
				} else {
					s.kdSet(op.key, kdEntry{seg: seg.id, off: op.off, size: op.size})
				}
			}
			batch = batch[:0]
			s.txid, s.epoch = rec.txid, rec.epoch
			lastCommitEnd = off + int64(n)
			commitRecs = recs + 1
		}
		recs++
		off += int64(n)
	}
	if err != nil || lastCommitEnd < seg.size {
		if !last {
			if err == nil {
				err = fmt.Errorf("%w: sealed segment %s has an uncommitted suffix", ErrCorrupt, seg.name)
			}
			return fmt.Errorf("logstore: sealed segment %s: %w", seg.name, err)
		}
		if !s.readOnly {
			if terr := seg.f.Truncate(lastCommitEnd); terr != nil {
				return terr
			}
		}
		seg.size = lastCommitEnd
		// The truncated suffix's frames no longer exist on disk; counting
		// them would overstate DeadRecords in StorageStats.
		recs = commitRecs
	}
	seg.recs = recs
	s.scanLoads++
	return nil
}

func (s *Store) closeSegs() {
	for _, seg := range s.segs {
		seg.f.Close()
	}
}

func (s *Store) activeLocked() *segment { return s.segs[len(s.segs)-1] }

func (s *Store) segByID(id uint32) *segment {
	for _, seg := range s.segs {
		if seg.id == id {
			return seg
		}
	}
	return nil
}

// kdSet installs a keydir entry, maintaining live-byte and key-byte
// accounting, and returns what it replaced.
func (s *Store) kdSet(key string, e kdEntry) (old kdEntry, had bool) {
	old, had = s.keydir[key]
	if had {
		if seg := s.segByID(old.seg); seg != nil {
			seg.live -= int64(old.size)
		}
	} else {
		s.keyBytes += int64(len(key))
		s.sorted = false
	}
	if seg := s.segByID(e.seg); seg != nil {
		seg.live += int64(e.size)
	}
	s.keydir[key] = e
	return old, had
}

// kdDel removes a keydir entry, maintaining the same accounting.
func (s *Store) kdDel(key string) (old kdEntry, had bool) {
	old, had = s.keydir[key]
	if !had {
		return old, false
	}
	if seg := s.segByID(old.seg); seg != nil {
		seg.live -= int64(old.size)
	}
	s.keyBytes -= int64(len(key))
	delete(s.keydir, key)
	s.sorted = false
	return old, true
}

// beginTxnLocked snapshots the rollback point when a new batch starts.
func (s *Store) beginTxnLocked() {
	if !s.committed {
		return
	}
	s.committed = false
	s.txnStart = s.activeLocked().size
	s.txnEpoch = s.epoch
	s.undo = s.undo[:0]
	s.pending = 0
}

// writeActiveLocked appends one frame to the active segment, routing the
// bytes through the fault harness. A torn write persists only the
// surviving prefix but still advances the logical size — the lost suffix
// reads back as a hole for the record CRC to catch, exactly like a real
// half-flushed append.
func (s *Store) writeActiveLocked(frame []byte) error {
	active := s.activeLocked()
	data := frame
	if s.faults != nil {
		out, err := s.faults.OnWrite(frame)
		if err != nil {
			return fmt.Errorf("logstore: append %s: %w", active.name, err)
		}
		data = out
	}
	if len(data) > 0 {
		if _, err := active.f.WriteAt(data, active.size); err != nil {
			return err
		}
	}
	active.size += int64(len(frame))
	active.recs++
	return nil
}

// readRecordLocked reads and verifies the record frame a keydir entry
// points at. Called with at least a read lock held, which also blocks
// compaction from closing the segment file mid-read.
func (s *Store) readRecordLocked(e kdEntry) (record, error) {
	if s.faults != nil {
		if err := s.faults.OnRead(); err != nil {
			return record{}, fmt.Errorf("logstore: read segment %d @%d: %w", e.seg, e.off, err)
		}
	}
	seg := s.segByID(e.seg)
	if seg == nil {
		return record{}, fmt.Errorf("%w: keydir entry references missing segment %d", ErrCorrupt, e.seg)
	}
	buf := make([]byte, e.size)
	if _, err := seg.f.ReadAt(buf, e.off); err != nil {
		return record{}, fmt.Errorf("logstore: read %s @%d: %w", seg.name, e.off, err)
	}
	body, n, err := decodeFrame(buf)
	if err != nil || n != len(buf) {
		if err == nil {
			err = fmt.Errorf("%w: frame length disagrees with keydir", ErrCorrupt)
		}
		return record{}, fmt.Errorf("logstore: %s @%d: %w", seg.name, e.off, err)
	}
	rec, err := parseRecord(body)
	if err != nil {
		return record{}, fmt.Errorf("logstore: %s @%d: %w", seg.name, e.off, err)
	}
	if rec.kind != kindPut {
		return record{}, fmt.Errorf("%w: keydir entry references a non-put record", ErrCorrupt)
	}
	return rec, nil
}

// Get returns the value stored under key.
func (s *Store) Get(key []byte) ([]byte, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	e, ok := s.keydir[string(key)]
	if !ok {
		return nil, false, nil
	}
	rec, err := s.readRecordLocked(e)
	if err != nil {
		return nil, false, err
	}
	return append([]byte(nil), rec.value...), true, nil
}

// Put stages value under key in the active segment.
func (s *Store) Put(key, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return ErrClosed
	case s.readOnly:
		return ErrReadOnly
	case len(key)+len(value) > maxKV:
		return ErrTooLarge
	}
	s.beginTxnLocked()
	active := s.activeLocked()
	off := active.size
	frame := appendPut(nil, key, value)
	if err := s.writeActiveLocked(frame); err != nil {
		return err
	}
	k := string(key)
	old, had := s.kdSet(k, kdEntry{seg: active.id, off: off, size: uint32(len(frame))})
	s.undo = append(s.undo, undoEntry{key: k, had: had, old: old})
	s.pending++
	return nil
}

// Delete stages removal of key, reporting whether it was present.
func (s *Store) Delete(key []byte) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return false, ErrClosed
	case s.readOnly:
		return false, ErrReadOnly
	}
	k := string(key)
	if _, ok := s.keydir[k]; !ok {
		return false, nil
	}
	s.beginTxnLocked()
	if err := s.writeActiveLocked(appendDelete(nil, key)); err != nil {
		return false, err
	}
	old, _ := s.kdDel(k)
	s.undo = append(s.undo, undoEntry{key: k, had: true, old: old})
	s.pending++
	return true, nil
}

// DeleteRange removes every key in [lo, hi), returning how many existed.
// Keys are collected first, then deleted, mirroring the kvstore contract
// that Range callbacks must not mutate the store.
func (s *Store) DeleteRange(lo, hi []byte) (int, error) {
	var keys [][]byte
	if err := s.Range(lo, hi, func(k, v []byte) bool {
		keys = append(keys, append([]byte(nil), k...))
		return true
	}); err != nil {
		return 0, err
	}
	for _, k := range keys {
		if _, err := s.Delete(k); err != nil {
			return 0, err
		}
	}
	return len(keys), nil
}

// rebuildSortedLocked re-derives the ordered key list from the keydir.
func (s *Store) rebuildSortedLocked() {
	keys := s.sortedKeys[:0]
	if cap(keys) < len(s.keydir) {
		keys = make([]string, 0, len(s.keydir))
	}
	for k := range s.keydir {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s.sortedKeys = keys
	s.sorted = true
}

// Range calls fn for every key in [lo, hi) in ascending byte order; nil
// hi means "to the end". The log layout has no native key order, so the
// keydir keeps a lazily re-sorted key list: mutations that change the key
// set invalidate it, the next Range rebuilds it once.
func (s *Store) Range(lo, hi []byte, fn func(k, v []byte) bool) error {
	s.mu.RLock()
	for {
		if s.closed {
			s.mu.RUnlock()
			return ErrClosed
		}
		if s.sorted {
			break
		}
		s.mu.RUnlock()
		s.mu.Lock()
		if !s.closed && !s.sorted {
			s.rebuildSortedLocked()
		}
		s.mu.Unlock()
		s.mu.RLock()
	}
	defer s.mu.RUnlock()
	keys := s.sortedKeys
	i := sort.SearchStrings(keys, string(lo))
	end := ""
	for ; i < len(keys); i++ {
		k := keys[i]
		if hi != nil {
			if end == "" {
				end = string(hi)
			}
			if k >= end {
				break
			}
		}
		e, ok := s.keydir[k]
		if !ok {
			continue
		}
		rec, err := s.readRecordLocked(e)
		if err != nil {
			return err
		}
		if !fn([]byte(k), rec.value) {
			break
		}
	}
	return nil
}

// Commit appends a commit record and fsyncs the active segment, making
// the staged batch durable, then considers rotation and compaction.
func (s *Store) Commit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return ErrClosed
	case s.readOnly:
		return ErrReadOnly
	case s.committed:
		return nil
	}
	if err := s.writeActiveLocked(appendCommit(nil, s.txid+1, s.epoch, s.pending)); err != nil {
		return err
	}
	if err := s.activeLocked().f.Sync(); err != nil {
		return err
	}
	s.txid++
	s.committed = true
	s.txnStart = s.activeLocked().size
	s.txnEpoch = s.epoch
	s.undo = s.undo[:0]
	s.pending = 0
	if s.activeLocked().size >= s.segTarget {
		if err := s.rotateLocked(); err != nil {
			s.rotateErrors.Add(1) // retried at the next commit
		}
	}
	s.maybeCompactLocked()
	return nil
}

// Rollback truncates the staged suffix off the active segment and rewinds
// the keydir to the committed state.
func (s *Store) Rollback() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return ErrClosed
	case s.readOnly:
		return ErrReadOnly
	case s.committed:
		return nil
	}
	active := s.activeLocked()
	if err := active.f.Truncate(s.txnStart); err != nil {
		return err
	}
	active.recs -= int64(s.pending)
	active.size = s.txnStart
	for i := len(s.undo) - 1; i >= 0; i-- {
		u := s.undo[i]
		if u.had {
			s.kdSet(u.key, u.old)
		} else {
			s.kdDel(u.key)
		}
	}
	s.epoch = s.txnEpoch
	s.undo = s.undo[:0]
	s.pending = 0
	s.committed = true
	return nil
}

// Checkpoint folds the store down to its minimal durable form: commit,
// seal the active segment (writing its hint), and merge every sealed
// segment into one hinted file. After a checkpoint, reopening loads the
// whole keydir from hint files plus a scan of one empty active segment —
// the cold-start fast path — and the caller may discard any replayed WAL
// prefix, because the log itself now carries the committed state.
func (s *Store) Checkpoint() error {
	if err := s.Commit(); err != nil {
		return err
	}
	s.mu.Lock()
	var err error
	if !s.closed && !s.readOnly && s.activeLocked().size > 0 {
		err = s.rotateLocked()
	}
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return s.Compact()
}

// Sync forces buffered writes of the active segment to stable storage.
func (s *Store) Sync() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	if s.readOnly {
		return nil
	}
	return s.activeLocked().f.Sync()
}

// Epoch returns the application epoch of the last commit (or staged by
// SetEpoch since).
func (s *Store) Epoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// SetEpoch stages an application epoch, published by the next Commit.
func (s *Store) SetEpoch(e uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return ErrClosed
	case s.readOnly:
		return ErrReadOnly
	}
	if s.epoch != e {
		s.beginTxnLocked()
		s.epoch = e
	}
	return nil
}

// Len returns the number of stored keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.keydir)
}

// MaxKV returns the largest key+value payload the store accepts.
func (s *Store) MaxKV() int { return maxKV }

// DropCaches is a no-op: the log engine keeps no decoded cache — every
// read goes to the OS page cache through the record CRC.
func (s *Store) DropCaches() {}

// Kind names the engine: "log".
func (s *Store) Kind() storage.Kind { return storage.KindLog }

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// StorageStats returns the engine statistics snapshot.
func (s *Store) StorageStats() storage.Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := storage.Stats{
		Kind:          storage.KindLog,
		Keys:          len(s.keydir),
		Txid:          s.txid,
		Epoch:         s.epoch,
		Segments:      len(s.segs),
		LiveRecords:   int64(len(s.keydir)),
		KeydirEntries: len(s.keydir),
		KeydirBytes:   s.keyBytes + int64(len(s.keydir))*kdEntryOverhead,
		Compactions:   s.compactions.Load(),
		HintLoads:     s.hintLoads,
		ScanLoads:     s.scanLoads,
	}
	var recs int64
	for _, seg := range s.segs {
		st.DiskBytes += seg.size
		st.LiveBytes += seg.live
		recs += seg.recs
	}
	st.DeadBytes = st.DiskBytes - st.LiveBytes
	if d := recs - st.LiveRecords; d > 0 {
		st.DeadRecords = d
	}
	return st
}

// Close commits pending changes (when writable), waits out any in-flight
// compaction, and releases the segment files.
func (s *Store) Close() error {
	var err error
	if !s.readOnly {
		if cerr := s.Commit(); cerr != nil && !errors.Is(cerr, ErrClosed) {
			err = cerr
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return err
	}
	s.closed = true
	s.mu.Unlock()
	s.wg.Wait() // an in-flight compaction sees closed at swap and aborts
	s.mu.Lock()
	s.closeSegs()
	s.mu.Unlock()
	return err
}

// writeManifestLocked atomically replaces the manifest with the current
// segment list.
func (s *Store) writeManifestLocked() error {
	m := manifest{Version: 1, Next: s.nextID}
	for _, seg := range s.segs {
		m.Segments = append(m.Segments, seg.name)
	}
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return writeFileAtomic(s.dir, manifestName, data)
}

// writeFileAtomic writes name in dir via a temp file and rename, syncing
// the file and (best-effort) the directory.
func writeFileAtomic(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return err
	}
	if _, err = tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a just-renamed file survives power loss.
// Best effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// addSegmentLocked creates the next data file, appends it as the active
// segment, and records it in the manifest.
func (s *Store) addSegmentLocked() error {
	id := s.nextID
	name := segDataName(id)
	f, err := os.OpenFile(filepath.Join(s.dir, name), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	s.nextID++
	syncDir(s.dir)
	s.segs = append(s.segs, &segment{id: id, name: name, f: f})
	if err := s.writeManifestLocked(); err != nil {
		s.segs = s.segs[:len(s.segs)-1]
		f.Close()
		os.Remove(filepath.Join(s.dir, name))
		return err
	}
	return nil
}

// rotateLocked seals the active segment — writing its hint file so cold
// start skips its replay — and opens a fresh one. Called only between
// commits (the staged batch always lives wholly in one segment).
func (s *Store) rotateLocked() error {
	active := s.activeLocked()
	if active.size == 0 {
		return nil
	}
	if err := s.writeHintForLocked(active); err != nil {
		// A sealed segment without a hint just replays at open; the seal
		// itself must not fail on a hint fault.
		s.rotateErrors.Add(1)
	}
	if err := s.addSegmentLocked(); err != nil {
		return err
	}
	s.txnStart = 0
	return nil
}

// writeHintForLocked derives the net keydir contribution of one sealed
// segment by re-scanning its (page-cached) records, and writes the hint
// file beside it.
func (s *Store) writeHintForLocked(seg *segment) error {
	data, err := os.ReadFile(filepath.Join(s.dir, seg.name))
	if err != nil {
		return err
	}
	if int64(len(data)) > seg.size {
		data = data[:seg.size]
	}
	type netOp struct {
		del  bool
		off  int64
		size uint32
	}
	net := make(map[string]netOp)
	type stagedOp struct {
		key string
		op  netOp
	}
	var batch []stagedOp
	var off int64
	for int(off) < len(data) {
		body, n, ferr := decodeFrame(data[off:])
		if ferr != nil {
			return fmt.Errorf("logstore: hint scan %s: %w", seg.name, ferr)
		}
		rec, perr := parseRecord(body)
		if perr != nil {
			return fmt.Errorf("logstore: hint scan %s: %w", seg.name, perr)
		}
		switch rec.kind {
		case kindPut:
			batch = append(batch, stagedOp{key: string(rec.key), op: netOp{off: off, size: uint32(n)}})
		case kindDelete:
			batch = append(batch, stagedOp{key: string(rec.key), op: netOp{del: true}})
		case kindCommit:
			for _, op := range batch {
				net[op.key] = op.op
			}
			batch = batch[:0]
		}
		off += int64(n)
	}
	keys := make([]string, 0, len(net))
	for k := range net {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	entries := make([]hintEntry, 0, len(keys))
	for _, k := range keys {
		op := net[k]
		e := hintEntry{kind: kindPut, key: []byte(k), off: op.off, size: op.size}
		if op.del {
			e = hintEntry{kind: kindDelete, key: []byte(k)}
		}
		entries = append(entries, e)
	}
	return s.writeHintFile(seg.name, entries, hintFooter{
		dataSize: seg.size,
		txid:     s.txid,
		epoch:    s.epoch,
	})
}

// writeHintFile encodes and atomically writes one hint file, routing the
// image through the fault harness: a torn hint write leaves a file whose
// trailing CRC fails, which open treats as "scan instead".
func (s *Store) writeHintFile(segName string, entries []hintEntry, ft hintFooter) error {
	image := encodeHint(entries, ft)
	name := segHintName(segName)
	if s.faults != nil {
		out, err := s.faults.OnWrite(image)
		if err != nil {
			return fmt.Errorf("logstore: write %s: %w", name, err)
		}
		image = out
	}
	return writeFileAtomic(s.dir, name, image)
}
