package logstore

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"xrefine/internal/storage"
)

// The crash matrix: torn-write and fail-write injection at every write
// site of the engine — mid-append, mid-compaction, mid-hint-write — must
// leave a store that reopens at the last committed state. These mirror
// the kvstore's TestFaultsTornWriteRecoversPreviousCommit at the backend
// interface, which is where the harness now lives.

// crash simulates the process dying: segment files are released with no
// commit, no rollback, no hint or manifest maintenance.
func crash(s *Store) {
	s.mu.Lock()
	s.closeSegs()
	s.closed = true
	s.mu.Unlock()
}

// seedStore opens a faulted store with one committed generation of data.
func seedStore(t *testing.T, dir string, f *storage.Faults) *Store {
	t.Helper()
	s := openTest(t, dir, &Options{Faults: f, NoAutoCompact: true, SegmentTarget: 4 << 10})
	for i := 0; i < 30; i++ {
		mustPut(t, s, fmt.Sprintf("base-%03d", i), fmt.Sprintf("gen1-%03d", i))
	}
	if err := s.Commit(); err != nil {
		t.Fatalf("seed Commit: %v", err)
	}
	return s
}

func checkGen1(t *testing.T, s *Store) {
	t.Helper()
	for i := 0; i < 30; i++ {
		mustGet(t, s, fmt.Sprintf("base-%03d", i), fmt.Sprintf("gen1-%03d", i))
	}
}

func TestTornWriteMidAppendRecoversPreviousCommit(t *testing.T) {
	for _, tearAt := range []struct {
		name string
		nth  int64 // which write of the second batch tears
	}{
		{"first record of the batch", 1},
		{"commit record", 3}, // two puts, then the commit frame
	} {
		t.Run(tearAt.name, func(t *testing.T) {
			dir := t.TempDir()
			f := &storage.Faults{}
			s := seedStore(t, dir, f)

			f.TornWrite(tearAt.nth)
			mustPut(t, s, "base-000", "gen2")
			mustPut(t, s, "new-key", "gen2")
			// The tear is silent: every call, Commit included, reports
			// success, exactly like a crash that loses half a flush.
			if err := s.Commit(); err != nil {
				t.Fatalf("Commit with torn write reported failure: %v", err)
			}
			if f.Injected() == 0 {
				t.Fatal("torn-write failpoint never fired")
			}
			crash(s)

			r := openTest(t, dir, nil)
			defer r.Close()
			checkGen1(t, r)
			mustAbsent(t, r, "new-key")
		})
	}
}

func TestFailWriteMidAppendLeavesStoreRollbackable(t *testing.T) {
	dir := t.TempDir()
	f := &storage.Faults{}
	s := seedStore(t, dir, f)

	f.FailWrites(1)
	if err := s.Put([]byte("doomed"), []byte("v")); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("Put under fail-write = %v, want ErrInjected", err)
	}
	f.Clear()
	if err := s.Rollback(); err != nil {
		t.Fatalf("Rollback after failed write: %v", err)
	}
	checkGen1(t, s)
	mustAbsent(t, s, "doomed")
	crash(s)

	r := openTest(t, dir, nil)
	defer r.Close()
	checkGen1(t, r)
}

// compactableStore seeds two generations across several sealed segments so
// a compaction pass has real work: dead records to drop and live records
// to carry.
func compactableStore(t *testing.T, dir string, f *storage.Faults) *Store {
	t.Helper()
	s := openTest(t, dir, &Options{Faults: f, NoAutoCompact: true, SegmentTarget: 2 << 10})
	for gen := 1; gen <= 2; gen++ {
		for i := 0; i < 30; i++ {
			mustPut(t, s, fmt.Sprintf("base-%03d", i), genValue(gen, i))
		}
		if err := s.Commit(); err != nil {
			t.Fatalf("Commit gen %d: %v", gen, err)
		}
	}
	if s.StorageStats().Segments < 3 {
		t.Fatal("test store did not rotate enough segments")
	}
	return s
}

// genValue pads values enough that two generations of 30 keys span
// several 2 KiB segments.
func genValue(gen, i int) string {
	return fmt.Sprintf("gen%d-%03d-%s", gen, i, strings.Repeat("z", 200))
}

func checkGen2(t *testing.T, s *Store) {
	t.Helper()
	for i := 0; i < 30; i++ {
		mustGet(t, s, fmt.Sprintf("base-%03d", i), genValue(2, i))
	}
}

func TestFaultsMidCompactionAbortAndRecover(t *testing.T) {
	cases := []struct {
		name string
		arm  func(f *storage.Faults)
	}{
		// Merge reads: every record copy reads the sealed source frame.
		{"fail-read", func(f *storage.Faults) { f.FailReads(2) }},
		// Merge writes: the buffered flush of the merged segment fails.
		{"fail-write", func(f *storage.Faults) { f.FailWrites(1) }},
		// Merge writes tear: the merged file is half-garbage. The pass
		// must catch this itself in the verify re-read — silently
		// swapping in a torn merge would corrupt committed data.
		{"torn-write", func(f *storage.Faults) { f.TornWrite(1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			f := &storage.Faults{}
			s := compactableStore(t, dir, f)

			tc.arm(f)
			if err := s.Compact(); err == nil {
				t.Fatal("Compact with armed faults reported success")
			}
			f.Clear()
			// The store keeps serving the committed state in-process...
			checkGen2(t, s)
			if st := s.StorageStats(); st.Compactions != 0 {
				t.Fatalf("aborted pass counted as a compaction: %d", st.Compactions)
			}
			crash(s)
			// ...and across a crash: the half-built merge file is an
			// unlisted stray, cleaned at open.
			r := openTest(t, dir, nil)
			defer r.Close()
			checkGen2(t, r)

			// The engine heals: the next pass succeeds and drops gen1.
			if err := r.Compact(); err != nil {
				t.Fatalf("Compact after recovery: %v", err)
			}
			checkGen2(t, r)
		})
	}
}

// A compaction pass that overlaps an open uncommitted batch must carry
// the committed records the batch shadows (reachable only through the
// undo log) into the merged segment. Otherwise deleting the old segments
// destroys the last committed version of every staged key: Rollback
// restores keydir entries pointing at missing files, and a crash before
// Commit loses the committed values from disk entirely.
func TestCompactWithOpenBatchThenRollback(t *testing.T) {
	dir := t.TempDir()
	s := compactableStore(t, dir, &storage.Faults{})
	defer s.Close()

	// Stage — without committing — a put and a delete over keys whose
	// committed records sit in sealed segments.
	mustPut(t, s, "base-000", "staged")
	if ok, err := s.Delete([]byte("base-001")); err != nil || !ok {
		t.Fatalf("Delete(base-001) = %v, %v", ok, err)
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact with open batch: %v", err)
	}
	mustGet(t, s, "base-000", "staged") // read-your-writes survives the swap
	mustAbsent(t, s, "base-001")
	if err := s.Rollback(); err != nil {
		t.Fatalf("Rollback after compaction: %v", err)
	}
	checkGen2(t, s)
}

func TestCompactWithOpenBatchThenCrashRecoversCommit(t *testing.T) {
	dir := t.TempDir()
	s := compactableStore(t, dir, &storage.Faults{})

	mustPut(t, s, "base-000", "staged")
	if ok, err := s.Delete([]byte("base-001")); err != nil || !ok {
		t.Fatalf("Delete(base-001) = %v, %v", ok, err)
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact with open batch: %v", err)
	}
	crash(s) // the batch never commits

	r := openTest(t, dir, nil)
	defer r.Close()
	checkGen2(t, r)
}

// The committed state a compaction merges while a batch is open must also
// commit cleanly afterwards: the staged records in the active segment win
// over the merged copies in replay order.
func TestCompactWithOpenBatchThenCommit(t *testing.T) {
	dir := t.TempDir()
	s := compactableStore(t, dir, &storage.Faults{})

	mustPut(t, s, "base-000", "staged")
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact with open batch: %v", err)
	}
	if err := s.Commit(); err != nil {
		t.Fatalf("Commit after compaction: %v", err)
	}
	mustGet(t, s, "base-000", "staged")
	crash(s)

	r := openTest(t, dir, nil)
	defer r.Close()
	mustGet(t, r, "base-000", "staged")
	for i := 1; i < 30; i++ {
		mustGet(t, r, fmt.Sprintf("base-%03d", i), genValue(2, i))
	}
}

func TestTornHintWriteFallsBackToScan(t *testing.T) {
	dir := t.TempDir()
	f := &storage.Faults{}
	s := compactableStore(t, dir, f)

	// The merge data flushes first (one buffered write), then the hint
	// image: tear the hint. Compaction reports success — the data file is
	// intact and verified; only the cold-start shortcut is damaged, and
	// damaged in a way the hint CRC detects.
	f.TornWrite(2)
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact with torn hint write: %v", err)
	}
	if f.Injected() == 0 {
		t.Fatal("torn-write failpoint never fired")
	}
	f.Clear()
	checkGen2(t, s)
	crash(s)

	r := openTest(t, dir, nil)
	defer r.Close()
	checkGen2(t, r)
	if st := r.StorageStats(); st.ScanLoads < 1 {
		t.Fatalf("expected the merged segment to fall back to the scan path, got %d scans", st.ScanLoads)
	}
}

func TestFailedHintWriteAbortsCompaction(t *testing.T) {
	dir := t.TempDir()
	f := &storage.Faults{}
	s := compactableStore(t, dir, f)

	f.FailWrites(2) // first write is the merge flush, second the hint
	if err := s.Compact(); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("Compact with failing hint write = %v, want ErrInjected", err)
	}
	f.Clear()
	checkGen2(t, s)
	crash(s)

	r := openTest(t, dir, nil)
	defer r.Close()
	checkGen2(t, r)
}

// Recovery truncates the uncommitted suffix; the record counts feeding
// DeadRecords must not include the frames that truncation removed.
func TestRecoveredStatsExcludeTruncatedSuffix(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, nil)
	mustPut(t, s, "a", "1")
	if err := s.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	mustPut(t, s, "a", "2")
	mustPut(t, s, "b", "2")
	crash(s)

	r := openTest(t, dir, nil)
	defer r.Close()
	// On disk: one put and one commit frame. One live key, so only the
	// commit frame counts as dead.
	if st := r.StorageStats(); st.DeadRecords != 1 {
		t.Fatalf("DeadRecords = %d after recovery, want 1", st.DeadRecords)
	}
}

func TestFailReadSurfacesOnGetAndHeals(t *testing.T) {
	dir := t.TempDir()
	f := &storage.Faults{}
	s := seedStore(t, dir, f)
	defer s.Close()

	f.FailReads(1)
	if _, _, err := s.Get([]byte("base-000")); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("Get under fail-read = %v, want ErrInjected", err)
	}
	f.Clear()
	mustGet(t, s, "base-000", "gen1-000")
}
