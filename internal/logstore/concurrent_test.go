package logstore

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentReadersDuringCompaction drives the advertised concurrency
// contract under the race detector: many readers doing point gets and
// range scans while one writer overwrites, commits, rotates, and triggers
// background compaction passes. Readers must always observe a committed
// value for seeded keys — never a miss, never a checksum error — while
// segments are merged and deleted underneath them.
func TestConcurrentReadersDuringCompaction(t *testing.T) {
	s := openTest(t, t.TempDir(), &Options{SegmentTarget: 4 << 10})
	defer s.Close()

	const keys = 40
	for i := 0; i < keys; i++ {
		mustPut(t, s, fmt.Sprintf("key-%03d", i), "round-000")
	}
	if err := s.Commit(); err != nil {
		t.Fatalf("seed Commit: %v", err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("key-%03d", (i*7+r)%keys)
				if v, ok, err := s.Get([]byte(k)); err != nil || !ok || len(v) == 0 {
					errs <- fmt.Errorf("reader %d: Get(%s) = %q, %v, %v", r, k, v, ok, err)
					return
				}
				if i%16 == 0 {
					n := 0
					if err := s.Range([]byte("key-"), []byte("key-999"), func(k, v []byte) bool {
						n++
						return true
					}); err != nil {
						errs <- fmt.Errorf("reader %d: Range: %v", r, err)
						return
					}
					if n < keys {
						errs <- fmt.Errorf("reader %d: Range saw %d keys, want >= %d", r, n, keys)
						return
					}
				}
			}
		}(r)
	}

	for round := 1; round <= 30; round++ {
		val := fmt.Sprintf("round-%03d-%s", round, string(make([]byte, 300)))
		for i := 0; i < keys; i++ {
			if err := s.Put([]byte(fmt.Sprintf("key-%03d", i)), []byte(val)); err != nil {
				t.Fatalf("Put round %d: %v", round, err)
			}
		}
		if err := s.Commit(); err != nil {
			t.Fatalf("Commit round %d: %v", round, err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	s.wg.Wait()
	if st := s.StorageStats(); st.Compactions == 0 {
		t.Log("note: no background compaction triggered during the run")
	}
}
