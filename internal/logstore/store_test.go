package logstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"xrefine/internal/storage"
)

func openTest(t *testing.T, dir string, opts *Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func mustPut(t *testing.T, s *Store, k, v string) {
	t.Helper()
	if err := s.Put([]byte(k), []byte(v)); err != nil {
		t.Fatalf("Put(%q): %v", k, err)
	}
}

func mustGet(t *testing.T, s *Store, k, want string) {
	t.Helper()
	v, ok, err := s.Get([]byte(k))
	if err != nil || !ok || string(v) != want {
		t.Fatalf("Get(%q) = %q, %v, %v; want %q", k, v, ok, err, want)
	}
}

func mustAbsent(t *testing.T, s *Store, k string) {
	t.Helper()
	if _, ok, err := s.Get([]byte(k)); err != nil || ok {
		t.Fatalf("Get(%q) = present=%v err=%v; want absent", k, ok, err)
	}
}

func TestBasicCRUDAndReopen(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, nil)
	mustPut(t, s, "alpha", "1")
	mustPut(t, s, "beta", "2")
	mustGet(t, s, "alpha", "1") // read-your-writes before commit
	if err := s.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	mustPut(t, s, "alpha", "1b")
	if ok, err := s.Delete([]byte("beta")); err != nil || !ok {
		t.Fatalf("Delete(beta) = %v, %v", ok, err)
	}
	if ok, err := s.Delete([]byte("missing")); err != nil || ok {
		t.Fatalf("Delete(missing) = %v, %v; want false", ok, err)
	}
	if err := s.Close(); err != nil { // Close commits
		t.Fatalf("Close: %v", err)
	}

	s = openTest(t, dir, nil)
	defer s.Close()
	mustGet(t, s, "alpha", "1b")
	mustAbsent(t, s, "beta")
	if n := s.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
	if st := s.StorageStats(); st.Kind != storage.KindLog || st.Txid != 2 {
		t.Fatalf("stats = kind %q txid %d, want log/2", st.Kind, st.Txid)
	}
}

func TestUncommittedBatchDiscardedOnReopen(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, nil)
	mustPut(t, s, "a", "committed")
	if err := s.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	mustPut(t, s, "a", "staged")
	mustPut(t, s, "b", "staged")
	// Abandon without Commit or Close: simulate a crash by reopening the
	// files as they are.
	s.mu.Lock()
	s.closeSegs()
	s.closed = true
	s.mu.Unlock()

	r := openTest(t, dir, nil)
	defer r.Close()
	mustGet(t, r, "a", "committed")
	mustAbsent(t, r, "b")
}

func TestRollbackRestoresCommittedState(t *testing.T) {
	s := openTest(t, t.TempDir(), nil)
	defer s.Close()
	mustPut(t, s, "k1", "v1")
	mustPut(t, s, "k2", "v2")
	if err := s.SetEpoch(7); err != nil {
		t.Fatalf("SetEpoch: %v", err)
	}
	if err := s.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	sizeBefore := s.StorageStats().DiskBytes

	mustPut(t, s, "k1", "dirty")
	mustPut(t, s, "k3", "dirty")
	if _, err := s.Delete([]byte("k2")); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := s.SetEpoch(8); err != nil {
		t.Fatalf("SetEpoch: %v", err)
	}
	if err := s.Rollback(); err != nil {
		t.Fatalf("Rollback: %v", err)
	}
	mustGet(t, s, "k1", "v1")
	mustGet(t, s, "k2", "v2")
	mustAbsent(t, s, "k3")
	if e := s.Epoch(); e != 7 {
		t.Fatalf("Epoch after rollback = %d, want 7", e)
	}
	if got := s.StorageStats().DiskBytes; got != sizeBefore {
		t.Fatalf("disk bytes after rollback = %d, want %d (staged suffix truncated)", got, sizeBefore)
	}
}

func TestRangeOrderAndBounds(t *testing.T) {
	s := openTest(t, t.TempDir(), nil)
	defer s.Close()
	for _, k := range []string{"m", "a", "z", "q", "b"} {
		mustPut(t, s, k, "v-"+k)
	}
	var got []string
	if err := s.Range([]byte("b"), []byte("z"), func(k, v []byte) bool {
		if want := "v-" + string(k); string(v) != want {
			t.Fatalf("Range value for %q = %q, want %q", k, v, want)
		}
		got = append(got, string(k))
		return true
	}); err != nil {
		t.Fatalf("Range: %v", err)
	}
	if want := []string{"b", "m", "q"}; fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Range keys = %v, want %v", got, want)
	}
	// nil hi runs to the end; early stop works.
	n := 0
	if err := s.Range(nil, nil, func(k, v []byte) bool { n++; return n < 2 }); err != nil {
		t.Fatalf("Range: %v", err)
	}
	if n != 2 {
		t.Fatalf("early-stopped Range visited %d keys, want 2", n)
	}
	// DeleteRange removes the half-open interval.
	if cnt, err := s.DeleteRange([]byte("a"), []byte("q")); err != nil || cnt != 3 {
		t.Fatalf("DeleteRange = %d, %v; want 3", cnt, err)
	}
	mustAbsent(t, s, "b")
	mustGet(t, s, "q", "v-q")
}

func TestEpochStagedUntilCommit(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, nil)
	mustPut(t, s, "x", "1")
	if err := s.SetEpoch(41); err != nil {
		t.Fatalf("SetEpoch: %v", err)
	}
	if err := s.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := s.SetEpoch(42); err != nil { // staged, never committed
		t.Fatalf("SetEpoch: %v", err)
	}
	s.mu.Lock()
	s.closeSegs()
	s.closed = true
	s.mu.Unlock()

	r := openTest(t, dir, nil)
	defer r.Close()
	if e := r.Epoch(); e != 41 {
		t.Fatalf("Epoch after reopen = %d, want committed 41", e)
	}
}

// fill writes n keys of the given value size and commits every batchEvery
// keys, driving rotation at small segment targets.
func fill(t *testing.T, s *Store, n, valSize, batchEvery int) {
	t.Helper()
	val := bytes.Repeat([]byte{'x'}, valSize)
	for i := 0; i < n; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%05d", i)), val); err != nil {
			t.Fatalf("Put #%d: %v", i, err)
		}
		if (i+1)%batchEvery == 0 {
			if err := s.Commit(); err != nil {
				t.Fatalf("Commit #%d: %v", i, err)
			}
		}
	}
	if err := s.Commit(); err != nil {
		t.Fatalf("final Commit: %v", err)
	}
}

func TestRotationSealsSegmentsAndHintsLoad(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, &Options{SegmentTarget: 8 << 10, NoAutoCompact: true})
	fill(t, s, 200, 256, 10)
	segs := s.StorageStats().Segments
	if segs < 3 {
		t.Fatalf("got %d segments, want rotation to have produced at least 3", segs)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := openTest(t, dir, &Options{SegmentTarget: 8 << 10, NoAutoCompact: true})
	defer r.Close()
	st := r.StorageStats()
	// Every sealed segment has a hint; only the active segment scans.
	if st.HintLoads < segs-1 || st.ScanLoads > 1 {
		t.Fatalf("hint loads %d / scan loads %d over %d segments; want sealed ones hinted", st.HintLoads, st.ScanLoads, segs)
	}
	for i := 0; i < 200; i++ {
		mustGet(t, r, fmt.Sprintf("key-%05d", i), string(bytes.Repeat([]byte{'x'}, 256)))
	}
}

func TestCompactionDropsDeadRecordsAndTombstones(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, &Options{SegmentTarget: 8 << 10, NoAutoCompact: true})
	defer s.Close()
	fill(t, s, 100, 256, 10)
	// Overwrite half, delete a quarter: lots of dead records.
	for i := 0; i < 50; i++ {
		mustPut(t, s, fmt.Sprintf("key-%05d", i), "fresh")
	}
	for i := 50; i < 75; i++ {
		if _, err := s.Delete([]byte(fmt.Sprintf("key-%05d", i))); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	if err := s.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	before := s.StorageStats()
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := s.StorageStats()
	if after.DiskBytes >= before.DiskBytes {
		t.Fatalf("compaction did not shrink the store: %d -> %d bytes", before.DiskBytes, after.DiskBytes)
	}
	if after.Compactions != 1 {
		t.Fatalf("Compactions = %d, want 1", after.Compactions)
	}
	if amp := after.Amplification(); amp >= 2 {
		t.Fatalf("amplification after compaction = %.2f, want < 2", amp)
	}
	for i := 0; i < 50; i++ {
		mustGet(t, s, fmt.Sprintf("key-%05d", i), "fresh")
	}
	for i := 50; i < 75; i++ {
		mustAbsent(t, s, fmt.Sprintf("key-%05d", i))
	}
	for i := 75; i < 100; i++ {
		mustGet(t, s, fmt.Sprintf("key-%05d", i), string(bytes.Repeat([]byte{'x'}, 256)))
	}
}

func TestAutoCompactionBoundsAmplification(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, &Options{SegmentTarget: 16 << 10})
	defer s.Close()
	// Sustained overwrite load: the same keys rewritten many times. Without
	// compaction this store would be ~20x amplified.
	for round := 0; round < 20; round++ {
		for i := 0; i < 40; i++ {
			mustPut(t, s, fmt.Sprintf("key-%05d", i), fmt.Sprintf("round-%02d-%s", round, bytes.Repeat([]byte{'y'}, 200)))
		}
		if err := s.Commit(); err != nil {
			t.Fatalf("Commit round %d: %v", round, err)
		}
	}
	s.wg.Wait() // let background passes finish
	st := s.StorageStats()
	if st.Compactions == 0 {
		t.Fatal("auto-compaction never triggered under overwrite load")
	}
	if amp := st.Amplification(); amp >= 3 {
		t.Fatalf("amplification under overwrite load = %.2f (disk %d, live %d), want < 3", amp, st.DiskBytes, st.LiveBytes)
	}
	mustGet(t, s, "key-00000", "round-19-"+string(bytes.Repeat([]byte{'y'}, 200)))
}

func TestCheckpointEnablesHintOnlyColdStart(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, &Options{SegmentTarget: 8 << 10, NoAutoCompact: true})
	fill(t, s, 150, 256, 10)
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	st := s.StorageStats()
	if st.Segments != 2 {
		t.Fatalf("segments after checkpoint = %d, want 2 (merged + empty active)", st.Segments)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := openTest(t, dir, nil)
	st = r.StorageStats()
	if st.HintLoads != 1 || st.ScanLoads != 1 {
		t.Fatalf("cold start = %d hint loads, %d scan loads; want 1 hinted merge + 1 empty-active scan", st.HintLoads, st.ScanLoads)
	}
	mustGet(t, r, "key-00099", string(bytes.Repeat([]byte{'x'}, 256)))
	r.Close()

	// The benchmark baseline: IgnoreHints forces the full replay.
	r = openTest(t, dir, &Options{IgnoreHints: true})
	defer r.Close()
	if st := r.StorageStats(); st.HintLoads != 0 || st.ScanLoads != 2 {
		t.Fatalf("IgnoreHints cold start = %d/%d hint/scan loads, want 0/2", st.HintLoads, st.ScanLoads)
	}
	mustGet(t, r, "key-00099", string(bytes.Repeat([]byte{'x'}, 256)))
}

func TestReadOnlyOpen(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, nil)
	mustPut(t, s, "k", "v")
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := openTest(t, dir, &Options{ReadOnly: true})
	defer r.Close()
	mustGet(t, r, "k", "v")
	if err := r.Put([]byte("x"), []byte("y")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Put on read-only = %v, want ErrReadOnly", err)
	}
	if _, err := r.Delete([]byte("k")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Delete on read-only = %v, want ErrReadOnly", err)
	}
	if err := r.Commit(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Commit on read-only = %v, want ErrReadOnly", err)
	}
	if err := r.Compact(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Compact on read-only = %v, want ErrReadOnly", err)
	}
}

func TestClosedStoreErrors(t *testing.T) {
	s := openTest(t, t.TempDir(), nil)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	if _, _, err := s.Get([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get on closed = %v, want ErrClosed", err)
	}
	if err := s.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put on closed = %v, want ErrClosed", err)
	}
}

func TestSealedSegmentCorruptionIsTypedError(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, &Options{SegmentTarget: 4 << 10, NoAutoCompact: true})
	fill(t, s, 100, 200, 10)
	if s.StorageStats().Segments < 2 {
		t.Fatal("test needs at least one sealed segment")
	}
	firstSeg := s.segs[0].name
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Flip a byte in the middle of the sealed segment and remove its hint
	// so the scan path sees the damage.
	path := filepath.Join(dir, firstSeg)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(dir, segHintName(firstSeg)))

	if _, err := Open(dir, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over corrupt sealed segment = %v, want ErrCorrupt", err)
	}
}

func TestStrayFilesCleanedAtOpen(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, nil)
	mustPut(t, s, "k", "v")
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Debris of an interrupted rotation/compaction: an unlisted data file
	// and a temp file.
	stray := filepath.Join(dir, segDataName(99))
	if err := os.WriteFile(stray, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, "MANIFEST.tmp12345")
	if err := os.WriteFile(tmp, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	r := openTest(t, dir, nil)
	defer r.Close()
	mustGet(t, r, "k", "v")
	for _, p := range []string{stray, tmp} {
		if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("stray file %s survived open", p)
		}
	}
}
