package logstore

import (
	"bytes"
	"errors"
	"testing"
)

// The codec fuzzers: random bytes — including random flips of valid
// encodings — must decode to a typed error or a valid value, never panic
// and never silently succeed on corrupt input. Valid decodes must survive
// a re-encode/re-decode round trip. Seed corpora live in
// testdata/fuzz/Fuzz{LogRecord,HintFile} and replay under plain go test.

func FuzzLogRecord(f *testing.F) {
	// Representative frames: a put, a delete, a commit, an empty-value
	// put, and a few corruptions of each shape.
	f.Add(appendPut(nil, []byte("term"), []byte("posting-bytes")))
	f.Add(appendPut(nil, []byte{0}, nil))
	f.Add(appendDelete(nil, []byte("L\x00term\x00\x00\x00\x00\x01")))
	f.Add(appendCommit(nil, 42, 7, 3))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xff}, 32))

	f.Fuzz(func(t *testing.T, data []byte) {
		body, n, err := decodeFrame(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, errShortFrame) {
				t.Fatalf("decodeFrame returned an untyped error: %v", err)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decodeFrame consumed %d of %d bytes", n, len(data))
		}
		rec, err := parseRecord(body)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("parseRecord returned an untyped error: %v", err)
			}
			return
		}
		// Round trip: re-encode the parsed record and re-parse; the two
		// decodes must agree. (Byte equality is not required — a fuzzed
		// frame may use non-minimal varints.)
		var enc []byte
		switch rec.kind {
		case kindPut:
			enc = appendPut(nil, rec.key, rec.value)
		case kindDelete:
			enc = appendDelete(nil, rec.key)
		case kindCommit:
			enc = appendCommit(nil, rec.txid, rec.epoch, rec.count)
		default:
			t.Fatalf("parseRecord accepted unknown kind %d", rec.kind)
		}
		body2, n2, err := decodeFrame(enc)
		if err != nil || n2 != len(enc) {
			t.Fatalf("re-encoded frame failed to decode: %v (%d/%d bytes)", err, n2, len(enc))
		}
		rec2, err := parseRecord(body2)
		if err != nil {
			t.Fatalf("re-encoded record failed to parse: %v", err)
		}
		if rec2.kind != rec.kind || !bytes.Equal(rec2.key, rec.key) || !bytes.Equal(rec2.value, rec.value) ||
			rec2.txid != rec.txid || rec2.epoch != rec.epoch || rec2.count != rec.count {
			t.Fatalf("round trip mismatch: %+v vs %+v", rec, rec2)
		}
	})
}

func FuzzHintFile(f *testing.F) {
	f.Add(encodeHint(nil, hintFooter{}))
	f.Add(encodeHint([]hintEntry{
		{kind: kindPut, key: []byte("alpha"), off: 0, size: 27},
		{kind: kindDelete, key: []byte("beta")},
		{kind: kindPut, key: []byte("F\x00gamma"), off: 27, size: 1024},
	}, hintFooter{dataSize: 2048, txid: 17, epoch: 9}))
	f.Add([]byte("XLH1"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xa5}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, ft, err := decodeHint(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decodeHint returned an untyped error: %v", err)
			}
			return
		}
		enc := encodeHint(entries, ft)
		entries2, ft2, err := decodeHint(enc)
		if err != nil {
			t.Fatalf("re-encoded hint failed to decode: %v", err)
		}
		if ft2 != ft || len(entries2) != len(entries) {
			t.Fatalf("round trip mismatch: footer %+v vs %+v, %d vs %d entries", ft, ft2, len(entries), len(entries2))
		}
		for i := range entries {
			a, b := entries[i], entries2[i]
			if a.kind != b.kind || !bytes.Equal(a.key, b.key) || a.off != b.off || a.size != b.size {
				t.Fatalf("round trip entry %d mismatch: %+v vs %+v", i, a, b)
			}
		}
	})
}
