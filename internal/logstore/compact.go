package logstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Compaction merges every sealed segment into one fresh segment holding
// only the records the keydir still references, writes that segment's
// hint file, atomically swaps the manifest, and deletes the old files.
// The merge set is always the full sealed prefix, which is what makes
// dropping tombstones safe: a key absent from the merged segment and from
// the newer segments after it is simply absent, with no older segment
// left to resurrect it.
//
// The pass runs concurrently with reads and writes. Sealed segments are
// immutable, so the heavy copy happens without the store lock; writes land
// in the active segment, which is never merged; and the final swap —
// retargeting keydir entries that still point into the merged set — runs
// under the write lock and skips any entry a concurrent write superseded.
// An open uncommitted batch needs care at both ends: committed records it
// shadows live only in the undo log, so the snapshot folds those into the
// merge set, and the swap retargets undo entries into the merged segment
// so Rollback and crash recovery never chase a deleted file.
//
// Crash-safety ordering: the merged file is fully written, verified by
// re-reading it end to end (catching torn writes the fault harness or a
// real disk injected), and fsynced before the manifest points at it; old
// files are deleted only after the manifest write. A crash anywhere in
// between leaves either the old manifest with the old files (the merged
// file is an unlisted stray, deleted at open) or the new manifest with
// the new file (the old files are strays). Both recover the last
// committed state.

// compactBufSize batches merged record frames per fault-harness write.
const compactBufSize = 256 << 10

// mergeRef pairs a live keydir entry with its future location.
type mergeRef struct {
	key string
	old kdEntry
	new kdEntry
}

// maybeCompactLocked starts a background merge when the sealed segments
// hold more reclaimable bytes than half the live data (holding on-disk
// amplification under ~1.5x live + one active segment) and at least
// minCompactDead to be worth the churn.
func (s *Store) maybeCompactLocked() {
	if s.noAuto || s.readOnly || len(s.segs) < 2 {
		return
	}
	var sealedDead, live int64
	for i, seg := range s.segs {
		live += seg.live
		if i < len(s.segs)-1 {
			sealedDead += seg.size - seg.live
		}
	}
	if sealedDead < minCompactDead || sealedDead*2 < live {
		return
	}
	if !s.compacting.CompareAndSwap(false, true) {
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer s.compacting.Store(false)
		if err := s.Compact(); err != nil {
			s.compactErrors.Add(1)
		}
	}()
}

// Compact synchronously merges the sealed segments. It is a no-op with
// fewer than two segments.
func (s *Store) Compact() error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()

	// Snapshot the merge set and the live entries pointing into it.
	s.mu.Lock()
	switch {
	case s.closed:
		s.mu.Unlock()
		return ErrClosed
	case s.readOnly:
		s.mu.Unlock()
		return ErrReadOnly
	case len(s.segs) < 2:
		s.mu.Unlock()
		return nil
	}
	sealed := append([]*segment(nil), s.segs[:len(s.segs)-1]...)
	sealedIDs := make(map[uint32]int, len(sealed))
	for i, seg := range sealed {
		sealedIDs[seg.id] = i
	}
	refs := make([]mergeRef, 0, len(s.keydir))
	for k, e := range s.keydir {
		if _, ok := sealedIDs[e.seg]; ok {
			refs = append(refs, mergeRef{key: k, old: e})
		}
	}
	// An open batch shadows committed records: its first staged Put or
	// Delete of a key repoints (or removes) the keydir entry, leaving the
	// key's last committed record reachable only through the undo log.
	// Those records must move too — otherwise deleting the merged segments
	// would strand Rollback, and a crash before Commit, on vanished files.
	// No key is double-counted: once a batch touches a key, its keydir
	// entry points into the active segment (or is gone), and only the
	// batch's first undo entry for a key can hold a sealed location.
	for _, u := range s.undo {
		if !u.had {
			continue
		}
		if _, ok := sealedIDs[u.old.seg]; ok {
			refs = append(refs, mergeRef{key: u.key, old: u.old})
		}
	}
	txid, epoch := s.txid, s.txnEpoch
	if s.committed {
		epoch = s.epoch
	}
	newID := s.nextID
	s.nextID++
	s.mu.Unlock()

	// Copy records in (segment, offset) order for sequential reads.
	sort.Slice(refs, func(i, j int) bool {
		a, b := refs[i].old, refs[j].old
		if a.seg != b.seg {
			return sealedIDs[a.seg] < sealedIDs[b.seg]
		}
		return a.off < b.off
	})

	name := segDataName(newID)
	path := filepath.Join(s.dir, name)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	abort := func(err error) error {
		f.Close()
		os.Remove(path)
		os.Remove(filepath.Join(s.dir, segHintName(name)))
		return err
	}

	var (
		buf     []byte
		bufOff  int64
		size    int64
		entries = make([]hintEntry, 0, len(refs))
	)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		data := buf
		if s.faults != nil {
			out, werr := s.faults.OnWrite(buf)
			if werr != nil {
				return fmt.Errorf("logstore: merge write %s: %w", name, werr)
			}
			data = out
		}
		if len(data) > 0 {
			if _, werr := f.WriteAt(data, bufOff); werr != nil {
				return werr
			}
		}
		bufOff += int64(len(buf))
		buf = buf[:0]
		return nil
	}
	for i := range refs {
		frame, rerr := s.readSealedFrame(sealed[sealedIDs[refs[i].old.seg]], refs[i].old)
		if rerr != nil {
			return abort(rerr)
		}
		refs[i].new = kdEntry{seg: newID, off: size, size: refs[i].old.size}
		entries = append(entries, hintEntry{
			kind: kindPut,
			key:  []byte(refs[i].key),
			off:  size,
			size: refs[i].old.size,
		})
		buf = append(buf, frame...)
		size += int64(len(frame))
		if len(buf) >= compactBufSize {
			if ferr := flush(); ferr != nil {
				return abort(ferr)
			}
		}
	}
	prev := int64(len(buf))
	buf = appendCommit(buf, txid, epoch, uint64(len(refs)))
	size += int64(len(buf)) - prev
	if ferr := flush(); ferr != nil {
		return abort(ferr)
	}
	if serr := f.Sync(); serr != nil {
		return abort(serr)
	}

	// Re-read the merged file end to end before trusting it: a torn or
	// lying write must abort the pass here, not surface as a checksum
	// error on a random future Get.
	if verr := verifyMergedFile(path, size, len(refs)); verr != nil {
		return abort(verr)
	}

	if herr := s.writeHintFile(name, entries, hintFooter{dataSize: size, txid: txid, epoch: epoch}); herr != nil {
		return abort(herr)
	}

	// Swap: manifest first (still under the lock), then the keydir.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return abort(ErrClosed)
	}
	merged := &segment{id: newID, name: name, f: f, size: size, recs: int64(len(refs)) + 1}
	newSegs := make([]*segment, 0, len(s.segs))
	newSegs = append(newSegs, merged)
	var removed []*segment
	for _, seg := range s.segs {
		if _, ok := sealedIDs[seg.id]; ok {
			removed = append(removed, seg)
		} else {
			newSegs = append(newSegs, seg)
		}
	}
	oldSegs := s.segs
	s.segs = newSegs
	if merr := s.writeManifestLocked(); merr != nil {
		s.segs = oldSegs
		s.mu.Unlock()
		return abort(merr)
	}
	for i := range refs {
		if cur, ok := s.keydir[refs[i].key]; ok && cur == refs[i].old {
			// kdSet would misattribute live bytes: the old segment is
			// already out of s.segs. Retarget directly.
			s.keydir[refs[i].key] = refs[i].new
			merged.live += int64(refs[i].new.size)
		}
	}
	// A batch opened while the copy ran (the lock was free) shadows keys
	// whose committed records were snapshotted from the keydir; its undo
	// entries still point into the removed segments. Retarget them so a
	// Rollback restores keydir entries that land in the merged segment,
	// not a deleted file. (Bytes become live again via kdSet if restored.)
	if len(s.undo) > 0 {
		moved := make(map[kdEntry]kdEntry, len(refs))
		for i := range refs {
			moved[refs[i].old] = refs[i].new
		}
		for i := range s.undo {
			if u := &s.undo[i]; u.had {
				if n, ok := moved[u.old]; ok {
					u.old = n
				}
			}
		}
	}
	s.compactions.Add(1)
	s.mu.Unlock()

	for _, seg := range removed {
		seg.f.Close()
		os.Remove(filepath.Join(s.dir, seg.name))
		os.Remove(filepath.Join(s.dir, segHintName(seg.name)))
	}
	return nil
}

// readSealedFrame reads one record frame out of an immutable sealed
// segment without the store lock, verifying its checksum.
func (s *Store) readSealedFrame(seg *segment, e kdEntry) ([]byte, error) {
	if s.faults != nil {
		if err := s.faults.OnRead(); err != nil {
			return nil, fmt.Errorf("logstore: merge read %s @%d: %w", seg.name, e.off, err)
		}
	}
	buf := make([]byte, e.size)
	if _, err := seg.f.ReadAt(buf, e.off); err != nil {
		return nil, fmt.Errorf("logstore: merge read %s @%d: %w", seg.name, e.off, err)
	}
	if _, n, err := decodeFrame(buf); err != nil || n != len(buf) {
		if err == nil {
			err = fmt.Errorf("%w: frame length disagrees with keydir", ErrCorrupt)
		}
		return nil, fmt.Errorf("logstore: merge read %s @%d: %w", seg.name, e.off, err)
	}
	return buf, nil
}

// verifyMergedFile decodes every frame of a freshly written merge output,
// checking sizes, checksums, and the trailing commit record. It streams
// the file through a bounded buffer: the merged output holds the full
// live dataset, so reading it whole would transiently cost memory
// proportional to total store size on every compaction.
func verifyMergedFile(path string, wantSize int64, wantRecs int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	if st.Size() != wantSize {
		return fmt.Errorf("%w: merged file is %d bytes, want %d", ErrCorrupt, st.Size(), wantSize)
	}
	fail := func(off int64, err error) error {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			err = errShortFrame
		}
		return fmt.Errorf("logstore: verify merged @%d: %w", off, err)
	}
	var (
		r         = bufio.NewReaderSize(f, compactBufSize)
		frame     []byte
		off, recs int64
		sawCommit bool
	)
	for off < wantSize {
		var hdr [frameHeaderSize]byte
		if _, rerr := io.ReadFull(r, hdr[:]); rerr != nil {
			return fail(off, rerr)
		}
		size := binary.LittleEndian.Uint32(hdr[0:4])
		if size > maxBodySize {
			return fail(off, fmt.Errorf("%w: frame size %d exceeds limit", ErrCorrupt, size))
		}
		total := frameHeaderSize + int(size)
		if cap(frame) < total {
			frame = make([]byte, total)
		}
		frame = frame[:total]
		copy(frame, hdr[:])
		if _, rerr := io.ReadFull(r, frame[frameHeaderSize:]); rerr != nil {
			return fail(off, rerr)
		}
		body, n, ferr := decodeFrame(frame)
		if ferr != nil {
			return fail(off, ferr)
		}
		rec, perr := parseRecord(body)
		if perr != nil {
			return fail(off, perr)
		}
		if rec.kind == kindCommit {
			sawCommit = true
		} else {
			recs++
		}
		off += int64(n)
	}
	if !sawCommit || recs != int64(wantRecs) {
		return fmt.Errorf("%w: merged file has %d records (commit=%v), want %d", ErrCorrupt, recs, sawCommit, wantRecs)
	}
	return nil
}
