package logstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Data files are a flat sequence of CRC-framed records:
//
//	frame: [size uint32 LE] [crc32 uint32 LE] [body, size bytes]
//
// where crc32 is the IEEE checksum of the body. The body starts with a
// one-byte kind tag:
//
//	put:    [kindPut]    [klen uvarint] [vlen uvarint] [key] [value]
//	delete: [kindDelete] [klen uvarint] [key]
//	commit: [kindCommit] [txid uvarint] [epoch uvarint] [count uvarint]
//
// Put and delete records stage keydir changes; a commit record makes every
// staged record since the previous commit durable and visible to recovery.
// A scan that hits a decode error, or the end of the file, discards
// everything after the last commit record — that suffix is an uncommitted
// batch (or the torn tail a crash left) by definition.
//
// The same framing is used byte-for-byte inside merged segments, so
// compaction can copy record bodies without re-encoding, and a merged
// segment with a lost hint file recovers through the ordinary scan path.

// Record kinds. The zero value is invalid on purpose: a zeroed or
// hole-punched region can never parse as a record.
const (
	kindPut    = 1
	kindDelete = 2
	kindCommit = 3
)

// frameHeaderSize is the fixed prefix of every record: size + crc.
const frameHeaderSize = 8

// maxBodySize bounds a single record body. The limit exists so a corrupt
// size field reads as a typed error instead of a multi-gigabyte
// allocation; it is far above MaxKV, so no legitimate record hits it.
const maxBodySize = 1 << 26

// Typed decode errors. Every malformed input maps to one of these
// (wrapped with context) — never a panic, never a silent success.
var (
	// ErrCorrupt reports a record or hint file that is structurally
	// invalid: bad checksum, bad kind, lengths that disagree with the
	// payload, or an over-limit size field.
	ErrCorrupt = errors.New("logstore: corrupt record")
	// errShortFrame reports a frame cut off mid-record — the shape of a
	// torn tail. Scanners treat it as end-of-log, not corruption.
	errShortFrame = errors.New("logstore: short frame")
)

// record is a decoded data-file record. Key and value alias the input
// buffer; callers that retain them must copy.
type record struct {
	kind  byte
	key   []byte
	value []byte
	txid  uint64 // commit records only
	epoch uint64
	count uint64
}

// appendFrame appends the frame header and body to dst.
func appendFrame(dst, body []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(body))
	dst = append(dst, hdr[:]...)
	return append(dst, body...)
}

// appendPut appends a framed put record for key/value to dst.
func appendPut(dst, key, value []byte) []byte {
	body := make([]byte, 0, 1+2*binary.MaxVarintLen64+len(key)+len(value))
	body = append(body, kindPut)
	body = binary.AppendUvarint(body, uint64(len(key)))
	body = binary.AppendUvarint(body, uint64(len(value)))
	body = append(body, key...)
	body = append(body, value...)
	return appendFrame(dst, body)
}

// appendDelete appends a framed tombstone record for key to dst.
func appendDelete(dst, key []byte) []byte {
	body := make([]byte, 0, 1+binary.MaxVarintLen64+len(key))
	body = append(body, kindDelete)
	body = binary.AppendUvarint(body, uint64(len(key)))
	body = append(body, key...)
	return appendFrame(dst, body)
}

// appendCommit appends a framed commit record to dst.
func appendCommit(dst []byte, txid, epoch, count uint64) []byte {
	body := make([]byte, 0, 1+3*binary.MaxVarintLen64)
	body = append(body, kindCommit)
	body = binary.AppendUvarint(body, txid)
	body = binary.AppendUvarint(body, epoch)
	body = binary.AppendUvarint(body, count)
	return appendFrame(dst, body)
}

// decodeFrame validates the frame at the start of b and returns its body
// and total encoded length. A buffer that ends mid-frame returns
// errShortFrame; a frame whose checksum or size field is wrong returns
// ErrCorrupt.
func decodeFrame(b []byte) (body []byte, n int, err error) {
	if len(b) < frameHeaderSize {
		return nil, 0, errShortFrame
	}
	size := binary.LittleEndian.Uint32(b[0:4])
	if size > maxBodySize {
		return nil, 0, fmt.Errorf("%w: frame size %d exceeds limit", ErrCorrupt, size)
	}
	total := frameHeaderSize + int(size)
	if len(b) < total {
		return nil, 0, errShortFrame
	}
	body = b[frameHeaderSize:total]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(b[4:8]) {
		return nil, 0, fmt.Errorf("%w: frame checksum mismatch", ErrCorrupt)
	}
	return body, total, nil
}

// parseRecord decodes a frame body. The returned record's key and value
// alias body.
func parseRecord(body []byte) (record, error) {
	if len(body) == 0 {
		return record{}, fmt.Errorf("%w: empty body", ErrCorrupt)
	}
	rec := record{kind: body[0]}
	rest := body[1:]
	switch rec.kind {
	case kindPut:
		klen, n := binary.Uvarint(rest)
		if n <= 0 {
			return record{}, fmt.Errorf("%w: bad key length", ErrCorrupt)
		}
		rest = rest[n:]
		vlen, n := binary.Uvarint(rest)
		if n <= 0 {
			return record{}, fmt.Errorf("%w: bad value length", ErrCorrupt)
		}
		rest = rest[n:]
		if klen > uint64(len(rest)) || vlen > uint64(len(rest))-klen {
			return record{}, fmt.Errorf("%w: put lengths exceed body", ErrCorrupt)
		}
		if uint64(len(rest)) != klen+vlen {
			return record{}, fmt.Errorf("%w: put body has trailing bytes", ErrCorrupt)
		}
		rec.key = rest[:klen]
		rec.value = rest[klen:]
	case kindDelete:
		klen, n := binary.Uvarint(rest)
		if n <= 0 {
			return record{}, fmt.Errorf("%w: bad key length", ErrCorrupt)
		}
		rest = rest[n:]
		if uint64(len(rest)) != klen {
			return record{}, fmt.Errorf("%w: delete length disagrees with body", ErrCorrupt)
		}
		rec.key = rest
	case kindCommit:
		var n int
		if rec.txid, n = binary.Uvarint(rest); n <= 0 {
			return record{}, fmt.Errorf("%w: bad commit txid", ErrCorrupt)
		}
		rest = rest[n:]
		if rec.epoch, n = binary.Uvarint(rest); n <= 0 {
			return record{}, fmt.Errorf("%w: bad commit epoch", ErrCorrupt)
		}
		rest = rest[n:]
		if rec.count, n = binary.Uvarint(rest); n <= 0 {
			return record{}, fmt.Errorf("%w: bad commit count", ErrCorrupt)
		}
		if len(rest[n:]) != 0 {
			return record{}, fmt.Errorf("%w: commit body has trailing bytes", ErrCorrupt)
		}
	default:
		return record{}, fmt.Errorf("%w: unknown record kind %d", ErrCorrupt, rec.kind)
	}
	return rec, nil
}
