// Package lexicon supplies the semantic knowledge behind synonym and
// acronym refinement rules. The paper sources synonym dissimilarity from
// WordNet and acronym tables from manual annotation (Section III-B); this
// package substitutes an embedded, extensible dictionary covering the
// bibliographic and sports domains of the evaluation datasets, with the
// same per-pair dissimilarity scoring.
package lexicon

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"xrefine/internal/tokenize"
)

// Synonym links two terms with a dissimilarity score (lower = closer in
// meaning). Scores follow the paper's Table II convention: 1 for close
// synonyms, larger for weaker relatedness.
type Synonym struct {
	A, B  string
	Score float64
}

// Acronym expands a short form into its multi-term expansion; the paper
// designates a fixed dissimilarity of 1 for acronym expansion.
type Acronym struct {
	Short     string
	Expansion []string
}

// Lexicon is a symmetric synonym store plus an acronym table.
type Lexicon struct {
	syn map[string][]Synonym // keyed by either side, canonical order inside
	acr map[string]Acronym   // keyed by short form
	exp map[string][]Acronym // keyed by first expansion term
}

// New returns an empty lexicon.
func New() *Lexicon {
	return &Lexicon{
		syn: make(map[string][]Synonym),
		acr: make(map[string]Acronym),
		exp: make(map[string][]Acronym),
	}
}

// AddSynonym registers a symmetric synonym pair. Terms are normalized;
// invalid or identical terms are rejected.
func (l *Lexicon) AddSynonym(a, b string, score float64) error {
	a, b = tokenize.Normalize(a), tokenize.Normalize(b)
	if a == "" || b == "" {
		return fmt.Errorf("lexicon: empty synonym term %q/%q", a, b)
	}
	if a == b {
		return fmt.Errorf("lexicon: self synonym %q", a)
	}
	if score <= 0 {
		return fmt.Errorf("lexicon: non-positive score %v for %q/%q", score, a, b)
	}
	if a > b {
		a, b = b, a
	}
	for _, s := range l.syn[a] {
		if s.A == a && s.B == b {
			return nil // already present; keep first score
		}
	}
	s := Synonym{A: a, B: b, Score: score}
	l.syn[a] = append(l.syn[a], s)
	l.syn[b] = append(l.syn[b], s)
	return nil
}

// AddAcronym registers an acronym expansion. The short form and every
// expansion term are normalized.
func (l *Lexicon) AddAcronym(short string, expansion ...string) error {
	short = tokenize.Normalize(short)
	if short == "" {
		return fmt.Errorf("lexicon: empty acronym")
	}
	if len(expansion) == 0 {
		return fmt.Errorf("lexicon: acronym %q with no expansion", short)
	}
	terms := make([]string, len(expansion))
	for i, e := range expansion {
		terms[i] = tokenize.Normalize(e)
		if terms[i] == "" {
			return fmt.Errorf("lexicon: acronym %q has empty expansion term", short)
		}
	}
	a := Acronym{Short: short, Expansion: terms}
	l.acr[short] = a
	l.exp[terms[0]] = append(l.exp[terms[0]], a)
	return nil
}

// Synonyms returns all synonym pairs involving term, sorted by score then
// by the other term, so rule generation is deterministic.
func (l *Lexicon) Synonyms(term string) []Synonym {
	out := append([]Synonym(nil), l.syn[tokenize.Normalize(term)]...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score < out[j].Score
		}
		return out[i].A+out[i].B < out[j].A+out[j].B
	})
	return out
}

// Other returns the partner of term in the pair.
func (s Synonym) Other(term string) string {
	if s.A == term {
		return s.B
	}
	return s.A
}

// Expand resolves a short form to its acronym entry.
func (l *Lexicon) Expand(short string) (Acronym, bool) {
	a, ok := l.acr[tokenize.Normalize(short)]
	return a, ok
}

// Contract returns acronyms whose expansion starts with first; the rule
// generator checks the remaining expansion terms against the query.
func (l *Lexicon) Contract(first string) []Acronym {
	return l.exp[tokenize.Normalize(first)]
}

// Len returns the number of stored synonym pairs and acronyms.
func (l *Lexicon) Len() (synonyms, acronyms int) {
	seen := 0
	for k, ss := range l.syn {
		for _, s := range ss {
			if s.A == k { // count each pair once, at its A key
				seen++
			}
		}
	}
	return seen, len(l.acr)
}

// Load reads a lexicon in a simple line format:
//
//	syn <a> <b> <score>
//	acr <short> <term> [term...]
//	# comment
//
// Blank lines and comments are skipped.
func Load(r io.Reader) (*Lexicon, error) {
	l := New()
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		switch fields[0] {
		case "syn":
			if len(fields) != 4 {
				return nil, fmt.Errorf("lexicon: line %d: syn wants 3 args", line)
			}
			score, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("lexicon: line %d: bad score: %w", line, err)
			}
			if err := l.AddSynonym(fields[1], fields[2], score); err != nil {
				return nil, fmt.Errorf("lexicon: line %d: %w", line, err)
			}
		case "acr":
			if len(fields) < 3 {
				return nil, fmt.Errorf("lexicon: line %d: acr wants >=2 args", line)
			}
			if err := l.AddAcronym(fields[1], fields[2:]...); err != nil {
				return nil, fmt.Errorf("lexicon: line %d: %w", line, err)
			}
		default:
			return nil, fmt.Errorf("lexicon: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("lexicon: read: %w", err)
	}
	return l, nil
}

// Builtin returns the embedded default lexicon: the WordNet substitute used
// by the examples, the experiment harness and the synthetic datasets. It
// includes every rule class of the paper's Table II.
func Builtin() *Lexicon {
	l := New()
	must := func(err error) {
		if err != nil {
			panic(err) // embedded data is static; failure is a programming error
		}
	}
	// Bibliographic domain (DBLP-like), per the paper's Example 1:
	// publication ~ proceedings/inproceedings/article.
	for _, s := range []Synonym{
		{"publication", "article", 1},
		{"publication", "inproceedings", 1},
		{"publication", "proceedings", 1},
		{"publication", "book", 2},
		{"article", "inproceedings", 1},
		{"paper", "article", 1},
		{"paper", "inproceedings", 1},
		{"author", "writer", 1},
		{"venue", "booktitle", 1},
		{"journal", "article", 2},
		{"search", "retrieval", 1},
		{"query", "search", 2},
		{"database", "databases", 1},
		{"web", "internet", 1},
		{"mining", "analysis", 2},
		{"efficient", "fast", 1},
		{"evaluation", "processing", 2},
	} {
		must(l.AddSynonym(s.A, s.B, s.Score))
	}
	// Sports domain (Baseball-like).
	for _, s := range []Synonym{
		{"player", "athlete", 1},
		{"team", "club", 1},
		{"pitcher", "player", 2},
		{"batting", "hitting", 1},
		{"average", "avg", 1},
		{"homeruns", "homers", 1},
	} {
		must(l.AddSynonym(s.A, s.B, s.Score))
	}
	// Acronyms (paper rule 6: WWW <-> world wide web).
	must(l.AddAcronym("www", "world", "wide", "web"))
	must(l.AddAcronym("xml", "extensible", "markup", "language"))
	must(l.AddAcronym("db", "database"))
	must(l.AddAcronym("ir", "information", "retrieval"))
	must(l.AddAcronym("ml", "machine", "learning"))
	must(l.AddAcronym("ai", "artificial", "intelligence"))
	must(l.AddAcronym("dbms", "database", "management", "system"))
	must(l.AddAcronym("lca", "lowest", "common", "ancestor"))
	must(l.AddAcronym("mlb", "major", "league", "baseball"))
	must(l.AddAcronym("era", "earned", "run", "average"))
	return l
}
