package lexicon

import (
	"strings"
	"testing"
)

func TestAddSynonymAndLookup(t *testing.T) {
	l := New()
	if err := l.AddSynonym("Database", "databases", 1); err != nil {
		t.Fatal(err)
	}
	ss := l.Synonyms("database")
	if len(ss) != 1 || ss[0].Other("database") != "databases" || ss[0].Score != 1 {
		t.Fatalf("Synonyms = %+v", ss)
	}
	// symmetric lookup
	ss = l.Synonyms("databases")
	if len(ss) != 1 || ss[0].Other("databases") != "database" {
		t.Fatalf("reverse Synonyms = %+v", ss)
	}
	// duplicate insert is a no-op
	if err := l.AddSynonym("database", "databases", 5); err != nil {
		t.Fatal(err)
	}
	if got := l.Synonyms("database"); len(got) != 1 || got[0].Score != 1 {
		t.Fatalf("duplicate changed store: %+v", got)
	}
}

func TestAddSynonymErrors(t *testing.T) {
	l := New()
	if err := l.AddSynonym("", "x", 1); err == nil {
		t.Error("empty term accepted")
	}
	if err := l.AddSynonym("x", "x", 1); err == nil {
		t.Error("self synonym accepted")
	}
	if err := l.AddSynonym("x", "y", 0); err == nil {
		t.Error("zero score accepted")
	}
}

func TestSynonymsSorted(t *testing.T) {
	l := New()
	for _, pair := range [][2]string{{"a", "zz"}, {"a", "mm"}, {"a", "bb"}} {
		if err := l.AddSynonym(pair[0], pair[1], 2); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.AddSynonym("a", "close", 1); err != nil {
		t.Fatal(err)
	}
	ss := l.Synonyms("a")
	if len(ss) != 4 || ss[0].Other("a") != "close" {
		t.Fatalf("sort order wrong: %+v", ss)
	}
	for i := 1; i < len(ss); i++ {
		if ss[i-1].Score > ss[i].Score {
			t.Fatal("not sorted by score")
		}
	}
}

func TestAcronyms(t *testing.T) {
	l := New()
	if err := l.AddAcronym("WWW", "World", "Wide", "Web"); err != nil {
		t.Fatal(err)
	}
	a, ok := l.Expand("www")
	if !ok || len(a.Expansion) != 3 || a.Expansion[0] != "world" {
		t.Fatalf("Expand = %+v, %v", a, ok)
	}
	back := l.Contract("world")
	if len(back) != 1 || back[0].Short != "www" {
		t.Fatalf("Contract = %+v", back)
	}
	if _, ok := l.Expand("nosuch"); ok {
		t.Error("bogus acronym resolved")
	}
	if err := l.AddAcronym("", "x"); err == nil {
		t.Error("empty acronym accepted")
	}
	if err := l.AddAcronym("x"); err == nil {
		t.Error("expansion-less acronym accepted")
	}
	if err := l.AddAcronym("x", "!!"); err == nil {
		t.Error("unnormalizable expansion accepted")
	}
}

func TestLoad(t *testing.T) {
	src := `
# comment
syn database databases 1
syn web internet 2

acr www world wide web
`
	l, err := Load(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	syn, acr := l.Len()
	if syn != 2 || acr != 1 {
		t.Fatalf("Len = %d, %d", syn, acr)
	}
}

func TestLoadErrors(t *testing.T) {
	for _, src := range []string{
		"syn a b",        // missing score
		"syn a b notnum", // bad score
		"syn a a 1",      // self pair
		"acr x",          // no expansion
		"frob a b",       // unknown directive
	} {
		if _, err := Load(strings.NewReader(src)); err == nil {
			t.Errorf("Load(%q): expected error", src)
		}
	}
}

func TestBuiltin(t *testing.T) {
	l := Builtin()
	syn, acr := l.Len()
	if syn < 15 || acr < 8 {
		t.Fatalf("builtin too small: %d synonyms, %d acronyms", syn, acr)
	}
	// The paper's Example 1 needs publication ~ article/inproceedings.
	found := map[string]bool{}
	for _, s := range l.Synonyms("publication") {
		found[s.Other("publication")] = true
	}
	if !found["article"] || !found["inproceedings"] {
		t.Errorf("publication synonyms missing: %v", found)
	}
	// The paper's rule 6.
	a, ok := l.Expand("www")
	if !ok || strings.Join(a.Expansion, " ") != "world wide web" {
		t.Errorf("www expansion = %+v", a)
	}
}
