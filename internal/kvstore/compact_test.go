package kvstore

import (
	"fmt"
	"path/filepath"
	"testing"
)

func TestCompactTo(t *testing.T) {
	dir := t.TempDir()
	src, err := Open(filepath.Join(dir, "src.kv"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	// Lots of churn: inserts, overwrites, deletes, intermediate commits.
	for round := 0; round < 10; round++ {
		for i := 0; i < 500; i++ {
			if err := src.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d-%d", i, round))); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 100; i++ {
			if _, err := src.Delete([]byte(fmt.Sprintf("k%04d", i*5))); err != nil {
				t.Fatal(err)
			}
		}
		if err := src.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	dstPath := filepath.Join(dir, "dst.kv")
	if err := src.CompactTo(dstPath, nil); err != nil {
		t.Fatal(err)
	}
	dst, err := Open(dstPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if dst.Len() != src.Len() {
		t.Fatalf("Len: %d vs %d", dst.Len(), src.Len())
	}
	// Every pair identical, in order.
	srcC, dstC := src.Cursor(), dst.Cursor()
	srcC.First()
	dstC.First()
	for srcC.Valid() {
		if !dstC.Valid() {
			t.Fatal("compacted store ran out early")
		}
		if string(srcC.Key()) != string(dstC.Key()) || string(srcC.Value()) != string(dstC.Value()) {
			t.Fatalf("mismatch: %q=%q vs %q=%q", srcC.Key(), srcC.Value(), dstC.Key(), dstC.Value())
		}
		srcC.Next()
		dstC.Next()
	}
	if dstC.Valid() {
		t.Fatal("compacted store has extra keys")
	}
	// The compacted file must be no larger and have no free pages.
	ss, ds := src.Stats(), dst.Stats()
	if ds.FileSize > ss.FileSize {
		t.Errorf("compacted file grew: %d > %d", ds.FileSize, ss.FileSize)
	}
	if ds.FreePages != 0 {
		t.Errorf("compacted store has %d free pages", ds.FreePages)
	}
}

func TestCompactToErrors(t *testing.T) {
	dir := t.TempDir()
	src, err := Open(filepath.Join(dir, "src.kv"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if err := src.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	// existing target rejected
	exist := filepath.Join(dir, "exists.kv")
	other, err := Open(exist, nil)
	if err != nil {
		t.Fatal(err)
	}
	other.Close()
	if err := src.CompactTo(exist, nil); err == nil {
		t.Error("existing target accepted")
	}
	// read-only options rejected
	if err := src.CompactTo(filepath.Join(dir, "ro.kv"), &Options{ReadOnly: true}); err == nil {
		t.Error("read-only target accepted")
	}
}

func TestCompactToDifferentPageSize(t *testing.T) {
	dir := t.TempDir()
	src, err := Open(filepath.Join(dir, "src.kv"), &Options{PageSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	for i := 0; i < 300; i++ {
		if err := src.Put([]byte(fmt.Sprintf("key%05d", i)), []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	dstPath := filepath.Join(dir, "small.kv")
	if err := src.CompactTo(dstPath, &Options{PageSize: 1024}); err != nil {
		t.Fatal(err)
	}
	dst, err := Open(dstPath, &Options{PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if dst.Len() != 300 {
		t.Fatalf("Len = %d", dst.Len())
	}
}
