package kvstore

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// fillStore populates a store with a deterministic key set.
func fillStore(t *testing.T, s *Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%05d", i))
		v := []byte(fmt.Sprintf("value-%05d-%s", i, "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"))
		if err := s.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestFaultsReadError(t *testing.T) {
	f := &Faults{}
	s := NewMemWithFaults(f)
	defer s.Close()
	fillStore(t, s, 500)

	s.DropCaches() // force lookups back to the (faulty) pager
	f.FailReads(1)
	var sawErr bool
	for i := 0; i < 500; i++ {
		_, _, err := s.Get([]byte(fmt.Sprintf("key-%05d", i)))
		if err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("want ErrInjected, got %v", err)
			}
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("no read ever reached the faulty pager")
	}
	f.Clear()
	if _, ok, err := s.Get([]byte("key-00042")); err != nil || !ok {
		t.Fatalf("store did not heal after Clear: ok=%v err=%v", ok, err)
	}
	if f.Injected() == 0 {
		t.Error("injected counter not incremented")
	}
}

func TestFaultsWriteErrorKeepsCommittedState(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.kv")
	f := &Faults{}
	s, err := Open(path, &Options{Faults: f})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 200)

	// Arm a write failure, mutate, and try to commit: Commit must fail
	// with the injected error and the on-disk committed tree must stay
	// the previous one.
	f.FailWrites(1)
	if err := s.Put([]byte("key-00007"), []byte("overwritten")); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Commit = %v, want ErrInjected", err)
	}
	// The failpoint stays armed through Close so its implicit Commit
	// retry cannot publish the mutation either.
	s.Close()

	re, err := Open(path, nil)
	if err != nil {
		t.Fatalf("reopen after failed commit: %v", err)
	}
	defer re.Close()
	v, ok, err := re.Get([]byte("key-00007"))
	if err != nil || !ok {
		t.Fatalf("Get after reopen: ok=%v err=%v", ok, err)
	}
	// The failed commit never published a new meta page, so the old
	// committed value must still be visible.
	if want := "value-00007-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"; string(v) != want {
		t.Fatalf("after failed commit Get = %q, want the committed %q", v, want)
	}
}

func TestFaultsTornWriteRecoversPreviousCommit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.kv")
	f := &Faults{}
	s, err := Open(path, &Options{Faults: f})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 200)

	// Tear the first page write of the next commit. The write reports
	// success, the commit publishes, and the corruption is silent until
	// a read hits the page. Open's reachability scan catches the CRC
	// mismatch and must fall back to the previous commit's meta slot —
	// the torn commit disappears, the committed state before it survives.
	f.TornWrite(1)
	if err := s.Put([]byte("key-00100"), []byte("new-value")); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatalf("torn-write commit should report success, got %v", err)
	}
	s.Close()

	re, err := Open(path, nil)
	if err != nil {
		t.Fatalf("Open after torn commit: %v", err)
	}
	defer re.Close()
	if got := re.OpStats().MetaFallbacks; got != 1 {
		t.Fatalf("MetaFallbacks = %d, want 1", got)
	}
	v, ok, err := re.Get([]byte("key-00100"))
	if err != nil || !ok {
		t.Fatalf("Get after recovery: ok=%v err=%v", ok, err)
	}
	if want := "value-00100-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"; string(v) != want {
		t.Fatalf("recovered Get = %q, want the pre-torn-commit %q", v, want)
	}
	if re.Len() != 200 {
		t.Fatalf("recovered Len = %d, want 200", re.Len())
	}
}

func TestFaultsLatencyAndCounters(t *testing.T) {
	f := &Faults{ReadLatency: 2 * time.Millisecond}
	s := NewMemWithFaults(f)
	defer s.Close()
	fillStore(t, s, 50)
	s.DropCaches()
	before := f.Reads()
	start := time.Now()
	for i := 0; i < 50; i++ {
		if _, _, err := s.Get([]byte(fmt.Sprintf("key-%05d", i))); err != nil {
			t.Fatal(err)
		}
	}
	delta := f.Reads() - before
	if delta == 0 {
		t.Fatal("no reads reached the pager")
	}
	if min := time.Duration(delta) * 2 * time.Millisecond; time.Since(start) < min {
		t.Errorf("latency not applied: %v elapsed for %d reads", time.Since(start), delta)
	}
	if f.Writes() == 0 {
		t.Error("write counter not incremented during fill")
	}
}

// TestCorruptionFlips persists a store, flips random bytes across the
// file, and asserts that reopening and reading either fails with a typed
// error or returns only correct data — never panics, never garbage.
func TestCorruptionFlips(t *testing.T) {
	dir := t.TempDir()
	clean := filepath.Join(dir, "clean.kv")
	s, err := Open(clean, nil)
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 300)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		corrupt := append([]byte(nil), pristine...)
		for i := 0; i < 1+rng.Intn(4); i++ {
			pos := rng.Intn(len(corrupt))
			corrupt[pos] ^= byte(1 + rng.Intn(255))
		}
		path := filepath.Join(dir, fmt.Sprintf("corrupt-%d.kv", trial))
		if err := os.WriteFile(path, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic on corrupt store: %v", trial, r)
				}
			}()
			cs, err := Open(path, nil)
			if err != nil {
				return // typed rejection at Open is a pass
			}
			defer cs.Close()
			for i := 0; i < 300; i += 17 {
				k := fmt.Sprintf("key-%05d", i)
				v, ok, err := cs.Get([]byte(k))
				if err != nil {
					return // typed rejection at read is a pass
				}
				if ok {
					want := fmt.Sprintf("value-%05d-%s", i, "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")
					if string(v) != want {
						t.Fatalf("trial %d: silent wrong data for %s: %q", trial, k, v)
					}
				}
			}
		}()
	}
}

// TestFaultsErrorRate checks the probabilistic failpoint's endpoints and a
// mid-range rate: p=0 never fires, p=1 always fires, p=0.5 fires roughly
// half the time under the fixed default seed.
func TestFaultsErrorRate(t *testing.T) {
	f := &Faults{}
	s := NewMemWithFaults(f)
	defer s.Close()
	fillStore(t, s, 200)

	// p=0 (disarmed): everything succeeds.
	s.DropCaches()
	for i := 0; i < 200; i++ {
		if _, ok, err := s.Get([]byte(fmt.Sprintf("key-%05d", i))); err != nil || !ok {
			t.Fatalf("disarmed read failed: ok=%v err=%v", ok, err)
		}
	}

	// p=1: the first pager read fails, typed.
	f.SetErrorRate(1)
	s.DropCaches()
	if _, _, err := s.Get([]byte("key-00000")); !errors.Is(err, ErrInjected) {
		t.Fatalf("p=1 read error = %v, want ErrInjected", err)
	}

	// p=0.5: out of many pager reads, both outcomes occur, and the
	// injected share is nowhere near the endpoints.
	f.Clear()
	f.SetErrorRate(0.5)
	f.Seed(12345)
	var okReads, failed int
	for i := 0; i < 200; i++ {
		s.DropCaches()
		if _, _, err := s.Get([]byte(fmt.Sprintf("key-%05d", i))); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("want ErrInjected, got %v", err)
			}
			failed++
		} else {
			okReads++
		}
	}
	if failed == 0 || okReads == 0 {
		t.Fatalf("p=0.5 over 200 reads: %d failed, %d ok — want both outcomes", failed, okReads)
	}
	f.Clear()
	s.DropCaches()
	if _, ok, err := s.Get([]byte("key-00042")); err != nil || !ok {
		t.Fatalf("store did not heal after Clear: ok=%v err=%v", ok, err)
	}
}

// TestFaultsJitter checks the latency-jitter failpoint: a read through an
// armed range takes at least the minimum, and Clear disarms it.
func TestFaultsJitter(t *testing.T) {
	f := &Faults{}
	s := NewMemWithFaults(f)
	defer s.Close()
	fillStore(t, s, 50)

	const min = 2 * time.Millisecond
	f.SetJitter(min, 4*time.Millisecond)
	s.DropCaches()
	start := time.Now()
	if _, ok, err := s.Get([]byte("key-00000")); err != nil || !ok {
		t.Fatalf("jittered read failed: ok=%v err=%v", ok, err)
	}
	if el := time.Since(start); el < min {
		t.Errorf("jittered read took %v, want >= %v", el, min)
	}
	f.Clear()
	start = time.Now()
	for i := 0; i < 20; i++ {
		if err := f.OnRead(); err != nil {
			t.Fatalf("OnRead after Clear: %v", err)
		}
	}
	if el := time.Since(start); el >= 20*min {
		t.Errorf("20 reads after Clear took %v — jitter range still armed", el)
	}
}

// TestFaultsSeedReproducible: the same seed yields the same injection
// pattern over the same operation sequence.
func TestFaultsSeedReproducible(t *testing.T) {
	pattern := func(seed uint64) []bool {
		f := &Faults{}
		f.SetErrorRate(0.3)
		f.Seed(seed)
		out := make([]bool, 64)
		for i := range out {
			out[i] = f.OnRead() != nil
		}
		return out
	}
	a, b := pattern(7), pattern(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
	c := pattern(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced an identical 64-op pattern")
	}
}
