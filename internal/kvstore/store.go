package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Options configure Open.
type Options struct {
	// PageSize must be a power-of-two-ish size >= 512; 0 means
	// DefaultPageSize. It is fixed at creation and verified on reopen.
	PageSize int
	// ReadOnly opens the file without write access; Put/Delete/Commit
	// fail with ErrReadOnly.
	ReadOnly bool
	// CacheSize bounds the number of clean decoded pages kept in memory;
	// 0 means 8192 pages. Dirty pages are always retained until commit.
	CacheSize int
	// Faults, when non-nil, interposes the fault-injection wrapper
	// between the store and its pager — reads and writes then fail, slow
	// down, or tear according to the armed failpoints. Production code
	// leaves it nil; robustness tests arm it to prove every storage
	// fault surfaces as a typed error.
	Faults *Faults
}

// ErrReadOnly is returned by mutating operations on a read-only store.
var ErrReadOnly = errors.New("kvstore: store is read-only")

// ErrTooLarge is returned when a key/value pair cannot fit a quarter page,
// the bound that guarantees node splits always make progress.
var ErrTooLarge = errors.New("kvstore: key/value too large for page size")

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("kvstore: store is closed")

// ErrChecksum is returned when a page's CRC32 trailer does not match its
// contents — a torn write or bit rot. It is always wrapped with the page
// ID; test with errors.Is.
var ErrChecksum = errors.New("kvstore: page checksum mismatch")

// Store is an ordered key-value store backed by a copy-on-write B+tree.
// It is safe for concurrent readers; writes are serialized internally.
// Uncommitted mutations live only in memory until Commit.
type Store struct {
	mu sync.RWMutex
	// cacheMu serializes cache population by concurrent readers; the
	// write path holds mu exclusively and so never races with readers.
	cacheMu  sync.Mutex
	pager    pager
	pageSize int
	readOnly bool
	closed   bool

	rootID    uint32
	pageCount uint32
	kvCount   uint64
	txid      uint64 // last committed transaction; slot = txid % 2
	epoch     uint64 // application epoch published with the root at Commit

	// lastMeta is the most recently committed header, the state Rollback
	// restores after a failed commit.
	lastMeta meta

	cache     map[uint32]*node
	cacheMax  int
	freeIDs   []uint32
	pendFree  []uint32
	committed bool // true when the in-memory state matches disk

	ops opCounters // page-IO counters, see OpStats
}

// MaxKV returns the largest key+value payload the store accepts.
func (s *Store) MaxKV() int { return s.pageSize/4 - 4 }

// maxNodeSize is the usable payload of a node page: the CRC trailer is
// reserved out of every page.
func (s *Store) maxNodeSize() int { return s.pageSize - pageCRCSize }

// NewMem returns a store backed by anonymous memory. Commit is a no-op
// flush; Close discards everything.
func NewMem() *Store { return NewMemWithFaults(nil) }

// NewMemWithFaults is NewMem with a fault-injection wrapper armed between
// the store and its in-memory pager. The decoded-page cache is kept small
// so repeated reads actually hit the (faulty) pager instead of memory.
func NewMemWithFaults(f *Faults) *Store {
	var p pager = newMemPager(DefaultPageSize)
	cacheMax := 1 << 30 // memory store keeps everything decoded
	if f != nil {
		p = &faultPager{inner: p, f: f}
		cacheMax = 8
	}
	return &Store{
		pager:     p,
		pageSize:  DefaultPageSize,
		pageCount: 2, // both meta slots
		cache:     make(map[uint32]*node),
		cacheMax:  cacheMax,
		committed: true,
		lastMeta:  meta{pageSize: uint32(DefaultPageSize), pageCount: 2},
	}
}

// Open opens or creates a store file.
func Open(path string, opts *Options) (*Store, error) {
	o := Options{}
	if opts != nil {
		o = *opts
	}
	if o.PageSize == 0 {
		o.PageSize = DefaultPageSize
	}
	if o.PageSize < minPageSize {
		return nil, fmt.Errorf("kvstore: page size %d below minimum %d", o.PageSize, minPageSize)
	}
	if o.CacheSize == 0 {
		o.CacheSize = 8192
	}
	fp, err := newFilePager(path, o.PageSize, o.ReadOnly)
	if err != nil {
		return nil, err
	}
	var pg pager = fp
	if o.Faults != nil {
		pg = &faultPager{inner: fp, f: o.Faults}
	}
	s := &Store{
		pager:     pg,
		pageSize:  o.PageSize,
		readOnly:  o.ReadOnly,
		cache:     make(map[uint32]*node),
		cacheMax:  o.CacheSize,
		committed: true,
	}
	st, err := fp.f.Stat()
	if err != nil {
		fp.close()
		return nil, fmt.Errorf("kvstore: stat: %w", err)
	}
	if st.Size() == 0 {
		if o.ReadOnly {
			fp.close()
			return nil, errors.New("kvstore: empty file opened read-only")
		}
		s.pageCount = 2
		m := meta{pageSize: uint32(s.pageSize), pageCount: 2}
		if err := s.pagerWrite(metaPageID, encodeMeta(m, s.pageSize)); err != nil {
			fp.close()
			return nil, err
		}
		// Zero-fill the second slot so the file always spans both meta
		// pages; an all-zero slot fails the magic check and never wins.
		if err := s.pagerWrite(metaPageID2, make([]byte, s.pageSize)); err != nil {
			fp.close()
			return nil, err
		}
		if err := s.pager.sync(); err != nil {
			fp.close()
			return nil, err
		}
		s.lastMeta = m
		return s, nil
	}
	// Read both meta slots and adopt the newest valid one whose tree
	// passes the reachability scan; fall back to the other slot when the
	// newest commit turns out torn (meta or data). Pages freed by commit N
	// are reused no earlier than commit N+1, so the previous slot's tree
	// is always intact on disk.
	var cands []meta
	var firstErr error
	for _, id := range []uint32{metaPageID, metaPageID2} {
		raw, err := s.pagerRead(id)
		if err == nil {
			var m meta
			if m, err = decodeMeta(raw); err == nil {
				cands = append(cands, m)
				continue
			}
			s.noteDecodeErr(err)
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].txid > cands[j].txid })
	for i, m := range cands {
		if int(m.pageSize) != o.PageSize {
			fp.close()
			return nil, fmt.Errorf("kvstore: file page size %d != requested %d", m.pageSize, o.PageSize)
		}
		s.rootID = m.rootID
		s.pageCount = m.pageCount
		s.kvCount = m.kvCount
		s.txid = m.txid
		s.epoch = m.epoch
		if err := s.rebuildFreeList(); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			if i+1 < len(cands) {
				s.noteMetaFallback()
			}
			continue
		}
		s.lastMeta = m
		return s, nil
	}
	fp.close()
	if firstErr == nil {
		firstErr = errors.New("kvstore: no valid meta slot")
	}
	return nil, firstErr
}

// rebuildFreeList scans reachability from the root; every allocated page
// that is not reachable (and not the meta page) is free. The scan doubles
// as a structural integrity check.
func (s *Store) rebuildFreeList() error {
	reachable := make(map[uint32]bool, s.pageCount)
	reachable[metaPageID] = true
	reachable[metaPageID2] = true
	if s.rootID != 0 {
		var walk func(id uint32) error
		walk = func(id uint32) error {
			if id <= metaPageID2 || id >= s.pageCount {
				return fmt.Errorf("kvstore: page %d out of bounds (count %d)", id, s.pageCount)
			}
			if reachable[id] {
				return fmt.Errorf("kvstore: page %d reached twice (cycle or shared page)", id)
			}
			reachable[id] = true
			n, err := s.load(id)
			if err != nil {
				return err
			}
			if n.isLeaf {
				return nil
			}
			for _, c := range n.children {
				if err := walk(c); err != nil {
					return err
				}
			}
			return nil
		}
		if err := walk(s.rootID); err != nil {
			return err
		}
	}
	s.freeIDs = s.freeIDs[:0]
	for id := uint32(1); id < s.pageCount; id++ {
		if !reachable[id] {
			s.freeIDs = append(s.freeIDs, id)
		}
	}
	return nil
}

// load returns the decoded node for id, reading and caching it on demand.
func (s *Store) load(id uint32) (*node, error) {
	if n, ok := s.cache[id]; ok {
		return n, nil
	}
	raw, err := s.pagerRead(id)
	if err != nil {
		return nil, err
	}
	n, err := decodeNode(id, raw)
	if err != nil {
		s.noteDecodeErr(err)
		return nil, err
	}
	s.cacheAdd(n)
	return n, nil
}

func (s *Store) cacheAdd(n *node) {
	if len(s.cache) >= s.cacheMax {
		// Evict an arbitrary clean page. Go map iteration order is
		// effectively random, which is good enough for this cache.
		for id, c := range s.cache {
			if !c.dirty {
				delete(s.cache, id)
				break
			}
		}
	}
	s.cache[n.id] = n
}

// alloc returns a fresh page ID, reusing committed-free pages first.
func (s *Store) alloc() uint32 {
	if n := len(s.freeIDs); n > 0 {
		id := s.freeIDs[n-1]
		s.freeIDs = s.freeIDs[:n-1]
		return id
	}
	id := s.pageCount
	s.pageCount++
	return id
}

// modifiable returns a dirty node the caller may mutate: n itself when it
// is already dirty, otherwise a COW clone under a fresh page ID (the old
// page is freed after the next commit).
func (s *Store) modifiable(n *node) *node {
	if n.dirty {
		return n
	}
	c := &node{
		id:       s.alloc(),
		isLeaf:   n.isLeaf,
		keys:     append([][]byte(nil), n.keys...),
		dirty:    true,
		children: append([]uint32(nil), n.children...),
	}
	if n.isLeaf {
		c.vals = append([][]byte(nil), n.vals...)
	}
	s.pendFree = append(s.pendFree, n.id)
	s.cache[c.id] = c
	return c
}

// Get returns the value stored under key.
func (s *Store) Get(key []byte) ([]byte, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	if s.rootID == 0 {
		return nil, false, nil
	}
	id := s.rootID
	for {
		n, err := s.loadLocked(id)
		if err != nil {
			return nil, false, err
		}
		if n.isLeaf {
			i, found := n.search(key)
			if !found {
				return nil, false, nil
			}
			return append([]byte(nil), n.vals[i]...), true, nil
		}
		id = n.children[n.route(key)]
	}
}

// loadLocked is load for paths that hold only the read lock: the cache map
// is not safe for concurrent mutation, so reader-side population goes
// through cacheMu.
func (s *Store) loadLocked(id uint32) (*node, error) {
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	return s.load(id)
}

// search finds key in a leaf: (position, found).
func (n *node) search(key []byte) (int, bool) {
	i := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) >= 0 })
	if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
		return i, true
	}
	return i, false
}

// route picks the child index covering key in a branch node.
func (n *node) route(key []byte) int {
	return sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(key, n.keys[i]) < 0 })
}

// Put stores value under key, replacing any previous value.
func (s *Store) Put(key, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return ErrClosed
	case s.readOnly:
		return ErrReadOnly
	case len(key) == 0:
		return errors.New("kvstore: empty key")
	case cellSize(key, value) > s.pageSize/4:
		return fmt.Errorf("%w: %d+%d bytes, max payload %d", ErrTooLarge, len(key), len(value), s.MaxKV())
	}
	s.committed = false
	if s.rootID == 0 {
		root := &node{id: s.alloc(), isLeaf: true, dirty: true}
		s.cache[root.id] = root
		s.rootID = root.id
	}
	newRoot, sep, right, err := s.insert(s.rootID, key, value)
	if err != nil {
		return err
	}
	if right != 0 {
		root := &node{
			id:       s.alloc(),
			keys:     [][]byte{sep},
			children: []uint32{newRoot, right},
			dirty:    true,
		}
		s.cache[root.id] = root
		newRoot = root.id
	}
	s.rootID = newRoot
	return nil
}

// insert adds key/value below page id, returning the (possibly COW-moved)
// page ID plus a separator and right sibling when the node split.
func (s *Store) insert(id uint32, key, value []byte) (uint32, []byte, uint32, error) {
	n, err := s.load(id)
	if err != nil {
		return 0, nil, 0, err
	}
	n = s.modifiable(n)
	if n.isLeaf {
		i, found := n.search(key)
		if found {
			n.vals[i] = append([]byte(nil), value...)
		} else {
			n.keys = insertBytes(n.keys, i, append([]byte(nil), key...))
			n.vals = insertBytes(n.vals, i, append([]byte(nil), value...))
			s.kvCount++
		}
	} else {
		ci := n.route(key)
		newChild, sep, right, err := s.insert(n.children[ci], key, value)
		if err != nil {
			return 0, nil, 0, err
		}
		n.children[ci] = newChild
		if right != 0 {
			n.keys = insertBytes(n.keys, ci, sep)
			n.children = insertUint32(n.children, ci+1, right)
		}
	}
	if n.size() <= s.maxNodeSize() {
		return n.id, nil, 0, nil
	}
	sep, rightID := s.split(n)
	return n.id, sep, rightID, nil
}

// split divides an overfull dirty node roughly in half by encoded size and
// returns the separator key and new right sibling ID.
func (s *Store) split(n *node) ([]byte, uint32) {
	// Find the split index m: keys[0:m] stay left.
	half := n.size() / 2
	acc := 0
	m := 0
	for i, k := range n.keys {
		if n.isLeaf {
			acc += cellSize(k, n.vals[i])
		} else {
			acc += 6 + len(k)
		}
		if acc >= half {
			m = i + 1
			break
		}
	}
	if m <= 0 {
		m = 1
	}
	if m >= len(n.keys) {
		m = len(n.keys) - 1
	}
	right := &node{id: s.alloc(), isLeaf: n.isLeaf, dirty: true}
	var sep []byte
	if n.isLeaf {
		sep = append([]byte(nil), n.keys[m]...)
		right.keys = append(right.keys, n.keys[m:]...)
		right.vals = append(right.vals, n.vals[m:]...)
		n.keys = n.keys[:m]
		n.vals = n.vals[:m]
	} else {
		// The middle key moves up; it is kept in neither side.
		sep = n.keys[m]
		right.keys = append(right.keys, n.keys[m+1:]...)
		right.children = append(right.children, n.children[m+1:]...)
		n.keys = n.keys[:m]
		n.children = n.children[:m+1]
	}
	s.cache[right.id] = right
	return sep, right.id
}

// Delete removes key, reporting whether it was present.
func (s *Store) Delete(key []byte) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return false, ErrClosed
	case s.readOnly:
		return false, ErrReadOnly
	}
	if s.rootID == 0 {
		return false, nil
	}
	s.committed = false
	newRoot, deleted, empty, err := s.remove(s.rootID, key)
	if err != nil {
		return false, err
	}
	if empty {
		s.pendFree = append(s.pendFree, newRoot)
		s.rootID = 0
		return deleted, nil
	}
	s.rootID = newRoot
	// Collapse a root branch chain with single children.
	for {
		n, err := s.load(s.rootID)
		if err != nil {
			return deleted, err
		}
		if n.isLeaf || len(n.children) > 1 {
			break
		}
		s.pendFree = append(s.pendFree, n.id)
		delete(s.cache, n.id)
		s.rootID = n.children[0]
	}
	return deleted, nil
}

// remove deletes key below page id; it returns the possibly-moved page ID,
// whether the key existed, and whether the node is now empty.
func (s *Store) remove(id uint32, key []byte) (uint32, bool, bool, error) {
	n, err := s.load(id)
	if err != nil {
		return 0, false, false, err
	}
	if n.isLeaf {
		i, found := n.search(key)
		if !found {
			return n.id, false, len(n.keys) == 0, nil
		}
		n = s.modifiable(n)
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		s.kvCount--
		return n.id, true, len(n.keys) == 0, nil
	}
	ci := n.route(key)
	newChild, deleted, childEmpty, err := s.remove(n.children[ci], key)
	if err != nil {
		return 0, false, false, err
	}
	if !deleted && newChild == n.children[ci] {
		return n.id, false, false, nil
	}
	n = s.modifiable(n)
	n.children[ci] = newChild
	if childEmpty {
		s.pendFree = append(s.pendFree, newChild)
		delete(s.cache, newChild)
		n.children = append(n.children[:ci], n.children[ci+1:]...)
		ki := ci
		if ki >= len(n.keys) {
			ki = len(n.keys) - 1
		}
		if ki >= 0 {
			n.keys = append(n.keys[:ki], n.keys[ki+1:]...)
		}
	}
	return n.id, deleted, len(n.children) == 0, nil
}

func insertBytes(s [][]byte, i int, v []byte) [][]byte {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertUint32(s []uint32, i int, v uint32) []uint32 {
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// Commit writes every dirty page, syncs, then publishes the new root via
// one of the two alternating meta slots. After a successful commit, pages
// freed by COW become reusable. A commit that fails midway leaves the
// previous committed state recoverable — on disk always (the previous
// meta slot and its tree are untouched), and in memory via Rollback.
func (s *Store) Commit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return ErrClosed
	case s.readOnly:
		return ErrReadOnly
	case s.committed:
		return nil
	}
	for id, n := range s.cache {
		if !n.dirty {
			continue
		}
		buf, err := n.encode(s.pageSize)
		if err != nil {
			return err
		}
		if err := s.pagerWrite(id, buf); err != nil {
			return err
		}
	}
	if err := s.pager.sync(); err != nil {
		return err
	}
	m := meta{
		pageSize:  uint32(s.pageSize),
		rootID:    s.rootID,
		pageCount: s.pageCount,
		kvCount:   s.kvCount,
		txid:      s.txid + 1,
		epoch:     s.epoch,
	}
	// Alternate slots by txid parity: this write can only destroy the
	// slot of the commit before last, never the most recent good one.
	slot := metaPageID
	if m.txid%2 == 1 {
		slot = metaPageID2
	}
	if err := s.pagerWrite(slot, encodeMeta(m, s.pageSize)); err != nil {
		return err
	}
	if err := s.pager.sync(); err != nil {
		return err
	}
	s.txid = m.txid
	s.lastMeta = m
	for _, n := range s.cache {
		n.dirty = false
	}
	s.freeIDs = append(s.freeIDs, s.pendFree...)
	s.pendFree = s.pendFree[:0]
	s.committed = true
	return nil
}

// Rollback discards every uncommitted mutation and restores the last
// committed state — the in-memory complement of the on-disk recovery the
// dual meta slots provide. A failed Commit leaves the store poisoned
// (in-memory root pointing at pages that may not all be durable); Rollback
// makes it serviceable again without a close/reopen cycle.
func (s *Store) Rollback() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return ErrClosed
	case s.readOnly:
		return ErrReadOnly
	case s.committed:
		return nil
	}
	for id, n := range s.cache {
		if n.dirty {
			delete(s.cache, id)
		}
	}
	m := s.lastMeta
	s.rootID = m.rootID
	s.pageCount = m.pageCount
	s.kvCount = m.kvCount
	s.epoch = m.epoch
	s.pendFree = s.pendFree[:0]
	if err := s.rebuildFreeList(); err != nil {
		return err
	}
	s.committed = true
	return nil
}

// Epoch returns the application epoch published by the last commit (or
// staged by SetEpoch since).
func (s *Store) Epoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// SetEpoch stages a new application epoch; the next Commit publishes it
// atomically with the root. The epoch is an opaque uint64 the embedding
// layer (the live-update engine) uses to tie a committed tree to its WAL
// position: replay after a crash resumes from the epoch the store actually
// reached.
func (s *Store) SetEpoch(e uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return ErrClosed
	case s.readOnly:
		return ErrReadOnly
	}
	if s.epoch != e {
		s.epoch = e
		s.committed = false
	}
	return nil
}

// DeleteRange removes every key in [lo, hi), returning how many existed.
// Keys are collected first (cursors do not survive writes), then deleted.
func (s *Store) DeleteRange(lo, hi []byte) (int, error) {
	var keys [][]byte
	if err := s.Range(lo, hi, func(k, v []byte) bool {
		keys = append(keys, append([]byte(nil), k...))
		return true
	}); err != nil {
		return 0, err
	}
	for _, k := range keys {
		if _, err := s.Delete(k); err != nil {
			return 0, err
		}
	}
	return len(keys), nil
}

// Close commits pending changes (when writable) and releases the file.
func (s *Store) Close() error {
	if !s.readOnly {
		if err := s.Commit(); err != nil && !errors.Is(err, ErrClosed) {
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.pager.close()
}

// DropCaches evicts every clean decoded page, forcing subsequent reads
// back to the pager. Dirty (uncommitted) pages are retained. It exists for
// memory-pressure relief and for fault-injection tests that need reads to
// actually reach the (faulty) pager.
func (s *Store) DropCaches() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	for id, n := range s.cache {
		if !n.dirty {
			delete(s.cache, id)
		}
	}
}

// Len returns the number of stored keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return int(s.kvCount)
}

// Stats describes the physical state of the store.
type Stats struct {
	Keys      int
	Pages     int
	FreePages int
	FileSize  int64
	PageSize  int
	// Txid is the last committed transaction sequence number.
	Txid uint64
	// Epoch is the application epoch of the last commit (see SetEpoch).
	Epoch uint64
}

// Stats returns physical storage statistics.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Keys:      int(s.kvCount),
		Pages:     int(s.pageCount),
		FreePages: len(s.freeIDs) + len(s.pendFree),
		FileSize:  pagerSize(s.pager),
		PageSize:  s.pageSize,
		Txid:      s.txid,
		Epoch:     s.epoch,
	}
}
