package kvstore

import "bytes"

// Cursor iterates keys in ascending byte order. A cursor is a snapshot of
// navigation state, not of data: it is invalidated by any Put or Delete on
// the store and must not be used concurrently with writes. Multiple
// cursors may run concurrently with each other and with Get.
type Cursor struct {
	s     *Store
	stack []cursorFrame
	err   error
	valid bool
}

type cursorFrame struct {
	n   *node
	idx int // child index in branches, key index in leaves
}

// Cursor returns a new unpositioned cursor; call First or Seek next.
func (s *Store) Cursor() *Cursor { return &Cursor{s: s} }

// Err returns the first IO/decode error the cursor hit, if any.
func (c *Cursor) Err() error { return c.err }

// Valid reports whether the cursor is positioned on a key.
func (c *Cursor) Valid() bool { return c.valid && c.err == nil }

// Key returns the current key; valid only while Valid() is true. The
// returned slice is shared with the cursor; copy it to retain it.
func (c *Cursor) Key() []byte {
	f := c.top()
	return f.n.keys[f.idx]
}

// Value returns the current value under the same contract as Key.
func (c *Cursor) Value() []byte {
	f := c.top()
	return f.n.vals[f.idx]
}

func (c *Cursor) top() *cursorFrame { return &c.stack[len(c.stack)-1] }

func (c *Cursor) fail(err error) {
	c.err = err
	c.valid = false
}

// First positions the cursor at the smallest key.
func (c *Cursor) First() {
	c.stack = c.stack[:0]
	c.valid = false
	c.s.mu.RLock()
	root := c.s.rootID
	c.s.mu.RUnlock()
	if root == 0 {
		return
	}
	id := root
	for {
		n, err := c.load(id)
		if err != nil {
			c.fail(err)
			return
		}
		c.stack = append(c.stack, cursorFrame{n: n})
		if n.isLeaf {
			if len(n.keys) == 0 {
				return // empty root leaf
			}
			c.valid = true
			return
		}
		id = n.children[0]
	}
}

// Seek positions the cursor at the smallest key >= key.
func (c *Cursor) Seek(key []byte) {
	c.stack = c.stack[:0]
	c.valid = false
	c.s.mu.RLock()
	root := c.s.rootID
	c.s.mu.RUnlock()
	if root == 0 {
		return
	}
	id := root
	for {
		n, err := c.load(id)
		if err != nil {
			c.fail(err)
			return
		}
		if n.isLeaf {
			i, _ := n.search(key)
			c.stack = append(c.stack, cursorFrame{n: n, idx: i})
			if i >= len(n.keys) {
				// All keys in this leaf are smaller; step to the
				// next leaf.
				c.top().idx = len(n.keys) - 1
				if len(n.keys) == 0 {
					return
				}
				c.valid = true
				c.Next()
				return
			}
			c.valid = true
			return
		}
		i := n.route(key)
		c.stack = append(c.stack, cursorFrame{n: n, idx: i})
		id = n.children[i]
	}
}

// Next advances to the following key in order.
func (c *Cursor) Next() {
	if !c.Valid() {
		return
	}
	f := c.top()
	if f.idx+1 < len(f.n.keys) {
		f.idx++
		return
	}
	// Walk up until a branch frame has a next child, then descend to the
	// leftmost leaf of that subtree.
	c.stack = c.stack[:len(c.stack)-1]
	for len(c.stack) > 0 {
		f := c.top()
		if f.idx+1 <= len(f.n.keys) && f.idx+1 < len(f.n.children) {
			f.idx++
			id := f.n.children[f.idx]
			for {
				n, err := c.load(id)
				if err != nil {
					c.fail(err)
					return
				}
				c.stack = append(c.stack, cursorFrame{n: n})
				if n.isLeaf {
					if len(n.keys) == 0 {
						// Empty leaves cannot exist below a
						// branch, but fail soft if one does.
						c.valid = false
						return
					}
					return
				}
				id = n.children[0]
			}
		}
		c.stack = c.stack[:len(c.stack)-1]
	}
	c.valid = false
}

func (c *Cursor) load(id uint32) (*node, error) {
	c.s.mu.RLock()
	defer c.s.mu.RUnlock()
	if c.s.closed {
		return nil, ErrClosed
	}
	return c.s.loadLocked(id)
}

// Range calls fn for every key in [lo, hi) in order; a nil hi means "to the
// end". Iteration stops early when fn returns false. It returns the first
// cursor error.
func (s *Store) Range(lo, hi []byte, fn func(k, v []byte) bool) error {
	c := s.Cursor()
	if lo == nil {
		c.First()
	} else {
		c.Seek(lo)
	}
	for c.Valid() {
		if hi != nil && bytes.Compare(c.Key(), hi) >= 0 {
			break
		}
		if !fn(c.Key(), c.Value()) {
			break
		}
		c.Next()
	}
	return c.Err()
}
