package kvstore

import (
	"fmt"
	"os"
)

// CompactTo streams every live key-value pair into a brand-new store at
// path, producing a file with no free pages and freshly packed nodes. The
// source store is unchanged. Compaction matters after bulk rebuilds: the
// copy-on-write design leaves one generation of dead pages per commit,
// and an index built with many intermediate commits can carry substantial
// slack.
func (s *Store) CompactTo(path string, opts *Options) (retErr error) {
	o := Options{PageSize: s.pageSize}
	if opts != nil {
		o = *opts
		if o.PageSize == 0 {
			o.PageSize = s.pageSize
		}
	}
	if o.ReadOnly {
		return fmt.Errorf("kvstore: cannot compact into a read-only store")
	}
	if _, err := os.Stat(path); err == nil {
		return fmt.Errorf("kvstore: compact target %s already exists", path)
	}
	dst, err := Open(path, &o)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := dst.Close(); retErr == nil {
			retErr = cerr
		}
		if retErr != nil {
			os.Remove(path)
		}
	}()
	// Ascending-order inserts build a right-leaning tree with perfectly
	// packed left siblings — the ideal layout for a read-mostly index.
	if err := s.Range(nil, nil, func(k, v []byte) bool {
		if err := dst.Put(k, v); err != nil {
			retErr = err
			return false
		}
		return true
	}); err != nil {
		return err
	}
	if retErr != nil {
		return retErr
	}
	return dst.Commit()
}
