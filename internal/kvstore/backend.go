package kvstore

import "xrefine/internal/storage"

// This file is the B+tree store's storage.Backend surface: the handful of
// methods the pluggable-engine interface needs beyond the original kvstore
// API. *Store satisfies storage.Backend directly — no adapter — so every
// existing *kvstore.Store value can flow into backend-typed code as-is.

var _ storage.Backend = (*Store)(nil)

// Kind names the engine: "btree".
func (s *Store) Kind() storage.Kind { return storage.KindBTree }

// Sync forces buffered page writes to stable storage without publishing a
// new commit. Commit already syncs; this is for callers that wrote raw
// state and want durability before the next commit point.
func (s *Store) Sync() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	return s.pager.sync()
}

// Checkpoint commits pending changes. The copy-on-write design reuses
// freed pages on the next commit, so there is no separate fold step; the
// offline CompactTo rewrite exists for reclaiming file size, but a
// checkpoint must be safe to run inline under live load, which Commit is.
func (s *Store) Checkpoint() error { return s.Commit() }

// StorageStats returns the engine-generic statistics snapshot.
func (s *Store) StorageStats() storage.Stats {
	st := s.Stats()
	return storage.Stats{
		Kind:      storage.KindBTree,
		Keys:      st.Keys,
		DiskBytes: st.FileSize,
		Txid:      st.Txid,
		Epoch:     st.Epoch,
		Pages:     st.Pages,
		FreePages: st.FreePages,
		PageSize:  st.PageSize,
	}
}
