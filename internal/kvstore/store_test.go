package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func tempStore(t *testing.T) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.kv")
	s, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s, path
}

func TestPutGetDelete(t *testing.T) {
	for name, open := range map[string]func(t *testing.T) *Store{
		"mem":  func(t *testing.T) *Store { return NewMem() },
		"file": func(t *testing.T) *Store { s, _ := tempStore(t); return s },
	} {
		t.Run(name, func(t *testing.T) {
			s := open(t)
			defer s.Close()
			if _, ok, err := s.Get([]byte("missing")); err != nil || ok {
				t.Fatalf("Get on empty: %v %v", ok, err)
			}
			if err := s.Put([]byte("k1"), []byte("v1")); err != nil {
				t.Fatal(err)
			}
			if err := s.Put([]byte("k2"), []byte("v2")); err != nil {
				t.Fatal(err)
			}
			v, ok, err := s.Get([]byte("k1"))
			if err != nil || !ok || string(v) != "v1" {
				t.Fatalf("Get k1 = %q %v %v", v, ok, err)
			}
			// overwrite
			if err := s.Put([]byte("k1"), []byte("v1b")); err != nil {
				t.Fatal(err)
			}
			v, _, _ = s.Get([]byte("k1"))
			if string(v) != "v1b" {
				t.Fatalf("overwrite failed: %q", v)
			}
			if s.Len() != 2 {
				t.Fatalf("Len = %d", s.Len())
			}
			del, err := s.Delete([]byte("k1"))
			if err != nil || !del {
				t.Fatalf("Delete: %v %v", del, err)
			}
			if del, _ := s.Delete([]byte("k1")); del {
				t.Fatal("double delete reported true")
			}
			if _, ok, _ := s.Get([]byte("k1")); ok {
				t.Fatal("deleted key still present")
			}
			if s.Len() != 1 {
				t.Fatalf("Len after delete = %d", s.Len())
			}
		})
	}
}

func TestEmptyKeyAndTooLarge(t *testing.T) {
	s := NewMem()
	defer s.Close()
	if err := s.Put(nil, []byte("v")); err == nil {
		t.Error("empty key accepted")
	}
	big := make([]byte, s.MaxKV()+10)
	if err := s.Put([]byte("k"), big); err == nil {
		t.Error("oversized value accepted")
	}
	if err := s.Put([]byte("k"), make([]byte, s.MaxKV()-1)); err != nil {
		t.Errorf("max-size value rejected: %v", err)
	}
}

func TestManyKeysOrderedIteration(t *testing.T) {
	s := NewMem()
	defer s.Close()
	const n = 5000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		k := []byte(fmt.Sprintf("key-%06d", i))
		if err := s.Put(k, []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len = %d", s.Len())
	}
	c := s.Cursor()
	c.First()
	count := 0
	var prev []byte
	for c.Valid() {
		if prev != nil && bytes.Compare(prev, c.Key()) >= 0 {
			t.Fatalf("out of order at %d: %q >= %q", count, prev, c.Key())
		}
		prev = append(prev[:0], c.Key()...)
		count++
		c.Next()
	}
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
	if count != n {
		t.Fatalf("iterated %d of %d", count, n)
	}
}

func TestSeekSemantics(t *testing.T) {
	s := NewMem()
	defer s.Close()
	for _, k := range []string{"b", "d", "f"} {
		if err := s.Put([]byte(k), []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	cases := map[string]string{"a": "b", "b": "b", "c": "d", "f": "f", "g": ""}
	for seek, want := range cases {
		c := s.Cursor()
		c.Seek([]byte(seek))
		if want == "" {
			if c.Valid() {
				t.Errorf("Seek(%q) should be invalid, at %q", seek, c.Key())
			}
			continue
		}
		if !c.Valid() || string(c.Key()) != want {
			t.Errorf("Seek(%q) = %q (valid %v), want %q", seek, c.Key(), c.Valid(), want)
		}
	}
}

func TestRange(t *testing.T) {
	s := NewMem()
	defer s.Close()
	for i := 0; i < 10; i++ {
		if err := s.Put([]byte{byte('a' + i)}, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	err := s.Range([]byte("c"), []byte("g"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"c", "d", "e", "f"}; !equalStrings(got, want) {
		t.Fatalf("Range = %v, want %v", got, want)
	}
	// early stop
	got = got[:0]
	if err := s.Range(nil, nil, func(k, v []byte) bool { got = append(got, string(k)); return len(got) < 3 }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("early stop yielded %d", len(got))
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.kv")
	s, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%05d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil { // Close commits
		t.Fatal(err)
	}
	s2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2000 {
		t.Fatalf("reopened Len = %d", s2.Len())
	}
	v, ok, err := s2.Get([]byte("k01234"))
	if err != nil || !ok || string(v) != "v1234" {
		t.Fatalf("reopened Get = %q %v %v", v, ok, err)
	}
}

func TestUncommittedChangesDiscardedOnReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.kv")
	s, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("stable"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("volatile"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: drop the handle without Commit/Close.
	if err := s.pager.close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok, _ := s2.Get([]byte("stable")); !ok {
		t.Error("committed key lost")
	}
	if _, ok, _ := s2.Get([]byte("volatile")); ok {
		t.Error("uncommitted key survived simulated crash")
	}
}

func TestReadOnly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ro.kv")
	s, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	ro, err := Open(path, &Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if err := ro.Put([]byte("x"), []byte("y")); err != ErrReadOnly {
		t.Errorf("Put on read-only = %v", err)
	}
	if _, err := ro.Delete([]byte("k")); err != ErrReadOnly {
		t.Errorf("Delete on read-only = %v", err)
	}
	if v, ok, _ := ro.Get([]byte("k")); !ok || string(v) != "v" {
		t.Error("read-only Get failed")
	}
}

func TestOpenErrors(t *testing.T) {
	dir := t.TempDir()
	// empty file read-only
	empty := filepath.Join(dir, "empty.kv")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(empty, &Options{ReadOnly: true}); err == nil {
		t.Error("empty read-only open should fail")
	}
	// corrupt meta
	garbage := filepath.Join(dir, "garbage.kv")
	if err := os.WriteFile(garbage, make([]byte, DefaultPageSize), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(garbage, nil); err == nil {
		t.Error("garbage meta should fail to open")
	}
	// wrong page size on reopen
	path := filepath.Join(dir, "ps.kv")
	s, err := Open(path, &Options{PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	s.Put([]byte("k"), []byte("v"))
	s.Close()
	if _, err := Open(path, &Options{PageSize: 4096}); err == nil {
		t.Error("page size mismatch should fail")
	}
	// tiny page size
	if _, err := Open(filepath.Join(dir, "t.kv"), &Options{PageSize: 64}); err == nil {
		t.Error("tiny page size should fail")
	}
}

func TestClosedStore(t *testing.T) {
	s := NewMem()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("k"), []byte("v")); err != ErrClosed {
		t.Errorf("Put after close = %v", err)
	}
	if _, _, err := s.Get([]byte("k")); err != ErrClosed {
		t.Errorf("Get after close = %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
}

func TestFreePageReuse(t *testing.T) {
	s := NewMem()
	defer s.Close()
	// Repeatedly rewrite the same keys with commits in between; COW must
	// recycle pages instead of growing the file without bound.
	for round := 0; round < 30; round++ {
		for i := 0; i < 300; i++ {
			if err := s.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("r%d", round))); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	// ~300 small keys fit in a handful of pages; 30 rounds of COW would
	// allocate thousands of pages without reuse.
	if st.Pages > 200 {
		t.Fatalf("page count %d suggests free pages are not reused", st.Pages)
	}
}

func TestDeleteCollapsesTree(t *testing.T) {
	s := NewMem()
	defer s.Close()
	const n = 3000
	for i := 0; i < n; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%05d", i)), bytes.Repeat([]byte("x"), 50)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if del, err := s.Delete([]byte(fmt.Sprintf("k%05d", i))); err != nil || !del {
			t.Fatalf("delete %d: %v %v", i, del, err)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after full delete", s.Len())
	}
	c := s.Cursor()
	c.First()
	if c.Valid() {
		t.Fatal("cursor valid on emptied store")
	}
	// Store must still accept inserts after total deletion.
	if err := s.Put([]byte("again"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := s.Get([]byte("again")); !ok || string(v) != "v" {
		t.Fatal("insert after emptying failed")
	}
}

// Model-based property test: random interleaving of Put/Delete/Commit
// checked against a plain map, with periodic full-iteration comparison and
// a final reopen from disk.
func TestPropertyAgainstMapModel(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.kv")
	s, err := Open(path, &Options{PageSize: 512}) // small pages force deep trees
	if err != nil {
		t.Fatal(err)
	}
	model := make(map[string]string)
	r := rand.New(rand.NewSource(2024))
	randKey := func() string { return fmt.Sprintf("k%03d", r.Intn(400)) }
	for op := 0; op < 20000; op++ {
		switch r.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // put
			k, v := randKey(), fmt.Sprintf("v%d", op)
			if err := s.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		case 6, 7: // delete
			k := randKey()
			_, inModel := model[k]
			del, err := s.Delete([]byte(k))
			if err != nil {
				t.Fatal(err)
			}
			if del != inModel {
				t.Fatalf("delete(%q) = %v, model %v", k, del, inModel)
			}
			delete(model, k)
		case 8: // point lookup
			k := randKey()
			v, ok, err := s.Get([]byte(k))
			if err != nil {
				t.Fatal(err)
			}
			mv, mok := model[k]
			if ok != mok || (ok && string(v) != mv) {
				t.Fatalf("get(%q) = %q,%v model %q,%v", k, v, ok, mv, mok)
			}
		case 9:
			if err := s.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		if op%2500 == 0 {
			compareWithModel(t, s, model)
		}
	}
	compareWithModel(t, s, model)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path, &Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	compareWithModel(t, s2, model)
}

func compareWithModel(t *testing.T, s *Store, model map[string]string) {
	t.Helper()
	if s.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", s.Len(), len(model))
	}
	keys := make([]string, 0, len(model))
	for k := range model {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	i := 0
	c := s.Cursor()
	for c.First(); c.Valid(); c.Next() {
		if i >= len(keys) {
			t.Fatalf("extra key %q", c.Key())
		}
		if string(c.Key()) != keys[i] || string(c.Value()) != model[keys[i]] {
			t.Fatalf("at %d: got %q=%q, want %q=%q", i, c.Key(), c.Value(), keys[i], model[keys[i]])
		}
		i++
	}
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
	if i != len(keys) {
		t.Fatalf("iterated %d, model has %d", i, len(keys))
	}
}

func TestConcurrentReaders(t *testing.T) {
	s := NewMem()
	defer s.Close()
	for i := 0; i < 2000; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(seed int64) {
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 3000; i++ {
				k := []byte(fmt.Sprintf("k%05d", r.Intn(2000)))
				if _, ok, err := s.Get(k); err != nil || !ok {
					done <- fmt.Errorf("get %s: %v %v", k, ok, err)
					return
				}
			}
			done <- nil
		}(int64(g))
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestStats(t *testing.T) {
	s, _ := tempStore(t)
	defer s.Close()
	for i := 0; i < 100; i++ {
		s.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	s.Commit()
	st := s.Stats()
	if st.Keys != 100 || st.Pages < 2 || st.PageSize != DefaultPageSize || st.FileSize <= 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func BenchmarkPut(b *testing.B) {
	s := NewMem()
	defer s.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Put([]byte(fmt.Sprintf("key-%09d", i)), []byte("value"))
	}
}

func BenchmarkGet(b *testing.B) {
	s := NewMem()
	defer s.Close()
	const n = 100000
	for i := 0; i < n; i++ {
		s.Put([]byte(fmt.Sprintf("key-%09d", i)), []byte("value"))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Get([]byte(fmt.Sprintf("key-%09d", i%n)))
	}
}

func BenchmarkCursorScan(b *testing.B) {
	s := NewMem()
	defer s.Close()
	const n = 100000
	for i := 0; i < n; i++ {
		s.Put([]byte(fmt.Sprintf("key-%09d", i)), []byte("value"))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := s.Cursor()
		count := 0
		for c.First(); c.Valid(); c.Next() {
			count++
		}
		if count != n {
			b.Fatalf("scanned %d", count)
		}
	}
}

// Model test with near-limit value sizes: forces constant splitting and
// page-boundary cells, the arithmetic the small-value test never touches.
func TestPropertyLargeValuesAgainstMap(t *testing.T) {
	s := NewMem()
	defer s.Close()
	model := make(map[string]string)
	r := rand.New(rand.NewSource(777))
	maxVal := s.MaxKV() - 12 // leave room for the key
	for op := 0; op < 3000; op++ {
		k := fmt.Sprintf("key-%03d", r.Intn(150))
		switch r.Intn(4) {
		case 0, 1:
			v := strings.Repeat(string(rune('a'+r.Intn(26))), 1+r.Intn(maxVal))
			if err := s.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		case 2:
			del, err := s.Delete([]byte(k))
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := model[k]; ok != del {
				t.Fatalf("delete(%q) = %v, model %v", k, del, ok)
			}
			delete(model, k)
		case 3:
			v, ok, err := s.Get([]byte(k))
			if err != nil {
				t.Fatal(err)
			}
			mv, mok := model[k]
			if ok != mok || (ok && string(v) != mv) {
				t.Fatalf("get(%q) mismatch", k)
			}
		}
	}
	compareWithModel(t, s, model)
}
