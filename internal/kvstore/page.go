// Package kvstore implements an embedded, ordered, persistent key-value
// store: a page-based copy-on-write B+tree in a single file. It fills the
// role Berkeley DB plays in the paper's Section VII — durable storage for
// keyword inverted lists and the statistics tables, with O(log n) ordered
// lookup and range scans — without any dependency outside the standard
// library.
//
// Design notes:
//
//   - Copy-on-write shadow paging: mutations never overwrite live pages;
//     a commit writes all new pages, syncs, then atomically publishes the
//     new root through the checksummed meta page. A crash before the meta
//     write leaves the previous committed tree intact.
//   - Pages freed by COW become reusable only after the commit that made
//     them unreachable. The free list is not persisted; Open rebuilds it
//     with a reachability scan from the root, which also verifies basic
//     structural integrity.
//   - Deletion is lazy: pages may become underfull and are only removed
//     when empty (the strategy used by several production stores); the
//     workload here is build-once/read-many, so rebalancing on delete
//     would buy nothing.
package kvstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

const (
	// DefaultPageSize is the page size used unless Options overrides it.
	DefaultPageSize = 4096
	// minPageSize keeps the cell-size arithmetic sane.
	minPageSize = 512

	pageLeaf   = byte(1)
	pageBranch = byte(2)

	metaMagic = uint32(0x58524b56) // "XRKV"
	// metaVersion 2 added a CRC32 trailer to every node page (v1 only
	// checksummed the meta page), so torn writes and bit rot in data
	// pages surface as ErrChecksum instead of silently-wrong postings.
	// Version 3 doubled the meta into two alternating slots (pages 0 and
	// 1) carrying a transaction ID and an application epoch: commits
	// alternate slots by txid parity, so a torn meta write can only
	// destroy the slot being written — the previous commit's slot stays
	// intact and Open falls back to it. This is what makes a crash (or
	// torn write) during a live-update commit recover to the last
	// committed epoch instead of bricking the store.
	metaVersion = uint32(3)
	metaPageID  = uint32(0)
	metaPageID2 = uint32(1)

	// pageCRCSize is the per-page checksum trailer: the last 4 bytes of
	// every node page hold the CRC32 of the rest of the page.
	pageCRCSize = 4
)

// node is the decoded in-memory form of a tree page.
type node struct {
	id     uint32
	isLeaf bool
	keys   [][]byte
	vals   [][]byte // leaf only; len == len(keys)
	// children holds child page IDs for branch nodes; len == len(keys)+1.
	// children[i] covers keys < keys[i]; the last child covers the rest.
	children []uint32
	dirty    bool
}

// size returns the encoded size of the node in bytes.
func (n *node) size() int {
	sz := 3 // type byte + nkeys
	if n.isLeaf {
		for i, k := range n.keys {
			sz += 4 + len(k) + len(n.vals[i])
		}
	} else {
		sz += 4 // leftmost child
		for _, k := range n.keys {
			sz += 6 + len(k)
		}
	}
	return sz
}

// cellSize returns the encoded size of a single leaf cell.
func cellSize(key, value []byte) int { return 4 + len(key) + len(value) }

// encode serializes the node into a page buffer of length pageSize. The
// last pageCRCSize bytes carry the CRC32 of the rest of the page, so
// decodeNode can detect torn writes and corruption.
func (n *node) encode(pageSize int) ([]byte, error) {
	if n.size() > pageSize-pageCRCSize {
		return nil, fmt.Errorf("kvstore: node %d overflows page: %d > %d", n.id, n.size(), pageSize-pageCRCSize)
	}
	buf := make([]byte, pageSize)
	if n.isLeaf {
		buf[0] = pageLeaf
	} else {
		buf[0] = pageBranch
	}
	binary.LittleEndian.PutUint16(buf[1:3], uint16(len(n.keys)))
	off := 3
	if n.isLeaf {
		for i, k := range n.keys {
			v := n.vals[i]
			binary.LittleEndian.PutUint16(buf[off:], uint16(len(k)))
			binary.LittleEndian.PutUint16(buf[off+2:], uint16(len(v)))
			off += 4
			off += copy(buf[off:], k)
			off += copy(buf[off:], v)
		}
	} else {
		binary.LittleEndian.PutUint32(buf[off:], n.children[0])
		off += 4
		for i, k := range n.keys {
			binary.LittleEndian.PutUint16(buf[off:], uint16(len(k)))
			binary.LittleEndian.PutUint32(buf[off+2:], n.children[i+1])
			off += 6
			off += copy(buf[off:], k)
		}
	}
	body := buf[:pageSize-pageCRCSize]
	binary.LittleEndian.PutUint32(buf[pageSize-pageCRCSize:], crc32.ChecksumIEEE(body))
	return buf, nil
}

// decodeNode parses a page buffer into a node, verifying the CRC trailer
// first so a corrupt page yields ErrChecksum rather than garbage data.
func decodeNode(id uint32, buf []byte) (*node, error) {
	if len(buf) < 3+pageCRCSize {
		return nil, fmt.Errorf("kvstore: page %d truncated", id)
	}
	body := buf[:len(buf)-pageCRCSize]
	if sum := binary.LittleEndian.Uint32(buf[len(buf)-pageCRCSize:]); sum != crc32.ChecksumIEEE(body) {
		return nil, fmt.Errorf("kvstore: page %d: %w", id, ErrChecksum)
	}
	buf = body
	n := &node{id: id}
	switch buf[0] {
	case pageLeaf:
		n.isLeaf = true
	case pageBranch:
	default:
		return nil, fmt.Errorf("kvstore: page %d has bad type %d", id, buf[0])
	}
	nkeys := int(binary.LittleEndian.Uint16(buf[1:3]))
	off := 3
	bad := func() error { return fmt.Errorf("kvstore: page %d corrupt", id) }
	if n.isLeaf {
		n.keys = make([][]byte, 0, nkeys)
		n.vals = make([][]byte, 0, nkeys)
		for i := 0; i < nkeys; i++ {
			if off+4 > len(buf) {
				return nil, bad()
			}
			kl := int(binary.LittleEndian.Uint16(buf[off:]))
			vl := int(binary.LittleEndian.Uint16(buf[off+2:]))
			off += 4
			if off+kl+vl > len(buf) {
				return nil, bad()
			}
			n.keys = append(n.keys, append([]byte(nil), buf[off:off+kl]...))
			off += kl
			n.vals = append(n.vals, append([]byte(nil), buf[off:off+vl]...))
			off += vl
		}
	} else {
		if off+4 > len(buf) {
			return nil, bad()
		}
		n.children = append(n.children, binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		n.keys = make([][]byte, 0, nkeys)
		for i := 0; i < nkeys; i++ {
			if off+6 > len(buf) {
				return nil, bad()
			}
			kl := int(binary.LittleEndian.Uint16(buf[off:]))
			child := binary.LittleEndian.Uint32(buf[off+2:])
			off += 6
			if off+kl > len(buf) {
				return nil, bad()
			}
			n.keys = append(n.keys, append([]byte(nil), buf[off:off+kl]...))
			n.children = append(n.children, child)
			off += kl
		}
	}
	return n, nil
}

// meta is the store header. Two copies live in pages 0 and 1; the one with
// the highest txid that passes its CRC (and whose tree verifies) wins.
type meta struct {
	pageSize  uint32
	rootID    uint32 // 0 when the store is empty
	pageCount uint32 // number of allocated pages including both meta slots
	kvCount   uint64
	txid      uint64 // commit sequence; slot = txid % 2
	epoch     uint64 // application-level epoch, see SetEpoch
}

// encodeMeta writes the header with a trailing CRC so a torn meta write is
// detectable.
func encodeMeta(m meta, pageSize int) []byte {
	buf := make([]byte, pageSize)
	binary.LittleEndian.PutUint32(buf[0:], metaMagic)
	binary.LittleEndian.PutUint32(buf[4:], metaVersion)
	binary.LittleEndian.PutUint32(buf[8:], m.pageSize)
	binary.LittleEndian.PutUint32(buf[12:], m.rootID)
	binary.LittleEndian.PutUint32(buf[16:], m.pageCount)
	binary.LittleEndian.PutUint64(buf[20:], m.kvCount)
	binary.LittleEndian.PutUint64(buf[28:], m.txid)
	binary.LittleEndian.PutUint64(buf[36:], m.epoch)
	binary.LittleEndian.PutUint32(buf[44:], crc32.ChecksumIEEE(buf[:44]))
	return buf
}

func decodeMeta(buf []byte) (meta, error) {
	var m meta
	if len(buf) < 48 {
		return m, fmt.Errorf("kvstore: meta page truncated")
	}
	if binary.LittleEndian.Uint32(buf[0:]) != metaMagic {
		return m, fmt.Errorf("kvstore: bad magic (not a kvstore file)")
	}
	if v := binary.LittleEndian.Uint32(buf[4:]); v != metaVersion {
		return m, fmt.Errorf("kvstore: unsupported version %d", v)
	}
	if crc := binary.LittleEndian.Uint32(buf[44:]); crc != crc32.ChecksumIEEE(buf[:44]) {
		return m, fmt.Errorf("kvstore: meta checksum mismatch")
	}
	m.pageSize = binary.LittleEndian.Uint32(buf[8:])
	m.rootID = binary.LittleEndian.Uint32(buf[12:])
	m.pageCount = binary.LittleEndian.Uint32(buf[16:])
	m.kvCount = binary.LittleEndian.Uint64(buf[20:])
	m.txid = binary.LittleEndian.Uint64(buf[28:])
	m.epoch = binary.LittleEndian.Uint64(buf[36:])
	if m.pageSize < minPageSize {
		return m, fmt.Errorf("kvstore: implausible page size %d", m.pageSize)
	}
	return m, nil
}
