package kvstore

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrInjected is the root of every error produced by an armed failpoint.
// Callers asserting on fault-injection outcomes test with errors.Is.
var ErrInjected = errors.New("kvstore: injected fault")

// Faults is a fault-injection harness for the pager layer: it interposes
// between a Store and its real pager (file or memory) and makes page IO
// fail, slow down, or tear on command. One Faults value drives one store;
// all counters and triggers are safe for concurrent use, matching the
// store's concurrent-reader contract.
//
// Failpoints count down: FailReads(3) lets two reads through and fails the
// third and every read after it, until Clear. Torn writes are different —
// the nth write persists only the first half of the page and then reports
// success, exactly the silent half-write a crash mid-commit leaves behind;
// the corruption must be caught later by the page CRC, not by the writer.
type Faults struct {
	// ReadLatency and WriteLatency are added to every read/write — the
	// "slow disk" failpoint. Set before use; not synchronized.
	ReadLatency  time.Duration
	WriteLatency time.Duration

	failRead  atomic.Int64 // countdown; 0 = disarmed
	failWrite atomic.Int64
	tornWrite atomic.Int64

	reads    atomic.Int64
	writes   atomic.Int64
	injected atomic.Int64
}

// FailReads arms the read failpoint: the nth read from now (1 = the very
// next) and every read after it fail with ErrInjected.
func (f *Faults) FailReads(n int64) { f.failRead.Store(n) }

// FailWrites arms the write failpoint symmetrically to FailReads.
func (f *Faults) FailWrites(n int64) { f.failWrite.Store(n) }

// TornWrite arms the torn-write failpoint: the nth write from now persists
// only the first half of its page and reports success.
func (f *Faults) TornWrite(n int64) { f.tornWrite.Store(n) }

// Clear disarms every failpoint; latency fields are left as set.
func (f *Faults) Clear() {
	f.failRead.Store(0)
	f.failWrite.Store(0)
	f.tornWrite.Store(0)
}

// Reads returns the number of page reads that reached the pager.
func (f *Faults) Reads() int64 { return f.reads.Load() }

// Writes returns the number of page writes that reached the pager.
func (f *Faults) Writes() int64 { return f.writes.Load() }

// Injected returns the number of operations a failpoint disrupted
// (failed reads/writes and torn writes).
func (f *Faults) Injected() int64 { return f.injected.Load() }

// fire decrements a countdown and reports whether the failpoint triggers
// for this operation. A countdown at 1 trips and stays tripped (sticky);
// 0 means disarmed.
func fire(c *atomic.Int64) bool {
	for {
		v := c.Load()
		switch {
		case v == 0:
			return false
		case v == 1:
			return true // sticky: keep failing until Clear
		case c.CompareAndSwap(v, v-1):
			return false
		}
	}
}

// faultPager applies an armed Faults to every operation of the wrapped
// pager.
type faultPager struct {
	inner pager
	f     *Faults
}

func (p *faultPager) read(id uint32) ([]byte, error) {
	if p.f.ReadLatency > 0 {
		time.Sleep(p.f.ReadLatency)
	}
	p.f.reads.Add(1)
	if fire(&p.f.failRead) {
		p.f.injected.Add(1)
		return nil, fmt.Errorf("kvstore: read page %d: %w", id, ErrInjected)
	}
	return p.inner.read(id)
}

func (p *faultPager) write(id uint32, data []byte) error {
	if p.f.WriteLatency > 0 {
		time.Sleep(p.f.WriteLatency)
	}
	p.f.writes.Add(1)
	if fire(&p.f.failWrite) {
		p.f.injected.Add(1)
		return fmt.Errorf("kvstore: write page %d: %w", id, ErrInjected)
	}
	if fire(&p.f.tornWrite) {
		p.f.injected.Add(1)
		p.f.tornWrite.Store(0) // tearing is one-shot; later writes heal
		torn := make([]byte, len(data))
		copy(torn, data[:len(data)/2])
		return p.inner.write(id, torn) // reports success: silent corruption
	}
	return p.inner.write(id, data)
}

func (p *faultPager) sync() error  { return p.inner.sync() }
func (p *faultPager) close() error { return p.inner.close() }
