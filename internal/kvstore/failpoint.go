package kvstore

import (
	"fmt"

	"xrefine/internal/storage"
)

// ErrInjected is the root of every error produced by an armed failpoint.
// The harness itself lives in internal/storage so the same fault matrices
// drive every backend; this alias (and the Faults one below) keeps the
// original kvstore spelling working everywhere.
var ErrInjected = storage.ErrInjected

// Faults is the storage fault-injection harness; see storage.Faults. It is
// an alias, not a wrapper, so a *kvstore.Faults and a *storage.Faults are
// the same type and the same armed value can be handed to either engine.
type Faults = storage.Faults

// faultPager applies an armed Faults to every operation of the wrapped
// pager: reads and writes go through the harness hooks, which add latency,
// count the operation, and decide whether to fail or tear it.
type faultPager struct {
	inner pager
	f     *Faults
}

func (p *faultPager) read(id uint32) ([]byte, error) {
	if err := p.f.OnRead(); err != nil {
		return nil, fmt.Errorf("kvstore: read page %d: %w", id, err)
	}
	return p.inner.read(id)
}

func (p *faultPager) write(id uint32, data []byte) error {
	out, err := p.f.OnWrite(data)
	if err != nil {
		return fmt.Errorf("kvstore: write page %d: %w", id, err)
	}
	if len(out) != len(data) {
		// Torn write: persist the surviving prefix zero-padded to the full
		// page length and report success — silent corruption for the page
		// CRC to catch on a later read, never an error here.
		torn := make([]byte, len(data))
		copy(torn, out)
		return p.inner.write(id, torn)
	}
	return p.inner.write(id, data)
}

func (p *faultPager) sync() error  { return p.inner.sync() }
func (p *faultPager) close() error { return p.inner.close() }
