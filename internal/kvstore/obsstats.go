package kvstore

import (
	"errors"
	"sync/atomic"
)

// OpStats is a snapshot of a store's page-IO counters. The store counts
// its own operations with plain atomics — no observability dependency —
// and the serving layer bridges the snapshot into its metrics registry as
// counter functions. The counters survive DropCaches and cover every page
// the store touched since Open, including reads done by Open's
// reachability scan.
type OpStats struct {
	// PageReads counts pages read from the pager (cache misses only —
	// decoded-cache hits never reach the pager).
	PageReads int64
	// PageWrites counts pages written to the pager (Commit and meta
	// writes).
	PageWrites int64
	// ChecksumFailures counts pages whose CRC32 trailer did not match —
	// torn writes or bit rot caught at decode time.
	ChecksumFailures int64
	// FaultsInjected counts reads/writes an armed failpoint disrupted.
	FaultsInjected int64
	// MetaFallbacks counts Opens that rejected the newest meta slot (torn
	// commit) and recovered from the previous one.
	MetaFallbacks int64
}

// opCounters is embedded in Store; all fields are atomics so readers
// under the shared read lock can count without extra synchronization.
type opCounters struct {
	pageReads     atomic.Int64
	pageWrites    atomic.Int64
	checksumFails atomic.Int64
	injected      atomic.Int64
	metaFallbacks atomic.Int64
}

// OpStats returns the current page-IO counter snapshot.
func (s *Store) OpStats() OpStats {
	return OpStats{
		PageReads:        s.ops.pageReads.Load(),
		PageWrites:       s.ops.pageWrites.Load(),
		ChecksumFailures: s.ops.checksumFails.Load(),
		FaultsInjected:   s.ops.injected.Load(),
		MetaFallbacks:    s.ops.metaFallbacks.Load(),
	}
}

// pagerRead is the counted read path: every pager read, every injected
// read fault, and every checksum verdict of the subsequent decode flows
// through the store's op counters.
func (s *Store) pagerRead(id uint32) ([]byte, error) {
	s.ops.pageReads.Add(1)
	raw, err := s.pager.read(id)
	if err != nil && errors.Is(err, ErrInjected) {
		s.ops.injected.Add(1)
	}
	return raw, err
}

// pagerWrite is the counted write path.
func (s *Store) pagerWrite(id uint32, data []byte) error {
	s.ops.pageWrites.Add(1)
	err := s.pager.write(id, data)
	if err != nil && errors.Is(err, ErrInjected) {
		s.ops.injected.Add(1)
	}
	return err
}

// noteDecodeErr classifies a node/meta decode failure into the counters.
func (s *Store) noteDecodeErr(err error) {
	if err != nil && errors.Is(err, ErrChecksum) {
		s.ops.checksumFails.Add(1)
	}
}

// noteMetaFallback records that Open abandoned the newest meta slot and is
// trying the previous commit's slot.
func (s *Store) noteMetaFallback() {
	s.ops.metaFallbacks.Add(1)
}
