package kvstore

import "testing"

// FuzzDecodeNode feeds arbitrary page images to the node decoder: it must
// reject garbage with an error, never panic, and roundtrip its own
// encoding.
func FuzzDecodeNode(f *testing.F) {
	leaf := &node{id: 1, isLeaf: true, keys: [][]byte{[]byte("a")}, vals: [][]byte{[]byte("v")}}
	buf, _ := leaf.encode(512)
	f.Add(buf)
	branch := &node{id: 2, keys: [][]byte{[]byte("m")}, children: []uint32{3, 4}}
	bbuf, _ := branch.encode(512)
	f.Add(bbuf)
	f.Add([]byte{})
	f.Add([]byte{9, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := decodeNode(7, data)
		if err != nil {
			return
		}
		if n.isLeaf && len(n.keys) != len(n.vals) {
			t.Fatal("leaf key/val mismatch")
		}
		if !n.isLeaf && len(n.children) != len(n.keys)+1 {
			t.Fatal("branch fanout mismatch")
		}
		re, err := n.encode(len(data))
		if err != nil {
			// A decoded node can exceed the original page only if the
			// decoder mis-measured; tolerate exact-size pages.
			return
		}
		n2, err := decodeNode(7, re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(n2.keys) != len(n.keys) {
			t.Fatal("roundtrip changed key count")
		}
	})
}

// FuzzDecodeMeta ensures the meta decoder never panics and only accepts
// checksummed headers.
func FuzzDecodeMeta(f *testing.F) {
	f.Add(encodeMeta(meta{pageSize: 4096, rootID: 1, pageCount: 2, kvCount: 3}, 4096))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeMeta(data)
		if err != nil {
			return
		}
		re := encodeMeta(m, int(m.pageSize))
		m2, err := decodeMeta(re)
		if err != nil || m2 != m {
			t.Fatalf("meta roundtrip failed: %+v vs %+v (%v)", m, m2, err)
		}
	})
}
