package kvstore

import (
	"fmt"
	"os"
)

// pager abstracts raw page IO so the store runs identically against a file
// or anonymous memory (tests, benchmarks, throwaway indexes).
type pager interface {
	read(id uint32) ([]byte, error)
	write(id uint32, data []byte) error
	sync() error
	close() error
}

type filePager struct {
	f        *os.File
	pageSize int
}

func newFilePager(path string, pageSize int, readOnly bool) (*filePager, error) {
	flags := os.O_RDWR | os.O_CREATE
	if readOnly {
		flags = os.O_RDONLY
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvstore: open %s: %w", path, err)
	}
	return &filePager{f: f, pageSize: pageSize}, nil
}

func (p *filePager) read(id uint32) ([]byte, error) {
	buf := make([]byte, p.pageSize)
	if _, err := p.f.ReadAt(buf, int64(id)*int64(p.pageSize)); err != nil {
		return nil, fmt.Errorf("kvstore: read page %d: %w", id, err)
	}
	return buf, nil
}

func (p *filePager) write(id uint32, data []byte) error {
	if len(data) != p.pageSize {
		return fmt.Errorf("kvstore: write page %d: bad length %d", id, len(data))
	}
	if _, err := p.f.WriteAt(data, int64(id)*int64(p.pageSize)); err != nil {
		return fmt.Errorf("kvstore: write page %d: %w", id, err)
	}
	return nil
}

func (p *filePager) sync() error  { return p.f.Sync() }
func (p *filePager) close() error { return p.f.Close() }

// memPager keeps pages in a map; used by NewMem.
type memPager struct {
	pages    map[uint32][]byte
	pageSize int
}

func newMemPager(pageSize int) *memPager {
	return &memPager{pages: make(map[uint32][]byte), pageSize: pageSize}
}

func (p *memPager) read(id uint32) ([]byte, error) {
	b, ok := p.pages[id]
	if !ok {
		return nil, fmt.Errorf("kvstore: read unallocated page %d", id)
	}
	return append([]byte(nil), b...), nil
}

func (p *memPager) write(id uint32, data []byte) error {
	if len(data) != p.pageSize {
		return fmt.Errorf("kvstore: write page %d: bad length %d", id, len(data))
	}
	p.pages[id] = append([]byte(nil), data...)
	return nil
}

func (p *memPager) sync() error  { return nil }
func (p *memPager) close() error { return nil }

// fileSize returns the current file length for the stats report; the mem
// pager reports the sum of page sizes.
func pagerSize(p pager) int64 {
	switch pp := p.(type) {
	case *faultPager:
		return pagerSize(pp.inner)
	case *filePager:
		st, err := pp.f.Stat()
		if err != nil {
			return -1
		}
		return st.Size()
	case *memPager:
		return int64(len(pp.pages)) * int64(pp.pageSize)
	}
	return -1
}
