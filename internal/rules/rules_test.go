package rules

import (
	"strings"
	"testing"

	"xrefine/internal/index"
	"xrefine/internal/lexicon"
	"xrefine/internal/xmltree"
)

func TestOpString(t *testing.T) {
	if OpMerge.String() != "merge" || OpSplit.String() != "split" ||
		OpSubstitute.String() != "substitute" || Op(9).String() != "unknown" {
		t.Error("Op.String broken")
	}
}

func TestSetAddValidation(t *testing.T) {
	s := NewSet(0)
	if s.DeleteCost != DefaultDeleteCost {
		t.Errorf("default delete cost = %v", s.DeleteCost)
	}
	bad := []Rule{
		{Op: OpMerge, LHS: nil, RHS: []string{"x"}, Score: 1},
		{Op: OpMerge, LHS: []string{"a"}, RHS: nil, Score: 1},
		{Op: OpMerge, LHS: []string{"a"}, RHS: []string{"b"}, Score: 0},
		{Op: OpMerge, LHS: []string{"A"}, RHS: []string{"b"}, Score: 1},      // not normalized
		{Op: OpSubstitute, LHS: []string{"a"}, RHS: []string{"a"}, Score: 1}, // identity
	}
	for _, r := range bad {
		if err := s.Add(r); err == nil {
			t.Errorf("Add(%v) accepted", r)
		}
	}
	if s.Len() != 0 {
		t.Errorf("bad rules stored: %d", s.Len())
	}
}

func TestSetDedupKeepsCheaper(t *testing.T) {
	s := NewSet(0)
	if err := s.Add(Rule{Op: OpSubstitute, LHS: []string{"a"}, RHS: []string{"b"}, Score: 3, Origin: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(Rule{Op: OpSubstitute, LHS: []string{"a"}, RHS: []string{"b"}, Score: 1, Origin: "y"}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
	if got := s.ByLastLHS("a"); len(got) != 1 || got[0].Score != 1 || got[0].Origin != "y" {
		t.Fatalf("dedup kept %+v", got)
	}
	// More expensive duplicate does not override.
	if err := s.Add(Rule{Op: OpSubstitute, LHS: []string{"a"}, RHS: []string{"b"}, Score: 5}); err != nil {
		t.Fatal(err)
	}
	if got := s.ByLastLHS("a"); got[0].Score != 1 {
		t.Fatal("expensive duplicate overrode cheaper rule")
	}
}

func TestByLastLHS(t *testing.T) {
	s := NewSet(0)
	s.Add(Rule{Op: OpMerge, LHS: []string{"on", "line"}, RHS: []string{"online"}, Score: 1})
	s.Add(Rule{Op: OpSubstitute, LHS: []string{"line"}, RHS: []string{"lines"}, Score: 1})
	s.Add(Rule{Op: OpSubstitute, LHS: []string{"base"}, RHS: []string{"bases"}, Score: 1})
	if got := s.ByLastLHS("line"); len(got) != 2 {
		t.Fatalf("ByLastLHS(line) = %d rules", len(got))
	}
	if got := s.ByLastLHS("on"); len(got) != 0 {
		t.Fatalf("ByLastLHS(on) = %d rules", len(got))
	}
}

func TestNewKeywords(t *testing.T) {
	s := NewSet(0)
	s.Add(Rule{Op: OpMerge, LHS: []string{"on", "line"}, RHS: []string{"online"}, Score: 1})
	s.Add(Rule{Op: OpSubstitute, LHS: []string{"db"}, RHS: []string{"database"}, Score: 1})
	got := s.NewKeywords([]string{"on", "line", "database"})
	if strings.Join(got, " ") != "online" {
		t.Fatalf("NewKeywords = %v", got)
	}
}

const corpus = `
<bib>
  <paper><title>online database systems</title><year>2003</year></paper>
  <paper><title>efficient keyword search</title><year>2005</year></paper>
  <paper><title>machine learning for the world wide web</title><year>2006</year></paper>
  <paper><title>skyline computation</title><year>2007</year></paper>
  <paper><title>matching twig patterns</title><year>2008</year></paper>
  <paper><title>proceedings of data mining</title><year>2008</year></paper>
</bib>`

func buildIx(t testing.TB) *index.Index {
	t.Helper()
	doc, err := xmltree.ParseString(corpus, nil)
	if err != nil {
		t.Fatal(err)
	}
	return index.Build(doc)
}

func findRule(s *Set, origin string, lhs, rhs string) *Rule {
	for _, r := range s.Rules() {
		if r.Origin == origin && strings.Join(r.LHS, ",") == lhs && strings.Join(r.RHS, ",") == rhs {
			return &r
		}
	}
	return nil
}

func TestGenerateMerge(t *testing.T) {
	ix := buildIx(t)
	s, err := Generator{}.Generate(ix, []string{"on", "line", "database"})
	if err != nil {
		t.Fatal(err)
	}
	r := findRule(s, "merge", "on,line", "online")
	if r == nil {
		t.Fatalf("merge rule missing; rules: %v", s.Rules())
	}
	if r.Score != 1 {
		t.Errorf("merge score = %v, want 1", r.Score)
	}
}

func TestGenerateSplit(t *testing.T) {
	ix := buildIx(t)
	// "skylinecomputation" splits into two data terms.
	s, err := Generator{}.Generate(ix, []string{"skylinecomputation"})
	if err != nil {
		t.Fatal(err)
	}
	r := findRule(s, "split", "skylinecomputation", "skyline,computation")
	if r == nil {
		t.Fatalf("split rule missing; rules: %v", s.Rules())
	}
	if r.Score != 1 {
		t.Errorf("split score = %v", r.Score)
	}
}

func TestGenerateSpelling(t *testing.T) {
	ix := buildIx(t)
	s, err := Generator{}.Generate(ix, []string{"eficient", "databse"})
	if err != nil {
		t.Fatal(err)
	}
	if r := findRule(s, "spelling", "eficient", "efficient"); r == nil || r.Score != 1 {
		t.Errorf("eficient->efficient rule: %+v", r)
	}
	if r := findRule(s, "spelling", "databse", "database"); r == nil || r.Score != 1 {
		t.Errorf("databse->database rule: %+v", r)
	}
	// Terms already in the data are not "corrected" by default.
	s2, _ := Generator{}.Generate(ix, []string{"keyword"})
	for _, r := range s2.Rules() {
		if r.Origin == "spelling" {
			t.Errorf("known term got spelling rule: %v", r)
		}
	}
}

func TestGenerateStemming(t *testing.T) {
	ix := buildIx(t)
	s, err := Generator{}.Generate(ix, []string{"match", "learn"})
	if err != nil {
		t.Fatal(err)
	}
	if r := findRule(s, "stem", "match", "matching"); r == nil {
		t.Errorf("match->matching stem rule missing: %v", s.Rules())
	}
	if r := findRule(s, "stem", "learn", "learning"); r == nil {
		t.Errorf("learn->learning stem rule missing")
	}
}

func TestGenerateSynonymsAndAcronyms(t *testing.T) {
	ix := buildIx(t)
	g := Generator{Lexicon: lexicon.Builtin()}
	s, err := g.Generate(ix, []string{"publication", "www"})
	if err != nil {
		t.Fatal(err)
	}
	if r := findRule(s, "synonym", "publication", "proceedings"); r == nil {
		t.Errorf("publication->proceedings synonym missing: %v", s.Rules())
	}
	if r := findRule(s, "acronym", "www", "world,wide,web"); r == nil {
		t.Errorf("www expansion missing")
	}
	// Contraction: query contains the expansion, data has... "www" is
	// not in this corpus, so no contraction rule may exist.
	s2, _ := g.Generate(ix, []string{"world", "wide", "web"})
	if r := findRule(s2, "acronym", "world,wide,web", "www"); r != nil {
		t.Errorf("contraction to absent term generated: %v", r)
	}
}

func TestGenerateDisableSwitches(t *testing.T) {
	ix := buildIx(t)
	g := Generator{
		Lexicon:    lexicon.Builtin(),
		NoMerge:    true,
		NoSplit:    true,
		NoSpelling: true,
		NoStemming: true,
		NoSynonyms: true,
		NoAcronyms: true,
	}
	s, err := g.Generate(ix, []string{"on", "line", "eficient", "match", "publication", "www"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("all generators disabled but %d rules produced: %v", s.Len(), s.Rules())
	}
}

func TestGenerateRHSAlwaysInData(t *testing.T) {
	ix := buildIx(t)
	g := Generator{Lexicon: lexicon.Builtin()}
	s, err := g.Generate(ix, []string{"on", "line", "databse", "match", "publication", "www", "skylinecomputation"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() == 0 {
		t.Fatal("no rules generated")
	}
	for _, r := range s.Rules() {
		for _, k := range r.RHS {
			if !ix.HasTerm(k) {
				t.Errorf("rule %v has RHS keyword %q absent from data", r, k)
			}
		}
	}
}

func TestSpellingCandidateCap(t *testing.T) {
	ix := buildIx(t)
	g := Generator{MaxSpellingCandidates: 1, MaxEditDistance: 2}
	s, err := g.Generate(ix, []string{"dataa"})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, r := range s.Rules() {
		if r.Origin == "spelling" {
			n++
		}
	}
	if n > 1 {
		t.Errorf("cap 1 but %d spelling rules", n)
	}
}
