package rules

import (
	"sort"
	"sync"

	"xrefine/internal/index"
	"xrefine/internal/lexicon"
	"xrefine/internal/stem"
	"xrefine/internal/strdist"
)

// derived caches per-index vocabulary structures shared by every Generate
// call: a BK-tree for spelling neighbourhoods and the Porter-stem inverse
// map. Both depend only on the (immutable) vocabulary, so one instance per
// index is built on first use and reused for the index's lifetime.
type derived struct {
	once   sync.Once
	tree   *strdist.BKTree
	byStem map[string][]string
}

var derivedCache sync.Map // *index.Index -> *derived

func derivedFor(ix *index.Index) *derived {
	v, _ := derivedCache.LoadOrStore(ix, &derived{})
	d := v.(*derived)
	d.once.Do(func() {
		vocab := ix.Vocabulary()
		d.tree = strdist.NewBKTree(vocab)
		d.byStem = make(map[string][]string)
		for _, w := range vocab {
			s := stem.Stem(w)
			d.byStem[s] = append(d.byStem[s], w)
		}
	})
	return d
}

// Generator derives the rule set relevant to one query from the indexed
// vocabulary and a lexicon. Every generated RHS keyword occurs in the data;
// rules whose replacement cannot match anything are useless to the DP and
// are never emitted.
type Generator struct {
	// Lexicon supplies synonym and acronym rules; nil disables both.
	Lexicon *lexicon.Lexicon
	// MaxEditDistance bounds spelling-correction search; 0 means 2.
	MaxEditDistance int
	// MaxSpellingCandidates caps corrections per query term; 0 means 3.
	MaxSpellingCandidates int
	// MinSplitPart is the minimum length of each part of a term split;
	// 0 means 2 (splitting off single letters produces junk).
	MinSplitPart int
	// SpellKnownTerms also proposes corrections for terms that already
	// occur in the data (off by default: a matching term is very likely
	// intended).
	SpellKnownTerms bool
	// DeleteCost prices term deletion in the produced set; 0 selects
	// DefaultDeleteCost.
	DeleteCost float64
	// Disable switches for ablation and experiments.
	NoMerge, NoSplit, NoSpelling, NoStemming, NoSynonyms, NoAcronyms bool
}

func (g Generator) maxED() int {
	if g.MaxEditDistance <= 0 {
		return 2
	}
	return g.MaxEditDistance
}

func (g Generator) maxSpell() int {
	if g.MaxSpellingCandidates <= 0 {
		return 3
	}
	return g.MaxSpellingCandidates
}

func (g Generator) minSplit() int {
	if g.MinSplitPart <= 0 {
		return 2
	}
	return g.MinSplitPart
}

// Generate builds the rule set relevant to query terms q against the index
// vocabulary.
func (g Generator) Generate(ix *index.Index, q []string) (*Set, error) {
	s := NewSet(g.DeleteCost)
	add := func(r Rule) error {
		return s.Add(r)
	}
	if !g.NoMerge {
		if err := g.mergeRules(ix, q, add); err != nil {
			return nil, err
		}
	}
	if !g.NoSplit {
		if err := g.splitRules(ix, q, add); err != nil {
			return nil, err
		}
	}
	if !g.NoSpelling {
		if err := g.spellingRules(ix, q, add); err != nil {
			return nil, err
		}
	}
	if !g.NoStemming {
		if err := g.stemmingRules(ix, q, add); err != nil {
			return nil, err
		}
	}
	if g.Lexicon != nil && !g.NoSynonyms {
		if err := g.synonymRules(ix, q, add); err != nil {
			return nil, err
		}
	}
	if g.Lexicon != nil && !g.NoAcronyms {
		if err := g.acronymRules(ix, q, add); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// mergeRules joins 2 or 3 adjacent query terms when the concatenation is a
// data term; each removed space costs 1 (paper rules r1/r2).
func (g Generator) mergeRules(ix *index.Index, q []string, add func(Rule) error) error {
	for width := 2; width <= 3; width++ {
		for i := 0; i+width <= len(q); i++ {
			lhs := q[i : i+width]
			merged := ""
			for _, k := range lhs {
				merged += k
			}
			if merged == "" || !ix.HasTerm(merged) {
				continue
			}
			r := Rule{
				Op:     OpMerge,
				LHS:    append([]string(nil), lhs...),
				RHS:    []string{merged},
				Score:  float64(width - 1),
				Origin: "merge",
			}
			if err := add(r); err != nil {
				return err
			}
		}
	}
	return nil
}

// splitRules divides one query term into two data terms; one added space
// costs 1 (paper rule r7).
func (g Generator) splitRules(ix *index.Index, q []string, add func(Rule) error) error {
	minPart := g.minSplit()
	for _, k := range q {
		if len(k) < 2*minPart {
			continue
		}
		for cut := minPart; cut <= len(k)-minPart; cut++ {
			left, right := k[:cut], k[cut:]
			if !ix.HasTerm(left) || !ix.HasTerm(right) {
				continue
			}
			r := Rule{
				Op:     OpSplit,
				LHS:    []string{k},
				RHS:    []string{left, right},
				Score:  1,
				Origin: "split",
			}
			if err := add(r); err != nil {
				return err
			}
		}
	}
	return nil
}

// spellingRules proposes vocabulary terms within a bounded edit distance of
// a query term; the distance is the dissimilarity (paper rule r5: ds = 2
// for "mecine" -> "machine"). Candidates come from a BK-tree neighbourhood
// probe (Levenshtein, a true metric); each hit is re-scored with the
// Damerau variant so an adjacent transposition costs one edit, not two.
func (g Generator) spellingRules(ix *index.Index, q []string, add func(Rule) error) error {
	tree := derivedFor(ix).tree
	maxED := g.maxED()
	for _, k := range q {
		if !g.SpellKnownTerms && ix.HasTerm(k) {
			continue
		}
		if len(k) <= 2 {
			continue // 1-2 letter terms match half the vocabulary
		}
		type cand struct {
			word string
			dist int
			freq int
		}
		var cands []cand
		for _, m := range tree.Within(k, maxED) {
			d := m.Distance
			if dd := strdist.DamerauLevenshtein(k, m.Word); dd < d {
				d = dd
			}
			cands = append(cands, cand{word: m.Word, dist: d, freq: ix.ListLen(m.Word)})
		}
		// Closest first; break distance ties toward frequent terms,
		// which are likelier intended.
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].dist != cands[j].dist {
				return cands[i].dist < cands[j].dist
			}
			if cands[i].freq != cands[j].freq {
				return cands[i].freq > cands[j].freq
			}
			return cands[i].word < cands[j].word
		})
		if len(cands) > g.maxSpell() {
			cands = cands[:g.maxSpell()]
		}
		for _, c := range cands {
			r := Rule{
				Op:     OpSubstitute,
				LHS:    []string{k},
				RHS:    []string{c.word},
				Score:  float64(c.dist),
				Origin: "spelling",
			}
			if err := add(r); err != nil {
				return err
			}
		}
	}
	return nil
}

// stemmingRules substitutes a query term by data terms sharing its Porter
// stem at cost 1 (paper: "match" -> "matching").
func (g Generator) stemmingRules(ix *index.Index, q []string, add func(Rule) error) error {
	byStem := derivedFor(ix).byStem
	for _, k := range q {
		for _, w := range byStem[stem.Stem(k)] {
			if w == k {
				continue
			}
			r := Rule{
				Op:     OpSubstitute,
				LHS:    []string{k},
				RHS:    []string{w},
				Score:  1,
				Origin: "stem",
			}
			if err := add(r); err != nil {
				return err
			}
		}
	}
	return nil
}

// synonymRules substitutes lexicon synonyms that occur in the data, scored
// by the lexicon's semantic distance (paper rule r3).
func (g Generator) synonymRules(ix *index.Index, q []string, add func(Rule) error) error {
	for _, k := range q {
		for _, syn := range g.Lexicon.Synonyms(k) {
			other := syn.Other(k)
			if !ix.HasTerm(other) {
				continue
			}
			r := Rule{
				Op:     OpSubstitute,
				LHS:    []string{k},
				RHS:    []string{other},
				Score:  syn.Score,
				Origin: "synonym",
			}
			if err := add(r); err != nil {
				return err
			}
		}
	}
	return nil
}

// acronymRules expands short forms ("www" -> "world wide web") and
// contracts expansions present in the query back to their short form, both
// at cost 1 (paper rule r6 and its inverse).
func (g Generator) acronymRules(ix *index.Index, q []string, add func(Rule) error) error {
	for i, k := range q {
		if a, ok := g.Lexicon.Expand(k); ok {
			allPresent := true
			for _, t := range a.Expansion {
				if !ix.HasTerm(t) {
					allPresent = false
					break
				}
			}
			if allPresent {
				r := Rule{
					Op:     OpSubstitute,
					LHS:    []string{k},
					RHS:    append([]string(nil), a.Expansion...),
					Score:  1,
					Origin: "acronym",
				}
				if err := add(r); err != nil {
					return err
				}
			}
		}
		// Contraction: the expansion appears contiguously starting here.
		for _, a := range g.Lexicon.Contract(k) {
			if i+len(a.Expansion) > len(q) {
				continue
			}
			match := true
			for j, t := range a.Expansion {
				if q[i+j] != t {
					match = false
					break
				}
			}
			if !match || !ix.HasTerm(a.Short) {
				continue
			}
			r := Rule{
				Op:     OpSubstitute,
				LHS:    append([]string(nil), q[i:i+len(a.Expansion)]...),
				RHS:    []string{a.Short},
				Score:  1,
				Origin: "acronym",
			}
			if err := add(r); err != nil {
				return err
			}
		}
	}
	return nil
}
