// Package rules models refinement rules (Definition 3.5 of the paper) and
// generates the rule set relevant to a query. A rule rewrites a contiguous
// keyword sequence of the query (its LHS) into a keyword set that exists in
// the data (its RHS) at a dissimilarity cost ds_r; term deletion is the
// implicit fifth operation, priced by the set-wide DeleteCost.
//
// The paper obtains rules from human annotators, WordNet and query-log
// mining. This package derives them automatically against the indexed
// vocabulary: merges and splits from vocabulary membership, spelling
// corrections from bounded Damerau-Levenshtein search, synonym/acronym
// substitutions from the lexicon, and stemming substitutions from Porter
// stem equivalence — one generator per rule class of Table II.
package rules

import (
	"fmt"
	"sort"
	"strings"

	"xrefine/internal/tokenize"
)

// Op is a refinement operation (Section III-B).
type Op int

const (
	// OpMerge joins adjacent query terms mistakenly split by the user
	// ("on line" -> "online").
	OpMerge Op = iota
	// OpSplit divides a term mistakenly concatenated ("online" -> "on
	// line").
	OpSplit
	// OpSubstitute replaces terms: spelling correction, synonym,
	// acronym expansion/contraction, stemming variant.
	OpSubstitute
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpMerge:
		return "merge"
	case OpSplit:
		return "split"
	case OpSubstitute:
		return "substitute"
	}
	return "unknown"
}

// Rule is one refinement rule S1 ->op S2 with dissimilarity ds_r.
type Rule struct {
	Op Op
	// LHS is the contiguous keyword sequence of the original query the
	// rule consumes.
	LHS []string
	// RHS is the keyword set the rule produces; every RHS keyword is
	// guaranteed by the generator to occur in the indexed data.
	RHS []string
	// Score is the dissimilarity ds_r (> 0).
	Score float64
	// Origin records which generator produced the rule, for diagnostics
	// and experiment reporting.
	Origin string
}

// String renders the rule in the paper's arrow notation.
func (r Rule) String() string {
	return fmt.Sprintf("%s ->%s %s (ds=%g)", strings.Join(r.LHS, ","), r.Op, strings.Join(r.RHS, ","), r.Score)
}

// DefaultDeleteCost is the deletion dissimilarity used throughout the
// evaluation; the paper assigns ds_r = 2 for a single term deletion,
// keeping it strictly greater than the other operations' unit cost.
const DefaultDeleteCost = 2.0

// Set is a collection of rules plus the deletion cost, indexed for the
// dynamic program of Section V: rules are looked up by the last keyword of
// their LHS, because the DP extends prefixes of the query one keyword at a
// time.
type Set struct {
	DeleteCost float64
	rules      []Rule
	byLast     map[string][]int
}

// NewSet returns an empty rule set; deleteCost <= 0 selects the default.
func NewSet(deleteCost float64) *Set {
	if deleteCost <= 0 {
		deleteCost = DefaultDeleteCost
	}
	return &Set{DeleteCost: deleteCost, byLast: make(map[string][]int)}
}

// Add validates and inserts a rule. Duplicate (LHS, RHS) pairs keep the
// cheaper score.
func (s *Set) Add(r Rule) error {
	if len(r.LHS) == 0 || len(r.RHS) == 0 {
		return fmt.Errorf("rules: empty side in %s", r)
	}
	if r.Score <= 0 {
		return fmt.Errorf("rules: non-positive score in %s", r)
	}
	for _, k := range append(append([]string(nil), r.LHS...), r.RHS...) {
		if !tokenize.Term(k) {
			return fmt.Errorf("rules: %q is not a normalized term in %s", k, r)
		}
	}
	if sameSet(r.LHS, r.RHS) {
		return fmt.Errorf("rules: identity rule %s", r)
	}
	for _, i := range s.byLast[r.LHS[len(r.LHS)-1]] {
		old := &s.rules[i]
		if sliceEq(old.LHS, r.LHS) && sameSet(old.RHS, r.RHS) {
			if r.Score < old.Score {
				old.Score = r.Score
				old.Origin = r.Origin
				old.Op = r.Op
			}
			return nil
		}
	}
	s.rules = append(s.rules, r)
	last := r.LHS[len(r.LHS)-1]
	s.byLast[last] = append(s.byLast[last], len(s.rules)-1)
	return nil
}

// ByLastLHS returns every rule whose LHS ends with keyword k — the DP's
// lookup shape.
func (s *Set) ByLastLHS(k string) []Rule {
	idx := s.byLast[k]
	out := make([]Rule, len(idx))
	for i, j := range idx {
		out[i] = s.rules[j]
	}
	return out
}

// Rules returns all rules in insertion order.
func (s *Set) Rules() []Rule { return append([]Rule(nil), s.rules...) }

// Len returns the number of rules.
func (s *Set) Len() int { return len(s.rules) }

// NewKeywords returns every RHS keyword that is not a keyword of q, in
// sorted order — the getNewKeywords(Q) of Algorithms 1-3.
func (s *Set) NewKeywords(q []string) []string {
	in := make(map[string]bool, len(q))
	for _, k := range q {
		in[k] = true
	}
	set := map[string]bool{}
	for _, r := range s.rules {
		for _, k := range r.RHS {
			if !in[k] {
				set[k] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sliceEq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	m := make(map[string]int, len(a))
	for _, x := range a {
		m[x]++
	}
	for _, x := range b {
		m[x]--
		if m[x] < 0 {
			return false
		}
	}
	return true
}
