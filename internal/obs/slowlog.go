package obs

import (
	"sync"
	"time"
)

// SlowLog is a fixed-capacity ring buffer of slow-query records. When the
// server is started with a slow-query threshold, every query is traced
// and queries whose wall time meets the threshold deposit their rendered
// span tree here; GET /debug/slowlog dumps the buffer newest-first. The
// ring never allocates after construction beyond the records themselves,
// and recording is a short critical section, so a burst of slow queries
// cannot amplify the overload that made them slow.
type SlowLog struct {
	threshold time.Duration

	mu      sync.Mutex
	entries []SlowEntry
	next    int // ring write position
	filled  bool
	dropped uint64 // total entries overwritten
}

// SlowEntry is one recorded slow query.
type SlowEntry struct {
	// Time is when the query finished.
	Time time.Time `json:"time"`
	// Query is the raw query string as received.
	Query string `json:"query"`
	// DurationNS is the query's wall time in nanoseconds.
	DurationNS int64 `json:"duration_ns"`
	// Degraded and DegradedReason carry the budget outcome.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
	// TraceID is the query's flight-recorder identity; cross-reference it
	// at /debug/events?trace_id= and /debug/trace/<id>. Zero when the
	// query entered below the HTTP admission layer.
	TraceID TraceID `json:"trace_id,omitempty"`
	// Shard/Replica/Hedged name the serving attempt on the query's
	// critical path — which replica made it slow, not just how slow.
	// Shard and Replica are -1 on a single-engine backend.
	Shard   int  `json:"shard"`
	Replica int  `json:"replica"`
	Hedged  bool `json:"hedged,omitempty"`
	// Trace is the query's span tree.
	Trace *SpanData `json:"trace,omitempty"`
}

// NewSlowLog builds a slow log holding the last capacity entries at or
// over threshold. capacity <= 0 defaults to 128.
func NewSlowLog(threshold time.Duration, capacity int) *SlowLog {
	if capacity <= 0 {
		capacity = 128
	}
	return &SlowLog{threshold: threshold, entries: make([]SlowEntry, capacity)}
}

// Threshold returns the recording threshold (0 for a nil log).
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Record deposits one entry if its duration meets the threshold; it
// reports whether the entry was kept. Nil-safe.
func (l *SlowLog) Record(e SlowEntry) bool {
	if l == nil || time.Duration(e.DurationNS) < l.threshold {
		return false
	}
	l.mu.Lock()
	if l.filled {
		l.dropped++
	}
	l.entries[l.next] = e
	l.next++
	if l.next == len(l.entries) {
		l.next = 0
		l.filled = true
	}
	l.mu.Unlock()
	return true
}

// Entries returns the recorded entries, newest first.
func (l *SlowLog) Entries() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if l.filled {
		n = len(l.entries)
	}
	out := make([]SlowEntry, 0, n)
	for i := 1; i <= n; i++ {
		// Walk backwards from the most recent write.
		out = append(out, l.entries[(l.next-i+len(l.entries))%len(l.entries)])
	}
	return out
}

// Dropped returns how many entries were overwritten after the ring
// filled.
func (l *SlowLog) Dropped() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Len returns the number of entries currently held.
func (l *SlowLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.filled {
		return len(l.entries)
	}
	return l.next
}
