package obs

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// The flight recorder is the always-on half of the tracing story. Span
// trees are sampled — they allocate — but every request is stamped with a
// TraceID at admission and every hop it takes (shard fan-out, replica
// attempts, hedges, breaker trips, WAL commits, budget expiry) deposits a
// fixed-shape Event into a preallocated ring. Recording is a mutex
// acquisition and a struct store: zero allocations, so it can sit on the
// non-sampled hot path under the same ≤2-allocs/query guard as the
// counters. GET /debug/events dumps the ring; a sampled trace's span tree
// is retained in a TraceStore and resolved at GET /debug/trace/<id>.

// TraceID identifies one request end to end. Zero means "no trace ID" —
// a query that entered below the HTTP admission layer.
type TraceID uint64

// String renders the ID the way it appears in exemplars, event dumps and
// debug URLs: 16 lowercase hex digits.
func (t TraceID) String() string {
	var buf [16]byte
	const hexdigits = "0123456789abcdef"
	for i := 0; i < 16; i++ {
		buf[15-i] = hexdigits[(uint64(t)>>(4*i))&0xf]
	}
	return string(buf[:])
}

// MarshalText renders the hex form, so TraceID fields JSON-encode as the
// same string /debug/trace/<id> accepts.
func (t TraceID) MarshalText() ([]byte, error) { return []byte(t.String()), nil }

// ParseTraceID parses the hex form accepted by the debug surfaces.
func ParseTraceID(s string) (TraceID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil || v == 0 {
		return 0, fmt.Errorf("obs: bad trace id %q", s)
	}
	return TraceID(v), nil
}

// traceSeq feeds NewTraceID; traceSeed decorrelates processes started in
// the same nanosecond from each other's ID sequences.
var (
	traceSeq  atomic.Uint64
	traceSeed = uint64(time.Now().UnixNano())
)

// NewTraceID mints a process-unique trace ID: a counter diffused through
// the splitmix64 finalizer, so consecutive requests get well-spread IDs
// without coordination or allocation.
func NewTraceID() TraceID {
	z := traceSeq.Add(1)*0x9e3779b97f4a7c15 + traceSeed
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1 // zero is the "no trace" sentinel
	}
	return TraceID(z)
}

// EventKind enumerates the fixed event taxonomy. KindAny (zero) is the
// filter wildcard, never recorded.
type EventKind uint8

const (
	KindAny EventKind = iota
	// EvAdmit / EvFinish bracket one HTTP request on a query route.
	EvAdmit
	EvFinish
	// EvQuery is one engine query completing (cache hit or full pipeline).
	EvQuery
	// EvFanout is a scatter-gather query fanning out; N is the worker count.
	EvFanout
	// EvAttemptStart/End/Cancel are one replica scan attempt's lifecycle;
	// a cancelled attempt is a hedge loser or a query-wide abort.
	EvAttemptStart
	EvAttemptEnd
	EvAttemptCancel
	// EvHedgeFire is a hedge launching; EvHedgeWin is the hedge finishing
	// before the primary attempt.
	EvHedgeFire
	EvHedgeWin
	// EvRetry is a sequential failover retry after a failed attempt.
	EvRetry
	// EvBreakerOpen is a replica's circuit breaker tripping.
	EvBreakerOpen
	// EvQuarantine / EvReconcile are epoch reconciliation: a replica held
	// out of reads on an epoch mismatch, and one caught up and rejoined.
	EvQuarantine
	EvReconcile
	// EvWALCommit is one update batch durably committed; N is the epoch.
	EvWALCommit
	// EvBudgetExpiry is a query degrading on a deadline or posting budget;
	// Note carries the degradation reason.
	EvBudgetExpiry
)

var kindNames = [...]string{
	KindAny:         "any",
	EvAdmit:         "admit",
	EvFinish:        "finish",
	EvQuery:         "query",
	EvFanout:        "fanout",
	EvAttemptStart:  "attempt-start",
	EvAttemptEnd:    "attempt-end",
	EvAttemptCancel: "attempt-cancel",
	EvHedgeFire:     "hedge-fire",
	EvHedgeWin:      "hedge-win",
	EvRetry:         "retry",
	EvBreakerOpen:   "breaker-open",
	EvQuarantine:    "quarantine",
	EvReconcile:     "reconcile",
	EvWALCommit:     "wal-commit",
	EvBudgetExpiry:  "budget-expiry",
}

// String names the kind as it appears in event dumps and kind= filters.
func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// ParseEventKind resolves a kind= filter value; KindAny on "".
func ParseEventKind(s string) (EventKind, error) {
	if s == "" {
		return KindAny, nil
	}
	for k, name := range kindNames {
		if name == s {
			return EventKind(k), nil
		}
	}
	return KindAny, fmt.Errorf("obs: unknown event kind %q", s)
}

// Event is one fixed-shape flight-recorder record. Shard and Replica are
// -1 when the event is not scoped to one; Note is always a small constant
// vocabulary (route names, degradation reasons, error classes), never a
// per-event formatted string, so recording allocates nothing.
type Event struct {
	Seq     uint64
	TimeNS  int64 // unix nanoseconds, stamped by Record
	Trace   TraceID
	Kind    EventKind
	Shard   int
	Replica int
	Hedge   bool
	DurNS   int64 // duration payload; 0 when not applicable
	N       int64 // numeric payload: fan-out width, epoch, status code
	Note    string
}

// EventView is the JSON rendering of one event, shared by /debug/events
// and /debug/trace/<id>.
type EventView struct {
	Seq     uint64  `json:"seq"`
	Time    string  `json:"time"`
	TraceID TraceID `json:"trace_id"`
	Kind    string  `json:"kind"`
	Shard   int     `json:"shard"`
	Replica int     `json:"replica"`
	Hedged  bool    `json:"hedged"`
	DurNS   int64   `json:"duration_ns"`
	N       int64   `json:"n"`
	Note    string  `json:"note,omitempty"`
}

// View renders the event for the debug surfaces.
func (e Event) View() EventView {
	return EventView{
		Seq:     e.Seq,
		Time:    time.Unix(0, e.TimeNS).UTC().Format(time.RFC3339Nano),
		TraceID: e.Trace,
		Kind:    e.Kind.String(),
		Shard:   e.Shard,
		Replica: e.Replica,
		Hedged:  e.Hedge,
		DurNS:   e.DurNS,
		N:       e.N,
		Note:    e.Note,
	}
}

// FlightRecorder is the always-on structured event ring. All methods are
// nil-safe; Record never allocates after construction.
type FlightRecorder struct {
	mu      sync.Mutex
	ring    []Event
	next    int
	filled  bool
	seq     uint64
	dropped uint64
}

// DefaultFlightCapacity is the ring size Registry.Flight uses.
const DefaultFlightCapacity = 4096

// NewFlightRecorder builds a recorder holding the last capacity events.
// capacity <= 0 defaults to DefaultFlightCapacity.
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{ring: make([]Event, capacity)}
}

// Record deposits one event, stamping its sequence number and time.
func (f *FlightRecorder) Record(e Event) {
	if f == nil {
		return
	}
	now := time.Now().UnixNano()
	f.mu.Lock()
	f.seq++
	e.Seq = f.seq
	e.TimeNS = now
	if f.filled {
		f.dropped++
	}
	f.ring[f.next] = e
	f.next++
	if f.next == len(f.ring) {
		f.next = 0
		f.filled = true
	}
	f.mu.Unlock()
}

// EventFilter selects events from the ring. Zero values match everything;
// set HasShard to filter on Shard (including -1, the unscoped sentinel).
type EventFilter struct {
	Trace    TraceID
	Kind     EventKind
	Shard    int
	HasShard bool
	Limit    int // max events returned, newest first; 0 = all retained
}

// Events returns the retained events matching the filter, newest first.
func (f *FlightRecorder) Events(filter EventFilter) []Event {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.next
	if f.filled {
		n = len(f.ring)
	}
	var out []Event
	for i := 1; i <= n; i++ {
		e := f.ring[(f.next-i+len(f.ring))%len(f.ring)]
		if filter.Trace != 0 && e.Trace != filter.Trace {
			continue
		}
		if filter.Kind != KindAny && e.Kind != filter.Kind {
			continue
		}
		if filter.HasShard && e.Shard != filter.Shard {
			continue
		}
		out = append(out, e)
		if filter.Limit > 0 && len(out) >= filter.Limit {
			break
		}
	}
	return out
}

// Len returns the number of events currently retained.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.filled {
		return len(f.ring)
	}
	return f.next
}

// Dropped returns how many events were overwritten after the ring filled.
func (f *FlightRecorder) Dropped() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// Capacity returns the ring size (0 for a nil recorder).
func (f *FlightRecorder) Capacity() int {
	if f == nil {
		return 0
	}
	return len(f.ring)
}

// Flight returns the registry's flight recorder, creating it on first
// use. Every component sharing the registry (engine, router, HTTP server)
// shares the recorder, so one ring holds the whole request path. Nil
// registries return a nil recorder whose Record no-ops.
func (r *Registry) Flight() *FlightRecorder {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.flight == nil {
		r.flight = NewFlightRecorder(0)
	}
	return r.flight
}

// ReqInfo is the per-request identity and attribution record carried
// through the context: the trace ID every span, event and exemplar of the
// request stamps, the sampling decision, and the serving attempt the
// response was ultimately built from (filled in by the replica fan-out,
// read back by the slowlog). One ReqInfo is allocated per request at HTTP
// admission; queries entered below that layer see a nil ReqInfo and every
// method no-ops.
type ReqInfo struct {
	Trace TraceID
	// Sampled marks requests whose span tree is being retained; the
	// replica fan-out uses it to attach exemplars.
	Sampled bool

	mu       sync.Mutex
	shard    int
	replica  int
	hedged   bool
	durNS    int64
	served   bool
	retained bool
}

// NewReqInfo allocates a request record with a fresh trace ID and no
// serving attribution (shard/replica -1).
func NewReqInfo() *ReqInfo {
	return &ReqInfo{Trace: NewTraceID(), shard: -1, replica: -1}
}

// Reset re-arms ri for a new request with a fresh trace ID, clearing the
// sampling decision and serving attribution. It exists for serving loops
// that handle requests strictly one at a time per connection (the binary
// wire protocol): one ReqInfo per connection, reset per request, keeps the
// steady-state request path allocation-free. It must never be called while
// a request using ri is still in flight.
func (ri *ReqInfo) Reset() {
	if ri == nil {
		return
	}
	ri.mu.Lock()
	ri.Trace = NewTraceID()
	ri.Sampled = false
	ri.shard, ri.replica = -1, -1
	ri.hedged, ri.served, ri.retained = false, false, false
	ri.durNS = 0
	ri.mu.Unlock()
}

type reqInfoKey struct{}

// WithReqInfo returns a context carrying ri.
func WithReqInfo(ctx context.Context, ri *ReqInfo) context.Context {
	return context.WithValue(ctx, reqInfoKey{}, ri)
}

// ReqInfoFromContext returns the request record carried by ctx, or nil.
func ReqInfoFromContext(ctx context.Context) *ReqInfo {
	ri, _ := ctx.Value(reqInfoKey{}).(*ReqInfo)
	return ri
}

// TraceIDFromContext returns the request's trace ID, or zero when the
// context carries none — one context lookup, no allocation.
func TraceIDFromContext(ctx context.Context) TraceID {
	ri, _ := ctx.Value(reqInfoKey{}).(*ReqInfo)
	if ri == nil {
		return 0
	}
	return ri.Trace
}

// TraceID returns ri's trace ID; zero for nil.
func (ri *ReqInfo) TraceID() TraceID {
	if ri == nil {
		return 0
	}
	return ri.Trace
}

// IsSampled reports the sampling decision; false for nil.
func (ri *ReqInfo) IsSampled() bool { return ri != nil && ri.Sampled }

// NoteServe records one winning scan attempt. Across a scatter-gather
// query the slowest shard's winner is kept — the attempt that set the
// request's critical path is the one worth naming in the slowlog.
func (ri *ReqInfo) NoteServe(shard, replica int, hedged bool, d time.Duration) {
	if ri == nil {
		return
	}
	ri.mu.Lock()
	if !ri.served || int64(d) > ri.durNS {
		ri.shard, ri.replica, ri.hedged, ri.durNS = shard, replica, hedged, int64(d)
		ri.served = true
	}
	ri.mu.Unlock()
}

// Serving returns the recorded serving attempt; ok is false (and
// shard/replica -1) when no replica fan-out attributed one.
func (ri *ReqInfo) Serving() (shard, replica int, hedged, ok bool) {
	if ri == nil {
		return -1, -1, false, false
	}
	ri.mu.Lock()
	defer ri.mu.Unlock()
	return ri.shard, ri.replica, ri.hedged, ri.served
}

// MarkRetained records that the request's span tree was deposited in the
// trace store, so the latency histogram may exemplar-link its trace ID.
func (ri *ReqInfo) MarkRetained() {
	if ri == nil {
		return
	}
	ri.mu.Lock()
	ri.retained = true
	ri.mu.Unlock()
}

// Retained reports whether the span tree was deposited in the trace store.
func (ri *ReqInfo) Retained() bool {
	if ri == nil {
		return false
	}
	ri.mu.Lock()
	defer ri.mu.Unlock()
	return ri.retained
}
