package obs

import (
	"strings"
	"testing"
	"time"
)

func TestTraceIDRoundTrip(t *testing.T) {
	id := NewTraceID()
	if id == 0 {
		t.Fatal("NewTraceID returned the zero sentinel")
	}
	s := id.String()
	if len(s) != 16 {
		t.Fatalf("String() = %q, want 16 hex chars", s)
	}
	back, err := ParseTraceID(s)
	if err != nil || back != id {
		t.Fatalf("ParseTraceID(%q) = %v, %v; want %v", s, back, err, id)
	}
	if _, err := ParseTraceID("xyz"); err == nil {
		t.Error("ParseTraceID accepted garbage")
	}
	if _, err := ParseTraceID("0000000000000000"); err == nil {
		t.Error("ParseTraceID accepted the zero sentinel")
	}
	// IDs must be distinct across calls.
	if NewTraceID() == NewTraceID() {
		t.Error("consecutive trace IDs collided")
	}
}

func TestEventKindNames(t *testing.T) {
	for k := EvAdmit; k <= EvBudgetExpiry; k++ {
		name := k.String()
		if name == "" || strings.HasPrefix(name, "kind-") {
			t.Fatalf("kind %d has no name", k)
		}
		back, err := ParseEventKind(name)
		if err != nil || back != k {
			t.Fatalf("ParseEventKind(%q) = %v, %v; want %v", name, back, err, k)
		}
	}
	if k, err := ParseEventKind(""); err != nil || k != KindAny {
		t.Errorf("empty kind should parse to KindAny, got %v, %v", k, err)
	}
	if _, err := ParseEventKind("nope"); err == nil {
		t.Error("ParseEventKind accepted an unknown name")
	}
}

func TestFlightRecorderRingAndFilters(t *testing.T) {
	f := NewFlightRecorder(4)
	idA, idB := NewTraceID(), NewTraceID()
	f.Record(Event{Trace: idA, Kind: EvAdmit, Shard: -1, Replica: -1})
	f.Record(Event{Trace: idA, Kind: EvAttemptStart, Shard: 0, Replica: 1})
	f.Record(Event{Trace: idB, Kind: EvAdmit, Shard: -1, Replica: -1})
	f.Record(Event{Trace: idB, Kind: EvAttemptStart, Shard: 2, Replica: 0})

	all := f.Events(EventFilter{})
	if len(all) != 4 {
		t.Fatalf("Events() = %d events, want 4", len(all))
	}
	// Newest first, monotone sequence numbers.
	for i := 1; i < len(all); i++ {
		if all[i-1].Seq <= all[i].Seq {
			t.Fatalf("events not newest-first: seq %d before %d", all[i-1].Seq, all[i].Seq)
		}
	}
	if got := f.Events(EventFilter{Trace: idA}); len(got) != 2 {
		t.Errorf("trace filter = %d events, want 2", len(got))
	}
	if got := f.Events(EventFilter{Kind: EvAdmit}); len(got) != 2 {
		t.Errorf("kind filter = %d events, want 2", len(got))
	}
	if got := f.Events(EventFilter{Shard: 2, HasShard: true}); len(got) != 1 || got[0].Trace != idB {
		t.Errorf("shard filter = %v, want one idB event", got)
	}
	if got := f.Events(EventFilter{Limit: 3}); len(got) != 3 {
		t.Errorf("limit filter = %d events, want 3", len(got))
	}

	// Overflow: the 5th record overwrites the oldest and counts dropped.
	f.Record(Event{Trace: idA, Kind: EvFinish, Shard: -1, Replica: -1})
	if f.Len() != 4 || f.Dropped() != 1 {
		t.Errorf("after overflow Len=%d Dropped=%d, want 4, 1", f.Len(), f.Dropped())
	}
	newest := f.Events(EventFilter{Limit: 1})[0]
	if newest.Kind != EvFinish {
		t.Errorf("newest event kind = %v, want finish", newest.Kind)
	}

	// Nil recorder: all methods inert.
	var nilf *FlightRecorder
	nilf.Record(Event{Kind: EvAdmit})
	if nilf.Events(EventFilter{}) != nil || nilf.Len() != 0 {
		t.Error("nil recorder not inert")
	}
}

func TestRegistryFlightShared(t *testing.T) {
	r := NewRegistry()
	f1, f2 := r.Flight(), r.Flight()
	if f1 == nil || f1 != f2 {
		t.Fatal("Registry.Flight must lazily create one shared recorder")
	}
	if Disabled().Flight() != nil {
		t.Error("disabled registry must have a nil recorder")
	}
}

func TestReqInfoServingAttribution(t *testing.T) {
	ri := NewReqInfo()
	if s, rp, h, ok := ri.Serving(); ok || s != -1 || rp != -1 || h {
		t.Fatalf("fresh ReqInfo Serving = %d %d %v %v, want -1 -1 false false", s, rp, h, ok)
	}
	// The slowest shard's winner is the critical path: it must win over a
	// faster attempt noted later.
	ri.NoteServe(0, 1, false, 5*time.Millisecond)
	ri.NoteServe(2, 0, true, 9*time.Millisecond)
	ri.NoteServe(1, 1, false, 2*time.Millisecond)
	s, rp, h, ok := ri.Serving()
	if !ok || s != 2 || rp != 0 || !h {
		t.Errorf("Serving = %d %d %v %v, want 2 0 true true", s, rp, h, ok)
	}
	// Nil safety.
	var nilri *ReqInfo
	nilri.NoteServe(0, 0, false, time.Millisecond)
	nilri.MarkRetained()
	if nilri.TraceID() != 0 || nilri.IsSampled() || nilri.Retained() {
		t.Error("nil ReqInfo not inert")
	}
}

func TestSampler(t *testing.T) {
	s := NewSampler(4)
	hits := 0
	for i := 0; i < 40; i++ {
		if s.Sample() {
			hits++
		}
	}
	if hits != 10 {
		t.Errorf("1-in-4 sampler hit %d of 40, want 10", hits)
	}
	if NewSampler(-1).Sample() {
		t.Error("disabled sampler sampled")
	}
	one := NewSampler(1)
	if !one.Sample() || !one.Sample() {
		t.Error("1-in-1 sampler must always sample")
	}
}

func TestTraceStoreEviction(t *testing.T) {
	ts := NewTraceStore(2)
	a, b, c := NewTraceID(), NewTraceID(), NewTraceID()
	ts.Put(RetainedTrace{ID: a, Query: "a"})
	ts.Put(RetainedTrace{ID: b, Query: "b"})
	ts.Put(RetainedTrace{ID: c, Query: "c"}) // evicts a
	if _, ok := ts.Get(a); ok {
		t.Error("oldest trace not evicted")
	}
	if rt, ok := ts.Get(c); !ok || rt.Query != "c" {
		t.Errorf("Get(c) = %+v, %v", rt, ok)
	}
	if ts.Len() != 2 || ts.Capacity() != 2 {
		t.Errorf("Len=%d Cap=%d, want 2, 2", ts.Len(), ts.Capacity())
	}
}

func TestSLOBurnMath(t *testing.T) {
	s := NewSLO(SLOOptions{}) // defaults: 0.999 avail, 0.99 latency@250ms
	now := time.Now()
	// 1000 requests, 10 availability failures (1% bad = 10× the 0.1%
	// budget), 100 over the latency target (10% bad = 10× the 1% budget).
	for i := 0; i < 1000; i++ {
		ok := i >= 10
		lat := 10 * time.Millisecond
		if i < 100 {
			lat = 400 * time.Millisecond
		}
		s.Record(now, ok, lat)
	}
	rep := s.Report(now)
	if len(rep.Windows) != 2 || rep.Windows[0].Window != "5m" || rep.Windows[1].Window != "1h" {
		t.Fatalf("windows = %+v", rep.Windows)
	}
	for _, w := range rep.Windows {
		if w.Requests != 1000 || w.BadAvailability != 10 || w.BadLatency != 100 {
			t.Fatalf("%s counts = %+v", w.Window, w)
		}
		if w.AvailabilityBurn < 9.99 || w.AvailabilityBurn > 10.01 {
			t.Errorf("%s availability burn = %v, want 10", w.Window, w.AvailabilityBurn)
		}
		if w.LatencyBurn < 9.99 || w.LatencyBurn > 10.01 {
			t.Errorf("%s latency burn = %v, want 10", w.Window, w.LatencyBurn)
		}
	}
	if got := s.BurnRate("5m", "availability"); got < 9 {
		t.Errorf("BurnRate bridge = %v, want ~10", got)
	}

	// Requests age out of the 5m window but stay in the 1h one.
	later := now.Add(6 * time.Minute)
	rep = s.Report(later)
	if rep.Windows[0].Requests != 0 {
		t.Errorf("5m window still holds %d requests after 6 minutes", rep.Windows[0].Requests)
	}
	if rep.Windows[1].Requests != 1000 {
		t.Errorf("1h window lost requests: %d", rep.Windows[1].Requests)
	}

	// Nil engine: inert.
	var nils *SLO
	nils.Record(now, false, time.Second)
	if r := nils.Report(now); len(r.Windows) != 0 {
		t.Error("nil SLO not inert")
	}
}

func TestSLOReportRender(t *testing.T) {
	s := NewSLO(SLOOptions{})
	s.Record(time.Now(), true, time.Millisecond)
	var b strings.Builder
	WriteSLOReport(&b, s.Report(time.Now()))
	out := b.String()
	for _, want := range []string{"objectives:", "5m", "1h", "avail-burn"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestOpenMetricsExemplarRoundTrip: a histogram observation pinned with a
// trace ID must surface in the OpenMetrics exposition as a bucket exemplar
// that the in-tree parser reads back, and the shape checks must accept the
// whole payload. The default exposition must stay exemplar-free.
func TestOpenMetricsExemplarRoundTrip(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "help.", []float64{0.1, 1})
	id := NewTraceID()
	h.Observe(0.05)
	h.ObserveExemplar(0.5, id, time.Now())

	var om strings.Builder
	if err := r.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(om.String(), "# EOF\n") {
		t.Error("OpenMetrics exposition missing terminal # EOF")
	}
	exp, err := ParsePrometheus(strings.NewReader(om.String()))
	if err != nil {
		t.Fatalf("parse OpenMetrics output: %v\n%s", err, om.String())
	}
	if err := exp.CheckHistograms(); err != nil {
		t.Fatalf("CheckHistograms: %v\n%s", err, om.String())
	}
	found := false
	for _, s := range exp.Samples {
		if s.Name == "test_seconds_bucket" && s.Exemplar != nil {
			found = true
			if s.Exemplar.Labels["trace_id"] != id.String() {
				t.Errorf("exemplar trace_id = %q, want %q", s.Exemplar.Labels["trace_id"], id)
			}
			if s.Exemplar.Value != 0.5 {
				t.Errorf("exemplar value = %v, want 0.5", s.Exemplar.Value)
			}
			if !s.Exemplar.HasTS {
				t.Error("exemplar missing timestamp")
			}
		}
	}
	if !found {
		t.Fatalf("no bucket exemplar in OpenMetrics output:\n%s", om.String())
	}

	// The default exposition carries no exemplars — byte-compatible with
	// pre-exemplar scrapes.
	var plain strings.Builder
	if err := r.WritePrometheus(&plain); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "#  {") || strings.Contains(plain.String(), "} # {") ||
		strings.Contains(plain.String(), "trace_id") {
		t.Errorf("default exposition leaked exemplars:\n%s", plain.String())
	}
}

// TestCheckHistogramsRejects: the CI gate must fail on the histogram
// malformations it exists to catch.
func TestCheckHistogramsRejects(t *testing.T) {
	cases := []struct {
		name, payload string
	}{
		{"missing +Inf", `# TYPE h histogram
h_bucket{le="1"} 3
h_count 3
h_sum 1.5
`},
		{"non-monotonic buckets", `# TYPE h histogram
h_bucket{le="0.1"} 5
h_bucket{le="1"} 3
h_bucket{le="+Inf"} 5
h_count 5
h_sum 1.5
`},
		{"+Inf disagrees with count", `# TYPE h histogram
h_bucket{le="1"} 3
h_bucket{le="+Inf"} 4
h_count 9
h_sum 1.5
`},
		{"exemplar missing trace_id", `# TYPE h histogram
h_bucket{le="1"} 3 # {span="x"} 0.5 1.0
h_bucket{le="+Inf"} 3
h_count 3
h_sum 1.5
`},
		{"exemplar outside bucket range", `# TYPE h histogram
h_bucket{le="0.1"} 1
h_bucket{le="1"} 3 # {trace_id="00000000000000ab"} 0.05 1.0
h_bucket{le="+Inf"} 3
h_count 3
h_sum 1.5
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			exp, err := ParsePrometheus(strings.NewReader(tc.payload))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if err := exp.CheckHistograms(); err == nil {
				t.Errorf("CheckHistograms accepted %s", tc.name)
			}
		})
	}
	// Malformed exemplar syntax must fail at parse time.
	bad := `# TYPE h histogram
h_bucket{le="1"} 3 # notbraces 0.5
h_bucket{le="+Inf"} 3
`
	if _, err := ParsePrometheus(strings.NewReader(bad)); err == nil {
		t.Error("parser accepted malformed exemplar syntax")
	}
}
