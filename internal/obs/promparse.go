package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ExpositionMetric is one parsed sample line of a Prometheus text
// exposition: the metric name, its label pairs, and the sample value.
type ExpositionMetric struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Exposition is the parsed form of a Prometheus text payload: every sample
// plus, per family name, the declared TYPE.
type Exposition struct {
	Samples []ExpositionMetric
	Types   map[string]string // family name -> counter|gauge|histogram|...
	Help    map[string]string // family name -> HELP text
}

// Families returns the distinct family names seen, folding histogram
// sample suffixes (_bucket/_sum/_count) onto their declared family.
func (e *Exposition) Families() []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range e.Samples {
		name := s.Name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name && e.Types[base] == typeHistogram {
				name = base
				break
			}
		}
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	return out
}

// ParsePrometheus is the in-tree sanity parser for the text exposition
// format: it validates the line grammar strictly enough to catch the
// failure modes a hand-rolled writer can produce — malformed names,
// unbalanced label braces, unquoted label values, non-numeric samples,
// samples with no preceding TYPE, duplicate TYPE lines — and returns the
// parsed samples. It is deliberately NOT a full client_model parser; it is
// the gate the CI scrape job and the exposition golden test run against.
func ParsePrometheus(r io.Reader) (*Exposition, error) {
	exp := &Exposition{Types: make(map[string]string), Help: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !validMetricName(name) {
				return nil, fmt.Errorf("obs: line %d: malformed HELP line %q", lineNo, line)
			}
			exp.Help[name] = rest[len(name)+1:]
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 || !validMetricName(fields[0]) {
				return nil, fmt.Errorf("obs: line %d: malformed TYPE line %q", lineNo, line)
			}
			switch fields[1] {
			case typeCounter, typeGauge, typeHistogram, "summary", "untyped":
			default:
				return nil, fmt.Errorf("obs: line %d: unknown metric type %q", lineNo, fields[1])
			}
			if _, dup := exp.Types[fields[0]]; dup {
				return nil, fmt.Errorf("obs: line %d: duplicate TYPE for %q", lineNo, fields[0])
			}
			exp.Types[fields[0]] = fields[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal and ignored
		}
		m, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		if familyOf(m.Name, exp.Types) == "" {
			return nil, fmt.Errorf("obs: line %d: sample %q has no TYPE declaration", lineNo, m.Name)
		}
		exp.Samples = append(exp.Samples, m)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(exp.Samples) == 0 {
		return nil, fmt.Errorf("obs: exposition contains no samples")
	}
	return exp, nil
}

// familyOf resolves a sample name to its declared family, accepting the
// histogram sample suffixes.
func familyOf(name string, types map[string]string) string {
	if _, ok := types[name]; ok {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if t, ok := types[base]; ok && (t == typeHistogram || t == "summary") {
				return base
			}
		}
	}
	return ""
}

// parseSample parses `name{k="v",...} value` or `name value`.
func parseSample(line string) (ExpositionMetric, error) {
	m := ExpositionMetric{Labels: make(map[string]string)}
	rest := line
	brace := strings.IndexByte(line, '{')
	if brace >= 0 {
		m.Name = line[:brace]
		end := strings.LastIndexByte(line, '}')
		if end < brace {
			return m, fmt.Errorf("unbalanced label braces in %q", line)
		}
		if err := parseLabels(line[brace+1:end], m.Labels); err != nil {
			return m, err
		}
		rest = strings.TrimSpace(line[end+1:])
	} else {
		var ok bool
		m.Name, rest, ok = strings.Cut(line, " ")
		if !ok {
			return m, fmt.Errorf("sample line %q has no value", line)
		}
		rest = strings.TrimSpace(rest)
	}
	if !validMetricName(m.Name) {
		return m, fmt.Errorf("invalid metric name %q", m.Name)
	}
	// A timestamp may trail the value; accept and ignore it.
	valStr, _, _ := strings.Cut(rest, " ")
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return m, fmt.Errorf("non-numeric sample value %q", valStr)
	}
	m.Value = v
	return m, nil
}

// parseLabels parses `k1="v1",k2="v2"` into dst.
func parseLabels(s string, dst map[string]string) error {
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("label pair %q missing '='", s)
		}
		name := s[:eq]
		if !validLabelName(name) {
			return fmt.Errorf("invalid label name %q", name)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("label %q value is not quoted", name)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[i])
				}
				continue
			}
			if c == '"' {
				closed = true
				s = s[i+1:]
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return fmt.Errorf("label %q value is not terminated", name)
		}
		if _, dup := dst[name]; dup {
			return fmt.Errorf("duplicate label %q", name)
		}
		dst[name] = val.String()
		s = strings.TrimPrefix(s, ",")
	}
	return nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	return validMetricName(s)
}
