package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ExpositionMetric is one parsed sample line of a Prometheus text
// exposition: the metric name, its label pairs, the sample value, and —
// in the OpenMetrics-flavored exposition — the bucket's exemplar.
type ExpositionMetric struct {
	Name     string
	Labels   map[string]string
	Value    float64
	Exemplar *ExemplarData
}

// ExemplarData is one parsed exemplar (`# {labels} value [timestamp]`).
type ExemplarData struct {
	Labels map[string]string
	Value  float64
	TS     float64
	HasTS  bool
}

// Exposition is the parsed form of a Prometheus text payload: every sample
// plus, per family name, the declared TYPE.
type Exposition struct {
	Samples []ExpositionMetric
	Types   map[string]string // family name -> counter|gauge|histogram|...
	Help    map[string]string // family name -> HELP text
}

// Families returns the distinct family names seen, folding histogram
// sample suffixes (_bucket/_sum/_count) onto their declared family.
func (e *Exposition) Families() []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range e.Samples {
		name := s.Name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name && e.Types[base] == typeHistogram {
				name = base
				break
			}
		}
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	return out
}

// ParsePrometheus is the in-tree sanity parser for the text exposition
// format: it validates the line grammar strictly enough to catch the
// failure modes a hand-rolled writer can produce — malformed names,
// unbalanced label braces, unquoted label values, non-numeric samples,
// samples with no preceding TYPE, duplicate TYPE lines — and returns the
// parsed samples. It is deliberately NOT a full client_model parser; it is
// the gate the CI scrape job and the exposition golden test run against.
func ParsePrometheus(r io.Reader) (*Exposition, error) {
	exp := &Exposition{Types: make(map[string]string), Help: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !validMetricName(name) {
				return nil, fmt.Errorf("obs: line %d: malformed HELP line %q", lineNo, line)
			}
			exp.Help[name] = rest[len(name)+1:]
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 || !validMetricName(fields[0]) {
				return nil, fmt.Errorf("obs: line %d: malformed TYPE line %q", lineNo, line)
			}
			switch fields[1] {
			case typeCounter, typeGauge, typeHistogram, "summary", "untyped":
			default:
				return nil, fmt.Errorf("obs: line %d: unknown metric type %q", lineNo, fields[1])
			}
			if _, dup := exp.Types[fields[0]]; dup {
				return nil, fmt.Errorf("obs: line %d: duplicate TYPE for %q", lineNo, fields[0])
			}
			exp.Types[fields[0]] = fields[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal and ignored
		}
		m, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		if familyOf(m.Name, exp.Types) == "" {
			return nil, fmt.Errorf("obs: line %d: sample %q has no TYPE declaration", lineNo, m.Name)
		}
		exp.Samples = append(exp.Samples, m)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(exp.Samples) == 0 {
		return nil, fmt.Errorf("obs: exposition contains no samples")
	}
	return exp, nil
}

// familyOf resolves a sample name to its declared family, accepting the
// histogram sample suffixes.
func familyOf(name string, types map[string]string) string {
	if _, ok := types[name]; ok {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if t, ok := types[base]; ok && (t == typeHistogram || t == "summary") {
				return base
			}
		}
	}
	return ""
}

// parseSample parses `name{k="v",...} value` or `name value`.
func parseSample(line string) (ExpositionMetric, error) {
	m := ExpositionMetric{Labels: make(map[string]string)}
	rest := line
	brace := strings.IndexByte(line, '{')
	if brace >= 0 {
		m.Name = line[:brace]
		// The matching close brace must be found with quote awareness, not
		// LastIndexByte: an exemplar suffix carries its own label set whose
		// '}' would otherwise swallow the sample value.
		end := closingBrace(line, brace)
		if end < 0 {
			return m, fmt.Errorf("unbalanced label braces in %q", line)
		}
		if err := parseLabels(line[brace+1:end], m.Labels); err != nil {
			return m, err
		}
		rest = strings.TrimSpace(line[end+1:])
	} else {
		var ok bool
		m.Name, rest, ok = strings.Cut(line, " ")
		if !ok {
			return m, fmt.Errorf("sample line %q has no value", line)
		}
		rest = strings.TrimSpace(rest)
	}
	if !validMetricName(m.Name) {
		return m, fmt.Errorf("invalid metric name %q", m.Name)
	}
	// Split off an OpenMetrics exemplar (` # {...} value [ts]`) before
	// validating the sample tokens.
	samplePart, exPart, hasEx := strings.Cut(rest, " # ")
	fields := strings.Fields(samplePart)
	if len(fields) == 0 || len(fields) > 2 {
		return m, fmt.Errorf("sample %q wants `value [timestamp]`, got %q", m.Name, samplePart)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return m, fmt.Errorf("non-numeric sample value %q", fields[0])
	}
	m.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			return m, fmt.Errorf("non-numeric sample timestamp %q", fields[1])
		}
	}
	if hasEx {
		ex, err := parseExemplar(strings.TrimSpace(exPart))
		if err != nil {
			return m, fmt.Errorf("sample %q: %w", m.Name, err)
		}
		m.Exemplar = ex
	}
	return m, nil
}

// closingBrace returns the index of the '}' matching the '{' at open,
// skipping quoted label values (where '}' and escaped quotes are legal),
// or -1 when unterminated.
func closingBrace(s string, open int) int {
	inQuote := false
	for i := open + 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++ // skip the escaped byte
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i
			}
		}
	}
	return -1
}

// parseExemplar validates `{k="v",...} value [timestamp]` — the
// OpenMetrics exemplar grammar after the `# ` marker.
func parseExemplar(s string) (*ExemplarData, error) {
	if s == "" || s[0] != '{' {
		return nil, fmt.Errorf("exemplar %q does not start with a label set", s)
	}
	end := strings.IndexByte(s, '}')
	if end < 0 {
		return nil, fmt.Errorf("exemplar %q has an unterminated label set", s)
	}
	ex := &ExemplarData{Labels: make(map[string]string)}
	if err := parseLabels(s[1:end], ex.Labels); err != nil {
		return nil, fmt.Errorf("exemplar labels: %w", err)
	}
	fields := strings.Fields(s[end+1:])
	if len(fields) == 0 || len(fields) > 2 {
		return nil, fmt.Errorf("exemplar %q wants `value [timestamp]` after the labels", s)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return nil, fmt.Errorf("non-numeric exemplar value %q", fields[0])
	}
	ex.Value = v
	if len(fields) == 2 {
		ts, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("non-numeric exemplar timestamp %q", fields[1])
		}
		ex.TS, ex.HasTS = ts, true
	}
	return ex, nil
}

// parseLabels parses `k1="v1",k2="v2"` into dst.
func parseLabels(s string, dst map[string]string) error {
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("label pair %q missing '='", s)
		}
		name := s[:eq]
		if !validLabelName(name) {
			return fmt.Errorf("invalid label name %q", name)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("label %q value is not quoted", name)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[i])
				}
				continue
			}
			if c == '"' {
				closed = true
				s = s[i+1:]
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return fmt.Errorf("label %q value is not terminated", name)
		}
		if _, dup := dst[name]; dup {
			return fmt.Errorf("duplicate label %q", name)
		}
		dst[name] = val.String()
		s = strings.TrimPrefix(s, ",")
	}
	return nil
}

// CheckHistograms validates every declared histogram family's bucket
// structure: each series (label set minus le) must carry a terminal +Inf
// bucket, its cumulative counts must be non-decreasing in ascending le
// order, the +Inf count must equal the series' _count sample, and any
// bucket exemplar must carry a value within the bucket's bound. This is
// the malformed-exposition gate cmd/obscheck fails CI on.
func (e *Exposition) CheckHistograms() error {
	type bucket struct {
		le  float64
		val float64
		ex  *ExemplarData
	}
	series := make(map[string][]bucket) // family + label sig -> buckets
	counts := make(map[string]float64)  // family + label sig -> _count
	hasCount := make(map[string]bool)
	for _, s := range e.Samples {
		base := strings.TrimSuffix(s.Name, "_bucket")
		if base != s.Name && e.Types[base] == typeHistogram {
			leStr, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("obs: %s sample without an le label", s.Name)
			}
			var le float64
			if leStr == "+Inf" {
				le = math.Inf(1)
			} else {
				v, err := strconv.ParseFloat(leStr, 64)
				if err != nil {
					return fmt.Errorf("obs: %s has non-numeric le %q", s.Name, leStr)
				}
				le = v
			}
			key := base + "\x00" + sigWithoutLE(s.Labels)
			series[key] = append(series[key], bucket{le: le, val: s.Value, ex: s.Exemplar})
			continue
		}
		base = strings.TrimSuffix(s.Name, "_count")
		if base != s.Name && e.Types[base] == typeHistogram {
			key := base + "\x00" + sigWithoutLE(s.Labels)
			counts[key] = s.Value
			hasCount[key] = true
		}
	}
	for key, bs := range series {
		name, _, _ := strings.Cut(key, "\x00")
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		if len(bs) == 0 || !math.IsInf(bs[len(bs)-1].le, 1) {
			return fmt.Errorf("obs: histogram %s is missing its terminal +Inf bucket", name)
		}
		prev := -1.0
		prevLE := math.Inf(-1)
		for _, b := range bs {
			if b.val < prev {
				return fmt.Errorf("obs: histogram %s bucket le=%g count %g below previous bucket's %g (not cumulative)",
					name, b.le, b.val, prev)
			}
			if b.ex != nil {
				if _, ok := b.ex.Labels["trace_id"]; !ok {
					return fmt.Errorf("obs: histogram %s bucket le=%g exemplar carries no trace_id label", name, b.le)
				}
				if b.ex.Value > b.le || b.ex.Value <= prevLE {
					return fmt.Errorf("obs: histogram %s bucket le=%g exemplar value %g outside (%g, %g]",
						name, b.le, b.ex.Value, prevLE, b.le)
				}
			}
			prev = b.val
			prevLE = b.le
		}
		if hasCount[key] && bs[len(bs)-1].val != counts[key] {
			return fmt.Errorf("obs: histogram %s +Inf bucket %g != _count %g",
				name, bs[len(bs)-1].val, counts[key])
		}
	}
	return nil
}

// sigWithoutLE renders a sample's labels minus le as a stable series key.
func sigWithoutLE(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
		b.WriteByte(';')
	}
	return b.String()
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	return validMetricName(s)
}
