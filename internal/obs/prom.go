package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): families in name order, each with HELP and TYPE
// lines, series in label order, histograms with cumulative le buckets plus
// _sum and _count. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		f.mu.Lock()
		fn := f.fn
		f.mu.Unlock()
		if fn != nil {
			fmt.Fprintf(bw, "%s %s\n", f.name, formatValue(fn()))
			continue
		}
		if len(f.labels) == 0 {
			c := f.childFor(nil)
			switch f.typ {
			case typeCounter:
				fmt.Fprintf(bw, "%s %d\n", f.name, c.counter.Value())
			case typeGauge:
				fmt.Fprintf(bw, "%s %d\n", f.name, c.gauge.Value())
			case typeHistogram:
				writeHistogram(bw, f.name, "", c.hist)
			}
			continue
		}
		for _, c := range f.sortedChildren() {
			sig := labelSig(f.labels, c.labelVals)
			switch f.typ {
			case typeCounter:
				fmt.Fprintf(bw, "%s{%s} %d\n", f.name, sig, c.counter.Value())
			case typeGauge:
				fmt.Fprintf(bw, "%s{%s} %d\n", f.name, sig, c.gauge.Value())
			case typeHistogram:
				writeHistogram(bw, f.name, sig, c.hist)
			}
		}
	}
	return bw.Flush()
}

// WriteOpenMetrics renders the registry in the OpenMetrics-flavored text
// format: the same families and sample lines as WritePrometheus, plus
// per-bucket exemplars (`# {trace_id="..."} value timestamp`) linking
// histogram buckets to retained traces, and the terminating `# EOF`.
// Served on /metrics content negotiation; the default exposition stays
// byte-identical to the pre-exemplar format.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		f.mu.Lock()
		fn := f.fn
		f.mu.Unlock()
		if fn != nil {
			fmt.Fprintf(bw, "%s %s\n", f.name, formatValue(fn()))
			continue
		}
		if len(f.labels) == 0 {
			c := f.childFor(nil)
			switch f.typ {
			case typeCounter:
				fmt.Fprintf(bw, "%s %d\n", f.name, c.counter.Value())
			case typeGauge:
				fmt.Fprintf(bw, "%s %d\n", f.name, c.gauge.Value())
			case typeHistogram:
				writeHistogramExemplars(bw, f.name, "", c.hist)
			}
			continue
		}
		for _, c := range f.sortedChildren() {
			sig := labelSig(f.labels, c.labelVals)
			switch f.typ {
			case typeCounter:
				fmt.Fprintf(bw, "%s{%s} %d\n", f.name, sig, c.counter.Value())
			case typeGauge:
				fmt.Fprintf(bw, "%s{%s} %d\n", f.name, sig, c.gauge.Value())
			case typeHistogram:
				writeHistogramExemplars(bw, f.name, sig, c.hist)
			}
		}
	}
	fmt.Fprintln(bw, "# EOF")
	return bw.Flush()
}

// writeHistogramExemplars is writeHistogram with each bucket line carrying
// its exemplar, when one was pinned.
func writeHistogramExemplars(w io.Writer, name, extraSig string, h *Histogram) {
	ex := h.exemplars()
	cum := h.cumulative()
	exSuffix := func(i int) string {
		if i >= len(ex) || ex[i].Trace == 0 {
			return ""
		}
		return fmt.Sprintf(" # {trace_id=\"%s\"} %s %.3f",
			ex[i].Trace, formatValue(ex[i].Value), float64(ex[i].TimeNS)/1e9)
	}
	for i, b := range h.bounds {
		sig := `le="` + formatValue(b) + `"`
		if extraSig != "" {
			sig = extraSig + "," + sig
		}
		fmt.Fprintf(w, "%s_bucket{%s} %d%s\n", name, sig, cum[i], exSuffix(i))
	}
	sig := `le="+Inf"`
	if extraSig != "" {
		sig = extraSig + "," + sig
	}
	fmt.Fprintf(w, "%s_bucket{%s} %d%s\n", name, sig, h.Count(), exSuffix(len(h.bounds)))
	suffix := ""
	if extraSig != "" {
		suffix = "{" + extraSig + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, suffix, formatValue(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, h.Count())
}

// writeHistogram emits the bucket/sum/count triplet of one histogram
// series. extraSig carries the series' label signature ("" when none).
func writeHistogram(w io.Writer, name, extraSig string, h *Histogram) {
	cum := h.cumulative()
	for i, b := range h.bounds {
		sig := `le="` + formatValue(b) + `"`
		if extraSig != "" {
			sig = extraSig + "," + sig
		}
		fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, sig, cum[i])
	}
	sig := `le="+Inf"`
	if extraSig != "" {
		sig = extraSig + "," + sig
	}
	fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, sig, h.Count())
	suffix := ""
	if extraSig != "" {
		suffix = "{" + extraSig + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, suffix, formatValue(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, h.Count())
}

// labelSig renders `k1="v1",k2="v2"` with label-value escaping.
func labelSig(names, vals []string) string {
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a float the way Prometheus clients do: integral
// values without an exponent, everything else in shortest form.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
