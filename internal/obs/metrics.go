// Package obs is XRefine's observability layer: a dependency-free metrics
// registry (counters, gauges, fixed-bucket histograms, with optional label
// dimensions) plus a lightweight per-query span tracer and a slow-query
// ring buffer. Everything is stdlib-only and safe for concurrent use.
//
// The registry follows the Prometheus data model — metric families with a
// name, HELP text, a TYPE, and zero or more label dimensions — and renders
// itself in the Prometheus text exposition format (WritePrometheus) and as
// JSON (Snapshot). Registration is idempotent: asking for an
// already-registered family returns the existing one, so independent
// components can share a registry without coordinating construction order.
//
// The hot-path cost model is the design constraint: incrementing a
// pre-resolved *Counter is one atomic add, observing a *Histogram is one
// atomic add per bucket boundary crossed plus a CAS on the sum, and every
// metric method is nil-receiver safe, so a disabled registry (see
// Disabled) makes all instrumentation collapse to a nil check.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Metric family types as exposed on the TYPE line.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// Registry holds metric families by name. The zero value is NOT usable;
// construct with NewRegistry. A nil *Registry is valid everywhere and
// disables every metric it is asked for (see Disabled).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	// flight is the lazily-created always-on event ring (see flight.go);
	// it lives on the registry so every component sharing the registry
	// shares one recorder.
	flight *FlightRecorder
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry { return &Registry{families: make(map[string]*family)} }

// Disabled returns the disabled registry: every Counter/Gauge/Histogram
// request yields a nil metric whose methods no-op. It exists so a caller
// can build an uninstrumented engine for overhead comparisons.
func Disabled() *Registry { return nil }

// family is one registered metric family.
type family struct {
	name   string
	help   string
	typ    string
	labels []string // label names; empty for unlabeled families

	mu       sync.Mutex
	children map[string]*child // keyed by joined label values
	buckets  []float64         // histogram families only
	fn       func() float64    // counterFunc/gaugeFunc families only
}

// child is one (label-value tuple) series of a family.
type child struct {
	labelVals []string
	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
}

// register returns the family for name, creating it on first use. The
// help/type/labels of later registrations must match the first; a
// mismatch panics, because two components disagreeing on a metric's
// meaning is a programming error no fallback can paper over.
func (r *Registry) register(name, help, typ string, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s%v, was %s%v",
				name, typ, labels, f.typ, f.labels))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %q re-registered with labels %v, was %v",
					name, labels, f.labels))
			}
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		typ:      typ,
		labels:   append([]string(nil), labels...),
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

// childFor returns the series of the given label values, creating it on
// first use.
func (f *family) childFor(vals []string) *child {
	key := strings.Join(vals, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := &child{labelVals: append([]string(nil), vals...)}
	switch f.typ {
	case typeCounter:
		c.counter = &Counter{}
	case typeGauge:
		c.gauge = &Gauge{}
	case typeHistogram:
		c.hist = newHistogram(f.buckets)
	}
	f.children[key] = c
	return c
}

// Counter registers (or finds) an unlabeled counter family and returns
// its single series. Nil registries return a nil counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, typeCounter, nil).childFor(nil).counter
}

// Gauge registers (or finds) an unlabeled gauge family and returns its
// single series.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, typeGauge, nil).childFor(nil).gauge
}

// Histogram registers (or finds) an unlabeled histogram family with the
// given bucket upper bounds (ascending; +Inf is implicit) and returns its
// single series. Nil buckets use DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	f := r.register(name, help, typeHistogram, nil)
	f.mu.Lock()
	if f.buckets == nil {
		if buckets == nil {
			buckets = DefBuckets
		}
		f.buckets = append([]float64(nil), buckets...)
	}
	f.mu.Unlock()
	return f.childFor(nil).hist
}

// CounterVec registers (or finds) a counter family with label dimensions.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.register(name, help, typeCounter, labels)}
}

// GaugeVec registers (or finds) a gauge family with label dimensions.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.register(name, help, typeGauge, labels)}
}

// HistogramVec registers (or finds) a histogram family with label
// dimensions and the given bucket bounds (nil uses DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	f := r.register(name, help, typeHistogram, labels)
	f.mu.Lock()
	if f.buckets == nil {
		if buckets == nil {
			buckets = DefBuckets
		}
		f.buckets = append([]float64(nil), buckets...)
	}
	f.mu.Unlock()
	return &HistogramVec{f: f}
}

// CounterFunc registers a counter family whose value is read from fn at
// exposition time — the bridge for components that keep their own atomic
// counters (kvstore, index) and must stay free of obs imports.
// Re-registering an existing name replaces the function, so rebuilt
// components (a reopened store) keep reporting.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.register(name, help, typeCounter, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// GaugeFunc is CounterFunc with gauge semantics.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.register(name, help, typeGauge, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// Counter is a monotonically increasing uint64. All methods are nil-safe.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n (n < 0 is ignored).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(uint64(n))
}

// Inc increments the counter by one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Value returns the current count (0 for nil counters).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64. All methods are nil-safe.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (negative deltas decrement).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current gauge value (0 for nil gauges).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefBuckets are latency buckets in seconds, covering sub-millisecond
// partition walks through multi-second degraded scans.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram: cumulative bucket counts, a
// total count, and a sum. All methods are nil-safe; the Observe path is
// lock-free, and the exemplar slots (one per bucket, written only for
// sampled requests) take a short mutex off the hot path.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // one per bound; +Inf is the total count
	count   atomic.Uint64
	sumBits atomic.Uint64 // math.Float64bits of the running sum

	exMu sync.Mutex
	ex   []Exemplar // lazily sized len(bounds)+1; zero TraceID = empty slot
}

// Exemplar links one histogram bucket to a retained trace: the observed
// value and the trace ID resolvable at /debug/trace/<id>. The OpenMetrics
// exposition (WriteOpenMetrics) renders it on the bucket's sample line.
type Exemplar struct {
	Value  float64
	Trace  TraceID
	TimeNS int64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// bucketIndex returns the bucket slot v lands in; len(bounds) is +Inf.
func (h *Histogram) bucketIndex(v float64) int {
	for i, b := range h.bounds {
		if v <= b {
			return i
		}
	}
	return len(h.bounds)
}

// ObserveExemplar records one value and pins it as the bucket's exemplar,
// linking the bucket to a retained trace. Only sampled-and-retained
// requests call this — everything else takes the lock-free Observe — so
// the mutex and the lazy slot allocation never touch the hot path.
func (h *Histogram) ObserveExemplar(v float64, trace TraceID, now time.Time) {
	if h == nil {
		return
	}
	h.Observe(v)
	if trace == 0 {
		return
	}
	h.exMu.Lock()
	if h.ex == nil {
		h.ex = make([]Exemplar, len(h.bounds)+1)
	}
	h.ex[h.bucketIndex(v)] = Exemplar{Value: v, Trace: trace, TimeNS: now.UnixNano()}
	h.exMu.Unlock()
}

// exemplars snapshots the per-bucket exemplar slots (nil when none were
// ever recorded).
func (h *Histogram) exemplars() []Exemplar {
	h.exMu.Lock()
	defer h.exMu.Unlock()
	if h.ex == nil {
		return nil
	}
	return append([]Exemplar(nil), h.ex...)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// cumulative returns the cumulative per-bucket counts (Prometheus bucket
// semantics: each bucket includes everything below it).
func (h *Histogram) cumulative() []uint64 {
	out := make([]uint64, len(h.bounds))
	var acc uint64
	for i := range h.counts {
		acc += h.counts[i].Load()
		out[i] = acc
	}
	return out
}

// CounterVec is a counter family with label dimensions. All methods are
// nil-safe.
type CounterVec struct{ f *family }

// With returns the counter series for the given label values (one value
// per registered label name, in order).
func (v *CounterVec) With(vals ...string) *Counter {
	if v == nil {
		return nil
	}
	if len(vals) != len(v.f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			v.f.name, len(v.f.labels), len(vals)))
	}
	return v.f.childFor(vals).counter
}

// Sum returns the total across every series of the family — the
// "ignore the labels" read used by backward-compatible snapshots.
func (v *CounterVec) Sum() uint64 {
	if v == nil {
		return 0
	}
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	var n uint64
	for _, c := range v.f.children {
		n += c.counter.Value()
	}
	return n
}

// GaugeVec is a gauge family with label dimensions. All methods are
// nil-safe.
type GaugeVec struct{ f *family }

// With returns the gauge series for the given label values.
func (v *GaugeVec) With(vals ...string) *Gauge {
	if v == nil {
		return nil
	}
	if len(vals) != len(v.f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			v.f.name, len(v.f.labels), len(vals)))
	}
	return v.f.childFor(vals).gauge
}

// HistogramVec is a histogram family with label dimensions. All methods
// are nil-safe.
type HistogramVec struct{ f *family }

// With returns the histogram series for the given label values.
func (v *HistogramVec) With(vals ...string) *Histogram {
	if v == nil {
		return nil
	}
	if len(vals) != len(v.f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			v.f.name, len(v.f.labels), len(vals)))
	}
	return v.f.childFor(vals).hist
}

// sortedFamilies returns families in name order (stable exposition).
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedChildren returns a family's series in label-value order.
func (f *family) sortedChildren() []*child {
	f.mu.Lock()
	cs := make([]*child, 0, len(f.children))
	for _, c := range f.children {
		cs = append(cs, c)
	}
	fn := f.fn
	f.mu.Unlock()
	if fn != nil {
		// Function-backed families expose exactly one synthetic series.
		return nil
	}
	sort.Slice(cs, func(i, j int) bool {
		return strings.Join(cs[i].labelVals, "\x00") < strings.Join(cs[j].labelVals, "\x00")
	})
	return cs
}

// Snapshot renders every metric as a JSON-friendly map: unlabeled
// counters/gauges map name -> number, labeled families map name -> one
// entry per series keyed by "k=v,..." label signature, histograms map
// name -> {count, sum}.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	if r == nil {
		return out
	}
	for _, f := range r.sortedFamilies() {
		f.mu.Lock()
		fn := f.fn
		f.mu.Unlock()
		if fn != nil {
			out[f.name] = fn()
			continue
		}
		if len(f.labels) == 0 {
			c := f.childFor(nil)
			switch f.typ {
			case typeCounter:
				out[f.name] = c.counter.Value()
			case typeGauge:
				out[f.name] = c.gauge.Value()
			case typeHistogram:
				out[f.name] = map[string]any{"count": c.hist.Count(), "sum": c.hist.Sum()}
			}
			continue
		}
		series := make(map[string]any)
		for _, c := range f.sortedChildren() {
			parts := make([]string, len(f.labels))
			for i, l := range f.labels {
				parts[i] = l + "=" + c.labelVals[i]
			}
			key := strings.Join(parts, ",")
			switch f.typ {
			case typeCounter:
				series[key] = c.counter.Value()
			case typeGauge:
				series[key] = c.gauge.Value()
			case typeHistogram:
				series[key] = map[string]any{"count": c.hist.Count(), "sum": c.hist.Sum()}
			}
		}
		out[f.name] = series
	}
	return out
}
