package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// The SLO engine turns the request stream into burn rates: for each
// objective (availability, latency) and each window (5m, 1h), the
// fraction of the error budget being consumed, normalized so 1.0 means
// "spending exactly the budget". Burn > 1 sustained over the window
// exhausts the objective's budget proportionally faster — the standard
// multi-window burn-rate alerting input. Windows are bucketed rings
// advanced on record/report, so the engine is O(buckets) memory and O(1)
// per request, with no background goroutine to leak.

// SLOOptions declares the objectives. Zero values take the defaults.
type SLOOptions struct {
	// AvailabilityObjective is the fraction of requests that must not
	// fail (5xx, including shed). Default 0.999.
	AvailabilityObjective float64
	// LatencyObjective is the fraction of requests that must finish
	// within LatencyTarget. Default 0.99.
	LatencyObjective float64
	// LatencyTarget is the latency objective's threshold. Default 250ms.
	LatencyTarget time.Duration
}

func (o SLOOptions) withDefaults() SLOOptions {
	if o.AvailabilityObjective <= 0 || o.AvailabilityObjective >= 1 {
		o.AvailabilityObjective = 0.999
	}
	if o.LatencyObjective <= 0 || o.LatencyObjective >= 1 {
		o.LatencyObjective = 0.99
	}
	if o.LatencyTarget <= 0 {
		o.LatencyTarget = 250 * time.Millisecond
	}
	return o
}

// sloBucket is one time slice of a burn window.
type sloBucket struct {
	total    uint64
	badAvail uint64
	badLat   uint64
}

// burnWindow is one bucketed ring: width = bucketDur × len(buckets).
type burnWindow struct {
	name      string
	bucketDur time.Duration
	buckets   []sloBucket
	lastIdx   int64 // absolute bucket index the cursor sits on
}

func newBurnWindow(name string, bucketDur time.Duration, n int) *burnWindow {
	return &burnWindow{name: name, bucketDur: bucketDur, buckets: make([]sloBucket, n)}
}

// advance zeroes buckets between the cursor and now's bucket. Caller
// holds the SLO mutex.
func (w *burnWindow) advance(now time.Time) int64 {
	idx := now.UnixNano() / int64(w.bucketDur)
	if w.lastIdx == 0 {
		w.lastIdx = idx
	}
	for w.lastIdx < idx {
		w.lastIdx++
		w.buckets[w.lastIdx%int64(len(w.buckets))] = sloBucket{}
	}
	return idx
}

// SLO accumulates request outcomes into multi-window burn-rate rings.
// All methods are nil-safe.
type SLO struct {
	opts SLOOptions

	mu   sync.Mutex
	wins []*burnWindow
}

// NewSLO builds the engine with the standard 5m (30 × 10s buckets) and
// 1h (60 × 1m buckets) windows.
func NewSLO(opts SLOOptions) *SLO {
	return &SLO{
		opts: opts.withDefaults(),
		wins: []*burnWindow{
			newBurnWindow("5m", 10*time.Second, 30),
			newBurnWindow("1h", time.Minute, 60),
		},
	}
}

// Options returns the effective (defaulted) objectives.
func (s *SLO) Options() SLOOptions {
	if s == nil {
		return SLOOptions{}.withDefaults()
	}
	return s.opts
}

// Record accounts one finished request: ok is the availability outcome
// (false for 5xx and shed), latency the wall time measured against the
// latency objective.
func (s *SLO) Record(now time.Time, ok bool, latency time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for _, w := range s.wins {
		idx := w.advance(now)
		b := &w.buckets[idx%int64(len(w.buckets))]
		b.total++
		if !ok {
			b.badAvail++
		}
		if latency > s.opts.LatencyTarget {
			b.badLat++
		}
	}
	s.mu.Unlock()
}

// SLOWindow is one window's burn-rate summary.
type SLOWindow struct {
	Window          string `json:"window"`
	Requests        uint64 `json:"requests"`
	BadAvailability uint64 `json:"bad_availability"`
	BadLatency      uint64 `json:"bad_latency"`
	// Burn rates: (bad fraction) / (1 - objective). 1.0 = consuming the
	// error budget exactly at the sustainable rate; 0 when idle.
	AvailabilityBurn float64 `json:"availability_burn"`
	LatencyBurn      float64 `json:"latency_burn"`
}

// SLOReport is the full burn-rate snapshot, as served on /healthz under
// "slo" and rendered by `xrefine slo` / `xstat -slo`.
type SLOReport struct {
	AvailabilityObjective float64     `json:"availability_objective"`
	LatencyObjective      float64     `json:"latency_objective"`
	LatencyTargetMS       float64     `json:"latency_target_ms"`
	Windows               []SLOWindow `json:"windows"`
}

// Report snapshots every window's burn rates as of now.
func (s *SLO) Report(now time.Time) SLOReport {
	if s == nil {
		return SLOReport{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := SLOReport{
		AvailabilityObjective: s.opts.AvailabilityObjective,
		LatencyObjective:      s.opts.LatencyObjective,
		LatencyTargetMS:       float64(s.opts.LatencyTarget) / 1e6,
	}
	for _, w := range s.wins {
		w.advance(now)
		var sum sloBucket
		for _, b := range w.buckets {
			sum.total += b.total
			sum.badAvail += b.badAvail
			sum.badLat += b.badLat
		}
		win := SLOWindow{
			Window:          w.name,
			Requests:        sum.total,
			BadAvailability: sum.badAvail,
			BadLatency:      sum.badLat,
		}
		if sum.total > 0 {
			win.AvailabilityBurn = (float64(sum.badAvail) / float64(sum.total)) / (1 - s.opts.AvailabilityObjective)
			win.LatencyBurn = (float64(sum.badLat) / float64(sum.total)) / (1 - s.opts.LatencyObjective)
		}
		rep.Windows = append(rep.Windows, win)
	}
	return rep
}

// BurnRate returns one window's burn rate by name ("5m", "1h") for the
// given objective ("availability" or "latency") — the GaugeFunc bridge.
func (s *SLO) BurnRate(window, objective string) float64 {
	rep := s.Report(time.Now())
	for _, w := range rep.Windows {
		if w.Window != window {
			continue
		}
		if objective == "latency" {
			return w.LatencyBurn
		}
		return w.AvailabilityBurn
	}
	return 0
}

// WriteSLOReport pretty-prints a report for terminals — the shared
// renderer behind `xrefine slo` and `xstat -slo`.
func WriteSLOReport(w io.Writer, r SLOReport) {
	fmt.Fprintf(w, "objectives: availability %.4g, latency %.4g within %gms\n",
		r.AvailabilityObjective, r.LatencyObjective, r.LatencyTargetMS)
	fmt.Fprintf(w, "%-8s %10s %12s %12s %12s %12s\n",
		"window", "requests", "bad-avail", "bad-latency", "avail-burn", "lat-burn")
	for _, win := range r.Windows {
		fmt.Fprintf(w, "%-8s %10d %12d %12d %12.3f %12.3f\n",
			win.Window, win.Requests, win.BadAvailability, win.BadLatency,
			win.AvailabilityBurn, win.LatencyBurn)
	}
}
