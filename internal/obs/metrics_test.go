package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_inflight", "inflight")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_total", "help")
	b := r.Counter("test_total", "other help ignored")
	if a != b {
		t.Fatal("re-registering a counter returned a different series")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("series not shared across registrations")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("test_total", "help")
}

func TestDisabledRegistryNoops(t *testing.T) {
	r := Disabled()
	c := r.Counter("x_total", "")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Error("disabled counter accumulated")
	}
	r.Gauge("g", "").Set(9)
	r.Histogram("h", "", nil).Observe(1)
	r.CounterVec("v_total", "", "l").With("a").Inc()
	r.CounterFunc("f_total", "", func() float64 { return 1 })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("nil registry write: %v", err)
	}
	if len(r.Snapshot()) != 0 {
		t.Error("disabled registry produced a snapshot")
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_requests_total", "reqs", "route", "code")
	v.With("/search", "200").Add(3)
	v.With("/search", "500").Inc()
	v.With("/narrow", "200").Inc()
	if got := v.Sum(); got != 5 {
		t.Errorf("Sum = %d, want 5", got)
	}
	if got := v.With("/search", "200").Value(); got != 3 {
		t.Errorf("series = %d, want 3", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "lat", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 56.05; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("sum = %v, want %v", got, want)
	}
	cum := h.cumulative()
	for i, want := range []uint64{1, 3, 4} {
		if cum[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, cum[i], want)
		}
	}
}

// TestExpositionRoundTrip: whatever the writer emits, the in-tree parser
// must accept, with families and label values intact.
func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_ops_total", "operations performed").Add(12)
	r.Gauge("app_inflight", "in-flight requests").Set(2)
	r.Histogram("app_seconds", "latency", []float64{0.01, 0.1}).Observe(0.05)
	r.CounterVec("app_requests_total", "by route", "route", "code").With("/search", "200").Inc()
	r.CounterFunc("app_pages_total", "pager reads", func() float64 { return 41 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	exp, err := ParsePrometheus(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parser rejected our own exposition:\n%s\nerr: %v", b.String(), err)
	}
	fams := exp.Families()
	want := []string{"app_inflight", "app_ops_total", "app_pages_total", "app_requests_total", "app_seconds"}
	got := make(map[string]bool)
	for _, f := range fams {
		got[f] = true
	}
	for _, f := range want {
		if !got[f] {
			t.Errorf("family %q missing from exposition", f)
		}
	}
	for _, s := range exp.Samples {
		if s.Name == "app_requests_total" {
			if s.Labels["route"] != "/search" || s.Labels["code"] != "200" {
				t.Errorf("labels = %v", s.Labels)
			}
			if s.Value != 1 {
				t.Errorf("labeled value = %v", s.Value)
			}
		}
		if s.Name == "app_pages_total" && s.Value != 41 {
			t.Errorf("counterfunc value = %v, want 41", s.Value)
		}
	}
}

func TestParserRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no TYPE":          "some_metric 3\n",
		"bad name":         "# TYPE 9bad counter\n9bad 3\n",
		"bad value":        "# TYPE m counter\nm notanumber\n",
		"unbalanced brace": "# TYPE m counter\nm{a=\"b\" 3\n",
		"unquoted label":   "# TYPE m counter\nm{a=b} 3\n",
		"unknown type":     "# TYPE m sparkline\nm 3\n",
		"duplicate TYPE":   "# TYPE m counter\n# TYPE m counter\nm 3\n",
		"empty":            "",
	}
	for name, body := range cases {
		if _, err := ParsePrometheus(strings.NewReader(body)); err == nil {
			t.Errorf("%s: parser accepted %q", name, body)
		}
	}
}

func TestSnapshotJSONShapes(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(3)
	r.CounterVec("v_total", "", "reason").With("deadline").Add(2)
	r.Histogram("h_seconds", "", nil).Observe(0.2)
	snap := r.Snapshot()
	if snap["c_total"] != uint64(3) {
		t.Errorf("c_total = %v", snap["c_total"])
	}
	series, ok := snap["v_total"].(map[string]any)
	if !ok || series["reason=deadline"] != uint64(2) {
		t.Errorf("v_total = %v", snap["v_total"])
	}
	hist, ok := snap["h_seconds"].(map[string]any)
	if !ok || hist["count"] != uint64(1) {
		t.Errorf("h_seconds = %v", snap["h_seconds"])
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines —
// run under -race this is the registry half of the concurrency satellite.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers, iters = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("conc_total", "")
			v := r.CounterVec("conc_vec_total", "", "w")
			h := r.Histogram("conc_seconds", "", nil)
			g := r.Gauge("conc_gauge", "")
			for i := 0; i < iters; i++ {
				c.Inc()
				v.With(string(rune('a' + w%4))).Inc()
				h.Observe(float64(i) / 1000)
				g.Add(1)
				if i%100 == 0 {
					var b strings.Builder
					if err := r.WritePrometheus(&b); err != nil {
						t.Error(err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("conc_total", "").Value(); got != workers*iters {
		t.Errorf("conc_total = %d, want %d", got, workers*iters)
	}
	if got := r.CounterVec("conc_vec_total", "", "w").Sum(); got != workers*iters {
		t.Errorf("vec sum = %d, want %d", got, workers*iters)
	}
	if got := r.Histogram("conc_seconds", "", nil).Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
}
