package obs

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Per-query tracing. A trace is a tree of spans — one per pipeline stage —
// carried through the query via context.Context. Tracing is strictly
// opt-in per query: with no trace in the context, StartSpan returns the
// context unchanged and a nil *Span whose every method no-ops, so the
// untraced hot path pays one context value lookup per stage and nothing
// else. Spans come from a sync.Pool and return to it on Trace.Release, so
// a traced steady-state server does not allocate a fresh tree per query.
//
// Concurrency: one span may receive attribute updates and child starts
// from several goroutines (the parallel partition workers), so span
// mutation takes a per-span mutex. That cost exists only on traced
// queries.

type spanKey struct{}

// Span is one timed stage of a query. The zero value is not used;
// obtain spans from NewTrace/StartSpan. A nil *Span is valid everywhere.
type Span struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	duration time.Duration
	attrs    []SpanAttr
	children []*Span
}

// SpanAttr is one key/value annotation on a span. Exactly one of Int/Str
// is meaningful, per IsStr.
type SpanAttr struct {
	Key   string
	Int   int64
	Str   string
	IsStr bool
}

var spanPool = sync.Pool{New: func() any { return new(Span) }}

func newSpan(name string) *Span {
	s := spanPool.Get().(*Span)
	s.name = name
	s.start = time.Now()
	s.duration = 0
	s.attrs = s.attrs[:0]
	s.children = s.children[:0]
	return s
}

// NewTrace arms tracing on ctx: it returns a derived context carrying a
// fresh root span named name, plus the root. The caller must End the root
// and, once the tree has been rendered (Data), should Release it.
func NewTrace(ctx context.Context, name string) (context.Context, *Span) {
	root := newSpan(name)
	return context.WithValue(ctx, spanKey{}, root), root
}

// StartSpan begins a child span of the span carried by ctx. When ctx
// carries no trace it returns ctx unchanged and a nil span — the entire
// no-trace cost of an instrumented stage.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	s := parent.StartChild(name)
	return context.WithValue(ctx, spanKey{}, s), s
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartChild begins a child span directly on s — the hook for code that
// threads spans explicitly (the refine algorithms) rather than through a
// context. Nil-safe: a nil parent returns a nil child.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End stamps the span's duration. Ending twice keeps the first stamp.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.duration == 0 {
		s.duration = time.Since(s.start)
	}
	s.mu.Unlock()
}

// SetInt sets an integer attribute, overwriting any previous value.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Int, s.attrs[i].IsStr = v, false
			return
		}
	}
	s.attrs = append(s.attrs, SpanAttr{Key: key, Int: v})
}

// AddInt accumulates into an integer attribute — safe from concurrent
// goroutines, which is how the parallel workers aggregate shared-stage
// totals (e.g. SLCA nanoseconds) onto one span.
func (s *Span) AddInt(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Int += v
			return
		}
	}
	s.attrs = append(s.attrs, SpanAttr{Key: key, Int: v})
}

// SetStr sets a string attribute, overwriting any previous value.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Str, s.attrs[i].IsStr = v, true
			return
		}
	}
	s.attrs = append(s.attrs, SpanAttr{Key: key, Str: v, IsStr: true})
}

// SpanData is the immutable snapshot of a span tree — what the explain
// JSON, the pretty-printer, and the slow-query log consume. Durations are
// nanoseconds.
type SpanData struct {
	Name       string         `json:"name"`
	DurationNS int64          `json:"duration_ns"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []*SpanData    `json:"children,omitempty"`
}

// Data snapshots the span tree. Unfinished spans report their elapsed
// time so far. Attribute keys are sorted for deterministic rendering.
func (s *Span) Data() *SpanData {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	d := &SpanData{Name: s.name, DurationNS: int64(s.duration)}
	if s.duration == 0 {
		d.DurationNS = int64(time.Since(s.start))
	}
	if len(s.attrs) > 0 {
		d.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			if a.IsStr {
				d.Attrs[a.Key] = a.Str
			} else {
				d.Attrs[a.Key] = a.Int
			}
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		d.Children = append(d.Children, c.Data())
	}
	return d
}

// Release returns the span and its descendants to the pool. The caller
// must not touch the span afterwards; snapshot with Data first.
func (s *Span) Release() {
	if s == nil {
		return
	}
	s.mu.Lock()
	children := append([]*Span(nil), s.children...)
	s.children = s.children[:0]
	s.attrs = s.attrs[:0]
	s.mu.Unlock()
	for _, c := range children {
		c.Release()
	}
	spanPool.Put(s)
}

// WriteTree pretty-prints a span tree for terminals: one line per span
// with duration and attributes, children indented.
func WriteTree(w io.Writer, d *SpanData) {
	writeTreeIndent(w, d, 0)
}

func writeTreeIndent(w io.Writer, d *SpanData, depth int) {
	if d == nil {
		return
	}
	indent := strings.Repeat("  ", depth)
	fmt.Fprintf(w, "%s%-24s %10s%s\n", indent, d.Name,
		time.Duration(d.DurationNS).Round(time.Microsecond), formatAttrs(d.Attrs))
	for _, c := range d.Children {
		writeTreeIndent(w, c, depth+1)
	}
}

func formatAttrs(attrs map[string]any) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("  ")
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%v", k, attrs[k])
	}
	return b.String()
}
