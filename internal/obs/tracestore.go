package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Sampler makes the deterministic 1-in-N span-tree retention decision.
// Sampling controls only the expensive artifact — the allocated span tree
// and its retention — never the flight-recorder events, which are
// recorded for every request.
type Sampler struct {
	every uint64
	n     atomic.Uint64
}

// NewSampler samples every n-th request: n == 1 samples everything,
// n <= 0 returns nil (sampling off; a nil sampler never samples).
func NewSampler(n int) *Sampler {
	if n <= 0 {
		return nil
	}
	return &Sampler{every: uint64(n)}
}

// Sample reports whether this request should retain its span tree.
func (s *Sampler) Sample() bool {
	if s == nil {
		return false
	}
	return s.n.Add(1)%s.every == 0
}

// RetainedTrace is one sampled request's full evidence: the span tree
// plus the envelope (query, outcome, serving attribution) a debugging
// operator needs without cross-referencing. GET /debug/trace/<id>
// resolves a trace ID — scraped off an exemplar or an event dump — to
// this record.
type RetainedTrace struct {
	ID             TraceID   `json:"trace_id"`
	Time           time.Time `json:"time"`
	Query          string    `json:"query"`
	DurationNS     int64     `json:"duration_ns"`
	Degraded       bool      `json:"degraded,omitempty"`
	DegradedReason string    `json:"degraded_reason,omitempty"`
	// Shard/Replica/Hedged name the serving attempt on the request's
	// critical path; -1/-1/false on a single-engine backend.
	Shard   int       `json:"shard"`
	Replica int       `json:"replica"`
	Hedged  bool      `json:"hedged"`
	Trace   *SpanData `json:"trace,omitempty"`
}

// TraceStore retains the last capacity sampled traces, resolvable by
// trace ID. A ring bounds memory; the index map follows evictions.
type TraceStore struct {
	mu     sync.Mutex
	ring   []RetainedTrace
	byID   map[TraceID]int
	next   int
	filled bool
}

// DefaultTraceCapacity is the retention window NewTraceStore(0) uses.
const DefaultTraceCapacity = 512

// NewTraceStore builds a store retaining the last capacity traces.
// capacity <= 0 defaults to DefaultTraceCapacity.
func NewTraceStore(capacity int) *TraceStore {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &TraceStore{ring: make([]RetainedTrace, capacity), byID: make(map[TraceID]int, capacity)}
}

// Put retains one trace, evicting the oldest when full. Nil-safe.
func (ts *TraceStore) Put(rt RetainedTrace) {
	if ts == nil {
		return
	}
	ts.mu.Lock()
	if old := ts.ring[ts.next]; old.ID != 0 {
		delete(ts.byID, old.ID)
	}
	ts.ring[ts.next] = rt
	ts.byID[rt.ID] = ts.next
	ts.next++
	if ts.next == len(ts.ring) {
		ts.next = 0
		ts.filled = true
	}
	ts.mu.Unlock()
}

// Get resolves a trace ID to its retained record.
func (ts *TraceStore) Get(id TraceID) (RetainedTrace, bool) {
	if ts == nil {
		return RetainedTrace{}, false
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	i, ok := ts.byID[id]
	if !ok {
		return RetainedTrace{}, false
	}
	return ts.ring[i], true
}

// Len returns the number of traces currently retained.
func (ts *TraceStore) Len() int {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.filled {
		return len(ts.ring)
	}
	return ts.next
}

// Capacity returns the retention window size.
func (ts *TraceStore) Capacity() int {
	if ts == nil {
		return 0
	}
	return len(ts.ring)
}
