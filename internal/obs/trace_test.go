package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNoTracePathIsInert(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "stage")
	if ctx2 != ctx {
		t.Error("StartSpan without a trace derived a new context")
	}
	if sp != nil {
		t.Error("StartSpan without a trace returned a span")
	}
	// Every method must be callable on the nil span.
	sp.End()
	sp.SetInt("k", 1)
	sp.AddInt("k", 1)
	sp.SetStr("k", "v")
	if sp.Data() != nil {
		t.Error("nil span produced data")
	}
	if c := sp.StartChild("x"); c != nil {
		t.Error("nil span produced a child")
	}
	sp.Release()
}

func TestSpanTree(t *testing.T) {
	ctx, root := NewTrace(context.Background(), "query")
	ctx1, prep := StartSpan(ctx, "prepare")
	prep.SetInt("rules", 4)
	if SpanFromContext(ctx1) != prep {
		t.Error("child context does not carry the child span")
	}
	prep.End()
	_, ref := StartSpan(ctx, "refine")
	ref.AddInt("slca_ns", 100)
	ref.AddInt("slca_ns", 50)
	ref.SetStr("strategy", "partition")
	w := ref.StartChild("worker-0")
	w.End()
	ref.End()
	time.Sleep(time.Millisecond)
	root.End()

	d := root.Data()
	if d.Name != "query" || len(d.Children) != 2 {
		t.Fatalf("tree = %+v", d)
	}
	if d.Children[0].Name != "prepare" || d.Children[0].Attrs["rules"] != int64(4) {
		t.Errorf("prepare = %+v", d.Children[0])
	}
	refD := d.Children[1]
	if refD.Attrs["slca_ns"] != int64(150) || refD.Attrs["strategy"] != "partition" {
		t.Errorf("refine attrs = %v", refD.Attrs)
	}
	if len(refD.Children) != 1 || refD.Children[0].Name != "worker-0" {
		t.Errorf("refine children = %+v", refD.Children)
	}
	if d.DurationNS <= 0 {
		t.Error("root duration not stamped")
	}
	// Sequential children must fit inside the parent.
	var sum int64
	for _, c := range d.Children {
		sum += c.DurationNS
	}
	if sum > d.DurationNS {
		t.Errorf("children sum %d exceeds root %d", sum, d.DurationNS)
	}
	var b strings.Builder
	WriteTree(&b, d)
	if !strings.Contains(b.String(), "worker-0") || !strings.Contains(b.String(), "strategy=partition") {
		t.Errorf("WriteTree output:\n%s", b.String())
	}
	root.Release()
}

// TestSpanPoolReuse: a released tree's spans must come back from the pool
// fully reset.
func TestSpanPoolReuse(t *testing.T) {
	_, root := NewTrace(context.Background(), "first")
	c := root.StartChild("child")
	c.SetInt("n", 9)
	c.End()
	root.End()
	root.Release()

	_, again := NewTrace(context.Background(), "second")
	d := again.Data()
	if len(d.Children) != 0 || len(d.Attrs) != 0 {
		t.Errorf("pooled span not reset: %+v", d)
	}
	if d.Name != "second" {
		t.Errorf("name = %q", d.Name)
	}
	again.Release()
}

// TestSpanConcurrency mutates one span tree from many goroutines — the
// span half of the -race concurrency satellite.
func TestSpanConcurrency(t *testing.T) {
	_, root := NewTrace(context.Background(), "query")
	var wg sync.WaitGroup
	const workers, iters = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				root.AddInt("total", 1)
				c := root.StartChild("w")
				c.SetInt("i", int64(i))
				c.End()
				if i%50 == 0 {
					_ = root.Data()
				}
			}
		}(w)
	}
	wg.Wait()
	root.End()
	d := root.Data()
	if d.Attrs["total"] != int64(workers*iters) {
		t.Errorf("total = %v, want %d", d.Attrs["total"], workers*iters)
	}
	if len(d.Children) != workers*iters {
		t.Errorf("children = %d, want %d", len(d.Children), workers*iters)
	}
	root.Release()
}

func TestSlowLog(t *testing.T) {
	l := NewSlowLog(10*time.Millisecond, 3)
	if l.Record(SlowEntry{Query: "fast", DurationNS: int64(time.Millisecond)}) {
		t.Error("recorded an entry under the threshold")
	}
	for i, q := range []string{"a", "b", "c", "d"} {
		kept := l.Record(SlowEntry{
			Time: time.Now(), Query: q,
			DurationNS: int64(10*time.Millisecond) + int64(i),
		})
		if !kept {
			t.Errorf("entry %q not kept", q)
		}
	}
	es := l.Entries()
	if len(es) != 3 {
		t.Fatalf("len = %d, want 3 (ring capacity)", len(es))
	}
	// Newest first; "a" was overwritten.
	if es[0].Query != "d" || es[1].Query != "c" || es[2].Query != "b" {
		t.Errorf("order = %q, %q, %q", es[0].Query, es[1].Query, es[2].Query)
	}
	if l.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", l.Dropped())
	}
	if l.Len() != 3 {
		t.Errorf("len = %d", l.Len())
	}
	var nilLog *SlowLog
	if nilLog.Record(SlowEntry{}) || nilLog.Len() != 0 || nilLog.Entries() != nil {
		t.Error("nil slowlog misbehaved")
	}
}
