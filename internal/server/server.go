// Package server exposes an XRefine engine over HTTP as a small JSON API —
// the deployment surface a sponsored-search or digital-library integration
// would talk to. Handlers are plain net/http so the server embeds anywhere.
//
//	GET /search?q=online+databse&k=3&strategy=partition&parallel=4&explain=1
//	GET /narrow?q=database&max=50&k=3
//	POST /update   {"ops":[{"op":"insert","parent":"0","xml":"<paper>...</paper>"}]}
//	GET /healthz
//	GET /metrics
//	GET /debug/slowlog
//	GET /debug/pprof/   (when Config.EnablePprof)
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"time"

	"math/rand"

	"xrefine/internal/core"
	"xrefine/internal/index"
	"xrefine/internal/mutate"
	"xrefine/internal/narrow"
	"xrefine/internal/obs"
	"xrefine/internal/refine"
	"xrefine/internal/storage"
	"xrefine/internal/tokenize"
)

// Config tunes the server's protective edges. The zero value disables all
// of them, which matches the pre-hardening behavior.
type Config struct {
	// Timeout bounds each request's handling when positive: the request
	// context gets this deadline, so a query that overruns returns its
	// partial results flagged degraded (the engine's deadline semantics)
	// instead of holding the connection.
	Timeout time.Duration
	// MaxInFlight caps concurrently-handled query requests when positive.
	// Requests beyond the cap are shed immediately with 503 and a
	// Retry-After hint rather than queueing without bound. /healthz,
	// /metrics, and /debug/slowlog are exempt — probes and scrapes must
	// keep working under saturation, when they matter most.
	MaxInFlight int
	// SlowLogThreshold arms the slow-query ring log when positive: every
	// /search query is traced, and those whose wall time meets the
	// threshold deposit their span tree at GET /debug/slowlog.
	SlowLogThreshold time.Duration
	// SlowLogCapacity bounds the ring; 0 means 128 entries.
	SlowLogCapacity int
	// EnablePprof mounts net/http/pprof handlers under /debug/pprof/ on
	// the server's own mux (never the default mux), bypassing the
	// admission gate and timeout like the other debug surfaces.
	EnablePprof bool
	// TraceSampleEvery retains every n-th /search query's span tree in the
	// trace store (resolvable at GET /debug/trace/<id>) and links it from
	// the latency histograms as an OpenMetrics exemplar. 0 means the
	// default (64); negative disables sampling — explain=1 and slow
	// queries still retain their traces.
	TraceSampleEvery int
	// TraceStoreCapacity bounds the retained-trace ring; 0 means 512.
	TraceStoreCapacity int
	// SLO configures the burn-rate engine's objectives; the zero value
	// takes the defaults (99.9% availability, 99% under 250ms).
	SLO obs.SLOOptions
}

// defaultTraceSampleEvery is the 1-in-N span-tree retention rate when
// Config.TraceSampleEvery is 0.
const defaultTraceSampleEvery = 64

// statusClientClosedRequest is the de-facto code (nginx's 499) for
// "client went away before we could answer"; the response is unseen, the
// code only keeps access logs honest.
const statusClientClosedRequest = 499

// Backend is what the server serves: the query, update and introspection
// surface of one corpus. *core.Engine implements it directly; the shard
// router implements it scatter-gather across several engines. Every
// method must be safe for concurrent use.
type Backend interface {
	QueryTermsCtx(ctx context.Context, terms []string, strategy core.Strategy, k, parallelism int) (*core.Response, error)
	Narrow(q string, opts *narrow.Options) (*narrow.Outcome, error)
	Complete(partial string, k int) []string
	Apply(b *mutate.Batch) (*core.ApplyResult, error)
	Stats() core.EngineStats
	UpdateStats() core.UpdateStats
	Index() *index.Index
	// Snippet renders a match preview; ok is false when no source
	// document is available and the snippet field should be omitted.
	Snippet(m refine.Match, max int) (string, bool)
	Metrics() *obs.Registry
}

// ShardedBackend is the optional extension a multi-shard backend
// implements; /healthz surfaces the per-shard epochs when present.
type ShardedBackend interface {
	Backend
	ShardEpochs() []uint64
}

// ReplicatedBackend is the optional extension a replicated backend
// implements; /healthz surfaces the replica health table when present.
type ReplicatedBackend interface {
	Backend
	ReplicaTable() []core.ReplicaStatus
}

// StorageBackend is the optional extension a store-backed engine
// implements; /healthz surfaces the storage-engine snapshot when present.
// ok is false for purely in-memory engines.
type StorageBackend interface {
	Backend
	StoreStats() (storage.Stats, bool)
}

// Server wraps a backend with HTTP handlers. The backend is safe for
// concurrent queries; the server adds the protective edges — a
// per-request deadline, a bounded-concurrency admission gate, and panic
// containment — so one bad query cannot take the process down.
type Server struct {
	eng  Backend
	mux  *http.ServeMux
	cfg  Config
	gate chan struct{} // admission semaphore; nil when unbounded

	// All serving counters live on the engine's metrics registry — the
	// server registers its own families there so /metrics exposes one
	// coherent catalog. Handles are nil (and no-op) when the engine was
	// built with DisableMetrics.
	reg       *obs.Registry
	slowlog   *obs.SlowLog // nil unless SlowLogThreshold > 0
	mShed     *obs.Counter
	mPanics   *obs.Counter
	mReqs     *obs.CounterVec // labels: route, code
	mSeconds  *obs.Histogram
	mInflight *obs.Gauge

	// The flight-recorder surface: the registry's shared event ring (the
	// same ring the engine and shard router record into), the 1-in-N
	// span-tree sampler, the retained-trace store behind /debug/trace/,
	// and the SLO burn-rate engine fed by every finished request.
	flight  *obs.FlightRecorder
	sampler *obs.Sampler
	traces  *obs.TraceStore
	slo     *obs.SLO
	start   time.Time
}

// New builds a server around an engine with no edge protection.
func New(eng *core.Engine) *Server { return NewWithConfig(eng, Config{}) }

// NewWithConfig builds a server around an engine with the given edge
// configuration.
func NewWithConfig(eng *core.Engine, cfg Config) *Server { return NewFromBackend(eng, cfg) }

// NewFromBackend builds a server around any Backend — a single engine or
// a shard router — with the given edge configuration.
func NewFromBackend(eng Backend, cfg Config) *Server {
	s := &Server{eng: eng, mux: http.NewServeMux(), cfg: cfg, reg: eng.Metrics(), start: time.Now()}
	if cfg.MaxInFlight > 0 {
		s.gate = make(chan struct{}, cfg.MaxInFlight)
	}
	if cfg.SlowLogThreshold > 0 {
		s.slowlog = obs.NewSlowLog(cfg.SlowLogThreshold, cfg.SlowLogCapacity)
	}
	s.flight = s.reg.Flight()
	sampleEvery := cfg.TraceSampleEvery
	if sampleEvery == 0 {
		sampleEvery = defaultTraceSampleEvery
	}
	s.sampler = obs.NewSampler(sampleEvery) // nil (never samples) when negative
	s.traces = obs.NewTraceStore(cfg.TraceStoreCapacity)
	s.slo = obs.NewSLO(cfg.SLO)
	s.mShed = s.reg.Counter("xrefine_http_shed_total",
		"Requests rejected by the admission gate.")
	s.mPanics = s.reg.Counter("xrefine_http_panics_total",
		"Handler panics contained.")
	s.mReqs = s.reg.CounterVec("xrefine_http_requests_total",
		"HTTP requests served, by route and status code.", "route", "code")
	s.mSeconds = s.reg.Histogram("xrefine_http_request_seconds",
		"HTTP request latency in seconds (query routes only).", obs.DefBuckets)
	s.mInflight = s.reg.Gauge("xrefine_http_inflight",
		"Query requests currently being handled.")
	s.reg.GaugeVec("xrefine_build_info",
		"Build identity; value is always 1, the labels carry the information.",
		"go_version", "index_format").With(runtime.Version(), index.FormatVersion).Set(1)
	s.reg.GaugeFunc("xrefine_uptime_seconds",
		"Seconds since this server was constructed.",
		func() float64 { return time.Since(s.start).Seconds() })
	// Burn rates as gauges, one family per window×objective (func-backed
	// families are unlabeled): how fast the error budget is being spent,
	// normalized so 1.0 consumes it exactly at the sustainable rate.
	s.reg.GaugeFunc("xrefine_slo_availability_burn_5m",
		"Availability error-budget burn rate over the trailing 5 minutes.",
		func() float64 { return s.slo.BurnRate("5m", "availability") })
	s.reg.GaugeFunc("xrefine_slo_availability_burn_1h",
		"Availability error-budget burn rate over the trailing hour.",
		func() float64 { return s.slo.BurnRate("1h", "availability") })
	s.reg.GaugeFunc("xrefine_slo_latency_burn_5m",
		"Latency error-budget burn rate over the trailing 5 minutes.",
		func() float64 { return s.slo.BurnRate("5m", "latency") })
	s.reg.GaugeFunc("xrefine_slo_latency_burn_1h",
		"Latency error-budget burn rate over the trailing hour.",
		func() float64 { return s.slo.BurnRate("1h", "latency") })
	s.mux.HandleFunc("/search", s.observed("/search", s.guard(s.handleSearch)))
	s.mux.HandleFunc("/narrow", s.observed("/narrow", s.guard(s.handleNarrow)))
	s.mux.HandleFunc("/complete", s.observed("/complete", s.guard(s.handleComplete)))
	// Updates share the query routes' edge protection: the admission gate
	// bounds writers and readers together (a write burst must not starve
	// probes), and the deadline caps a runaway batch. Writers additionally
	// serialize on the engine's own apply lock.
	s.mux.HandleFunc("/update", s.observed("/update", s.guard(s.handleUpdate)))
	// The operational surfaces below bypass the gate and the timeout on
	// purpose: probes and scrapes must answer while the query path is
	// saturated or wedged.
	s.mux.HandleFunc("/healthz", s.recovered(s.handleHealth))
	s.mux.HandleFunc("/metrics", s.recovered(s.handleMetrics))
	s.mux.HandleFunc("/debug/slowlog", s.recovered(s.handleSlowlog))
	s.mux.HandleFunc("/debug/events", s.recovered(s.handleEvents))
	s.mux.HandleFunc("/debug/trace/", s.recovered(s.handleTrace))
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Shed returns the number of requests rejected by the admission gate.
func (s *Server) Shed() uint64 { return s.mShed.Value() }

// Panics returns the number of handler panics contained so far.
func (s *Server) Panics() uint64 { return s.mPanics.Value() }

// statusWriter captures the status code a handler wrote so the request
// counter can label it.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// observed wraps a query route with request accounting: in-flight gauge,
// latency histogram, and a per-route/per-code request counter. It is also
// the flight-recorder admission point: every request gets a trace ID here,
// carried by a ReqInfo on the context through the engine or the shard
// fan-out, and is bracketed by admit/finish events in the event ring. The
// finished request feeds the SLO engine (bad availability = 5xx, which
// includes shed; a client that hung up is not the server's fault), and a
// request whose trace was retained pins its latency onto the histogram as
// an exemplar so the bucket links back to /debug/trace/<id>.
func (s *Server) observed(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ri := obs.NewReqInfo()
		r = r.WithContext(obs.WithReqInfo(r.Context(), ri))
		s.flight.Record(obs.Event{Trace: ri.Trace, Kind: obs.EvAdmit,
			Shard: -1, Replica: -1, Note: route})
		s.mInflight.Add(1)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		s.mInflight.Add(-1)
		dur := time.Since(start)
		s.flight.Record(obs.Event{Trace: ri.Trace, Kind: obs.EvFinish,
			Shard: -1, Replica: -1, DurNS: int64(dur), N: int64(sw.code), Note: route})
		s.slo.Record(time.Now(), sw.code < http.StatusInternalServerError, dur)
		if ri.Retained() {
			s.mSeconds.ObserveExemplar(dur.Seconds(), ri.Trace, time.Now())
		} else {
			s.mSeconds.Observe(dur.Seconds())
		}
		if s.mReqs != nil {
			s.mReqs.With(route, strconv.Itoa(sw.code)).Inc()
		}
	}
}

// recovered wraps a handler with panic containment: a panicking request
// becomes a 500 for that request alone instead of killing the process.
func (s *Server) recovered(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.mPanics.Inc()
				log.Printf("server: panic in %s %s: %v", r.Method, r.URL.Path, v)
				// Headers may already be out; WriteHeader then is a
				// no-op warning, which is the best we can do.
				httpError(w, http.StatusInternalServerError, fmt.Errorf("internal error"))
			}
		}()
		h(w, r)
	}
}

// guard layers the full edge protection onto a query handler: panic
// containment, load shedding, and the per-request deadline.
func (s *Server) guard(h http.HandlerFunc) http.HandlerFunc {
	return s.recovered(func(w http.ResponseWriter, r *http.Request) {
		if s.gate != nil {
			select {
			case s.gate <- struct{}{}:
				defer func() { <-s.gate }()
			default:
				// Shed immediately: under overload a bounded, fast "no"
				// beats an unbounded queue of slow yeses. The Retry-After
				// hint is randomized (1–3s) so a fleet of shed clients does
				// not retry in lockstep and re-saturate the gate on the
				// same tick — the jitter half of retry-with-jitter, served
				// by the party that can see the thundering herd forming.
				s.mShed.Inc()
				w.Header().Set("Retry-After", strconv.Itoa(1+rand.Intn(3)))
				httpError(w, http.StatusServiceUnavailable, errors.New("server at capacity"))
				return
			}
		}
		if s.cfg.Timeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h(w, r)
	})
}

// ResultJSON is one match in API form.
type ResultJSON struct {
	ID      string `json:"id"`
	Type    string `json:"type"`
	Snippet string `json:"snippet,omitempty"`
}

// QueryJSON is one (refined) query in API form.
type QueryJSON struct {
	Keywords   []string     `json:"keywords"`
	DSim       float64      `json:"dsim"`
	Score      float64      `json:"score"`
	IsOriginal bool         `json:"is_original,omitempty"`
	Steps      []string     `json:"steps,omitempty"`
	Results    []ResultJSON `json:"results"`
}

// SearchJSON is the /search response body. The degraded pair is omitted
// when empty, so responses of unconstrained servers stay byte-identical to
// the pre-hardening format. The same document — byte for byte — is the
// payload of a binary-protocol query response (internal/wire), whose
// zero-copy encoder is differentially tested against this struct's
// encoding/json form.
type SearchJSON struct {
	Terms      []string    `json:"terms"`
	NeedRefine bool        `json:"need_refine"`
	SearchFor  []string    `json:"search_for,omitempty"`
	Queries    []QueryJSON `json:"queries"`
	// Degraded marks a partial answer: a deadline or posting budget
	// expired mid-query. Every result listed is genuine, but more may
	// exist.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
	// Explain is the query's span tree, present only when the request
	// asked for it with explain=1 — omitted otherwise so no-explain
	// bodies stay byte-identical to the pre-tracing format.
	Explain *obs.SpanData `json:"explain,omitempty"`
}

// SearchBody converts an engine response into the API document served on
// both surfaces: the HTTP /search handler encodes exactly this value, and
// the wire protocol's hand-rolled encoder must produce its encoding/json
// bytes. Snippets are attached through eng (nil skips them the way a
// document-less engine does); explain rides along when non-nil.
func SearchBody(eng Backend, resp *core.Response, explain *obs.SpanData) SearchJSON {
	out := SearchJSON{
		Terms:          resp.Terms,
		NeedRefine:     resp.NeedRefine,
		Degraded:       resp.Degraded,
		DegradedReason: resp.DegradedReason,
		Explain:        explain,
	}
	for _, c := range resp.SearchFor {
		out.SearchFor = append(out.SearchFor, c.Type.Path())
	}
	for _, rq := range resp.Queries {
		qj := QueryJSON{
			Keywords:   rq.Keywords,
			DSim:       rq.DSim,
			Score:      rq.Score,
			IsOriginal: rq.IsOriginal,
			Results:    resultsJSON(eng, rq.Results),
		}
		for _, st := range rq.Steps {
			qj.Steps = append(qj.Steps, st.String())
		}
		out.Queries = append(out.Queries, qj)
	}
	return out
}

// EncodeBody writes v exactly the way every JSON response body of this
// server is written: two-space indent, HTML-escaped strings, trailing
// newline. Exported so the wire surface (and its conformance suite) can
// produce reference bytes without an HTTP round trip.
func EncodeBody(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	q := r.URL.Query().Get("q")
	explain := r.URL.Query().Get("explain") == "1"
	// A trace is armed when the caller asked for an explanation, the
	// slow-query log is on (it needs the span tree of any query that
	// turns out slow), or the sampler elected this query for retention.
	// Untraced queries pay one context lookup per stage.
	ctx := r.Context()
	ri := obs.ReqInfoFromContext(ctx)
	sampled := explain || s.slowlog != nil || s.sampler.Sample()
	if ri != nil {
		// Mark before the query runs so the shard fan-out pins attempt
		// exemplars only for queries whose trace will be resolvable.
		ri.Sampled = sampled
	}
	var root *obs.Span
	if sampled {
		ctx, root = obs.NewTrace(ctx, "query")
		defer root.Release()
		root.SetStr("q", q)
	}
	tsp := root.StartChild("tokenize")
	terms := tokenize.Query(q)
	if tsp != nil {
		tsp.SetInt("terms", int64(len(terms)))
		tsp.End()
	}
	if len(terms) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("missing or empty q parameter"))
		return
	}
	k, err := intParam(r, "k", 3)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	strategy, err := strategyParam(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// parallel overrides the engine's worker count for this query only;
	// 0 (the default) keeps the engine configuration, 1 forces the
	// sequential walk. Responses are identical either way.
	parallel, err := intParam(r, "parallel", 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	resp, err := s.eng.QueryTermsCtx(ctx, terms, strategy, k, parallel)
	if err != nil {
		// Retain an errored sampled query too: its attempt exemplars are
		// already pinned, and a failing query is the one an operator most
		// wants the trace of.
		if root != nil {
			root.End()
			s.retainTrace(ri, q, time.Since(start), root.Data(), false, "")
		}
		if errors.Is(err, context.Canceled) {
			httpError(w, statusClientClosedRequest, err)
			return
		}
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	var trace *obs.SpanData
	if root != nil {
		root.End()
		trace = root.Data()
		dur := time.Since(start)
		shard, replica, hedged, _ := ri.Serving()
		s.slowlog.Record(obs.SlowEntry{
			Time:           time.Now(),
			Query:          q,
			DurationNS:     int64(dur),
			Degraded:       resp.Degraded,
			DegradedReason: resp.DegradedReason,
			TraceID:        ri.TraceID(),
			Shard:          shard,
			Replica:        replica,
			Hedged:         hedged,
			Trace:          trace,
		})
		s.retainTrace(ri, q, dur, trace, resp.Degraded, resp.DegradedReason)
	}
	var explainTrace *obs.SpanData
	if explain {
		explainTrace = trace
	}
	writeJSON(w, SearchBody(s.eng, resp, explainTrace))
}

// retainTrace deposits one sampled query's span tree (with its envelope:
// query, outcome, serving attribution) in the trace store and marks the
// request retained, which licenses the latency histograms to pin its trace
// ID as an exemplar — an exemplar therefore always resolves at
// /debug/trace/<id> while the retention window holds it.
func (s *Server) retainTrace(ri *obs.ReqInfo, q string, dur time.Duration, trace *obs.SpanData, degraded bool, reason string) {
	if ri == nil {
		return
	}
	shard, replica, hedged, _ := ri.Serving()
	s.traces.Put(obs.RetainedTrace{
		ID:             ri.Trace,
		Time:           time.Now(),
		Query:          q,
		DurationNS:     int64(dur),
		Degraded:       degraded,
		DegradedReason: reason,
		Shard:          shard,
		Replica:        replica,
		Hedged:         hedged,
		Trace:          trace,
	})
	ri.MarkRetained()
}

// narrowJSON is the /narrow response body.
type narrowJSON struct {
	TooBroad        bool         `json:"too_broad"`
	OriginalResults int          `json:"original_results"`
	Suggestions     []suggestion `json:"suggestions,omitempty"`
}

type suggestion struct {
	Keywords []string `json:"keywords"`
	Added    []string `json:"added"`
	Results  int      `json:"results"`
}

func (s *Server) handleNarrow(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	q := r.URL.Query().Get("q")
	if strings.TrimSpace(q) == "" {
		httpError(w, http.StatusBadRequest, errors.New("missing q parameter"))
		return
	}
	max, err := intParam(r, "max", 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	k, err := intParam(r, "k", 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	out, err := s.eng.Narrow(q, &narrow.Options{MaxResults: max, TopK: k})
	if errors.Is(err, narrow.ErrNeedsDocument) {
		httpError(w, http.StatusNotImplemented, err)
		return
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	body := narrowJSON{TooBroad: out.TooBroad, OriginalResults: out.OriginalResults}
	for _, sg := range out.Suggestions {
		body.Suggestions = append(body.Suggestions, suggestion{
			Keywords: sg.Keywords, Added: sg.Added, Results: len(sg.Results),
		})
	}
	writeJSON(w, body)
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	q := r.URL.Query().Get("q")
	if strings.TrimSpace(q) == "" {
		httpError(w, http.StatusBadRequest, errors.New("missing q parameter"))
		return
	}
	k, err := intParam(r, "k", 8)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	terms := s.eng.Complete(q, k)
	if terms == nil {
		terms = []string{}
	}
	writeJSON(w, map[string]any{"completions": terms})
}

// updateJSON is the /update response body.
type updateJSON struct {
	Epoch     uint64 `json:"epoch"`
	InsertOps int    `json:"insert_ops"`
	DeleteOps int    `json:"delete_ops"`
	Inserted  int    `json:"nodes_inserted"`
	Deleted   int    `json:"nodes_deleted"`
	WALBytes  int64  `json:"wal_bytes,omitempty"`
}

// maxUpdateBody bounds an /update request body; a batch larger than this
// should arrive as several batches (each is one epoch commit anyway).
const maxUpdateBody = 16 << 20

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var batch mutate.Batch
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxUpdateBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&batch); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad update body: %w", err))
		return
	}
	if len(batch.Ops) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("update batch has no ops"))
		return
	}
	res, err := s.eng.Apply(&batch)
	if err != nil {
		// A rejected batch is the caller's fault (bad target, malformed
		// fragment); the engine state is untouched either way. A frozen
		// snapshot server is a deployment property, not a batch problem.
		code := http.StatusUnprocessableEntity
		if errors.Is(err, core.ErrReadOnly) {
			code = http.StatusConflict
		}
		httpError(w, code, err)
		return
	}
	writeJSON(w, updateJSON{
		Epoch:     res.Epoch,
		InsertOps: res.InsertOps,
		DeleteOps: res.DeleteOps,
		Inserted:  res.Inserted,
		Deleted:   res.Deleted,
		WALBytes:  res.WALBytes,
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	us := s.eng.UpdateStats()
	body := map[string]any{
		"status":           "ok",
		"epoch":            us.Epoch,
		"live_updates":     us.Live,
		"applied_batches":  us.AppliedBatches,
		"applied_ops":      us.AppliedOps,
		"replayed_batches": us.ReplayedBatches,
		"wal_bytes":        us.WALSizeBytes,
		"nodes":            s.eng.Index().NodeCount,
		"terms":            len(s.eng.Index().Vocabulary()),
		"queries":          st.Queries,
		"refined":          st.Refined,
		"cache_hits":       st.CacheHits,
		"parallelism":      st.Parallelism,
		"parallel_queries": st.ParallelQueries,
		"worker_runs":      st.WorkerRuns,
		"degraded":         st.Degraded,
		"shed":             s.mShed.Value(),
		"panics":           s.mPanics.Value(),
		"max_inflight":     s.cfg.MaxInFlight,
		"timeout_ms":       s.cfg.Timeout.Milliseconds(),
		"uptime_seconds":   time.Since(s.start).Seconds(),
	}
	// The SLO burn-rate report rides under its own key; `xrefine slo` and
	// `xstat -slo` decode exactly this object.
	body["slo"] = s.slo.Report(time.Now())
	// Memory pressure observables: resident bytes of loaded posting-list
	// cores (the block-compressed index payload) next to the Go heap, so
	// an operator can see both what the index costs and what the process
	// holds overall.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	body["index_resident_bytes"] = s.eng.Index().ResidentBytes()
	body["go_heap_alloc_bytes"] = ms.HeapAlloc
	body["go_heap_sys_bytes"] = ms.HeapSys
	// Sharded backends surface their per-shard epochs next to the summed
	// one; single-engine servers omit the keys entirely.
	if sb, ok := s.eng.(ShardedBackend); ok {
		epochs := sb.ShardEpochs()
		body["shards"] = len(epochs)
		body["shard_epochs"] = epochs
	}
	// Replicated backends additionally surface one health row per replica
	// — state, epoch lag, EWMA latency, breaker state — so an operator can
	// see a quarantined or breaker-open replica at a glance.
	if rb, ok := s.eng.(ReplicatedBackend); ok {
		table := rb.ReplicaTable()
		body["replicas"] = table
		healthy := 0
		for _, row := range table {
			if row.State == core.ReplicaHealthy {
				healthy++
			}
		}
		body["replicas_healthy"] = healthy
		body["replicas_total"] = len(table)
	}
	// Store-backed engines surface their storage-engine snapshot — kind,
	// disk footprint, and on the log engine the segment/keydir/compaction
	// state — so amplification is watchable without xstat -storage.
	if sb, ok := s.eng.(StorageBackend); ok {
		if st, ok := sb.StoreStats(); ok {
			body["storage"] = st
			body["storage_amplification"] = st.Amplification()
		}
	}
	// The full registry snapshot rides along under its own key so the
	// established top-level fields stay stable for existing probes.
	if s.reg != nil {
		body["metrics"] = s.reg.Snapshot()
	}
	writeJSON(w, body)
}

// handleMetrics serves the registry in Prometheus text exposition format.
// It bypasses the admission gate and the request timeout: a scrape must
// succeed precisely when the query path is saturated. A scraper that asks
// for OpenMetrics (?format=openmetrics, or an Accept header naming
// application/openmetrics-text) gets the same families with exemplars on
// the histogram buckets; the default exposition stays byte-identical to
// the pre-exemplar format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.reg == nil {
		httpError(w, http.StatusNotFound, errors.New("metrics disabled"))
		return
	}
	if r.URL.Query().Get("format") == "openmetrics" ||
		strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text") {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		_ = s.reg.WriteOpenMetrics(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// handleEvents dumps the flight recorder, newest first: every request's
// admission, fan-out, replica attempts, hedges, retries, breaker and
// quarantine transitions, WAL commits. Filters: ?trace_id=<16-hex>,
// ?shard=<n>, ?kind=<name>, ?limit=<n>.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.flight == nil {
		httpError(w, http.StatusNotFound, errors.New("flight recorder disabled (metrics off)"))
		return
	}
	var filter obs.EventFilter
	qv := r.URL.Query()
	if v := qv.Get("trace_id"); v != "" {
		id, err := obs.ParseTraceID(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad trace_id: %w", err))
			return
		}
		filter.Trace = id
	}
	if v := qv.Get("kind"); v != "" {
		k, err := obs.ParseEventKind(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		filter.Kind = k
	}
	if v := qv.Get("shard"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad shard: %w", err))
			return
		}
		filter.Shard = n
		filter.HasShard = true
	}
	var err error
	if filter.Limit, err = intParam(r, "limit", 0); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	evs := s.flight.Events(filter)
	views := make([]obs.EventView, 0, len(evs))
	for _, e := range evs {
		views = append(views, e.View())
	}
	writeJSON(w, map[string]any{
		"capacity": s.flight.Capacity(),
		"dropped":  s.flight.Dropped(),
		"events":   views,
	})
}

// handleTrace resolves one retained trace ID — scraped off an exemplar, a
// slowlog entry, or an event dump — to its full record: the span tree plus
// the query, outcome and serving attribution.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/debug/trace/")
	if idStr == "" || strings.Contains(idStr, "/") {
		httpError(w, http.StatusBadRequest, errors.New("want /debug/trace/<trace-id>"))
		return
	}
	id, err := obs.ParseTraceID(idStr)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad trace id: %w", err))
		return
	}
	rt, ok := s.traces.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("trace %s not retained (sampled traces only, last %d kept)", id, s.traces.Capacity()))
		return
	}
	writeJSON(w, rt)
}

// handleSlowlog dumps the slow-query ring buffer, newest first.
func (s *Server) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	if s.slowlog == nil {
		httpError(w, http.StatusNotFound, errors.New("slow-query log disabled; start with a slowlog threshold"))
		return
	}
	entries := s.slowlog.Entries()
	if entries == nil {
		entries = []obs.SlowEntry{}
	}
	writeJSON(w, map[string]any{
		"threshold_ms": s.slowlog.Threshold().Milliseconds(),
		"dropped":      s.slowlog.Dropped(),
		"entries":      entries,
	})
}

// resultsJSON converts matches to API form, attaching snippets when the
// backend can render them (it still holds a source document — for a shard
// router, the owning shard's).
func resultsJSON(eng Backend, ms []refine.Match) []ResultJSON {
	out := make([]ResultJSON, 0, len(ms))
	for _, m := range ms {
		rj := ResultJSON{ID: m.ID.String(), Type: m.Type.Path()}
		if eng != nil {
			if snip, ok := eng.Snippet(m, 80); ok {
				rj.Snippet = snip
			}
		}
		out = append(out, rj)
	}
	return out
}

func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad %s parameter %q", name, v)
	}
	return n, nil
}

func strategyParam(r *http.Request) (core.Strategy, error) {
	switch v := r.URL.Query().Get("strategy"); v {
	case "", "partition":
		return core.StrategyPartition, nil
	case "sle":
		return core.StrategySLE, nil
	case "stack":
		return core.StrategyStack, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", v)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
