// Package server exposes an XRefine engine over HTTP as a small JSON API —
// the deployment surface a sponsored-search or digital-library integration
// would talk to. Handlers are plain net/http so the server embeds anywhere.
//
//	GET /search?q=online+databse&k=3&strategy=partition&parallel=4
//	GET /narrow?q=database&max=50&k=3
//	GET /healthz
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"xrefine/internal/core"
	"xrefine/internal/narrow"
	"xrefine/internal/refine"
	"xrefine/internal/tokenize"
)

// Server wraps an engine with HTTP handlers. The engine is read-only and
// safe for concurrent queries, so the zero-configuration http.Server
// concurrency model just works.
type Server struct {
	eng *core.Engine
	mux *http.ServeMux
}

// New builds a server around an engine.
func New(eng *core.Engine) *Server {
	s := &Server{eng: eng, mux: http.NewServeMux()}
	s.mux.HandleFunc("/search", s.handleSearch)
	s.mux.HandleFunc("/narrow", s.handleNarrow)
	s.mux.HandleFunc("/complete", s.handleComplete)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// resultJSON is one match in API form.
type resultJSON struct {
	ID      string `json:"id"`
	Type    string `json:"type"`
	Snippet string `json:"snippet,omitempty"`
}

// queryJSON is one (refined) query in API form.
type queryJSON struct {
	Keywords   []string     `json:"keywords"`
	DSim       float64      `json:"dsim"`
	Score      float64      `json:"score"`
	IsOriginal bool         `json:"is_original,omitempty"`
	Steps      []string     `json:"steps,omitempty"`
	Results    []resultJSON `json:"results"`
}

// searchJSON is the /search response body.
type searchJSON struct {
	Terms      []string    `json:"terms"`
	NeedRefine bool        `json:"need_refine"`
	SearchFor  []string    `json:"search_for,omitempty"`
	Queries    []queryJSON `json:"queries"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	q := r.URL.Query().Get("q")
	terms := tokenize.Query(q)
	if len(terms) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("missing or empty q parameter"))
		return
	}
	k, err := intParam(r, "k", 3)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	strategy, err := strategyParam(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// parallel overrides the engine's worker count for this query only;
	// 0 (the default) keeps the engine configuration, 1 forces the
	// sequential walk. Responses are identical either way.
	parallel, err := intParam(r, "parallel", 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := s.eng.QueryTermsParallel(terms, strategy, k, parallel)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	out := searchJSON{Terms: resp.Terms, NeedRefine: resp.NeedRefine}
	for _, c := range resp.SearchFor {
		out.SearchFor = append(out.SearchFor, c.Type.Path())
	}
	for _, rq := range resp.Queries {
		qj := queryJSON{
			Keywords:   rq.Keywords,
			DSim:       rq.DSim,
			Score:      rq.Score,
			IsOriginal: rq.IsOriginal,
			Results:    s.results(rq.Results),
		}
		for _, st := range rq.Steps {
			qj.Steps = append(qj.Steps, st.String())
		}
		out.Queries = append(out.Queries, qj)
	}
	writeJSON(w, out)
}

// narrowJSON is the /narrow response body.
type narrowJSON struct {
	TooBroad        bool         `json:"too_broad"`
	OriginalResults int          `json:"original_results"`
	Suggestions     []suggestion `json:"suggestions,omitempty"`
}

type suggestion struct {
	Keywords []string `json:"keywords"`
	Added    []string `json:"added"`
	Results  int      `json:"results"`
}

func (s *Server) handleNarrow(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	q := r.URL.Query().Get("q")
	if strings.TrimSpace(q) == "" {
		httpError(w, http.StatusBadRequest, errors.New("missing q parameter"))
		return
	}
	max, err := intParam(r, "max", 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	k, err := intParam(r, "k", 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	out, err := s.eng.Narrow(q, &narrow.Options{MaxResults: max, TopK: k})
	if errors.Is(err, narrow.ErrNeedsDocument) {
		httpError(w, http.StatusNotImplemented, err)
		return
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	body := narrowJSON{TooBroad: out.TooBroad, OriginalResults: out.OriginalResults}
	for _, sg := range out.Suggestions {
		body.Suggestions = append(body.Suggestions, suggestion{
			Keywords: sg.Keywords, Added: sg.Added, Results: len(sg.Results),
		})
	}
	writeJSON(w, body)
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	q := r.URL.Query().Get("q")
	if strings.TrimSpace(q) == "" {
		httpError(w, http.StatusBadRequest, errors.New("missing q parameter"))
		return
	}
	k, err := intParam(r, "k", 8)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	terms := s.eng.Complete(q, k)
	if terms == nil {
		terms = []string{}
	}
	writeJSON(w, map[string]any{"completions": terms})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	writeJSON(w, map[string]any{
		"status":           "ok",
		"nodes":            s.eng.Index().NodeCount,
		"terms":            len(s.eng.Index().Vocabulary()),
		"queries":          st.Queries,
		"refined":          st.Refined,
		"cache_hits":       st.CacheHits,
		"parallelism":      st.Parallelism,
		"parallel_queries": st.ParallelQueries,
		"worker_runs":      st.WorkerRuns,
	})
}

// results converts matches to API form, attaching snippets when the engine
// still holds the source document.
func (s *Server) results(ms []refine.Match) []resultJSON {
	out := make([]resultJSON, 0, len(ms))
	doc := s.eng.Document()
	for _, m := range ms {
		rj := resultJSON{ID: m.ID.String(), Type: m.Type.Path()}
		if doc != nil {
			rj.Snippet = core.Snippet(doc, m, 80)
		}
		out = append(out, rj)
	}
	return out
}

func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad %s parameter %q", name, v)
	}
	return n, nil
}

func strategyParam(r *http.Request) (core.Strategy, error) {
	switch v := r.URL.Query().Get("strategy"); v {
	case "", "partition":
		return core.StrategyPartition, nil
	case "sle":
		return core.StrategySLE, nil
	case "stack":
		return core.StrategyStack, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", v)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
