package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"xrefine/internal/core"
	"xrefine/internal/obs"
	"xrefine/internal/xmltree"
)

// flightServer builds a server with the given edge config over a fresh
// in-memory engine (its own registry, so flight-recorder state does not
// bleed between tests).
func flightServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	var b strings.Builder
	b.WriteString("<bib>")
	for a := 0; a < 20; a++ {
		b.WriteString("<author><publications>")
		for p := 0; p < 3; p++ {
			fmt.Fprintf(&b, "<paper><title>database systems %d</title><year>%d</year></paper>", p, 2000+p)
		}
		b.WriteString("</publications></author>")
	}
	b.WriteString("</bib>")
	doc, err := xmltree.ParseString(b.String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return NewWithConfig(core.NewFromDocument(doc, nil), cfg)
}

// TestDebugEventsLifecycle: one query must leave an admit → query →
// finish event chain in the flight recorder, all stamped with the same
// trace ID, and the /debug/events filters must select on it.
func TestDebugEventsLifecycle(t *testing.T) {
	s := flightServer(t, Config{TraceSampleEvery: 1})
	if rec, _ := get(t, s, "/search?q=databse"); rec.Code != http.StatusOK {
		t.Fatalf("search = %d", rec.Code)
	}
	rec, body := get(t, s, "/debug/events")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/events = %d: %s", rec.Code, rec.Body.String())
	}
	events := body["events"].([]any)
	kinds := make(map[string]string) // kind -> trace_id
	for _, e := range events {
		ev := e.(map[string]any)
		kinds[ev["kind"].(string)] = ev["trace_id"].(string)
	}
	for _, k := range []string{"admit", "query", "finish"} {
		if kinds[k] == "" {
			t.Fatalf("missing %q event; have %v", k, kinds)
		}
	}
	if kinds["admit"] != kinds["query"] || kinds["query"] != kinds["finish"] {
		t.Errorf("trace IDs differ across the lifecycle: %v", kinds)
	}
	id := kinds["admit"]

	// Filter by trace: every event carries the requested ID.
	rec, body = get(t, s, "/debug/events?trace_id="+id)
	if rec.Code != http.StatusOK {
		t.Fatalf("filtered events = %d", rec.Code)
	}
	filtered := body["events"].([]any)
	if len(filtered) < 3 {
		t.Fatalf("trace filter returned %d events, want >= 3", len(filtered))
	}
	for _, e := range filtered {
		if got := e.(map[string]any)["trace_id"].(string); got != id {
			t.Errorf("trace filter leaked event with id %s", got)
		}
	}

	// Filter by kind.
	rec, body = get(t, s, "/debug/events?kind=admit")
	if rec.Code != http.StatusOK {
		t.Fatalf("kind filter = %d", rec.Code)
	}
	for _, e := range body["events"].([]any) {
		if got := e.(map[string]any)["kind"].(string); got != "admit" {
			t.Errorf("kind filter leaked %q event", got)
		}
	}

	// Bad filter values are 400s.
	if rec, _ := get(t, s, "/debug/events?trace_id=zzz"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad trace_id = %d, want 400", rec.Code)
	}
	if rec, _ := get(t, s, "/debug/events?kind=nope"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad kind = %d, want 400", rec.Code)
	}
}

// TestTraceResolution: a sampled query's trace ID — taken from the event
// ring — must resolve at /debug/trace/<id> to the retained record with
// its span tree, and the span tree's events must exist in /debug/events.
func TestTraceResolution(t *testing.T) {
	s := flightServer(t, Config{TraceSampleEvery: 1})
	if rec, _ := get(t, s, "/search?q=databse"); rec.Code != http.StatusOK {
		t.Fatalf("search = %d", rec.Code)
	}
	_, body := get(t, s, "/debug/events?kind=admit")
	events := body["events"].([]any)
	if len(events) == 0 {
		t.Fatal("no admit events")
	}
	id := events[0].(map[string]any)["trace_id"].(string)

	rec, body := get(t, s, "/debug/trace/"+id)
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/trace/%s = %d: %s", id, rec.Code, rec.Body.String())
	}
	if body["trace_id"] != id {
		t.Errorf("resolved trace_id = %v, want %s", body["trace_id"], id)
	}
	if body["query"] != "databse" {
		t.Errorf("retained query = %v", body["query"])
	}
	if body["trace"] == nil {
		t.Error("retained record has no span tree")
	}
	// Single-engine backend: no replica fan-out attribution.
	if body["shard"].(float64) != -1 || body["replica"].(float64) != -1 {
		t.Errorf("single-engine attribution = shard %v replica %v, want -1 -1", body["shard"], body["replica"])
	}

	// Unknown and malformed IDs.
	if rec, _ := get(t, s, "/debug/trace/00000000000000ff"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown trace = %d, want 404", rec.Code)
	}
	if rec, _ := get(t, s, "/debug/trace/zzz"); rec.Code != http.StatusBadRequest {
		t.Errorf("malformed trace id = %d, want 400", rec.Code)
	}
}

// TestOpenMetricsExemplarResolves is the acceptance loop: scrape the
// OpenMetrics exposition, pull a trace ID off a latency-histogram
// exemplar, and resolve it at /debug/trace/<id>. The default exposition
// must carry no exemplars.
func TestOpenMetricsExemplarResolves(t *testing.T) {
	s := flightServer(t, Config{TraceSampleEvery: 1})
	for i := 0; i < 3; i++ {
		if rec, _ := get(t, s, "/search?q=databse"); rec.Code != http.StatusOK {
			t.Fatalf("search = %d", rec.Code)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/metrics?format=openmetrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics openmetrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Errorf("Content-Type = %q", ct)
	}
	payload := rec.Body.String()
	if !strings.HasSuffix(payload, "# EOF\n") {
		t.Error("OpenMetrics payload missing # EOF")
	}
	exp, err := obs.ParsePrometheus(strings.NewReader(payload))
	if err != nil {
		t.Fatalf("malformed OpenMetrics exposition: %v", err)
	}
	if err := exp.CheckHistograms(); err != nil {
		t.Fatalf("CheckHistograms: %v", err)
	}
	var ids []string
	for _, sm := range exp.Samples {
		if sm.Exemplar != nil {
			if tid := sm.Exemplar.Labels["trace_id"]; tid != "" {
				ids = append(ids, tid)
			}
		}
	}
	if len(ids) == 0 {
		t.Fatalf("no exemplars in OpenMetrics scrape:\n%s", payload)
	}
	for _, id := range ids {
		rec, _ := get(t, s, "/debug/trace/"+id)
		if rec.Code != http.StatusOK {
			t.Errorf("exemplar trace %s does not resolve: %d", id, rec.Code)
		}
	}

	// Default exposition: no exemplars, unchanged content type.
	req = httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if strings.Contains(rec.Body.String(), "trace_id") {
		t.Error("default exposition leaked exemplars")
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("default Content-Type = %q", ct)
	}
}

// TestHealthzSLOAndBuildInfo: /healthz must carry the SLO burn-rate
// report and uptime; /metrics must expose build_info (with go_version and
// index_format labels), uptime, and the four burn-rate gauges.
func TestHealthzSLOAndBuildInfo(t *testing.T) {
	s := flightServer(t, Config{})
	if rec, _ := get(t, s, "/search?q=databse"); rec.Code != http.StatusOK {
		t.Fatal("search failed")
	}
	_, body := get(t, s, "/healthz")
	slo, ok := body["slo"].(map[string]any)
	if !ok {
		t.Fatalf("healthz slo = %T", body["slo"])
	}
	if slo["availability_objective"].(float64) != 0.999 {
		t.Errorf("availability objective = %v", slo["availability_objective"])
	}
	wins := slo["windows"].([]any)
	if len(wins) != 2 {
		t.Fatalf("slo windows = %d, want 2", len(wins))
	}
	w5 := wins[0].(map[string]any)
	if w5["window"] != "5m" || w5["requests"].(float64) < 1 {
		t.Errorf("5m window = %v", w5)
	}
	if body["uptime_seconds"].(float64) < 0 {
		t.Error("negative uptime")
	}

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	metrics := rec.Body.String()
	for _, want := range []string{
		`xrefine_build_info{go_version="go`,
		`index_format="2"`,
		"xrefine_uptime_seconds ",
		"xrefine_slo_availability_burn_5m ",
		"xrefine_slo_availability_burn_1h ",
		"xrefine_slo_latency_burn_5m ",
		"xrefine_slo_latency_burn_1h ",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestSLOBurnCountsFailures: shed requests (503) must burn the
// availability budget.
func TestSLOBurnCountsFailures(t *testing.T) {
	s := flightServer(t, Config{MaxInFlight: 1})
	// Occupy the only gate slot with a handler that blocks until released
	// (bypassing observed(), so it does not itself feed the SLO), then
	// shed a real /search through the full route stack.
	entered := make(chan struct{})
	release := make(chan struct{})
	blocked := s.guard(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		w.WriteHeader(http.StatusOK)
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		blocked(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/search?q=databse", nil))
	}()
	<-entered
	defer func() { close(release); <-done }()
	rec, _ := get(t, s, "/search?q=databse")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("expected shed, got %d", rec.Code)
	}
	rep := s.slo.Report(time.Now())
	if rep.Windows[0].BadAvailability < 1 {
		t.Errorf("shed request did not burn availability: %+v", rep.Windows[0])
	}
	if rep.Windows[0].Requests < 1 {
		t.Errorf("shed request not counted: %+v", rep.Windows[0])
	}
}

// TestSlowlogAttribution: slowlog entries must carry the trace ID that
// resolves in the trace store.
func TestSlowlogAttribution(t *testing.T) {
	s := flightServer(t, Config{SlowLogThreshold: time.Nanosecond})
	if rec, _ := get(t, s, "/search?q=databse"); rec.Code != http.StatusOK {
		t.Fatal("search failed")
	}
	_, body := get(t, s, "/debug/slowlog")
	entries := body["entries"].([]any)
	if len(entries) == 0 {
		t.Fatal("no slowlog entries at a 1ns threshold")
	}
	e := entries[0].(map[string]any)
	id, _ := e["trace_id"].(string)
	if id == "" {
		t.Fatal("slowlog entry has no trace_id")
	}
	if e["shard"].(float64) != -1 || e["replica"].(float64) != -1 {
		t.Errorf("single-engine slowlog attribution = shard %v replica %v", e["shard"], e["replica"])
	}
	// The slowlog arms tracing for every query, so the trace must resolve.
	if rec, _ := get(t, s, "/debug/trace/"+id); rec.Code != http.StatusOK {
		t.Errorf("slowlog trace %s does not resolve: %d", id, rec.Code)
	}
}

// TestEventsDisabledWithoutMetrics: with metrics off there is no event
// ring; the endpoint must say so rather than panic.
func TestEventsDisabledWithoutMetrics(t *testing.T) {
	var b strings.Builder
	b.WriteString("<bib><paper><title>database</title></paper></bib>")
	doc, err := xmltree.ParseString(b.String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithConfig(core.NewFromDocument(doc, &core.Config{DisableMetrics: true}), Config{})
	req := httptest.NewRequest(http.MethodGet, "/debug/events", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Errorf("/debug/events without metrics = %d, want 404", rec.Code)
	}
}
