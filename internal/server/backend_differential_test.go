package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"strings"
	"testing"

	"xrefine/internal/core"
	"xrefine/internal/datagen"
	"xrefine/internal/storage"
	"xrefine/internal/storage/backends"
)

// TestSearchByteIdenticalAcrossBackends is the storage-engine analogue of
// the config differential: the same corpus persisted through the B+tree
// engine and the Bitcask-style log engine must answer every /search
// byte-for-byte identically — at every strategy and parallelism, and
// again after both absorb the same update batches through POST /update.
// The storage layer sits below the index encoding, so nothing about
// segment layout, keydir ordering, or compaction may leak into results.
func TestSearchByteIdenticalAcrossBackends(t *testing.T) {
	doc, err := datagen.DBLPDocument(datagen.DBLPConfig{Authors: 80, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	kinds := []storage.Kind{storage.KindBTree, storage.KindLog}
	servers := make(map[storage.Kind]*Server, len(kinds))
	engines := make(map[storage.Kind]*core.Engine, len(kinds))
	for _, kind := range kinds {
		name := "ix.kv"
		if kind == storage.KindLog {
			name = "ix.logdb"
		}
		path := filepath.Join(dir, name)
		st, err := backends.Open(kind, path, nil)
		if err != nil {
			t.Fatal(err)
		}
		seed := core.NewFromDocument(doc, nil)
		if err := seed.SaveIndexWithDocument(st); err != nil {
			t.Fatal(err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		// Reopen so each server serves what its engine persisted, not the
		// in-memory build that wrote it.
		st, err = backends.Open(kind, path, nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		eng, err := core.OpenLive(st, path+".wal", nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { eng.Close() })
		engines[kind] = eng
		servers[kind] = New(eng)
	}

	queries := []string{
		"database query",
		"databse quary", // misspellings force refinement
		"keyword serch xml",
		"twig matching pattern",
	}
	fetch := func(t *testing.T, s *Server, q, strategy string, parallel int) string {
		t.Helper()
		v := url.Values{"q": {q}, "strategy": {strategy}}
		if parallel > 0 {
			v.Set("parallel", fmt.Sprint(parallel))
		}
		req := httptest.NewRequest(http.MethodGet, "/search?"+v.Encode(), nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s strategy=%s parallel=%d: %d %s", q, strategy, parallel, rec.Code, rec.Body.String())
		}
		return rec.Body.String()
	}
	compare := func(t *testing.T, phase string) {
		t.Helper()
		for _, strategy := range []string{"partition", "sle", "stack"} {
			for _, q := range queries {
				ref := fetch(t, servers[storage.KindBTree], q, strategy, 1)
				for _, parallel := range []int{0, 2, 4} {
					if got := fetch(t, servers[storage.KindLog], q, strategy, parallel); got != ref {
						t.Errorf("%s: log backend: %q strategy=%s parallel=%d diverged from btree\nlog:   %s\nbtree: %s",
							phase, q, strategy, parallel, got, ref)
					}
				}
			}
		}
	}
	compare(t, "cold open")

	// Same update stream into both engines; results must stay locked.
	batches, err := datagen.Updates(doc, datagen.UpdatesConfig{Batches: 4, Ops: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range kinds {
		for i, b := range batches {
			j, err := json.Marshal(b)
			if err != nil {
				t.Fatal(err)
			}
			req := httptest.NewRequest(http.MethodPost, "/update", strings.NewReader(string(j)))
			rec := httptest.NewRecorder()
			servers[kind].ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Fatalf("%s batch %d: /update = %d %s", kind, i, rec.Code, rec.Body.String())
			}
		}
	}
	compare(t, "after updates")

	// And once more after a checkpoint: compaction plus hint-file writes
	// on the log engine must not perturb a single response byte.
	for _, kind := range kinds {
		if err := engines[kind].Checkpoint(); err != nil {
			t.Fatalf("%s: checkpoint: %v", kind, err)
		}
	}
	compare(t, "after checkpoint")
}
