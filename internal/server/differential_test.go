package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"xrefine/internal/core"
	"xrefine/internal/datagen"
)

// TestSearchByteIdenticalAcrossConfigs is the differential guarantee of
// the hardening work: with no deadline, budget, or fault configured, the
// /search body must be byte-for-byte what the unhardened server returns —
// for every strategy, at every parallelism, and on a server whose limits
// exist but are too generous to fire. The degraded fields, the context
// plumbing, and the admission gate must be invisible until they trigger.
func TestSearchByteIdenticalAcrossConfigs(t *testing.T) {
	doc, err := datagen.DBLPDocument(datagen.DBLPConfig{Authors: 120, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Separate engines per server so caches and counters cannot leak
	// state across the comparison.
	bare := New(core.NewFromDocument(doc, nil))
	hardened := NewWithConfig(
		core.NewFromDocument(doc, &core.Config{
			Timeout:       time.Hour,
			PostingBudget: 1 << 40,
		}),
		Config{Timeout: time.Hour, MaxInFlight: 128},
	)
	// A slowlog threshold arms a trace on every query: the span plumbing
	// through refine/slca/index must not perturb the response bytes.
	traced := NewWithConfig(core.NewFromDocument(doc, nil),
		Config{SlowLogThreshold: time.Nanosecond})

	queries := []string{
		"database query",
		"databse quary",     // misspellings force refinement
		"keyword serch xml", // partial mismatch
		"twig matching pattern",
	}
	fetch := func(t *testing.T, s *Server, q, strategy string, parallel int) string {
		t.Helper()
		v := url.Values{"q": {q}, "strategy": {strategy}}
		if parallel > 0 {
			v.Set("parallel", fmt.Sprint(parallel))
		}
		req := httptest.NewRequest(http.MethodGet, "/search?"+v.Encode(), nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s strategy=%s parallel=%d: %d %s", q, strategy, parallel, rec.Code, rec.Body.String())
		}
		return rec.Body.String()
	}
	for _, strategy := range []string{"partition", "sle", "stack"} {
		for _, q := range queries {
			ref := fetch(t, bare, q, strategy, 1)
			for _, parallel := range []int{0, 2, 4} {
				if got := fetch(t, bare, q, strategy, parallel); got != ref {
					t.Errorf("bare server: %q strategy=%s parallel=%d diverged from sequential", q, strategy, parallel)
				}
				if got := fetch(t, hardened, q, strategy, parallel); got != ref {
					t.Errorf("hardened server: %q strategy=%s parallel=%d diverged from bare sequential", q, strategy, parallel)
				}
				if got := fetch(t, traced, q, strategy, parallel); got != ref {
					t.Errorf("traced server: %q strategy=%s parallel=%d diverged from bare sequential", q, strategy, parallel)
				}
			}
		}
	}

	// Rebuild equivalence (the live-update guarantee): a server that
	// absorbed K random update batches through POST /update must answer
	// every query byte-for-byte like a server whose index was rebuilt from
	// scratch on the final document — for every strategy, at every
	// parallelism. Incremental list deltas, stat-table maintenance, epoch
	// swaps and the generation-keyed cache must leave no fingerprint.
	t.Run("rebuild-equivalence", func(t *testing.T) {
		updDoc, err := datagen.DBLPDocument(datagen.DBLPConfig{Authors: 60, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		incEng := core.NewFromDocument(updDoc, nil)
		incremental := New(incEng)
		batches, err := datagen.Updates(updDoc, datagen.UpdatesConfig{Batches: 6, Ops: 4, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		for i, b := range batches {
			j, err := json.Marshal(b)
			if err != nil {
				t.Fatal(err)
			}
			req := httptest.NewRequest(http.MethodPost, "/update", strings.NewReader(string(j)))
			rec := httptest.NewRecorder()
			incremental.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Fatalf("batch %d: /update = %d %s", i, rec.Code, rec.Body.String())
			}
		}
		if got, want := incEng.Epoch(), uint64(len(batches)); got != want {
			t.Fatalf("epoch after %d batches = %d", want, got)
		}
		rebuilt := New(core.NewFromDocument(incEng.Document(), nil))

		// Queries mix original corpus vocabulary, inserted-fragment
		// vocabulary, and misspellings that force refinement through the
		// maintained frequency and co-occurrence tables.
		updQueries := append(queries, "refinement suggestion", "keyword databse onlin")
		for _, strategy := range []string{"partition", "sle", "stack"} {
			for _, q := range updQueries {
				ref := fetch(t, rebuilt, q, strategy, 1)
				for _, parallel := range []int{0, 2, 4} {
					if got := fetch(t, incremental, q, strategy, parallel); got != ref {
						t.Errorf("incremental server: %q strategy=%s parallel=%d diverged from rebuilt index\nincremental: %s\nrebuilt:     %s",
							q, strategy, parallel, got, ref)
					}
					if got := fetch(t, rebuilt, q, strategy, parallel); got != ref {
						t.Errorf("rebuilt server: %q strategy=%s parallel=%d nondeterministic", q, strategy, parallel)
					}
				}
			}
		}
	})
}
