package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"xrefine/internal/core"
	"xrefine/internal/datagen"
)

// TestSearchByteIdenticalAcrossConfigs is the differential guarantee of
// the hardening work: with no deadline, budget, or fault configured, the
// /search body must be byte-for-byte what the unhardened server returns —
// for every strategy, at every parallelism, and on a server whose limits
// exist but are too generous to fire. The degraded fields, the context
// plumbing, and the admission gate must be invisible until they trigger.
func TestSearchByteIdenticalAcrossConfigs(t *testing.T) {
	doc, err := datagen.DBLPDocument(datagen.DBLPConfig{Authors: 120, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Separate engines per server so caches and counters cannot leak
	// state across the comparison.
	bare := New(core.NewFromDocument(doc, nil))
	hardened := NewWithConfig(
		core.NewFromDocument(doc, &core.Config{
			Timeout:       time.Hour,
			PostingBudget: 1 << 40,
		}),
		Config{Timeout: time.Hour, MaxInFlight: 128},
	)
	// A slowlog threshold arms a trace on every query: the span plumbing
	// through refine/slca/index must not perturb the response bytes.
	traced := NewWithConfig(core.NewFromDocument(doc, nil),
		Config{SlowLogThreshold: time.Nanosecond})

	queries := []string{
		"database query",
		"databse quary",     // misspellings force refinement
		"keyword serch xml", // partial mismatch
		"twig matching pattern",
	}
	fetch := func(t *testing.T, s *Server, q, strategy string, parallel int) string {
		t.Helper()
		v := url.Values{"q": {q}, "strategy": {strategy}}
		if parallel > 0 {
			v.Set("parallel", fmt.Sprint(parallel))
		}
		req := httptest.NewRequest(http.MethodGet, "/search?"+v.Encode(), nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s strategy=%s parallel=%d: %d %s", q, strategy, parallel, rec.Code, rec.Body.String())
		}
		return rec.Body.String()
	}
	for _, strategy := range []string{"partition", "sle", "stack"} {
		for _, q := range queries {
			ref := fetch(t, bare, q, strategy, 1)
			for _, parallel := range []int{0, 2, 4} {
				if got := fetch(t, bare, q, strategy, parallel); got != ref {
					t.Errorf("bare server: %q strategy=%s parallel=%d diverged from sequential", q, strategy, parallel)
				}
				if got := fetch(t, hardened, q, strategy, parallel); got != ref {
					t.Errorf("hardened server: %q strategy=%s parallel=%d diverged from bare sequential", q, strategy, parallel)
				}
				if got := fetch(t, traced, q, strategy, parallel); got != ref {
					t.Errorf("traced server: %q strategy=%s parallel=%d diverged from bare sequential", q, strategy, parallel)
				}
			}
		}
	}
}
