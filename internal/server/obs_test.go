package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"xrefine/internal/core"
	"xrefine/internal/obs"
)

// TestMetricsEndpoint: /metrics serves a well-formed Prometheus text
// exposition carrying both the engine families and the HTTP-layer
// families, under the standard content type.
func TestMetricsEndpoint(t *testing.T) {
	s := testServer(t)
	if rec, _ := get(t, s, "/search?q=databse"); rec.Code != http.StatusOK {
		t.Fatalf("search = %d", rec.Code)
	}

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	exp, err := obs.ParsePrometheus(rec.Body)
	if err != nil {
		t.Fatalf("malformed exposition: %v", err)
	}
	have := make(map[string]bool)
	for _, f := range exp.Families() {
		have[f] = true
	}
	for _, want := range []string{
		"xrefine_engine_queries_total",
		"xrefine_engine_query_seconds",
		"xrefine_refine_partitions_total",
		"xrefine_slca_calls_total",
		"xrefine_index_list_loads_total",
		"xrefine_http_requests_total",
		"xrefine_http_request_seconds",
		"xrefine_http_inflight",
	} {
		if !have[want] {
			t.Errorf("missing family %s", want)
		}
	}
	// The search above must have been counted with its route and code.
	for _, sm := range exp.Samples {
		if sm.Name == "xrefine_http_requests_total" &&
			sm.Labels["route"] == "/search" && sm.Labels["code"] == "200" {
			if sm.Value < 1 {
				t.Errorf("requests_total{/search,200} = %v", sm.Value)
			}
			return
		}
	}
	t.Error("no xrefine_http_requests_total{route=/search,code=200} sample")
}

// TestMetricsNotFoundWhenDisabled: an engine built with DisableMetrics
// leaves the server without a registry; /metrics must 404, not panic.
func TestMetricsNotFoundWhenDisabled(t *testing.T) {
	s := New(testEngine(t, &core.Config{DisableMetrics: true}))
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Errorf("/metrics with DisableMetrics = %d, want 404", rec.Code)
	}
}

// explainTree pulls the explain span tree out of a decoded /search body.
func explainTree(t *testing.T, body map[string]any) map[string]any {
	t.Helper()
	tree, ok := body["explain"].(map[string]any)
	if !ok {
		t.Fatalf("no explain object in body: %v", body)
	}
	return tree
}

// TestExplainSpanTree: explain=1 attaches the span tree to the /search
// response; the same query without the flag must not leak the key. On a
// sequential engine the stages are disjoint, so child durations must sum
// to no more than the root duration.
func TestExplainSpanTree(t *testing.T) {
	s := New(testEngine(t, &core.Config{Parallelism: 1}))
	rec, body := get(t, s, "/search?q=databse&explain=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("search = %d", rec.Code)
	}
	tree := explainTree(t, body)
	if tree["name"] != "query" {
		t.Errorf("root span = %v, want query", tree["name"])
	}
	root := tree["duration_ns"].(float64)
	children, _ := tree["children"].([]any)
	if len(children) == 0 {
		t.Fatal("explain tree has no children")
	}
	var sum float64
	names := make(map[string]bool)
	for _, c := range children {
		cm := c.(map[string]any)
		sum += cm["duration_ns"].(float64)
		names[cm["name"].(string)] = true
	}
	if sum > root {
		t.Errorf("child durations sum %v exceeds root %v", sum, root)
	}
	for _, want := range []string{"tokenize", "prepare", "rank"} {
		if !names[want] {
			t.Errorf("explain tree missing %q span; have %v", want, names)
		}
	}
	found := false
	for n := range names {
		if strings.HasPrefix(n, "refine:") {
			found = true
		}
	}
	if !found {
		t.Errorf("explain tree missing refine:* span; have %v", names)
	}

	rec, _ = get(t, s, "/search?q=databse")
	if strings.Contains(rec.Body.String(), "explain") {
		t.Error("no-explain response leaked an explain key")
	}
}

// TestOpsSurfacesBypassStuckQuery: with MaxInFlight=1 and the only slot
// held by a request parked inside the handler, the ops surfaces must
// still answer — they sit outside both the admission gate and the
// timeout middleware.
func TestOpsSurfacesBypassStuckQuery(t *testing.T) {
	s := NewWithConfig(testEngine(t, nil), Config{
		MaxInFlight:      1,
		Timeout:          50 * time.Millisecond,
		SlowLogThreshold: time.Hour, // slowlog route enabled, ring stays empty
	})
	entered := make(chan struct{})
	release := make(chan struct{})
	blocked := s.guard(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		w.WriteHeader(http.StatusOK)
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rec := httptest.NewRecorder()
		blocked(rec, httptest.NewRequest(http.MethodGet, "/search?q=database", nil))
	}()
	<-entered
	defer func() { close(release); wg.Wait() }()

	// Poll /healthz until well past the request timeout, asserting on
	// every probe: the bypass must be structural — holding for the whole
	// window, not just after one lucky fixed-length sleep.
	deadline := time.Now().Add(3 * 50 * time.Millisecond)
	for probes := 0; time.Now().Before(deadline) || probes == 0; probes++ {
		if rec, body := get(t, s, "/healthz"); rec.Code != http.StatusOK || body["status"] != "ok" {
			t.Fatalf("/healthz under saturation (probe %d) = %d %v", probes, rec.Code, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Errorf("/metrics under saturation = %d", rec.Code)
	}
	if _, err := obs.ParsePrometheus(rec.Body); err != nil {
		t.Errorf("/metrics under saturation malformed: %v", err)
	}
	if rec, _ := get(t, s, "/debug/slowlog"); rec.Code != http.StatusOK {
		t.Errorf("/debug/slowlog under saturation = %d", rec.Code)
	}
	// Sanity: the query path itself is saturated right now.
	if rec, _ := get(t, s, "/search?q=database"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("query under saturation = %d, want 503", rec.Code)
	}
}

// TestSlowlogRing: with a zero-ish threshold every query lands in the
// ring, newest first, each entry carrying its span tree.
func TestSlowlogRing(t *testing.T) {
	s := NewWithConfig(testEngine(t, nil), Config{SlowLogThreshold: time.Nanosecond})
	for _, q := range []string{"database", "keyword"} {
		if rec, _ := get(t, s, "/search?q="+q); rec.Code != http.StatusOK {
			t.Fatalf("search %s = %d", q, rec.Code)
		}
	}
	rec, body := get(t, s, "/debug/slowlog")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/slowlog = %d", rec.Code)
	}
	entries, _ := body["entries"].([]any)
	if len(entries) != 2 {
		t.Fatalf("slowlog entries = %d, want 2", len(entries))
	}
	newest := entries[0].(map[string]any)
	if newest["query"] != "keyword" {
		t.Errorf("newest entry query = %v, want keyword (newest first)", newest["query"])
	}
	trace, ok := newest["trace"].(map[string]any)
	if !ok || trace["name"] != "query" {
		t.Errorf("slowlog entry missing span tree: %v", newest)
	}
}

// TestSlowlogNotFoundWhenDisabled: without a threshold the route 404s.
func TestSlowlogNotFoundWhenDisabled(t *testing.T) {
	s := testServer(t)
	if rec, _ := get(t, s, "/debug/slowlog"); rec.Code != http.StatusNotFound {
		t.Errorf("/debug/slowlog without threshold = %d, want 404", rec.Code)
	}
}

// TestHealthzMetricsSnapshot: /healthz keeps its original top-level keys
// and now also embeds the registry snapshot under "metrics".
func TestHealthzMetricsSnapshot(t *testing.T) {
	s := testServer(t)
	if rec, _ := get(t, s, "/search?q=databse"); rec.Code != http.StatusOK {
		t.Fatal("search failed")
	}
	_, body := get(t, s, "/healthz")
	for _, k := range []string{"status", "queries", "refined", "shed", "panics", "degraded"} {
		if _, ok := body[k]; !ok {
			t.Errorf("healthz missing legacy key %q", k)
		}
	}
	m, ok := body["metrics"].(map[string]any)
	if !ok {
		t.Fatalf("healthz missing metrics snapshot: %v", body)
	}
	if _, ok := m["xrefine_engine_queries_total"]; !ok {
		t.Errorf("metrics snapshot missing engine counter: %v", m)
	}
}

// TestPprofGated: the pprof mux is mounted only on request.
func TestPprofGated(t *testing.T) {
	plain := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/debug/pprof/cmdline", nil)
	rec := httptest.NewRecorder()
	plain.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Errorf("pprof without -pprof = %d, want 404", rec.Code)
	}

	on := NewWithConfig(testEngine(t, nil), Config{EnablePprof: true})
	rec = httptest.NewRecorder()
	on.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/cmdline", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("pprof cmdline = %d, want 200", rec.Code)
	}
}
