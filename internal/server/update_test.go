package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"xrefine/internal/core"
	"xrefine/internal/kvstore"
	"xrefine/internal/xmltree"
)

func postUpdate(t *testing.T, s *Server, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/update", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var out map[string]any
	if rec.Body.Len() > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("/update: bad JSON: %v\n%s", err, rec.Body.String())
		}
	}
	return rec, out
}

func TestUpdateEndpoint(t *testing.T) {
	s := testServer(t)

	// The new content must be invisible before the update...
	rec, body := get(t, s, "/search?q=epoch+sentinel")
	if rec.Code != http.StatusOK {
		t.Fatalf("pre-update search = %d", rec.Code)
	}
	if !body["need_refine"].(bool) {
		t.Fatal("sentinel terms matched before the update was applied")
	}

	rec, out := postUpdate(t, s, `{"ops":[
		{"op":"insert","parent":"0","xml":"<author><publications><paper><title>epoch sentinel paper</title></paper></publications></author>"}
	]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("/update = %d %s", rec.Code, rec.Body.String())
	}
	if out["epoch"].(float64) != 1 || out["insert_ops"].(float64) != 1 {
		t.Fatalf("/update body = %v", out)
	}

	// ...and queryable right after, with no server restart.
	rec, body = get(t, s, "/search?q=epoch+sentinel")
	if rec.Code != http.StatusOK || body["need_refine"].(bool) {
		t.Fatalf("post-update search = %d %v", rec.Code, body)
	}

	// Healthz reports the new epoch and the applied work.
	rec, health := get(t, s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}
	if health["epoch"].(float64) != 1 || health["applied_batches"].(float64) != 1 {
		t.Fatalf("healthz after update = %v", health)
	}
	if health["live_updates"].(bool) {
		t.Error("in-memory server claims live persistence")
	}
}

func TestUpdateEndpointRejections(t *testing.T) {
	s := testServer(t)
	cases := []struct {
		name, method, body string
		want               int
	}{
		{"get", http.MethodGet, "", http.StatusMethodNotAllowed},
		{"malformed json", http.MethodPost, `{"ops":[`, http.StatusBadRequest},
		{"unknown field", http.MethodPost, `{"operations":[]}`, http.StatusBadRequest},
		{"empty batch", http.MethodPost, `{"ops":[]}`, http.StatusBadRequest},
		{"unknown op", http.MethodPost, `{"ops":[{"op":"upsert","parent":"0"}]}`, http.StatusBadRequest},
		{"insert without xml", http.MethodPost, `{"ops":[{"op":"insert","parent":"0"}]}`, http.StatusBadRequest},
		{"bad dewey label", http.MethodPost, `{"ops":[{"op":"delete","target":"zero"}]}`, http.StatusBadRequest},
		{"missing target", http.MethodPost, `{"ops":[{"op":"delete","target":"0.999"}]}`, http.StatusUnprocessableEntity},
		{"root delete", http.MethodPost, `{"ops":[{"op":"delete","target":"0"}]}`, http.StatusUnprocessableEntity},
		{"bad fragment", http.MethodPost, `{"ops":[{"op":"insert","parent":"0","xml":"<open>"}]}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(tc.method, "/update", strings.NewReader(tc.body))
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != tc.want {
				t.Fatalf("%s %q = %d, want %d (%s)", tc.method, tc.body, rec.Code, tc.want, rec.Body.String())
			}
		})
	}
	// None of the rejected batches may have advanced the epoch.
	if _, health := get(t, s, "/healthz"); health["epoch"].(float64) != 0 {
		t.Fatalf("rejected batches advanced the epoch: %v", health)
	}
}

// TestUpdateEndpointLivePersists drives the full production path: a store
// seeded on disk, a live server applying updates over HTTP, and a second
// server opened from the same store observing the committed epoch.
func TestUpdateEndpointLivePersists(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ix.kv")
	wal := filepath.Join(dir, "ix.wal")
	doc, err := xmltree.ParseString(
		"<bib><author><publications><paper><title>database query refinement</title></paper></publications></author></bib>", nil)
	if err != nil {
		t.Fatal(err)
	}
	seed, err := kvstore.Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewFromDocument(doc, nil)
	if err := eng.SaveIndexWithDocument(seed); err != nil {
		t.Fatal(err)
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}

	store, err := kvstore.Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	live, err := core.OpenLive(store, wal, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := New(live)
	rec, out := postUpdate(t, s, `{"ops":[
		{"op":"insert","parent":"0","xml":"<author><publications><paper><title>durable sentinel</title></paper></publications></author>"}
	]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("/update = %d %s", rec.Code, rec.Body.String())
	}
	if out["wal_bytes"].(float64) <= 0 {
		t.Fatalf("live update reported no WAL write: %v", out)
	}
	if _, health := get(t, s, "/healthz"); health["live_updates"] != true {
		t.Fatalf("live server healthz = %v", health)
	}
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := kvstore.Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	reopened, err := core.OpenLive(store2, wal, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	s2 := New(reopened)
	rec, body := get(t, s2, "/search?q=durable+sentinel")
	if rec.Code != http.StatusOK || body["need_refine"].(bool) {
		t.Fatalf("reopened server lost the update: %d %v", rec.Code, body)
	}
	if st := reopened.UpdateStats(); st.Epoch != 1 || st.ReplayedBatches != 0 {
		t.Fatalf("reopened stats = %+v, want epoch 1 with no replay", st)
	}
}

// TestUpdateEndpointShedsUnderGate verifies updates share the admission
// gate with queries: a full gate sheds POST /update with 503 rather than
// queueing writers behind it.
func TestUpdateEndpointShedsUnderGate(t *testing.T) {
	s := NewFromBackend(testServer(t).eng, Config{MaxInFlight: 1})
	// Occupy the single slot directly; the next request must shed.
	s.gate <- struct{}{}
	defer func() { <-s.gate }()
	rec, _ := postUpdate(t, s, `{"ops":[{"op":"delete","target":"0.1"}]}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("gated /update = %d, want 503", rec.Code)
	}
	if _, health := get(t, s, "/healthz"); health["epoch"].(float64) != 0 {
		t.Fatal("shed update still applied")
	}
}
