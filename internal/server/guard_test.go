package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"xrefine/internal/core"
	"xrefine/internal/xmltree"
)

func testEngine(t *testing.T, cfg *core.Config) *core.Engine {
	t.Helper()
	// Two authors -> two document partitions, so a posting budget of 1 is
	// exhausted after the first partition and the walk degrades.
	doc, err := xmltree.ParseString(`
<bib>
  <author><publications>
    <paper><title>database systems</title><year>2003</year></paper>
    <paper><title>keyword search</title><year>2005</year></paper>
  </publications></author>
  <author><publications>
    <paper><title>database design</title><year>2006</year></paper>
  </publications></author>
</bib>`, nil)
	if err != nil {
		t.Fatal(err)
	}
	return core.NewFromDocument(doc, cfg)
}

// TestShedOverCapacity: with MaxInFlight=1 and one request parked inside
// the handler, a second request must be rejected 503 with Retry-After —
// not queued, not served.
func TestShedOverCapacity(t *testing.T) {
	s := NewWithConfig(testEngine(t, nil), Config{MaxInFlight: 1})
	entered := make(chan struct{})
	release := make(chan struct{})
	// Occupy the only slot via a handler that blocks until released. Use
	// the real guard around a stand-in handler so the gate logic under
	// test is the production one.
	blocked := s.guard(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		w.WriteHeader(http.StatusOK)
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rec := httptest.NewRecorder()
		blocked(rec, httptest.NewRequest(http.MethodGet, "/search?q=database", nil))
	}()
	<-entered

	rec, body := get(t, s, "/search?q=database")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("code = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	if body["error"] == nil {
		t.Error("shed response missing error body")
	}
	if s.Shed() != 1 {
		t.Errorf("Shed() = %d, want 1", s.Shed())
	}
	close(release)
	wg.Wait()

	// Slot free again: the next request must be served.
	if rec, _ := get(t, s, "/search?q=database"); rec.Code != http.StatusOK {
		t.Errorf("post-release request = %d, want 200", rec.Code)
	}
}

// TestPanicRecovery: a panicking handler yields a 500 for that request and
// leaves the server (and its gate slot) usable.
func TestPanicRecovery(t *testing.T) {
	s := NewWithConfig(testEngine(t, nil), Config{MaxInFlight: 1})
	boom := s.guard(func(w http.ResponseWriter, r *http.Request) {
		panic("handler bug")
	})
	rec := httptest.NewRecorder()
	boom(rec, httptest.NewRequest(http.MethodGet, "/search?q=x", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("code = %d, want 500", rec.Code)
	}
	if s.Panics() != 1 {
		t.Errorf("Panics() = %d, want 1", s.Panics())
	}
	// The gate slot must have been returned despite the panic.
	if rec, _ := get(t, s, "/search?q=database"); rec.Code != http.StatusOK {
		t.Errorf("request after panic = %d, want 200", rec.Code)
	}
}

// TestDegradedFieldsInJSON: a budget-constrained engine surfaces
// degraded/degraded_reason in the /search body; an unconstrained one omits
// both keys entirely (byte-compat with the pre-hardening format).
func TestDegradedFieldsInJSON(t *testing.T) {
	s := New(testEngine(t, &core.Config{PostingBudget: 1}))
	rec, body := get(t, s, "/search?q=databse")
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d: %v", rec.Code, body)
	}
	if body["degraded"] != true {
		t.Errorf("degraded = %v, want true", body["degraded"])
	}
	if body["degraded_reason"] != "posting-budget" {
		t.Errorf("degraded_reason = %v", body["degraded_reason"])
	}

	sf := New(testEngine(t, nil))
	rec, _ = get(t, sf, "/search?q=databse")
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d", rec.Code)
	}
	if strings.Contains(rec.Body.String(), "degraded") {
		t.Error("unconstrained response leaked a degraded key")
	}
}

// TestHealthzHardeningCounters: the new counters and limits are reported.
func TestHealthzHardeningCounters(t *testing.T) {
	s := NewWithConfig(testEngine(t, &core.Config{PostingBudget: 1}),
		Config{MaxInFlight: 7, Timeout: 1500 * time.Millisecond})
	if rec, _ := get(t, s, "/search?q=databse"); rec.Code != http.StatusOK {
		t.Fatalf("search failed: %d", rec.Code)
	}
	_, body := get(t, s, "/healthz")
	if body["degraded"].(float64) != 1 {
		t.Errorf("degraded = %v, want 1", body["degraded"])
	}
	if body["shed"].(float64) != 0 || body["panics"].(float64) != 0 {
		t.Errorf("shed/panics = %v/%v, want 0/0", body["shed"], body["panics"])
	}
	if body["max_inflight"].(float64) != 7 {
		t.Errorf("max_inflight = %v, want 7", body["max_inflight"])
	}
	if body["timeout_ms"].(float64) != 1500 {
		t.Errorf("timeout_ms = %v, want 1500", body["timeout_ms"])
	}
}

// TestHealthzExemptFromGate: health probes must answer even when every
// query slot is taken.
func TestHealthzExemptFromGate(t *testing.T) {
	s := NewWithConfig(testEngine(t, nil), Config{MaxInFlight: 1})
	s.gate <- struct{}{} // saturate the gate
	defer func() { <-s.gate }()
	rec, body := get(t, s, "/healthz")
	if rec.Code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz under saturation = %d %v", rec.Code, body)
	}
	// A query request at the same moment is shed.
	if rec, _ := get(t, s, "/search?q=database"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("query under saturation = %d, want 503", rec.Code)
	}
}
