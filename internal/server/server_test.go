package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"xrefine/internal/core"
	"xrefine/internal/xmltree"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	var b strings.Builder
	b.WriteString("<bib>")
	for a := 0; a < 20; a++ {
		b.WriteString("<author><publications>")
		for p := 0; p < 3; p++ {
			fmt.Fprintf(&b, "<paper><title>database systems %d</title><year>%d</year></paper>", p, 2000+p)
		}
		b.WriteString("</publications></author>")
	}
	b.WriteString("</bib>")
	doc, err := xmltree.ParseString(b.String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return New(core.NewFromDocument(doc, nil))
}

func get(t *testing.T, s *Server, path string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("%s: bad JSON: %v\n%s", path, err, rec.Body.String())
	}
	return rec, body
}

func TestHealthz(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/healthz")
	if rec.Code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz = %d %v", rec.Code, body)
	}
	if body["nodes"].(float64) <= 0 {
		t.Error("node count missing")
	}
}

func TestSearchDirect(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/search?q=database+systems")
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d", rec.Code)
	}
	if body["need_refine"].(bool) {
		t.Error("clean query flagged for refinement")
	}
	queries := body["queries"].([]any)
	if len(queries) != 1 {
		t.Fatalf("queries = %v", queries)
	}
	q0 := queries[0].(map[string]any)
	if !q0["is_original"].(bool) || len(q0["results"].([]any)) == 0 {
		t.Fatalf("original query body = %v", q0)
	}
	// Snippets present because the engine holds the document.
	r0 := q0["results"].([]any)[0].(map[string]any)
	if r0["snippet"] == nil || r0["snippet"] == "" {
		t.Error("snippet missing")
	}
}

func TestSearchRefines(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/search?q=databse+systems&k=2")
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d body %v", rec.Code, body)
	}
	if !body["need_refine"].(bool) {
		t.Fatal("typo query not flagged")
	}
	queries := body["queries"].([]any)
	if len(queries) == 0 || len(queries) > 2 {
		t.Fatalf("queries = %d", len(queries))
	}
	q0 := queries[0].(map[string]any)
	kws := q0["keywords"].([]any)
	joined := ""
	for _, k := range kws {
		joined += k.(string) + " "
	}
	if !strings.Contains(joined, "database") {
		t.Errorf("top refinement = %v", kws)
	}
}

func TestSearchStrategies(t *testing.T) {
	s := testServer(t)
	for _, strat := range []string{"partition", "sle", "stack"} {
		rec, _ := get(t, s, "/search?q=databse&strategy="+strat)
		if rec.Code != http.StatusOK {
			t.Errorf("strategy %s: code %d", strat, rec.Code)
		}
	}
}

func TestSearchErrors(t *testing.T) {
	s := testServer(t)
	cases := map[string]int{
		"/search":                    http.StatusBadRequest,
		"/search?q=":                 http.StatusBadRequest,
		"/search?q=x&k=notanumber":   http.StatusBadRequest,
		"/search?q=x&strategy=bogus": http.StatusBadRequest,
		"/narrow":                    http.StatusBadRequest,
		"/narrow?q=x&max=notanumber": http.StatusBadRequest,
	}
	for path, want := range cases {
		rec, body := get(t, s, path)
		if rec.Code != want {
			t.Errorf("%s: code = %d, want %d (%v)", path, rec.Code, want, body)
		}
		if body["error"] == nil {
			t.Errorf("%s: no error message", path)
		}
	}
	// wrong method
	req := httptest.NewRequest(http.MethodPost, "/search?q=x", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /search = %d", rec.Code)
	}
}

func TestNarrowEndpoint(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/narrow?q=database&max=5&k=2")
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d %v", rec.Code, body)
	}
	if !body["too_broad"].(bool) {
		t.Fatalf("database not broad: %v", body)
	}
	if body["original_results"].(float64) <= 5 {
		t.Error("original_results inconsistent with too_broad")
	}
}

func TestNarrowWithoutDocument(t *testing.T) {
	// Engine loaded from a bare index: /narrow must answer 501.
	s := testServer(t)
	ix := s.eng.Index()
	bare := New(core.NewFromIndex(ix, nil))
	rec, _ := get(t, bare, "/narrow?q=database")
	if rec.Code != http.StatusNotImplemented {
		t.Errorf("document-less narrow = %d", rec.Code)
	}
}

func TestConcurrentRequests(t *testing.T) {
	s := testServer(t)
	done := make(chan error, 16)
	for g := 0; g < 16; g++ {
		go func(i int) {
			path := "/search?q=databse+systems"
			if i%2 == 0 {
				path = "/search?q=database"
			}
			req := httptest.NewRequest(http.MethodGet, path, nil)
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				done <- fmt.Errorf("code %d", rec.Code)
				return
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 16; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestCompleteEndpoint(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/complete?q=data&k=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d", rec.Code)
	}
	comps := body["completions"].([]any)
	if len(comps) == 0 || comps[0].(string) != "database" {
		t.Errorf("completions = %v", comps)
	}
	// no matches yields an empty array, not null
	_, body2 := get(t, s, "/complete?q=zzzz")
	if body2["completions"] == nil {
		t.Error("null completions")
	}
	rec3, _ := get(t, s, "/complete")
	if rec3.Code != http.StatusBadRequest {
		t.Errorf("missing q = %d", rec3.Code)
	}
}

func TestHealthzCounters(t *testing.T) {
	s := testServer(t)
	get(t, s, "/search?q=databse")
	get(t, s, "/search?q=database")
	_, body := get(t, s, "/healthz")
	if body["queries"].(float64) < 2 {
		t.Errorf("queries counter = %v", body["queries"])
	}
	if body["refined"].(float64) < 1 {
		t.Errorf("refined counter = %v", body["refined"])
	}
}
