// Package eval implements the effectiveness methodology of Section VIII-C:
// Cumulated Gain evaluation (Järvelin & Kekäläinen [27]) over graded
// relevance judgements on a four-point scale.
//
// The paper recruits six human judges. This reproduction substitutes a
// simulated judge with access to ground truth the original study lacked:
// every workload query is a *corruption* of a known intended query (see
// datagen.Workload), so a refined query's relevance is measured by how well
// its result set recovers the intended query's result set, mapped onto the
// same 0-1-2-3 scale the paper uses ("moderate relevance scores, as our
// users are assumed to be patient"). Per-judge noise models inter-judge
// disagreement.
package eval

import (
	"fmt"
	"math"
	"math/rand"
)

// Relevance is the four-point scale of Section VIII-C.
type Relevance int

const (
	// Irrelevant: no overlap with the intention.
	Irrelevant Relevance = iota
	// Marginal: few results partially match the intention.
	Marginal
	// Fair: some results fully match the intention.
	Fair
	// High: almost all results contain the intended topic.
	High
)

// String names the grade.
func (r Relevance) String() string {
	switch r {
	case Irrelevant:
		return "irrelevant"
	case Marginal:
		return "marginally relevant"
	case Fair:
		return "fairly relevant"
	case High:
		return "highly relevant"
	}
	return "unknown"
}

// CG turns a gain vector into its cumulated gain vector:
// CG[0] = G[0], CG[i] = CG[i-1] + G[i].
func CG(gains []float64) []float64 {
	out := make([]float64, len(gains))
	acc := 0.0
	for i, g := range gains {
		acc += g
		out[i] = acc
	}
	return out
}

// DCG computes the discounted variant of [27]: gains below rank b (the
// paper's reference uses b = 2) are divided by log_b(rank), modeling user
// patience decaying down the list. Ranks are 1-based; ranks 1 and 2 are
// undiscounted for b = 2.
func DCG(gains []float64, b float64) []float64 {
	if b <= 1 {
		b = 2
	}
	out := make([]float64, len(gains))
	acc := 0.0
	logB := math.Log(b)
	for i, g := range gains {
		rank := float64(i + 1)
		if rank > b {
			g /= math.Log(rank) / logB
		}
		acc += g
		out[i] = acc
	}
	return out
}

// IdealGains returns the best possible gain vector of the given depth: all
// positions at the highest grade. Used to normalize DCG into nDCG.
func IdealGains(depth int) []float64 {
	out := make([]float64, depth)
	for i := range out {
		out[i] = float64(High)
	}
	return out
}

// NDCG normalizes a DCG vector by the ideal DCG at the same depth,
// yielding values in [0,1].
func NDCG(gains []float64, b float64) []float64 {
	dcg := DCG(gains, b)
	ideal := DCG(IdealGains(len(gains)), b)
	out := make([]float64, len(dcg))
	for i := range dcg {
		if ideal[i] > 0 {
			out[i] = dcg[i] / ideal[i]
		}
	}
	return out
}

// Judge is a simulated relevance assessor.
type Judge struct {
	noise float64
	rnd   *rand.Rand
}

// NewJudges creates n deterministic judges. Noise is the probability a
// judge shifts a grade by one point (either way), modeling disagreement;
// the paper's judges agreed on rank-1 but differed below.
func NewJudges(n int, seed int64, noise float64) []*Judge {
	out := make([]*Judge, n)
	for i := range out {
		out[i] = &Judge{noise: noise, rnd: rand.New(rand.NewSource(seed + int64(i)*7919))}
	}
	return out
}

// F1 computes the balanced overlap of two result-identity sets.
func F1(intended, got map[string]bool) float64 {
	if len(intended) == 0 || len(got) == 0 {
		return 0
	}
	inter := 0
	for k := range got {
		if intended[k] {
			inter++
		}
	}
	if inter == 0 {
		return 0
	}
	p := float64(inter) / float64(len(got))
	r := float64(inter) / float64(len(intended))
	return 2 * p * r / (p + r)
}

// Score grades a refined query's result set against the intended result
// set: F1 >= 0.8 is highly relevant, >= 0.45 fairly, > 0.05 marginally,
// else irrelevant — then per-judge noise perturbs the grade.
func (j *Judge) Score(intended, got map[string]bool) Relevance {
	f1 := F1(intended, got)
	var base Relevance
	switch {
	case f1 >= 0.8:
		base = High
	case f1 >= 0.45:
		base = Fair
	case f1 > 0.05:
		base = Marginal
	default:
		base = Irrelevant
	}
	if j.noise > 0 && j.rnd.Float64() < j.noise {
		if j.rnd.Intn(2) == 0 {
			base++
		} else {
			base--
		}
		if base < Irrelevant {
			base = Irrelevant
		}
		if base > High {
			base = High
		}
	}
	return base
}

// GainVector grades a ranked list of result sets, padding with zero gains
// to depth so CG vectors of different queries align.
func (j *Judge) GainVector(intended map[string]bool, ranked []map[string]bool, depth int) []float64 {
	out := make([]float64, depth)
	for i := 0; i < depth && i < len(ranked); i++ {
		out[i] = float64(j.Score(intended, ranked[i]))
	}
	return out
}

// AverageCG averages the cumulated gain vectors of all judges for one
// ranked list — the quantity Tables IX and X report (averaged again over
// queries by the caller).
func AverageCG(judges []*Judge, intended map[string]bool, ranked []map[string]bool, depth int) ([]float64, error) {
	if len(judges) == 0 {
		return nil, fmt.Errorf("eval: no judges")
	}
	if depth < 1 {
		return nil, fmt.Errorf("eval: depth %d", depth)
	}
	acc := make([]float64, depth)
	for _, j := range judges {
		cg := CG(j.GainVector(intended, ranked, depth))
		for i, v := range cg {
			acc[i] += v
		}
	}
	for i := range acc {
		acc[i] /= float64(len(judges))
	}
	return acc, nil
}

// Rank1Agreement reports the fraction of judges who grade the rank-1
// result set at least as relevant as every lower-ranked set — the paper's
// "all 6 judges have an agreement that the rank-1 refined query is the
// most appropriate refinement" made measurable.
func Rank1Agreement(judges []*Judge, intended map[string]bool, ranked []map[string]bool) float64 {
	if len(judges) == 0 || len(ranked) == 0 {
		return 0
	}
	agree := 0
	for _, j := range judges {
		top := j.Score(intended, ranked[0])
		best := true
		for _, r := range ranked[1:] {
			if j.Score(intended, r) > top {
				best = false
				break
			}
		}
		if best {
			agree++
		}
	}
	return float64(agree) / float64(len(judges))
}

// MeanVectors averages equal-length vectors element-wise — the per-query
// aggregation step of the effectiveness tables.
func MeanVectors(vs [][]float64) []float64 {
	if len(vs) == 0 {
		return nil
	}
	out := make([]float64, len(vs[0]))
	for _, v := range vs {
		for i := range out {
			out[i] += v[i]
		}
	}
	for i := range out {
		out[i] /= float64(len(vs))
	}
	return out
}
