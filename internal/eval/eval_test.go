package eval

import (
	"math"
	"testing"
)

func set(keys ...string) map[string]bool {
	m := make(map[string]bool, len(keys))
	for _, k := range keys {
		m[k] = true
	}
	return m
}

func TestCG(t *testing.T) {
	got := CG([]float64{3, 2, 0, 1})
	want := []float64{3, 5, 5, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CG = %v, want %v", got, want)
		}
	}
	if len(CG(nil)) != 0 {
		t.Error("CG(nil) nonempty")
	}
}

func TestF1(t *testing.T) {
	if f := F1(set("a", "b"), set("a", "b")); f != 1 {
		t.Errorf("perfect F1 = %v", f)
	}
	if f := F1(set("a", "b"), set("c")); f != 0 {
		t.Errorf("disjoint F1 = %v", f)
	}
	if f := F1(set(), set("a")); f != 0 {
		t.Errorf("empty intended F1 = %v", f)
	}
	// precision 1, recall 0.5 -> F1 = 2/3
	if f := F1(set("a", "b"), set("a")); math.Abs(f-2.0/3.0) > 1e-12 {
		t.Errorf("partial F1 = %v", f)
	}
}

func TestScoreGrades(t *testing.T) {
	j := NewJudges(1, 1, 0)[0]
	cases := []struct {
		intended, got map[string]bool
		want          Relevance
	}{
		{set("a", "b"), set("a", "b"), High},
		{set("a", "b"), set("a"), Fair},                                                  // F1 = 2/3
		{set("a", "b", "c", "d", "e", "f", "g", "h"), set("a", "x", "y", "z"), Marginal}, // F1 = 1/6
		{set("a"), set("z"), Irrelevant},
	}
	for i, c := range cases {
		if got := j.Score(c.intended, c.got); got != c.want {
			t.Errorf("case %d: score = %v, want %v", i, got, c.want)
		}
	}
}

func TestJudgeNoiseBounded(t *testing.T) {
	judges := NewJudges(4, 5, 0.5)
	for _, j := range judges {
		for i := 0; i < 200; i++ {
			s := j.Score(set("a"), set("a"))
			if s < Irrelevant || s > High {
				t.Fatalf("score out of scale: %v", s)
			}
		}
	}
}

func TestJudgesDeterministic(t *testing.T) {
	a := NewJudges(3, 42, 0.3)
	b := NewJudges(3, 42, 0.3)
	for i := range a {
		for trial := 0; trial < 50; trial++ {
			sa := a[i].Score(set("a", "b"), set("a"))
			sb := b[i].Score(set("a", "b"), set("a"))
			if sa != sb {
				t.Fatal("same-seed judges disagree")
			}
		}
	}
}

func TestGainVectorPadding(t *testing.T) {
	j := NewJudges(1, 1, 0)[0]
	g := j.GainVector(set("a"), []map[string]bool{set("a")}, 4)
	if len(g) != 4 || g[0] != 3 || g[1] != 0 {
		t.Errorf("gain vector = %v", g)
	}
}

func TestAverageCG(t *testing.T) {
	judges := NewJudges(6, 9, 0)
	ranked := []map[string]bool{set("a", "b"), set("a"), set("z")}
	cg, err := AverageCG(judges, set("a", "b"), ranked, 4)
	if err != nil {
		t.Fatal(err)
	}
	// noise-free judges agree: gains 3, 2, 0, 0 -> CG 3 5 5 5
	want := []float64{3, 5, 5, 5}
	for i := range want {
		if math.Abs(cg[i]-want[i]) > 1e-12 {
			t.Fatalf("CG = %v, want %v", cg, want)
		}
	}
	// CG must be non-decreasing always.
	for i := 1; i < len(cg); i++ {
		if cg[i] < cg[i-1] {
			t.Error("CG decreased")
		}
	}
	if _, err := AverageCG(nil, set("a"), ranked, 4); err == nil {
		t.Error("no judges accepted")
	}
	if _, err := AverageCG(judges, set("a"), ranked, 0); err == nil {
		t.Error("zero depth accepted")
	}
}

func TestMeanVectors(t *testing.T) {
	got := MeanVectors([][]float64{{2, 4}, {4, 8}})
	if got[0] != 3 || got[1] != 6 {
		t.Errorf("mean = %v", got)
	}
	if MeanVectors(nil) != nil {
		t.Error("mean of nothing should be nil")
	}
}

func TestRelevanceString(t *testing.T) {
	names := map[Relevance]string{
		Irrelevant: "irrelevant", Marginal: "marginally relevant",
		Fair: "fairly relevant", High: "highly relevant", Relevance(9): "unknown",
	}
	for r, want := range names {
		if r.String() != want {
			t.Errorf("%d.String() = %q", r, r.String())
		}
	}
}

func TestDCG(t *testing.T) {
	gains := []float64{3, 2, 3, 0}
	dcg := DCG(gains, 2)
	// ranks 1,2 undiscounted; rank 3 divided by log2(3); rank 4 by log2(4).
	want2 := 5.0
	if math.Abs(dcg[1]-want2) > 1e-12 {
		t.Errorf("DCG[2] = %v, want %v", dcg[1], want2)
	}
	want3 := 5 + 3/(math.Log(3)/math.Log(2))
	if math.Abs(dcg[2]-want3) > 1e-12 {
		t.Errorf("DCG[3] = %v, want %v", dcg[2], want3)
	}
	if dcg[3] != dcg[2] {
		t.Error("zero gain changed DCG")
	}
	// Discounting never increases the cumulated value.
	cg := CG(gains)
	for i := range cg {
		if dcg[i] > cg[i]+1e-12 {
			t.Errorf("DCG[%d] = %v exceeds CG %v", i, dcg[i], cg[i])
		}
	}
	// b <= 1 falls back to 2.
	fallback := DCG(gains, 0)
	for i := range fallback {
		if fallback[i] != dcg[i] {
			t.Error("fallback base differs")
		}
	}
}

func TestNDCG(t *testing.T) {
	perfect := NDCG(IdealGains(4), 2)
	for i, v := range perfect {
		if math.Abs(v-1) > 1e-12 {
			t.Errorf("perfect nDCG[%d] = %v", i, v)
		}
	}
	zero := NDCG([]float64{0, 0}, 2)
	for _, v := range zero {
		if v != 0 {
			t.Errorf("zero nDCG = %v", v)
		}
	}
	mixed := NDCG([]float64{3, 0}, 2)
	if mixed[0] != 1 || mixed[1] >= 1 || mixed[1] <= 0 {
		t.Errorf("mixed nDCG = %v", mixed)
	}
}

func TestRank1Agreement(t *testing.T) {
	judges := NewJudges(6, 1, 0)
	intended := set("a", "b")
	// rank-1 perfect, rank-2 partial: everyone agrees.
	if got := Rank1Agreement(judges, intended, []map[string]bool{set("a", "b"), set("a")}); got != 1 {
		t.Errorf("agreement = %v, want 1", got)
	}
	// rank-1 worse than rank-2: nobody agrees.
	if got := Rank1Agreement(judges, intended, []map[string]bool{set("z"), set("a", "b")}); got != 0 {
		t.Errorf("agreement = %v, want 0", got)
	}
	// degenerate inputs
	if Rank1Agreement(nil, intended, []map[string]bool{set("a")}) != 0 {
		t.Error("no judges should be 0")
	}
	if Rank1Agreement(judges, intended, nil) != 0 {
		t.Error("no ranking should be 0")
	}
	// single-entry ranking: trivially agreed.
	if got := Rank1Agreement(judges, intended, []map[string]bool{set("z")}); got != 1 {
		t.Errorf("single entry agreement = %v", got)
	}
}
