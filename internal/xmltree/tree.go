package xmltree

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"xrefine/internal/dewey"
	"xrefine/internal/tokenize"
)

// Node is one element (or attribute, when attributes are materialized) of
// the document tree.
type Node struct {
	// Tag is the normalized tag name.
	Tag string
	// Type is the interned prefix-path type of the node.
	Type *Type
	// ID is the node's Dewey label.
	ID dewey.ID
	// Parent is nil for the root.
	Parent *Node
	// Children holds child nodes in document order; the i-th child has
	// Dewey label ID.Child(i).
	Children []*Node
	// Text is the concatenated character data directly under the element
	// (not including descendant text), whitespace-trimmed.
	Text string
}

// Terms returns the normalized keyword terms of the node: its tag name plus
// every term of its direct text value. The tag comes first.
func (n *Node) Terms() []string {
	terms := make([]string, 0, 4)
	if t := tokenize.Tag(n.Tag); t != "" {
		terms = append(terms, t)
	}
	return append(terms, tokenize.Text(n.Text)...)
}

// Subtext concatenates all text in the node's subtree in document order,
// separated by single spaces. Used for snippets.
func (n *Node) Subtext() string {
	var b strings.Builder
	n.appendSubtext(&b)
	return b.String()
}

func (n *Node) appendSubtext(b *strings.Builder) {
	if n.Text != "" {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(n.Text)
	}
	for _, c := range n.Children {
		c.appendSubtext(b)
	}
}

// Snippet renders a short human-readable preview of the subtree: the tag,
// the Dewey label and up to max runes of subtree text.
func (n *Node) Snippet(max int) string {
	txt := n.Subtext()
	if r := []rune(txt); len(r) > max {
		txt = string(r[:max]) + "…"
	}
	return fmt.Sprintf("%s:%s %q", n.Tag, n.ID, txt)
}

// SnippetHighlight is Snippet with query terms wrapped in [brackets], so a
// terminal UI can show why the node matched. Terms are compared after
// normalization, the way the index matched them.
func (n *Node) SnippetHighlight(max int, terms []string) string {
	match := make(map[string]bool, len(terms))
	for _, t := range terms {
		match[t] = true
	}
	words := strings.Fields(n.Subtext())
	var b strings.Builder
	runes := 0
	truncated := false
	for i, w := range words {
		render := w
		if match[tokenize.Normalize(w)] {
			render = "[" + w + "]"
		}
		if i > 0 {
			runes++
		}
		runes += len([]rune(render))
		if runes > max {
			truncated = true
			break
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(render)
	}
	txt := b.String()
	if truncated {
		txt += "…"
	}
	return fmt.Sprintf("%s:%s %q", n.Tag, n.ID, txt)
}

// Document is a parsed XML document.
type Document struct {
	Root *Node
	// Types is the registry of node types observed in the document.
	Types *Registry
	// NodeCount is the total number of nodes including the root.
	NodeCount int
}

// Options configure parsing.
type Options struct {
	// AttributesAsNodes materializes each attribute as a child node whose
	// tag is the attribute name and whose text is the attribute value.
	// This matches how the paper's datasets (DBLP) expose keyworded data
	// like year="2003". Default true.
	AttributesAsNodes bool
	// MaxDepth aborts parsing of pathologically deep documents. Zero
	// means the default of 512.
	MaxDepth int
}

func (o *Options) withDefaults() Options {
	out := Options{AttributesAsNodes: true, MaxDepth: 512}
	if o != nil {
		out = *o
		if out.MaxDepth == 0 {
			out.MaxDepth = 512
		}
	}
	return out
}

// Parse reads an XML document from r and builds the tree. A nil opts uses
// defaults.
func Parse(r io.Reader, opts *Options) (*Document, error) {
	o := opts.withDefaults()
	dec := xml.NewDecoder(r)
	reg := NewRegistry()
	doc := &Document{Types: reg}

	var stack []*Node
	var text strings.Builder

	flushText := func() {
		if len(stack) == 0 {
			text.Reset()
			return
		}
		cur := stack[len(stack)-1]
		t := strings.TrimSpace(text.String())
		text.Reset()
		if t == "" {
			return
		}
		if cur.Text == "" {
			cur.Text = t
		} else {
			cur.Text += " " + t
		}
	}

	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			flushText()
			if len(stack) >= o.MaxDepth {
				return nil, fmt.Errorf("xmltree: document deeper than %d", o.MaxDepth)
			}
			tag := tokenize.Tag(t.Name.Local)
			if tag == "" {
				tag = "x"
			}
			var n *Node
			if len(stack) == 0 {
				if doc.Root != nil {
					return nil, errors.New("xmltree: multiple root elements")
				}
				n = &Node{Tag: tag, Type: reg.Intern(nil, tag), ID: dewey.Root()}
				doc.Root = n
			} else {
				p := stack[len(stack)-1]
				n = &Node{
					Tag:    tag,
					Type:   reg.Intern(p.Type, tag),
					ID:     p.ID.Child(uint32(len(p.Children))),
					Parent: p,
				}
				p.Children = append(p.Children, n)
			}
			doc.NodeCount++
			stack = append(stack, n)
			if o.AttributesAsNodes {
				for _, a := range t.Attr {
					atag := tokenize.Tag(a.Name.Local)
					if atag == "" || a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
						continue
					}
					an := &Node{
						Tag:    atag,
						Type:   reg.Intern(n.Type, atag),
						ID:     n.ID.Child(uint32(len(n.Children))),
						Parent: n,
						Text:   strings.TrimSpace(a.Value),
					}
					n.Children = append(n.Children, an)
					doc.NodeCount++
				}
			}
		case xml.EndElement:
			flushText()
			if len(stack) == 0 {
				return nil, errors.New("xmltree: unbalanced end element")
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			text.Write(t)
		}
	}
	if doc.Root == nil {
		return nil, errors.New("xmltree: no root element")
	}
	if len(stack) != 0 {
		return nil, errors.New("xmltree: unclosed elements at EOF")
	}
	return doc, nil
}

// ParseString is Parse over an in-memory document.
func ParseString(s string, opts *Options) (*Document, error) {
	return Parse(strings.NewReader(s), opts)
}

// Ord returns the node's child ordinal: the last component of its Dewey
// label. After subtree deletions the ordinals of a node's children may have
// gaps (labels of surviving siblings never shift), so the ordinal is not
// the position in the Children slice.
func (n *Node) Ord() uint32 { return n.ID[len(n.ID)-1] }

// ChildByOrd returns the child carrying the given ordinal. Children stay
// sorted by ordinal, so this is a binary search — positions and ordinals
// diverge once a deletion leaves a gap.
func (n *Node) ChildByOrd(ord uint32) (*Node, bool) {
	i := sort.Search(len(n.Children), func(i int) bool { return n.Children[i].Ord() >= ord })
	if i < len(n.Children) && n.Children[i].Ord() == ord {
		return n.Children[i], true
	}
	return nil, false
}

// NodeByID resolves a Dewey label to its node. It fails when the label does
// not name a node of this document.
func (d *Document) NodeByID(id dewey.ID) (*Node, bool) {
	if len(id) == 0 || id[0] != 0 || d.Root == nil {
		return nil, false
	}
	n := d.Root
	for _, c := range id[1:] {
		child, ok := n.ChildByOrd(c)
		if !ok {
			return nil, false
		}
		n = child
	}
	return n, true
}

// Walk visits every node in document order (pre-order). The walk descends
// into a node's children only when fn returns true for it.
func (d *Document) Walk(fn func(*Node) bool) {
	if d.Root == nil {
		return
	}
	var rec func(*Node)
	rec = func(n *Node) {
		if !fn(n) {
			return
		}
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(d.Root)
}

// Partitions returns the roots of the document partitions (Definition 6.1):
// the children of the document root, in document order.
func (d *Document) Partitions() []*Node {
	if d.Root == nil {
		return nil
	}
	return d.Root.Children
}
