package xmltree

import (
	"errors"
	"fmt"
)

// Tree mutation primitives for the live-update path (internal/mutate).
// Updates never modify a document that queries may be reading: the update
// path clones the current epoch's tree, grafts and detaches subtrees on
// the clone, and publishes the result as a new epoch.
//
// Labeling discipline: a deletion removes the subtree but never relabels
// surviving siblings (their ordinals keep gaps), and an insertion appends
// as the parent's last child under ordinal max+1. Stored labels therefore
// survive any update sequence unchanged, which is what makes an index
// rebuilt from the mutated document reproduce the incrementally-maintained
// index bit for bit (index.Build reads stored labels, it does not
// recompute them).

// Clone returns a deep copy of the document. Node structs are fresh (so
// the copy can be mutated while the original keeps serving), while the
// type registry, interned *Type values, and dewey.ID slices are shared —
// all three are immutable-once-created.
func (d *Document) Clone() *Document {
	if d == nil || d.Root == nil {
		return nil
	}
	out := &Document{Types: d.Types, NodeCount: d.NodeCount}
	var rec func(src *Node, parent *Node) *Node
	rec = func(src *Node, parent *Node) *Node {
		n := &Node{
			Tag:    src.Tag,
			Type:   src.Type,
			ID:     src.ID,
			Parent: parent,
			Text:   src.Text,
		}
		if len(src.Children) > 0 {
			n.Children = make([]*Node, 0, len(src.Children))
			for _, c := range src.Children {
				n.Children = append(n.Children, rec(c, n))
			}
		}
		return n
	}
	out.Root = rec(d.Root, nil)
	return out
}

// SubtreeSize counts the nodes of the subtree rooted at n, including n.
func SubtreeSize(n *Node) int {
	count := 1
	for _, c := range n.Children {
		count += SubtreeSize(c)
	}
	return count
}

// NextChildOrd returns the ordinal an appended child of n would receive:
// one past the highest ordinal ever used (children are ordinal-sorted, so
// that is the last child's ordinal plus one).
func (n *Node) NextChildOrd() uint32 {
	if len(n.Children) == 0 {
		return 0
	}
	return n.Children[len(n.Children)-1].Ord() + 1
}

// Graft re-roots the fragment document under parent (a node of d) as its
// new last child, re-interning every fragment type into d's registry and
// assigning fresh Dewey labels below parent.ID. It returns the grafted
// subtree root. The fragment document is left untouched.
func (d *Document) Graft(parent *Node, frag *Document) (*Node, error) {
	if frag == nil || frag.Root == nil {
		return nil, errors.New("xmltree: graft of empty fragment")
	}
	var rec func(src *Node, p *Node, ord uint32) *Node
	rec = func(src *Node, p *Node, ord uint32) *Node {
		n := &Node{
			Tag:    src.Tag,
			Type:   d.Types.Intern(p.Type, src.Tag),
			ID:     p.ID.Child(ord),
			Parent: p,
			Text:   src.Text,
		}
		p.Children = append(p.Children, n)
		d.NodeCount++
		for i, c := range src.Children {
			rec(c, n, uint32(i))
		}
		return n
	}
	return rec(frag.Root, parent, parent.NextChildOrd()), nil
}

// Detach removes the subtree rooted at n from the document, leaving the
// ordinals of n's surviving siblings untouched (labels never shift). It
// returns the number of nodes removed. The root cannot be detached.
func (d *Document) Detach(n *Node) (int, error) {
	p := n.Parent
	if p == nil {
		return 0, errors.New("xmltree: cannot detach the document root")
	}
	at := -1
	for i, c := range p.Children {
		if c == n {
			at = i
			break
		}
	}
	if at < 0 {
		return 0, fmt.Errorf("xmltree: node %s not among its parent's children", n.ID)
	}
	p.Children = append(p.Children[:at], p.Children[at+1:]...)
	n.Parent = nil
	size := SubtreeSize(n)
	d.NodeCount -= size
	return size, nil
}
