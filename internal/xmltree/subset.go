package xmltree

import (
	"fmt"
	"sort"
)

// Subset returns a new document holding the root plus only the partitions
// (root children) with the given ordinals. Every copied node keeps its
// original global Dewey label and its interned Type pointer, and the new
// document shares the source registry — so an index built over the subset
// is exactly the restriction of the full document's index to those
// partitions. This is the primitive corpus sharding is built on: the shard
// sub-documents of one corpus partition its nodes below a common root.
//
// Ordinals are sorted and deduplicated; an ordinal with no partition is an
// error.
func (d *Document) Subset(ords []uint32) (*Document, error) {
	sorted := append([]uint32(nil), ords...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	root := &Node{
		Tag:  d.Root.Tag,
		Type: d.Root.Type,
		ID:   d.Root.ID.Clone(),
		Text: d.Root.Text,
	}
	count := 1
	var prev uint32
	for i, ord := range sorted {
		if i > 0 && ord == prev {
			continue
		}
		prev = ord
		p, ok := d.Root.ChildByOrd(ord)
		if !ok {
			return nil, fmt.Errorf("xmltree: subset: no partition with ordinal %d", ord)
		}
		root.Children = append(root.Children, cloneSubtree(p, root, &count))
	}
	return &Document{Root: root, Types: d.Types, NodeCount: count}, nil
}

// cloneSubtree deep-copies a subtree, preserving Dewey labels and sharing
// the interned Type pointers of the source registry.
func cloneSubtree(n *Node, parent *Node, count *int) *Node {
	*count++
	c := &Node{
		Tag:    n.Tag,
		Type:   n.Type,
		ID:     n.ID.Clone(),
		Parent: parent,
		Text:   n.Text,
	}
	if len(n.Children) > 0 {
		c.Children = make([]*Node, len(n.Children))
		for i, ch := range n.Children {
			c.Children[i] = cloneSubtree(ch, c, count)
		}
	}
	return c
}
