package xmltree

import (
	"errors"

	"xrefine/internal/dewey"
)

// Collection grafts several documents under one virtual root, producing a
// single Document the whole engine stack operates on unchanged. Each
// member document's root becomes a child of the collection root — i.e. a
// document partition (Definition 6.1) — which is exactly the granularity
// the partition-based refinement algorithm scans, so a collection of many
// small feeds (the sponsored-search scenario) behaves identically to one
// large document.
//
// Member trees are rebuilt (not aliased): Dewey labels and interned types
// must be re-rooted under the collection, and the inputs stay usable on
// their own.
func Collection(rootTag string, docs ...*Document) (*Document, error) {
	if len(docs) == 0 {
		return nil, errors.New("xmltree: empty collection")
	}
	if rootTag == "" {
		rootTag = "collection"
	}
	reg := NewRegistry()
	rootType := reg.Intern(nil, rootTag)
	root := &Node{Tag: rootTag, Type: rootType, ID: dewey.Root()}
	out := &Document{Root: root, Types: reg, NodeCount: 1}

	var graft func(src *Node, parent *Node) *Node
	graft = func(src *Node, parent *Node) *Node {
		n := &Node{
			Tag:    src.Tag,
			Type:   reg.Intern(parent.Type, src.Tag),
			ID:     parent.ID.Child(uint32(len(parent.Children))),
			Parent: parent,
			Text:   src.Text,
		}
		parent.Children = append(parent.Children, n)
		out.NodeCount++
		for _, c := range src.Children {
			graft(c, n)
		}
		return n
	}
	for _, d := range docs {
		if d == nil || d.Root == nil {
			return nil, errors.New("xmltree: nil document in collection")
		}
		graft(d.Root, root)
	}
	return out, nil
}
