package xmltree

import (
	"fmt"
	"strings"
	"testing"

	"xrefine/internal/dewey"
	"xrefine/internal/kvstore"
)

func roundtripDoc(t *testing.T, src string) (*Document, *Document) {
	t.Helper()
	doc, err := ParseString(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := kvstore.NewMem()
	t.Cleanup(func() { s.Close() })
	if err := SaveDocument(doc, s); err != nil {
		t.Fatal(err)
	}
	got, ok, err := LoadDocument(s)
	if err != nil || !ok {
		t.Fatalf("LoadDocument: %v %v", ok, err)
	}
	return doc, got
}

func assertDocsEqual(t *testing.T, want, got *Document) {
	t.Helper()
	if want.NodeCount != got.NodeCount {
		t.Fatalf("NodeCount %d vs %d", want.NodeCount, got.NodeCount)
	}
	var wNodes, gNodes []*Node
	want.Walk(func(n *Node) bool { wNodes = append(wNodes, n); return true })
	got.Walk(func(n *Node) bool { gNodes = append(gNodes, n); return true })
	if len(wNodes) != len(gNodes) {
		t.Fatalf("walk counts %d vs %d", len(wNodes), len(gNodes))
	}
	for i := range wNodes {
		w, g := wNodes[i], gNodes[i]
		if w.Tag != g.Tag || w.Text != g.Text || !dewey.Equal(w.ID, g.ID) ||
			w.Type.Path() != g.Type.Path() || len(w.Children) != len(g.Children) {
			t.Fatalf("node %d: %s/%q/%s vs %s/%q/%s", i, w.Tag, w.Text, w.ID, g.Tag, g.Text, g.ID)
		}
	}
}

func TestDocumentRoundtrip(t *testing.T) {
	for _, src := range []string{
		`<bib><author><name>John</name><paper year="2003"><title>xml</title></paper></author></bib>`,
		`<a>text <b>inner</b> more</a>`,
		`<solo>just one</solo>`,
		`<r><x/><y/><z/></r>`,
	} {
		want, got := roundtripDoc(t, src)
		assertDocsEqual(t, want, got)
	}
}

func TestDocumentRoundtripLargeText(t *testing.T) {
	// A text value far larger than one kvstore cell forces chunking.
	big := strings.Repeat("lorem ipsum dolor sit amet ", 500)
	src := fmt.Sprintf(`<r><doc>%s</doc><doc>short</doc></r>`, big)
	want, got := roundtripDoc(t, src)
	assertDocsEqual(t, want, got)
	n, ok := got.NodeByID(dewey.MustParse("0.0"))
	if !ok || len(n.Text) != len(strings.TrimSpace(big)) {
		t.Fatalf("large text lost: %d", len(n.Text))
	}
}

func TestDocumentRoundtripManyNodes(t *testing.T) {
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < 3000; i++ {
		fmt.Fprintf(&b, "<e><v>node %d content</v></e>", i)
	}
	b.WriteString("</r>")
	want, got := roundtripDoc(t, b.String())
	assertDocsEqual(t, want, got)
}

func TestLoadDocumentAbsent(t *testing.T) {
	s := kvstore.NewMem()
	defer s.Close()
	doc, ok, err := LoadDocument(s)
	if err != nil || ok || doc != nil {
		t.Fatalf("absent doc: %v %v %v", doc, ok, err)
	}
}

func TestLoadDocumentCorrupt(t *testing.T) {
	s := kvstore.NewMem()
	defer s.Close()
	if err := s.Put(docChunkKey(0), []byte{0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadDocument(s); err == nil {
		t.Error("corrupt doc stream loaded")
	}
	// Trailing garbage after a valid tree.
	s2 := kvstore.NewMem()
	defer s2.Close()
	doc, _ := ParseString("<a>x</a>", nil)
	if err := SaveDocument(doc, s2); err != nil {
		t.Fatal(err)
	}
	if err := s2.Put(docChunkKey(9), []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadDocument(s2); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestSaveDocumentNil(t *testing.T) {
	s := kvstore.NewMem()
	defer s.Close()
	if err := SaveDocument(nil, s); err == nil {
		t.Error("nil document accepted")
	}
}
