package xmltree

import (
	"testing"

	"xrefine/internal/dewey"
)

func TestCollectionShape(t *testing.T) {
	a, err := ParseString(`<feed><ad>shoes</ad></feed>`, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseString(`<feed><ad>bikes</ad><ad>tents</ad></feed>`, nil)
	if err != nil {
		t.Fatal(err)
	}
	col, err := Collection("catalog", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if col.Root.Tag != "catalog" || len(col.Root.Children) != 2 {
		t.Fatalf("root = %s with %d children", col.Root.Tag, len(col.Root.Children))
	}
	if col.NodeCount != 1+a.NodeCount+b.NodeCount {
		t.Errorf("NodeCount = %d", col.NodeCount)
	}
	// Members become partitions.
	parts := col.Partitions()
	if len(parts) != 2 || parts[0].Tag != "feed" {
		t.Fatalf("partitions = %v", parts)
	}
	// Dewey labels re-rooted and resolvable.
	n, ok := col.NodeByID(dewey.MustParse("0.1.1"))
	if !ok || n.Text != "tents" {
		t.Fatalf("0.1.1 = %+v, %v", n, ok)
	}
	// Types re-interned under the collection root.
	ty, ok := col.Types.ByPath("catalog/feed/ad")
	if !ok || ty.Depth != 2 {
		t.Fatalf("type = %+v, %v", ty, ok)
	}
	// Source documents untouched.
	if a.Root.Parent != nil || a.Root.ID.String() != "0" {
		t.Error("source document mutated")
	}
	// Walk stays in document order.
	var prev dewey.ID
	col.Walk(func(n *Node) bool {
		if prev != nil && dewey.Compare(prev, n.ID) >= 0 {
			t.Fatalf("order broken at %s", n.ID)
		}
		prev = n.ID
		return true
	})
}

func TestCollectionErrors(t *testing.T) {
	if _, err := Collection("c"); err == nil {
		t.Error("empty collection accepted")
	}
	if _, err := Collection("c", nil); err == nil {
		t.Error("nil document accepted")
	}
	a, _ := ParseString(`<x>1</x>`, nil)
	if col, err := Collection("", a); err != nil || col.Root.Tag != "collection" {
		t.Errorf("default root tag: %v %v", col, err)
	}
}

func TestCollectionParentChain(t *testing.T) {
	a, _ := ParseString(`<x><y>deep</y></x>`, nil)
	col, err := Collection("c", a)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := col.NodeByID(dewey.MustParse("0.0.0"))
	if n.Parent == nil || n.Parent.Parent != col.Root {
		t.Error("parent chain broken")
	}
	if n.Type.Parent != n.Parent.Type {
		t.Error("type chain broken")
	}
}
