package xmltree

import (
	"strings"
	"testing"

	"xrefine/internal/dewey"
)

// FuzzParse throws arbitrary input at the XML parser: no panics, and every
// successfully parsed document must satisfy the structural invariants the
// rest of the system depends on (document-ordered Dewey labels, consistent
// types, resolvable node IDs).
func FuzzParse(f *testing.F) {
	f.Add("<a><b>text</b></a>")
	f.Add("<a x=\"1\"><b/><b/></a>")
	f.Add("")
	f.Add("<a>")
	f.Add("<<<")
	f.Add("<a>&lt;&amp;</a>")
	f.Add("<r><x></x><y><z>deep</z></y></r>")
	f.Fuzz(func(t *testing.T, src string) {
		doc, err := ParseString(src, nil)
		if err != nil {
			return
		}
		var prev dewey.ID
		count := 0
		doc.Walk(func(n *Node) bool {
			count++
			if prev != nil && dewey.Compare(prev, n.ID) >= 0 {
				t.Fatalf("walk out of order: %s then %s", prev, n.ID)
			}
			prev = n.ID
			if got, ok := doc.NodeByID(n.ID); !ok || got != n {
				t.Fatalf("NodeByID(%s) failed", n.ID)
			}
			if n.Parent != nil && n.Type.Parent != n.Parent.Type {
				t.Fatalf("type chain broken at %s", n.ID)
			}
			for _, term := range n.Terms() {
				if term == "" || strings.ContainsAny(term, " \t\n") {
					t.Fatalf("bad term %q at %s", term, n.ID)
				}
			}
			return true
		})
		if count != doc.NodeCount {
			t.Fatalf("NodeCount %d != walked %d", doc.NodeCount, count)
		}
	})
}
