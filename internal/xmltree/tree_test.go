package xmltree

import (
	"reflect"
	"strings"
	"testing"

	"xrefine/internal/dewey"
)

// paperDoc approximates Figure 1 of the paper: a bib with two authors, each
// with publications.
const paperDoc = `
<bib>
  <author>
    <name>John Ben</name>
    <publications>
      <inproceedings>
        <title>online DBLP in XML</title>
        <year>2001</year>
      </inproceedings>
      <inproceedings>
        <title>online database systems</title>
        <year>2003</year>
      </inproceedings>
      <article>
        <title>XML data mining</title>
        <year>2003</year>
      </article>
    </publications>
  </author>
  <author>
    <name>Mary Lee</name>
    <publications>
      <inproceedings>
        <title>XML keyword search</title>
        <year>2005</year>
      </inproceedings>
    </publications>
    <hobby>swimming</hobby>
  </author>
</bib>`

func parsePaperDoc(t *testing.T) *Document {
	t.Helper()
	d, err := ParseString(paperDoc, nil)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return d
}

func TestParseShape(t *testing.T) {
	d := parsePaperDoc(t)
	if d.Root.Tag != "bib" {
		t.Fatalf("root tag = %q", d.Root.Tag)
	}
	if len(d.Root.Children) != 2 {
		t.Fatalf("root children = %d", len(d.Root.Children))
	}
	if got := d.Root.Children[0].ID.String(); got != "0.0" {
		t.Errorf("first author ID = %s", got)
	}
	if got := d.Root.Children[1].Children[2].Tag; got != "hobby" {
		t.Errorf("expected hobby, got %q", got)
	}
}

func TestNodeByID(t *testing.T) {
	d := parsePaperDoc(t)
	n, ok := d.NodeByID(dewey.MustParse("0.0.1.1.0"))
	if !ok {
		t.Fatal("node not found")
	}
	if n.Tag != "title" || !strings.Contains(n.Text, "online database") {
		t.Errorf("got %q %q", n.Tag, n.Text)
	}
	if _, ok := d.NodeByID(dewey.MustParse("0.9")); ok {
		t.Error("bogus ID resolved")
	}
	if _, ok := d.NodeByID(dewey.MustParse("1")); ok {
		t.Error("wrong root component resolved")
	}
}

func TestTypes(t *testing.T) {
	d := parsePaperDoc(t)
	ty, ok := d.Types.ByPath("bib/author/publications/inproceedings")
	if !ok {
		t.Fatal("inproceedings type missing")
	}
	if ty.Depth != 3 || ty.Tag != "inproceedings" {
		t.Errorf("type = %+v", ty)
	}
	authorT, _ := d.Types.ByPath("bib/author")
	if !ty.HasPrefix(authorT) {
		t.Error("inproceedings type should have author prefix")
	}
	if authorT.HasPrefix(ty) {
		t.Error("prefix direction reversed")
	}
	rootT, _ := d.Types.ByPath("bib")
	a, err := ty.AncestorAt(0)
	if err != nil || a != rootT {
		t.Errorf("AncestorAt(0) = %v, %v", a, err)
	}
	if _, err := ty.AncestorAt(9); err == nil {
		t.Error("out-of-range AncestorAt should error")
	}
	// Both inproceedings elements share one interned type.
	n1, _ := d.NodeByID(dewey.MustParse("0.0.1.0"))
	n2, _ := d.NodeByID(dewey.MustParse("0.1.1.0"))
	if n1.Type != n2.Type {
		t.Error("same-path nodes must share an interned type")
	}
}

func TestTerms(t *testing.T) {
	d := parsePaperDoc(t)
	n, _ := d.NodeByID(dewey.MustParse("0.0.1.1.0"))
	got := n.Terms()
	want := []string{"title", "online", "database", "systems"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

func TestWalkDocumentOrder(t *testing.T) {
	d := parsePaperDoc(t)
	var ids []dewey.ID
	d.Walk(func(n *Node) bool {
		ids = append(ids, n.ID)
		return true
	})
	if len(ids) != d.NodeCount {
		t.Fatalf("walked %d of %d nodes", len(ids), d.NodeCount)
	}
	for i := 1; i < len(ids); i++ {
		if dewey.Compare(ids[i-1], ids[i]) >= 0 {
			t.Fatalf("walk out of document order at %d: %s >= %s", i, ids[i-1], ids[i])
		}
	}
}

func TestWalkPrune(t *testing.T) {
	d := parsePaperDoc(t)
	count := 0
	d.Walk(func(n *Node) bool {
		count++
		return n.Tag != "author" // do not descend into authors
	})
	if count != 3 { // bib + 2 authors
		t.Errorf("pruned walk visited %d nodes, want 3", count)
	}
}

func TestPartitions(t *testing.T) {
	d := parsePaperDoc(t)
	parts := d.Partitions()
	if len(parts) != 2 || parts[0].Tag != "author" || parts[1].Tag != "author" {
		t.Errorf("partitions = %v", parts)
	}
}

func TestAttributesAsNodes(t *testing.T) {
	src := `<bib><paper year="2003" title="XML Search">body text</paper></bib>`
	d, err := ParseString(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	paper := d.Root.Children[0]
	if len(paper.Children) != 2 {
		t.Fatalf("attr children = %d", len(paper.Children))
	}
	if paper.Children[0].Tag != "year" || paper.Children[0].Text != "2003" {
		t.Errorf("year attr = %+v", paper.Children[0])
	}
	// And disabled:
	d2, err := ParseString(src, &Options{AttributesAsNodes: false})
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Root.Children[0].Children) != 0 {
		t.Error("attributes materialized despite option off")
	}
}

func TestTextCoalescing(t *testing.T) {
	src := `<a>one <b>inner</b> two</a>`
	d, err := ParseString(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Root.Text != "one two" {
		t.Errorf("root text = %q", d.Root.Text)
	}
	if d.Root.Children[0].Text != "inner" {
		t.Errorf("inner text = %q", d.Root.Children[0].Text)
	}
	if got := d.Root.Subtext(); got != "one two inner" {
		t.Errorf("subtext = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"<a><b></a>",
		"<a></a><b></b>",
		"just text",
	} {
		if _, err := ParseString(src, nil); err == nil {
			t.Errorf("ParseString(%q): expected error", src)
		}
	}
}

func TestMaxDepth(t *testing.T) {
	deep := strings.Repeat("<a>", 40) + strings.Repeat("</a>", 40)
	if _, err := ParseString(deep, &Options{MaxDepth: 10}); err == nil {
		t.Error("expected depth error")
	}
	if _, err := ParseString(deep, &Options{MaxDepth: 50}); err != nil {
		t.Errorf("depth 50 should parse: %v", err)
	}
}

func TestSnippet(t *testing.T) {
	d := parsePaperDoc(t)
	n, _ := d.NodeByID(dewey.MustParse("0.1.2"))
	s := n.Snippet(100)
	if !strings.Contains(s, "hobby") || !strings.Contains(s, "swimming") {
		t.Errorf("snippet = %q", s)
	}
	short := n.Snippet(3)
	if !strings.Contains(short, "…") {
		t.Errorf("truncated snippet = %q", short)
	}
}

func TestRegistryMarshalRoundtrip(t *testing.T) {
	d := parsePaperDoc(t)
	data := d.Types.Marshal()
	r2, err := UnmarshalRegistry(data)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Len() != d.Types.Len() {
		t.Fatalf("len %d != %d", r2.Len(), d.Types.Len())
	}
	for _, ty := range d.Types.Types() {
		got, ok := r2.ByPath(ty.Path())
		if !ok || got.ID != ty.ID || got.Depth != ty.Depth || got.Tag != ty.Tag {
			t.Errorf("type %s mismatched after roundtrip: %+v", ty.Path(), got)
		}
	}
}

func TestUnmarshalRegistryErrors(t *testing.T) {
	if _, err := UnmarshalRegistry([]byte("")); err == nil {
		t.Error("empty registry should error")
	}
	if _, err := UnmarshalRegistry([]byte("a/b\n")); err == nil {
		t.Error("orphan child should error")
	}
}

func TestByTag(t *testing.T) {
	d := parsePaperDoc(t)
	tys := d.Types.ByTag("inproceedings")
	if len(tys) != 1 {
		t.Fatalf("ByTag(inproceedings) = %d types", len(tys))
	}
	if len(d.Types.ByTag("nosuch")) != 0 {
		t.Error("ByTag(nosuch) nonempty")
	}
}

func TestSortTypesByPath(t *testing.T) {
	d := parsePaperDoc(t)
	tys := d.Types.SortTypesByPath()
	for i := 1; i < len(tys); i++ {
		if tys[i-1].Path() >= tys[i].Path() {
			t.Fatalf("types not sorted at %d", i)
		}
	}
}

func TestSnippetHighlight(t *testing.T) {
	d := parsePaperDoc(t)
	n, _ := d.NodeByID(dewey.MustParse("0.0.1.1.0"))
	s := n.SnippetHighlight(100, []string{"database", "online"})
	if !strings.Contains(s, "[online]") || !strings.Contains(s, "[database]") {
		t.Errorf("highlight missing: %q", s)
	}
	if strings.Contains(s, "[systems]") {
		t.Errorf("unmatched term highlighted: %q", s)
	}
	// Case-insensitive matching via normalization.
	n2, _ := d.NodeByID(dewey.MustParse("0.0.1.0.0"))
	s2 := n2.SnippetHighlight(100, []string{"dblp"})
	if !strings.Contains(s2, "[DBLP]") {
		t.Errorf("normalized highlight failed: %q", s2)
	}
	// Truncation marker.
	s3 := n.SnippetHighlight(6, []string{"online"})
	if !strings.Contains(s3, "…") {
		t.Errorf("no truncation: %q", s3)
	}
}
