// Package xmltree models an XML document as a rooted, labeled, ordered
// tree, the data model of Section III of the paper. Every element (and,
// optionally, attribute) becomes a Node carrying a Dewey label and a node
// type; a node type is the prefix path of tag names from the document root
// (Definition 3.1), interned in a Registry so that type identity is pointer
// identity and every statistics table can key on small integer type IDs.
package xmltree

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Type is an interned node type: a prefix path of tag names from the root.
// Two nodes have the same *Type exactly when their root-to-node tag paths
// are equal.
type Type struct {
	// ID is a dense registry-assigned identifier, stable for the life of
	// the registry and usable as a map or slice key.
	ID int
	// Tag is the final tag name on the path (the node's own tag).
	Tag string
	// Parent is the type of the node's parent; nil for the root type.
	Parent *Type
	// Depth is the number of edges from the root; the root type has 0.
	Depth int

	path string
}

// Path returns the full "/"-joined prefix path, e.g. "bib/author/name".
func (t *Type) Path() string { return t.path }

// String implements fmt.Stringer.
func (t *Type) String() string { return t.path }

// AncestorAt returns the ancestor-or-self type at the given depth.
// AncestorAt(0) is the root type; AncestorAt(t.Depth) is t itself.
func (t *Type) AncestorAt(depth int) (*Type, error) {
	if depth < 0 || depth > t.Depth {
		return nil, fmt.Errorf("xmltree: depth %d out of range [0,%d] for type %s", depth, t.Depth, t.path)
	}
	for t.Depth > depth {
		t = t.Parent
	}
	return t, nil
}

// HasPrefix reports whether p's path is a prefix of t's path, i.e. whether
// a t-typed node is a self-or-descendant of a p-typed node. This is the
// ancestry test behind the meaningful-SLCA predicate (Definition 3.3).
func (t *Type) HasPrefix(p *Type) bool {
	if p == nil || p.Depth > t.Depth {
		return false
	}
	a, _ := t.AncestorAt(p.Depth)
	return a == p
}

// Registry interns node types. Lookups are lock-free reads of an immutable
// snapshot published through an atomic pointer, so queries running against
// one epoch of an index never block (or race) while a live-update batch
// interns new types for the next epoch. Intern itself copies the snapshot
// only when it actually creates a type, which is rare after warm-up.
// *Type values are shared across snapshots: pointer identity of a type is
// stable for the life of the registry.
type Registry struct {
	mu   sync.Mutex // serializes snapshot replacement by writers
	snap atomic.Pointer[regSnap]
}

// regSnap is one immutable registry state.
type regSnap struct {
	byPath map[string]*Type
	types  []*Type
}

// NewRegistry returns an empty type registry.
func NewRegistry() *Registry {
	r := &Registry{}
	r.snap.Store(&regSnap{byPath: make(map[string]*Type)})
	return r
}

// Intern returns the type for the child tag under parent, creating it on
// first use. A nil parent interns the root type.
func (r *Registry) Intern(parent *Type, tag string) *Type {
	var path string
	depth := 0
	if parent == nil {
		path = tag
	} else {
		path = parent.path + "/" + tag
		depth = parent.Depth + 1
	}
	if t, ok := r.snap.Load().byPath[path]; ok {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.snap.Load()
	if t, ok := old.byPath[path]; ok { // lost the creation race
		return t
	}
	t := &Type{ID: len(old.types), Tag: tag, Parent: parent, Depth: depth, path: path}
	next := &regSnap{
		byPath: make(map[string]*Type, len(old.byPath)+1),
		types:  append(append(make([]*Type, 0, len(old.types)+1), old.types...), t),
	}
	for p, ot := range old.byPath {
		next.byPath[p] = ot
	}
	next.byPath[path] = t
	r.snap.Store(next)
	return t
}

// ByPath looks a type up by its full "/"-joined path.
func (r *Registry) ByPath(path string) (*Type, bool) {
	t, ok := r.snap.Load().byPath[path]
	return t, ok
}

// ByID returns the type with the given registry ID.
func (r *Registry) ByID(id int) (*Type, bool) {
	types := r.snap.Load().types
	if id < 0 || id >= len(types) {
		return nil, false
	}
	return types[id], true
}

// Len returns the number of interned types.
func (r *Registry) Len() int { return len(r.snap.Load().types) }

// Types returns all interned types in ID order. The slice is an immutable
// snapshot; types interned later do not appear in it.
func (r *Registry) Types() []*Type { return r.snap.Load().types }

// ByTag returns every type whose final tag equals tag, in ID order. The
// paper abbreviates node types by their tag name when unambiguous; this is
// the lookup that resolves such an abbreviation.
func (r *Registry) ByTag(tag string) []*Type {
	var out []*Type
	for _, t := range r.snap.Load().types {
		if t.Tag == tag {
			out = append(out, t)
		}
	}
	return out
}

// Marshal serializes the registry as newline-separated paths in ID order,
// which is enough to rebuild it because a parent path always precedes its
// children (parents are interned first).
func (r *Registry) Marshal() []byte {
	var b strings.Builder
	for _, t := range r.snap.Load().types {
		b.WriteString(t.path)
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// UnmarshalRegistry rebuilds a registry from Marshal output. Paths must be
// listed parent-before-child, which Marshal guarantees.
func UnmarshalRegistry(data []byte) (*Registry, error) {
	r := NewRegistry()
	for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		if line == "" {
			continue
		}
		i := strings.LastIndexByte(line, '/')
		if i < 0 {
			r.Intern(nil, line)
			continue
		}
		parent, ok := r.ByPath(line[:i])
		if !ok {
			return nil, fmt.Errorf("xmltree: registry data lists %q before its parent", line)
		}
		r.Intern(parent, line[i+1:])
	}
	if r.Len() == 0 {
		return nil, errors.New("xmltree: empty registry data")
	}
	return r, nil
}

// SortTypesByPath returns the registry's types sorted by path, for
// deterministic iteration in reports and tests.
func (r *Registry) SortTypesByPath() []*Type {
	types := r.snap.Load().types
	out := make([]*Type, len(types))
	copy(out, types)
	sort.Slice(out, func(i, j int) bool { return out[i].path < out[j].path })
	return out
}
