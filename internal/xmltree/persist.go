package xmltree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"xrefine/internal/storage"
)

// Document persistence: the tree serializes into the same kvstore an index
// lives in, so an engine reopened from disk can still render snippets and
// mine narrowing candidates — the two features that need the source
// document rather than the inverted lists.
//
// Layout: one pre-order byte stream (v2, per node: varint child ordinal,
// varint tag length, tag, varint child count, varint text length, text),
// chunked under sequential keys to respect the store's cell bound:
//
//	D\x00v                version marker (absent on legacy v1 streams)
//	D\x00c\x00<seq BE32>  chunk of the serialized tree
//
// Chunk keys sort by sequence number, so a Range reads the stream back in
// order. Reconstruction is a single recursive decode. The explicit child
// ordinal (added in v2) is what lets a mutated tree round-trip: after a
// subtree deletion the surviving siblings keep their original ordinals, so
// positions in the child list no longer determine Dewey labels. Legacy v1
// streams (no version key, no ordinal field) decode positionally.
const (
	docChunkPrefix  = "D\x00c\x00"
	docVersionKey   = "D\x00v"
	docVersionValue = 2
)

// DocChunkBounds returns the key range [lo, hi) covering every persisted
// document key (version marker and chunks), for callers that rewrite the
// document in place and must clear stale chunks first.
func DocChunkBounds() (lo, hi []byte) {
	return []byte("D\x00"), []byte("D\x01")
}

// SaveDocument writes the document into the store (without committing; the
// caller batches it with the index save).
func SaveDocument(d *Document, s storage.Backend) error {
	if d == nil || d.Root == nil {
		return fmt.Errorf("xmltree: nil document")
	}
	var buf []byte
	var encode func(n *Node)
	encode = func(n *Node) {
		buf = binary.AppendUvarint(buf, uint64(n.Ord()))
		buf = binary.AppendUvarint(buf, uint64(len(n.Tag)))
		buf = append(buf, n.Tag...)
		buf = binary.AppendUvarint(buf, uint64(len(n.Children)))
		buf = binary.AppendUvarint(buf, uint64(len(n.Text)))
		buf = append(buf, n.Text...)
		for _, c := range n.Children {
			encode(c)
		}
	}
	encode(d.Root)

	if err := s.Put([]byte(docVersionKey), []byte{docVersionValue}); err != nil {
		return err
	}
	budget := s.MaxKV() - 16
	seq := uint32(0)
	for off := 0; off < len(buf); {
		end := off + budget
		if end > len(buf) {
			end = len(buf)
		}
		if err := s.Put(docChunkKey(seq), buf[off:end]); err != nil {
			return err
		}
		off = end
		seq++
	}
	if len(buf) == 0 { // cannot happen (root has a tag) but stay total
		return s.Put(docChunkKey(0), []byte{})
	}
	return nil
}

func docChunkKey(seq uint32) []byte {
	k := []byte(docChunkPrefix)
	var be [4]byte
	binary.BigEndian.PutUint32(be[:], seq)
	return append(k, be[:]...)
}

// LoadDocument reconstructs a document previously written with
// SaveDocument; it returns (nil, false, nil) when the store holds no
// document (an index-only store).
func LoadDocument(s storage.Backend) (*Document, bool, error) {
	return LoadDocumentInto(s, nil)
}

// LoadDocumentInto is LoadDocument with a caller-supplied type registry
// (nil creates a fresh one). An engine that loads both an index and its
// source document from one store must intern both into the same registry:
// type identity is by pointer, and a document-side type that merely
// *equals* an index-side type would make every judgment that compares the
// two silently false — in particular for nodes grafted by live updates.
func LoadDocumentInto(s storage.Backend, reg *Registry) (*Document, bool, error) {
	var buf []byte
	prefix := []byte(docChunkPrefix)
	end := append(append([]byte(nil), prefix...), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF)
	if err := s.Range(prefix, end, func(k, v []byte) bool {
		buf = append(buf, v...)
		return true
	}); err != nil {
		return nil, false, err
	}
	if len(buf) == 0 {
		return nil, false, nil
	}
	withOrds := false
	if ver, ok, err := s.Get([]byte(docVersionKey)); err != nil {
		return nil, false, err
	} else if ok {
		if len(ver) != 1 || ver[0] != docVersionValue {
			return nil, false, fmt.Errorf("xmltree: unsupported doc stream version %v", ver)
		}
		withOrds = true
	}
	if reg == nil {
		reg = NewRegistry()
	}
	doc := &Document{Types: reg}
	r := bytes.NewReader(buf)
	pos := func() int { return len(buf) - r.Len() }
	var decode func(parent *Node, ord uint32) (*Node, error)
	decode = func(parent *Node, ord uint32) (*Node, error) {
		if withOrds {
			o, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, fmt.Errorf("xmltree: doc stream at %d: %w", pos(), err)
			}
			ord = uint32(o)
		}
		tagLen, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("xmltree: doc stream at %d: %w", pos(), err)
		}
		if uint64(r.Len()) < tagLen {
			return nil, fmt.Errorf("xmltree: doc stream truncated tag at %d", pos())
		}
		tagBytes := make([]byte, tagLen)
		if _, err := io.ReadFull(r, tagBytes); err != nil {
			return nil, err
		}
		childCount, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		textLen, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		if uint64(r.Len()) < textLen {
			return nil, fmt.Errorf("xmltree: doc stream truncated text at %d", pos())
		}
		textBytes := make([]byte, textLen)
		if _, err := io.ReadFull(r, textBytes); err != nil {
			return nil, err
		}
		n := &Node{Tag: string(tagBytes), Text: string(textBytes), Parent: parent}
		if parent == nil {
			n.Type = reg.Intern(nil, n.Tag)
			n.ID = []uint32{0}
		} else {
			n.Type = reg.Intern(parent.Type, n.Tag)
			n.ID = parent.ID.Child(ord)
		}
		doc.NodeCount++
		if childCount > uint64(r.Len()) {
			return nil, fmt.Errorf("xmltree: implausible child count %d at %d", childCount, pos())
		}
		for i := uint64(0); i < childCount; i++ {
			c, err := decode(n, uint32(i))
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, c)
		}
		return n, nil
	}
	root, err := decode(nil, 0)
	if err != nil {
		return nil, false, err
	}
	if r.Len() != 0 {
		return nil, false, fmt.Errorf("xmltree: %d trailing bytes in doc stream", r.Len())
	}
	doc.Root = root
	return doc, true, nil
}
