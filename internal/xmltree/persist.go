package xmltree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"xrefine/internal/kvstore"
)

// Document persistence: the tree serializes into the same kvstore an index
// lives in, so an engine reopened from disk can still render snippets and
// mine narrowing candidates — the two features that need the source
// document rather than the inverted lists.
//
// Layout: one pre-order byte stream (per node: varint tag length, tag,
// varint child count, varint text length, text), chunked under sequential
// keys to respect the store's cell bound:
//
//	D\x00c\x00<seq BE32>  chunk of the serialized tree
//
// Chunk keys sort by sequence number, so a Range reads the stream back in
// order. Reconstruction is a single recursive decode.
const docChunkPrefix = "D\x00c\x00"

// SaveDocument writes the document into the store (without committing; the
// caller batches it with the index save).
func SaveDocument(d *Document, s *kvstore.Store) error {
	if d == nil || d.Root == nil {
		return fmt.Errorf("xmltree: nil document")
	}
	var buf []byte
	var encode func(n *Node)
	encode = func(n *Node) {
		buf = binary.AppendUvarint(buf, uint64(len(n.Tag)))
		buf = append(buf, n.Tag...)
		buf = binary.AppendUvarint(buf, uint64(len(n.Children)))
		buf = binary.AppendUvarint(buf, uint64(len(n.Text)))
		buf = append(buf, n.Text...)
		for _, c := range n.Children {
			encode(c)
		}
	}
	encode(d.Root)

	budget := s.MaxKV() - 16
	seq := uint32(0)
	for off := 0; off < len(buf); {
		end := off + budget
		if end > len(buf) {
			end = len(buf)
		}
		if err := s.Put(docChunkKey(seq), buf[off:end]); err != nil {
			return err
		}
		off = end
		seq++
	}
	if len(buf) == 0 { // cannot happen (root has a tag) but stay total
		return s.Put(docChunkKey(0), []byte{})
	}
	return nil
}

func docChunkKey(seq uint32) []byte {
	k := []byte(docChunkPrefix)
	var be [4]byte
	binary.BigEndian.PutUint32(be[:], seq)
	return append(k, be[:]...)
}

// LoadDocument reconstructs a document previously written with
// SaveDocument; it returns (nil, false, nil) when the store holds no
// document (an index-only store).
func LoadDocument(s *kvstore.Store) (*Document, bool, error) {
	var buf []byte
	prefix := []byte(docChunkPrefix)
	end := append(append([]byte(nil), prefix...), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF)
	if err := s.Range(prefix, end, func(k, v []byte) bool {
		buf = append(buf, v...)
		return true
	}); err != nil {
		return nil, false, err
	}
	if len(buf) == 0 {
		return nil, false, nil
	}
	reg := NewRegistry()
	doc := &Document{Types: reg}
	r := bytes.NewReader(buf)
	pos := func() int { return len(buf) - r.Len() }
	var decode func(parent *Node, ord uint32) (*Node, error)
	decode = func(parent *Node, ord uint32) (*Node, error) {
		tagLen, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("xmltree: doc stream at %d: %w", pos(), err)
		}
		if uint64(r.Len()) < tagLen {
			return nil, fmt.Errorf("xmltree: doc stream truncated tag at %d", pos())
		}
		tagBytes := make([]byte, tagLen)
		if _, err := io.ReadFull(r, tagBytes); err != nil {
			return nil, err
		}
		childCount, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		textLen, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		if uint64(r.Len()) < textLen {
			return nil, fmt.Errorf("xmltree: doc stream truncated text at %d", pos())
		}
		textBytes := make([]byte, textLen)
		if _, err := io.ReadFull(r, textBytes); err != nil {
			return nil, err
		}
		n := &Node{Tag: string(tagBytes), Text: string(textBytes), Parent: parent}
		if parent == nil {
			n.Type = reg.Intern(nil, n.Tag)
			n.ID = []uint32{0}
		} else {
			n.Type = reg.Intern(parent.Type, n.Tag)
			n.ID = parent.ID.Child(ord)
		}
		doc.NodeCount++
		if childCount > uint64(r.Len()) {
			return nil, fmt.Errorf("xmltree: implausible child count %d at %d", childCount, pos())
		}
		for i := uint64(0); i < childCount; i++ {
			c, err := decode(n, uint32(i))
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, c)
		}
		return n, nil
	}
	root, err := decode(nil, 0)
	if err != nil {
		return nil, false, err
	}
	if r.Len() != 0 {
		return nil, false, fmt.Errorf("xmltree: %d trailing bytes in doc stream", r.Len())
	}
	doc.Root = root
	return doc, true, nil
}
