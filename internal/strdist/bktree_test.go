package strdist

import (
	"math/rand"
	"sort"
	"testing"
)

func TestBKTreeBasics(t *testing.T) {
	words := []string{"database", "databases", "databse", "keyword", "keywords", "search"}
	tree := NewBKTree(words)
	if tree.Len() != len(words) {
		t.Fatalf("Len = %d, want %d", tree.Len(), len(words))
	}
	// duplicates ignored
	tree.Add("database")
	tree.Add("")
	if tree.Len() != len(words) {
		t.Fatalf("duplicate changed size to %d", tree.Len())
	}
	got := tree.Within("databse", 1)
	found := map[string]int{}
	for _, m := range got {
		found[m.Word] = m.Distance
	}
	if found["database"] != 1 {
		t.Errorf("database not found at distance 1: %v", got)
	}
	if _, ok := found["keyword"]; ok {
		t.Error("keyword within 1 of databse?!")
	}
	// the query word itself is excluded even when stored
	for _, m := range tree.Within("database", 2) {
		if m.Word == "database" {
			t.Error("query word returned")
		}
	}
}

func TestBKTreeEmptyAndDegenerate(t *testing.T) {
	var empty BKTree
	if got := empty.Within("x", 2); got != nil {
		t.Errorf("empty tree returned %v", got)
	}
	one := NewBKTree([]string{"solo"})
	if got := one.Within("solo", 0); got != nil {
		t.Errorf("max 0 returned %v", got)
	}
	if got := one.Within("sole", 1); len(got) != 1 || got[0].Word != "solo" {
		t.Errorf("single-node query = %v", got)
	}
}

// Property: Within agrees exactly with a linear Levenshtein scan on random
// vocabularies, for all query words and bounds.
func TestPropertyBKTreeAgainstScan(t *testing.T) {
	r := rand.New(rand.NewSource(88))
	letters := []rune("abcd")
	randWordN := func() string {
		n := 1 + r.Intn(7)
		w := make([]rune, n)
		for i := range w {
			w[i] = letters[r.Intn(len(letters))]
		}
		return string(w)
	}
	for trial := 0; trial < 40; trial++ {
		vocabSet := map[string]bool{}
		for i := 0; i < 120; i++ {
			vocabSet[randWordN()] = true
		}
		var vocab []string
		for w := range vocabSet {
			vocab = append(vocab, w)
		}
		tree := NewBKTree(vocab)
		if tree.Len() != len(vocab) {
			t.Fatalf("trial %d: size %d != %d", trial, tree.Len(), len(vocab))
		}
		for probe := 0; probe < 20; probe++ {
			q := randWordN()
			max := 1 + r.Intn(3)
			var want []string
			for _, w := range vocab {
				if d := Levenshtein(q, w); d >= 1 && d <= max {
					want = append(want, w)
				}
			}
			var got []string
			for _, m := range tree.Within(q, max) {
				if m.Distance != Levenshtein(q, m.Word) {
					t.Fatalf("trial %d: wrong reported distance for %q/%q", trial, q, m.Word)
				}
				got = append(got, m.Word)
			}
			sort.Strings(want)
			sort.Strings(got)
			if len(want) != len(got) {
				t.Fatalf("trial %d: Within(%q,%d) = %v, want %v", trial, q, max, got, want)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("trial %d: Within(%q,%d) = %v, want %v", trial, q, max, got, want)
				}
			}
		}
	}
}

func BenchmarkBKTreeWithin(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	letters := []rune("abcdefghij")
	vocab := make([]string, 20000)
	for i := range vocab {
		n := 3 + r.Intn(9)
		w := make([]rune, n)
		for j := range w {
			w[j] = letters[r.Intn(len(letters))]
		}
		vocab[i] = string(w)
	}
	tree := NewBKTree(vocab)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tree.Within(vocab[i%len(vocab)], 2)
	}
}

func BenchmarkLinearScanWithin(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	letters := []rune("abcdefghij")
	vocab := make([]string, 20000)
	for i := range vocab {
		n := 3 + r.Intn(9)
		w := make([]rune, n)
		for j := range w {
			w[j] = letters[r.Intn(len(letters))]
		}
		vocab[i] = string(w)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := vocab[i%len(vocab)]
		for _, w := range vocab {
			DamerauLevenshteinWithin(q, w, 2)
		}
	}
}
