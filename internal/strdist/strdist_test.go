package strdist

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLevenshteinKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"database", "databse", 1},
		{"mecine", "machine", 2}, // the paper's rule 5: ds = 2
		{"xml", "xml", 0},
		{"flaw", "lawn", 2},
		{"инфо", "инфа", 1}, // multi-byte runes count as one
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := Levenshtein(c.b, c.a); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestLevenshteinWithin(t *testing.T) {
	if d, ok := LevenshteinWithin("kitten", "sitting", 3); !ok || d != 3 {
		t.Errorf("within 3: %d %v", d, ok)
	}
	if _, ok := LevenshteinWithin("kitten", "sitting", 2); ok {
		t.Error("distance 3 should not fit within 2")
	}
	if _, ok := LevenshteinWithin("a", "abcdef", 2); ok {
		t.Error("length gap filter failed")
	}
	if _, ok := LevenshteinWithin("a", "b", -1); ok {
		t.Error("negative max should reject")
	}
	if d, ok := LevenshteinWithin("same", "same", 0); !ok || d != 0 {
		t.Errorf("identical within 0: %d %v", d, ok)
	}
}

func TestDamerau(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"machien", "machine", 1}, // transposition counts once
		{"ca", "ac", 1},
		{"abc", "acb", 1},
		{"", "ab", 2},
		{"ab", "", 2},
		{"kitten", "sitting", 3},
		{"abcdef", "abcdef", 0},
	}
	for _, c := range cases {
		if got := DamerauLevenshtein(c.a, c.b); got != c.want {
			t.Errorf("Damerau(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDamerauWithin(t *testing.T) {
	if d, ok := DamerauLevenshteinWithin("machien", "machine", 1); !ok || d != 1 {
		t.Errorf("within: %d %v", d, ok)
	}
	if _, ok := DamerauLevenshteinWithin("abcdef", "a", 2); ok {
		t.Error("length filter failed")
	}
	if _, ok := DamerauLevenshteinWithin("ab", "ba", -1); ok {
		t.Error("negative max should reject")
	}
}

// naive reference implementation for the property tests.
func naiveLevenshtein(a, b []rune) int {
	dp := make([][]int, len(a)+1)
	for i := range dp {
		dp[i] = make([]int, len(b)+1)
		dp[i][0] = i
	}
	for j := 0; j <= len(b); j++ {
		dp[0][j] = j
	}
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			dp[i][j] = min3(dp[i-1][j]+1, dp[i][j-1]+1, dp[i-1][j-1]+cost)
		}
	}
	return dp[len(a)][len(b)]
}

func randWord(r *rand.Rand, n int) string {
	letters := []rune("abcde")
	w := make([]rune, r.Intn(n))
	for i := range w {
		w[i] = letters[r.Intn(len(letters))]
	}
	return string(w)
}

func TestPropertyMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 1500; i++ {
		a, b := randWord(r, 12), randWord(r, 12)
		want := naiveLevenshtein([]rune(a), []rune(b))
		if got := Levenshtein(a, b); got != want {
			t.Fatalf("Levenshtein(%q,%q) = %d, want %d", a, b, got, want)
		}
		for max := 0; max <= 4; max++ {
			d, ok := LevenshteinWithin(a, b, max)
			if (want <= max) != ok || (ok && d != want) {
				t.Fatalf("LevenshteinWithin(%q,%q,%d) = %d,%v want %d", a, b, max, d, ok, want)
			}
		}
	}
}

// Property: triangle inequality and identity-of-indiscernibles for both
// metrics.
func TestPropertyMetricAxioms(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 800; i++ {
		a, b, c := randWord(r, 10), randWord(r, 10), randWord(r, 10)
		for name, f := range map[string]func(string, string) int{
			"lev": Levenshtein, "dam": DamerauLevenshtein,
		} {
			if f(a, a) != 0 {
				t.Fatalf("%s(%q,%q) != 0", name, a, a)
			}
			if f(a, b) != f(b, a) {
				t.Fatalf("%s symmetry failed for %q,%q", name, a, b)
			}
			if f(a, c) > f(a, b)+f(b, c) {
				t.Fatalf("%s triangle failed for %q,%q,%q", name, a, b, c)
			}
			if a != b && f(a, b) == 0 {
				t.Fatalf("%s(%q,%q) = 0 for distinct strings", name, a, b)
			}
		}
	}
}

// Property: Damerau <= Levenshtein always (transpositions only help).
func TestPropertyDamerauNotWorse(t *testing.T) {
	f := func(a, b string) bool {
		return DamerauLevenshtein(a, b) <= Levenshtein(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLevenshteinWithin(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		LevenshteinWithin("inproceedings", "inproceeding", 2)
	}
}
