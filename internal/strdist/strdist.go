// Package strdist provides string edit distances used to derive
// spelling-correction and merge/split refinement rules and their
// dissimilarity scores (Section III-B of the paper: "for term merging/split
// and spelling error correction, ds_r can be the variants of some
// morphological metric such as string edit distance").
package strdist

import "unicode/utf8"

// Levenshtein returns the classic edit distance between a and b: the
// minimum number of single-rune insertions, deletions and substitutions
// turning a into b.
func Levenshtein(a, b string) int {
	return levenshtein([]rune(a), []rune(b), -1)
}

// LevenshteinWithin returns the Levenshtein distance between a and b if it
// is at most max, and (0, false) otherwise. The banded computation costs
// O(max·min(|a|,|b|)) which makes vocabulary scans for spelling candidates
// affordable.
func LevenshteinWithin(a, b string, max int) (int, bool) {
	if max < 0 {
		return 0, false
	}
	// Cheap length filter before allocating.
	la, lb := utf8.RuneCountInString(a), utf8.RuneCountInString(b)
	if la-lb > max || lb-la > max {
		return 0, false
	}
	d := levenshtein([]rune(a), []rune(b), max)
	if d < 0 || d > max {
		return 0, false
	}
	return d, true
}

// levenshtein computes the edit distance; when max >= 0 the computation is
// banded and returns -1 as soon as the distance provably exceeds max.
func levenshtein(a, b []rune, max int) int {
	if len(a) < len(b) {
		a, b = b, a
	}
	// b is the shorter string; one row of length len(b)+1.
	if len(b) == 0 {
		return len(a)
	}
	row := make([]int, len(b)+1)
	for j := range row {
		row[j] = j
	}
	for i := 1; i <= len(a); i++ {
		prev := row[0] // row[i-1][0]
		row[0] = i
		best := row[0]
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur := min3(row[j]+1, row[j-1]+1, prev+cost)
			prev = row[j]
			row[j] = cur
			if cur < best {
				best = cur
			}
		}
		if max >= 0 && best > max {
			return -1
		}
	}
	return row[len(b)]
}

// DamerauLevenshtein returns the restricted Damerau-Levenshtein distance
// (edits plus adjacent transpositions). Typos frequently transpose
// neighbouring letters ("machien" for "machine"), so spelling-rule scoring
// counts a transposition as one edit rather than two.
func DamerauLevenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	// Three rows: i-2, i-1, i.
	prev2 := make([]int, len(rb)+1)
	prev1 := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev1 {
		prev1[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev1[j]+1, cur[j-1]+1, prev1[j-1]+cost)
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				if t := prev2[j-2] + 1; t < cur[j] {
					cur[j] = t
				}
			}
		}
		prev2, prev1, cur = prev1, cur, prev2
	}
	return prev1[len(rb)]
}

// DamerauLevenshteinWithin is DamerauLevenshtein with an early-exit bound,
// mirroring LevenshteinWithin.
func DamerauLevenshteinWithin(a, b string, max int) (int, bool) {
	if max < 0 {
		return 0, false
	}
	la, lb := utf8.RuneCountInString(a), utf8.RuneCountInString(b)
	if la-lb > max || lb-la > max {
		return 0, false
	}
	d := DamerauLevenshtein(a, b)
	if d > max {
		return 0, false
	}
	return d, true
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
