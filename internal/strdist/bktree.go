package strdist

// BKTree is a Burkhard-Keller tree over the Levenshtein metric: a classic
// index for "all words within edit distance d" queries. Rule generation
// probes it once per unknown query term instead of scanning the whole
// vocabulary; the triangle inequality prunes subtrees whose distance band
// cannot contain a match.
//
// The tree metric is plain Levenshtein deliberately: the restricted
// Damerau-Levenshtein distance (adjacent transpositions) violates the
// triangle inequality, which silently breaks BK-tree pruning. Callers that
// want transposition-friendly *scores* re-rate the returned neighbourhood
// with DamerauLevenshtein — every transposition neighbour is still found,
// because its Levenshtein distance is at most twice its Damerau distance.
//
// The structure is build-once/query-many and safe for concurrent readers
// after Build (or after the last Add).
type BKTree struct {
	root *bkNode
	size int
}

type bkNode struct {
	word string
	// children is keyed by distance to this node's word. Distances are
	// small non-negative ints; a slice indexed by distance beats a map
	// for both speed and memory at vocabulary scale.
	children []*bkNode
}

// NewBKTree builds a tree from words; duplicates are ignored.
func NewBKTree(words []string) *BKTree {
	t := &BKTree{}
	for _, w := range words {
		t.Add(w)
	}
	return t
}

// Len returns the number of stored words.
func (t *BKTree) Len() int { return t.size }

// Add inserts a word. Adding during concurrent queries is not safe.
func (t *BKTree) Add(word string) {
	if word == "" {
		return
	}
	if t.root == nil {
		t.root = &bkNode{word: word}
		t.size++
		return
	}
	n := t.root
	for {
		d := Levenshtein(word, n.word)
		if d == 0 {
			return // duplicate
		}
		for len(n.children) <= d {
			n.children = append(n.children, nil)
		}
		if n.children[d] == nil {
			n.children[d] = &bkNode{word: word}
			t.size++
			return
		}
		n = n.children[d]
	}
}

// Match is one neighbourhood hit.
type Match struct {
	Word     string
	Distance int
}

// Within returns every stored word at Levenshtein distance in [1, max] of
// word (the word itself is excluded), in no particular order.
func (t *BKTree) Within(word string, max int) []Match {
	if t.root == nil || max < 1 {
		return nil
	}
	var out []Match
	stack := []*bkNode{t.root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		d := Levenshtein(word, n.word)
		if d >= 1 && d <= max {
			out = append(out, Match{Word: n.word, Distance: d})
		}
		// Triangle inequality: a child at edge distance c can hold
		// words at distance >= |d - c| from the query, so only edges
		// in [d-max, d+max] can contain matches.
		lo, hi := d-max, d+max
		if lo < 1 {
			lo = 1
		}
		if hi >= len(n.children) {
			hi = len(n.children) - 1
		}
		for c := lo; c <= hi; c++ {
			if n.children[c] != nil {
				stack = append(stack, n.children[c])
			}
		}
	}
	return out
}
