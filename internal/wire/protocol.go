// Package wire implements XRefine's binary serving protocol: a
// length-prefixed, RESP-style framed protocol over persistent TCP
// connections with pipelining, designed so the serving hot path —
// read frame → decode → Engine.QueryCtx → encode → write — stays within
// the same ≤2-allocs-per-request envelope the engine's instrumentation
// guard already enforces.
//
// # Frame grammar
//
// Every frame is a 4-byte big-endian payload length followed by the
// payload. Request payloads are
//
//	version(1) opcode(1) flags(2, BE) trace_id(8, BE) body…
//
// and response payloads are
//
//	version(1) status(1) trace_id(8, BE) body…
//
// The version byte doubles as the feature-negotiation surface: a client
// opens with OpHello carrying the highest version it speaks, and the
// server answers with a JSON feature document under its own version byte.
// A server receiving a frame whose version it does not speak answers a
// StatusError frame (code 400) naming the versions it accepts; the
// connection stays open so the client can retry lower. Everything else —
// unknown opcode, malformed body — is also a StatusError frame. Framing
// violations (oversized length prefix, truncated frame) are answered with
// a final error frame where possible and then close the connection: once
// byte alignment is lost there is nothing left to resynchronize on.
//
// The trace_id field threads the flight recorder through the binary
// surface: a client may supply its own nonzero ID (distributed-trace
// style); zero asks the server to mint one. Responses echo the ID that
// was actually used, so a client can resolve /debug/trace/<id> and
// /debug/events?trace_id=<id> on the HTTP ops surface for any wire
// request.
//
// # Query semantics
//
// OpQuery carries pre-tokenized terms (clients normalize with
// tokenize.Query, exactly what the HTTP handler does to ?q=), a strategy
// byte, K and a parallelism override. The success body is the /search
// JSON document, byte-for-byte: the two surfaces answer identically
// inside their envelopes, which is what the differential conformance
// suite asserts. StatusRetry is the binary equivalent of HTTP 503 +
// Retry-After: one hint byte (jittered seconds) then the message.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"xrefine/internal/obs"
)

// Version is the protocol version this package speaks. Frames carrying
// any other version are rejected with ErrVersion.
const Version = 1

// Opcodes. Zero is deliberately invalid so an all-zero frame cannot be a
// well-formed request.
const (
	// OpHello negotiates: the body is empty, the response body is a JSON
	// document naming the server's version and features.
	OpHello = 0x01
	// OpQuery answers a keyword query; see Request.
	OpQuery = 0x02
	// OpPing answers with an empty StatusOK frame — liveness and RTT.
	OpPing = 0x03
)

// Response status bytes.
const (
	// StatusOK carries the operation's result body.
	StatusOK = 0x00
	// StatusError carries uint16 code + message; the code space mirrors
	// HTTP (400 bad request, 499 client cancelled, 500 internal).
	StatusError = 0x01
	// StatusRetry is the admission gate shedding load — HTTP 503 with a
	// Retry-After hint: one byte of jittered seconds, then the message.
	StatusRetry = 0x02
)

// Request flag bits (none are defined yet; the field reserves the room a
// future explain/compression negotiation needs without a version bump).
const flagsNone = 0

// Frame size limits. Requests are small — terms, not documents — so the
// request bound is tight and protects the server from adversarial length
// prefixes: the allocation happens only after the bound check, so a
// 4 GiB prefix costs the attacker a closed connection, not the server
// 4 GiB. The response bound protects clients the same way.
const (
	// MaxRequestFrame bounds a request payload.
	MaxRequestFrame = 1 << 20
	// MaxResponseFrame bounds a response payload a client will accept.
	MaxResponseFrame = 256 << 20
)

// reqHeaderLen/respHeaderLen are the fixed payload prefixes before the body.
const (
	reqHeaderLen  = 1 + 1 + 2 + 8
	respHeaderLen = 1 + 1 + 8
)

// Error codes carried by StatusError frames, mirroring HTTP for
// familiarity.
const (
	CodeBadRequest  = 400
	CodeFrameTooBig = 413
	CodeCancelled   = 499
	CodeInternal    = 500
)

// Typed protocol errors. Decoders return these (wrapped with detail);
// they must never panic or allocate proportionally to attacker-chosen
// length fields.
var (
	// ErrFrameTooLarge: a length prefix exceeded the frame bound.
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	// ErrTruncated: the payload ended before its declared structure did.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrVersion: the frame's version byte is not one this side speaks.
	ErrVersion = errors.New("wire: unsupported protocol version")
	// ErrBadFrame: structurally invalid payload (bad opcode, overflowing
	// varint, term count or length inconsistent with the payload size).
	ErrBadFrame = errors.New("wire: malformed frame")
)

// Request is one decoded query request. Terms alias the decode buffer:
// they are valid until the next Decode into the same buffer, which is
// exactly the lifetime the serving loop needs and saves per-term copies.
type Request struct {
	Op       byte
	Flags    uint16
	Trace    obs.TraceID
	Strategy byte
	K        int
	Parallel int
	Terms    [][]byte
}

// AppendRequest encodes a query request onto dst and returns the extended
// slice, frame prefix included. Strategy is the core.Strategy value; k
// and parallel follow the HTTP defaults (k<=0 means "server default",
// parallel<=0 means "engine configuration").
func AppendRequest(dst []byte, trace obs.TraceID, strategy byte, k, parallel int, terms []string) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length prefix, patched below
	dst = append(dst, Version, OpQuery)
	dst = binary.BigEndian.AppendUint16(dst, flagsNone)
	dst = binary.BigEndian.AppendUint64(dst, uint64(trace))
	dst = append(dst, strategy)
	if k < 0 {
		k = 0
	}
	if parallel < 0 {
		parallel = 0
	}
	dst = binary.AppendUvarint(dst, uint64(k))
	dst = binary.AppendUvarint(dst, uint64(parallel))
	dst = binary.AppendUvarint(dst, uint64(len(terms)))
	for _, t := range terms {
		dst = binary.AppendUvarint(dst, uint64(len(t)))
		dst = append(dst, t...)
	}
	binary.BigEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}

// AppendControl encodes a bodyless request frame (OpHello, OpPing) onto
// dst.
func AppendControl(dst []byte, op byte, trace obs.TraceID) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = append(dst, Version, op)
	dst = binary.BigEndian.AppendUint16(dst, flagsNone)
	dst = binary.BigEndian.AppendUint64(dst, uint64(trace))
	binary.BigEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}

// Decode parses a request payload (the bytes after the length prefix)
// into r, reusing r.Terms. Terms alias payload. The version byte is
// checked first so the caller can distinguish a speaker of a future
// protocol from line noise.
func (r *Request) Decode(payload []byte) error {
	if len(payload) < reqHeaderLen {
		return fmt.Errorf("%w: %d-byte request payload", ErrTruncated, len(payload))
	}
	if payload[0] != Version {
		return fmt.Errorf("%w: got %d, this server speaks %d", ErrVersion, payload[0], Version)
	}
	r.Op = payload[1]
	r.Flags = binary.BigEndian.Uint16(payload[2:4])
	r.Trace = obs.TraceID(binary.BigEndian.Uint64(payload[4:12]))
	r.Strategy, r.K, r.Parallel = 0, 0, 0
	r.Terms = r.Terms[:0]
	body := payload[reqHeaderLen:]
	switch r.Op {
	case OpHello, OpPing:
		if len(body) != 0 {
			return fmt.Errorf("%w: op %d carries no body", ErrBadFrame, r.Op)
		}
		return nil
	case OpQuery:
	default:
		return fmt.Errorf("%w: unknown opcode %d", ErrBadFrame, r.Op)
	}
	if len(body) < 1 {
		return fmt.Errorf("%w: query body missing strategy", ErrTruncated)
	}
	r.Strategy = body[0]
	if r.Strategy > 2 {
		return fmt.Errorf("%w: unknown strategy %d", ErrBadFrame, r.Strategy)
	}
	body = body[1:]
	k, n := binary.Uvarint(body)
	if n <= 0 || k > 1<<20 {
		return fmt.Errorf("%w: bad k", ErrBadFrame)
	}
	body = body[n:]
	par, n := binary.Uvarint(body)
	if n <= 0 || par > 1<<16 {
		return fmt.Errorf("%w: bad parallelism", ErrBadFrame)
	}
	body = body[n:]
	nterms, n := binary.Uvarint(body)
	if n <= 0 {
		return fmt.Errorf("%w: bad term count", ErrBadFrame)
	}
	body = body[n:]
	// A term is at least one length byte; the bound rejects counts the
	// remaining payload cannot possibly hold before any loop work.
	if nterms == 0 || nterms > uint64(len(body)) {
		return fmt.Errorf("%w: %d terms in %d bytes", ErrBadFrame, nterms, len(body))
	}
	r.K, r.Parallel = int(k), int(par)
	for i := uint64(0); i < nterms; i++ {
		tl, n := binary.Uvarint(body)
		if n <= 0 || tl > uint64(len(body)-n) {
			return fmt.Errorf("%w: term %d length", ErrTruncated, i)
		}
		if tl == 0 {
			return fmt.Errorf("%w: empty term %d", ErrBadFrame, i)
		}
		r.Terms = append(r.Terms, body[n:n+int(tl)])
		body = body[n+int(tl):]
	}
	if len(body) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after terms", ErrBadFrame, len(body))
	}
	return nil
}

// appendRespHeader starts a response frame onto dst: length placeholder
// plus the fixed header. patchFrameLen must be called with the returned
// start offset once the body is complete.
func appendRespHeader(dst []byte, status byte, trace obs.TraceID) ([]byte, int) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = append(dst, Version, status)
	dst = binary.BigEndian.AppendUint64(dst, uint64(trace))
	return dst, start
}

// patchFrameLen writes the final payload length into the placeholder at
// start.
func patchFrameLen(dst []byte, start int) []byte {
	binary.BigEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}

// AppendError encodes a StatusError response frame.
func AppendError(dst []byte, trace obs.TraceID, code uint16, msg string) []byte {
	dst, start := appendRespHeader(dst, StatusError, trace)
	dst = binary.BigEndian.AppendUint16(dst, code)
	dst = append(dst, msg...)
	return patchFrameLen(dst, start)
}

// AppendRetry encodes a StatusRetry response frame with the given
// Retry-After hint in seconds (clamped to one byte).
func AppendRetry(dst []byte, trace obs.TraceID, afterSec int, msg string) []byte {
	if afterSec < 0 {
		afterSec = 0
	}
	if afterSec > 255 {
		afterSec = 255
	}
	dst, start := appendRespHeader(dst, StatusRetry, trace)
	dst = append(dst, byte(afterSec))
	dst = append(dst, msg...)
	return patchFrameLen(dst, start)
}

// Response is one decoded response. Payload aliases the decode buffer.
type Response struct {
	Status byte
	Trace  obs.TraceID
	// Code is the error code for StatusError responses.
	Code uint16
	// RetryAfter is the jittered backoff hint, seconds, for StatusRetry.
	RetryAfter int
	// Payload is the body: the JSON document for a StatusOK query
	// response, the message for error/retry responses.
	Payload []byte
}

// DecodeResponse parses a response payload (after the length prefix).
func DecodeResponse(payload []byte, resp *Response) error {
	if len(payload) < respHeaderLen {
		return fmt.Errorf("%w: %d-byte response payload", ErrTruncated, len(payload))
	}
	if payload[0] != Version {
		return fmt.Errorf("%w: got %d, this client speaks %d", ErrVersion, payload[0], Version)
	}
	resp.Status = payload[1]
	resp.Trace = obs.TraceID(binary.BigEndian.Uint64(payload[2:10]))
	resp.Code, resp.RetryAfter = 0, 0
	body := payload[respHeaderLen:]
	switch resp.Status {
	case StatusOK:
		resp.Payload = body
	case StatusError:
		if len(body) < 2 {
			return fmt.Errorf("%w: error frame missing code", ErrTruncated)
		}
		resp.Code = binary.BigEndian.Uint16(body)
		resp.Payload = body[2:]
	case StatusRetry:
		if len(body) < 1 {
			return fmt.Errorf("%w: retry frame missing hint", ErrTruncated)
		}
		resp.RetryAfter = int(body[0])
		resp.Payload = body[1:]
	default:
		return fmt.Errorf("%w: unknown status %d", ErrBadFrame, resp.Status)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame from r into buf (grown as
// needed) and returns the payload slice, which aliases buf. A length
// prefix over max returns ErrFrameTooLarge with no allocation made for
// the oversized payload; the caller must treat the stream as
// unrecoverable and close it.
func ReadFrame(r io.Reader, buf []byte, max int) ([]byte, []byte, error) {
	// The length prefix is read into buf itself rather than a local
	// array: a [4]byte passed through the io.Reader interface escapes,
	// which would put one heap allocation on every frame of the hot path.
	if cap(buf) < 4 {
		buf = make([]byte, 4, 4096)
	}
	hdr := buf[:4]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return buf, nil, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if n > uint32(max) {
		return buf, nil, fmt.Errorf("%w: %d bytes (max %d)", ErrFrameTooLarge, n, max)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return buf, nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return buf, buf, nil
}
