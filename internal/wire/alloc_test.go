package wire

import (
	"context"
	"testing"

	"xrefine/internal/core"
	"xrefine/internal/datagen"
)

// TestWireAllocOverhead extends the PR-3 instrumentation ratchet to the
// full wire round trip: read frame → decode → query → encode → write,
// plus the client's send/recv. AllocsPerRun counts process-wide mallocs,
// so with a zero-alloc client (pre-sized buffers, reused Response) the
// measurement is the whole server path. The ratchet: a warm wire round
// trip may allocate at most 2 more times per request than calling
// Engine.QueryTermsCtx directly — one for the fresh terms slice the
// engine retains in its cache, one of slack for the runtime's
// network-poll bookkeeping.
//
// The engine is index-only (no document), so Snippet reports ok=false
// and the encoder path is exercised without the per-snippet string
// allocation — the same shape the mem gate measures.
func TestWireAllocOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement")
	}
	doc, err := datagen.DBLPDocument(datagen.DBLPConfig{Authors: 60, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewFromIndex(core.NewFromDocument(doc, nil).Index(), &core.Config{CacheSize: 8})
	_, addr := startServer(t, eng, Options{})
	c := dial(t, addr)

	terms := []string{"database", "query"}
	const strat = byte(core.StrategyPartition)

	// Warm everything that legitimately allocates once per connection:
	// engine LRU (the measured query must be a cache hit on both paths),
	// the per-conn intern table, frame buffers, and the client's buffers.
	for i := 0; i < 50; i++ {
		resp, err := c.Query(7, strat, 3, 0, terms)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != StatusOK {
			t.Fatalf("status %d: %s", resp.Status, resp.Payload)
		}
	}

	ctx := context.Background()
	base := testing.AllocsPerRun(200, func() {
		if _, err := eng.QueryTermsCtx(ctx, terms, core.Strategy(strat), 3, 0); err != nil {
			t.Fatal(err)
		}
	})
	wire := testing.AllocsPerRun(200, func() {
		resp, err := c.Query(7, strat, 3, 0, terms)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != StatusOK {
			t.Fatalf("status %d", resp.Status)
		}
	})
	t.Logf("allocs/request: wire round trip %.1f, direct engine call %.1f, overhead %.1f",
		wire, base, wire-base)
	if wire > base+2 {
		t.Errorf("wire round trip = %.1f allocs/request, direct = %.1f; overhead %.1f exceeds the 2-alloc ratchet",
			wire, base, wire-base)
	}
}
