package wire

import (
	"fmt"
	"net"
	"time"

	"xrefine/internal/obs"
)

// Client speaks the wire protocol over one persistent connection. It is
// single-owner (not safe for concurrent use); pipelining is explicit —
// queue with Send, push with Flush, collect with Recv — and Query wraps
// the three for the one-at-a-time case. Receive buffers are reused, so a
// Response and its Payload are valid only until the next Recv.
type Client struct {
	nc       net.Conn
	wbuf     []byte
	rbuf     []byte
	resp     Response
	inflight int
}

// Dial connects to a wire server.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// NewClient wraps an established connection (tests pair it with
// net.Pipe).
func NewClient(nc net.Conn) *Client {
	return &Client{
		nc:   nc,
		wbuf: make([]byte, 0, 4096),
		rbuf: make([]byte, 0, 4096),
	}
}

// Close closes the connection. In-flight requests are abandoned; the
// server cancels their queries promptly.
func (c *Client) Close() error { return c.nc.Close() }

// Send queues one query request. Terms must be pre-tokenized with
// tokenize.Query — the same normalization the HTTP handler applies to
// ?q= — for the surfaces to answer identically. A zero trace asks the
// server to mint one.
func (c *Client) Send(trace obs.TraceID, strategy byte, k, parallel int, terms []string) {
	c.wbuf = AppendRequest(c.wbuf, trace, strategy, k, parallel, terms)
	c.inflight++
}

// Flush writes every queued request in one batch.
func (c *Client) Flush() error {
	if len(c.wbuf) == 0 {
		return nil
	}
	_, err := c.nc.Write(c.wbuf)
	c.wbuf = c.wbuf[:0]
	return err
}

// Recv reads the next response in pipeline order. The returned Response
// aliases the client's receive buffer.
func (c *Client) Recv() (*Response, error) {
	if err := c.Flush(); err != nil {
		return nil, err
	}
	buf, payload, err := ReadFrame(c.nc, c.rbuf, MaxResponseFrame)
	c.rbuf = buf
	if err != nil {
		return nil, err
	}
	if c.inflight > 0 {
		c.inflight--
	}
	if err := DecodeResponse(payload, &c.resp); err != nil {
		return nil, err
	}
	return &c.resp, nil
}

// Query sends one query and waits for its response — Send, Flush, Recv.
func (c *Client) Query(trace obs.TraceID, strategy byte, k, parallel int, terms []string) (*Response, error) {
	c.Send(trace, strategy, k, parallel, terms)
	return c.Recv()
}

// Ping round-trips an empty frame.
func (c *Client) Ping() error {
	c.wbuf = AppendControl(c.wbuf, OpPing, 0)
	c.inflight++
	resp, err := c.Recv()
	if err != nil {
		return err
	}
	if resp.Status != StatusOK {
		return fmt.Errorf("wire: ping answered status %d: %s", resp.Status, resp.Payload)
	}
	return nil
}

// Hello negotiates and returns the server's feature document (JSON).
func (c *Client) Hello() ([]byte, error) {
	c.wbuf = AppendControl(c.wbuf, OpHello, 0)
	c.inflight++
	resp, err := c.Recv()
	if err != nil {
		return nil, err
	}
	if resp.Status != StatusOK {
		return nil, fmt.Errorf("wire: hello answered status %d: %s", resp.Status, resp.Payload)
	}
	return resp.Payload, nil
}
