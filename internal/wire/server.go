package wire

import (
	"context"
	"errors"
	"log"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"xrefine/internal/core"
	"xrefine/internal/obs"
	"xrefine/internal/server"
)

// ErrServerClosed is returned by Serve after Shutdown.
var ErrServerClosed = errors.New("wire: server closed")

// Options tunes the wire server's protective edges, mirroring the HTTP
// server's Config: the same per-request deadline and bounded-concurrency
// admission gate, applied at the frame boundary instead of the request
// line.
type Options struct {
	// Timeout bounds each query's handling when positive, with the
	// engine's deadline semantics: an overrunning query returns partial
	// results flagged degraded rather than holding the connection.
	Timeout time.Duration
	// MaxInFlight caps concurrently-executing queries across all
	// connections when positive. Excess requests are answered immediately
	// with StatusRetry and a jittered backoff hint — the binary
	// equivalent of HTTP 503 + Retry-After.
	MaxInFlight int
	// PipelineDepth bounds how many decoded requests may queue behind an
	// executing one per connection; beyond it the reader stops pulling
	// frames and TCP backpressure reaches the client. 0 means 32.
	PipelineDepth int
}

const defaultPipelineDepth = 32

// defaultK mirrors the HTTP handler's k default so a request that leaves
// K zero gets the same answer from both surfaces.
const defaultK = 3

// helloBody is the feature document OpHello answers with.
var helloBody = []byte(`{"version":1,"features":["pipelining","trace-id","retry-hint"]}` + "\n")

// Server serves the binary protocol over persistent connections. Each
// connection runs two goroutines: a reader that frames and decodes
// requests, and a worker that executes them in order — so a pipeline of
// requests overlaps decode with query execution while responses still
// come back in request order. All per-request state (frame buffers,
// decode scratch, the response encode buffer, the term intern table) is
// per-connection and reused, which is what keeps the steady-state path
// within the engine's ≤2-allocs-per-request envelope.
type Server struct {
	eng  server.Backend
	opts Options
	gate chan struct{} // admission semaphore; nil when unbounded

	flight *obs.FlightRecorder

	mConns    *obs.Counter
	mOpen     *obs.Gauge
	mInflight *obs.Gauge
	mShed     *obs.Counter
	mPanics   *obs.Counter
	mSeconds  *obs.Histogram
	// Request counters pre-bound per (op, code): CounterVec.With is
	// variadic and would cost an allocation per call on the hot path.
	mQueryOK, mQueryBad, mQueryCancel, mQueryErr, mQueryShed *obs.Counter
	mPing, mHello, mFrameErr                                 *obs.Counter

	baseCtx    context.Context
	baseCancel context.CancelFunc
	inShutdown atomic.Bool
	wg         sync.WaitGroup

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[*conn]struct{}
}

// NewServer builds a wire server around the same Backend the HTTP server
// serves. Metrics land in the backend's registry under the
// xrefine_wire_* namespace; a metrics-disabled backend serves untracked.
func NewServer(eng server.Backend, opts Options) *Server {
	if opts.PipelineDepth <= 0 {
		opts.PipelineDepth = defaultPipelineDepth
	}
	s := &Server{
		eng:       eng,
		opts:      opts,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[*conn]struct{}),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	if opts.MaxInFlight > 0 {
		s.gate = make(chan struct{}, opts.MaxInFlight)
	}
	reg := eng.Metrics()
	s.flight = reg.Flight()
	s.mConns = reg.Counter("xrefine_wire_connections_total",
		"Wire connections accepted.")
	s.mOpen = reg.Gauge("xrefine_wire_connections_open",
		"Wire connections currently open.")
	s.mInflight = reg.Gauge("xrefine_wire_inflight",
		"Wire queries currently executing.")
	s.mShed = reg.Counter("xrefine_wire_shed_total",
		"Wire requests rejected by the admission gate.")
	s.mPanics = reg.Counter("xrefine_wire_panics_total",
		"Wire request panics contained.")
	s.mSeconds = reg.Histogram("xrefine_wire_request_seconds",
		"Wire request latency in seconds (query frames only).", obs.DefBuckets)
	reqs := reg.CounterVec("xrefine_wire_requests_total",
		"Wire requests served, by op and status code.", "op", "code")
	s.mQueryOK = reqs.With("query", "200")
	s.mQueryBad = reqs.With("query", "400")
	s.mQueryCancel = reqs.With("query", "499")
	s.mQueryErr = reqs.With("query", "500")
	s.mQueryShed = reqs.With("query", "503")
	s.mPing = reqs.With("ping", "200")
	s.mHello = reqs.With("hello", "200")
	s.mFrameErr = reqs.With("frame", "400")
	return s
}

// Serve accepts connections on l until Shutdown. Each connection gets its
// own reader/worker pair; Serve itself only accepts.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.inShutdown.Load() {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		nc, err := l.Accept()
		if err != nil {
			if s.inShutdown.Load() {
				return ErrServerClosed
			}
			return err
		}
		if s.inShutdown.Load() {
			nc.Close()
			continue
		}
		s.wg.Add(1)
		go s.serveConn(nc)
	}
}

// ServeConn serves one pre-established connection (tests drive net.Pipe
// and TCP loopback through this) and blocks until it is done.
func (s *Server) ServeConn(nc net.Conn) {
	s.wg.Add(1)
	s.serveConn(nc)
}

// Shutdown drains: it stops accepting, lets queued and in-flight
// requests on every connection finish and flush, then closes the
// connections. If ctx expires first the remaining work is cancelled and
// connections are closed immediately — the same two-phase drain the HTTP
// surface gets from http.Server.Shutdown.
func (s *Server) Shutdown(ctx context.Context) error {
	s.inShutdown.Store(true)
	s.mu.Lock()
	for l := range s.listeners {
		l.Close()
	}
	// Unblock every reader parked in a frame read; with the shutdown flag
	// up they treat the deadline as "no more requests" rather than a
	// disconnect, so queued work still completes.
	for c := range s.conns {
		c.nc.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// pendingReq is one framed request travelling from the reader to the
// worker. Instances cycle through a per-connection freelist so the
// steady state allocates none.
type pendingReq struct {
	buf []byte  // owned copy of the frame payload
	req Request // decoded view; Terms alias buf

	// Decode-failure report, answered in pipeline order like any result.
	errCode  uint16
	errMsg   string
	closeNow bool // framing violation: answer, then close the connection
}

// conn is one persistent client connection.
type conn struct {
	srv    *Server
	nc     net.Conn
	ctx    context.Context
	cancel context.CancelFunc
	reqCtx context.Context // carries ri; reused across requests
	ri     *obs.ReqInfo

	pending chan *pendingReq
	free    chan *pendingReq

	rbuf   []byte            // reader: frame payload scratch
	wbuf   []byte            // worker: response frame scratch
	wout   *connWriter       // worker: buffered writes to nc
	intern map[string]string // worker: term interning table
}

// connWriter is a minimal buffered writer (bufio.Writer's Write path
// allocates nothing either, but an explicit one keeps the flush policy
// visible and the buffer reusable by size).
type connWriter struct {
	nc  net.Conn
	buf []byte
	err error
}

const writeBufSize = 64 << 10

func (w *connWriter) Write(p []byte) {
	if w.err != nil {
		return
	}
	if len(w.buf)+len(p) <= writeBufSize || len(w.buf) == 0 {
		w.buf = append(w.buf, p...)
		return
	}
	w.Flush()
	w.buf = append(w.buf, p...)
}

func (w *connWriter) Flush() {
	if w.err != nil || len(w.buf) == 0 {
		return
	}
	_, w.err = w.nc.Write(w.buf)
	w.buf = w.buf[:0]
}

func (s *Server) serveConn(nc net.Conn) {
	defer s.wg.Done()
	c := &conn{
		srv:     s,
		nc:      nc,
		pending: make(chan *pendingReq, s.opts.PipelineDepth),
		free:    make(chan *pendingReq, s.opts.PipelineDepth+1),
		rbuf:    make([]byte, 0, 4096),
		wbuf:    make([]byte, 0, 4096),
		wout:    &connWriter{nc: nc, buf: make([]byte, 0, 4096)},
		intern:  make(map[string]string),
		ri:      obs.NewReqInfo(),
	}
	c.ctx, c.cancel = context.WithCancel(s.baseCtx)
	c.reqCtx = obs.WithReqInfo(c.ctx, c.ri)
	s.mu.Lock()
	if s.inShutdown.Load() {
		s.mu.Unlock()
		nc.Close()
		return
	}
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	s.mConns.Inc()
	s.mOpen.Add(1)
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		s.mOpen.Add(-1)
		c.cancel()
		nc.Close()
	}()
	go c.readLoop()
	c.workLoop()
}

// readLoop frames and decodes requests in arrival order. Decoding here,
// on the reader goroutine, overlaps the next request's parse with the
// current query's execution — the pipelining win beyond saved
// round-trips. On any transport error the in-flight query is cancelled
// promptly (a mid-pipeline disconnect must not keep burning engine time);
// the exception is the drain deadline, which means "finish what you
// have".
func (c *conn) readLoop() {
	defer close(c.pending)
	for {
		buf, payload, err := ReadFrame(c.nc, c.rbuf, MaxRequestFrame)
		c.rbuf = buf
		if err != nil {
			if errors.Is(err, ErrFrameTooLarge) {
				c.enqueueError(CodeFrameTooBig, err.Error(), true)
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() && c.srv.inShutdown.Load() {
				return // draining: answer what is queued, send no more
			}
			// EOF, reset, or a frame cut mid-payload: the client is gone
			// or the stream is unrecoverable. Cancel promptly.
			c.cancel()
			return
		}
		pr := c.takeReq()
		pr.buf = append(pr.buf[:0], payload...)
		if err := pr.req.Decode(pr.buf); err != nil {
			pr.errCode, pr.errMsg = CodeBadRequest, err.Error()
			// A structurally bad body is answered and the connection
			// stays usable (byte alignment is intact; version mismatch
			// in particular must leave room to negotiate down).
			pr.closeNow = false
		}
		select {
		case c.pending <- pr:
		case <-c.ctx.Done():
			return
		}
	}
}

func (c *conn) takeReq() *pendingReq {
	select {
	case pr := <-c.free:
		pr.errCode, pr.errMsg, pr.closeNow = 0, "", false
		return pr
	default:
		return &pendingReq{}
	}
}

func (c *conn) enqueueError(code uint16, msg string, closeNow bool) {
	pr := c.takeReq()
	pr.errCode, pr.errMsg, pr.closeNow = code, msg, closeNow
	select {
	case c.pending <- pr:
	case <-c.ctx.Done():
	}
}

// workLoop executes queued requests in order and writes responses,
// flushing whenever the pipeline runs dry so a lone request is answered
// immediately while a burst shares one syscall.
func (c *conn) workLoop() {
	closing := false
	for pr := range c.pending {
		if !closing {
			closing = c.handle(pr)
			if len(c.pending) == 0 || closing {
				c.wout.Flush()
			}
			if closing || c.wout.err != nil {
				closing = true
				c.cancel()
				c.nc.Close() // unblocks the reader; remaining frames drain below
			}
		}
		select {
		case c.free <- pr:
		default:
		}
	}
	c.wout.Flush()
}

// handle answers one request and reports whether the connection must
// close afterwards. Panics are contained to the request, as on the HTTP
// surface.
func (c *conn) handle(pr *pendingReq) (closeConn bool) {
	defer func() {
		if v := recover(); v != nil {
			c.srv.mPanics.Inc()
			log.Printf("wire: panic serving request: %v", v)
			c.wbuf = AppendError(c.wbuf[:0], pr.req.Trace, CodeInternal, "internal error")
			c.wout.Write(c.wbuf)
		}
	}()
	if pr.errCode != 0 {
		c.srv.mFrameErr.Inc()
		c.wbuf = AppendError(c.wbuf[:0], pr.req.Trace, pr.errCode, pr.errMsg)
		c.wout.Write(c.wbuf)
		return pr.closeNow
	}
	switch pr.req.Op {
	case OpPing:
		c.srv.mPing.Inc()
		c.wbuf, _ = appendRespHeader(c.wbuf[:0], StatusOK, pr.req.Trace)
		c.wbuf = patchFrameLen(c.wbuf, 0)
		c.wout.Write(c.wbuf)
		return false
	case OpHello:
		c.srv.mHello.Inc()
		c.wbuf, _ = appendRespHeader(c.wbuf[:0], StatusOK, pr.req.Trace)
		c.wbuf = append(c.wbuf, helloBody...)
		c.wbuf = patchFrameLen(c.wbuf, 0)
		c.wout.Write(c.wbuf)
		return false
	default:
		return c.handleQuery(pr)
	}
}

// handleQuery is the binary hot path: admission, trace bookkeeping, the
// engine call, and the zero-copy encode. Its per-request allocations are
// the terms slice the engine retains (responses and the query cache keep
// it, so it cannot be pooled) and whatever the engine itself does — the
// TestWireAllocOverhead ratchet holds the full round-trip to within two
// allocations of a direct engine call.
func (c *conn) handleQuery(pr *pendingReq) (closeConn bool) {
	s := c.srv
	start := time.Now()
	ri := c.ri
	ri.Reset()
	if pr.req.Trace != 0 {
		ri.Trace = pr.req.Trace
	}
	s.flight.Record(obs.Event{Trace: ri.Trace, Kind: obs.EvAdmit,
		Shard: -1, Replica: -1, Note: "wire:query"})
	code := 200
	defer func() {
		dur := time.Since(start)
		s.flight.Record(obs.Event{Trace: ri.Trace, Kind: obs.EvFinish,
			Shard: -1, Replica: -1, DurNS: int64(dur), N: int64(code), Note: "wire:query"})
		s.mSeconds.Observe(dur.Seconds())
	}()
	if s.gate != nil {
		select {
		case s.gate <- struct{}{}:
			defer func() { <-s.gate }()
		default:
			// Shed with the same jittered hint HTTP sends in Retry-After,
			// so a fleet of shed clients does not retry in lockstep.
			code = 503
			s.mShed.Inc()
			s.mQueryShed.Inc()
			c.wbuf = AppendRetry(c.wbuf[:0], ri.Trace, 1+rand.Intn(3), "server at capacity")
			c.wout.Write(c.wbuf)
			return false
		}
	}
	s.mInflight.Add(1)
	defer s.mInflight.Add(-1)

	// The engine retains the terms slice in its response and query cache,
	// so it gets a fresh slice; the term strings themselves come from the
	// per-connection intern table, so a repeated vocabulary costs one
	// small allocation per request, not one per term.
	terms := make([]string, 0, len(pr.req.Terms))
	for _, tb := range pr.req.Terms {
		terms = append(terms, c.internTerm(tb))
	}
	k := pr.req.K
	if k <= 0 {
		k = defaultK
	}
	ctx := c.reqCtx
	if s.opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.Timeout)
		defer cancel()
	}
	resp, err := s.eng.QueryTermsCtx(ctx, terms, core.Strategy(pr.req.Strategy), k, pr.req.Parallel)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			code = 499
			s.mQueryCancel.Inc()
			c.wbuf = AppendError(c.wbuf[:0], ri.Trace, CodeCancelled, "client closed request")
			c.wout.Write(c.wbuf)
			// The client is normally gone; the write surfaces that and
			// closes the connection via workLoop's error check.
			return false
		}
		code = 500
		s.mQueryErr.Inc()
		c.wbuf = AppendError(c.wbuf[:0], ri.Trace, CodeInternal, err.Error())
		c.wout.Write(c.wbuf)
		return false
	}
	s.mQueryOK.Inc()
	c.wbuf, _ = appendRespHeader(c.wbuf[:0], StatusOK, ri.Trace)
	c.wbuf = AppendSearchBody(c.wbuf, resp, c.srv.eng)
	c.wbuf = patchFrameLen(c.wbuf, 0)
	c.wout.Write(c.wbuf)
	return false
}

// internMaxEntries bounds the per-connection intern table so an
// adversarial vocabulary cannot grow memory without bound; past the cap
// terms are copied per request instead.
const internMaxEntries = 4096

// internTerm returns a stable string for the term bytes. The map lookup
// on a []byte key compiles without a conversion allocation, so a warm
// vocabulary makes this free.
func (c *conn) internTerm(tb []byte) string {
	if s, ok := c.intern[string(tb)]; ok {
		return s
	}
	s := string(tb)
	if len(c.intern) < internMaxEntries {
		c.intern[s] = s
	}
	return s
}
