package wire

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"

	"xrefine/internal/core"
	"xrefine/internal/datagen"
	"xrefine/internal/dewey"
	"xrefine/internal/refine"
	"xrefine/internal/rules"
	"xrefine/internal/searchfor"
	"xrefine/internal/server"
	"xrefine/internal/tokenize"
	"xrefine/internal/xmltree"
)

// refBody renders resp the way the HTTP surface does: the shared
// SearchBody projection through encoding/json with the handler's encoder
// settings. This is the encoder's ground truth.
func refBody(t *testing.T, eng server.Backend, resp *core.Response) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := server.EncodeBody(&buf, server.SearchBody(eng, resp, nil)); err != nil {
		t.Fatalf("reference encode: %v", err)
	}
	return buf.Bytes()
}

// engSnippeter adapts a Backend to the encoder's Snippeter input, nil
// for nil so both encoders omit snippets together.
func engSnippeter(eng server.Backend) Snippeter {
	if eng == nil {
		return nil
	}
	return eng
}

func checkBody(t *testing.T, name string, eng server.Backend, resp *core.Response) {
	t.Helper()
	got := AppendSearchBody(nil, resp, engSnippeter(eng))
	want := refBody(t, eng, resp)
	if !bytes.Equal(got, want) {
		t.Errorf("%s: encoder diverges from encoding/json\n got: %q\nwant: %q", name, got, want)
	}
}

// TestEncoderMatchesJSON pins the zero-copy encoder to encoding/json on
// synthetic responses chosen to hit every branch: nil vs empty slices,
// omitempty fields, degraded markers, steps of both kinds, floats in
// both of encoding/json's formats, and strings that need every escape
// class.
func TestEncoderMatchesJSON(t *testing.T) {
	reg := xmltree.NewRegistry()
	root := reg.Intern(nil, "bib")
	paper := reg.Intern(root, "paper")
	title := reg.Intern(paper, "title")

	nastyStrings := []string{
		"plain",
		`quotes " and \ backslash`,
		"tabs\tnewlines\nreturns\r",
		"ctrl \x01\x1f bytes",
		"html <b>&amp;</b> bits",
		"unicode: héllo wörld 漢字",
		"line seps   and  ",
		"invalid utf8: \xff\xfe tail",
		"",
	}

	cases := []struct {
		name string
		resp core.Response
	}{
		{"zero", core.Response{}},
		{"nil-queries", core.Response{Terms: []string{"a"}, NeedRefine: true}},
		{"empty-queries", core.Response{Terms: []string{}, Queries: []core.RankedQuery{}}},
		{"search-for", core.Response{
			Terms:     []string{"db"},
			SearchFor: []searchfor.Candidate{{Type: paper, Confidence: 0.5}, {Type: title}},
		}},
		{"degraded", core.Response{
			Terms:          []string{"x"},
			Degraded:       true,
			DegradedReason: "posting-budget",
			Queries:        []core.RankedQuery{},
		}},
		{"nasty-strings", core.Response{
			Terms:          nastyStrings,
			DegradedReason: nastyStrings[4],
			Degraded:       true,
			Queries: []core.RankedQuery{{
				Keywords: nastyStrings,
				Steps: []refine.Step{
					{Delete: nastyStrings[1]},
					{Rule: &rules.Rule{Op: rules.OpSubstitute,
						LHS: []string{nastyStrings[2]}, RHS: []string{nastyStrings[5], "x"}, Score: 0.25}},
				},
			}},
		}},
		{"floats", core.Response{
			Queries: []core.RankedQuery{
				{DSim: 0, Score: 0},
				{DSim: 0.30000000000000004, Score: math.Pi},
				{DSim: 1e-7, Score: -1e-7},             // 'e' format with exponent cleanup
				{DSim: 1.5e21, Score: -2.25e21},        // 'e' format, positive exponent
				{DSim: math.Copysign(0, -1), Score: 1}, // negative zero
				{DSim: 1e20, Score: 9.999999e20},       // 'f' right at the boundary
				{DSim: math.SmallestNonzeroFloat64, Score: math.MaxFloat64},
			},
		}},
		{"steps-and-results", core.Response{
			Terms:      []string{"online", "databse"},
			NeedRefine: true,
			Queries: []core.RankedQuery{
				{
					Keywords:   []string{"online", "databse"},
					IsOriginal: true,
					Results:    []refine.Match{},
				},
				{
					Keywords: []string{"database", "online"},
					DSim:     1,
					Score:    0.75,
					Steps: []refine.Step{
						{Rule: &rules.Rule{Op: rules.OpSubstitute, LHS: []string{"databse"}, RHS: []string{"database"}, Score: 1}},
						{Rule: &rules.Rule{Op: rules.OpMerge, LHS: []string{"on", "line"}, RHS: []string{"online"}, Score: 1}},
						{Rule: &rules.Rule{Op: rules.OpSplit, LHS: []string{"keywordsearch"}, RHS: []string{"keyword", "search"}, Score: 1.5}},
						{Delete: "stray"},
						{}, // the "?" fallback
					},
					Results: []refine.Match{
						{ID: dewey.MustParse("0"), Type: root},
						{ID: dewey.MustParse("0.12.345"), Type: paper},
						{ID: dewey.ID{0, 1, 4294967295}, Type: title},
					},
				},
			},
		}},
	}
	for _, tc := range cases {
		checkBody(t, tc.name, nil, &tc.resp)
	}
}

// TestEncoderMatchesJSONOnEngineOutput runs real queries — including ones
// that refine, degrade, and carry snippets — and pins the encoder to the
// HTTP projection of each live response.
func TestEncoderMatchesJSONOnEngineOutput(t *testing.T) {
	doc, err := datagen.DBLPDocument(datagen.DBLPConfig{Authors: 80, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewFromDocument(doc, nil)
	budgeted := core.NewFromDocument(doc, &core.Config{PostingBudget: 1})
	queries := []string{
		"database query",
		"databse quary",
		"keyword serch xml",
		"twig matching pattern",
	}
	for _, e := range []*core.Engine{eng, budgeted} {
		for _, q := range queries {
			for strat := core.Strategy(0); strat <= 2; strat++ {
				resp, err := e.QueryTermsCtx(t.Context(), tokenize.Query(q), strat, 3, 0)
				if err != nil {
					t.Fatalf("%q strategy=%d: %v", q, strat, err)
				}
				checkBody(t, q, e, resp)
			}
		}
	}
}

// TestAppendJSONStringMatchesJSON fuzzes the string escaper against
// encoding/json over random byte soup as well as targeted escapes.
func TestAppendJSONStringMatchesJSON(t *testing.T) {
	check := func(s string) {
		t.Helper()
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		if got := appendJSONString(nil, s); !bytes.Equal(got, want) {
			t.Errorf("string %q: got %q want %q", s, got, want)
		}
	}
	for i := 0; i < 256; i++ {
		check(string(rune(i)))
		check(string([]byte{byte(i)})) // raw byte, possibly invalid UTF-8
	}
	check("  �￿")
	check(strings.Repeat("<&>\"\\\x00", 7))
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		b := make([]byte, rng.Intn(40))
		for j := range b {
			b[j] = byte(rng.Intn(256))
		}
		check(string(b))
	}
}

// TestAppendJSONFloatMatchesJSON fuzzes the float formatter against
// encoding/json across magnitudes, signs, and format boundaries.
func TestAppendJSONFloatMatchesJSON(t *testing.T) {
	check := func(f float64) {
		t.Helper()
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		if got := appendJSONFloat(nil, f); !bytes.Equal(got, want) {
			t.Errorf("float %v: got %q want %q", f, got, want)
		}
	}
	for _, f := range []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, 1.0 / 3.0,
		1e-6, 9.999999e-7, 1e-7, 1e21, 9.999e20, 1.0000001e21,
		math.MaxFloat64, -math.MaxFloat64,
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
		math.Pi, 0.30000000000000004, 1e100, 1e-100,
	} {
		check(f)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		f := math.Float64frombits(rng.Uint64())
		if math.IsNaN(f) || math.IsInf(f, 0) {
			continue // encoding/json rejects these; the engine never emits them
		}
		check(f)
	}
}
