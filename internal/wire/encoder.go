package wire

import (
	"math"
	"strconv"
	"unicode/utf8"

	"xrefine/internal/core"
	"xrefine/internal/refine"
	"xrefine/internal/rules"
)

// The zero-copy response encoder: a query response is rendered straight
// from the engine's rank output (*core.Response) into the connection's
// write buffer, with no intermediate API structs and no reflection. The
// bytes produced are exactly what the HTTP surface serves — encoding/json
// of server.SearchBody with two-space indent, HTML-escaped strings and a
// trailing newline — so the two surfaces are comparable byte-for-byte
// inside their envelopes. TestEncoderMatchesJSON pins that equivalence
// against encoding/json itself; the differential suite pins it against
// the live HTTP handler.

// Snippeter renders match previews; *core.Engine and the shard router
// implement it. A nil Snippeter omits snippets the way a document-less
// engine does.
type Snippeter interface {
	Snippet(m refine.Match, max int) (string, bool)
}

// snippetMax mirrors the HTTP handler's preview budget.
const snippetMax = 80

// AppendSearchBody appends the /search JSON document for resp onto dst
// and returns the extended slice. It allocates only when dst must grow or
// a snippet is rendered, so a warm connection buffer makes the encode
// allocation-free.
func AppendSearchBody(dst []byte, resp *core.Response, snip Snippeter) []byte {
	dst = append(dst, '{')
	dst = appendIndent(dst, 1)
	dst = append(dst, `"terms": `...)
	dst = appendStringArray(dst, resp.Terms, 1)
	dst = append(dst, ',')
	dst = appendIndent(dst, 1)
	dst = append(dst, `"need_refine": `...)
	dst = appendBool(dst, resp.NeedRefine)
	if len(resp.SearchFor) > 0 {
		dst = append(dst, ',')
		dst = appendIndent(dst, 1)
		dst = append(dst, `"search_for": [`...)
		for i, c := range resp.SearchFor {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendIndent(dst, 2)
			dst = appendJSONString(dst, c.Type.Path())
		}
		dst = appendIndent(dst, 1)
		dst = append(dst, ']')
	}
	dst = append(dst, ',')
	dst = appendIndent(dst, 1)
	dst = append(dst, `"queries": `...)
	switch {
	case len(resp.Queries) == 0:
		// The HTTP projection rebuilds this list with append, so an
		// engine response with zero queries serializes as null, not [].
		dst = append(dst, "null"...)
	default:
		dst = append(dst, '[')
		for i := range resp.Queries {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendIndent(dst, 2)
			dst = appendRankedQuery(dst, &resp.Queries[i], snip)
		}
		dst = appendIndent(dst, 1)
		dst = append(dst, ']')
	}
	if resp.Degraded {
		dst = append(dst, ',')
		dst = appendIndent(dst, 1)
		dst = append(dst, `"degraded": true`...)
	}
	if resp.DegradedReason != "" {
		dst = append(dst, ',')
		dst = appendIndent(dst, 1)
		dst = append(dst, `"degraded_reason": `...)
		dst = appendJSONString(dst, resp.DegradedReason)
	}
	dst = appendIndent(dst, 0)
	dst = append(dst, '}', '\n')
	return dst
}

// appendRankedQuery renders one queries[] object at depth 2 (keys at 3).
func appendRankedQuery(dst []byte, rq *core.RankedQuery, snip Snippeter) []byte {
	dst = append(dst, '{')
	dst = appendIndent(dst, 3)
	dst = append(dst, `"keywords": `...)
	dst = appendStringArray(dst, rq.Keywords, 3)
	dst = append(dst, ',')
	dst = appendIndent(dst, 3)
	dst = append(dst, `"dsim": `...)
	dst = appendJSONFloat(dst, rq.DSim)
	dst = append(dst, ',')
	dst = appendIndent(dst, 3)
	dst = append(dst, `"score": `...)
	dst = appendJSONFloat(dst, rq.Score)
	if rq.IsOriginal {
		dst = append(dst, ',')
		dst = appendIndent(dst, 3)
		dst = append(dst, `"is_original": true`...)
	}
	if len(rq.Steps) > 0 {
		dst = append(dst, ',')
		dst = appendIndent(dst, 3)
		dst = append(dst, `"steps": [`...)
		for i := range rq.Steps {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendIndent(dst, 4)
			dst = appendStep(dst, &rq.Steps[i])
		}
		dst = appendIndent(dst, 3)
		dst = append(dst, ']')
	}
	dst = append(dst, ',')
	dst = appendIndent(dst, 3)
	dst = append(dst, `"results": `...)
	if len(rq.Results) == 0 {
		// The HTTP layer materializes results into a non-nil slice, so
		// an empty result list is always [], never null.
		dst = append(dst, '[', ']')
	} else {
		dst = append(dst, '[')
		for i := range rq.Results {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendIndent(dst, 4)
			dst = appendResult(dst, rq.Results[i], snip)
		}
		dst = appendIndent(dst, 3)
		dst = append(dst, ']')
	}
	dst = appendIndent(dst, 2)
	return append(dst, '}')
}

// appendResult renders one results[] object at depth 4 (keys at 5).
func appendResult(dst []byte, m refine.Match, snip Snippeter) []byte {
	dst = append(dst, '{')
	dst = appendIndent(dst, 5)
	// Dewey labels are digits and dots — JSON-safe by construction, so
	// the ID goes straight into the buffer with no escape scan.
	dst = append(dst, `"id": "`...)
	dst = m.ID.AppendText(dst)
	dst = append(dst, '"', ',')
	dst = appendIndent(dst, 5)
	dst = append(dst, `"type": `...)
	dst = appendJSONString(dst, m.Type.Path())
	if snip != nil {
		if s, ok := snip.Snippet(m, snippetMax); ok {
			dst = append(dst, ',')
			dst = appendIndent(dst, 5)
			dst = append(dst, `"snippet": `...)
			dst = appendJSONString(dst, s)
		}
	}
	dst = appendIndent(dst, 4)
	return append(dst, '}')
}

// appendStep renders one refinement step as the JSON string of
// refine.Step.String() without materializing it: "delete <kw>" or the
// rule's arrow notation "<lhs> -><op> <rhs> (ds=<score>)".
func appendStep(dst []byte, st *refine.Step) []byte {
	dst = append(dst, '"')
	switch {
	case st.Delete != "":
		dst = append(dst, "delete "...)
		dst = appendEscaped(dst, st.Delete)
	case st.Rule != nil:
		r := st.Rule
		for i, t := range r.LHS {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendEscaped(dst, t)
		}
		dst = append(dst, ` -\u003e`...)
		dst = appendEscaped(dst, opName(r.Op))
		dst = append(dst, ' ')
		for i, t := range r.RHS {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendEscaped(dst, t)
		}
		dst = append(dst, " (ds="...)
		dst = strconv.AppendFloat(dst, r.Score, 'g', -1, 64)
		dst = append(dst, ')')
	default:
		dst = append(dst, '?')
	}
	return append(dst, '"')
}

// opName mirrors rules.Op.String without the fmt machinery.
func opName(o rules.Op) string {
	switch o {
	case rules.OpMerge:
		return "merge"
	case rules.OpSplit:
		return "split"
	case rules.OpSubstitute:
		return "substitute"
	}
	return "unknown"
}

// appendStringArray renders a []string at the given depth (elements one
// deeper), with encoding/json's nil/empty distinction.
func appendStringArray(dst []byte, ss []string, depth int) []byte {
	if ss == nil {
		return append(dst, "null"...)
	}
	if len(ss) == 0 {
		return append(dst, '[', ']')
	}
	dst = append(dst, '[')
	for i, s := range ss {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendIndent(dst, depth+1)
		dst = appendJSONString(dst, s)
	}
	dst = appendIndent(dst, depth)
	return append(dst, ']')
}

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, "true"...)
	}
	return append(dst, "false"...)
}

// appendIndent starts a new line at the given nesting depth (two spaces
// per level), matching json.Encoder.SetIndent("", "  ").
func appendIndent(dst []byte, depth int) []byte {
	dst = append(dst, '\n')
	for i := 0; i < depth; i++ {
		dst = append(dst, ' ', ' ')
	}
	return dst
}

// appendJSONFloat appends f exactly as encoding/json does: shortest
// round-trip form, 'f' format except for magnitudes outside [1e-6, 1e21)
// which use 'e' with Go's exponent-digit cleanup.
func appendJSONFloat(dst []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// Clean up e-09 to e-9, as encoding/json does.
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

// appendJSONString appends s as a quoted JSON string with encoding/json's
// default (HTML-escaping) rules.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	dst = appendEscaped(dst, s)
	return append(dst, '"')
}

const hexDigits = "0123456789abcdef"

// appendEscaped appends the escaped body of s (no surrounding quotes),
// byte-identical to encoding/json with SetEscapeHTML(true): control
// characters, quote and backslash escaped; <, >, & as \u00XX; invalid
// UTF-8 byte as the six-byte escape \ufffd; U+2028/U+2029 as \u2028/\u2029.
func appendEscaped(dst []byte, s string) []byte {
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch c {
			case '\\', '"':
				dst = append(dst, '\\', c)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, `\ufffd`...)
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	return append(dst, s[start:]...)
}
