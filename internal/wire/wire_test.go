package wire

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"xrefine/internal/core"
	"xrefine/internal/datagen"
	"xrefine/internal/kvstore"
	"xrefine/internal/obs"
	"xrefine/internal/server"
	"xrefine/internal/testutil"
	"xrefine/internal/tokenize"
)

// startServer serves a wire server on a loopback listener and returns
// its address. Serve's exit error is checked at cleanup.
func startServer(t *testing.T, eng server.Backend, opts Options) (*Server, string) {
	t.Helper()
	srv := NewServer(eng, opts)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-done; err != nil && !errors.Is(err, ErrServerClosed) {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, l.Addr().String()
}

func dial(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func testEngine(t *testing.T) *core.Engine {
	t.Helper()
	doc, err := datagen.DBLPDocument(datagen.DBLPConfig{Authors: 60, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return core.NewFromDocument(doc, nil)
}

// TestWireQueryRoundTrip drives one query end to end over TCP and pins
// the payload to the HTTP body for the same engine response.
func TestWireQueryRoundTrip(t *testing.T) {
	eng := testEngine(t)
	_, addr := startServer(t, eng, Options{})
	c := dial(t, addr)

	if _, err := c.Hello(); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	terms := tokenize.Query("databse quary")
	resp, err := c.Query(0, byte(core.StrategyPartition), 3, 0, terms)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusOK {
		t.Fatalf("status %d: %s", resp.Status, resp.Payload)
	}
	if resp.Trace == 0 {
		t.Error("server did not mint a trace id")
	}
	want, err := eng.QueryTermsCtx(context.Background(), terms, core.StrategyPartition, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := server.EncodeBody(&buf, server.SearchBody(eng, want, nil)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Payload, buf.Bytes()) {
		t.Errorf("wire payload differs from HTTP body\n got: %q\nwant: %q", resp.Payload, buf.Bytes())
	}
}

// TestWireTraceEcho verifies a client-supplied trace ID is used verbatim
// and shows up in the flight recorder's admit/finish bracket.
func TestWireTraceEcho(t *testing.T) {
	eng := testEngine(t)
	_, addr := startServer(t, eng, Options{})
	c := dial(t, addr)
	const trace = obs.TraceID(0xdeadbeefcafe)
	resp, err := c.Query(trace, byte(core.StrategyPartition), 3, 0, []string{"database"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Trace != trace {
		t.Fatalf("trace echo: got %s want %s", resp.Trace, trace)
	}
	evs := eng.Metrics().Flight().Events(obs.EventFilter{Trace: trace})
	var admit, finish bool
	for _, e := range evs {
		admit = admit || (e.Kind == obs.EvAdmit && e.Note == "wire:query")
		finish = finish || (e.Kind == obs.EvFinish && e.Note == "wire:query" && e.N == 200)
	}
	if !admit || !finish {
		t.Errorf("flight recorder missing wire admit/finish for %s: admit=%v finish=%v (%d events)",
			trace, admit, finish, len(evs))
	}
}

// TestWirePipelinedInOrder floods one connection with pipelined requests
// and requires the responses to come back in request order, each with
// its own trace echoed. Run under -race this also exercises the
// reader/worker handoff.
func TestWirePipelinedInOrder(t *testing.T) {
	eng := testEngine(t)
	_, addr := startServer(t, eng, Options{})
	c := dial(t, addr)

	vocab := [][]string{
		{"database"}, {"query"}, {"xml"}, {"keyword"},
		{"database", "query"}, {"xml", "keyword"}, {"twig"}, {"search"},
	}
	const n = 64
	for i := 0; i < n; i++ {
		c.Send(obs.TraceID(1000+i), byte(core.StrategyPartition), 2, 0, vocab[i%len(vocab)])
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		resp, err := c.Recv()
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if resp.Status != StatusOK {
			t.Fatalf("response %d: status %d: %s", i, resp.Status, resp.Payload)
		}
		if got, want := resp.Trace, obs.TraceID(1000+i); got != want {
			t.Fatalf("response %d out of order: trace %s want %s", i, got, want)
		}
		// Each payload names its own query terms, so a shuffled or reused
		// body would also be caught here.
		wantTerm := `"` + vocab[i%len(vocab)][0] + `"`
		if !bytes.Contains(resp.Payload, []byte(wantTerm)) {
			t.Fatalf("response %d: payload missing term %s", i, wantTerm)
		}
	}
}

// TestWireVersionMismatchKeepsConnection sends a future-version frame and
// requires a 400 error naming the supported version — with the
// connection still usable, so a client can negotiate down.
func TestWireVersionMismatchKeepsConnection(t *testing.T) {
	eng := testEngine(t)
	_, addr := startServer(t, eng, Options{})
	c := dial(t, addr)

	frame := AppendControl(nil, OpPing, 0)
	frame[4] = 99 // future version byte
	if _, err := c.nc.Write(frame); err != nil {
		t.Fatal(err)
	}
	c.inflight++
	resp, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusError || resp.Code != CodeBadRequest {
		t.Fatalf("got status=%d code=%d, want error 400", resp.Status, resp.Code)
	}
	if !strings.Contains(string(resp.Payload), "version") {
		t.Errorf("error should name the version problem: %q", resp.Payload)
	}
	// The same connection still answers.
	if err := c.Ping(); err != nil {
		t.Fatalf("connection unusable after version error: %v", err)
	}
}

// TestWireBadFramesAnswered covers structurally invalid bodies: each gets
// a 400 in pipeline order and leaves the connection usable.
func TestWireBadFramesAnswered(t *testing.T) {
	eng := testEngine(t)
	_, addr := startServer(t, eng, Options{})
	c := dial(t, addr)

	bad := [][]byte{
		AppendControl(nil, 0x7f, 0),                   // unknown opcode
		AppendControl(nil, OpPing, 0),                 // valid; keeps order honest
		{0, 0, 0, 3, Version, OpQuery, 0},             // truncated header
		AppendRequest(nil, 0, 9, 3, 0, []string{"a"}), // bad strategy
	}
	for _, f := range bad {
		if _, err := c.nc.Write(f); err != nil {
			t.Fatal(err)
		}
		c.inflight++
	}
	wantStatus := []byte{StatusError, StatusOK, StatusError, StatusError}
	for i, want := range wantStatus {
		resp, err := c.Recv()
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if resp.Status != want {
			t.Fatalf("response %d: status %d want %d (%s)", i, resp.Status, want, resp.Payload)
		}
		if want == StatusError && resp.Code != CodeBadRequest {
			t.Fatalf("response %d: code %d want 400", i, resp.Code)
		}
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("connection unusable after bad frames: %v", err)
	}
}

// TestWireOversizedFrameCloses sends a length prefix beyond
// MaxRequestFrame and requires a typed 413 error followed by connection
// close — never an allocation-driven OOM or a hang.
func TestWireOversizedFrameCloses(t *testing.T) {
	eng := testEngine(t)
	_, addr := startServer(t, eng, Options{})
	c := dial(t, addr)

	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxRequestFrame+1)
	if _, err := c.nc.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	c.inflight++
	resp, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusError || resp.Code != CodeFrameTooBig {
		t.Fatalf("got status=%d code=%d, want error 413", resp.Status, resp.Code)
	}
	if _, err := c.Recv(); err == nil {
		t.Fatal("connection should be closed after a framing violation")
	}
}

// slowEngine builds an engine whose cold queries pay per-page read
// latency, so an in-flight query is slow enough to cancel or to hold the
// admission gate while another connection probes it.
func slowEngine(t *testing.T, latency time.Duration) *core.Engine {
	t.Helper()
	doc, err := datagen.DBLPDocument(datagen.DBLPConfig{Authors: 400, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	builder := core.NewFromDocument(doc, nil)
	faults := &kvstore.Faults{}
	store := kvstore.NewMemWithFaults(faults)
	t.Cleanup(func() { store.Close() })
	if err := builder.SaveIndex(store); err != nil {
		t.Fatal(err)
	}
	faults.ReadLatency = latency
	store.DropCaches()
	eng, err := core.Open(store, &core.Config{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestWireDisconnectCancelsInflight proves the mid-pipeline disconnect
// path: a client hangs up while its query is still paying injected index
// latency, and the server must cancel the query promptly — observed as
// the flight recorder's finish event carrying the 499
// client-closed-request code, the same mapping the HTTP surface uses.
func TestWireDisconnectCancelsInflight(t *testing.T) {
	eng := slowEngine(t, 2*time.Millisecond)
	_, addr := startServer(t, eng, Options{})
	c := dial(t, addr)

	const trace = obs.TraceID(0xabcdef01)
	c.Send(trace, byte(core.StrategyPartition), 3, 0, []string{"database", "query", "xml"})
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	// Close only after the query observably started; closing earlier
	// would race the reader and assert nothing.
	before := eng.Stats().Queries
	testutil.Eventually(t, 10*time.Second, func() bool {
		return eng.Stats().Queries > before
	}, "query never started")
	c.Close()

	flight := eng.Metrics().Flight()
	testutil.Eventually(t, 5*time.Second, func() bool {
		for _, e := range flight.Events(obs.EventFilter{Trace: trace, Kind: obs.EvFinish}) {
			if e.Note == "wire:query" && e.N == 499 {
				return true
			}
		}
		return false
	}, "in-flight query was not cancelled promptly after disconnect")

	// The server survives the disconnect: a fresh connection still works.
	c2 := dial(t, addr)
	if err := c2.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestWireShedRetryHint fills the admission gate from one connection and
// requires a second connection's query to be shed immediately with
// StatusRetry and a jittered 1–3s hint — the 503-equivalent frame.
func TestWireShedRetryHint(t *testing.T) {
	eng := slowEngine(t, 2*time.Millisecond)
	_, addr := startServer(t, eng, Options{MaxInFlight: 1})
	slow := dial(t, addr)

	slow.Send(0, byte(core.StrategyPartition), 3, 0, []string{"database", "query", "xml"})
	if err := slow.Flush(); err != nil {
		t.Fatal(err)
	}
	before := eng.Stats().Queries
	testutil.Eventually(t, 10*time.Second, func() bool {
		return eng.Stats().Queries > before
	}, "gate-holding query never started")

	probe := dial(t, addr)
	resp, err := probe.Query(0, byte(core.StrategyPartition), 3, 0, []string{"database"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusRetry {
		t.Fatalf("status %d (%s), want StatusRetry", resp.Status, resp.Payload)
	}
	if resp.RetryAfter < 1 || resp.RetryAfter > 3 {
		t.Errorf("retry hint %d outside the jitter window [1,3]", resp.RetryAfter)
	}
	// The gate holder still completes.
	if r, err := slow.Recv(); err != nil || r.Status != StatusOK {
		t.Fatalf("gate holder: %v status=%v", err, r)
	}
}

// TestWireDrainCompletesInFlight starts a slow query, shuts the server
// down mid-flight, and requires the response to still arrive complete —
// the wire surface's equivalent of http.Server.Shutdown draining.
func TestWireDrainCompletesInFlight(t *testing.T) {
	eng := slowEngine(t, time.Millisecond)
	srv, addr := startServer(t, eng, Options{})
	c := dial(t, addr)

	c.Send(0, byte(core.StrategyPartition), 3, 0, []string{"database", "query"})
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	before := eng.Stats().Queries
	testutil.Eventually(t, 10*time.Second, func() bool {
		return eng.Stats().Queries > before
	}, "query never started")

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()
	resp, err := c.Recv()
	if err != nil {
		t.Fatalf("drained response: %v", err)
	}
	if resp.Status != StatusOK {
		t.Fatalf("drained response status %d: %s", resp.Status, resp.Payload)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// After drain the connection is closed and new connections are
	// refused (the listener is down).
	if _, err := c.Recv(); err == nil {
		t.Error("connection should be closed after drain")
	}
	if _, err := Dial(addr, 500*time.Millisecond); err == nil {
		t.Error("listener should be closed after shutdown")
	}
}

// TestWireRequestDecodeRejects locks in decoder bounds: adversarial
// payloads must return typed errors, never panic or allocate per the
// attacker's length fields.
func TestWireRequestDecodeRejects(t *testing.T) {
	var r Request
	cases := []struct {
		name    string
		payload []byte
		want    error
	}{
		{"empty", nil, ErrTruncated},
		{"short-header", []byte{Version, OpQuery}, ErrTruncated},
		{"bad-version", append([]byte{99, OpQuery}, make([]byte, 10)...), ErrVersion},
		{"bad-opcode", append([]byte{Version, 0x44}, make([]byte, 10)...), ErrBadFrame},
		{"ping-with-body", append(AppendControl(nil, OpPing, 0)[4:], 'x'), ErrBadFrame},
		{"query-no-body", AppendControl(nil, OpQuery, 0)[4:], ErrTruncated},
		{"huge-term-count", func() []byte {
			p := AppendRequest(nil, 0, 0, 1, 0, []string{"a"})[4:]
			p = p[:len(p)-3] // strip the real terms
			p = append(p[:reqHeaderLen+3], 0xff, 0xff, 0xff, 0xff, 0x0f)
			return p
		}(), ErrBadFrame},
		{"trailing-bytes", append(AppendRequest(nil, 0, 0, 1, 0, []string{"a"})[4:], 0), ErrBadFrame},
		{"empty-term", func() []byte {
			p := AppendRequest(nil, 0, 0, 1, 0, []string{"a"})[4:]
			p[len(p)-2] = 0 // zero the term length, leaving a trailing byte
			return p
		}(), ErrBadFrame},
	}
	for _, tc := range cases {
		err := r.Decode(tc.payload)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestWireRequestRoundTrip pins the request codec to itself.
func TestWireRequestRoundTrip(t *testing.T) {
	frame := AppendRequest(nil, 42, byte(core.StrategyStack), 7, 4, []string{"alpha", "beta", "gamma"})
	if got := binary.BigEndian.Uint32(frame); int(got) != len(frame)-4 {
		t.Fatalf("length prefix %d, frame body %d", got, len(frame)-4)
	}
	var r Request
	if err := r.Decode(frame[4:]); err != nil {
		t.Fatal(err)
	}
	if r.Op != OpQuery || r.Trace != 42 || r.Strategy != byte(core.StrategyStack) || r.K != 7 || r.Parallel != 4 {
		t.Fatalf("decoded %+v", r)
	}
	if len(r.Terms) != 3 || string(r.Terms[0]) != "alpha" || string(r.Terms[2]) != "gamma" {
		t.Fatalf("terms %q", r.Terms)
	}
}
