package wire

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"xrefine/internal/core"
	"xrefine/internal/datagen"
	"xrefine/internal/server"
	"xrefine/internal/shard"
	"xrefine/internal/tokenize"
	"xrefine/internal/xmltree"
)

// The HTTP-differential conformance suite: the binary surface must be a
// transport, not a dialect. For the same engine state and the same query
// mix — every strategy, k, parallelism, sharded and replicated backends,
// live updates, degradation — the payload inside a wire OK frame must be
// byte-identical to the HTTP /search response body, including degraded
// markers and reasons. Each surface gets its own engine built from the
// same document so caches and counters cannot leak across the
// comparison; byte equality is then evidence about the code paths, not
// shared state.

var diffStrategies = []struct {
	name string
	s    core.Strategy
}{
	{"partition", core.StrategyPartition},
	{"sle", core.StrategySLE},
	{"stack", core.StrategyStack},
}

var diffQueries = []string{
	"database query",
	"databse quary",     // misspellings force refinement
	"keyword serch xml", // partial mismatch
	"twig matching pattern",
}

// httpSearch fetches the /search body from an HTTP server. k < 0 omits
// the parameter to exercise the handler's default.
func httpSearch(t *testing.T, h http.Handler, q, strategy string, k, parallel int) (int, string) {
	t.Helper()
	v := url.Values{"q": {q}, "strategy": {strategy}}
	if k >= 0 {
		v.Set("k", fmt.Sprint(k))
	}
	if parallel > 0 {
		v.Set("parallel", fmt.Sprint(parallel))
	}
	req := httptest.NewRequest(http.MethodGet, "/search?"+v.Encode(), nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

// wireSearch round-trips the same query over the binary surface. The
// returned payload is copied out of the client's reused buffer so
// callers may hold several at once.
func wireSearch(t *testing.T, c *Client, q string, strategy byte, k, parallel int) *Response {
	t.Helper()
	resp, err := c.Query(0, strategy, k, parallel, tokenize.Query(q))
	if err != nil {
		t.Fatalf("wire query %q: %v", q, err)
	}
	cp := *resp
	cp.Payload = append([]byte(nil), resp.Payload...)
	return &cp
}

func diffDoc(t *testing.T, authors int, seed int64) *xmltree.Document {
	t.Helper()
	doc, err := datagen.DBLPDocument(datagen.DBLPConfig{Authors: authors, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// comparePair runs the full query mix against one HTTP handler and one
// wire client and requires byte-identical payloads. ks may include -1
// (HTTP k omitted, wire k=0) to pin default-k parity.
func comparePair(t *testing.T, h http.Handler, c *Client, queries []string, ks, parallels []int) {
	t.Helper()
	for _, strat := range diffStrategies {
		for _, q := range queries {
			for _, k := range ks {
				wireK := k
				if k < 0 {
					wireK = 0
				}
				for _, parallel := range parallels {
					code, want := httpSearch(t, h, q, strat.name, k, parallel)
					if code != http.StatusOK {
						t.Fatalf("http %q strategy=%s k=%d: %d %s", q, strat.name, k, code, want)
					}
					resp := wireSearch(t, c, q, byte(strat.s), wireK, parallel)
					if resp.Status != StatusOK {
						t.Fatalf("wire %q strategy=%s k=%d: status %d: %s", q, strat.name, k, resp.Status, resp.Payload)
					}
					if !bytes.Equal(resp.Payload, []byte(want)) {
						t.Errorf("%q strategy=%s k=%d parallel=%d: wire payload diverges from HTTP body\nwire: %s\nhttp: %s",
							q, strat.name, k, parallel, resp.Payload, want)
					}
				}
			}
		}
	}
}

// TestWireHTTPDifferential is the headline conformance run on plain
// engines: strategies × k (including each surface's default) ×
// parallelism.
func TestWireHTTPDifferential(t *testing.T) {
	doc := diffDoc(t, 120, 3)
	httpH := server.New(core.NewFromDocument(doc, nil))
	_, addr := startServer(t, core.NewFromDocument(doc, nil), Options{})
	c := dial(t, addr)
	comparePair(t, httpH, c, diffQueries, []int{-1, 1, 10}, []int{0, 2, 4})
}

// TestWireHTTPDifferentialDegraded pins degradation parity: with a
// one-posting budget every query degrades, and the degraded flag and
// "posting-budget" reason must serialize identically on both surfaces.
func TestWireHTTPDifferentialDegraded(t *testing.T) {
	doc := diffDoc(t, 80, 3)
	cfg := &core.Config{PostingBudget: 1}
	httpH := server.New(core.NewFromDocument(doc, cfg))
	_, addr := startServer(t, core.NewFromDocument(doc, cfg), Options{})
	c := dial(t, addr)

	sawReason := false
	for _, q := range diffQueries {
		_, want := httpSearch(t, httpH, q, "partition", 3, 0)
		resp := wireSearch(t, c, q, byte(core.StrategyPartition), 3, 0)
		if !bytes.Equal(resp.Payload, []byte(want)) {
			t.Errorf("%q: degraded payload diverges\nwire: %s\nhttp: %s", q, resp.Payload, want)
		}
		sawReason = sawReason || strings.Contains(want, `"degraded_reason": "posting-budget"`)
	}
	if !sawReason {
		t.Error("budgeted corpus never produced a posting-budget degraded response; the parity check is vacuous")
	}
}

// TestWireHTTPDifferentialLiveUpdates feeds both surfaces' engines the
// same update batches — the HTTP engine through POST /update, the wire
// engine through Engine.Apply — and requires query parity afterwards.
// This pins the wire surface to the rebuild-equivalence guarantee the
// HTTP suite already enforces.
func TestWireHTTPDifferentialLiveUpdates(t *testing.T) {
	doc := diffDoc(t, 60, 11)
	httpEng := core.NewFromDocument(doc, nil)
	wireEng := core.NewFromDocument(doc, nil)
	httpH := server.New(httpEng)
	_, addr := startServer(t, wireEng, Options{})
	c := dial(t, addr)

	batches, err := datagen.Updates(doc, datagen.UpdatesConfig{Batches: 6, Ops: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range batches {
		j, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		req := httptest.NewRequest(http.MethodPost, "/update", strings.NewReader(string(j)))
		rec := httptest.NewRecorder()
		httpH.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("batch %d: /update = %d %s", i, rec.Code, rec.Body.String())
		}
		if _, err := wireEng.Apply(b); err != nil {
			t.Fatalf("batch %d: wire-side Apply: %v", i, err)
		}
	}
	if h, w := httpEng.Epoch(), wireEng.Epoch(); h != w || h != uint64(len(batches)) {
		t.Fatalf("epochs diverged: http=%d wire=%d want %d", h, w, len(batches))
	}
	queries := append(append([]string(nil), diffQueries...), "refinement suggestion", "keyword databse onlin")
	comparePair(t, httpH, c, queries, []int{3}, []int{0, 2})
}

// replicatedRouter writes a replicated shard directory and opens a
// router over it.
func replicatedRouter(t *testing.T, doc *xmltree.Document, shards, replicas int, opts shard.Options) *shard.Router {
	t.Helper()
	dir := t.TempDir()
	if _, err := shard.WriteReplicatedStores(doc, dir, shards, shard.ModeRange, replicas); err != nil {
		t.Fatal(err)
	}
	r, err := shard.Open(dir, &opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// TestWireHTTPDifferentialSharded runs the suite over replicated shard
// routers — the fan-out, merge, and snippet paths — one router per
// surface from the same on-disk layout.
func TestWireHTTPDifferentialSharded(t *testing.T) {
	doc := diffDoc(t, 90, 5)
	httpH := server.NewFromBackend(replicatedRouter(t, doc, 3, 2, shard.Options{}), server.Config{})
	_, addr := startServer(t, replicatedRouter(t, doc, 3, 2, shard.Options{}), Options{})
	c := dial(t, addr)
	comparePair(t, httpH, c, diffQueries, []int{3}, []int{0, 2})
}

// TestWireHTTPDifferentialChaos arms a seeded fault injector on every
// replica of both routers and replays the mix. Individual responses may
// legitimately degrade shard-partial (each surface rolls its own faults),
// so parity is asserted only between non-degraded answers — the same
// rule scripts/wire_diff.sh applies — while every response must still be
// a well-formed OK frame.
func TestWireHTTPDifferentialChaos(t *testing.T) {
	doc := diffDoc(t, 60, 9)
	chaos, err := shard.ParseChaos("rate=0.15")
	if err != nil {
		t.Fatal(err)
	}
	opts := shard.Options{Chaos: chaos, Retries: 2}
	httpH := server.NewFromBackend(replicatedRouter(t, doc, 2, 2, opts), server.Config{})
	_, addr := startServer(t, replicatedRouter(t, doc, 2, 2, opts), Options{})
	c := dial(t, addr)

	compared, skipped := 0, 0
	for round := 0; round < 5; round++ {
		for _, q := range diffQueries {
			code, want := httpSearch(t, httpH, q, "partition", 3, 0)
			if code != http.StatusOK {
				t.Fatalf("http %q under chaos: %d %s", q, code, want)
			}
			resp := wireSearch(t, c, q, byte(core.StrategyPartition), 3, 0)
			if resp.Status != StatusOK {
				t.Fatalf("wire %q under chaos: status %d: %s", q, resp.Status, resp.Payload)
			}
			if strings.Contains(want, `"degraded"`) || bytes.Contains(resp.Payload, []byte(`"degraded"`)) {
				skipped++
				continue
			}
			compared++
			if !bytes.Equal(resp.Payload, []byte(want)) {
				t.Errorf("%q under chaos: non-degraded payloads diverge\nwire: %s\nhttp: %s", q, resp.Payload, want)
			}
		}
	}
	t.Logf("chaos differential: %d compared, %d skipped as degraded", compared, skipped)
	if compared == 0 {
		t.Error("every chaos response degraded; the parity check is vacuous — lower the fault rate")
	}
}

// TestWireHTTPDifferentialErrors pins error-code parity: requests the
// HTTP handler rejects with 400 map to wire error frames carrying
// CodeBadRequest, on a connection that stays usable.
func TestWireHTTPDifferentialErrors(t *testing.T) {
	doc := diffDoc(t, 40, 3)
	httpH := server.New(core.NewFromDocument(doc, nil))
	_, addr := startServer(t, core.NewFromDocument(doc, nil), Options{})
	c := dial(t, addr)

	// Empty query: HTTP rejects missing q; the wire codec rejects a
	// zero-term request at decode time.
	if code, _ := httpSearch(t, httpH, "", "partition", 3, 0); code != http.StatusBadRequest {
		t.Errorf("http empty q = %d, want 400", code)
	}
	if _, err := c.nc.Write(AppendRequest(nil, 0, 0, 3, 0, nil)); err != nil {
		t.Fatal(err)
	}
	c.inflight++
	resp, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusError || resp.Code != CodeBadRequest {
		t.Errorf("wire empty query: status=%d code=%d, want error 400", resp.Status, resp.Code)
	}

	// Unknown strategy: HTTP 400; the wire codec rejects strategy bytes
	// outside the enum the same way.
	if code, _ := httpSearch(t, httpH, "database", "bogus", 3, 0); code != http.StatusBadRequest {
		t.Errorf("http bogus strategy = %d, want 400", code)
	}
	if _, err := c.nc.Write(AppendRequest(nil, 0, 9, 3, 0, []string{"database"})); err != nil {
		t.Fatal(err)
	}
	c.inflight++
	if resp, err = c.Recv(); err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusError || resp.Code != CodeBadRequest {
		t.Errorf("wire bogus strategy: status=%d code=%d, want error 400", resp.Status, resp.Code)
	}

	// Both surfaces remain healthy afterwards.
	if code, _ := httpSearch(t, httpH, "database", "partition", 3, 0); code != http.StatusOK {
		t.Errorf("http unhealthy after rejects: %d", code)
	}
	if err := c.Ping(); err != nil {
		t.Errorf("wire connection unhealthy after rejects: %v", err)
	}
}
