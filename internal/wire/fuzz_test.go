package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// FuzzWireFrame fuzzes the framing layer with arbitrary byte streams:
// truncated frames, oversized length prefixes, and garbage must all
// surface as typed errors — never a panic, and never an allocation
// sized by an attacker-controlled prefix (ReadFrame rejects prefixes
// over max before allocating). Whatever frames do parse are fed to the
// request decoder, which must hold the same bar.
func FuzzWireFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendControl(nil, OpPing, 0))
	f.Add(AppendControl(nil, OpHello, 7))
	f.Add(AppendRequest(nil, 42, 0, 3, 0, []string{"db"}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})                   // 4 GiB prefix
	f.Add([]byte{0x00, 0x10, 0x00, 0x00})                   // prefix just over max
	f.Add([]byte{0x00, 0x00, 0x00, 0x10, Version, OpQuery}) // truncated payload
	twoFrames := AppendControl(nil, OpPing, 0)
	f.Add(AppendRequest(twoFrames, 1, 1, 5, 2, []string{"xml", "query"}))
	f.Fuzz(func(t *testing.T, data []byte) {
		rd := bytes.NewReader(data)
		var buf []byte
		var req Request
		for frames := 0; frames < 8; frames++ {
			var payload []byte
			var err error
			buf, payload, err = ReadFrame(rd, buf, MaxRequestFrame)
			if err != nil {
				if !errors.Is(err, ErrFrameTooLarge) && !errors.Is(err, ErrTruncated) &&
					!errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
					t.Fatalf("untyped framing error: %v", err)
				}
				return
			}
			if want := binary.BigEndian.Uint32(data[len(data)-rd.Len()-len(payload)-4:]); int(want) != len(payload) {
				t.Fatalf("payload %d bytes under a %d prefix", len(payload), want)
			}
			if err := req.Decode(payload); err != nil &&
				!errors.Is(err, ErrTruncated) && !errors.Is(err, ErrVersion) && !errors.Is(err, ErrBadFrame) {
				t.Fatalf("untyped decode error: %v", err)
			}
		}
	})
}

// FuzzWireRequest fuzzes the request codec: arbitrary payloads either
// decode into a request that survives an encode/decode round trip
// unchanged, or fail with one of the protocol's typed errors.
func FuzzWireRequest(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendControl(nil, OpPing, 0)[4:])
	f.Add(AppendControl(nil, OpHello, 99)[4:])
	f.Add(AppendRequest(nil, 7, 2, 10, 4, []string{"database", "query"})[4:])
	f.Add(AppendRequest(nil, 0, 0, 0, 0, []string{"a"})[4:])
	f.Add(append([]byte{99}, AppendControl(nil, OpPing, 0)[5:]...))        // future version
	f.Add(append(AppendRequest(nil, 0, 0, 1, 0, []string{"a"})[4:], 0xff)) // trailing byte
	f.Fuzz(func(t *testing.T, payload []byte) {
		var r Request
		err := r.Decode(payload)
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrVersion) && !errors.Is(err, ErrBadFrame) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if len(r.Terms) > len(payload) {
			t.Fatalf("%d terms decoded from %d bytes", len(r.Terms), len(payload))
		}
		// Round trip. Flags are reserved and not re-encoded; everything
		// else must survive exactly.
		var frame []byte
		if r.Op == OpQuery {
			terms := make([]string, len(r.Terms))
			for i, b := range r.Terms {
				terms[i] = string(b)
			}
			frame = AppendRequest(nil, r.Trace, r.Strategy, r.K, r.Parallel, terms)
		} else {
			frame = AppendControl(nil, r.Op, r.Trace)
		}
		op, trace, strategy, k, par := r.Op, r.Trace, r.Strategy, r.K, r.Parallel
		nterms := len(r.Terms)
		var r2 Request
		if err := r2.Decode(frame[4:]); err != nil {
			t.Fatalf("re-encoded request does not decode: %v", err)
		}
		if r2.Op != op || r2.Trace != trace || r2.Strategy != strategy || r2.K != k || r2.Parallel != par || len(r2.Terms) != nterms {
			t.Fatalf("round trip changed the request: %+v vs op=%d trace=%d strat=%d k=%d par=%d nterms=%d",
				r2, op, trace, strategy, k, par, nterms)
		}
		for i := range r2.Terms {
			if !bytes.Equal(r2.Terms[i], r.Terms[i]) {
				t.Fatalf("term %d changed in round trip: %q vs %q", i, r2.Terms[i], r.Terms[i])
			}
		}
	})
}
