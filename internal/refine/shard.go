package refine

import (
	"xrefine/internal/dewey"
	"xrefine/internal/index"
)

// This file is the scatter-gather execution layer for Algorithm 2 over a
// sharded corpus. Each shard holds a disjoint set of the corpus partitions
// (with their global Dewey labels preserved), so a shard scan is exactly a
// walkRange over that shard's lists: it records, per partition, the
// refined queries it surfaced and the SLCA results it computed, charging
// the one Budget and tightening the one PruneBound every scan shares.
// MergeShardScans then replays the records of all shards in global
// document order — partitions interleave across shards under a k-way merge
// on their labels — through the sequential admission logic, recomputing
// any bound-skipped SLCA against the owning shard's lists. The outcome is
// byte-identical to a monolithic engine walking the concatenated corpus:
// the same partitions, in the same order, through the same SortedList.

// ShardScan is the record of one shard's partition walk, ready to merge.
// The input, keyword set and lists are retained because bound-skipped SLCA
// recomputations during the merge must run against the lists of the shard
// that owns the partition.
type ShardScan struct {
	in    Input
	ks    []string
	lists []*index.List
	rng   *rangeOutcome
}

// ScanShard walks every partition of one shard. in is the merged-corpus
// query input with Index swapped for the shard's own index; ks is the scan
// keyword set computed once against the merged index (Input.ScanKeywords),
// so every shard scans the same keyword columns; bound is the pruning
// bound shared across the fan-out. Degradable budget expiry truncates the
// record (only fully-processed partitions contribute); a hard cancellation
// or storage fault returns the error.
func ScanShard(in Input, k int, ks []string, bound *PruneBound) (*ShardScan, error) {
	if k < 1 {
		k = 1
	}
	lists, err := scanLists(in, ks)
	if err != nil {
		return nil, err
	}
	local := NewSortedList(2 * k)
	rng, err := walkRange(in, k, ks, lists, nil, nil, local, bound)
	if err != nil {
		return nil, err
	}
	return &ShardScan{in: in, ks: ks, lists: lists, rng: rng}, nil
}

// Partitions reports how many partitions the scan fully processed.
func (s *ShardScan) Partitions() int { return len(s.rng.partitions) }

// MergeShardScans replays the per-shard partition records in global
// document order through a fresh SortedList — the exact sequential
// admission logic — and returns the corpus-wide outcome. in is the
// merged-corpus input (its Budget supplies the degradation reason). Scans
// of failed shards are passed as nil and simply contribute nothing; the
// caller is responsible for tagging the response shard-partial.
func MergeShardScans(in Input, k int, scans []*ShardScan) (*TopKOutcome, error) {
	if k < 1 {
		k = 1
	}
	out := &TopKOutcome{Workers: 1}
	sorted := NewSortedList(2 * k)
	type cursor struct {
		s     *ShardScan
		i     int
		spans []span
	}
	var cur []*cursor
	for _, s := range scans {
		if s == nil || s.rng == nil {
			continue
		}
		out.SLCACalls += s.rng.slcaCalls
		out.SLCAPostings += s.rng.slcaPostings
		out.RQGenerated += s.rng.rqGenerated
		out.RQPruned += s.rng.rqPruned
		out.BoundUpdates += s.rng.boundUpdates
		if len(s.rng.partitions) > 0 {
			cur = append(cur, &cursor{s: s, spans: make([]span, len(s.lists))})
		}
	}
	for len(cur) > 0 {
		// Replay only touches recorded work plus occasional in-memory SLCA
		// recomputes, so the degradable budget is ignored here — but a
		// hard cancellation still aborts.
		if err := in.Budget.Err(); err != nil {
			return nil, err
		}
		best := 0
		for i := 1; i < len(cur); i++ {
			a := cur[i].s.rng.partitions[cur[i].i].pid
			b := cur[best].s.rng.partitions[cur[best].i].pid
			if dewey.Compare(a, b) < 0 {
				best = i
			}
		}
		c := cur[best]
		rec := c.s.rng.partitions[c.i]
		out.Partitions++
		if err := replayPartition(c.s.in, c.s.ks, c.s.lists, c.spans, rec, sorted, out); err != nil {
			return nil, err
		}
		c.i++
		if c.i >= len(c.s.rng.partitions) {
			cur = append(cur[:best], cur[best+1:]...)
		}
	}
	for _, it := range sorted.Items() {
		out.Candidates = append(out.Candidates, it)
	}
	out.markDegraded(in.Budget)
	return out, nil
}
