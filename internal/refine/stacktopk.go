package refine

import (
	"xrefine/internal/dewey"
	"xrefine/internal/index"
	"xrefine/internal/slca"
	"xrefine/internal/xmltree"
)

// StackTopK extends Algorithm 1 to Top-K exploration: the same single
// stack-based merge over KS discovers refined-query candidates at every
// meaningful entry (running the top-2K dynamic program on the entry's
// witnessed keywords instead of only the optimum), and the survivors'
// SLCA results are computed afterwards over the full lists.
//
// This is an extension beyond the paper, which defines Algorithm 1 as
// optimal-RQ-only: collecting K candidates per entry makes the per-node
// bookkeeping even heavier (the algorithm was already the slowest of the
// three), and the final result computation re-reads the candidates' lists
// the way Algorithm 3's step 2 does — so the paper's one-scan theorem
// applies to candidate *discovery* here, not to result generation. Use it
// when stack-based processing is already the deployment choice and Top-K
// output is wanted anyway.
func StackTopK(in Input, k int) (*TopKOutcome, error) {
	if k < 1 {
		k = 1
	}
	out := &TopKOutcome{}
	ks := in.scanKeywords()
	if len(ks) == 0 {
		return out, nil
	}
	byTerm := make(map[string]*index.List, len(ks))
	ordered := make([]*index.List, len(ks))
	for i, kw := range ks {
		l, err := in.Index.List(kw)
		if err != nil {
			return nil, err
		}
		byTerm[kw] = l
		ordered[i] = l
	}
	sorted := NewSortedList(2 * k)

	type entry struct {
		mask uint64
		typ  *xmltree.Type
	}
	var stack []entry
	var path dewey.ID
	pop := func() {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if e.mask != 0 && in.Judge.Meaningful(e.typ) {
			avail := make(map[string]bool)
			for i, kw := range ks {
				if e.mask&(1<<i) != 0 {
					avail[kw] = true
				}
			}
			for _, rq := range TopRQs(in.Query, avail, in.Rules, 2*k) {
				if sorted.Has(rq) == nil && sorted.Qualifies(rq.DSim) {
					sorted.Insert(rq, nil)
				}
			}
		}
		path = path[:len(path)-1]
		if len(stack) > 0 {
			stack[len(stack)-1].mask |= e.mask
		}
	}
	merge := newMergeScan(ordered)
	steps := 0
	for {
		id, mask, typ, ok := merge.next()
		if !ok {
			break
		}
		steps++
		if steps%budgetStride == 0 && !in.Budget.Charge(budgetStride) {
			if err := in.Budget.Err(); err != nil {
				return nil, err
			}
			break // degradable stop: finalize the partial stack below
		}
		keep := dewey.LCALen(path, id)
		for len(stack) > keep {
			pop()
		}
		for len(path) < len(id) {
			depth := len(path)
			path = append(path, id[depth])
			t, err := typ.AncestorAt(depth)
			if err != nil {
				return nil, err
			}
			stack = append(stack, entry{typ: t})
		}
		stack[len(stack)-1].mask |= mask
	}
	for len(stack) > 0 {
		pop()
	}

	// Result generation for the surviving candidates (Algorithm 3's
	// step 2 reused in spirit). Budget-checked per candidate like SLE's
	// step 2: a degradable stop keeps the results already computed.
	for _, it := range sorted.Items() {
		if !in.Budget.Ok() {
			if err := in.Budget.Err(); err != nil {
				return nil, err
			}
			break
		}
		sub := make([]*index.List, len(it.RQ.Keywords))
		ok := true
		for i, kw := range it.RQ.Keywords {
			l := byTerm[kw]
			if l == nil || l.Len() == 0 {
				ok = false
				break
			}
			sub[i] = l
		}
		if !ok {
			continue
		}
		ids, err := slca.ComputeCtx(in.Budget.Context(), in.SLCA, sub)
		if err != nil {
			if berr := in.Budget.Err(); berr != nil {
				return nil, berr
			}
			in.Budget.Ok() // trip the budget so the outcome is degraded
			break
		}
		out.SLCACalls++
		res := meaningfulMatches(ids, sub[0], in.Judge)
		if len(res) == 0 {
			continue
		}
		it.Results = res
		out.Candidates = append(out.Candidates, it)
	}
	out.markDegraded(in.Budget)
	return out, nil
}
