package refine

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"testing"

	"xrefine/internal/datagen"
	"xrefine/internal/dewey"
	"xrefine/internal/index"
	"xrefine/internal/rules"
	"xrefine/internal/searchfor"
	"xrefine/internal/slca"
)

func TestSharedBoundLowersMonotonically(t *testing.T) {
	b := NewPruneBound()
	if got := b.get(); !math.IsInf(got, 1) {
		t.Fatalf("fresh bound = %v, want +Inf", got)
	}
	b.lower(5)
	b.lower(7) // higher value must not loosen the bound
	if got := b.get(); got != 5 {
		t.Fatalf("bound = %v, want 5", got)
	}
	b.lower(2)
	if got := b.get(); got != 2 {
		t.Fatalf("bound = %v, want 2", got)
	}
}

func TestSharedBoundConcurrentLowering(t *testing.T) {
	b := NewPruneBound()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for v := 100; v > g; v-- {
				b.lower(float64(v))
			}
		}(g)
	}
	wg.Wait()
	if got := b.get(); got != 1 {
		t.Fatalf("bound = %v, want 1 (the global minimum lowered)", got)
	}
}

func TestSplitPivotsArePartitionRoots(t *testing.T) {
	f := newFixture(t, fig1, []string{"online", "keyword"})
	in := f.input(t, []string{"online", "keyword"}, nil)
	ks := in.scanKeywords()
	lists, err := scanLists(in, ks)
	if err != nil {
		t.Fatal(err)
	}
	pivots := splitPivots(lists, 4)
	var prev dewey.ID
	for _, p := range pivots {
		if len(p) != 2 {
			t.Errorf("pivot %s is not a partition root", p)
		}
		if prev != nil && dewey.Compare(prev, p) >= 0 {
			t.Errorf("pivots out of order: %s then %s", prev, p)
		}
		prev = p
	}
	if got := splitPivots(lists, 1); got != nil {
		t.Errorf("splitPivots(1) = %v, want nil", got)
	}
}

// TestWalkerRangesCoverFullWalk splits the fixture at every pivot and
// checks that walking the ranges in order visits exactly the partitions of
// the unbounded walk, with identical sublist spans and availability.
func TestWalkerRangesCoverFullWalk(t *testing.T) {
	f := newFixture(t, fig1, []string{"online", "keyword"})
	in := f.input(t, []string{"online", "keyword", "mining"}, nil)
	ks := in.scanKeywords()
	lists, err := scanLists(in, ks)
	if err != nil {
		t.Fatal(err)
	}
	type visit struct {
		pid   string
		spans string
		avail string
	}
	record := func(w *partitionWalker) []visit {
		var out []visit
		for {
			pid, ok := w.next()
			if !ok {
				return out
			}
			avail := ""
			for _, k := range ks {
				if w.avail[k] {
					avail += k + ","
				}
			}
			out = append(out, visit{pid: pid.String(), spans: fmt.Sprint(w.spans), avail: avail})
		}
	}
	full := record(newPartitionWalker(ks, lists, nil, nil))
	if len(full) == 0 {
		t.Fatal("full walk visited no partitions")
	}
	pivots := splitPivots(lists, 4)
	var split []visit
	for r := 0; r <= len(pivots); r++ {
		lo, hi := rangeBounds(pivots, r)
		split = append(split, record(newPartitionWalker(ks, lists, lo, hi))...)
	}
	if fmt.Sprint(full) != fmt.Sprint(split) {
		t.Fatalf("split walk diverged:\nfull:  %v\nsplit: %v", full, split)
	}
}

// largeInput builds an Input over a generated DBLP-like corpus big enough
// to engage the parallel path, querying the corpus's most frequent terms.
func largeInput(t testing.TB) Input {
	t.Helper()
	doc, err := datagen.DBLPDocument(datagen.DBLPConfig{Authors: 300, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(doc)
	vocab := ix.Vocabulary()
	sort.SliceStable(vocab, func(a, b int) bool { return ix.ListLen(vocab[a]) > ix.ListLen(vocab[b]) })
	q := vocab[:3]
	judge := searchfor.NewJudge(searchfor.Infer(ix, q, nil))
	return Input{Index: ix, Query: q, Rules: rules.NewSet(2), Judge: judge, SLCA: slca.AlgoScanEager}
}

func outcomeSig(out *TopKOutcome) string {
	var b strings.Builder
	for _, it := range out.Candidates {
		fmt.Fprintf(&b, "%s|%v|%v;", strings.Join(it.RQ.Keywords, ","), it.RQ.DSim, matchIDs(it.Results))
	}
	return b.String()
}

// TestParallelWorkerPoolUnderRace runs the full worker pool — range
// splitter, per-worker walkers, shared pruning bound, merge — from several
// goroutines at once over one shared index, so `go test -race` inspects
// the pipeline's own synchronization, and every outcome is checked against
// the sequential run.
func TestParallelWorkerPoolUnderRace(t *testing.T) {
	in := largeInput(t)
	seq, err := PartitionTopK(in, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := outcomeSig(seq)
	if len(seq.Candidates) == 0 {
		t.Fatal("sequential run found no candidates; fixture lost its teeth")
	}
	// A cold judge for the concurrent phase: the sequential run above
	// warmed the original's meaningfulness memo, which would hide races
	// on its first writes.
	in.Judge = searchfor.NewJudge(searchfor.Infer(in.Index, in.Query, nil))
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out, err := PartitionTopKParallel(in, 3, 2+g%4)
			if err != nil {
				errs <- err.Error()
				return
			}
			if out.Workers <= 1 {
				errs <- "parallel path did not engage on the large corpus"
				return
			}
			if got := outcomeSig(out); got != want {
				errs <- fmt.Sprintf("workers=%d diverged:\ngot  %s\nwant %s", 2+g%4, got, want)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestParallelFallsBackOnTinyDocuments: below the per-range posting floor
// the parallel entry point must take the exact sequential path.
func TestParallelFallsBackOnTinyDocuments(t *testing.T) {
	f := newFixture(t, fig1, []string{"online", "keyword"})
	in := f.input(t, []string{"online", "keyword"}, nil)
	out, err := PartitionTopKParallel(in, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if out.Workers != 1 || out.Ranges != 0 {
		t.Fatalf("tiny document ran %d workers over %d ranges, want sequential", out.Workers, out.Ranges)
	}
	seq, err := PartitionTopK(in, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Candidates) != len(seq.Candidates) {
		t.Fatalf("fallback found %d candidates, sequential %d", len(out.Candidates), len(seq.Candidates))
	}
}
