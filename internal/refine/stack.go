package refine

import (
	"math"

	"xrefine/internal/dewey"
	"xrefine/internal/index"
	"xrefine/internal/xmltree"
)

// StackOutcome is the result of the stack-based refinement (Algorithm 1).
type StackOutcome struct {
	// NeedRefine is false when Q itself has a meaningful SLCA
	// (Definition 3.4); Original then holds those results.
	NeedRefine bool
	// Original holds Q's meaningful SLCAs when NeedRefine is false.
	Original []Match
	// Found reports whether any refined query with a meaningful result
	// exists (only meaningful when NeedRefine).
	Found bool
	// Best is the minimum-dissimilarity refined query found.
	Best RQ
	// BestResults holds the meaningful SLCAs of Best.
	BestResults []Match
	// Degraded reports a budget-induced early stop: the walk covered only
	// a document prefix, so Best/Original reflect that prefix.
	Degraded bool
	// DegradedReason is one of the Degraded* constants when Degraded.
	DegradedReason string
}

// Stack runs Algorithm 1: a single stack-based merge over the inverted
// lists of KS (Q's keywords plus rule-generated ones) that simultaneously
// (a) detects whether Q has a meaningful SLCA and collects those results,
// and (b) if not, finds the refined query with minimum dissimilarity that
// has a meaningful SLCA, together with its results (Theorem 1).
func Stack(in Input) (*StackOutcome, error) {
	out := &StackOutcome{NeedRefine: true}
	ks := in.scanKeywords()
	if len(ks) == 0 {
		return out, nil
	}
	lists := make([]*index.List, len(ks))
	for i, k := range ks {
		l, err := in.Index.List(k)
		if err != nil {
			return nil, err
		}
		lists[i] = l
	}
	bit := make(map[string]int, len(ks))
	for i, k := range ks {
		bit[k] = i
	}
	// Q is satisfiable only when every original keyword occurs in the
	// data at all.
	var qMask uint64
	qSatisfiable := true
	for _, k := range in.Query {
		if b, ok := bit[k]; ok {
			qMask |= 1 << b
		} else {
			qSatisfiable = false
		}
	}

	type entry struct {
		mask   uint64
		belowQ bool // a descendant already claimed a Q result
		typ    *xmltree.Type
	}
	var stack []entry
	var path dewey.ID
	min := math.Inf(1)

	// claimRQ processes a popped entry's witnessed keyword set through
	// getOptimalRQ and updates the running optimum (paper lines 13-19).
	claimRQ := func(e *entry) {
		avail := make(map[string]bool)
		for i, k := range ks {
			if e.mask&(1<<i) != 0 {
				avail[k] = true
			}
		}
		rq, ok := OptimalRQ(in.Query, avail, in.Rules)
		if !ok || rq.DSim > min {
			return
		}
		node := path.Clone()
		switch {
		case rq.DSim < min:
			min = rq.DSim
			out.Best = rq
			out.BestResults = []Match{{ID: node, Type: e.typ}}
			out.Found = true
		case rq.Key() == out.Best.Key():
			// Same optimum elsewhere: another SLCA, unless this node
			// is an ancestor of one already recorded (then it is not
			// smallest for this RQ).
			for _, m := range out.BestResults {
				if dewey.IsAncestorOrSelf(node, m.ID) {
					return
				}
			}
			out.BestResults = append(out.BestResults, Match{ID: node, Type: e.typ})
		default:
			return // equal dSim, different keywords: keep the first
		}
		// Witness bits deliberately stay up (the paper's lines 18-19:
		// keywords shared with other RQ candidates or Q "are kept as
		// true"): a cheaper refinement may only become expressible at an
		// ancestor where witnesses from several children combine. The
		// ancestor-of-recorded check above already prevents an ancestor
		// from re-claiming the same RQ with a non-smallest node.
	}

	pop := func() {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		reportedQ := false
		if qSatisfiable && e.mask&qMask == qMask && !e.belowQ && in.Judge.Meaningful(e.typ) {
			// Q has a meaningful SLCA here: no refinement needed
			// (paper lines 10-12).
			out.NeedRefine = false
			out.Original = append(out.Original, Match{ID: path.Clone(), Type: e.typ})
			reportedQ = true
			e.mask = 0
		}
		if out.NeedRefine && e.mask != 0 && in.Judge.Meaningful(e.typ) {
			claimRQ(&e)
		}
		path = path[:len(path)-1]
		if len(stack) > 0 {
			top := &stack[len(stack)-1]
			top.mask |= e.mask
			top.belowQ = top.belowQ || e.belowQ || reportedQ
		}
	}

	merge := newMergeScan(lists)
	defer merge.close()
	steps := 0
	for {
		id, mask, typ, ok := merge.next()
		if !ok {
			break
		}
		// Charge the budget in batches of merge steps (each step consumes
		// at least one posting). A degradable stop finalizes the partial
		// stack below; a hard cancellation aborts.
		steps++
		if steps%budgetStride == 0 && !in.Budget.Charge(budgetStride) {
			if err := in.Budget.Err(); err != nil {
				return nil, err
			}
			out.Degraded = true
			out.DegradedReason = in.Budget.Reason()
			break
		}
		keep := dewey.LCALen(path, id)
		for len(stack) > keep {
			pop()
		}
		for len(path) < len(id) {
			depth := len(path)
			path = append(path, id[depth])
			t, err := typ.AncestorAt(depth)
			if err != nil {
				return nil, err
			}
			stack = append(stack, entry{typ: t})
		}
		stack[len(stack)-1].mask |= mask
	}
	for len(stack) > 0 {
		pop()
	}
	if !out.NeedRefine {
		out.Found = false
		out.Best = RQ{}
		out.BestResults = nil
	}
	return out, nil
}

// mergeScan yields (dewey, keyword mask, node type) triples in document
// order across the keyword lists, reading each list through a pooled
// block cursor. The yielded ID is owned by the scan and valid only until
// the next call; close() must run when the merge ends to recycle the
// cursors' decode buffers.
type mergeScan struct {
	curs []*index.Cursor
	cur  dewey.ID // owned copy of the yielded minimum (reused per call)
}

func newMergeScan(lists []*index.List) *mergeScan {
	m := &mergeScan{curs: make([]*index.Cursor, len(lists))}
	for i, l := range lists {
		m.curs[i] = l.NewCursor()
	}
	return m
}

func (m *mergeScan) close() {
	for _, c := range m.curs {
		c.Close()
	}
}

func (m *mergeScan) next() (dewey.ID, uint64, *xmltree.Type, bool) {
	// The minimum is copied into m.cur before any cursor advances: the
	// heads alias per-cursor decode buffers that the mask loop's reads
	// below (and the next call) may recycle.
	var typ *xmltree.Type
	found := false
	for _, c := range m.curs {
		if !c.Valid() {
			continue
		}
		p := c.Posting()
		if !found || dewey.Compare(p.ID, m.cur) < 0 {
			m.cur = append(m.cur[:0], p.ID...)
			typ = p.Type
			found = true
		}
	}
	if !found {
		return nil, 0, nil, false
	}
	var mask uint64
	for i, c := range m.curs {
		if c.Valid() && dewey.Equal(c.ID(), m.cur) {
			mask |= 1 << i
			c.Next()
		}
	}
	return m.cur, mask, typ, true
}
