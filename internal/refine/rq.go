// Package refine implements the heart of the paper: the exploration of
// refined queries integrated with the generation of their matching results,
// within one scan of the keyword inverted lists. It provides the dynamic
// program of Section V (getOptimalRQ and its top-2K extension) and the
// three query refinement algorithms of Section VI — stack-based (Algorithm
// 1), partition-based top-K (Algorithm 2) and short-list eager (Algorithm
// 3).
package refine

import (
	"math"
	"sort"
	"strings"

	"xrefine/internal/dewey"
	"xrefine/internal/index"
	"xrefine/internal/obs"
	"xrefine/internal/rules"
	"xrefine/internal/searchfor"
	"xrefine/internal/slca"
	"xrefine/internal/xmltree"
)

// RQ is a refined query: a keyword set plus its dissimilarity dSim(Q,RQ)
// (Definition 3.6). Keywords are sorted and unique; a keyword query is a
// set, so order carries no meaning. Steps carries the provenance of the
// cheapest refinement sequence producing this keyword set; it is excluded
// from identity (Key) and from dissimilarity.
type RQ struct {
	Keywords []string
	DSim     float64
	Steps    []Step
}

// NewRQ canonicalizes a keyword multiset into an RQ.
func NewRQ(keywords []string, dSim float64) RQ {
	return RQ{Keywords: canonical(keywords), DSim: dSim}
}

func canonical(keywords []string) []string {
	out := append([]string(nil), keywords...)
	sort.Strings(out)
	uniq := out[:0]
	for i, k := range out {
		if i == 0 || out[i-1] != k {
			uniq = append(uniq, k)
		}
	}
	return uniq
}

// Key returns a canonical identity string, used for dedup.
func (r RQ) Key() string { return strings.Join(r.Keywords, "\x00") }

// String renders the RQ for humans.
func (r RQ) String() string { return "{" + strings.Join(r.Keywords, ", ") + "}" }

// SameKeywords reports whether r's keyword set equals terms (as a set).
func (r RQ) SameKeywords(terms []string) bool {
	return r.Key() == NewRQ(terms, 0).Key()
}

// Match is one matching result: a meaningful SLCA node.
type Match struct {
	// ID is the Dewey label of the result node.
	ID dewey.ID
	// Type is the node type of the result node.
	Type *xmltree.Type
}

// Item pairs a refined query with its accumulated matching results.
type Item struct {
	RQ      RQ
	Results []Match
}

// SortedList is the RQSortedList of Section VI-B: a capacity-bounded list
// of refined-query candidates ordered by dissimilarity, with O(1)
// membership via a side table. The paper backs it with a B-tree; with the
// capacity fixed at 2K (a dozen or so entries) a sorted slice has the same
// asymptotics in spirit and better constants.
type SortedList struct {
	cap   int
	items []*Item
	byKey map[string]*Item
}

// NewSortedList returns an empty list holding at most cap candidates.
func NewSortedList(cap int) *SortedList {
	if cap < 1 {
		cap = 1
	}
	return &SortedList{cap: cap, byKey: make(map[string]*Item)}
}

// Len returns the number of stored candidates.
func (l *SortedList) Len() int { return len(l.items) }

// Full reports whether the list is at capacity.
func (l *SortedList) Full() bool { return len(l.items) >= l.cap }

// Worst returns the largest stored dissimilarity, or +Inf when not full —
// the threshold a new candidate must beat (the paper's line 12 check).
func (l *SortedList) Worst() float64 {
	if !l.Full() {
		return math.Inf(1)
	}
	return l.items[len(l.items)-1].RQ.DSim
}

// Qualifies reports whether a candidate with the given dissimilarity would
// be admitted.
func (l *SortedList) Qualifies(dSim float64) bool { return dSim < l.Worst() }

// Has returns the stored item for rq, or nil — the hasRQ probe.
func (l *SortedList) Has(rq RQ) *Item { return l.byKey[rq.Key()] }

// Insert admits a candidate, evicting the worst when over capacity. It
// returns the stored item, or nil when the candidate did not qualify.
// Inserting an already-present RQ returns the existing item unchanged.
func (l *SortedList) Insert(rq RQ, results []Match) *Item {
	if it := l.byKey[rq.Key()]; it != nil {
		return it
	}
	if !l.Qualifies(rq.DSim) {
		return nil
	}
	it := &Item{RQ: rq, Results: results}
	pos := sort.Search(len(l.items), func(i int) bool { return l.items[i].RQ.DSim > rq.DSim })
	l.items = append(l.items, nil)
	copy(l.items[pos+1:], l.items[pos:])
	l.items[pos] = it
	l.byKey[rq.Key()] = it
	if len(l.items) > l.cap {
		ev := l.items[len(l.items)-1]
		l.items = l.items[:len(l.items)-1]
		delete(l.byKey, ev.RQ.Key())
		if ev == it {
			return nil
		}
	}
	return it
}

// Items returns the stored candidates, best (smallest dissimilarity) first.
// The slice is shared; callers may mutate item results but not list order.
func (l *SortedList) Items() []*Item { return l.items }

// Input bundles what every refinement algorithm needs.
type Input struct {
	// Index is the document's access structure.
	Index *index.Index
	// Query is the normalized original keyword query Q.
	Query []string
	// Rules is the refinement rule set relevant to Q.
	Rules *rules.Set
	// Judge decides meaningfulness (Definition 3.3) from the inferred
	// search-for candidates.
	Judge *searchfor.Judge
	// SLCA selects the SLCA computation the partition-based and
	// short-list eager algorithms delegate to (Lemma 3 orthogonality).
	SLCA slca.Algorithm
	// Parallelism bounds the worker goroutines PartitionTopK fans the
	// partition walk out to. 0 and 1 run the exact sequential path; the
	// parallel path returns identical output (see partition_parallel.go).
	Parallelism int
	// Budget, when non-nil, bounds the execution: cancellation aborts
	// with the context error, while deadline expiry or posting-budget
	// exhaustion stops the exploration early and marks the outcome
	// Degraded — partial but valid results. A nil Budget never stops
	// anything and the output is byte-identical to pre-budget behavior.
	Budget *Budget
	// Trace, when non-nil, is the span the algorithm hangs its stage
	// spans off (list loads, per-worker shares) and accumulates SLCA
	// time into. A nil Trace costs one nil check per instrumentation
	// point and never changes the computed results.
	Trace *obs.Span
}

// ScanKeywords returns the scan keyword set KS of Algorithms 1-3. The
// shard router computes it once against the merged corpus index and hands
// the same set to every per-shard scan, so all shards walk identical
// keyword columns even when a term happens to be absent from one shard.
func (in *Input) ScanKeywords() []string { return in.scanKeywords() }

// scanKeywords returns Q's keywords plus the rule-generated new keywords,
// restricted to terms that occur in the data — the KS of Algorithms 1-3 —
// with Q's terms first, in Q order.
func (in *Input) scanKeywords() []string {
	seen := make(map[string]bool)
	var ks []string
	for _, k := range in.Query {
		if !seen[k] && in.Index.HasTerm(k) {
			seen[k] = true
			ks = append(ks, k)
		}
	}
	for _, k := range in.Rules.NewKeywords(in.Query) {
		if !seen[k] && in.Index.HasTerm(k) {
			seen[k] = true
			ks = append(ks, k)
		}
	}
	return ks
}

// typedMatch resolves the node type of an SLCA result from a witnessing
// posting list: the first posting at or after the result lies inside its
// subtree, and the result's type is that posting's ancestor type at the
// result's depth.
func typedMatch(id dewey.ID, witness *index.List) (Match, bool) {
	i := witness.SeekGE(id)
	if i >= witness.Len() {
		return Match{}, false
	}
	p := witness.At(i)
	if !dewey.IsAncestorOrSelf(id, p.ID) {
		return Match{}, false
	}
	t, err := p.Type.AncestorAt(len(id) - 1)
	if err != nil {
		return Match{}, false
	}
	return Match{ID: id, Type: t}, true
}

// meaningfulMatches converts raw SLCA IDs into typed matches and keeps the
// meaningful ones (Definition 3.3).
func meaningfulMatches(ids []dewey.ID, witness *index.List, judge *searchfor.Judge) []Match {
	var out []Match
	for _, id := range ids {
		m, ok := typedMatch(id, witness)
		if ok && judge.Meaningful(m.Type) {
			out = append(out, m)
		}
	}
	return out
}
