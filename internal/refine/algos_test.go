package refine

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"xrefine/internal/index"
	"xrefine/internal/rules"
	"xrefine/internal/searchfor"
	"xrefine/internal/slca"
	"xrefine/internal/xmltree"
)

const fig1 = `
<bib>
  <author>
    <name>John Ben</name>
    <publications>
      <inproceedings>
        <title>online DBLP record</title>
        <year>2001</year>
      </inproceedings>
      <inproceedings>
        <title>online database systems</title>
        <year>2003</year>
      </inproceedings>
      <article>
        <title>keyword mining</title>
        <year>2003</year>
      </article>
    </publications>
  </author>
  <author>
    <name>Mary Lee</name>
    <publications>
      <inproceedings>
        <title>keyword search</title>
        <year>2005</year>
      </inproceedings>
    </publications>
    <hobby>swimming</hobby>
  </author>
</bib>`

type fixture struct {
	doc   *xmltree.Document
	ix    *index.Index
	judge *searchfor.Judge
}

func newFixture(t testing.TB, src string, judgeTerms []string) *fixture {
	t.Helper()
	doc, err := xmltree.ParseString(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(doc)
	judge := searchfor.NewJudge(searchfor.Infer(ix, judgeTerms, nil))
	return &fixture{doc: doc, ix: ix, judge: judge}
}

func (f *fixture) input(t testing.TB, q []string, rs *rules.Set) Input {
	t.Helper()
	if rs == nil {
		rs = rules.NewSet(2)
	}
	return Input{Index: f.ix, Query: q, Rules: rs, Judge: f.judge, SLCA: slca.AlgoScanEager}
}

func matchIDs(ms []Match) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.ID.String()
	}
	return out
}

func TestStackNoRefinementNeeded(t *testing.T) {
	f := newFixture(t, fig1, []string{"online", "database"})
	out, err := Stack(f.input(t, []string{"online", "database"}, nil))
	if err != nil {
		t.Fatal(err)
	}
	if out.NeedRefine {
		t.Fatal("satisfiable meaningful query flagged for refinement")
	}
	if got := strings.Join(matchIDs(out.Original), " "); got != "0.0.1.1.0" {
		t.Errorf("original results = %v", got)
	}
}

func TestStackRefinesMerges(t *testing.T) {
	f := newFixture(t, fig1, []string{"online", "database"})
	rs := rules.NewSet(2)
	mustAdd(t, rs, rules.Rule{Op: rules.OpMerge, LHS: []string{"on", "line"}, RHS: []string{"online"}, Score: 1})
	mustAdd(t, rs, rules.Rule{Op: rules.OpMerge, LHS: []string{"data", "base"}, RHS: []string{"database"}, Score: 1})
	out, err := Stack(f.input(t, []string{"on", "line", "data", "base"}, rs))
	if err != nil {
		t.Fatal(err)
	}
	if !out.NeedRefine || !out.Found {
		t.Fatalf("outcome = %+v", out)
	}
	if out.Best.DSim != 2 || out.Best.Key() != NewRQ([]string{"online", "database"}, 0).Key() {
		t.Errorf("best = %v (dSim %v)", out.Best, out.Best.DSim)
	}
	if got := strings.Join(matchIDs(out.BestResults), " "); got != "0.0.1.1.0" {
		t.Errorf("best results = %v", got)
	}
}

// Q covered only at the root (across partitions): meaningless, so the
// query needs refinement; the best refinements delete one side.
func TestStackRootOnlyResultForcesRefinement(t *testing.T) {
	f := newFixture(t, fig1, []string{"john", "swimming"})
	out, err := Stack(f.input(t, []string{"john", "swimming"}, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !out.NeedRefine {
		t.Fatal("root-only query must need refinement")
	}
	if !out.Found || out.Best.DSim != 2 || len(out.Best.Keywords) != 1 {
		t.Fatalf("best = %v (dSim %v) found=%v", out.Best, out.Best.DSim, out.Found)
	}
}

func TestStackUnmatchableQuery(t *testing.T) {
	f := newFixture(t, fig1, []string{"online"})
	out, err := Stack(f.input(t, []string{"zzz", "qqq"}, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !out.NeedRefine || out.Found {
		t.Fatalf("nothing matchable: %+v", out)
	}
}

func TestPartitionTopK(t *testing.T) {
	f := newFixture(t, fig1, []string{"online", "database"})
	rs := rules.NewSet(2)
	mustAdd(t, rs, rules.Rule{Op: rules.OpMerge, LHS: []string{"on", "line"}, RHS: []string{"online"}, Score: 1})
	mustAdd(t, rs, rules.Rule{Op: rules.OpMerge, LHS: []string{"data", "base"}, RHS: []string{"database"}, Score: 1})
	out, err := PartitionTopK(f.input(t, []string{"on", "line", "data", "base"}, rs), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	best := out.Candidates[0]
	if best.RQ.DSim != 2 || best.RQ.Key() != NewRQ([]string{"online", "database"}, 0).Key() {
		t.Errorf("best candidate = %v (dSim %v)", best.RQ, best.RQ.DSim)
	}
	if got := strings.Join(matchIDs(best.Results), " "); got != "0.0.1.1.0" {
		t.Errorf("best results = %v", got)
	}
	for i := 1; i < len(out.Candidates); i++ {
		if out.Candidates[i-1].RQ.DSim > out.Candidates[i].RQ.DSim {
			t.Error("candidates not ordered by dissimilarity")
		}
	}
	if out.Partitions == 0 {
		t.Error("partition counter not maintained")
	}
}

// The original query must surface as the dSim-0 candidate when it has
// meaningful results — the adaptive "does Q need refinement" decision of
// the partition algorithm.
func TestPartitionDetectsSatisfiableQuery(t *testing.T) {
	f := newFixture(t, fig1, []string{"online", "database"})
	out, err := PartitionTopK(f.input(t, []string{"online", "database"}, nil), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	best := out.Candidates[0]
	if best.RQ.DSim != 0 || !best.RQ.SameKeywords([]string{"online", "database"}) {
		t.Fatalf("best = %v (dSim %v), want the original query at 0", best.RQ, best.RQ.DSim)
	}
	if got := strings.Join(matchIDs(best.Results), " "); got != "0.0.1.1.0" {
		t.Errorf("results = %v", got)
	}
}

func TestSLETopK(t *testing.T) {
	f := newFixture(t, fig1, []string{"online", "database"})
	rs := rules.NewSet(2)
	mustAdd(t, rs, rules.Rule{Op: rules.OpMerge, LHS: []string{"on", "line"}, RHS: []string{"online"}, Score: 1})
	mustAdd(t, rs, rules.Rule{Op: rules.OpMerge, LHS: []string{"data", "base"}, RHS: []string{"database"}, Score: 1})
	out, err := ShortListEager(f.input(t, []string{"on", "line", "data", "base"}, rs), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	best := out.Candidates[0]
	if best.RQ.DSim != 2 || best.RQ.Key() != NewRQ([]string{"online", "database"}, 0).Key() {
		t.Errorf("best = %v (dSim %v)", best.RQ, best.RQ.DSim)
	}
	if got := strings.Join(matchIDs(best.Results), " "); got != "0.0.1.1.0" {
		t.Errorf("results = %v", got)
	}
}

func TestAlgorithmsOnEmptyQuery(t *testing.T) {
	f := newFixture(t, fig1, []string{"online"})
	for name, run := range map[string]func() error{
		"stack": func() error { _, err := Stack(f.input(t, nil, nil)); return err },
		"partition": func() error {
			out, err := PartitionTopK(f.input(t, nil, nil), 2)
			if err == nil && len(out.Candidates) != 0 {
				return fmt.Errorf("empty query produced candidates")
			}
			return err
		},
		"sle": func() error {
			out, err := ShortListEager(f.input(t, nil, nil), 2)
			if err == nil && len(out.Candidates) != 0 {
				return fmt.Errorf("empty query produced candidates")
			}
			return err
		},
	} {
		if err := run(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// --- property tests against brute force ---

// bruteBest finds, by walking every meaningful node, the minimum
// dissimilarity of a refined query with at least one meaningful SLCA.
func bruteBest(f *fixture, q []string, rs *rules.Set) (float64, bool) {
	best := math.Inf(1)
	found := false
	f.doc.Walk(func(n *xmltree.Node) bool {
		if !f.judge.Meaningful(n.Type) {
			return true
		}
		av := map[string]bool{}
		var rec func(m *xmltree.Node)
		rec = func(m *xmltree.Node) {
			for _, w := range m.Terms() {
				av[w] = true
			}
			for _, c := range m.Children {
				rec(c)
			}
		}
		rec(n)
		if rq, ok := OptimalRQ(q, av, rs); ok {
			found = true
			if rq.DSim < best {
				best = rq.DSim
			}
		}
		return true
	})
	return best, found
}

// bruteQHasMeaningfulSLCA checks Definition 3.4 directly.
func bruteQHasMeaningfulSLCA(t *testing.T, f *fixture, q []string) bool {
	ls := make([]*index.List, len(q))
	for i, k := range q {
		l, err := f.ix.List(k)
		if err != nil {
			t.Fatal(err)
		}
		ls[i] = l
	}
	for _, id := range slca.Naive(ls) {
		n, ok := f.doc.NodeByID(id)
		if ok && f.judge.Meaningful(n.Type) {
			return true
		}
	}
	return false
}

func randomTestDoc(r *rand.Rand) string {
	words := []string{"w0", "w1", "w2", "w3", "w4", "w5"}
	var b strings.Builder
	b.WriteString("<lib>")
	items := 2 + r.Intn(3)
	for i := 0; i < items; i++ {
		b.WriteString("<item>")
		entries := 1 + r.Intn(3)
		for j := 0; j < entries; j++ {
			b.WriteString("<entry><txt>")
			n := 1 + r.Intn(3)
			for w := 0; w < n; w++ {
				b.WriteString(words[r.Intn(len(words))] + " ")
			}
			b.WriteString("</txt></entry>")
		}
		b.WriteString("</item>")
	}
	b.WriteString("</lib>")
	return b.String()
}

func TestPropertyStackMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(2718))
	for trial := 0; trial < 150; trial++ {
		src := randomTestDoc(r)
		f := newFixture(t, src, []string{"w0", "w1", "w2"})
		q := make([]string, 1+r.Intn(3))
		for i := range q {
			q[i] = fmt.Sprintf("w%d", r.Intn(8)) // w6, w7 never occur
		}
		rs := rules.NewSet(2)
		_ = rs.Add(rules.Rule{Op: rules.OpSubstitute, LHS: []string{"w6"}, RHS: []string{"w0"}, Score: 1})
		_ = rs.Add(rules.Rule{Op: rules.OpSubstitute, LHS: []string{"w7"}, RHS: []string{"w1", "w2"}, Score: 2})
		in := f.input(t, q, rs)
		out, err := Stack(in)
		if err != nil {
			t.Fatal(err)
		}
		wantNeed := !bruteQHasMeaningfulSLCA(t, f, q)
		if out.NeedRefine != wantNeed {
			t.Fatalf("trial %d: NeedRefine = %v, want %v (q=%v)\ndoc: %s", trial, out.NeedRefine, wantNeed, q, src)
		}
		if !out.NeedRefine {
			if len(out.Original) == 0 {
				t.Fatalf("trial %d: no original results despite satisfiable query", trial)
			}
			continue
		}
		best, found := bruteBest(f, q, rs)
		if out.Found != found {
			t.Fatalf("trial %d: Found = %v, want %v (q=%v)", trial, out.Found, found, q)
		}
		if !found {
			continue
		}
		if out.Best.DSim != best {
			t.Fatalf("trial %d: stack best dSim = %v, brute = %v (q=%v, best=%v)\ndoc: %s",
				trial, out.Best.DSim, best, q, out.Best, src)
		}
		// Every reported result must be a meaningful SLCA of Best.
		ls := make([]*index.List, len(out.Best.Keywords))
		for i, k := range out.Best.Keywords {
			l, err := f.ix.List(k)
			if err != nil {
				t.Fatal(err)
			}
			ls[i] = l
		}
		slcaSet := map[string]bool{}
		for _, id := range slca.Naive(ls) {
			slcaSet[id.String()] = true
		}
		if len(out.BestResults) == 0 {
			t.Fatalf("trial %d: optimal RQ without results", trial)
		}
		for _, m := range out.BestResults {
			if !slcaSet[m.ID.String()] {
				t.Fatalf("trial %d: reported node %s is not an SLCA of %v", trial, m.ID, out.Best)
			}
			if !f.judge.Meaningful(m.Type) {
				t.Fatalf("trial %d: reported node %s not meaningful", trial, m.ID)
			}
		}
	}
}

func TestPropertyPartitionAndSLEMatchBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(314))
	for trial := 0; trial < 120; trial++ {
		src := randomTestDoc(r)
		f := newFixture(t, src, []string{"w0", "w1", "w2"})
		q := make([]string, 1+r.Intn(3))
		for i := range q {
			q[i] = fmt.Sprintf("w%d", r.Intn(8))
		}
		rs := rules.NewSet(2)
		_ = rs.Add(rules.Rule{Op: rules.OpSubstitute, LHS: []string{"w6"}, RHS: []string{"w0"}, Score: 1})
		_ = rs.Add(rules.Rule{Op: rules.OpSubstitute, LHS: []string{"w7"}, RHS: []string{"w1", "w2"}, Score: 2})
		in := f.input(t, q, rs)
		best, found := bruteBest(f, q, rs)

		pOut, err := PartitionTopK(in, 3)
		if err != nil {
			t.Fatal(err)
		}
		sOut, err := ShortListEager(in, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			if len(pOut.Candidates) != 0 || len(sOut.Candidates) != 0 {
				t.Fatalf("trial %d: candidates despite no meaningful refinement (q=%v)", trial, q)
			}
			continue
		}
		if len(pOut.Candidates) == 0 || pOut.Candidates[0].RQ.DSim != best {
			t.Fatalf("trial %d: partition best = %+v, brute = %v (q=%v)\ndoc: %s",
				trial, pOut.Candidates, best, q, src)
		}
		if len(sOut.Candidates) == 0 || sOut.Candidates[0].RQ.DSim != best {
			t.Fatalf("trial %d: SLE best = %+v, brute = %v (q=%v)\ndoc: %s",
				trial, sOut.Candidates, best, q, src)
		}
		// Validity of every candidate's results.
		for algo, out := range map[string]*TopKOutcome{"partition": pOut, "sle": sOut} {
			for _, it := range out.Candidates {
				if len(it.Results) == 0 {
					t.Fatalf("trial %d: %s candidate %v without results", trial, algo, it.RQ)
				}
				ls := make([]*index.List, len(it.RQ.Keywords))
				for i, k := range it.RQ.Keywords {
					l, err := f.ix.List(k)
					if err != nil {
						t.Fatal(err)
					}
					ls[i] = l
				}
				slcaSet := map[string]bool{}
				for _, id := range slca.Naive(ls) {
					slcaSet[id.String()] = true
				}
				for _, m := range it.Results {
					if !slcaSet[m.ID.String()] || !f.judge.Meaningful(m.Type) {
						t.Fatalf("trial %d: %s reported %s, not a meaningful SLCA of %v",
							trial, algo, m.ID, it.RQ)
					}
				}
			}
		}
	}
}

func TestPartitionSLCAAlgorithmOrthogonality(t *testing.T) {
	// Lemma 3: the partition algorithm must produce identical candidates
	// and results no matter which SLCA algorithm it delegates to.
	f := newFixture(t, fig1, []string{"online", "database"})
	rs := rules.NewSet(2)
	mustAdd(t, rs, rules.Rule{Op: rules.OpMerge, LHS: []string{"on", "line"}, RHS: []string{"online"}, Score: 1})
	mustAdd(t, rs, rules.Rule{Op: rules.OpMerge, LHS: []string{"data", "base"}, RHS: []string{"database"}, Score: 1})
	var snapshots []string
	for _, algo := range []slca.Algorithm{slca.AlgoScanEager, slca.AlgoIndexedLookupEager, slca.AlgoStack, slca.AlgoMultiway} {
		in := f.input(t, []string{"on", "line", "data", "base"}, rs)
		in.SLCA = algo
		out, err := PartitionTopK(in, 2)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, it := range out.Candidates {
			fmt.Fprintf(&b, "%v@%v:%v;", it.RQ, it.RQ.DSim, matchIDs(it.Results))
		}
		snapshots = append(snapshots, b.String())
	}
	for i := 1; i < len(snapshots); i++ {
		if snapshots[i] != snapshots[0] {
			t.Fatalf("SLCA algorithm changed partition outcome:\n%s\nvs\n%s", snapshots[0], snapshots[i])
		}
	}
}

func TestOriginalBaseline(t *testing.T) {
	f := newFixture(t, fig1, []string{"online", "database"})
	res, err := Original(f.input(t, []string{"online", "database"}, nil))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(matchIDs(res), " "); got != "0.0.1.1.0" {
		t.Errorf("original = %v", got)
	}
	// Unmatched keyword: empty.
	res2, err := Original(f.input(t, []string{"online", "zzz"}, nil))
	if err != nil || res2 != nil {
		t.Errorf("unmatched = %v, %v", res2, err)
	}
}

func BenchmarkStackRefine(b *testing.B) {
	f := newFixtureB(b)
	rs := rules.NewSet(2)
	rs.Add(rules.Rule{Op: rules.OpMerge, LHS: []string{"on", "line"}, RHS: []string{"online"}, Score: 1})
	rs.Add(rules.Rule{Op: rules.OpMerge, LHS: []string{"data", "base"}, RHS: []string{"database"}, Score: 1})
	in := Input{Index: f.ix, Query: []string{"on", "line", "data", "base"}, Rules: rs, Judge: f.judge, SLCA: slca.AlgoScanEager}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Stack(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionTopK(b *testing.B) {
	f := newFixtureB(b)
	rs := rules.NewSet(2)
	rs.Add(rules.Rule{Op: rules.OpMerge, LHS: []string{"on", "line"}, RHS: []string{"online"}, Score: 1})
	rs.Add(rules.Rule{Op: rules.OpMerge, LHS: []string{"data", "base"}, RHS: []string{"database"}, Score: 1})
	in := Input{Index: f.ix, Query: []string{"on", "line", "data", "base"}, Rules: rs, Judge: f.judge, SLCA: slca.AlgoScanEager}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PartitionTopK(in, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func newFixtureB(b *testing.B) *fixture {
	r := rand.New(rand.NewSource(4))
	var sb strings.Builder
	sb.WriteString("<bib>")
	for i := 0; i < 500; i++ {
		sb.WriteString("<author><publications>")
		for j := 0; j < 3; j++ {
			fmt.Fprintf(&sb, "<paper><title>online database term%d</title><year>%d</year></paper>", r.Intn(40), 2000+r.Intn(8))
		}
		sb.WriteString("</publications></author>")
	}
	sb.WriteString("</bib>")
	doc, err := xmltree.ParseString(sb.String(), nil)
	if err != nil {
		b.Fatal(err)
	}
	ix := index.Build(doc)
	judge := searchfor.NewJudge(searchfor.Infer(ix, []string{"online", "database"}, nil))
	return &fixture{doc: doc, ix: ix, judge: judge}
}
