package refine

import (
	"xrefine/internal/dewey"
	"xrefine/internal/index"
	"xrefine/internal/slca"
)

// TopKOutcome is the result of the partition-based and short-list eager
// algorithms: up to 2K refined-query candidates by dissimilarity, each with
// its accumulated meaningful SLCA results. The caller (the engine) applies
// the full ranking model (Formula 10) to produce the final top K — the
// paper's line 19.
type TopKOutcome struct {
	// Candidates holds refined queries with at least one meaningful
	// result, in ascending dissimilarity.
	Candidates []*Item
	// Partitions counts document partitions actually visited, an
	// efficiency observable for the experiments.
	Partitions int
	// SLCACalls counts delegated SLCA computations.
	SLCACalls int
}

// PartitionTopK runs Algorithm 2: walk the keyword lists partition by
// partition (Definition 6.1) in document order; within each partition run
// the top-2K dynamic program over the keywords present, skip SLCA work for
// candidates that cannot enter the current top-2K (the paper's key
// optimization), and compute results with any SLCA algorithm, restricted to
// the partition's sublists. Each list is traversed exactly once
// (Theorem 2).
func PartitionTopK(in Input, k int) (*TopKOutcome, error) {
	if k < 1 {
		k = 1
	}
	out := &TopKOutcome{}
	ks := in.scanKeywords()
	if len(ks) == 0 {
		return out, nil
	}
	lists := make([]*index.List, len(ks))
	for i, kw := range ks {
		l, err := in.Index.List(kw)
		if err != nil {
			return nil, err
		}
		lists[i] = l
	}
	cursors := make([]int, len(ks))
	sorted := NewSortedList(2 * k)

	for {
		// Smallest unconsumed node across lists (paper line 5).
		var v dewey.ID
		for i, l := range lists {
			if cursors[i] >= l.Len() {
				continue
			}
			if id := l.At(cursors[i]).ID; v == nil || dewey.Compare(id, v) < 0 {
				v = id
			}
		}
		if v == nil {
			break
		}
		pid, ok := v.Partition()
		if !ok {
			// A posting at the document root: no partition contains
			// it; skip it (the root is never a meaningful result).
			for i, l := range lists {
				if cursors[i] < l.Len() && dewey.Equal(l.At(cursors[i]).ID, v) {
					cursors[i]++
				}
			}
			continue
		}
		out.Partitions++
		pidEnd := pid.Next()
		// Sublists within the partition (getKLPartition, lines 6-8).
		spans := make([]span, len(ks))
		avail := make(map[string]bool, len(ks))
		for i, l := range lists {
			end := l.SeekGE(pidEnd)
			if end < cursors[i] {
				end = cursors[i]
			}
			spans[i] = span{start: cursors[i], end: end}
			if end > cursors[i] {
				avail[ks[i]] = true
			}
			cursors[i] = end
		}
		// Top-2K refined queries expressible in this partition (line 10).
		for _, rq := range TopRQs(in.Query, avail, in.Rules, 2*k) {
			item := sorted.Has(rq)
			if item == nil && !sorted.Qualifies(rq.DSim) {
				// Worse than the current 2K-th candidate: skip the
				// SLCA computation entirely (the paper's advantage
				// (2)).
				continue
			}
			res, err := partitionSLCA(in, rq, ks, lists, spans, pid)
			if err != nil {
				return nil, err
			}
			out.SLCACalls++
			if len(res) == 0 {
				continue // no meaningful result in this partition
			}
			if item != nil {
				item.Results = append(item.Results, res...)
			} else {
				sorted.Insert(rq, res)
			}
		}
	}
	for _, it := range sorted.Items() {
		out.Candidates = append(out.Candidates, it)
	}
	return out, nil
}

// span is a half-open index interval into a keyword list.
type span struct{ start, end int }

// partitionSLCA computes the meaningful SLCAs of rq inside one document
// partition by delegating to the configured SLCA algorithm over the
// partition-restricted sublists.
func partitionSLCA(in Input, rq RQ, ks []string, lists []*index.List, spans []span, pid dewey.ID) ([]Match, error) {
	sub := make([]*index.List, 0, len(rq.Keywords))
	var witness *index.List
	for _, kw := range rq.Keywords {
		found := false
		for i, name := range ks {
			if name != kw {
				continue
			}
			s := spans[i]
			if s.end <= s.start {
				return nil, nil // keyword absent from partition
			}
			l := index.NewList(kw, lists[i].Slice(s.start, s.end))
			sub = append(sub, l)
			witness = l
			found = true
			break
		}
		if !found {
			return nil, nil
		}
	}
	ids := slca.Compute(in.SLCA, sub)
	return meaningfulMatches(ids, witness, in.Judge), nil
}
