package refine

import (
	"time"

	"xrefine/internal/dewey"
	"xrefine/internal/index"
	"xrefine/internal/slca"
)

// TopKOutcome is the result of the partition-based and short-list eager
// algorithms: up to 2K refined-query candidates by dissimilarity, each with
// its accumulated meaningful SLCA results. The caller (the engine) applies
// the full ranking model (Formula 10) to produce the final top K — the
// paper's line 19.
type TopKOutcome struct {
	// Candidates holds refined queries with at least one meaningful
	// result, in ascending dissimilarity.
	Candidates []*Item
	// Partitions counts document partitions actually visited, an
	// efficiency observable for the experiments.
	Partitions int
	// SLCACalls counts delegated SLCA computations. The parallel
	// execution path may count more calls than the sequential one: each
	// worker prunes against a bound that converges on the sequential
	// bound but can transiently admit extra candidates.
	SLCACalls int
	// Workers is the number of goroutines that executed the partition
	// walk: 1 for the sequential path.
	Workers int
	// Ranges is the number of contiguous partition ranges the document
	// was pre-split into (0 for the sequential path).
	Ranges int
	// Degraded reports that the exploration stopped early — deadline or
	// posting budget — and Candidates holds the best refined queries
	// found up to that point rather than the complete answer.
	Degraded bool
	// DegradedReason is one of the Degraded* constants when Degraded.
	DegradedReason string

	// RQGenerated counts refined-query candidates the dynamic program
	// produced across visited partitions (before dedup or pruning) —
	// the exploration's raw breadth.
	RQGenerated int
	// RQPruned counts candidates whose SLCA computation the top-2K
	// dissimilarity bound skipped — the paper's key optimization made
	// observable.
	RQPruned int
	// BoundUpdates counts tightenings of the shared pruning bound on
	// the parallel walk (the sequential walk's bound lives implicitly
	// in its sorted list and reports 0).
	BoundUpdates int
	// SLCAPostings totals the postings handed to delegated SLCA
	// computations — the work the SLCA layer actually received.
	SLCAPostings int64
	// WorkerShares describes each parallel worker's share of the walk;
	// nil for the sequential path.
	WorkerShares []WorkerShare
}

// WorkerShare is one parallel worker's slice of the partition walk.
type WorkerShare struct {
	// Ranges is how many contiguous partition ranges the worker drew
	// from the job queue.
	Ranges int
	// Partitions is how many partitions the worker fully processed.
	Partitions int
	// SLCACalls counts the SLCA computations the worker ran.
	SLCACalls int
}

// markDegraded records a budget-induced early stop on the outcome.
func (o *TopKOutcome) markDegraded(b *Budget) {
	if r := b.Reason(); r != "" {
		o.Degraded = true
		o.DegradedReason = r
	}
}

// PartitionTopK runs Algorithm 2: walk the keyword lists partition by
// partition (Definition 6.1) in document order; within each partition run
// the top-2K dynamic program over the keywords present, skip SLCA work for
// candidates that cannot enter the current top-2K (the paper's key
// optimization), and compute results with any SLCA algorithm, restricted to
// the partition's sublists. Each list is traversed exactly once
// (Theorem 2).
//
// When in.Parallelism > 1 the walk executes on the parallel
// partition-pipeline (see PartitionTopKParallel); the output is identical
// either way.
func PartitionTopK(in Input, k int) (*TopKOutcome, error) {
	if in.Parallelism > 1 {
		return PartitionTopKParallel(in, k, in.Parallelism)
	}
	if k < 1 {
		k = 1
	}
	ks := in.scanKeywords()
	if len(ks) == 0 {
		return &TopKOutcome{Workers: 1}, nil
	}
	lists, err := scanLists(in, ks)
	if err != nil {
		return nil, err
	}
	return partitionTopKSeq(in, k, ks, lists)
}

// scanLists fetches the inverted list of every scan keyword. Loads go
// through the context-aware index path so a canceled query stops between
// (possibly disk-backed) list loads. Under tracing it records a
// "load-lists" span noting how many lists had to be lazily loaded (vs
// already resident) and the posting mass fetched.
func scanLists(in Input, ks []string) ([]*index.List, error) {
	ctx := in.Budget.Context()
	sp := in.Trace.StartChild("load-lists")
	lists := make([]*index.List, len(ks))
	var loaded, postings int64
	for i, kw := range ks {
		l, wasLoaded, err := in.Index.ListCtxInfo(ctx, kw)
		if err != nil {
			sp.End()
			return nil, err
		}
		if wasLoaded {
			loaded++
		}
		postings += int64(l.Len())
		// A private view per query: block-cache locality of this scan is
		// isolated from every other query sharing the resident list.
		lists[i] = l.View()
	}
	if sp != nil {
		sp.SetInt("lists", int64(len(ks)))
		sp.SetInt("loaded", loaded)
		sp.SetInt("postings", postings)
		sp.End()
	}
	return lists, nil
}

// partitionTopKSeq is the sequential partition walk over the full lists.
// The budget is checked at partition granularity: a partition is either
// fully processed or not visited at all, so a degraded outcome is a clean
// prefix-in-document-order of the complete one.
func partitionTopKSeq(in Input, k int, ks []string, lists []*index.List) (*TopKOutcome, error) {
	out := &TopKOutcome{Workers: 1}
	sorted := NewSortedList(2 * k)
	w := newPartitionWalker(ks, lists, nil, nil)
	defer w.close()
	for {
		pid, ok := w.next()
		if !ok {
			break
		}
		if !in.Budget.Charge(w.spanPostings()) {
			if err := in.Budget.Err(); err != nil {
				return nil, err
			}
			out.markDegraded(in.Budget)
			break
		}
		out.Partitions++
		// Top-2K refined queries expressible in this partition (line 10).
		rqs := TopRQs(in.Query, w.avail, in.Rules, 2*k)
		out.RQGenerated += len(rqs)
		for _, rq := range rqs {
			item := sorted.Has(rq)
			if item == nil && !sorted.Qualifies(rq.DSim) {
				// Worse than the current 2K-th candidate: skip the
				// SLCA computation entirely (the paper's advantage
				// (2)).
				out.RQPruned++
				continue
			}
			res, postings, err := partitionSLCA(in, rq, ks, lists, w.spans, pid)
			if err != nil {
				return nil, err
			}
			out.SLCACalls++
			out.SLCAPostings += int64(postings)
			if len(res) == 0 {
				continue // no meaningful result in this partition
			}
			if item != nil {
				item.Results = append(item.Results, res...)
			} else {
				sorted.Insert(rq, res)
			}
		}
	}
	for _, it := range sorted.Items() {
		out.Candidates = append(out.Candidates, it)
	}
	return out, nil
}

// span is a half-open index interval into a keyword list.
type span struct{ start, end int }

// partitionWalker advances a cursor set over the keyword lists one document
// partition at a time (the getKLPartition loop of Algorithm 2, lines 5-8),
// restricted to the Dewey interval [lo, hi) when bounds are given. Each
// list is read through a pooled block cursor, so the walk decodes each
// compressed block at most once per list and produces no per-posting
// garbage; close() must run when the walk ends to recycle the decode
// buffers. Its spans slice and avail map are likewise reused across
// partitions so the hot loop does not allocate per partition visited.
type partitionWalker struct {
	ks     []string
	lists  []*index.List
	curs   []*index.Cursor
	limits []int
	spans  []span
	avail  map[string]bool
	v      dewey.ID // owned copy of the current minimum head (reused)
}

// newPartitionWalker positions cursors at the first posting >= lo (or the
// list start when lo is nil) and bounds the walk at the first posting >= hi
// (or the list end when hi is nil). lo and hi must be partition roots so no
// partition straddles two walkers.
func newPartitionWalker(ks []string, lists []*index.List, lo, hi dewey.ID) *partitionWalker {
	w := &partitionWalker{
		ks:     ks,
		lists:  lists,
		curs:   make([]*index.Cursor, len(lists)),
		limits: make([]int, len(lists)),
		spans:  make([]span, len(lists)),
		avail:  make(map[string]bool, len(lists)),
	}
	for i, l := range lists {
		c := l.NewCursor()
		w.curs[i] = c
		if lo != nil {
			c.SeekGE(lo)
		}
		if hi != nil {
			w.limits[i] = l.SeekGE(hi)
		} else {
			w.limits[i] = l.Len()
		}
		if w.limits[i] < c.Pos() {
			w.limits[i] = c.Pos()
		}
	}
	return w
}

// close recycles the walker's cursor decode buffers; the walker (and any
// ID it handed out by alias) must not be used afterwards.
func (w *partitionWalker) close() {
	for _, c := range w.curs {
		c.Close()
	}
}

// spanPostings returns the posting mass of the current partition — what
// the budget charges per partition visited.
func (w *partitionWalker) spanPostings() int {
	n := 0
	for _, s := range w.spans {
		n += s.end - s.start
	}
	return n
}

// next advances to the next non-empty partition, filling w.spans and
// w.avail with the partition's sublists, and returns its root label. It
// returns false when every cursor reached its limit. Postings at the
// document root belong to no partition and are skipped (the root is never a
// meaningful result).
func (w *partitionWalker) next() (dewey.ID, bool) {
	for {
		// Smallest unconsumed node across lists (paper line 5). The IDs a
		// cursor yields alias its reusable decode buffer, so the running
		// minimum is copied into w.v — a later read that decodes a new
		// block would otherwise recycle the memory under the comparison.
		found := false
		for i, c := range w.curs {
			if c.Pos() >= w.limits[i] {
				continue
			}
			if id := c.ID(); !found || dewey.Compare(id, w.v) < 0 {
				w.v = append(w.v[:0], id...)
				found = true
			}
		}
		if !found {
			return nil, false
		}
		v := w.v
		pid, ok := v.Partition()
		if !ok {
			for i, c := range w.curs {
				if c.Pos() < w.limits[i] && dewey.Equal(c.ID(), v) {
					c.Next()
				}
			}
			continue
		}
		pidEnd := pid.Next()
		clear(w.avail)
		for i, c := range w.curs {
			start := c.Pos()
			end := c.SeekGE(pidEnd)
			if end > w.limits[i] {
				// The cursor overshot this walker's range bound; the list
				// is exhausted for this walk, so it is never read again.
				end = w.limits[i]
			}
			w.spans[i] = span{start: start, end: end}
			if end > start {
				w.avail[w.ks[i]] = true
			}
		}
		return pid, true
	}
}

// partitionSLCA computes the meaningful SLCAs of rq inside one document
// partition by delegating to the configured SLCA algorithm over the
// partition-restricted sublists. The second return is the posting mass the
// SLCA computation consumed (0 when a keyword was absent and the
// computation was skipped). Under tracing, the time spent in the SLCA
// layer accumulates onto the trace span's slca_ns attribute — safe from
// concurrent workers.
func partitionSLCA(in Input, rq RQ, ks []string, lists []*index.List, spans []span, pid dewey.ID) ([]Match, int, error) {
	sub := make([]*index.List, 0, len(rq.Keywords))
	var witness *index.List
	for _, kw := range rq.Keywords {
		found := false
		for i, name := range ks {
			if name != kw {
				continue
			}
			s := spans[i]
			if s.end <= s.start {
				return nil, 0, nil // keyword absent from partition
			}
			l := lists[i].Sub(s.start, s.end)
			sub = append(sub, l)
			witness = l
			found = true
			break
		}
		if !found {
			return nil, 0, nil
		}
	}
	var t0 time.Time
	if in.Trace != nil {
		t0 = time.Now()
	}
	ids := slca.Compute(in.SLCA, sub)
	if in.Trace != nil {
		in.Trace.AddInt("slca_ns", int64(time.Since(t0)))
	}
	return meaningfulMatches(ids, witness, in.Judge), slca.Cost(sub), nil
}
