package refine

import (
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"xrefine/internal/dewey"
	"xrefine/internal/index"
)

// This file is the parallel execution layer for Algorithm 2. The document
// is pre-split into contiguous partition ranges (by posting mass, using
// List.SeekGE so splitting costs a handful of binary searches); the ranges
// fan out to a bounded worker pool. Each worker owns its cursor set
// (partitionWalker) and a local SortedList, and shares the current global
// 2K-th dissimilarity bound through an atomic so the paper's SLCA-skipping
// prune keeps working across goroutines.
//
// Workers record, per partition in their range, the top-2K refined queries
// and the SLCA results they computed. A deterministic merge phase then
// replays those records partition-by-partition in document order through a
// fresh SortedList — the exact sequential admission logic — so the outcome
// (candidate set, dissimilarities, and Results concatenated in document
// order) is identical to the sequential run. The shared bound is only a
// work-avoidance hint: when a worker skipped an SLCA computation the replay
// turns out to need (a rare race near the bound), the merge recomputes it
// from the same partition sublists, which preserves the equivalence
// unconditionally.

// minPostingsPerRange keeps tiny documents on the sequential path: below
// this much posting mass per would-be range, goroutine and merge overhead
// dominates any overlap win.
const minPostingsPerRange = 256

// rangeOversplit is how many ranges each worker gets on average; splitting
// finer than the worker count lets the pool balance skewed partitions.
const rangeOversplit = 4

// PartitionTopKParallel runs Algorithm 2 on `workers` goroutines and
// returns output identical to the sequential PartitionTopK. workers <= 1,
// queries with no scan keywords, and documents too small to split all fall
// back to the sequential path.
func PartitionTopKParallel(in Input, k, workers int) (*TopKOutcome, error) {
	if k < 1 {
		k = 1
	}
	ks := in.scanKeywords()
	if len(ks) == 0 {
		return &TopKOutcome{Workers: 1}, nil
	}
	lists, err := scanLists(in, ks)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, l := range lists {
		total += l.Len()
	}
	if workers > total/minPostingsPerRange {
		workers = total / minPostingsPerRange
	}
	pivots := splitPivots(lists, workers*rangeOversplit)
	if workers <= 1 || len(pivots) == 0 {
		return partitionTopKSeq(in, k, ks, lists)
	}
	ranges := len(pivots) + 1
	if workers > ranges {
		workers = ranges
	}

	var (
		bound      = NewPruneBound()
		perRange   = make([]*rangeOutcome, ranges)
		shares     = make([]WorkerShare, workers)
		jobs       = make(chan int)
		wg         sync.WaitGroup
		firstErr   error
		firstErrMu sync.Mutex
	)
	fail := func(err error) {
		firstErrMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		firstErrMu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			// Each worker gets its own span under the strategy span;
			// worker spans overlap in time by design, so their durations
			// are not additive with the sequential stage spans.
			ws := in.Trace.StartChild("worker-" + strconv.Itoa(wi))
			local := NewSortedList(2 * k)
			for r := range jobs {
				lo, hi := rangeBounds(pivots, r)
				res, err := walkRange(in, k, ks, lists, lo, hi, local, bound)
				if err != nil {
					fail(err)
					continue
				}
				perRange[r] = res
				shares[wi].Ranges++
				shares[wi].Partitions += len(res.partitions)
				shares[wi].SLCACalls += res.slcaCalls
			}
			if ws != nil {
				ws.SetInt("ranges", int64(shares[wi].Ranges))
				ws.SetInt("partitions", int64(shares[wi].Partitions))
				ws.SetInt("slca_calls", int64(shares[wi].SLCACalls))
				ws.End()
			}
		}(w)
	}
	for r := 0; r < ranges; r++ {
		jobs <- r
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	ms := in.Trace.StartChild("merge")
	out, err := mergeRanges(in, k, ks, lists, perRange)
	ms.End()
	if err != nil {
		return nil, err
	}
	out.Workers = workers
	out.Ranges = ranges
	out.WorkerShares = shares
	out.markDegraded(in.Budget)
	return out, nil
}

// rangeBounds returns the Dewey interval [lo, hi) of range r; nil means
// unbounded on that side.
func rangeBounds(pivots []dewey.ID, r int) (lo, hi dewey.ID) {
	if r > 0 {
		lo = pivots[r-1]
	}
	if r < len(pivots) {
		hi = pivots[r]
	}
	return lo, hi
}

// splitPivots picks up to n-1 partition-root labels splitting the combined
// posting mass of the lists into roughly equal contiguous ranges. Pivot
// candidates are the partition roots of the postings at fractional
// positions of each list, so each costs O(1) and ranges align with
// partition boundaries by construction. It returns nil when the lists
// cannot support more than one range (e.g. all mass in one partition).
func splitPivots(lists []*index.List, n int) []dewey.ID {
	if n <= 1 {
		return nil
	}
	var cands []dewey.ID
	for j := 1; j < n; j++ {
		for _, l := range lists {
			if l.Len() == 0 {
				continue
			}
			idx := l.Len() * j / n
			if p, ok := l.At(idx).ID.Partition(); ok {
				cands = append(cands, p)
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool { return dewey.Compare(cands[i], cands[j]) < 0 })
	uniq := cands[:0]
	for i, p := range cands {
		if i == 0 || !dewey.Equal(cands[i-1], p) {
			uniq = append(uniq, p)
		}
	}
	if len(uniq) <= n-1 {
		return uniq
	}
	// More distinct boundaries than ranges: sample evenly.
	out := make([]dewey.ID, 0, n-1)
	for i := 1; i < n; i++ {
		p := uniq[len(uniq)*i/n]
		if len(out) == 0 || !dewey.Equal(out[len(out)-1], p) {
			out = append(out, p)
		}
	}
	return out
}

// PruneBound publishes the smallest full-local-list worst dissimilarity
// any worker has seen — a lower envelope of the sequential 2K-th-candidate
// bound. Candidates at or above the bound cannot enter the final top-2K, so
// workers skip their SLCA computations. It is shared by the workers of one
// parallel walk, and by the per-shard scans of one scatter-gather query
// (see ScanShard): the bound is only ever a work-avoidance hint, so sharing
// it across any partitioning of the walk preserves exactness.
type PruneBound struct {
	bits atomic.Uint64 // math.Float64bits of the current bound
}

// NewPruneBound returns a bound initialized to +Inf (nothing prunable yet).
func NewPruneBound() *PruneBound {
	b := &PruneBound{}
	b.bits.Store(math.Float64bits(math.Inf(1)))
	return b
}

func (b *PruneBound) get() float64 { return math.Float64frombits(b.bits.Load()) }

// lower tightens the bound to v if v is smaller, reporting whether it did.
func (b *PruneBound) lower(v float64) bool {
	for {
		old := b.bits.Load()
		if math.Float64frombits(old) <= v {
			return false
		}
		if b.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return true
		}
	}
}

// rqRecord is one refined query surfaced in one partition: the RQ itself
// and, when the worker computed it, the partition's meaningful SLCA
// results. computed distinguishes "computed, empty" (no recompute needed)
// from "skipped by the bound" (the merge recomputes on demand).
type rqRecord struct {
	rq       RQ
	computed bool
	results  []Match
}

// partitionRecord is everything the merge needs to replay one partition.
type partitionRecord struct {
	pid dewey.ID
	rqs []rqRecord
}

// rangeOutcome is one worker's record of one contiguous partition range.
type rangeOutcome struct {
	partitions   []partitionRecord
	slcaCalls    int
	slcaPostings int64
	rqGenerated  int
	rqPruned     int
	boundUpdates int
}

// walkRange processes the partitions inside [lo, hi): for each partition it
// runs the top-2K dynamic program and computes SLCA results for every
// refined query that might still enter the global top-2K, judged against
// the worker-local list and the shared bound. local persists across the
// ranges a worker processes — it only ever tightens the bound, and ranges
// are replayed in document order later, so staleness is harmless.
func walkRange(in Input, k int, ks []string, lists []*index.List, lo, hi dewey.ID, local *SortedList, bound *PruneBound) (*rangeOutcome, error) {
	res := &rangeOutcome{}
	w := newPartitionWalker(ks, lists, lo, hi)
	defer w.close()
	for {
		pid, ok := w.next()
		if !ok {
			return res, nil
		}
		// The budget is shared across every worker, so one tripped check
		// stops the whole pool cooperatively. A hard cancellation aborts
		// with the context error; a degradable stop truncates this
		// range's record — only fully-processed partitions contribute.
		if !in.Budget.Charge(w.spanPostings()) {
			if err := in.Budget.Err(); err != nil {
				return nil, err
			}
			return res, nil
		}
		rqs := TopRQs(in.Query, w.avail, in.Rules, 2*k)
		res.rqGenerated += len(rqs)
		rec := partitionRecord{pid: pid, rqs: make([]rqRecord, 0, len(rqs))}
		for _, rq := range rqs {
			item := local.Has(rq)
			if item == nil && !(rq.DSim < bound.get() && local.Qualifies(rq.DSim)) {
				res.rqPruned++
				rec.rqs = append(rec.rqs, rqRecord{rq: rq})
				continue
			}
			matches, postings, err := partitionSLCA(in, rq, ks, lists, w.spans, pid)
			if err != nil {
				return nil, err
			}
			res.slcaCalls++
			res.slcaPostings += int64(postings)
			rec.rqs = append(rec.rqs, rqRecord{rq: rq, computed: true, results: matches})
			if len(matches) == 0 || item != nil {
				continue
			}
			if local.Insert(rq, nil) != nil && local.Full() {
				if bound.lower(local.Worst()) {
					res.boundUpdates++
				}
			}
		}
		res.partitions = append(res.partitions, rec)
	}
}

// mergeRanges replays the per-range partition records in document order
// through a fresh SortedList, applying exactly the sequential admission
// logic, so the merged outcome is identical to the sequential run. SLCA
// results a worker skipped but the replay needs are recomputed here from
// the same partition sublists.
func mergeRanges(in Input, k int, ks []string, lists []*index.List, perRange []*rangeOutcome) (*TopKOutcome, error) {
	out := &TopKOutcome{}
	sorted := NewSortedList(2 * k)
	spans := make([]span, len(lists))
	for _, rng := range perRange {
		if rng == nil {
			continue
		}
		// The merge only replays already-recorded work, so it ignores the
		// degradable budget — but a hard cancellation still aborts it.
		if err := in.Budget.Err(); err != nil {
			return nil, err
		}
		out.SLCACalls += rng.slcaCalls
		out.SLCAPostings += rng.slcaPostings
		out.RQGenerated += rng.rqGenerated
		out.RQPruned += rng.rqPruned
		out.BoundUpdates += rng.boundUpdates
		for _, rec := range rng.partitions {
			out.Partitions++
			if err := replayPartition(in, ks, lists, spans, rec, sorted, out); err != nil {
				return nil, err
			}
		}
	}
	for _, it := range sorted.Items() {
		out.Candidates = append(out.Candidates, it)
	}
	return out, nil
}

// replayPartition applies one recorded partition to the merge's SortedList
// with exactly the sequential admission logic: membership and
// qualification are judged against the replay list, and SLCA results a
// recording pass skipped (its bound was a lower envelope of the replay's)
// are recomputed here from the same partition sublists. Both the
// intra-document range merge (mergeRanges) and the cross-shard merge
// (MergeShardScans) funnel through this one function, so the two layers
// cannot drift apart.
func replayPartition(in Input, ks []string, lists []*index.List, spans []span, rec partitionRecord, sorted *SortedList, out *TopKOutcome) error {
	spansReady := false
	for _, rr := range rec.rqs {
		item := sorted.Has(rr.rq)
		if item == nil && !sorted.Qualifies(rr.rq.DSim) {
			continue
		}
		res := rr.results
		if !rr.computed {
			if !spansReady {
				partitionSpans(lists, rec.pid, spans)
				spansReady = true
			}
			var err error
			var postings int
			res, postings, err = partitionSLCA(in, rr.rq, ks, lists, spans, rec.pid)
			if err != nil {
				return err
			}
			out.SLCACalls++
			out.SLCAPostings += int64(postings)
		}
		if len(res) == 0 {
			continue
		}
		if item != nil {
			item.Results = append(item.Results, res...)
		} else {
			sorted.Insert(rr.rq, res)
		}
	}
	return nil
}

// partitionSpans reconstructs the sublist spans of a partition. Inside the
// walk the span start is the cursor position, but by the time a partition
// is visited every posting before its root has been consumed, so the
// cursor equals SeekGE(pid) — two binary searches recover the same spans.
func partitionSpans(lists []*index.List, pid dewey.ID, spans []span) {
	pidEnd := pid.Next()
	for i, l := range lists {
		spans[i] = span{start: l.SeekGE(pid), end: l.SeekGE(pidEnd)}
	}
}
