package refine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"xrefine/internal/rules"
)

func TestStackTopKBasic(t *testing.T) {
	f := newFixture(t, fig1, []string{"online", "database"})
	rs := rules.NewSet(2)
	mustAdd(t, rs, rules.Rule{Op: rules.OpMerge, LHS: []string{"on", "line"}, RHS: []string{"online"}, Score: 1})
	mustAdd(t, rs, rules.Rule{Op: rules.OpMerge, LHS: []string{"data", "base"}, RHS: []string{"database"}, Score: 1})
	out, err := StackTopK(f.input(t, []string{"on", "line", "data", "base"}, rs), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	best := out.Candidates[0]
	if best.RQ.DSim != 2 || best.RQ.Key() != NewRQ([]string{"online", "database"}, 0).Key() {
		t.Errorf("best = %v (dSim %v)", best.RQ, best.RQ.DSim)
	}
	if got := strings.Join(matchIDs(best.Results), " "); got != "0.0.1.1.0" {
		t.Errorf("results = %v", got)
	}
	// More than one candidate at K=3 on this fixture.
	if len(out.Candidates) < 2 {
		t.Errorf("only %d candidates", len(out.Candidates))
	}
	for i := 1; i < len(out.Candidates); i++ {
		if out.Candidates[i-1].RQ.DSim > out.Candidates[i].RQ.DSim {
			t.Error("candidates unordered")
		}
	}
}

func TestStackTopKEmptyQuery(t *testing.T) {
	f := newFixture(t, fig1, []string{"online"})
	out, err := StackTopK(f.input(t, []string{"zzz"}, nil), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Candidates) != 0 {
		t.Errorf("unmatchable query produced %d candidates", len(out.Candidates))
	}
}

// Property: StackTopK's best candidate has the same dissimilarity as the
// brute-force optimum, and all results are meaningful SLCAs (the same
// contract the other two algorithms satisfy).
func TestPropertyStackTopKMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(606))
	for trial := 0; trial < 100; trial++ {
		src := randomTestDoc(r)
		f := newFixture(t, src, []string{"w0", "w1", "w2"})
		q := make([]string, 1+r.Intn(3))
		for i := range q {
			q[i] = fmt.Sprintf("w%d", r.Intn(8))
		}
		rs := rules.NewSet(2)
		_ = rs.Add(rules.Rule{Op: rules.OpSubstitute, LHS: []string{"w6"}, RHS: []string{"w0"}, Score: 1})
		_ = rs.Add(rules.Rule{Op: rules.OpSubstitute, LHS: []string{"w7"}, RHS: []string{"w1", "w2"}, Score: 2})
		in := f.input(t, q, rs)
		best, found := bruteBest(f, q, rs)
		out, err := StackTopK(in, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			if len(out.Candidates) != 0 {
				t.Fatalf("trial %d: candidates despite no refinement (q=%v)", trial, q)
			}
			continue
		}
		if len(out.Candidates) == 0 || out.Candidates[0].RQ.DSim != best {
			t.Fatalf("trial %d: stackTopK best = %+v, brute = %v (q=%v)\ndoc: %s",
				trial, out.Candidates, best, q, src)
		}
		for _, it := range out.Candidates {
			if len(it.Results) == 0 {
				t.Fatalf("trial %d: candidate %v without results", trial, it.RQ)
			}
			for _, m := range it.Results {
				if !f.judge.Meaningful(m.Type) {
					t.Fatalf("trial %d: non-meaningful result %s", trial, m.ID)
				}
			}
		}
	}
}
