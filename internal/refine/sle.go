package refine

import (
	"sort"
	"time"

	"xrefine/internal/index"
	"xrefine/internal/slca"
)

// ShortListEager runs Algorithm 3 in its two steps. Step 1 explores top-K
// refined-query candidates driven by the shortest inverted lists: pick the
// most promising unprocessed keyword, visit only the document partitions
// containing it, probe the other keyword lists by random access to learn
// which keywords co-occur there, and feed the co-occurring set to the
// dynamic program. After a keyword is processed every refined query
// containing it has been seen, so the keyword retires; exploration stops
// early once even the best refinement expressible with the remaining
// keywords cannot beat the current K-th candidate (C_potential). Step 2
// computes the SLCA results of the surviving candidates with any existing
// SLCA algorithm over the full lists.
func ShortListEager(in Input, k int) (*TopKOutcome, error) {
	if k < 1 {
		k = 1
	}
	out := &TopKOutcome{}
	ks := in.scanKeywords()
	if len(ks) == 0 {
		return out, nil
	}
	lists := make(map[string]*index.List, len(ks))
	{
		ctx := in.Budget.Context()
		sp := in.Trace.StartChild("load-lists")
		var loaded, postings int64
		for _, kw := range ks {
			l, wasLoaded, err := in.Index.ListCtxInfo(ctx, kw)
			if err != nil {
				sp.End()
				return nil, err
			}
			if wasLoaded {
				loaded++
			}
			postings += int64(l.Len())
			// A private view per query: the random-access probes below
			// keep their block locality to themselves.
			lists[kw] = l.View()
		}
		if sp != nil {
			sp.SetInt("lists", int64(len(ks)))
			sp.SetInt("loaded", loaded)
			sp.SetInt("postings", postings)
			sp.End()
		}
	}
	sorted := NewSortedList(2 * k)
	remaining := append([]string(nil), ks...)
	inQ := make(map[string]bool, len(in.Query))
	for _, kw := range in.Query {
		inQ[kw] = true
	}
	// A keyword is "stable" when refining it away is unlikely: it is a
	// query keyword that no rule rewrites, or it is itself the product
	// of a rule (RHS). The smart choice of Section VI-C prefers stable
	// keywords with short lists.
	stable := make(map[string]bool, len(ks))
	for _, kw := range ks {
		if inQ[kw] && len(in.Rules.ByLastLHS(kw)) == 0 {
			stable[kw] = true
		}
	}
	for _, r := range in.Rules.Rules() {
		for _, kw := range r.RHS {
			stable[kw] = true
		}
	}

	budgetStopped := false
	for len(remaining) > 0 && !budgetStopped {
		// Stop condition (line 4): the cheapest refinement expressible
		// with only unprocessed keywords cannot displace the current
		// K-th candidate.
		if sorted.Full() {
			avail := make(map[string]bool, len(remaining))
			for _, kw := range remaining {
				avail[kw] = true
			}
			if cPot, ok := MinDissimilarity(in.Query, avail, in.Rules); ok && cPot > sorted.Worst() {
				break
			}
		}
		// Smart pick: stable first, then shortest list.
		sort.SliceStable(remaining, func(i, j int) bool {
			si, sj := stable[remaining[i]], stable[remaining[j]]
			if si != sj {
				return si
			}
			return lists[remaining[i]].Len() < lists[remaining[j]].Len()
		})
		ki := remaining[0]
		remaining = remaining[1:]

		// Visit each partition containing ki (lines 7-14).
		li := lists[ki]
		pos := 0
		for pos < li.Len() {
			pid, ok := li.At(pos).ID.Partition()
			if !ok {
				pos++ // root posting: no partition
				continue
			}
			// Charge the anchor keyword's share of the partition; the
			// exploration stops at partition granularity like the
			// partition walk does.
			if !in.Budget.Charge(li.SeekGE(pid.Next()) - pos) {
				if err := in.Budget.Err(); err != nil {
					return nil, err
				}
				budgetStopped = true
				break
			}
			out.Partitions++
			avail := make(map[string]bool, len(ks))
			for _, kw := range ks {
				if lists[kw].HasInSubtree(pid) {
					avail[kw] = true
				}
			}
			rqs := TopRQs(in.Query, avail, in.Rules, 2*k)
			out.RQGenerated += len(rqs)
			for _, rq := range rqs {
				if sorted.Has(rq) != nil {
					continue
				}
				if !sorted.Qualifies(rq.DSim) {
					out.RQPruned++
					continue
				}
				sorted.Insert(rq, nil)
			}
			// Jump past this partition in ki's list.
			pos = li.SeekGE(pid.Next())
		}
	}

	// Step 2 (lines 17-18): SLCAs of every surviving candidate over the
	// full lists; candidates without a meaningful result drop out. The
	// budget is re-checked before each candidate — full-list SLCA is the
	// expensive stage here — and a degradable stop keeps the candidates
	// whose results were already computed.
	step2 := in.Trace.StartChild("slca")
	defer step2.End()
	for _, it := range sorted.Items() {
		if !in.Budget.Ok() {
			if err := in.Budget.Err(); err != nil {
				return nil, err
			}
			break
		}
		sub := make([]*index.List, len(it.RQ.Keywords))
		for i, kw := range it.RQ.Keywords {
			sub[i] = lists[kw]
		}
		out.SLCAPostings += int64(slca.Cost(sub))
		ids, err := slca.ComputeCtx(in.Budget.Context(), in.SLCA, sub)
		if err != nil {
			if berr := in.Budget.Err(); berr != nil {
				return nil, berr
			}
			// Deadline expired mid-computation: trip the budget so the
			// outcome is marked degraded, and keep what we have.
			in.Budget.Ok()
			break
		}
		out.SLCACalls++
		res := meaningfulMatches(ids, sub[0], in.Judge)
		if len(res) == 0 {
			continue
		}
		it.Results = res
		out.Candidates = append(out.Candidates, it)
	}
	if step2 != nil {
		step2.SetInt("calls", int64(out.SLCACalls))
		step2.SetInt("postings", out.SLCAPostings)
	}
	out.markDegraded(in.Budget)
	return out, nil
}

// Original computes the meaningful SLCAs of the original query directly —
// the baseline the experiments compare against (stack-slca / scan-slca on
// Q) and the quick path for engines that know no refinement is wanted.
func Original(in Input) ([]Match, error) {
	ctx := in.Budget.Context()
	sp := in.Trace.StartChild("load-lists")
	sub := make([]*index.List, len(in.Query))
	var loaded, postings int64
	for i, kw := range in.Query {
		l, wasLoaded, err := in.Index.ListCtxInfo(ctx, kw)
		if err != nil {
			sp.End()
			return nil, err
		}
		if wasLoaded {
			loaded++
		}
		postings += int64(l.Len())
		if l.Len() == 0 {
			sp.End()
			return nil, nil
		}
		sub[i] = l
	}
	if sp != nil {
		sp.SetInt("lists", int64(len(in.Query)))
		sp.SetInt("loaded", loaded)
		sp.SetInt("postings", postings)
		sp.End()
	}
	if len(sub) == 0 {
		return nil, nil
	}
	var t0 time.Time
	if in.Trace != nil {
		t0 = time.Now()
	}
	ids, err := slca.ComputeCtx(ctx, in.SLCA, sub)
	if in.Trace != nil {
		in.Trace.AddInt("slca_ns", int64(time.Since(t0)))
	}
	if err != nil {
		return nil, err
	}
	return meaningfulMatches(ids, sub[0], in.Judge), nil
}
