package refine_test

// A brute-force conformance oracle for the result semantics every
// refinement algorithm promises: Definition 3.3 (SLCA — the smallest
// lowest common ancestors containing all keywords) filtered by Definition
// 3.4 (meaningfulness — the SLCA's type descends from an inferred
// search-for node type). The oracle recomputes both by O(n²) subtree
// walks with none of the engine's machinery — no inverted lists, no
// partitions, no Dewey arithmetic beyond ancestor tests — and the
// property-based test below requires the engine to agree with it on
// hundreds of random document/query pairs, for every strategy, with all
// strategies reporting the same verdict and top-k score profile.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"xrefine/internal/core"
	"xrefine/internal/dewey"
	"xrefine/internal/refine"
	"xrefine/internal/searchfor"
	"xrefine/internal/testutil"
	"xrefine/internal/xmltree"
)

// subtreeContains reports whether any node in n's subtree carries term —
// the raw containment predicate underneath Definition 3.3.
func subtreeContains(n *xmltree.Node, term string) bool {
	for _, t := range n.Terms() {
		if t == term {
			return true
		}
	}
	for _, c := range n.Children {
		if subtreeContains(c, term) {
			return true
		}
	}
	return false
}

// naiveSLCA computes Definition 3.3 by brute force: every non-root node
// whose subtree contains all keywords (a CA), minus those with a proper
// descendant CA. The corpus root is excluded — it is a pure container,
// and a match only it witnesses spans partitions, which the paper's
// partition-scoped semantics (and the engine) reject.
func naiveSLCA(doc *xmltree.Document, terms []string) []*xmltree.Node {
	if len(terms) == 0 {
		return nil
	}
	var cas []*xmltree.Node
	doc.Walk(func(n *xmltree.Node) bool {
		if len(n.ID) < 2 {
			return true
		}
		for _, t := range terms {
			if !subtreeContains(n, t) {
				return true
			}
		}
		cas = append(cas, n)
		return true
	})
	var out []*xmltree.Node
	for _, a := range cas {
		lowest := true
		for _, b := range cas {
			if len(b.ID) > len(a.ID) && dewey.IsAncestorOrSelf(a.ID, b.ID) {
				lowest = false
				break
			}
		}
		if lowest {
			out = append(out, a)
		}
	}
	return out
}

// naiveMeaningful applies Definition 3.4 on top: keep the SLCAs whose
// node type the judge (built from the original query's search-for
// inference, exactly as the engine scores refined queries) accepts.
func naiveMeaningful(doc *xmltree.Document, terms []string, judge *searchfor.Judge) []*xmltree.Node {
	var out []*xmltree.Node
	for _, n := range naiveSLCA(doc, terms) {
		if judge.Meaningful(n.Type) {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return dewey.Compare(out[i].ID, out[j].ID) < 0 })
	return out
}

func nodesSig(ns []*xmltree.Node) string {
	parts := make([]string, len(ns))
	for i, n := range ns {
		parts[i] = n.ID.String() + ":" + n.Type.Path()
	}
	return strings.Join(parts, " ")
}

func matchesSig(ms []refine.Match) string {
	sorted := append([]refine.Match(nil), ms...)
	sort.Slice(sorted, func(i, j int) bool { return dewey.Compare(sorted[i].ID, sorted[j].ID) < 0 })
	parts := make([]string, len(sorted))
	for i, m := range sorted {
		parts[i] = m.ID.String() + ":" + m.Type.Path()
	}
	return strings.Join(parts, " ")
}

// scoreSig flattens the refine-or-not verdict and the (dSim, score)
// profile of the reported queries for cross-strategy comparison. The
// three strategies are exact top-k algorithms over the same refinement
// space, so their score profiles must agree — but distinct keyword sets
// can tie exactly, and which one a strategy keeps at a tie is an
// exploration-order artifact, so the keywords themselves are compared
// per strategy against the oracle instead.
func scoreSig(resp *core.Response) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "refine=%v degraded=%v/%s\n", resp.NeedRefine, resp.Degraded, resp.DegradedReason)
	for _, q := range resp.Queries {
		fmt.Fprintf(&sb, "dsim=%.9f score=%.9f orig=%v\n", q.DSim, q.Score, q.IsOriginal)
	}
	return sb.String()
}

// TestOracleConformance is the differential property test: across 250
// seeded random document/query pairs, every strategy's top-k output must
// match the brute-force oracle — the refine-or-not verdict, and the exact
// meaningful-SLCA result set of every reported query — and the three
// strategies must agree on the verdict and the top-k score profile.
func TestOracleConformance(t *testing.T) {
	const seeds = 250
	divergences := 0
	for seed := int64(0); seed < seeds; seed++ {
		r := rand.New(rand.NewSource(seed))
		doc, err := xmltree.ParseString(testutil.GenXML(r), nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		terms := testutil.GenTerms(r)
		eng := core.NewFromDocument(doc, &core.Config{DisableMetrics: true})

		in, _, err := eng.Prepare(terms)
		if err != nil {
			t.Fatalf("seed %d: prepare: %v", seed, err)
		}
		judge := in.Judge

		// Definition 3.4 verdict, shared by every strategy: refinement is
		// needed exactly when the original query has no meaningful SLCA.
		origOracle := naiveMeaningful(doc, refine.NewRQ(terms, 0).Keywords, judge)

		var ref string
		for _, st := range []core.Strategy{core.StrategyPartition, core.StrategySLE, core.StrategyStack} {
			resp, err := eng.QueryTerms(terms, st, 3)
			if err != nil {
				t.Fatalf("seed %d: query %v strategy %v: %v", seed, terms, st, err)
			}
			if resp.NeedRefine != (len(origOracle) == 0) {
				divergences++
				t.Errorf("seed %d: query %v strategy %v: NeedRefine=%v but oracle found %d meaningful SLCAs",
					seed, terms, st, resp.NeedRefine, len(origOracle))
			}

			// Every reported query — the original or a refinement — must
			// carry exactly the oracle's meaningful SLCAs for its keywords.
			for qi, q := range resp.Queries {
				want := nodesSig(naiveMeaningful(doc, q.Keywords, judge))
				if got := matchesSig(q.Results); got != want {
					divergences++
					t.Errorf("seed %d: query %v strategy %v result %d (%v):\n got  %s\n want %s",
						seed, terms, st, qi, q.Keywords, got, want)
				}
			}

			// Strategy independence at the same k: all three must report
			// the same verdict and the same top-k score profile.
			if sig := scoreSig(resp); ref == "" {
				ref = sig
			} else if sig != ref {
				divergences++
				t.Errorf("seed %d: query %v: strategy %v score profile diverged:\n got  %s\n want %s",
					seed, terms, st, sig, ref)
			}
		}
		if divergences > 10 {
			t.Fatalf("stopping after %d divergences", divergences)
		}
	}
	if divergences != 0 {
		t.Fatalf("%d divergences across %d seeds; the conformance bar is zero", divergences, seeds)
	}
}
