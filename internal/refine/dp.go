package refine

import (
	"sort"
	"strings"

	"xrefine/internal/rules"
)

// This file implements getOptimalRQ (Section V): given the original query
// Q = S and a set T of keywords that actually occur in (some region of) the
// data, find the refined query RQ ⊆ T with minimum dissimilarity dSim(Q,RQ)
// under the rule set, by dynamic programming over prefixes of Q
// (Formula 11):
//
//	C[0] = 0
//	C[i] = min( C[i-1]            if k_i ∈ T        (option 1: keep)
//	          , C[i-1] + del      always            (option 2: delete)
//	          , C[i-|LHS(r)|]+ds_r for each rule r with LHS a suffix of
//	                               S[1..i] and RHS ⊆ T  (option 3) )
//
// The top-2K extension keeps the best partial refinements per cell instead
// of a single one — the paper's "intermediate results kept during the
// processing of getOptimalRQ" made precise. It is a beam search: like the
// paper's, it surfaces *some* (not provably all) of the best non-optimal
// candidates, but the single best is exact.

// Step records one refinement operation applied to produce an RQ — the
// provenance a user-facing "did you mean" needs ("corrected databse →
// database", "deleted fuzzy"). Kept keywords are not recorded; only
// changes are.
type Step struct {
	// Delete is the deleted query keyword when the step is a deletion;
	// empty for rule applications.
	Delete string
	// Rule is the applied refinement rule for non-deletion steps.
	Rule *rules.Rule
}

// String renders the step for humans.
func (s Step) String() string {
	if s.Delete != "" {
		return "delete " + s.Delete
	}
	if s.Rule != nil {
		return s.Rule.String()
	}
	return "?"
}

// partial is one candidate refinement of a query prefix.
type partial struct {
	cost  float64
	keys  []string // sorted unique keywords produced so far
	key   string   // canonical identity of keys
	steps []Step   // provenance, in application order
}

func mkPartial(cost float64, keys []string) partial {
	ks := canonical(keys)
	return partial{cost: cost, keys: ks, key: strings.Join(ks, "\x00")}
}

// extend returns p with extra keywords added, cost increased, and the
// step (when non-zero) appended to the provenance.
func (p partial) extend(dCost float64, step Step, extra ...string) partial {
	steps := p.steps
	if step.Delete != "" || step.Rule != nil {
		steps = append(append([]Step(nil), p.steps...), step)
	}
	if len(extra) == 0 {
		return partial{cost: p.cost + dCost, keys: p.keys, key: p.key, steps: steps}
	}
	keys := append(append([]string(nil), p.keys...), extra...)
	out := mkPartial(p.cost+dCost, keys)
	out.steps = steps
	return out
}

// TopRQs runs the top-m dynamic program: up to m distinct refined queries
// over the available keyword set, cheapest first. Results are guaranteed
// non-empty keyword sets (a refinement that deletes everything matches
// nothing and is not a query). The cheapest result is exactly optimal.
func TopRQs(q []string, avail map[string]bool, rs *rules.Set, m int) []RQ {
	// Beam width: double the requested width so near-misses at inner
	// cells can still surface distinct final candidates. The beam-width
	// ablation (xbench ablation-beam) measures what this choice costs in
	// candidate recall.
	return TopRQsBeam(q, avail, rs, m, 2*m)
}

// TopRQsBeam is TopRQs with an explicit per-cell beam width, exposed for
// the beam ablation. beam < m is clamped to m.
func TopRQsBeam(q []string, avail map[string]bool, rs *rules.Set, m, beam int) []RQ {
	if m < 1 {
		m = 1
	}
	if beam < m {
		beam = m
	}
	cells := make([][]partial, len(q)+1)
	cells[0] = []partial{mkPartial(0, nil)}
	for i := 1; i <= len(q); i++ {
		ki := q[i-1]
		var next []partial
		// Option 1: keep k_i when the data has it.
		if avail[ki] {
			for _, p := range cells[i-1] {
				next = append(next, p.extend(0, Step{}, ki))
			}
		}
		// Option 2: delete k_i. Always available; this is what makes a
		// refinement exist for every query.
		for _, p := range cells[i-1] {
			next = append(next, p.extend(rs.DeleteCost, Step{Delete: ki}))
		}
		// Option 3: apply a rule whose LHS ends at k_i and matches the
		// preceding keywords, with every RHS keyword available.
		for _, r := range rs.ByLastLHS(ki) {
			n := len(r.LHS)
			if n > i || !matchesSuffix(q[:i], r.LHS) {
				continue
			}
			ok := true
			for _, k := range r.RHS {
				if !avail[k] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			rule := r
			for _, p := range cells[i-n] {
				next = append(next, p.extend(r.Score, Step{Rule: &rule}, r.RHS...))
			}
		}
		cells[i] = prune(next, beam)
	}
	var out []RQ
	for _, p := range cells[len(q)] {
		if len(p.keys) == 0 {
			continue
		}
		out = append(out, RQ{Keywords: p.keys, DSim: p.cost, Steps: p.steps})
		if len(out) == m {
			break
		}
	}
	return out
}

// OptimalRQ returns the single minimum-dissimilarity refined query, or
// false when no non-empty refinement exists.
func OptimalRQ(q []string, avail map[string]bool, rs *rules.Set) (RQ, bool) {
	out := TopRQs(q, avail, rs, 1)
	if len(out) == 0 {
		return RQ{}, false
	}
	return out[0], true
}

// MinDissimilarity returns the cheapest achievable dissimilarity over the
// available keywords, ignoring the non-emptiness constraint — the
// C_potential bound of Algorithm 3's stop condition. False when the query
// is empty.
func MinDissimilarity(q []string, avail map[string]bool, rs *rules.Set) (float64, bool) {
	if len(q) == 0 {
		return 0, false
	}
	if rq, ok := OptimalRQ(q, avail, rs); ok {
		return rq.DSim, true
	}
	// Only the everything-deleted refinement remains.
	return float64(len(q)) * rs.DeleteCost, true
}

func matchesSuffix(prefix, lhs []string) bool {
	off := len(prefix) - len(lhs)
	for j, k := range lhs {
		if prefix[off+j] != k {
			return false
		}
	}
	return true
}

// prune dedups partials by keyword set (keeping the cheapest) and trims to
// the beam width, cheapest first with deterministic tie-breaking.
func prune(ps []partial, beam int) []partial {
	best := make(map[string]partial, len(ps))
	for _, p := range ps {
		if old, ok := best[p.key]; !ok || p.cost < old.cost {
			best[p.key] = p
		}
	}
	out := make([]partial, 0, len(best))
	for _, p := range best {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].cost != out[j].cost {
			return out[i].cost < out[j].cost
		}
		// Prefer keeping more keywords (less information loss), then
		// lexicographic identity for determinism.
		if len(out[i].keys) != len(out[j].keys) {
			return len(out[i].keys) > len(out[j].keys)
		}
		return out[i].key < out[j].key
	})
	if len(out) > beam {
		out = out[:beam]
	}
	return out
}
