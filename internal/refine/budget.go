package refine

import (
	"context"
	"errors"
	"sync/atomic"
)

// Degradation reasons reported by TopKOutcome.DegradedReason and surfaced
// all the way up to the HTTP API.
const (
	// DegradedDeadline: the context deadline expired mid-exploration.
	DegradedDeadline = "deadline"
	// DegradedPostings: the posting budget ran out mid-exploration.
	DegradedPostings = "posting-budget"
	// DegradedShardPartial: a shard of a scatter-gather query failed hard
	// (for example on a storage fault) while the query itself stayed
	// alive; its contribution is missing from the merged response. Set by
	// the shard router, which gives it precedence over the budget reasons:
	// a response missing a whole shard is degraded in a stronger sense
	// than one that merely stopped scanning early.
	DegradedShardPartial = "shard-partial"
)

// Budget bounds one query execution cooperatively: a context (carrying a
// caller deadline and cancellation) plus an optional posting budget — a cap
// on how many postings the exploration may consume before it must stop and
// return what it has. One Budget is shared by every goroutine of a parallel
// partition walk; all state is atomic.
//
// The two stop causes have different semantics, mirroring what the caller
// wants: an expired deadline or exhausted posting budget means "best effort
// — give me what you found" and the algorithms return a *degraded partial
// outcome*; an explicit cancellation means "the caller is gone" and the
// algorithms abandon the work with the context error.
type Budget struct {
	ctx context.Context
	s   *budgetShared
}

// budgetShared is the accounting all derived views of one budget share:
// hedged scan attempts each carry their own cancelable context
// (WithContext) but charge one posting pool, so a replica race never
// doubles the query's allowance.
type budgetShared struct {
	limit   int64        // posting budget; <= 0 means unlimited
	used    atomic.Int64 // postings consumed so far
	tripped atomic.Bool  // sticky: some check already failed
}

// budgetStride batches budget charges in per-posting hot loops so the
// atomic add and context poll amortize over many iterations.
const budgetStride = 256

// NewBudget builds a budget from a context and a posting limit. Both
// dimensions are optional: a nil-deadline background context with limit 0
// never stops anything. A nil *Budget is valid everywhere and means
// "unlimited".
func NewBudget(ctx context.Context, postingLimit int) *Budget {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Budget{ctx: ctx, s: &budgetShared{limit: int64(postingLimit)}}
}

// WithContext derives a budget that shares b's posting accounting but
// observes ctx for cancellation and deadline — the hedged-read hook: the
// router gives every scan attempt its own cancelable context (so the loser
// of a replica race stops promptly) while all attempts draw on the one
// query-wide posting pool. A nil receiver stays nil: unlimited either way.
func (b *Budget) WithContext(ctx context.Context) *Budget {
	if b == nil {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return &Budget{ctx: ctx, s: b.s}
}

// Context returns the budget's context (context.Background for nil
// budgets) so downstream stages — SLCA computations, lazy index loads —
// can observe the same cancellation.
func (b *Budget) Context() context.Context {
	if b == nil {
		return context.Background()
	}
	return b.ctx
}

// Charge consumes n postings and reports whether execution may continue.
// False means stop now: the caller consults Reason/Err for why.
func (b *Budget) Charge(n int) bool {
	if b == nil {
		return true
	}
	if b.s.limit > 0 && b.s.used.Add(int64(n)) > b.s.limit {
		b.s.tripped.Store(true)
		return false
	}
	if b.ctx.Err() != nil {
		b.s.tripped.Store(true)
		return false
	}
	return true
}

// Ok reports whether execution may continue without consuming postings —
// the check loops use between partitions and before expensive stages.
func (b *Budget) Ok() bool { return b.Charge(0) }

// Used returns the postings consumed so far.
func (b *Budget) Used() int64 {
	if b == nil {
		return 0
	}
	return b.s.used.Load()
}

// Err returns the non-degradable stop cause: the context error when the
// context was canceled outright. Deadline expiry and posting exhaustion —
// the degradable causes — return nil here and are reported by Reason.
func (b *Budget) Err() error {
	if b == nil {
		return nil
	}
	if err := b.ctx.Err(); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}

// Reason names the degradable stop cause after a failed Charge/Ok: one of
// the Degraded* constants, or "" when the budget has not tripped (or the
// stop cause is a hard cancellation, which Err reports instead).
func (b *Budget) Reason() string {
	if b == nil || !b.s.tripped.Load() {
		return ""
	}
	if err := b.ctx.Err(); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return DegradedDeadline
		}
		return "" // hard cancel: Err carries it
	}
	if b.s.limit > 0 && b.s.used.Load() > b.s.limit {
		return DegradedPostings
	}
	return ""
}
