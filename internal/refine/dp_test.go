package refine

import (
	"math"
	"math/rand"
	"testing"

	"xrefine/internal/rules"
)

func mustAdd(t testing.TB, s *rules.Set, r rules.Rule) {
	t.Helper()
	if err := s.Add(r); err != nil {
		t.Fatal(err)
	}
}

func avail(terms ...string) map[string]bool {
	m := make(map[string]bool, len(terms))
	for _, k := range terms {
		m[k] = true
	}
	return m
}

// Reconstruction of the paper's Example 3 with consistent numbers:
// Q = {www, article, machine, learning}, rules www -> world wide web (1)
// and article -> inproceedings (1), everything on the right available.
func TestOptimalRQExample3(t *testing.T) {
	rs := rules.NewSet(2)
	mustAdd(t, rs, rules.Rule{Op: rules.OpSubstitute, LHS: []string{"www"}, RHS: []string{"world", "wide", "web"}, Score: 1})
	mustAdd(t, rs, rules.Rule{Op: rules.OpSubstitute, LHS: []string{"article"}, RHS: []string{"inproceedings"}, Score: 1})
	q := []string{"www", "article", "machine", "learning"}
	av := avail("world", "wide", "web", "inproceedings", "machine", "learning")
	rq, ok := OptimalRQ(q, av, rs)
	if !ok {
		t.Fatal("no RQ found")
	}
	if rq.DSim != 2 {
		t.Errorf("dSim = %v, want 2", rq.DSim)
	}
	want := NewRQ([]string{"world", "wide", "web", "inproceedings", "machine", "learning"}, 0)
	if rq.Key() != want.Key() {
		t.Errorf("RQ = %v, want %v", rq, want)
	}
}

// The paper's Example 4 setup: Q = {on, line, data, base} with two merge
// rules. With both merged terms available the optimum is two merges.
func TestOptimalRQMerges(t *testing.T) {
	rs := rules.NewSet(2)
	mustAdd(t, rs, rules.Rule{Op: rules.OpMerge, LHS: []string{"on", "line"}, RHS: []string{"online"}, Score: 1})
	mustAdd(t, rs, rules.Rule{Op: rules.OpMerge, LHS: []string{"data", "base"}, RHS: []string{"database"}, Score: 1})
	q := []string{"on", "line", "data", "base"}

	rq, ok := OptimalRQ(q, avail("online", "database"), rs)
	if !ok || rq.DSim != 2 || rq.Key() != NewRQ([]string{"online", "database"}, 0).Key() {
		t.Errorf("both available: %v ok=%v", rq, ok)
	}
	// Only "online" available: merge once, delete data and base.
	rq2, ok := OptimalRQ(q, avail("online"), rs)
	if !ok || rq2.DSim != 5 || rq2.Key() != NewRQ([]string{"online"}, 0).Key() {
		t.Errorf("online only: %v (dSim %v) ok=%v", rq2, rq2.DSim, ok)
	}
	// Partial original terms available: keep them, delete the rest
	// ({line, base} with two deletions, the paper's first candidate).
	rq3, ok := OptimalRQ(q, avail("line", "base"), rs)
	if !ok || rq3.DSim != 4 || rq3.Key() != NewRQ([]string{"line", "base"}, 0).Key() {
		t.Errorf("line+base: %v (dSim %v) ok=%v", rq3, rq3.DSim, ok)
	}
}

func TestOptimalRQKeepIsFree(t *testing.T) {
	rs := rules.NewSet(2)
	q := []string{"a", "b"}
	rq, ok := OptimalRQ(q, avail("a", "b"), rs)
	if !ok || rq.DSim != 0 || rq.Key() != NewRQ(q, 0).Key() {
		t.Errorf("fully available query must refine to itself at cost 0: %v", rq)
	}
}

func TestOptimalRQNothingAvailable(t *testing.T) {
	rs := rules.NewSet(2)
	if _, ok := OptimalRQ([]string{"a", "b"}, avail(), rs); ok {
		t.Error("no keywords available must yield no RQ")
	}
	if _, ok := OptimalRQ(nil, avail("a"), rs); ok {
		t.Error("empty query must yield no RQ")
	}
}

func TestMinDissimilarity(t *testing.T) {
	rs := rules.NewSet(2)
	if d, ok := MinDissimilarity([]string{"a", "b"}, avail(), rs); !ok || d != 4 {
		t.Errorf("all-deleted bound = %v, %v, want 4", d, ok)
	}
	if d, ok := MinDissimilarity([]string{"a", "b"}, avail("a"), rs); !ok || d != 2 {
		t.Errorf("one kept = %v, %v, want 2", d, ok)
	}
	if _, ok := MinDissimilarity(nil, avail("a"), rs); ok {
		t.Error("empty query should report false")
	}
}

func TestTopRQsDistinctAndOrdered(t *testing.T) {
	rs := rules.NewSet(2)
	mustAdd(t, rs, rules.Rule{Op: rules.OpSubstitute, LHS: []string{"a"}, RHS: []string{"x"}, Score: 1})
	mustAdd(t, rs, rules.Rule{Op: rules.OpSubstitute, LHS: []string{"a"}, RHS: []string{"y"}, Score: 1.5})
	q := []string{"a", "b"}
	got := TopRQs(q, avail("x", "y", "b"), rs, 5)
	if len(got) < 3 {
		t.Fatalf("TopRQs = %v", got)
	}
	seen := map[string]bool{}
	for i, rq := range got {
		if len(rq.Keywords) == 0 {
			t.Error("empty RQ emitted")
		}
		if seen[rq.Key()] {
			t.Errorf("duplicate RQ %v", rq)
		}
		seen[rq.Key()] = true
		if i > 0 && got[i-1].DSim > rq.DSim {
			t.Error("not sorted by dissimilarity")
		}
	}
	// best: substitute a->x, keep b => dSim 1
	if got[0].DSim != 1 || got[0].Key() != NewRQ([]string{"x", "b"}, 0).Key() {
		t.Errorf("best = %v", got[0])
	}
}

// Exhaustive reference: enumerate every refinement sequence (delete / keep
// / rule at each position) without pruning, min cost per distinct final
// keyword set.
func bruteRQs(q []string, av map[string]bool, rs *rules.Set) map[string]float64 {
	best := map[string]float64{}
	var rec func(i int, cost float64, keys []string)
	rec = func(i int, cost float64, keys []string) {
		if i == len(q) {
			if len(keys) == 0 {
				return
			}
			k := NewRQ(keys, 0).Key()
			if old, ok := best[k]; !ok || cost < old {
				best[k] = cost
			}
			return
		}
		// delete
		rec(i+1, cost+rs.DeleteCost, keys)
		// keep
		if av[q[i]] {
			rec(i+1, cost, append(append([]string(nil), keys...), q[i]))
		}
		// rules ending anywhere: a rule consumes q[i..i+n)
		for _, r := range rs.Rules() {
			n := len(r.LHS)
			if i+n > len(q) {
				continue
			}
			match := true
			for j := 0; j < n; j++ {
				if q[i+j] != r.LHS[j] {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			ok := true
			for _, k := range r.RHS {
				if !av[k] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			rec(i+n, cost+r.Score, append(append([]string(nil), keys...), r.RHS...))
		}
	}
	rec(0, 0, nil)
	return best
}

// Property: OptimalRQ matches the exhaustive minimum on random instances,
// and every TopRQs entry carries its exact minimal cost.
func TestPropertyDPAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	vocab := []string{"a", "b", "c", "d", "x", "y", "z", "w"}
	for trial := 0; trial < 300; trial++ {
		qLen := 1 + r.Intn(4)
		q := make([]string, qLen)
		for i := range q {
			q[i] = vocab[r.Intn(4)] // query terms from {a,b,c,d}
		}
		rs := rules.NewSet(2)
		nRules := r.Intn(5)
		for i := 0; i < nRules; i++ {
			lhsLen := 1 + r.Intn(2)
			lhs := make([]string, lhsLen)
			for j := range lhs {
				lhs[j] = vocab[r.Intn(4)]
			}
			rhsLen := 1 + r.Intn(2)
			rhs := make([]string, rhsLen)
			for j := range rhs {
				rhs[j] = vocab[4+r.Intn(4)] // targets from {x,y,z,w}
			}
			score := float64(1 + r.Intn(3))
			// Add may reject duplicates/identities; that is fine.
			_ = rs.Add(rules.Rule{Op: rules.OpSubstitute, LHS: lhs, RHS: rhs, Score: score})
		}
		av := map[string]bool{}
		for _, v := range vocab {
			if r.Intn(2) == 0 {
				av[v] = true
			}
		}
		want := bruteRQs(q, av, rs)
		wantMin := math.Inf(1)
		for _, c := range want {
			if c < wantMin {
				wantMin = c
			}
		}
		got, ok := OptimalRQ(q, av, rs)
		if math.IsInf(wantMin, 1) {
			if ok {
				t.Fatalf("trial %d: expected no RQ, got %v", trial, got)
			}
			continue
		}
		if !ok {
			t.Fatalf("trial %d: expected RQ with cost %v, got none (q=%v)", trial, wantMin, q)
		}
		if got.DSim != wantMin {
			t.Fatalf("trial %d: OptimalRQ dSim = %v, brute min = %v (q=%v rules=%v avail=%v)",
				trial, got.DSim, wantMin, q, rs.Rules(), av)
		}
		if want[got.Key()] != got.DSim {
			t.Fatalf("trial %d: reported RQ %v has true cost %v", trial, got, want[got.Key()])
		}
		// Every TopRQs entry must carry its exact per-set minimum.
		for _, rq := range TopRQs(q, av, rs, 6) {
			if c, ok := want[rq.Key()]; !ok || c != rq.DSim {
				t.Fatalf("trial %d: TopRQs entry %v has true cost %v (ok=%v)", trial, rq, c, ok)
			}
		}
	}
}

func TestSortedList(t *testing.T) {
	l := NewSortedList(3)
	if l.Full() || !math.IsInf(l.Worst(), 1) {
		t.Fatal("fresh list should be empty with infinite worst")
	}
	a := NewRQ([]string{"a"}, 3)
	b := NewRQ([]string{"b"}, 1)
	c := NewRQ([]string{"c"}, 2)
	d := NewRQ([]string{"d"}, 5)
	e := NewRQ([]string{"e"}, 0.5)
	for _, rq := range []RQ{a, b, c} {
		if l.Insert(rq, nil) == nil {
			t.Fatalf("insert %v failed", rq)
		}
	}
	if !l.Full() || l.Worst() != 3 {
		t.Fatalf("worst = %v", l.Worst())
	}
	// d does not qualify.
	if l.Qualifies(d.DSim) || l.Insert(d, nil) != nil {
		t.Error("worse candidate admitted")
	}
	// e evicts a.
	if l.Insert(e, nil) == nil {
		t.Fatal("better candidate rejected")
	}
	if l.Has(a) != nil {
		t.Error("evicted candidate still present")
	}
	items := l.Items()
	if len(items) != 3 || items[0].RQ.Key() != e.Key() || items[2].RQ.Key() != c.Key() {
		t.Fatalf("order = %v", items)
	}
	// duplicate insert returns existing item
	it := l.Insert(e, []Match{{}})
	if it == nil || it != l.Has(e) || len(it.Results) != 0 {
		t.Error("duplicate insert must return the existing unchanged item")
	}
}

func TestSortedListCapOne(t *testing.T) {
	l := NewSortedList(0) // clamps to 1
	l.Insert(NewRQ([]string{"a"}, 2), nil)
	if it := l.Insert(NewRQ([]string{"b"}, 1), nil); it == nil {
		t.Fatal("better candidate rejected at cap 1")
	}
	if l.Len() != 1 || l.Items()[0].RQ.Keywords[0] != "b" {
		t.Fatal("eviction at cap 1 broken")
	}
	// Inserting a worse one into a full cap-1 list must return nil.
	if it := l.Insert(NewRQ([]string{"c"}, 9), nil); it != nil {
		t.Fatal("worse candidate admitted at cap 1")
	}
}

func TestRQBasics(t *testing.T) {
	r := NewRQ([]string{"b", "a", "b"}, 1.5)
	if len(r.Keywords) != 2 || r.Keywords[0] != "a" {
		t.Errorf("canonicalization failed: %v", r.Keywords)
	}
	if !r.SameKeywords([]string{"a", "b"}) || r.SameKeywords([]string{"a"}) {
		t.Error("SameKeywords broken")
	}
	if r.String() != "{a, b}" {
		t.Errorf("String = %q", r.String())
	}
}

// Provenance: the cheapest refinement's steps must name exactly the
// operations that produced it.
func TestProvenanceSteps(t *testing.T) {
	rs := rules.NewSet(2)
	mustAdd(t, rs, rules.Rule{Op: rules.OpMerge, LHS: []string{"on", "line"}, RHS: []string{"online"}, Score: 1, Origin: "merge"})
	q := []string{"on", "line", "data"}
	// "online" available, "data" not: one merge + one deletion.
	rq, ok := OptimalRQ(q, avail("online"), rs)
	if !ok {
		t.Fatal("no RQ")
	}
	if len(rq.Steps) != 2 {
		t.Fatalf("steps = %v", rq.Steps)
	}
	if rq.Steps[0].Rule == nil || rq.Steps[0].Rule.Origin != "merge" {
		t.Errorf("step 0 = %v, want the merge rule", rq.Steps[0])
	}
	if rq.Steps[1].Delete != "data" {
		t.Errorf("step 1 = %v, want delete data", rq.Steps[1])
	}
	// Kept keywords leave no step.
	rq2, _ := OptimalRQ([]string{"a"}, avail("a"), rs)
	if len(rq2.Steps) != 0 {
		t.Errorf("kept-only query has steps: %v", rq2.Steps)
	}
	// Step rendering.
	if s := (Step{Delete: "x"}).String(); s != "delete x" {
		t.Errorf("delete step = %q", s)
	}
	if s := (Step{}).String(); s != "?" {
		t.Errorf("zero step = %q", s)
	}
}
