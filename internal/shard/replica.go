package shard

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"xrefine/internal/core"
	"xrefine/internal/mutate"
	"xrefine/internal/storage"
)

// Replica health states, as surfaced on /healthz and in ReplicaStatus. The
// definitions live in core so the HTTP server can type its replica table
// without importing this package; these names are the router-side view.
const (
	// StateHealthy: the replica serves reads and accepts routed writes.
	StateHealthy = core.ReplicaHealthy
	// StateBreakerOpen: consecutive scan errors tripped the circuit
	// breaker; the replica is held out of primary read selection until the
	// cooldown expires (it may still be probed half-open when no healthy
	// replica remains). Writes still route to it — the breaker is a read
	// availability device, not a consistency one.
	StateBreakerOpen = core.ReplicaBreakerOpen
	// StateQuarantined: the replica's epoch lags its group (a routed write
	// failed on it). It serves no reads — a stale epoch would break the
	// byte-identity guarantee — until epoch reconciliation replays the
	// missed WAL batches and it rejoins.
	StateQuarantined = core.ReplicaQuarantined
)

// ReplicaStatus is one row of the /healthz replica table.
type ReplicaStatus = core.ReplicaStatus

// replica is one copy of a shard: its own engine, store, WAL and epoch,
// plus the health state read selection consults.
type replica struct {
	shard, id int
	eng       *core.Engine
	store     storage.Backend
	faults    *storage.Faults // non-nil when chaos is armed on this store

	ewmaNS       atomic.Int64  // EWMA scan latency; 0 = no sample yet
	consecErrs   atomic.Int32  // consecutive scan errors
	breakerUntil atomic.Int64  // unixnano the breaker stays open until; 0 = closed
	quarantined  atomic.Bool   // epoch-lagged: excluded from reads
	trips        atomic.Uint64 // breaker openings, cumulative
}

// breakerOpen reports whether the circuit breaker currently holds the
// replica out of primary read selection.
func (rp *replica) breakerOpen(now int64) bool {
	until := rp.breakerUntil.Load()
	return until != 0 && now < until
}

// state names the replica's current health state.
func (rp *replica) state(now int64) string {
	switch {
	case rp.quarantined.Load():
		return StateQuarantined
	case rp.breakerOpen(now):
		return StateBreakerOpen
	default:
		return StateHealthy
	}
}

// noteSuccess records a successful scan: latency feeds the EWMA (alpha
// 1/4) and the error streak and breaker reset.
func (rp *replica) noteSuccess(d time.Duration) {
	for {
		old := rp.ewmaNS.Load()
		ewma := int64(d)
		if old != 0 {
			ewma = old + (int64(d)-old)/4
		}
		if rp.ewmaNS.CompareAndSwap(old, ewma) {
			break
		}
	}
	rp.consecErrs.Store(0)
	rp.breakerUntil.Store(0)
}

// noteError records a failed scan; threshold consecutive errors open the
// breaker for cooldown. Reports whether this call tripped it.
func (rp *replica) noteError(threshold int, cooldown time.Duration) bool {
	n := rp.consecErrs.Add(1)
	if int(n) < threshold {
		return false
	}
	until := time.Now().Add(cooldown).UnixNano()
	if rp.breakerUntil.Swap(until) == 0 {
		rp.trips.Add(1)
		return true
	}
	return false
}

// replicaGroup is the replica set of one shard.
type replicaGroup struct {
	shard int
	reps  []*replica
}

// primary returns the replica whose index backs the merged meta state and
// whose epoch is the shard's published epoch: the first non-quarantined
// replica, falling back to replica 0 when every copy is quarantined (a
// state routed writes cannot normally reach — a write that fails
// everywhere advances no epoch and quarantines nothing).
func (g *replicaGroup) primary() *replica {
	for _, rp := range g.reps {
		if !rp.quarantined.Load() {
			return rp
		}
	}
	return g.reps[0]
}

// maxEpoch returns the highest epoch across the group — the epoch a
// fully-caught-up replica must hold.
func (g *replicaGroup) maxEpoch() uint64 {
	var max uint64
	for _, rp := range g.reps {
		if e := rp.eng.Epoch(); e > max {
			max = e
		}
	}
	return max
}

// readOrder returns the replicas eligible to serve a scan, best first:
// healthy replicas by ascending EWMA latency (unsampled replicas first, so
// a fresh copy gets measured), then breaker-open replicas as half-open
// fallbacks. Quarantined replicas never appear — correctness beats
// availability. Ties break on replica id, keeping selection deterministic.
func (g *replicaGroup) readOrder() []*replica {
	now := time.Now().UnixNano()
	var healthy, opened []*replica
	for _, rp := range g.reps {
		switch {
		case rp.quarantined.Load():
		case rp.breakerOpen(now):
			opened = append(opened, rp)
		default:
			healthy = append(healthy, rp)
		}
	}
	sort.SliceStable(healthy, func(i, j int) bool {
		a, b := healthy[i].ewmaNS.Load(), healthy[j].ewmaNS.Load()
		if a != b {
			return a < b
		}
		return healthy[i].id < healthy[j].id
	})
	return append(healthy, opened...)
}

// statuses renders the group as /healthz replica-table rows.
func (g *replicaGroup) statuses() []ReplicaStatus {
	now := time.Now().UnixNano()
	max := g.maxEpoch()
	out := make([]ReplicaStatus, 0, len(g.reps))
	for _, rp := range g.reps {
		e := rp.eng.Epoch()
		var lag uint64
		if e < max {
			lag = max - e
		}
		out = append(out, ReplicaStatus{
			Shard:             g.shard,
			Replica:           rp.id,
			State:             rp.state(now),
			Epoch:             e,
			EpochLag:          lag,
			EWMAMillis:        float64(rp.ewmaNS.Load()) / 1e6,
			ConsecutiveErrors: int(rp.consecErrs.Load()),
			BreakerTrips:      rp.trips.Load(),
		})
	}
	return out
}

// catchupLog retains the most recent committed batches of one shard so a
// quarantined replica can be caught up by replaying exactly the epochs it
// missed. Entries are (epoch, batch) in commit order; the ring is bounded,
// so a replica lagging further than the retention window stays quarantined
// until rebuilt out of band.
type catchupLog struct {
	entries []catchupEntry
}

type catchupEntry struct {
	epoch uint64
	batch *mutate.Batch
}

// catchupLogCap bounds the per-shard batch retention window.
const catchupLogCap = 128

// add appends one committed batch.
func (l *catchupLog) add(epoch uint64, b *mutate.Batch) {
	l.entries = append(l.entries, catchupEntry{epoch: epoch, batch: b})
	if len(l.entries) > catchupLogCap {
		l.entries = l.entries[len(l.entries)-catchupLogCap:]
	}
}

// from returns the contiguous run of batches covering epochs (after, to],
// or nil when the log no longer reaches back that far.
func (l *catchupLog) from(after, to uint64) []catchupEntry {
	if after >= to {
		return nil
	}
	start := -1
	for i, e := range l.entries {
		if e.epoch == after+1 {
			start = i
			break
		}
	}
	if start < 0 {
		return nil
	}
	want := int(to - after)
	if start+want > len(l.entries) {
		return nil
	}
	return l.entries[start : start+want]
}

// Chaos is the probabilistic fault profile -chaos arms on every replica
// store: each page read/write independently fails with probability Rate
// and sleeps a uniform random latency in [JitterMin, JitterMax]. Distinct
// replicas draw from seeds derived from Seed, so a soak run is
// reproducible but replicas do not fail in lockstep.
type Chaos struct {
	Rate      float64
	JitterMin time.Duration
	JitterMax time.Duration
	Seed      uint64
}

// ParseChaos parses a -chaos flag value: comma-separated key=value pairs
// with keys rate (probability), jitter (a duration or min-max range), and
// seed. Examples: "rate=0.01", "jitter=1ms-5ms", "rate=0.005,jitter=2ms".
func ParseChaos(s string) (*Chaos, error) {
	c := &Chaos{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("shard: chaos: %q is not key=value", part)
		}
		switch key {
		case "rate":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("shard: chaos: rate %q not in [0,1]", val)
			}
			c.Rate = p
		case "jitter":
			lo, hi, isRange := strings.Cut(val, "-")
			max, err := time.ParseDuration(strings.TrimSpace(hi))
			if !isRange {
				max, err = time.ParseDuration(strings.TrimSpace(lo))
			}
			if err != nil {
				return nil, fmt.Errorf("shard: chaos: jitter %q: %v", val, err)
			}
			var min time.Duration
			if isRange {
				min, err = time.ParseDuration(strings.TrimSpace(lo))
				if err != nil {
					return nil, fmt.Errorf("shard: chaos: jitter %q: %v", val, err)
				}
			}
			if min < 0 || max < min {
				return nil, fmt.Errorf("shard: chaos: jitter range %q inverted", val)
			}
			c.JitterMin, c.JitterMax = min, max
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("shard: chaos: seed %q: %v", val, err)
			}
			c.Seed = n
		default:
			return nil, fmt.Errorf("shard: chaos: unknown key %q (want rate, jitter, seed)", key)
		}
	}
	if c.Rate == 0 && c.JitterMax == 0 {
		return nil, fmt.Errorf("shard: chaos: %q arms nothing (set rate= and/or jitter=)", s)
	}
	return c, nil
}

// arm applies the chaos spec to one replica's already-attached fault set.
// The injector is attached disarmed at store-open time and armed only here,
// after the initial index load: chaos models serving-time flakiness, and an
// injected fault during boot would reject a perfectly healthy store.
func (c *Chaos) arm(f *storage.Faults, shard, replica int) {
	if c == nil || f == nil {
		return
	}
	f.SetErrorRate(c.Rate)
	f.SetJitter(c.JitterMin, c.JitterMax)
	seed := c.Seed
	if seed == 0 {
		seed = 1
	}
	// Mix shard/replica into the seed so copies do not fail in lockstep.
	f.Seed(seed*2654435761 + uint64(shard)*131 + uint64(replica) + 1)
}
